//! Circuit-simulation workload (the paper's adversarial case).
//!
//! The G3_circuit analog (M3') has a *scattered* sparsity pattern: most
//! elements never leave their node during SpMV, so every redundant copy is
//! an extra element on the wire, and the reconstruction submatrices at the
//! "center" of the index range are badly conditioned — the paper measures
//! up to 55% overhead for three failures here (Table 2, row M3).
//!
//! ```sh
//! cargo run --release --example circuit_scattered
//! ```

use esr_core::{analysis, run_pcg, BackupStrategy, Problem, SolverConfig};
use parcomm::{CostModel, FailureScript};
use sparsemat::gen::circuit_like;
use sparsemat::BlockPartition;

fn main() {
    let nodes = 16;
    let cost = CostModel::default();

    let a = circuit_like(40_000, 8, 0.05, 0xC1AC);
    println!(
        "system: circuit-like graph (M3' class), n = {}, nnz = {} ({:.1} nnz/row)",
        a.n_rows(),
        a.nnz(),
        a.nnz() as f64 / a.n_rows() as f64
    );
    let part = BlockPartition::new(a.n_rows(), nodes);
    let pattern = sparsemat::analysis::analyze(&a, &part);
    println!(
        "pattern: coverage m≥1 = {:.0}%, m≥3 = {:.0}%, m≥8 = {:.0}% of elements",
        100.0 * pattern.coverage[0],
        100.0 * pattern.coverage[2],
        100.0 * pattern.coverage[7]
    );

    let problem = Problem::with_random_rhs(a.clone(), 3);
    let reference = run_pcg(
        &problem,
        nodes,
        &SolverConfig::reference(),
        cost,
        FailureScript::none(),
    )
    .unwrap();
    println!(
        "reference t0: {:.3} ms ({} iterations)\n",
        reference.vtime * 1e3,
        reference.iterations
    );

    println!("phi | extra/iter | undist. ovh | failures@start | failures@center");
    println!("----+------------+-------------+----------------+----------------");
    for phi in [1usize, 3] {
        let cfg = SolverConfig::resilient(phi);
        let pred = analysis::predict_overhead(&a, &part, phi, &BackupStrategy::Minimal, &cost);
        let undisturbed = run_pcg(&problem, nodes, &cfg, cost, FailureScript::none()).unwrap();
        let fail_at = (reference.iterations / 2) as u64;
        let at_start = run_pcg(
            &problem,
            nodes,
            &cfg,
            cost,
            FailureScript::simultaneous(fail_at, 0, phi, nodes),
        )
        .unwrap();
        let at_center = run_pcg(
            &problem,
            nodes,
            &cfg,
            cost,
            FailureScript::simultaneous(fail_at, nodes / 2, phi, nodes),
        )
        .unwrap();
        println!(
            "  {phi} | {:10} | {:+10.1}% | {:+13.1}% | {:+14.1}%",
            pred.total_extra_elems,
            100.0 * (undisturbed.vtime / reference.vtime - 1.0),
            100.0 * (at_start.vtime / reference.vtime - 1.0),
            100.0 * (at_center.vtime / reference.vtime - 1.0),
        );
    }

    println!(
        "\nScattered patterns pay for resilience: low natural multiplicity\n\
         means nearly every copy is extra traffic (compare with the\n\
         structural_mechanics example). RCM reordering before partitioning\n\
         (sparsemat::order::rcm) narrows the band and is the paper's\n\
         'future work' direction — try it:"
    );
    let perm = sparsemat::order::rcm(&a);
    let a_rcm = a.permute_sym(&perm);
    let pred = analysis::predict_overhead(&a_rcm, &part, 3, &BackupStrategy::Minimal, &cost);
    let pred0 = analysis::predict_overhead(&a, &part, 3, &BackupStrategy::Minimal, &cost);
    println!(
        "  extra elements/iteration at φ=3: {} natural order → {} after RCM",
        pred0.total_extra_elems, pred.total_extra_elems
    );
}
