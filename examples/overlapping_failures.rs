//! Overlapping node failures: a node dies *while* the cluster is still
//! reconstructing the state of a previously failed node (paper Sec. 4.1 —
//! "the reconstruction process must be restarted after each node failure").
//!
//! ```sh
//! cargo run --release --example overlapping_failures
//! ```

use esr_core::{run_pcg, Problem, SolverConfig};
use parcomm::{CostModel, FailAt, FailureEvent, FailureScript};
use sparsemat::gen::poisson2d;

fn main() {
    let nodes = 12;
    let a = poisson2d(64, 64);
    println!(
        "system: 2-D Poisson, n = {}, on {} nodes",
        a.n_rows(),
        nodes
    );
    let problem = Problem::with_ones_solution(a);

    // φ = 3 tolerates the full cascade: rank 4 fails at iteration 30;
    // while its state is being reconstructed, rank 5 fails (substep 1);
    // while *that* restart is running, rank 9 fails too (substep 2).
    let script = FailureScript::new(vec![
        FailureEvent {
            when: FailAt::Iteration(30),
            ranks: vec![4],
        },
        FailureEvent {
            when: FailAt::RecoverySubstep {
                after_iteration: 30,
                substep: 1,
            },
            ranks: vec![5],
        },
        FailureEvent {
            when: FailAt::RecoverySubstep {
                after_iteration: 30,
                substep: 2,
            },
            ranks: vec![9],
        },
    ]);

    println!("\ninjected: rank 4 at iteration 30,");
    println!("          rank 5 during the reconstruction (overlapping),");
    println!("          rank 9 during the restarted reconstruction (overlapping)");

    let res = run_pcg(
        &problem,
        nodes,
        &SolverConfig::resilient(3),
        CostModel::default(),
        script,
    )
    .unwrap();

    let err = res.x.iter().map(|xi| (xi - 1.0).abs()).fold(0.0, f64::max);
    println!("\nconverged      : {}", res.converged);
    println!("iterations     : {}", res.iterations);
    println!("recovery events: {} (one cascade)", res.recoveries);
    println!("ranks recovered: {}", res.ranks_recovered);
    println!(
        "reconstruction : {:.3} ms modeled",
        res.vtime_recovery * 1e3
    );
    println!("max |x - 1|    : {err:.2e}");
    assert!(res.converged && res.ranks_recovered == 3 && err < 1e-6);
    println!("\nok: the cascade of overlapping failures was fully absorbed");
}
