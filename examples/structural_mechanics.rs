//! Structural-mechanics workload (the paper's favourable case).
//!
//! The M5'–M8' class — 3-DOF elasticity operators with wide, dense bands —
//! is where ESR shines: most search-direction elements already travel to
//! several neighbours during SpMV, so keeping φ redundant copies costs
//! almost nothing (paper Secs. 5, 7.2 and Fig. 1/Fig. 3).
//!
//! This example sweeps φ ∈ {1, 3, 8} with failures at the *center* ranks,
//! reproducing the shape of the paper's Fig. 1 on a laptop-scale problem.
//!
//! ```sh
//! cargo run --release --example structural_mechanics
//! ```

use esr_core::{analysis, run_pcg, BackupStrategy, Problem, SolverConfig};
use parcomm::{CostModel, FailureScript};
use sparsemat::gen::{elasticity3d, BlockStencil};
use sparsemat::BlockPartition;

fn main() {
    let nodes = 16;
    let cost = CostModel::default();

    // Emilia_923-like block stencil (M5' class), laptop scale.
    let a = elasticity3d(14, 14, 14, 3, BlockStencil::Edges15, 0.0, 0xE5D2);
    println!(
        "system: 3-DOF elasticity (M5' class), n = {}, nnz = {} ({:.1} nnz/row)",
        a.n_rows(),
        a.nnz(),
        a.nnz() as f64 / a.n_rows() as f64
    );
    let part = BlockPartition::new(a.n_rows(), nodes);
    let problem = Problem::with_random_rhs(a.clone(), 7);

    let reference = run_pcg(
        &problem,
        nodes,
        &SolverConfig::reference(),
        cost,
        FailureScript::none(),
    )
    .unwrap();
    println!(
        "\nreference t0: {:.3} ms ({} iterations)\n",
        reference.vtime * 1e3,
        reference.iterations
    );
    println!("phi | undisturbed      | with phi failures at center ranks");
    println!("    | time      ovh    | time      ovh     reconstruction");
    println!("----+------------------+----------------------------------");

    for phi in [1usize, 3, 8] {
        let cfg = SolverConfig::resilient(phi);
        let undisturbed = run_pcg(&problem, nodes, &cfg, cost, FailureScript::none()).unwrap();
        let fail_at = (reference.iterations / 2) as u64;
        let script = FailureScript::simultaneous(fail_at, nodes / 2, phi, nodes);
        let disturbed = run_pcg(&problem, nodes, &cfg, cost, script).unwrap();
        assert!(undisturbed.converged && disturbed.converged);
        println!(
            "  {phi} | {:7.3}ms {:5.1}% | {:7.3}ms {:6.1}%  {:7.4} ms",
            undisturbed.vtime * 1e3,
            100.0 * (undisturbed.vtime / reference.vtime - 1.0),
            disturbed.vtime * 1e3,
            100.0 * (disturbed.vtime / reference.vtime - 1.0),
            disturbed.vtime_recovery * 1e3,
        );
        // Show how much of the redundancy was already free (Sec. 5).
        let pred = analysis::predict_overhead(&a, &part, phi, &BackupStrategy::Minimal, &cost);
        println!(
            "    |   extra elements/iteration: {} (latency-free: {})",
            pred.total_extra_elems, pred.latency_free
        );
    }
    println!(
        "\nWide-band structural matrices keep the overhead low because most\n\
         elements already travel during SpMV — the paper's favourable case."
    );
}
