//! Quickstart: solve an SPD system on a simulated 16-node cluster and
//! survive three simultaneous node failures mid-solve.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use esr_core::{run_pcg, Problem, SolverConfig};
use parcomm::{CostModel, FailureScript};
use sparsemat::gen::poisson3d;

fn main() {
    let nodes = 16;

    // A 3-D Poisson system (the M1' pattern class of the paper).
    let a = poisson3d(24, 24, 24);
    println!("system: 3-D Poisson, n = {}, nnz = {}", a.n_rows(), a.nnz());
    let problem = Problem::with_ones_solution(a);

    // 1. Reference run: plain (non-resilient) PCG — the paper's t0.
    let reference = run_pcg(
        &problem,
        nodes,
        &SolverConfig::reference(),
        CostModel::default(),
        FailureScript::none(),
    )
    .unwrap();
    println!(
        "reference PCG   : {} iterations, modeled time {:.3} ms",
        reference.iterations,
        reference.vtime * 1e3
    );

    // 2. Resilient run with φ = 3 redundant copies and three simultaneous
    //    node failures at 50% progress.
    let fail_at = (reference.iterations / 2) as u64;
    let script = FailureScript::simultaneous(fail_at, nodes / 2, 3, nodes);
    let resilient = run_pcg(
        &problem,
        nodes,
        &SolverConfig::resilient(3),
        CostModel::default(),
        script,
    )
    .unwrap();
    println!(
        "ESR-PCG (φ = 3) : {} iterations, modeled time {:.3} ms, \
         {} nodes reconstructed in {:.3} ms",
        resilient.iterations,
        resilient.vtime * 1e3,
        resilient.ranks_recovered,
        resilient.vtime_recovery * 1e3
    );

    // 3. Verify the answer survived the failures.
    let err = resilient
        .x
        .iter()
        .map(|xi| (xi - 1.0).abs())
        .fold(0.0, f64::max);
    println!("max |x - 1|     : {err:.2e}");
    println!(
        "overhead vs reference: {:+.1}%  (residual deviation ∆ESR = {:.2e})",
        100.0 * (resilient.vtime / reference.vtime - 1.0),
        resilient.residual_deviation
    );
    assert!(resilient.converged && err < 1e-6);
    println!("ok: solver state was exactly reconstructed after 3 node failures");
}
