//! ESR beyond PCG: the paper (Sec. 1) claims its multi-failure extension
//! also applies to preconditioned BiCGSTAB and the stationary methods.
//! This example exercises both generalizations.
//!
//! ```sh
//! cargo run --release --example resilient_bicgstab
//! ```

use esr_core::{run_bicgstab, run_jacobi, Problem, SolverConfig};
use parcomm::{CostModel, FailureScript};
use sparsemat::gen::poisson2d;

fn main() {
    let nodes = 8;
    let a = poisson2d(48, 48);
    println!(
        "system: 2-D Poisson, n = {}, on {} nodes\n",
        a.n_rows(),
        nodes
    );
    let problem = Problem::with_ones_solution(a);
    let cost = CostModel::default();

    // --- resilient BiCGSTAB: two failures at iteration 20 ----------------
    let script = FailureScript::simultaneous(20, 3, 2, nodes);
    let bicg = run_bicgstab(&problem, nodes, &SolverConfig::resilient(2), cost, script).unwrap();
    let err = bicg.x.iter().map(|xi| (xi - 1.0).abs()).fold(0.0, f64::max);
    println!("ESR-BiCGSTAB (φ = 2, 2 simultaneous failures):");
    println!(
        "  converged in {} iterations, {} ranks reconstructed, max|x-1| = {err:.2e}",
        bicg.iterations, bicg.ranks_recovered
    );
    assert!(bicg.converged && err < 1e-6);

    // --- resilient stationary Jacobi: the original Chen (2011) setting ---
    let mut cfg = SolverConfig::resilient(2);
    cfg.rel_tol = 1e-7;
    cfg.max_iter = 100_000;
    let script = FailureScript::simultaneous(200, 1, 2, nodes);
    let jac = run_jacobi(&problem, nodes, &cfg, cost, script).unwrap();
    let err = jac.x.iter().map(|xi| (xi - 1.0).abs()).fold(0.0, f64::max);
    println!("\nESR-Jacobi iteration (φ = 2, 2 simultaneous failures):");
    println!(
        "  converged in {} sweeps, {} ranks reconstructed, max|x-1| = {err:.2e}",
        jac.iterations, jac.ranks_recovered
    );
    println!(
        "  (stationary ESR reconstructs by pure copy — the iterate x is the\n\
         \x20  scattered vector, so recovery needs no linear solve at all)"
    );
    assert!(jac.converged && err < 1e-4);
    println!("\nok: ESR protects BiCGSTAB and stationary methods as claimed");
}
