//! Communication-hiding pipelined PCG surviving a 2-node failure detected
//! **mid-overlap** — after the iteration's fused reduction has been issued
//! but before its result has been consumed.
//!
//! The pipelined solver issues one non-blocking all-reduce per iteration
//! and hides its flight time behind the preconditioner application, ghost
//! exchange, and SpMV. The ULFM boundary sits inside that overlap window:
//! on a failure the in-flight reduction is drained and discarded, the
//! state of the failed nodes is reconstructed from the redundant copies of
//! `u(j)` and `p(j-1)` (everything else follows from `s = Ap`, `q = M⁻¹s`,
//! `z = Aq`), and the interrupted iteration restarts.
//!
//! ```sh
//! cargo run --release --example pipelined_pcg
//! ```

use esr_core::{run_pcg, run_pipecg, Problem, SolverConfig};
use parcomm::{CommPhase, CostModel, FailureScript};
use sparsemat::gen::poisson2d;

fn main() {
    let nodes = 16;
    let a = poisson2d(64, 64);
    println!(
        "system: 2-D Poisson, n = {}, on {} nodes",
        a.n_rows(),
        nodes
    );
    let problem = Problem::with_ones_solution(a);

    // Blocking reference first: 2 dependent all-reduces per iteration,
    // every microsecond of reduction latency on the critical path.
    let blocking = run_pcg(
        &problem,
        nodes,
        &SolverConfig::reference(),
        CostModel::default(),
        FailureScript::none(),
    )
    .unwrap();

    // Ranks 5 and 6 fail at iteration 20 — detected at the post-exchange
    // boundary, i.e. while the iteration's reduction is still in flight.
    let script = FailureScript::simultaneous(20, 5, 2, nodes);
    println!("\ninjected: ranks 5 and 6 at iteration 20 (mid-overlap boundary)");

    let res = run_pipecg(
        &problem,
        nodes,
        &SolverConfig::resilient(2),
        CostModel::default(),
        script,
    )
    .unwrap();

    let err = res.x.iter().map(|xi| (xi - 1.0).abs()).fold(0.0, f64::max);
    let exposed = |r: &esr_core::ExperimentResult| r.exposed_vtime_per_iter(CommPhase::Reduction);
    let hidden = res.hidden_vtime_per_iter(CommPhase::Reduction);

    println!("\nconverged        : {}", res.converged);
    println!(
        "iterations       : {} (blocking reference: {})",
        res.iterations, blocking.iterations
    );
    println!("recovery events  : {}", res.recoveries);
    println!("ranks recovered  : {}", res.ranks_recovered);
    println!(
        "reconstruction   : {:.3} ms modeled",
        res.vtime_recovery * 1e3
    );
    println!("max |x - 1|      : {err:.2e}");
    println!(
        "\nexposed reduction: {:.3} µs/iter (blocking PCG: {:.3} µs/iter)",
        exposed(&res) * 1e6,
        exposed(&blocking) * 1e6
    );
    println!(
        "hidden reduction : {:.3} µs/iter (overlapped with SpMV + M⁻¹)",
        hidden * 1e6
    );

    assert!(res.converged && res.ranks_recovered == 2 && err < 1e-6);
    assert!(exposed(&res) < exposed(&blocking));
    println!("\nok: the failure hit mid-overlap and the pipeline recovered exactly");
}
