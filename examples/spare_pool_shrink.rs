//! When the cluster runs out of replacement nodes: the same solve under
//! all three recovery policies (paper Sec. 1.1.1 assumes ULFM always
//! provides a replacement; Pachajoa et al., arXiv:2007.04066 ask what
//! happens when it cannot).
//!
//! Two failure events hit a 10-node cluster with only **one** hot spare:
//! the first event (2 failures) gets the spare for one rank while a
//! survivor adopts the other subdomain; the second event finds the pool
//! dry and both subdomains are adopted — the solve finishes on 7 nodes
//! with a non-uniform partition and a shrunken communicator.
//!
//! ```sh
//! cargo run --release --example spare_pool_shrink
//! ```

use esr_core::{run_pcg, Problem, RecoveryPolicy, SolverConfig};
use parcomm::{CostModel, FailAt, FailureEvent, FailureScript};
use sparsemat::gen::poisson2d;

fn main() {
    let nodes = 10;
    let a = poisson2d(60, 60);
    println!(
        "system: 2-D Poisson, n = {}, on {} nodes, two failure events (ψ = 2 each)",
        a.n_rows(),
        nodes
    );
    let problem = Problem::with_ones_solution(a);
    let script = || {
        FailureScript::new(vec![
            FailureEvent {
                when: FailAt::Iteration(20),
                ranks: vec![3, 4],
            },
            FailureEvent {
                when: FailAt::Iteration(35),
                ranks: vec![7, 8],
            },
        ])
    };

    for policy in [
        RecoveryPolicy::Replace,
        RecoveryPolicy::Spares(1),
        RecoveryPolicy::Shrink,
    ] {
        let cfg = SolverConfig::resilient_with_policy(2, policy);
        let res = run_pcg(&problem, nodes, &cfg, CostModel::default(), script()).unwrap();
        let err = res
            .x
            .iter()
            .map(|x| (x - 1.0).abs())
            .fold(0.0_f64, f64::max);
        println!(
            "\npolicy {policy:?}: converged = {} in {} iterations, max error {err:.2e}",
            res.converged, res.iterations
        );
        println!(
            "  recoveries: {}, ranks reconstructed: {}, nodes retired: {} (cluster ends at N = {})",
            res.recoveries,
            res.ranks_recovered,
            res.retired_nodes(),
            nodes - res.retired_nodes()
        );
        println!(
            "  recovery vtime: {:.3e}s of {:.3e}s total",
            res.vtime_recovery, res.vtime
        );
        // Show who owns what at the end (adopted blocks are wider).
        let mut owners: Vec<(usize, usize, usize)> = res
            .per_node
            .iter()
            .filter(|o| !o.retired)
            .map(|o| (o.rank, o.range_start, o.x_loc.len()))
            .collect();
        owners.sort_by_key(|&(_, s, _)| s);
        let ownership: Vec<String> = owners
            .iter()
            .map(|&(r, s, l)| format!("rank {r}: rows {s}..{}", s + l))
            .collect();
        println!("  final ownership: {}", ownership.join(", "));
        assert!(res.converged && err < 1e-6);
    }
    println!("\nAll three policies recovered the exact state — the difference is capacity, not accuracy.");
}
