//! Property-based tests: every collective must agree with its sequential
//! reference for arbitrary inputs and cluster sizes.

use proptest::prelude::*;

use parcomm::comm::ReduceOp;
use parcomm::{Cluster, ClusterConfig, CommPhase, Payload};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn allreduce_sum_matches_sequential(
        nodes in 1usize..9,
        values in proptest::collection::vec(-1e6f64..1e6, 9),
    ) {
        let vals = values.clone();
        let out = Cluster::run(ClusterConfig::new(nodes), move |ctx| {
            ctx.allreduce_sum(vals[ctx.rank()])
        });
        // All nodes agree bitwise.
        prop_assert!(out.windows(2).all(|w| w[0] == w[1]));
        // And the value equals a sum of the inputs up to fp reassociation.
        let expect: f64 = values[..nodes].iter().sum();
        prop_assert!((out[0] - expect).abs() <= 1e-6 * (1.0 + expect.abs()));
    }

    #[test]
    fn allreduce_minmax_exact(
        nodes in 1usize..9,
        values in proptest::collection::vec(-1e6f64..1e6, 9),
    ) {
        let vals = values.clone();
        let out = Cluster::run(ClusterConfig::new(nodes), move |ctx| {
            (
                ctx.allreduce_max(vals[ctx.rank()]),
                ctx.allreduce_min(vals[ctx.rank()]),
            )
        });
        let mx = values[..nodes].iter().copied().fold(f64::MIN, f64::max);
        let mn = values[..nodes].iter().copied().fold(f64::MAX, f64::min);
        prop_assert!(out.iter().all(|&(a, b)| a == mx && b == mn));
    }

    #[test]
    fn bcast_from_any_root(nodes in 1usize..9, root_seed in 0usize..9, len in 0usize..12) {
        let root = root_seed % nodes;
        let data: Vec<f64> = (0..len).map(|i| i as f64 * 1.5).collect();
        let expect = data.clone();
        let out = Cluster::run(ClusterConfig::new(nodes), move |ctx| {
            let payload = if ctx.rank() == root {
                Payload::f64s(data.clone())
            } else {
                Payload::Empty
            };
            ctx.bcast(root, payload).into_f64s()
        });
        prop_assert!(out.iter().all(|v| v == &expect));
    }

    #[test]
    fn allgatherv_collects_in_rank_order(nodes in 1usize..8, base in 0usize..5) {
        let out = Cluster::run(ClusterConfig::new(nodes), move |ctx| {
            // Rank r contributes r + base values of value r.
            let mine = vec![ctx.rank() as f64; ctx.rank() + base];
            ctx.allgatherv_f64(mine)
        });
        for per_node in out {
            prop_assert_eq!(per_node.len(), nodes);
            for (r, part) in per_node.iter().enumerate() {
                prop_assert_eq!(part.len(), r + base);
                prop_assert!(part.iter().all(|&v| v == r as f64));
            }
        }
    }

    #[test]
    fn alltoallv_is_a_transpose(nodes in 2usize..7, seed in any::<u64>()) {
        // sends[i][k] = f(i, k); after the exchange node k holds f(i, k)
        // from every i: the matrix of messages is transposed.
        let out = Cluster::run(ClusterConfig::new(nodes), move |ctx| {
            let me = ctx.rank() as u64;
            let sends: Vec<Vec<u64>> = (0..ctx.size())
                .map(|k| vec![seed % 97, me * 100 + k as u64])
                .collect();
            ctx.alltoallv_u64(sends)
        });
        for (k, received) in out.iter().enumerate() {
            for (i, msg) in received.iter().enumerate() {
                prop_assert_eq!(msg[1], (i * 100 + k) as u64);
            }
        }
    }

    #[test]
    fn vclock_monotone_under_communication(nodes in 2usize..7) {
        let out = Cluster::run(ClusterConfig::new(nodes), move |ctx| {
            let t0 = ctx.vtime();
            ctx.barrier();
            let t1 = ctx.vtime();
            ctx.allreduce_sum(1.0);
            let t2 = ctx.vtime();
            (t0, t1, t2)
        });
        for (t0, t1, t2) in out {
            prop_assert!(t0 <= t1 && t1 <= t2);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn allreduce_bitwise_identical_across_ranks_and_runs(
        nodes in 1usize..14,
        values in proptest::collection::vec(-1e12f64..1e12, 14),
    ) {
        // The determinism contract the recursive-doubling algorithm must
        // keep: every rank returns the *bitwise* same buffer, and two
        // independent cluster runs agree bitwise too. The inputs are large
        // enough that any timing-dependent reassociation would show.
        let run = || {
            let vals = values.clone();
            Cluster::run(ClusterConfig::new(nodes), move |ctx| {
                let x = vals[ctx.rank()] * 1e-3 + 1.0 / (ctx.rank() as f64 + 0.7);
                ctx.allreduce_vec(ReduceOp::Sum, vec![x, x * 0.3, -x])
            })
        };
        let a = run();
        let b = run();
        for v in &a {
            prop_assert_eq!(v.len(), 3);
            for (x, y) in v.iter().zip(&a[0]) {
                prop_assert_eq!(x.to_bits(), y.to_bits(), "ranks disagree");
            }
        }
        for (va, vb) in a.iter().zip(&b) {
            for (x, y) in va.iter().zip(vb) {
                prop_assert_eq!(x.to_bits(), y.to_bits(), "runs disagree");
            }
        }
    }
}

#[test]
fn collectives_at_nonpow2_sizes_with_nonzero_roots() {
    // N = 3, 5, 13 exercise the fold-in/fold-out pre/post phases of the
    // recursive-doubling all-reduce (13 also has a multi-level doubling
    // phase), and the non-zero roots exercise the rotated broadcast trees.
    for n in [3usize, 5, 13] {
        let out = Cluster::run(ClusterConfig::new(n), move |ctx| {
            let sum = ctx.allreduce_sum((ctx.rank() + 1) as f64);
            let mx = ctx.allreduce_max(ctx.rank() as f64);
            let mn = ctx.allreduce_min(ctx.rank() as f64 - 1.0);
            let root = n - 1;
            let payload = if ctx.rank() == root {
                Payload::f64s(vec![2.5, -1.0, 4.0])
            } else {
                Payload::Empty
            };
            let bc = ctx.bcast(root, payload).into_f64s();
            let root2 = n / 2;
            let gathered = ctx.gatherv_f64(root2, vec![ctx.rank() as f64; 2]);
            (sum, mx, mn, bc, gathered)
        });
        let expect_sum = (n * (n + 1) / 2) as f64;
        for (rank, (sum, mx, mn, bc, gathered)) in out.into_iter().enumerate() {
            assert_eq!(sum, expect_sum, "n={n}");
            assert_eq!(mx, (n - 1) as f64, "n={n}");
            assert_eq!(mn, -1.0, "n={n}");
            assert_eq!(bc, vec![2.5, -1.0, 4.0], "n={n}");
            if rank == n / 2 {
                let g = gathered.expect("root holds the gather");
                assert_eq!(g.len(), n);
                for (r, part) in g.iter().enumerate() {
                    assert_eq!(part, &vec![r as f64; 2], "n={n}");
                }
            } else {
                assert!(gathered.is_none());
            }
        }
    }
}

#[test]
fn allreduce_rounds_match_recursive_doubling_depth() {
    // ⌈log₂N⌉ rounds on powers of two, +2 (fold-in + fold-out) otherwise —
    // the critical-path depth the ISSUE's cost accounting relies on.
    for (n, expect_rounds) in [
        (2usize, 1u64),
        (4, 2),
        (8, 3),
        (16, 4),
        (3, 3),
        (5, 4),
        (13, 5),
    ] {
        let out = Cluster::run(ClusterConfig::new(n), |ctx| {
            ctx.allreduce_sum(1.0);
            (ctx.stats().allreduces(), ctx.stats().allreduce_rounds())
        });
        assert!(out.iter().all(|&(calls, _)| calls == 1), "n={n}");
        let max_rounds = out.iter().map(|&(_, r)| r).max().unwrap();
        assert_eq!(max_rounds, expect_rounds, "n={n}");
    }
}

#[test]
fn group_allreduce_on_nonpow2_group_is_bitwise_uniform() {
    // A 5-member group inside a 7-node cluster: the recovery-path
    // sub-communicator shape (non-power-of-two, non-contiguous ranks).
    let out = Cluster::run(ClusterConfig::new(7), |ctx| {
        let members = [0usize, 2, 3, 5, 6];
        if members.contains(&ctx.rank()) {
            let mut g = ctx.group(&members);
            let x = 1.0 / (ctx.rank() as f64 + 3.0) * 1e10 + 1e-10;
            Some(g.allreduce_vec(ctx, ReduceOp::Sum, vec![x, -x]))
        } else {
            None
        }
    });
    let results: Vec<_> = out.into_iter().flatten().collect();
    assert_eq!(results.len(), 5);
    for v in &results {
        assert_eq!(v[0].to_bits(), results[0][0].to_bits());
        assert_eq!(v[1].to_bits(), results[0][1].to_bits());
    }
}

#[test]
fn reduce_vec_ops_cover_all_variants() {
    for op in [ReduceOp::Sum, ReduceOp::Max, ReduceOp::Min] {
        let out = Cluster::run(ClusterConfig::new(4), move |ctx| {
            ctx.allreduce_vec(op, vec![ctx.rank() as f64, -(ctx.rank() as f64)])
        });
        let expect = match op {
            ReduceOp::Sum => vec![6.0, -6.0],
            ReduceOp::Max => vec![3.0, 0.0],
            ReduceOp::Min => vec![0.0, -3.0],
        };
        assert!(out.iter().all(|v| v == &expect), "{op:?}");
    }
}

#[test]
fn split_phase_send_accounting() {
    // One physical message, elements split across two accounting phases.
    let out = Cluster::run(ClusterConfig::new(2), |ctx| {
        if ctx.rank() == 0 {
            ctx.send_with_phases(
                1,
                7,
                Payload::f64s(vec![0.0; 10]),
                &[(CommPhase::Spmv, 6), (CommPhase::Redundancy, 4)],
            );
        } else {
            ctx.recv(0, 7);
        }
        (
            ctx.stats().msgs(CommPhase::Spmv),
            ctx.stats().elems(CommPhase::Spmv),
            ctx.stats().msgs(CommPhase::Redundancy),
            ctx.stats().elems(CommPhase::Redundancy),
        )
    });
    assert_eq!(out[0], (1, 6, 0, 4), "one message, split elements");
}
