//! Property-based tests: every collective must agree with its sequential
//! reference for arbitrary inputs and cluster sizes.

use proptest::prelude::*;

use parcomm::comm::ReduceOp;
use parcomm::{Cluster, ClusterConfig, CommPhase, Payload};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn allreduce_sum_matches_sequential(
        nodes in 1usize..9,
        values in proptest::collection::vec(-1e6f64..1e6, 9),
    ) {
        let vals = values.clone();
        let out = Cluster::run(ClusterConfig::new(nodes), move |ctx| {
            ctx.allreduce_sum(vals[ctx.rank()])
        });
        // All nodes agree bitwise.
        prop_assert!(out.windows(2).all(|w| w[0] == w[1]));
        // And the value equals a sum of the inputs up to fp reassociation.
        let expect: f64 = values[..nodes].iter().sum();
        prop_assert!((out[0] - expect).abs() <= 1e-6 * (1.0 + expect.abs()));
    }

    #[test]
    fn allreduce_minmax_exact(
        nodes in 1usize..9,
        values in proptest::collection::vec(-1e6f64..1e6, 9),
    ) {
        let vals = values.clone();
        let out = Cluster::run(ClusterConfig::new(nodes), move |ctx| {
            (
                ctx.allreduce_max(vals[ctx.rank()]),
                ctx.allreduce_min(vals[ctx.rank()]),
            )
        });
        let mx = values[..nodes].iter().copied().fold(f64::MIN, f64::max);
        let mn = values[..nodes].iter().copied().fold(f64::MAX, f64::min);
        prop_assert!(out.iter().all(|&(a, b)| a == mx && b == mn));
    }

    #[test]
    fn bcast_from_any_root(nodes in 1usize..9, root_seed in 0usize..9, len in 0usize..12) {
        let root = root_seed % nodes;
        let data: Vec<f64> = (0..len).map(|i| i as f64 * 1.5).collect();
        let expect = data.clone();
        let out = Cluster::run(ClusterConfig::new(nodes), move |ctx| {
            let payload = if ctx.rank() == root {
                Payload::F64s(data.clone())
            } else {
                Payload::Empty
            };
            ctx.bcast(root, payload).into_f64s()
        });
        prop_assert!(out.iter().all(|v| v == &expect));
    }

    #[test]
    fn allgatherv_collects_in_rank_order(nodes in 1usize..8, base in 0usize..5) {
        let out = Cluster::run(ClusterConfig::new(nodes), move |ctx| {
            // Rank r contributes r + base values of value r.
            let mine = vec![ctx.rank() as f64; ctx.rank() + base];
            ctx.allgatherv_f64(mine)
        });
        for per_node in out {
            prop_assert_eq!(per_node.len(), nodes);
            for (r, part) in per_node.iter().enumerate() {
                prop_assert_eq!(part.len(), r + base);
                prop_assert!(part.iter().all(|&v| v == r as f64));
            }
        }
    }

    #[test]
    fn alltoallv_is_a_transpose(nodes in 2usize..7, seed in any::<u64>()) {
        // sends[i][k] = f(i, k); after the exchange node k holds f(i, k)
        // from every i: the matrix of messages is transposed.
        let out = Cluster::run(ClusterConfig::new(nodes), move |ctx| {
            let me = ctx.rank() as u64;
            let sends: Vec<Vec<u64>> = (0..ctx.size())
                .map(|k| vec![seed % 97, me * 100 + k as u64])
                .collect();
            ctx.alltoallv_u64(sends)
        });
        for (k, received) in out.iter().enumerate() {
            for (i, msg) in received.iter().enumerate() {
                prop_assert_eq!(msg[1], (i * 100 + k) as u64);
            }
        }
    }

    #[test]
    fn vclock_monotone_under_communication(nodes in 2usize..7) {
        let out = Cluster::run(ClusterConfig::new(nodes), move |ctx| {
            let t0 = ctx.vtime();
            ctx.barrier();
            let t1 = ctx.vtime();
            ctx.allreduce_sum(1.0);
            let t2 = ctx.vtime();
            (t0, t1, t2)
        });
        for (t0, t1, t2) in out {
            prop_assert!(t0 <= t1 && t1 <= t2);
        }
    }
}

#[test]
fn reduce_vec_ops_cover_all_variants() {
    for op in [ReduceOp::Sum, ReduceOp::Max, ReduceOp::Min] {
        let out = Cluster::run(ClusterConfig::new(4), move |ctx| {
            ctx.allreduce_vec(op, vec![ctx.rank() as f64, -(ctx.rank() as f64)])
        });
        let expect = match op {
            ReduceOp::Sum => vec![6.0, -6.0],
            ReduceOp::Max => vec![3.0, 0.0],
            ReduceOp::Min => vec![0.0, -3.0],
        };
        assert!(out.iter().all(|v| v == &expect), "{op:?}");
    }
}

#[test]
fn split_phase_send_accounting() {
    // One physical message, elements split across two accounting phases.
    let out = Cluster::run(ClusterConfig::new(2), |ctx| {
        if ctx.rank() == 0 {
            ctx.send_with_phases(
                1,
                7,
                Payload::F64s(vec![0.0; 10]),
                &[(CommPhase::Spmv, 6), (CommPhase::Redundancy, 4)],
            );
        } else {
            ctx.recv(0, 7);
        }
        (
            ctx.stats().msgs(CommPhase::Spmv),
            ctx.stats().elems(CommPhase::Spmv),
            ctx.stats().msgs(CommPhase::Redundancy),
            ctx.stats().elems(CommPhase::Redundancy),
        )
    });
    assert_eq!(out[0], (1, 6, 0, 4), "one message, split elements");
}
