//! Tests for the non-blocking subsystem: determinism of `iallreduce_vec`
//! against the blocking collective, overlap-aware clock accounting,
//! out-of-order completion, and the linear-request drop guard.

use proptest::prelude::*;

use parcomm::comm::ReduceOp;
use parcomm::{Cluster, ClusterConfig, CommPhase, CostModel, Payload};

/// A cost model with round numbers so the overlap arithmetic is exact.
fn unit_cost() -> CostModel {
    CostModel {
        lambda: 1.0,
        mu: 0.1,
        gamma: 0.0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn iallreduce_bitwise_matches_blocking_allreduce(
        nodes in 1usize..14,
        values in proptest::collection::vec(-1e12f64..1e12, 14),
    ) {
        // The contract that lets pipelined PCG swap reduction styles
        // without changing numerics: the non-blocking all-reduce runs the
        // identical schedule and returns the *bitwise* same buffer on every
        // rank as the blocking collective — for any size, including the
        // fold-in/out shapes.
        let vals = values.clone();
        let out = Cluster::run(ClusterConfig::new(nodes), move |ctx| {
            let x = vals[ctx.rank()] * 1e-3 + 1.0 / (ctx.rank() as f64 + 0.7);
            let buf = vec![x, x * 0.3, -x];
            let blocking = ctx.allreduce_vec(ReduceOp::Sum, buf.clone());
            let req = ctx.iallreduce_vec(ReduceOp::Sum, buf);
            let nonblocking = req.wait(ctx);
            (blocking, nonblocking)
        });
        for (blocking, nonblocking) in &out {
            for (a, b) in blocking.iter().zip(nonblocking) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "schedules diverged");
            }
        }
        // And every rank agrees with rank 0.
        for (_, nb) in &out {
            for (a, b) in nb.iter().zip(&out[0].1) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "ranks disagree");
            }
        }
    }
}

#[test]
fn group_iallreduce_bitwise_matches_group_allreduce() {
    // The group twin of the world-level determinism contract: a solver
    // that continues on a shrunken communicator swaps its blocking group
    // reduction for the non-blocking one without changing numerics. Odd
    // ranks of a 9-node cluster form the group (non-power-of-two size 5,
    // so the fold-in/out schedule runs too).
    let out = Cluster::run(ClusterConfig::new(9), move |ctx| {
        if ctx.rank() % 2 == 0 {
            return None;
        }
        let members = [1usize, 3, 5, 7];
        let x = 1.0 / (ctx.rank() as f64 + 0.3) * 1e8 + 1e-8;
        let buf = vec![x, -x * 0.7, x * x];
        let mut g = ctx.group(&members[..]);
        let blocking = g.allreduce_vec_phase(ctx, ReduceOp::Sum, buf.clone(), CommPhase::Reduction);
        let req = g.iallreduce_vec_phase(ctx, ReduceOp::Sum, buf, CommPhase::Reduction);
        let nonblocking = req.wait(ctx);
        Some((blocking, nonblocking))
    });
    let results: Vec<_> = out.into_iter().flatten().collect();
    assert_eq!(results.len(), 4);
    for (blocking, nonblocking) in &results {
        for (a, b) in blocking.iter().zip(nonblocking) {
            assert_eq!(a.to_bits(), b.to_bits(), "group schedules diverged");
        }
    }
    for (_, nb) in &results {
        for (a, b) in nb.iter().zip(&results[0].1) {
            assert_eq!(a.to_bits(), b.to_bits(), "group members disagree");
        }
    }
}

#[test]
fn group_iallreduce_overlap_charges_only_exposed_time() {
    // The overlap accounting carries over to group reductions: compute
    // issued between start and wait hides the flight time.
    let out = Cluster::run(ClusterConfig::new(4).with_cost(unit_cost()), move |ctx| {
        if ctx.rank() == 3 {
            return None;
        }
        let mut g = ctx.group(&[0, 1, 2]);
        let t0 = ctx.vtime();
        let req = g.iallreduce_vec_phase(
            ctx,
            ReduceOp::Sum,
            vec![ctx.rank() as f64],
            CommPhase::Reduction,
        );
        // Local compute long enough to hide the whole reduction.
        ctx.clock_mut().advance(100.0);
        let res = req.wait(ctx);
        Some((
            res[0],
            ctx.vtime() - t0,
            ctx.stats().hidden_vtime(CommPhase::Reduction),
        ))
    });
    for o in out.into_iter().flatten() {
        let (sum, elapsed, hidden) = o;
        assert_eq!(sum, 3.0);
        // Fully hidden: elapsed is the compute time alone.
        assert_eq!(elapsed, 100.0);
        assert!(hidden > 0.0, "no reduction time was hidden");
    }
}

#[test]
fn iallreduce_at_nonpow2_sizes() {
    // N = 3, 5, 13 exercise fold-in/fold-out on the engine timeline.
    for n in [3usize, 5, 13] {
        let out = Cluster::run(ClusterConfig::new(n), move |ctx| {
            let req = ctx.iallreduce_vec(ReduceOp::Sum, vec![(ctx.rank() + 1) as f64, 1.0]);
            req.wait(ctx)
        });
        let expect = (n * (n + 1) / 2) as f64;
        for v in out {
            assert_eq!(v, vec![expect, n as f64], "n={n}");
        }
    }
}

#[test]
fn compute_between_start_and_wait_hides_flight_time() {
    // Two nodes exchange through a reduction; each computes 10s of local
    // work while the reduction is in flight. Blocking order would charge
    // compute + full reduction; overlapped, the reduction (1.2s: one
    // round, λ + 2µ = 1.2) is completely hidden behind the compute.
    let out = Cluster::run(ClusterConfig::new(2).with_cost(unit_cost()), |ctx| {
        let req = ctx.iallreduce_vec(ReduceOp::Sum, vec![1.0, 2.0]);
        ctx.clock_mut().advance(10.0); // overlapped compute
        let sum = req.wait(ctx);
        (sum, ctx.vtime(), ctx.stats().clone())
    });
    for (sum, vtime, stats) in out {
        assert_eq!(sum, vec![2.0, 4.0]);
        // Fully hidden: the clock shows only the compute.
        assert_eq!(vtime, 10.0);
        assert_eq!(stats.wait_vtime(CommPhase::Reduction), 0.0);
        assert_eq!(stats.hidden_vtime(CommPhase::Reduction), 1.2);
        // Nothing was charged as blocking-send time on the node clock.
        assert_eq!(stats.send_vtime(CommPhase::Reduction), 0.0);
    }
}

#[test]
fn wait_charges_only_the_remaining_latency() {
    // Same exchange, but only 0.5s of compute fits before the wait: the
    // wait must charge exactly the remaining 0.7s (1.2 − 0.5), no more.
    let out = Cluster::run(ClusterConfig::new(2).with_cost(unit_cost()), |ctx| {
        let req = ctx.iallreduce_vec(ReduceOp::Sum, vec![1.0, 2.0]);
        ctx.clock_mut().advance(0.5);
        let _ = req.wait(ctx);
        (ctx.vtime(), ctx.stats().clone())
    });
    for (vtime, stats) in out {
        assert_eq!(vtime, 1.2);
        assert!((stats.wait_vtime(CommPhase::Reduction) - 0.7).abs() < 1e-12);
        assert!((stats.hidden_vtime(CommPhase::Reduction) - 0.5).abs() < 1e-12);
    }
}

#[test]
fn isend_overlap_accounting() {
    // λ=1, µ=0.1: a 10-element isend costs 2.0. With 5.0 of compute before
    // the wait it is fully hidden; the receiver still sees the arrival
    // stamped from the sender's start time.
    let out = Cluster::run(ClusterConfig::new(2).with_cost(unit_cost()), |ctx| {
        if ctx.rank() == 0 {
            let req = ctx.isend(1, 7, Payload::f64s(vec![0.0; 10]), CommPhase::Spmv);
            ctx.clock_mut().advance(5.0);
            assert!(req.test(ctx), "transfer is over in virtual time");
            req.wait(ctx);
        } else {
            ctx.recv_phase(0, 7, CommPhase::Spmv);
        }
        (ctx.vtime(), ctx.stats().clone())
    });
    // Sender: compute only — the 2.0 transfer is hidden.
    assert_eq!(out[0].0, 5.0);
    assert_eq!(out[0].1.hidden_vtime(CommPhase::Spmv), 2.0);
    assert_eq!(out[0].1.wait_vtime(CommPhase::Spmv), 0.0);
    // Receiver: stalls until the arrival stamp (2.0).
    assert_eq!(out[1].0, 2.0);
    assert_eq!(out[1].1.wait_vtime(CommPhase::Spmv), 2.0);
}

#[test]
fn out_of_order_waits_across_in_flight_requests() {
    // Rank 0 posts three irecvs (two sources, two tags) and one isend, then
    // completes them in the reverse of posting order. Matching is by
    // (src, tag), so completion order must not matter.
    let out = Cluster::run(
        ClusterConfig::new(3).with_cost(unit_cost()),
        |ctx| match ctx.rank() {
            0 => {
                let r1 = ctx.irecv(1, 10, CommPhase::Other);
                let r2 = ctx.irecv(2, 10, CommPhase::Other);
                let r3 = ctx.irecv(1, 11, CommPhase::Other);
                let s = ctx.isend(1, 12, Payload::F64(0.5), CommPhase::Other);
                let v3 = r3.wait(ctx).into_f64();
                let v2 = r2.wait(ctx).into_f64();
                s.wait(ctx);
                let v1 = r1.wait(ctx).into_f64();
                vec![v1, v2, v3]
            }
            1 => {
                // Deliberately send the later-waited message first.
                ctx.send(0, 10, Payload::F64(1.0), CommPhase::Other);
                ctx.send(0, 11, Payload::F64(3.0), CommPhase::Other);
                vec![ctx.recv(2, 12).into_f64(), ctx.recv(0, 12).into_f64()]
            }
            _ => {
                ctx.send(0, 10, Payload::F64(2.0), CommPhase::Other);
                ctx.send(1, 12, Payload::F64(4.0), CommPhase::Other);
                Vec::new()
            }
        },
    );
    assert_eq!(out[0], vec![1.0, 2.0, 3.0]);
    assert_eq!(out[1], vec![4.0, 0.5]);
}

#[test]
fn several_in_flight_iallreduces_complete_in_any_order() {
    // Two overlapped reductions issued back to back; the *second* is
    // waited first. Sequence-numbered tags keep them separate.
    let out = Cluster::run(ClusterConfig::new(4), |ctx| {
        let a = ctx.iallreduce_vec(ReduceOp::Sum, vec![1.0]);
        let b = ctx.iallreduce_vec(ReduceOp::Max, vec![ctx.rank() as f64]);
        let vb = b.wait(ctx);
        let va = a.wait(ctx);
        (va[0], vb[0])
    });
    assert!(out.iter().all(|&(s, m)| s == 4.0 && m == 3.0));
}

#[test]
fn test_polls_completion_without_charging() {
    let out = Cluster::run(ClusterConfig::new(2).with_cost(unit_cost()), |ctx| {
        let req = ctx.iallreduce_vec(ReduceOp::Sum, vec![1.0]);
        // Not enough compute yet: the reduction (1.1s) is still in flight.
        ctx.clock_mut().advance(0.25);
        let early = req.test(ctx);
        ctx.clock_mut().advance(5.0);
        let late = req.test(ctx);
        let t_before_wait = ctx.vtime();
        let _ = req.wait(ctx);
        (early, late, ctx.vtime() - t_before_wait)
    });
    for (early, late, wait_charge) in out {
        assert!(!early, "reduction cannot be complete after 0.25s");
        assert!(late, "reduction must be complete after 5.25s");
        assert_eq!(wait_charge, 0.0, "wait after completion charges nothing");
    }
}

#[test]
#[should_panic(expected = "dropped without wait")]
fn dropping_a_request_without_wait_panics() {
    Cluster::run(ClusterConfig::new(2), |ctx| {
        if ctx.rank() == 0 {
            let req = ctx.isend(1, 7, Payload::F64(1.0), CommPhase::Other);
            drop(req); // protocol bug: the request is never completed
        } else {
            ctx.recv(0, 7);
        }
    });
}
