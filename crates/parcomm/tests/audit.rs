//! Seeded-violation self-tests for the protocol auditor.
//!
//! Each test plants one historical (or representative) protocol bug behind a
//! test double and asserts that the auditor detects it **and names it** —
//! rank, tag, and violated invariant. A checker that cannot re-find the
//! bugs it was built for is worse than no checker, so this suite is the
//! auditor's own acceptance test.

#![cfg(feature = "audit")]

use std::panic::{catch_unwind, AssertUnwindSafe};

use parcomm::{Cluster, ClusterConfig, CommPhase, Payload, ReduceOp};

/// Run a cluster program that must panic; return the panic message.
fn expect_panic<T, F>(f: F) -> String
where
    T: Send,
    F: Fn(&mut parcomm::NodeCtx) -> T + Sync,
    F: std::panic::RefUnwindSafe,
{
    let err = catch_unwind(AssertUnwindSafe(|| {
        let _ = Cluster::run(ClusterConfig::new(2), f);
    }))
    .expect_err("the auditor must have flagged this run");
    err.downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| err.downcast_ref::<&str>().copied())
        .unwrap_or("<non-string panic>")
        .to_string()
}

// ---- (1) message drain ----------------------------------------------------

#[test]
fn orphaned_message_is_named_with_provenance() {
    let msg = expect_panic(|ctx| {
        if ctx.rank() == 0 {
            // Send that no receive will ever match.
            ctx.send(1, 3, Payload::F64(1.0), CommPhase::Other);
        }
    });
    assert!(msg.contains("parcomm audit"), "{msg}");
    assert!(msg.contains("[message-drain]"), "{msg}");
    assert!(msg.contains("rank 1"), "{msg}");
    assert!(msg.contains("from rank 0"), "{msg}");
    assert!(msg.contains("user(3)"), "{msg}");
}

// ---- (2) non-overtaking ---------------------------------------------------

#[test]
fn resurrected_swap_remove_fifo_bug_is_caught() {
    // PR 2 shipped a `Vec::swap_remove` in the pending-queue match that
    // reordered same-(src, tag) messages once two were queued. The bug is
    // re-seeded behind a test double; the auditor must name the reorder.
    let msg = expect_panic(|ctx| {
        if ctx.rank() == 0 {
            for v in [1.0, 2.0, 3.0] {
                ctx.send(1, 7, Payload::F64(v), CommPhase::Other);
            }
            ctx.send(1, 9, Payload::F64(9.0), CommPhase::Other);
        } else {
            ctx.audit_seed_fifo_bug();
            // Receiving tag 9 first forces the three tag-7 messages through
            // the pending queue, where the seeded swap_remove reorders them.
            let _ = ctx.recv(0, 9);
            for _ in 0..3 {
                let _ = ctx.recv(0, 7);
            }
        }
    });
    assert!(msg.contains("[non-overtaking]"), "{msg}");
    assert!(msg.contains("rank 1"), "{msg}");
    assert!(msg.contains("user(7)"), "{msg}");
    assert!(msg.contains("send order"), "{msg}");
}

// ---- (3) collective agreement --------------------------------------------

#[test]
fn mismatched_reduce_operators_are_caught() {
    // Both ranks complete (n = 2 exchanges one message each way), the
    // results silently disagree — exactly the class of corruption that
    // today manifests as a wrong residual thousands of iterations later.
    let msg = expect_panic(|ctx| {
        if ctx.rank() == 0 {
            ctx.allreduce_sum(1.0)
        } else {
            ctx.allreduce_max(1.0)
        }
    });
    assert!(msg.contains("[collective-mismatch]"), "{msg}");
    assert!(msg.contains("seq 0"), "{msg}");
    assert!(msg.contains("Sum"), "{msg}");
    assert!(msg.contains("Max"), "{msg}");
}

#[test]
fn length_mismatched_collective_is_caught() {
    let msg = expect_panic(|ctx| {
        let n = 1 + ctx.rank(); // rank 0 contributes len 1, rank 1 len 2
        ctx.allreduce_vec(ReduceOp::Sum, vec![1.0; n])
    });
    assert!(msg.contains("[collective-mismatch]"), "{msg}");
    assert!(msg.contains("len 1"), "{msg}");
    assert!(msg.contains("len 2"), "{msg}");
}

// ---- (4) tag-window disjointness ------------------------------------------

#[test]
fn cross_attempt_tag_reuse_is_caught() {
    // Rank 0 sends inside recovery attempt 0; rank 1 matches it from
    // attempt 1 — the cross-attempt match the engine's restart protocol
    // must never allow.
    let msg = expect_panic(|ctx| {
        if ctx.rank() == 0 {
            ctx.audit_enter_window(0);
            ctx.send(1, 5, Payload::F64(1.0), CommPhase::Recovery);
            ctx.audit_exit_window();
        } else {
            ctx.audit_enter_window(1);
            let _ = ctx.recv(0, 5);
            ctx.audit_exit_window();
        }
    });
    assert!(msg.contains("[tag-window]"), "{msg}");
    assert!(msg.contains("rank 1"), "{msg}");
    assert!(msg.contains("user(5)"), "{msg}");
    assert!(msg.contains("recovery window 0"), "{msg}");
    assert!(msg.contains("recovery window 1"), "{msg}");
}

#[test]
fn window_close_with_unconsumed_recovery_message_panics() {
    // A recovery-window message still queued when its window closes is
    // flagged *at the boundary* (not only at teardown): the next attempt
    // must start with a clean slate.
    let msg = expect_panic(|ctx| {
        if ctx.rank() == 0 {
            ctx.audit_enter_window(2);
            ctx.send(1, 4, Payload::F64(1.0), CommPhase::Recovery);
            ctx.send(1, 8, Payload::F64(2.0), CommPhase::Recovery);
            ctx.audit_exit_window();
        } else {
            ctx.audit_enter_window(2);
            // Receiving the marker (tag 8) first parks the tag-4 message in
            // the pending queue, so it is provably queued at window close.
            let _ = ctx.recv(0, 8);
            ctx.audit_exit_window();
        }
    });
    assert!(msg.contains("recovery window 2 closed"), "{msg}");
    assert!(msg.contains("rank 1"), "{msg}");
    assert!(msg.contains("user(4)"), "{msg}");
}

// The engine's checkpoint traffic uses tags from the recovery range
// ((1 << 16) + seq * 32 + offset) with offset 0 for periodic deposits and
// offset 1 for rollback fetches; both flow inside audit windows numbered by
// the shared recovery sequence. These two tests seed the checkpoint-specific
// leak shapes and prove the window invariants cover them.

#[test]
fn leaked_checkpoint_deposit_is_flagged_at_window_close() {
    // A deposit replica pushed to a partner that never receives it — the
    // bug a mis-rebuilt ring placement after a shrink would produce. The
    // deposit travels in the Redundancy phase, but window residue is
    // phase-blind: the window stamp alone must flag it at the boundary.
    const DEPOSIT_TAG: u32 = (1 << 16) + 6 * 32; // tag(seq 6, OFF_CKPT)
    let msg = expect_panic(|ctx| {
        if ctx.rank() == 0 {
            ctx.audit_enter_window(6);
            ctx.send(1, DEPOSIT_TAG, Payload::F64(1.0), CommPhase::Redundancy);
            // Marker so the deposit is provably queued before rank 1 exits.
            ctx.send(1, 8, Payload::F64(2.0), CommPhase::Redundancy);
            ctx.audit_exit_window();
        } else {
            ctx.audit_enter_window(6);
            let _ = ctx.recv(0, 8);
            ctx.audit_exit_window();
        }
    });
    assert!(msg.contains("[message-drain]"), "{msg}");
    assert!(msg.contains("recovery window 6 closed"), "{msg}");
    assert!(msg.contains("rank 1"), "{msg}");
    assert!(msg.contains("from rank 0"), "{msg}");
    assert!(msg.contains(&format!("user({DEPOSIT_TAG})")), "{msg}");
}

#[test]
fn checkpoint_fetch_across_windows_is_flagged() {
    // A rollback fetch deposited in one recovery attempt must never satisfy
    // a receive posted in a later attempt — a desynchronized recovery
    // sequence (one rank skipping a deposit round) would produce exactly
    // this cross-window match.
    const FETCH_TAG: u32 = (1 << 16) + 3 * 32 + 1; // tag(seq 3, OFF_FETCH)
    let msg = expect_panic(|ctx| {
        if ctx.rank() == 0 {
            ctx.audit_enter_window(3);
            ctx.send(1, FETCH_TAG, Payload::F64(1.0), CommPhase::Recovery);
            ctx.audit_exit_window();
        } else {
            ctx.audit_enter_window(4);
            let _ = ctx.recv(0, FETCH_TAG);
            ctx.audit_exit_window();
        }
    });
    assert!(msg.contains("[tag-window]"), "{msg}");
    assert!(msg.contains("rank 1"), "{msg}");
    assert!(msg.contains(&format!("user({FETCH_TAG})")), "{msg}");
    assert!(msg.contains("recovery window 3"), "{msg}");
    assert!(msg.contains("recovery window 4"), "{msg}");
}

// ---- (5) deadlock detection -----------------------------------------------

#[test]
fn wait_for_cycle_is_reported_not_hung() {
    // Classic two-rank cycle: each blocks receiving from the other with no
    // message in flight. Without the auditor this hangs until the 300 s
    // backstop; with it, the cycle is reported with per-rank blocked-on
    // state within a poll interval.
    let msg = expect_panic(|ctx| {
        let peer = 1 - ctx.rank();
        let _ = ctx.recv(peer, 1);
    });
    assert!(msg.contains("[deadlock]"), "{msg}");
    assert!(msg.contains("blocked in recv"), "{msg}");
    assert!(msg.contains("user(1)"), "{msg}");
}

// ---- clean runs stay clean ------------------------------------------------

#[test]
fn full_protocol_workout_is_audit_clean() {
    // Point-to-point, world + group collectives, non-blocking all-reduce,
    // and a recovery window, all properly drained: the auditor must stay
    // silent (a checker that cries wolf gets turned off).
    let out = Cluster::run(ClusterConfig::new(4), |ctx| {
        let next = (ctx.rank() + 1) % ctx.size();
        let prev = (ctx.rank() + ctx.size() - 1) % ctx.size();
        ctx.send(next, 11, Payload::F64(ctx.rank() as f64), CommPhase::Other);
        let from_prev = ctx.recv(prev, 11).into_f64();

        let total = ctx.allreduce_sum(1.0);
        let req = ctx.iallreduce_vec(ReduceOp::Max, vec![ctx.rank() as f64]);
        let mx = req.wait(ctx)[0];

        ctx.audit_enter_window(0);
        let gsum = if ctx.rank() < 2 {
            let mut g = ctx.group(&[0, 1]);
            g.allreduce_sum(ctx, 1.0)
        } else {
            0.0
        };
        ctx.audit_exit_window();
        ctx.barrier();
        (from_prev, total, mx, gsum)
    });
    for (rank, &(from_prev, total, mx, gsum)) in out.iter().enumerate() {
        let prev = (rank + 3) % 4;
        assert_eq!(from_prev, prev as f64);
        assert_eq!(total, 4.0);
        assert_eq!(mx, 3.0);
        assert_eq!(gsum, if rank < 2 { 2.0 } else { 0.0 });
    }
}
