//! Message payloads.
//!
//! MPI messages are untyped byte buffers; we use a small enum instead so the
//! solver code stays type-safe without a serialization dependency. The
//! variants cover everything the ESR-PCG algorithms exchange: scalar
//! reductions, contiguous vector blocks, index lists for communication-plan
//! setup, and sparse `(global index, value)` pairs during reconstruction.
//!
//! Buffer variants are **`Arc`-backed**: cloning a `Payload` (as the
//! broadcast/alltoall fan-out does once per child) bumps a reference count
//! instead of deep-copying the vector. The virtual clock still charges the
//! full `λ + s·µ` per physical message — zero-copy is a host-memory
//! optimization, not a change to the simulated cost model.

use std::sync::Arc;

/// A message payload.
#[derive(Clone, Debug, PartialEq)]
pub enum Payload {
    /// No data (barriers, pure synchronization).
    Empty,
    /// A single scalar (dot-product partial results, `β`, `α`, …).
    F64(f64),
    /// A contiguous block of floating-point values.
    F64s(Arc<Vec<f64>>),
    /// A list of global indices (plan setup, failed-rank announcements).
    U64s(Arc<Vec<u64>>),
    /// Sparse `(global index, value)` pairs (redundant-copy recovery).
    Pairs(Arc<Vec<(u64, f64)>>),
}

/// Unwrap an `Arc` without copying when this is the only holder (the common
/// case: a received message), falling back to a clone for shared buffers.
fn unwrap_or_clone<T: Clone>(a: Arc<T>) -> T {
    Arc::try_unwrap(a).unwrap_or_else(|a| (*a).clone())
}

impl Payload {
    /// Wrap a vector of floats (allocates only the `Arc`).
    #[must_use]
    pub fn f64s(v: Vec<f64>) -> Self {
        Payload::F64s(Arc::new(v))
    }

    /// Wrap an index list.
    #[must_use]
    pub fn u64s(v: Vec<u64>) -> Self {
        Payload::U64s(Arc::new(v))
    }

    /// Wrap an index–value pair list.
    #[must_use]
    pub fn pairs(v: Vec<(u64, f64)>) -> Self {
        Payload::Pairs(Arc::new(v))
    }

    /// Wrap an already-shared float buffer (zero-copy fan-out: send the same
    /// `Arc` to many destinations without duplicating the data).
    #[must_use]
    pub fn f64s_shared(v: Arc<Vec<f64>>) -> Self {
        Payload::F64s(v)
    }

    /// Number of "vector elements" this payload counts as in the
    /// latency–bandwidth model of the paper (Sec. 4.2). Index lists and
    /// pairs are charged at one element per entry (pairs carry an index and
    /// a value but travel once; charging 2 would double-count the setup-only
    /// index traffic — recovery cost is dominated by values).
    pub fn elems(&self) -> usize {
        match self {
            Payload::Empty => 0,
            Payload::F64(_) => 1,
            Payload::F64s(v) => v.len(),
            Payload::U64s(v) => v.len(),
            Payload::Pairs(v) => v.len(),
        }
    }

    /// Unwrap a scalar payload.
    ///
    /// # Panics
    /// Panics if the payload is not `F64`; a mismatch is a protocol bug.
    pub fn into_f64(self) -> f64 {
        match self {
            Payload::F64(x) => x,
            other => panic!("protocol error: expected F64, got {:?}", other.kind()),
        }
    }

    /// Borrow a vector payload without consuming it.
    ///
    /// Receive hot paths copy out of this borrow instead of calling
    /// [`Payload::into_f64s`]: when the sender retains the buffer `Arc` for
    /// reuse (ghost-exchange send buffers), `into_f64s` would see a shared
    /// buffer and deep-copy, while the borrow costs nothing and releases
    /// the sender's buffer as soon as the message is dropped.
    ///
    /// # Panics
    /// Panics on index-list or pair payloads; a mismatch is a protocol bug.
    pub fn as_f64s(&self) -> &[f64] {
        match self {
            Payload::F64s(v) => v,
            Payload::F64(x) => std::slice::from_ref(x),
            Payload::Empty => &[],
            other => panic!("protocol error: expected F64s, got {:?}", other.kind()),
        }
    }

    /// Unwrap a vector payload (copies only if the buffer is still shared).
    pub fn into_f64s(self) -> Vec<f64> {
        match self {
            Payload::F64s(v) => unwrap_or_clone(v),
            Payload::F64(x) => vec![x],
            Payload::Empty => Vec::new(),
            other => panic!("protocol error: expected F64s, got {:?}", other.kind()),
        }
    }

    /// Unwrap a vector payload keeping the shared backing buffer: never
    /// copies, even while the sender still holds the `Arc` (checkpoint
    /// replicas are stored exactly as received).
    pub fn into_f64s_arc(self) -> Arc<Vec<f64>> {
        match self {
            Payload::F64s(v) => v,
            Payload::F64(x) => Arc::new(vec![x]),
            Payload::Empty => Arc::new(Vec::new()),
            other => panic!("protocol error: expected F64s, got {:?}", other.kind()),
        }
    }

    /// Unwrap an index-list payload.
    pub fn into_u64s(self) -> Vec<u64> {
        match self {
            Payload::U64s(v) => unwrap_or_clone(v),
            Payload::Empty => Vec::new(),
            other => panic!("protocol error: expected U64s, got {:?}", other.kind()),
        }
    }

    /// Unwrap an index–value pair payload.
    pub fn into_pairs(self) -> Vec<(u64, f64)> {
        match self {
            Payload::Pairs(v) => unwrap_or_clone(v),
            Payload::Empty => Vec::new(),
            other => panic!("protocol error: expected Pairs, got {:?}", other.kind()),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Payload::Empty => "Empty",
            Payload::F64(_) => "F64",
            Payload::F64s(_) => "F64s",
            Payload::U64s(_) => "U64s",
            Payload::Pairs(_) => "Pairs",
        }
    }
}

/// A message in flight: source rank, matching tag, payload, and the virtual
/// time at which it arrives at the receiver (see [`crate::vclock`]).
#[derive(Clone, Debug)]
pub struct Message {
    /// Sending rank.
    pub src: usize,
    /// Matching tag.
    pub tag: crate::tag::Tag,
    /// The data.
    pub payload: Payload,
    /// Virtual arrival time at the destination under the λ/µ cost model.
    pub arrival_vtime: f64,
    /// Protocol-auditor provenance (send sequence number and recovery
    /// window); filled in by `NodeCtx::raw_send`.
    #[cfg(feature = "audit")]
    pub stamp: crate::audit::MsgStamp,
}

impl Message {
    /// Construct a message (with a default audit stamp, when that feature is
    /// compiled in — the one constructor keeps call sites feature-agnostic).
    #[must_use]
    pub fn new(src: usize, tag: crate::tag::Tag, payload: Payload, arrival_vtime: f64) -> Self {
        Message {
            src,
            tag,
            payload,
            arrival_vtime,
            #[cfg(feature = "audit")]
            stamp: crate::audit::MsgStamp::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elems_counts_entries() {
        assert_eq!(Payload::Empty.elems(), 0);
        assert_eq!(Payload::F64(1.0).elems(), 1);
        assert_eq!(Payload::f64s(vec![1.0; 7]).elems(), 7);
        assert_eq!(Payload::u64s(vec![3; 4]).elems(), 4);
        assert_eq!(Payload::pairs(vec![(0, 1.0); 5]).elems(), 5);
    }

    #[test]
    fn into_f64s_accepts_scalar_and_empty() {
        assert_eq!(Payload::F64(2.5).into_f64s(), vec![2.5]);
        assert!(Payload::Empty.into_f64s().is_empty());
        assert_eq!(Payload::f64s(vec![1.0, 2.0]).into_f64s(), vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "protocol error")]
    fn into_f64_rejects_vectors() {
        let _ = Payload::f64s(vec![1.0]).into_f64();
    }

    #[test]
    fn into_pairs_roundtrip() {
        let p = vec![(7u64, 1.5), (9u64, -2.0)];
        assert_eq!(Payload::pairs(p.clone()).into_pairs(), p);
        assert!(Payload::Empty.into_pairs().is_empty());
    }

    #[test]
    fn clones_share_the_buffer() {
        let p = Payload::f64s(vec![1.0; 1024]);
        let q = p.clone();
        match (&p, &q) {
            (Payload::F64s(a), Payload::F64s(b)) => {
                assert!(Arc::ptr_eq(a, b), "clone must not deep-copy");
            }
            _ => unreachable!(),
        }
        // Unwrapping the still-shared copy falls back to a deep copy…
        assert_eq!(q.into_f64s().len(), 1024);
        // …and unwrapping the now-unique original is move-out, not copy.
        assert_eq!(p.into_f64s().len(), 1024);
    }

    #[test]
    fn shared_buffer_fanout_is_zero_copy() {
        let buf = Arc::new(vec![2.0; 16]);
        let a = Payload::f64s_shared(buf.clone());
        let b = Payload::f64s_shared(buf.clone());
        match (&a, &b) {
            (Payload::F64s(x), Payload::F64s(y)) => assert!(Arc::ptr_eq(x, y)),
            _ => unreachable!(),
        }
    }
}
