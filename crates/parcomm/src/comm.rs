//! The per-node communicator handle: point-to-point messaging and
//! deterministic collectives.
//!
//! Collectives have a **structure fixed by (root, size)**, so floating-point
//! reductions are bitwise reproducible across runs — the reduction order
//! never depends on message timing. Broadcast and gather use binomial trees;
//! all-reduce uses **recursive doubling** (⌈log₂N⌉ rounds, no root
//! bottleneck; non-power-of-two sizes fold the surplus ranks in before and
//! out after the doubling phase, +2 rounds). This mirrors what MPI
//! implementations provide on a fixed topology and is essential for the
//! reproducibility of the numerical experiments.

use std::collections::HashMap;

#[cfg(feature = "audit")]
use crate::audit;
use crate::fault::{FailAt, FaultOracle};
use crate::group::Group;
use crate::mailbox::{Mailbox, Outbox};
use crate::payload::{Message, Payload};
use crate::request::{AllreduceRequest, EnginePort, RecvRequest, SendRequest};
use crate::stats::{CommPhase, CommStats};
use crate::tag::{op, Tag};
use crate::vclock::VClock;

/// Element-wise reduction operators over `f64` buffers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReduceOp {
    /// Element-wise sum.
    Sum,
    /// Element-wise maximum.
    Max,
    /// Element-wise minimum.
    Min,
}

impl ReduceOp {
    pub(crate) fn combine(self, acc: &mut [f64], other: &[f64]) {
        debug_assert_eq!(acc.len(), other.len(), "reduction length mismatch");
        match self {
            ReduceOp::Sum => {
                for (a, b) in acc.iter_mut().zip(other) {
                    *a += *b;
                }
            }
            ReduceOp::Max => {
                for (a, b) in acc.iter_mut().zip(other) {
                    if *b > *a {
                        *a = *b;
                    }
                }
            }
            ReduceOp::Min => {
                for (a, b) in acc.iter_mut().zip(other) {
                    if *b < *a {
                        *a = *b;
                    }
                }
            }
        }
    }
}

/// Element types that can travel in a [`Payload`] buffer variant. Lets the
/// ragged-buffer logic (broadcast counts, then flattened data, then split)
/// be written once for both `f64` and `u64`.
pub(crate) trait PayloadElem: Clone {
    fn wrap(v: Vec<Self>) -> Payload;
    fn unwrap(p: Payload) -> Vec<Self>;
}

impl PayloadElem for f64 {
    fn wrap(v: Vec<f64>) -> Payload {
        Payload::f64s(v)
    }
    fn unwrap(p: Payload) -> Vec<f64> {
        p.into_f64s()
    }
}

impl PayloadElem for u64 {
    fn wrap(v: Vec<u64>) -> Payload {
        Payload::u64s(v)
    }
    fn unwrap(p: Payload) -> Vec<u64> {
        p.into_u64s()
    }
}

impl PayloadElem for (u64, f64) {
    fn wrap(v: Vec<(u64, f64)>) -> Payload {
        Payload::pairs(v)
    }
    fn unwrap(p: Payload) -> Vec<(u64, f64)> {
        p.into_pairs()
    }
}

/// Personalized all-to-all of per-participant buffers under one tag: post
/// all sends first (asynchronous channels — no deadlock), then receive in
/// ascending participant order; the own slot is passed through untouched.
/// One implementation for the world (`members: None`) and group
/// communicators and for every element type that fits in a payload — the
/// loop used to live in four near-identical copies.
pub(crate) fn alltoallv_generic<T: PayloadElem>(
    ctx: &mut NodeCtx,
    my_index: usize,
    members: Option<&[usize]>,
    tag: Tag,
    phase: CommPhase,
    mut sends: Vec<Vec<T>>,
) -> Vec<Vec<T>> {
    let n = sends.len();
    let rank_of = |i: usize| members.map_or(i, |m| m[i]);
    let mut own = Some(std::mem::take(&mut sends[my_index]));
    for i in 0..n {
        if i != my_index {
            let data = std::mem::take(&mut sends[i]);
            ctx.send_tag(rank_of(i), tag, T::wrap(data), phase);
        }
    }
    let mut out: Vec<Vec<T>> = Vec::with_capacity(n);
    for i in 0..n {
        if i == my_index {
            out.push(own.take().expect("own slot filled once"));
        } else {
            out.push(T::unwrap(ctx.recv_tag(rank_of(i), tag, phase).payload));
        }
    }
    out
}

/// Split a flattened buffer back into per-rank pieces of the given lengths.
pub(crate) fn split_by_counts<T>(flat: Vec<T>, counts: &[u64]) -> Vec<Vec<T>> {
    debug_assert_eq!(flat.len() as u64, counts.iter().sum::<u64>());
    let mut it = flat.into_iter();
    counts
        .iter()
        .map(|&c| it.by_ref().take(c as usize).collect())
        .collect()
}

/// A node's view of the cluster: rank, mailbox, peers, clock, statistics,
/// and the failure oracle. Exactly one `NodeCtx` exists per node thread.
pub struct NodeCtx {
    rank: usize,
    size: usize,
    mailbox: Mailbox,
    outboxes: Vec<Outbox>,
    oracle: FaultOracle,
    clock: VClock,
    stats: CommStats,
    coll_seq: u64,
    group_counters: HashMap<Vec<usize>, u32>,
    spares: usize,
    /// The cluster's node scheduler (`None` only in standalone unit
    /// tests): sends notify it so a blocked matching receiver becomes
    /// runnable.
    sched: Option<std::sync::Arc<crate::sched::Scheduler>>,
    #[cfg(feature = "audit")]
    audit: Option<Box<audit::AuditState>>,
    #[cfg(feature = "trace")]
    trace: Option<Box<crate::trace::TraceState>>,
}

impl NodeCtx {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        rank: usize,
        size: usize,
        mailbox: Mailbox,
        outboxes: Vec<Outbox>,
        oracle: FaultOracle,
        clock: VClock,
        spares: usize,
    ) -> Self {
        NodeCtx {
            rank,
            size,
            mailbox,
            outboxes,
            oracle,
            clock,
            stats: CommStats::new(),
            coll_seq: 0,
            group_counters: HashMap::new(),
            spares,
            sched: None,
            #[cfg(feature = "audit")]
            audit: None,
            #[cfg(feature = "trace")]
            trace: None,
        }
    }

    /// Attach the virtual-time tracer. Called by `Cluster::run` before the
    /// program starts; strictly observational (never touches the clock).
    #[cfg(feature = "trace")]
    pub(crate) fn install_trace(&mut self) {
        self.trace = Some(Box::new(crate::trace::TraceState::new(self.rank)));
    }

    /// Surrender this node's trace log (called at teardown, before
    /// [`NodeCtx::into_teardown`]).
    #[cfg(feature = "trace")]
    pub(crate) fn take_trace(&mut self) -> Option<crate::trace::NodeTrace> {
        self.trace.take().map(|t| t.into_log())
    }

    /// Attach the cluster's node scheduler: would-block receives park on
    /// it, sends wake matching blocked receivers. Called by `Cluster::run`
    /// before the program starts.
    pub(crate) fn install_sched(&mut self, sched: std::sync::Arc<crate::sched::Scheduler>) {
        self.mailbox.install_sched(sched.clone());
        self.sched = Some(sched);
    }

    /// Attach the protocol auditor (this node's event log). Called by
    /// `Cluster::run` before the program.
    #[cfg(feature = "audit")]
    pub(crate) fn install_audit(&mut self) {
        self.audit = Some(Box::new(audit::AuditState::new(self.rank)));
    }

    /// Surrender the mailbox (for the cluster's teardown drain check) and
    /// the audit event log, consuming the context.
    #[cfg(feature = "audit")]
    pub(crate) fn into_teardown(self) -> (Mailbox, Option<audit::NodeLog>) {
        (self.mailbox, self.audit.map(|a| a.into_log()))
    }

    #[cfg(not(feature = "audit"))]
    pub(crate) fn into_teardown(self) -> (Mailbox, Option<()>) {
        (self.mailbox, None)
    }

    /// Record a matched receive into the audit log (no-op without the
    /// `audit` feature — keeps call sites feature-agnostic).
    #[cfg(feature = "audit")]
    fn audit_recv(&mut self, m: &Message) {
        if let Some(a) = &mut self.audit {
            a.record_recv(m);
        }
    }

    #[cfg(not(feature = "audit"))]
    #[inline(always)]
    fn audit_recv(&mut self, _m: &Message) {}

    /// Record a collective call into the audit log.
    #[cfg(feature = "audit")]
    pub(crate) fn audit_coll(&mut self, ev: audit::CollEvent) {
        if let Some(a) = &mut self.audit {
            a.record_coll(ev);
        }
    }

    /// Declare entry into recovery-attempt tag window `id` (a no-op without
    /// the `audit` feature). The engine calls this at the top of each
    /// recovery attempt; receives issued until the matching
    /// [`NodeCtx::audit_exit_window`] must only match messages sent inside
    /// the same window. Entering a new window while one is open closes the
    /// old one (an aborted attempt), including its residue check.
    pub fn audit_enter_window(&mut self, id: u32) {
        #[cfg(feature = "audit")]
        if let Some(a) = &mut self.audit {
            if let Some(prev) = a.window.replace(id) {
                self.mailbox.scan_window_residue(prev);
            }
        }
        #[cfg(not(feature = "audit"))]
        let _ = id;
    }

    /// Close the current recovery-attempt tag window (no-op without the
    /// `audit` feature): checks that no message stamped with the closing
    /// window remains unconsumed in this node's mailbox.
    pub fn audit_exit_window(&mut self) {
        #[cfg(feature = "audit")]
        if let Some(a) = &mut self.audit {
            if let Some(prev) = a.window.take() {
                self.mailbox.scan_window_residue(prev);
            }
        }
    }

    /// Open a named trace span stamped with the current virtual clock (a
    /// no-op without the `trace` feature — keeps call sites
    /// feature-agnostic). Spans nest; close the innermost one with
    /// [`NodeCtx::trace_close`]. Strictly observational.
    pub fn trace_open(&mut self, name: &'static str, arg: u64) {
        #[cfg(feature = "trace")]
        {
            let t = self.clock.now();
            if let Some(tr) = &mut self.trace {
                tr.record(t, crate::trace::TraceEventKind::Open { name, arg });
            }
        }
        #[cfg(not(feature = "trace"))]
        let _ = (name, arg);
    }

    /// Close the innermost open trace span (no-op without `trace`).
    pub fn trace_close(&mut self) {
        #[cfg(feature = "trace")]
        {
            let t = self.clock.now();
            if let Some(tr) = &mut self.trace {
                tr.record(t, crate::trace::TraceEventKind::Close);
            }
        }
    }

    /// Record a zero-duration trace marker (no-op without `trace`).
    pub fn trace_instant(&mut self, name: &'static str, arg: u64) {
        #[cfg(feature = "trace")]
        {
            let t = self.clock.now();
            if let Some(tr) = &mut self.trace {
                tr.record(t, crate::trace::TraceEventKind::Instant { name, arg });
            }
        }
        #[cfg(not(feature = "trace"))]
        let _ = (name, arg);
    }

    /// Record a send event with its per-`(dst, tag)` sequence number.
    #[cfg(feature = "trace")]
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn trace_send_event(
        &mut self,
        phase: CommPhase,
        dst: usize,
        tag: Tag,
        elems: usize,
        t: f64,
        dt: f64,
        engine: bool,
    ) {
        if let Some(tr) = &mut self.trace {
            let seq = tr.next_send_seq(dst, tag);
            tr.record(
                t,
                crate::trace::TraceEventKind::Send {
                    phase,
                    dst,
                    tag,
                    elems,
                    seq,
                    dt,
                    engine,
                },
            );
        }
    }

    /// Record a receive event with its per-`(src, tag)` sequence number.
    #[cfg(feature = "trace")]
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn trace_recv_event(
        &mut self,
        phase: CommPhase,
        src: usize,
        tag: Tag,
        elems: usize,
        t: f64,
        stall: f64,
        engine: bool,
    ) {
        if let Some(tr) = &mut self.trace {
            let seq = tr.next_recv_seq(src, tag);
            tr.record(
                t,
                crate::trace::TraceEventKind::Recv {
                    phase,
                    src,
                    tag,
                    elems,
                    seq,
                    stall,
                    engine,
                },
            );
        }
    }

    /// Record the exposed/hidden split charged by a non-blocking `wait`.
    #[cfg(feature = "trace")]
    pub(crate) fn trace_wait_event(&mut self, phase: CommPhase, t: f64, exposed: f64, hidden: f64) {
        if let Some(tr) = &mut self.trace {
            tr.record(
                t,
                crate::trace::TraceEventKind::Wait {
                    phase,
                    exposed,
                    hidden,
                },
            );
        }
    }

    /// Test double: reintroduce the PR 2 `swap_remove` FIFO defect in this
    /// node's mailbox, to prove the auditor's non-overtaking check fires.
    #[doc(hidden)]
    #[cfg(feature = "audit")]
    pub fn audit_seed_fifo_bug(&mut self) {
        self.mailbox.seed_fifo_bug();
    }

    /// This node's rank in `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of nodes in the cluster.
    pub fn size(&self) -> usize {
        self.size
    }

    // ------------------------------------------------------------------
    // Point-to-point
    // ------------------------------------------------------------------

    /// Send `payload` to `dest` with a user tag, charged to `phase`.
    pub fn send(&mut self, dest: usize, tag: u32, payload: Payload, phase: CommPhase) {
        self.send_tag(dest, Tag::user(tag), payload, phase);
    }

    pub(crate) fn send_tag(&mut self, dest: usize, tag: Tag, payload: Payload, phase: CommPhase) {
        debug_assert!(dest < self.size, "send to rank {} of {}", dest, self.size);
        let elems = payload.elems();
        self.stats.record_send(phase, elems);
        let t0 = self.clock.now();
        let arrival_vtime = self.clock.stamp_send(elems);
        self.stats.record_send_vtime(phase, arrival_vtime - t0);
        #[cfg(feature = "trace")]
        self.trace_send_event(phase, dest, tag, elems, t0, arrival_vtime - t0, false);
        self.raw_send(dest, tag, payload, arrival_vtime);
    }

    /// Deliver a message with an explicit arrival stamp, touching neither
    /// the clock nor the statistics — the primitive beneath both the
    /// blocking path (which charges the sender first) and the non-blocking
    /// engine (which stamps with its own detached timeline).
    pub(crate) fn raw_send(&mut self, dest: usize, tag: Tag, payload: Payload, arrival_vtime: f64) {
        debug_assert_ne!(dest, self.rank, "self-send is a protocol bug");
        #[allow(unused_mut)]
        let mut msg = Message::new(self.rank, tag, payload, arrival_vtime);
        #[cfg(feature = "audit")]
        if let Some(a) = &mut self.audit {
            msg.stamp = a.stamp_send(dest, tag);
        }
        // A closed channel means the peer thread panicked; propagate.
        self.outboxes[dest]
            .send(msg)
            .unwrap_or_else(|_| panic!("rank {}: peer {} is gone", self.rank, dest));
        // Push first, then notify: when the receiver is re-dispatched the
        // message is guaranteed to be in its channel.
        if let Some(sched) = &self.sched {
            sched.notify_send(dest, self.rank, tag);
        }
    }

    /// Blocking mailbox receive with no clock or stats effects (the
    /// non-blocking engine accounts on its own timeline).
    pub(crate) fn raw_recv_blocking(&mut self, src: usize, tag: Tag) -> Message {
        let now = self.clock.now();
        let m = self.mailbox.recv(src, tag, now);
        self.audit_recv(&m);
        m
    }

    /// Non-blocking, non-consuming mailbox probe with no clock or stats
    /// effects (advisory `test` path — matching stays in program order).
    pub(crate) fn raw_peek_recv(&mut self, src: usize, tag: Tag) -> Option<&Message> {
        self.mailbox.peek_match(src, tag)
    }

    /// Send one physical message whose elements belong to several
    /// accounting phases (e.g. natural SpMV traffic plus appended
    /// redundancy copies — the paper's latency-avoidance optimization:
    /// one message, one λ, split bookkeeping). The `split` counts must sum
    /// to the payload's element count.
    pub fn send_with_phases(
        &mut self,
        dest: usize,
        tag: u32,
        payload: Payload,
        split: &[(CommPhase, usize)],
    ) {
        debug_assert_eq!(
            split.iter().map(|&(_, n)| n).sum::<usize>(),
            payload.elems(),
            "phase split must cover the payload"
        );
        let mut first = true;
        for &(phase, elems) in split {
            if first {
                self.stats.record_send(phase, elems);
                first = false;
            } else {
                // Count elements without double-counting the message.
                let msgs_before = self.stats.msgs(phase);
                self.stats.record_send(phase, elems);
                // record_send bumped the message counter; compensate so
                // message counts reflect physical messages.
                debug_assert_eq!(self.stats.msgs(phase), msgs_before + 1);
                self.stats.uncount_msg(phase);
            }
        }
        let elems = payload.elems();
        let t0 = self.clock.now();
        let arrival_vtime = self.clock.stamp_send(elems);
        // The transfer time of the one physical message is charged to the
        // first phase that actually contributes elements — a link carrying
        // only redundancy must book its time under Redundancy, not under
        // an empty leading Spmv slot.
        let owner = split
            .iter()
            .find(|&&(_, n)| n > 0)
            .map_or(split[0].0, |&(p, _)| p);
        self.stats.record_send_vtime(owner, arrival_vtime - t0);
        #[cfg(feature = "trace")]
        self.trace_send_event(
            owner,
            dest,
            Tag::user(tag),
            elems,
            t0,
            arrival_vtime - t0,
            false,
        );
        self.raw_send(dest, Tag::user(tag), payload, arrival_vtime);
    }

    /// Blocking receive of a user-tagged message from `src` (stall time
    /// accounted to [`CommPhase::Other`]; use [`NodeCtx::recv_phase`] to
    /// attribute it).
    pub fn recv(&mut self, src: usize, tag: u32) -> Payload {
        self.recv_phase(src, tag, CommPhase::Other)
    }

    /// Blocking receive of a user-tagged message from `src`, with the stall
    /// time attributed to `phase`.
    pub fn recv_phase(&mut self, src: usize, tag: u32, phase: CommPhase) -> Payload {
        self.recv_tag(src, Tag::user(tag), phase).payload
    }

    pub(crate) fn recv_tag(&mut self, src: usize, tag: Tag, phase: CommPhase) -> Message {
        let m = self.raw_recv_blocking(src, tag);
        #[cfg(feature = "trace")]
        let t0 = self.clock.now();
        let stall = self.clock.absorb_arrival(m.arrival_vtime);
        self.stats.record_wait_vtime(phase, stall);
        #[cfg(feature = "trace")]
        self.trace_recv_event(phase, src, tag, m.payload.elems(), t0, stall, false);
        m
    }

    /// Blocking receive of a user-tagged message from any source.
    pub fn recv_any(&mut self, tag: u32) -> (usize, Payload) {
        let now = self.clock.now();
        let m = self.mailbox.recv_any(Tag::user(tag), now);
        self.audit_recv(&m);
        #[cfg(feature = "trace")]
        let t0 = self.clock.now();
        let stall = self.clock.absorb_arrival(m.arrival_vtime);
        self.stats.record_wait_vtime(CommPhase::Other, stall);
        #[cfg(feature = "trace")]
        self.trace_recv_event(
            CommPhase::Other,
            m.src,
            Tag::user(tag),
            m.payload.elems(),
            t0,
            stall,
            false,
        );
        (m.src, m.payload)
    }

    // ------------------------------------------------------------------
    // Non-blocking point-to-point and collectives
    // ------------------------------------------------------------------

    /// Non-blocking send: the message departs immediately (stamped from the
    /// current clock), but the sender's clock is **not** charged — the
    /// transfer runs concurrently with whatever the node computes next.
    /// [`SendRequest::wait`] charges only the part of the transfer not
    /// hidden behind that compute.
    pub fn isend(
        &mut self,
        dest: usize,
        tag: u32,
        payload: Payload,
        phase: CommPhase,
    ) -> SendRequest {
        debug_assert!(dest < self.size, "send to rank {} of {}", dest, self.size);
        let elems = payload.elems();
        self.stats.record_send(phase, elems);
        let start = self.clock.now();
        let cost = self.clock.model().msg_cost(elems);
        let done_at = start + cost;
        #[cfg(feature = "trace")]
        self.trace_send_event(phase, dest, Tag::user(tag), elems, start, cost, true);
        self.raw_send(dest, Tag::user(tag), payload, done_at);
        SendRequest::new(done_at, cost, phase)
    }

    /// Non-blocking receive: returns a handle that matches `(src, tag)`.
    /// Compute performed before [`RecvRequest::wait`] overlaps the message
    /// flight; `wait` charges only the remaining latency
    /// (`max(clock, arrival) − clock`). The message is matched at `wait`,
    /// in program order — interleaving blocking `recv`s on the same
    /// `(src, tag)` while the request is in flight matches them in the
    /// order the calls execute, deterministically.
    pub fn irecv(&mut self, src: usize, tag: u32, phase: CommPhase) -> RecvRequest {
        let tag = Tag::user(tag);
        let posted_at = self.clock.now();
        RecvRequest::new(src, tag, phase, posted_at)
    }

    /// Non-blocking element-wise all-reduce: same deterministic
    /// recursive-doubling schedule (and bitwise-identical result) as
    /// [`NodeCtx::allreduce_vec`], but executed on a detached virtual
    /// timeline, as if by a communication offload engine. The node clock is
    /// untouched until [`AllreduceRequest::wait`], which charges only
    /// `max(clock, completion) − clock` — compute issued between `start`
    /// and `wait` hides the reduction's flight time.
    ///
    /// All nodes must issue the operation at the same SPMD point (it shares
    /// the collective sequence space with the blocking collectives).
    pub fn iallreduce_vec(&mut self, opr: ReduceOp, x: Vec<f64>) -> AllreduceRequest {
        let seq = self.next_seq();
        let tag = Tag::coll(op::ALLREDUCE, seq);
        #[cfg(feature = "audit")]
        self.audit_coll(audit::CollEvent {
            scope: None,
            seq,
            kind: op::ALLREDUCE,
            rop: Some(opr),
            len: Some(x.len()),
            members_hash: audit::WORLD_HASH,
            n_members: self.size,
        });
        let (rank, size) = (self.rank, self.size);
        self.trace_open("iallreduce", seq);
        let start = self.clock.now();
        let mut port = EnginePort::new(self, start, CommPhase::Reduction);
        let (acc, rounds) = rd_allreduce(&mut port, rank, size, None, tag, opr, x);
        let done_at = port.now();
        self.trace_close();
        self.stats.record_allreduce(rounds);
        AllreduceRequest::new(acc, start, done_at, CommPhase::Reduction)
    }

    // ------------------------------------------------------------------
    // Collectives
    // ------------------------------------------------------------------

    fn next_seq(&mut self) -> u64 {
        let s = self.coll_seq;
        self.coll_seq += 1;
        s
    }

    /// Synchronize all nodes (and their virtual clocks). Implemented as a
    /// zero-length recursive-doubling exchange, so every node transitively
    /// absorbs every other node's clock in ⌈log₂N⌉(+2) rounds.
    pub fn barrier(&mut self) {
        let seq = self.next_seq();
        let tag = Tag::coll(op::BARRIER, seq);
        #[cfg(feature = "audit")]
        self.audit_coll(audit::CollEvent {
            scope: None,
            seq,
            kind: op::BARRIER,
            rop: None,
            len: Some(0),
            members_hash: audit::WORLD_HASH,
            n_members: self.size,
        });
        let (rank, size) = (self.rank, self.size);
        self.trace_open("barrier", seq);
        let mut port = BlockingPort {
            ctx: self,
            phase: CommPhase::Reduction,
        };
        rd_allreduce(&mut port, rank, size, None, tag, ReduceOp::Sum, Vec::new());
        self.trace_close();
    }

    /// Broadcast `payload` from `root`; every node returns the payload.
    pub fn bcast(&mut self, root: usize, payload: Payload) -> Payload {
        let seq = self.next_seq();
        #[cfg(feature = "audit")]
        self.audit_coll(audit::CollEvent {
            scope: None,
            seq,
            kind: op::BCAST,
            rop: None,
            // Only the root knows the length up front; leaves record None
            // and the checker compares lengths among declared values only.
            len: None,
            members_hash: audit::WORLD_HASH,
            n_members: self.size,
        });
        self.trace_open("bcast", seq);
        let out = self.tree_bcast_from(root, payload, Tag::coll(op::BCAST, seq));
        self.trace_close();
        out
    }

    /// All-reduce a scalar.
    pub fn allreduce_sum(&mut self, x: f64) -> f64 {
        self.allreduce_vec(ReduceOp::Sum, vec![x])[0]
    }

    /// All-reduce max of a scalar.
    pub fn allreduce_max(&mut self, x: f64) -> f64 {
        self.allreduce_vec(ReduceOp::Max, vec![x])[0]
    }

    /// All-reduce min of a scalar.
    pub fn allreduce_min(&mut self, x: f64) -> f64 {
        self.allreduce_vec(ReduceOp::Min, vec![x])[0]
    }

    /// Element-wise all-reduce of an `f64` buffer (all nodes pass equal
    /// lengths; the result is bitwise identical on every node).
    ///
    /// Recursive doubling: ⌈log₂N⌉ rounds (+2 on non-power-of-two sizes),
    /// every node sends and receives one buffer per round — no root
    /// bottleneck, and half the rounds of the former reduce-to-root +
    /// broadcast implementation. The pairing and combination order are
    /// fixed functions of (rank, size), so the result is deterministic.
    pub fn allreduce_vec(&mut self, opr: ReduceOp, x: Vec<f64>) -> Vec<f64> {
        let seq = self.next_seq();
        let tag = Tag::coll(op::ALLREDUCE, seq);
        #[cfg(feature = "audit")]
        self.audit_coll(audit::CollEvent {
            scope: None,
            seq,
            kind: op::ALLREDUCE,
            rop: Some(opr),
            len: Some(x.len()),
            members_hash: audit::WORLD_HASH,
            n_members: self.size,
        });
        let (rank, size) = (self.rank, self.size);
        self.trace_open("allreduce", seq);
        let mut port = BlockingPort {
            ctx: self,
            phase: CommPhase::Reduction,
        };
        let (acc, rounds) = rd_allreduce(&mut port, rank, size, None, tag, opr, x);
        self.trace_close();
        self.stats.record_allreduce(rounds);
        acc
    }

    /// Gather variable-length `f64` buffers on `root` (rank order).
    /// Non-roots return `None`.
    pub fn gatherv_f64(&mut self, root: usize, x: Vec<f64>) -> Option<Vec<Vec<f64>>> {
        let seq = self.next_seq();
        let tag = Tag::coll(op::GATHER, seq);
        #[cfg(feature = "audit")]
        self.audit_coll(audit::CollEvent {
            scope: None,
            seq,
            kind: op::GATHER,
            rop: None,
            len: None, // ragged by design
            members_hash: audit::WORLD_HASH,
            n_members: self.size,
        });
        self.trace_open("gather", seq);
        let out = if self.rank == root {
            let mut own = Some(x);
            let mut out: Vec<Vec<f64>> = Vec::with_capacity(self.size);
            for r in 0..self.size {
                if r == root {
                    out.push(own.take().expect("own slot filled once"));
                } else {
                    out.push(self.recv_tag(r, tag, CommPhase::Other).payload.into_f64s());
                }
            }
            Some(out)
        } else {
            self.send_tag(root, tag, Payload::f64s(x), CommPhase::Other);
            None
        };
        self.trace_close();
        out
    }

    /// All-gather variable-length `f64` buffers; result indexed by rank.
    pub fn allgatherv_f64(&mut self, x: Vec<f64>) -> Vec<Vec<f64>> {
        let gathered = self.gatherv_f64(0, x);
        self.bcast_ragged(0, gathered)
    }

    /// All-gather variable-length `u64` buffers; result indexed by rank.
    pub fn allgatherv_u64(&mut self, x: Vec<u64>) -> Vec<Vec<u64>> {
        let seq = self.next_seq();
        let tag = Tag::coll(op::GATHER, seq);
        #[cfg(feature = "audit")]
        self.audit_coll(audit::CollEvent {
            scope: None,
            seq,
            kind: op::GATHER,
            rop: None,
            len: None, // ragged by design
            members_hash: audit::WORLD_HASH,
            n_members: self.size,
        });
        self.trace_open("gather", seq);
        let gathered: Option<Vec<Vec<u64>>> = if self.rank == 0 {
            let mut own = Some(x);
            let mut out: Vec<Vec<u64>> = Vec::with_capacity(self.size);
            for r in 0..self.size {
                if r == 0 {
                    out.push(own.take().expect("own slot filled once"));
                } else {
                    out.push(self.recv_tag(r, tag, CommPhase::Other).payload.into_u64s());
                }
            }
            Some(out)
        } else {
            self.send_tag(0, tag, Payload::u64s(x), CommPhase::Other);
            None
        };
        self.trace_close();
        self.bcast_ragged(0, gathered)
    }

    /// Broadcast ragged per-rank buffers from `root`: counts first, then the
    /// flattened data, then split back. One implementation for every element
    /// type that fits in a payload (the logic used to be triplicated).
    fn bcast_ragged<T: PayloadElem>(
        &mut self,
        root: usize,
        vecs: Option<Vec<Vec<T>>>,
    ) -> Vec<Vec<T>> {
        let counts = self.bcast(
            root,
            match &vecs {
                Some(vs) => Payload::u64s(vs.iter().map(|v| v.len() as u64).collect()),
                None => Payload::Empty,
            },
        );
        let flat = self.bcast(
            root,
            match vecs {
                Some(vs) => T::wrap(vs.into_iter().flatten().collect()),
                None => Payload::Empty,
            },
        );
        split_by_counts(T::unwrap(flat), &counts.into_u64s())
    }

    /// Personalized all-to-all of index lists: `sends[k]` goes to rank `k`;
    /// returns the lists received from every rank (own slot passed through).
    /// Every pair exchanges a message (possibly empty) — used for one-time
    /// plan setup, where symmetric knowledge is simplest and N ≤ a few
    /// hundred.
    pub fn alltoallv_u64(&mut self, sends: Vec<Vec<u64>>) -> Vec<Vec<u64>> {
        assert_eq!(sends.len(), self.size, "alltoallv needs one list per rank");
        let seq = self.next_seq();
        let tag = Tag::coll(op::ALLTOALL, seq);
        #[cfg(feature = "audit")]
        self.audit_coll(audit::CollEvent {
            scope: None,
            seq,
            kind: op::ALLTOALL,
            rop: None,
            len: None, // ragged by design
            members_hash: audit::WORLD_HASH,
            n_members: self.size,
        });
        let rank = self.rank;
        self.trace_open("alltoall", seq);
        let out = alltoallv_generic(self, rank, None, tag, CommPhase::Setup, sends);
        self.trace_close();
        out
    }

    /// Personalized all-to-all of `(index, value)` pair lists, charged to
    /// `phase` (recovery gathers use this).
    pub fn alltoallv_pairs(
        &mut self,
        sends: Vec<Vec<(u64, f64)>>,
        phase: CommPhase,
    ) -> Vec<Vec<(u64, f64)>> {
        assert_eq!(sends.len(), self.size, "alltoallv needs one list per rank");
        let seq = self.next_seq();
        let tag = Tag::coll(op::ALLTOALL, seq);
        #[cfg(feature = "audit")]
        self.audit_coll(audit::CollEvent {
            scope: None,
            seq,
            kind: op::ALLTOALL,
            rop: None,
            len: None, // ragged by design
            members_hash: audit::WORLD_HASH,
            n_members: self.size,
        });
        let rank = self.rank;
        self.trace_open("alltoall", seq);
        let out = alltoallv_generic(self, rank, None, tag, phase, sends);
        self.trace_close();
        out
    }

    // ------------------------------------------------------------------
    // Binomial-tree broadcast primitive
    // ------------------------------------------------------------------

    /// Broadcast from `root` over a binomial tree. The per-child
    /// `data.clone()` is an `Arc` bump, not a buffer copy.
    fn tree_bcast_from(&mut self, root: usize, payload: Payload, tag: Tag) -> Payload {
        let n = self.size;
        if n == 1 {
            return payload;
        }
        let vrank = (self.rank + n - root) % n;
        // Find the highest power of two ≤ n.
        let mut top = 1usize;
        while top << 1 < n {
            top <<= 1;
        }
        let data: Payload = if vrank == 0 {
            payload
        } else {
            // Receive from parent: clear lowest set bit of vrank.
            let parent_v = vrank & (vrank - 1);
            let parent = (parent_v + root) % n;
            self.recv_tag(parent, tag, CommPhase::Reduction).payload
        };
        // Forward to children (bits below our lowest set bit), farthest
        // subtree first so it starts as early as possible.
        let lowbit = if vrank == 0 {
            top << 1
        } else {
            vrank & vrank.wrapping_neg()
        };
        let mut mask = top;
        while mask > 0 {
            if mask < lowbit {
                let child_v = vrank | mask;
                if child_v < n {
                    let child = (child_v + root) % n;
                    self.send_tag(child, tag, data.clone(), CommPhase::Reduction);
                }
            }
            mask >>= 1;
        }
        data
    }

    // ------------------------------------------------------------------
    // Groups, faults, metrics
    // ------------------------------------------------------------------

    /// Create a sub-communicator over `ranks` (must contain this rank; all
    /// members must call with the same set at the same SPMD point).
    pub fn group(&mut self, ranks: &[usize]) -> Group {
        Group::create(self, ranks)
    }

    pub(crate) fn group_creation_counter(&mut self, members: &[usize]) -> u32 {
        let c = self.group_counters.entry(members.to_vec()).or_insert(0);
        let v = *c;
        *c += 1;
        v
    }

    /// Consult the failure oracle at a boundary; all nodes receive the same
    /// answer (simulates ULFM failure notification + agreement).
    pub fn poll_failures(&self, boundary: FailAt) -> Vec<usize> {
        self.oracle.poll(boundary)
    }

    /// The failure oracle handle.
    pub fn oracle(&self) -> &FaultOracle {
        &self.oracle
    }

    /// This node's view of the cluster's hot-spare pool (see
    /// [`crate::cluster::SparePool`]): a fresh handle holding the
    /// provisioned total. Claims are SPMD-deterministic bookkeeping, so
    /// every node's copy evolves identically.
    pub fn spare_pool(&self) -> crate::cluster::SparePool {
        crate::cluster::SparePool::new(self.spares)
    }

    /// Current virtual time on this node.
    pub fn vtime(&self) -> f64 {
        self.clock.now()
    }

    /// Mutable access to the virtual clock (compute-cost accounting).
    pub fn clock_mut(&mut self) -> &mut VClock {
        &mut self.clock
    }

    /// The virtual clock.
    pub fn clock(&self) -> &VClock {
        &self.clock
    }

    /// Communication statistics of this node.
    pub fn stats(&self) -> &CommStats {
        &self.stats
    }

    /// Mutable statistics (e.g. recording extra-latency events).
    pub fn stats_mut(&mut self) -> &mut CommStats {
        &mut self.stats
    }

    /// Reset clock and statistics (between timed experiment sections);
    /// collective sequence numbers are preserved (they must stay aligned).
    pub fn reset_metrics(&mut self) {
        #[cfg(feature = "trace")]
        if let Some(tr) = self.trace.as_mut() {
            tr.clock_reset(self.clock.now());
        }
        self.clock.reset();
        self.stats.reset();
        self.trace_instant("reset_metrics", 0);
    }
}

/// How a recursive-doubling round moves bytes and time: the blocking path
/// charges the node clock directly; the non-blocking engine runs the same
/// schedule on a detached timeline (see [`crate::request::EnginePort`]).
/// Factoring the transport out keeps the *schedule* — and therefore the
/// bitwise result — identical between `allreduce_vec` and `iallreduce_vec`.
pub(crate) trait RdPort {
    fn port_send(&mut self, peer: usize, tag: Tag, payload: Payload);
    fn port_recv(&mut self, peer: usize, tag: Tag) -> Payload;
    /// Trace hook: one recursive-doubling communication round begins
    /// (default no-op; ports forward to the node's tracer).
    fn round_open(&mut self, _round: usize) {}
    /// Trace hook: the current communication round ends.
    fn round_close(&mut self) {}
}

/// The blocking transport: sends charge the node clock, receives stall it.
pub(crate) struct BlockingPort<'a> {
    pub ctx: &'a mut NodeCtx,
    pub phase: CommPhase,
}

impl RdPort for BlockingPort<'_> {
    fn port_send(&mut self, peer: usize, tag: Tag, payload: Payload) {
        self.ctx.send_tag(peer, tag, payload, self.phase);
    }

    fn port_recv(&mut self, peer: usize, tag: Tag) -> Payload {
        self.ctx.recv_tag(peer, tag, self.phase).payload
    }

    fn round_open(&mut self, round: usize) {
        self.ctx.trace_open("round", round as u64);
    }

    fn round_close(&mut self) {
        self.ctx.trace_close();
    }
}

/// Deterministic recursive-doubling all-reduce over `n` participants.
///
/// `my_index` is this node's participant index; `members` maps participant
/// indices to global ranks (`None` ⇒ identity, i.e. the world communicator).
/// Returns the reduced buffer — **bitwise identical on every participant** —
/// and the number of communication rounds this participant took part in.
///
/// The standard MPICH scheme, fixed pairing so reductions are reproducible:
///
/// 1. **Fold-in** (non-power-of-two only): the first `2·rem` indices pair up
///    `(2k, 2k+1)`; evens push their buffer to the odd neighbour and sit
///    out. `pof2 = n − rem` participants remain.
/// 2. **Doubling**: `log₂(pof2)` rounds; in round `mask` each participant
///    exchanges its partial with `index ⊕ mask` and both combine. Partial
///    results are always combined lower-index-group first, so after every
///    round both partners hold bitwise-identical buffers.
/// 3. **Fold-out**: the odd fold-in indices return the finished result to
///    their even neighbours.
///
/// Within one call every ordered pair of participants exchanges at most one
/// message, so a single tag covers all rounds.
pub(crate) fn rd_allreduce<P: RdPort>(
    port: &mut P,
    my_index: usize,
    n: usize,
    members: Option<&[usize]>,
    tag: Tag,
    opr: ReduceOp,
    x: Vec<f64>,
) -> (Vec<f64>, usize) {
    if n == 1 {
        return (x, 0);
    }
    let rank_of = |i: usize| members.map_or(i, |m| m[i]);
    let mut acc = x;
    let pof2 = prev_power_of_two(n);
    let rem = n - pof2;
    let mut rounds = 0usize;

    // Phase 1: fold-in.
    let newidx = if my_index < 2 * rem {
        port.round_open(rounds);
        rounds += 1;
        let r = if my_index.is_multiple_of(2) {
            let peer = rank_of(my_index + 1);
            port.port_send(peer, tag, Payload::f64s(acc.clone()));
            None // folded out until phase 3
        } else {
            let theirs = port.port_recv(rank_of(my_index - 1), tag).into_f64s();
            acc = combined(opr, theirs, &acc); // lower index first
            Some(my_index / 2)
        };
        port.round_close();
        r
    } else {
        Some(my_index - rem)
    };

    // Phase 2: doubling among the pof2 survivors. `orig` maps a doubling
    // index back to the participant index holding it.
    if let Some(v) = newidx {
        let orig = |d: usize| if d < rem { 2 * d + 1 } else { d + rem };
        let mut mask = 1usize;
        while mask < pof2 {
            port.round_open(rounds);
            let peer = rank_of(orig(v ^ mask));
            port.port_send(peer, tag, Payload::f64s(acc.clone()));
            let theirs = port.port_recv(peer, tag).into_f64s();
            if v & mask == 0 {
                opr.combine(&mut acc, &theirs);
            } else {
                acc = combined(opr, theirs, &acc);
            }
            port.round_close();
            mask <<= 1;
            rounds += 1;
        }
    }

    // Phase 3: fold-out.
    if my_index < 2 * rem {
        port.round_open(rounds);
        rounds += 1;
        if my_index % 2 == 1 {
            let peer = rank_of(my_index - 1);
            port.port_send(peer, tag, Payload::f64s(acc.clone()));
        } else {
            acc = port.port_recv(rank_of(my_index + 1), tag).into_f64s();
        }
        port.round_close();
    }
    (acc, rounds)
}

/// `lower ⊕ higher` with the lower-index group as the left operand — the
/// canonical combination order every participant applies identically.
fn combined(opr: ReduceOp, mut lower: Vec<f64>, higher: &[f64]) -> Vec<f64> {
    opr.combine(&mut lower, higher);
    lower
}

/// Largest power of two ≤ `n` (`n ≥ 1`).
fn prev_power_of_two(n: usize) -> usize {
    debug_assert!(n >= 1);
    if n.is_power_of_two() {
        n
    } else {
        n.next_power_of_two() >> 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prev_power_of_two_bounds() {
        assert_eq!(prev_power_of_two(1), 1);
        assert_eq!(prev_power_of_two(2), 2);
        assert_eq!(prev_power_of_two(3), 2);
        assert_eq!(prev_power_of_two(13), 8);
        assert_eq!(prev_power_of_two(16), 16);
        assert_eq!(prev_power_of_two(64), 64);
    }

    #[test]
    fn split_by_counts_partitions() {
        let out = split_by_counts(vec![1u64, 2, 3, 4, 5], &[2, 0, 3]);
        assert_eq!(out, vec![vec![1, 2], vec![], vec![3, 4, 5]]);
    }
}
