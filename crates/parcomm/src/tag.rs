//! Message tags.
//!
//! Tags disambiguate concurrent communication streams, like MPI tags plus
//! MPI's internal collective contexts. The 64-bit tag space is split into:
//!
//! * **user** tags — point-to-point solver traffic (SpMV ghost exchange,
//!   redundancy copies, recovery gathers), identified by a small `u32`;
//! * **collective** tags — internal to `parcomm` collectives. Every
//!   collective call on a communicator consumes one *sequence number*; since
//!   the programs are SPMD, all ranks issue collectives in the same order
//!   and the sequence numbers agree without negotiation;
//! * **group** tags — collectives on sub-communicators, additionally scoped
//!   by a group id that member ranks derive identically from the member set.

/// A message tag (total order, cheap copy).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tag(pub u64);

const KIND_USER: u64 = 0;
const KIND_COLL: u64 = 1;
const KIND_GROUP: u64 = 2;

impl Tag {
    /// A user (application-level) point-to-point tag.
    pub fn user(t: u32) -> Self {
        Tag((KIND_USER << 62) | t as u64)
    }

    /// An internal collective tag: `op` identifies the collective kind,
    /// `seq` the per-communicator collective sequence number.
    pub fn coll(op: u8, seq: u64) -> Self {
        debug_assert!(seq < (1 << 48), "collective sequence overflow");
        Tag((KIND_COLL << 62) | ((op as u64) << 48) | (seq & ((1 << 48) - 1)))
    }

    /// A sub-communicator collective tag, scoped by `gid`.
    pub fn group(gid: u32, op: u8, seq: u32) -> Self {
        Tag((KIND_GROUP << 62) | ((gid as u64) << 30) | ((op as u64) << 22) | seq as u64)
    }

    /// Human-readable decoding for diagnostics ("user(7)",
    /// "coll(allreduce, seq 3)", "group(gid 0x2a, gather, seq 1)", …).
    pub fn describe(&self) -> String {
        match self.0 >> 62 {
            KIND_USER => format!("user({})", self.0 & 0xFFFF_FFFF),
            KIND_COLL => format!(
                "coll({}, seq {})",
                op::name(((self.0 >> 48) & 0xFF) as u8),
                self.0 & ((1 << 48) - 1)
            ),
            KIND_GROUP => format!(
                "group(gid {:#x}, {}, seq {})",
                (self.0 >> 30) & 0xFFFF_FFFF,
                op::name(((self.0 >> 22) & 0xFF) as u8),
                self.0 & ((1 << 22) - 1)
            ),
            _ => format!("invalid({:#x})", self.0),
        }
    }
}

/// Collective operation identifiers (for tag scoping only).
pub mod op {
    /// Barrier synchronization.
    pub const BARRIER: u8 = 1;
    /// Broadcast.
    pub const BCAST: u8 = 2;
    /// Reduction.
    pub const REDUCE: u8 = 3;
    /// Gather / all-gather.
    pub const GATHER: u8 = 4;
    /// Personalized all-to-all.
    pub const ALLTOALL: u8 = 5;
    /// Scatter.
    pub const SCATTER: u8 = 6;
    /// Recursive-doubling all-reduce (one tag covers all of its rounds:
    /// within one call every ordered pair of ranks exchanges at most one
    /// message, so rounds cannot be confused).
    pub const ALLREDUCE: u8 = 7;

    /// The operation's name, for diagnostics.
    pub(crate) fn name(op: u8) -> &'static str {
        match op {
            BARRIER => "barrier",
            BCAST => "bcast",
            REDUCE => "reduce",
            GATHER => "gather",
            ALLTOALL => "alltoall",
            SCATTER => "scatter",
            ALLREDUCE => "allreduce",
            _ => "unknown",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_spaces_disjoint() {
        // A user tag can never collide with a collective or group tag.
        let u = Tag::user(42);
        let c = Tag::coll(op::BARRIER, 42);
        let g = Tag::group(0, op::BARRIER, 42);
        assert_ne!(u, c);
        assert_ne!(u, g);
        assert_ne!(c, g);
    }

    #[test]
    fn collective_sequences_distinct() {
        assert_ne!(Tag::coll(op::BCAST, 1), Tag::coll(op::BCAST, 2));
        assert_ne!(Tag::coll(op::BCAST, 1), Tag::coll(op::REDUCE, 1));
    }

    #[test]
    fn group_ids_scope_tags() {
        assert_ne!(Tag::group(1, op::GATHER, 5), Tag::group(2, op::GATHER, 5));
    }

    #[test]
    fn describe_decodes_every_kind() {
        assert_eq!(Tag::user(42).describe(), "user(42)");
        assert_eq!(
            Tag::coll(op::ALLREDUCE, 3).describe(),
            "coll(allreduce, seq 3)"
        );
        assert_eq!(
            Tag::group(0x2A, op::GATHER, 1).describe(),
            "group(gid 0x2a, gather, seq 1)"
        );
    }
}
