//! The SPMD cluster harness.
//!
//! [`Cluster::run`] gives every simulated compute node its own OS thread
//! (private stack, blocking call style), wires up the mailboxes, and
//! executes the same program on every node — the SPMD model of MPI. The
//! threads do not free-run: a [`crate::sched::Scheduler`] dispatches
//! exactly one runnable node at a time by minimum `(virtual time, rank)`,
//! so execution order is deterministic and node count is decoupled from
//! host parallelism (N = 1024 clusters run fine on a 2-core host).
//! Per-node results are collected in rank order.
//!
//! The paper runs one MPI process per node (Sec. 7.1, "we use only one
//! process per node"), so a node ≡ a rank here too.

use std::sync::Arc;
use std::thread;

use crate::comm::NodeCtx;
use crate::fault::{FailureScript, FaultOracle};
use crate::mailbox::Mailbox;
#[cfg(any(debug_assertions, feature = "audit"))]
use crate::payload::Message;
use crate::sched::Scheduler;
use crate::vclock::{CostModel, VClock};

/// What a node thread hands back at teardown: the program's result (or its
/// panic payload), the mailbox (so the harness can inspect residue), and —
/// under `--features audit` — the node's protocol log.
struct NodeFinish<T> {
    result: thread::Result<T>,
    mailbox: Mailbox,
    #[cfg(feature = "audit")]
    log: Option<crate::audit::NodeLog>,
    #[cfg(feature = "trace")]
    trace: Option<crate::trace::NodeTrace>,
}

/// What `run_inner` hands back next to the per-node results: the gathered
/// per-rank trace logs under `--features trace`, nothing otherwise.
#[cfg(feature = "trace")]
type TraceVec = Vec<crate::trace::NodeTrace>;
#[cfg(not(feature = "trace"))]
type TraceVec = ();

/// Cluster-wide configuration.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of compute nodes N.
    pub nodes: usize,
    /// Latency–bandwidth–flop cost model for the virtual clock.
    pub cost: CostModel,
    /// Scheduled node failures (empty for failure-free runs).
    pub script: FailureScript,
    /// Size of the hot-spare pool: how many failed nodes the cluster can
    /// hand a replacement for before replacement capacity runs out (the
    /// capacity ULFM assumes is unbounded but a real machine is not —
    /// Pachajoa et al., arXiv:2007.04066). `0` means no spares.
    pub spares: usize,
}

impl ClusterConfig {
    /// A failure-free cluster of `nodes` nodes with the default cost model.
    pub fn new(nodes: usize) -> Self {
        ClusterConfig {
            nodes,
            cost: CostModel::default(),
            script: FailureScript::none(),
            spares: 0,
        }
    }

    /// Set the failure script.
    pub fn with_script(mut self, script: FailureScript) -> Self {
        self.script = script;
        self
    }

    /// Set the cost model.
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Provision `spares` hot-spare nodes.
    pub fn with_spares(mut self, spares: usize) -> Self {
        self.spares = spares;
        self
    }
}

/// The cluster's finite pool of hot-spare nodes.
///
/// In the simulation the spare is not a separate scheduler entity: as in
/// the paper's methodology (Sec. 6), the failed rank keeps its scheduler
/// slot and continues in the replacement-node role (see the node lifecycle
/// state machine in [`crate::fault`]) — what a spare buys is the *right*
/// to do so. The pool is claimed at failure boundaries, which every node
/// reaches with the same SPMD-deterministic failure information, so each
/// node's private copy of the pool evolves identically and no shared
/// mutable state is needed (the same determinism argument that stands in
/// for `MPI_Comm_agree`).
#[derive(Clone, Debug)]
pub struct SparePool {
    total: usize,
    claimed: usize,
}

impl SparePool {
    pub(crate) fn new(total: usize) -> Self {
        SparePool { total, claimed: 0 }
    }

    /// Spares the cluster was provisioned with.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Spares not yet handed out.
    pub fn remaining(&self) -> usize {
        self.total - self.claimed
    }

    /// Claim up to `want` spares; returns how many were granted
    /// (`min(want, remaining)`).
    pub fn claim(&mut self, want: usize) -> usize {
        let granted = want.min(self.remaining());
        self.claimed += granted;
        granted
    }
}

/// The simulated parallel computer.
pub struct Cluster;

impl Cluster {
    /// Run `program` on every node of a cluster described by `config`;
    /// returns the per-node results in rank order.
    ///
    /// `program` is the SPMD node program: it receives this node's
    /// [`NodeCtx`] and runs to completion. A panic on any node aborts the
    /// run (the panic is propagated with its rank).
    pub fn run<T, F>(config: ClusterConfig, program: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut NodeCtx) -> T + Sync,
    {
        Self::run_inner(config, program).0
    }

    /// Like [`Cluster::run`], but also returns the gathered per-rank trace
    /// logs as a [`crate::trace::ClusterTrace`]. Only meaningful under
    /// `--features trace`; the tracer observes the virtual clock without
    /// ever advancing it, so the per-node results are bitwise identical to
    /// what [`Cluster::run`] returns.
    #[cfg(feature = "trace")]
    pub fn run_traced<T, F>(
        config: ClusterConfig,
        program: F,
    ) -> (Vec<T>, crate::trace::ClusterTrace)
    where
        T: Send,
        F: Fn(&mut NodeCtx) -> T + Sync,
    {
        let (values, nodes) = Self::run_inner(config, program);
        (values, crate::trace::ClusterTrace { nodes })
    }

    fn run_inner<T, F>(config: ClusterConfig, program: F) -> (Vec<T>, TraceVec)
    where
        T: Send,
        F: Fn(&mut NodeCtx) -> T + Sync,
    {
        let n = config.nodes;
        assert!(n >= 1, "cluster needs at least one node");
        // A script naming ranks the cluster does not have would be silently
        // inert — reject it here, where the size is known.
        config.script.validate_for_cluster(n);
        let oracle = FaultOracle::new(config.script.clone());

        // Wire mailboxes: every node gets the senders of all nodes.
        let mut mailboxes = Vec::with_capacity(n);
        let mut outboxes = Vec::with_capacity(n);
        for rank in 0..n {
            let (mb, tx) = Mailbox::new(rank);
            mailboxes.push(mb);
            outboxes.push(tx);
        }

        let sched = Arc::new(Scheduler::new(n));

        let program = &program;
        thread::scope(|s| {
            let mut handles = Vec::with_capacity(n);
            for (rank, mb) in mailboxes.into_iter().enumerate() {
                let outboxes = outboxes.clone();
                let oracle = oracle.clone();
                let cost = config.cost;
                let spares = config.spares;
                let sched = sched.clone();
                handles.push(
                    thread::Builder::new()
                        .name(format!("node-{rank}"))
                        // The solver recursion depth is shallow, but large
                        // local vectors live on the heap; default stack is
                        // plenty. Set explicitly for predictability.
                        .stack_size(4 * 1024 * 1024)
                        .spawn_scoped(s, move || {
                            let mut ctx = NodeCtx::new(
                                rank,
                                n,
                                mb,
                                outboxes,
                                oracle,
                                VClock::new(cost),
                                spares,
                            );
                            ctx.install_sched(sched.clone());
                            #[cfg(feature = "audit")]
                            ctx.install_audit();
                            #[cfg(feature = "trace")]
                            ctx.install_trace();
                            // The baton wait sits inside catch_unwind: a
                            // peer abort or a deadlock report surfaces as
                            // a panic out of the scheduler park.
                            let result =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    sched.wait_for_baton(rank);
                                    program(&mut ctx)
                                }));
                            // Hand the baton on — or, on a panic, wake all
                            // parked peers into immediate teardown instead
                            // of stranding them in recv.
                            match &result {
                                Ok(_) => sched.finish(rank),
                                Err(_) => sched.abort(rank),
                            }
                            #[cfg(feature = "trace")]
                            let trace = ctx.take_trace();
                            let (mailbox, _log) = ctx.into_teardown();
                            NodeFinish {
                                result,
                                mailbox,
                                #[cfg(feature = "audit")]
                                log: _log,
                                #[cfg(feature = "trace")]
                                trace,
                            }
                        })
                        .expect("failed to spawn node thread"),
                );
            }

            // Every node thread parks on the scheduler first; hand out the
            // first baton (rank 0, all clocks at 0.0).
            sched.start();

            // Join all nodes first — teardown checks must see every log.
            let finishes: Vec<NodeFinish<T>> = handles
                .into_iter()
                .map(|h| h.join().expect("node thread died outside the program"))
                .collect();

            let mut values = Vec::with_capacity(n);
            let mut panics: Vec<(usize, String)> = Vec::new();
            #[cfg(feature = "audit")]
            let mut logs: Vec<crate::audit::NodeLog> = Vec::with_capacity(n);
            #[cfg(feature = "trace")]
            let mut traces: TraceVec = Vec::with_capacity(n);
            #[cfg(any(debug_assertions, feature = "audit"))]
            let mut end_mailboxes: Vec<Mailbox> = Vec::with_capacity(n);
            for (rank, fin) in finishes.into_iter().enumerate() {
                match fin.result {
                    Ok(v) => values.push(v),
                    Err(e) => {
                        let msg = e
                            .downcast_ref::<String>()
                            .map(String::as_str)
                            .or_else(|| e.downcast_ref::<&str>().copied())
                            .unwrap_or("<non-string panic>")
                            .to_string();
                        panics.push((rank, msg));
                    }
                }
                #[cfg(any(debug_assertions, feature = "audit"))]
                end_mailboxes.push(fin.mailbox);
                #[cfg(not(any(debug_assertions, feature = "audit")))]
                drop(fin.mailbox);
                #[cfg(feature = "audit")]
                logs.push(fin.log.unwrap_or_default());
                #[cfg(feature = "trace")]
                traces.push(fin.trace.unwrap_or_default());
            }
            #[cfg(any(debug_assertions, feature = "audit"))]
            let clean = panics.is_empty();

            // Mailbox-drain inspection: a message still sitting in a queue at
            // teardown is a protocol leak. Only meaningful on clean runs — a
            // panic legitimately strands in-flight traffic.
            #[cfg(any(debug_assertions, feature = "audit"))]
            let leaks: Vec<(usize, Message)> = if clean {
                let mut leaks = Vec::new();
                for (rank, mb) in end_mailboxes.iter_mut().enumerate() {
                    for m in mb.drain_residue() {
                        leaks.push((rank, m));
                    }
                }
                leaks
            } else {
                Vec::new()
            };

            #[cfg(feature = "audit")]
            {
                let violations = crate::audit::check_teardown(&logs, &leaks, clean);
                if !violations.is_empty() {
                    let mut report =
                        format!("parcomm audit: {} protocol violation(s):", violations.len());
                    for v in &violations {
                        report.push_str("\n  ");
                        report.push_str(v);
                    }
                    if let Some((rank, msg)) = panics.first() {
                        report.push_str(&format!("\n  (node {rank} also panicked: {msg})"));
                    }
                    panic!("{report}");
                }
            }

            // Without the auditor, debug builds still refuse to let a leak
            // pass silently (release keeps the hot path assertion-free).
            #[cfg(all(debug_assertions, not(feature = "audit")))]
            if let Some((rank, m)) = leaks.first() {
                panic!(
                    "mailbox residue at cluster teardown: rank {rank} holds an \
                     unconsumed message from rank {} (tag {}, {} elems); \
                     every send must be matched by a receive",
                    m.src,
                    m.tag.describe(),
                    m.payload.elems()
                );
            }

            // If any node panicked, report the *root cause* (a real panic)
            // rather than a secondary "peer aborted" one.
            if let Some((rank, msg)) = panics
                .iter()
                .find(|(_, m)| !m.contains("aborted"))
                .or_else(|| panics.first())
            {
                panic!("node {rank} panicked: {msg}");
            }
            #[cfg(feature = "trace")]
            return (values, traces);
            #[cfg(not(feature = "trace"))]
            (values, ())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::ReduceOp;
    use crate::payload::Payload;
    use crate::stats::CommPhase;

    #[test]
    fn ranks_and_size() {
        let out = Cluster::run(ClusterConfig::new(5), |ctx| (ctx.rank(), ctx.size()));
        assert_eq!(out, vec![(0, 5), (1, 5), (2, 5), (3, 5), (4, 5)]);
    }

    #[test]
    fn p2p_ring() {
        let out = Cluster::run(ClusterConfig::new(4), |ctx| {
            let next = (ctx.rank() + 1) % ctx.size();
            let prev = (ctx.rank() + ctx.size() - 1) % ctx.size();
            ctx.send(next, 7, Payload::F64(ctx.rank() as f64), CommPhase::Other);
            ctx.recv(prev, 7).into_f64()
        });
        assert_eq!(out, vec![3.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn allreduce_sum_all_sizes() {
        for n in 1..=9 {
            let out = Cluster::run(ClusterConfig::new(n), |ctx| {
                ctx.allreduce_sum((ctx.rank() + 1) as f64)
            });
            let expect = (n * (n + 1) / 2) as f64;
            assert!(out.iter().all(|&x| x == expect), "n={n}: {out:?}");
        }
    }

    #[test]
    fn allreduce_max_min() {
        let out = Cluster::run(ClusterConfig::new(6), |ctx| {
            let mx = ctx.allreduce_max(ctx.rank() as f64);
            let mn = ctx.allreduce_min(ctx.rank() as f64);
            (mx, mn)
        });
        assert!(out.iter().all(|&(mx, mn)| mx == 5.0 && mn == 0.0));
    }

    #[test]
    fn allreduce_vec_elementwise() {
        let out = Cluster::run(ClusterConfig::new(3), |ctx| {
            ctx.allreduce_vec(ReduceOp::Sum, vec![ctx.rank() as f64, 1.0])
        });
        assert!(out.iter().all(|v| v == &vec![3.0, 3.0]));
    }

    #[test]
    fn allreduce_is_deterministic_across_runs() {
        // Sum of values whose FP addition is order-sensitive.
        let run = || {
            Cluster::run(ClusterConfig::new(7), |ctx| {
                let x = 1.0 / (ctx.rank() as f64 + 3.0) * 1e10 + 1e-10;
                ctx.allreduce_sum(x)
            })
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "tree reduction must be bitwise reproducible");
        // All nodes agree within a run.
        assert!(a.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn bcast_from_nonzero_root() {
        for n in [1, 2, 3, 5, 8] {
            let out = Cluster::run(ClusterConfig::new(n), |ctx| {
                let root = ctx.size() - 1;
                let payload = if ctx.rank() == root {
                    Payload::f64s(vec![42.0, 7.0])
                } else {
                    Payload::Empty
                };
                ctx.bcast(root, payload).into_f64s()
            });
            assert!(out.iter().all(|v| v == &vec![42.0, 7.0]), "n={n}");
        }
    }

    #[test]
    fn allgatherv_f64_varying_lengths() {
        let out = Cluster::run(ClusterConfig::new(4), |ctx| {
            let mine = vec![ctx.rank() as f64; ctx.rank()]; // rank r sends r copies
            ctx.allgatherv_f64(mine)
        });
        for v in out {
            assert_eq!(v.len(), 4);
            for (r, part) in v.iter().enumerate() {
                assert_eq!(part.len(), r);
                assert!(part.iter().all(|&x| x == r as f64));
            }
        }
    }

    #[test]
    fn allgatherv_u64() {
        let out = Cluster::run(ClusterConfig::new(3), |ctx| {
            ctx.allgatherv_u64(vec![ctx.rank() as u64 * 10, 1])
        });
        for v in out {
            assert_eq!(v, vec![vec![0, 1], vec![10, 1], vec![20, 1]]);
        }
    }

    #[test]
    fn alltoallv_u64_exchanges() {
        let out = Cluster::run(ClusterConfig::new(3), |ctx| {
            // Send [my_rank, dest] to each dest.
            let sends: Vec<Vec<u64>> = (0..3).map(|d| vec![ctx.rank() as u64, d as u64]).collect();
            ctx.alltoallv_u64(sends)
        });
        for (me, recvd) in out.iter().enumerate() {
            for (src, v) in recvd.iter().enumerate() {
                assert_eq!(v, &vec![src as u64, me as u64]);
            }
        }
    }

    #[test]
    fn alltoallv_pairs_exchanges() {
        let out = Cluster::run(ClusterConfig::new(3), |ctx| {
            let sends: Vec<Vec<(u64, f64)>> = (0..3)
                .map(|d| vec![(d as u64, ctx.rank() as f64)])
                .collect();
            ctx.alltoallv_pairs(sends, CommPhase::Recovery)
        });
        for (me, recvd) in out.iter().enumerate() {
            for (src, v) in recvd.iter().enumerate() {
                assert_eq!(v, &vec![(me as u64, src as f64)]);
            }
        }
    }

    #[test]
    fn barrier_syncs_vclocks() {
        let out = Cluster::run(ClusterConfig::new(4), |ctx| {
            // Rank 2 does expensive local work before the barrier.
            if ctx.rank() == 2 {
                ctx.clock_mut().advance(1.0);
            }
            ctx.barrier();
            ctx.vtime()
        });
        // Everyone's clock must be at least the slow node's time.
        assert!(out.iter().all(|&t| t >= 1.0), "{out:?}");
    }

    #[test]
    fn gatherv_on_root_only() {
        let out = Cluster::run(ClusterConfig::new(3), |ctx| {
            ctx.gatherv_f64(1, vec![ctx.rank() as f64])
        });
        assert!(out[0].is_none());
        assert!(out[2].is_none());
        assert_eq!(
            out[1].as_ref().unwrap(),
            &vec![vec![0.0], vec![1.0], vec![2.0]]
        );
    }

    #[test]
    fn group_collectives() {
        let out = Cluster::run(ClusterConfig::new(5), |ctx| {
            // Odd ranks form a group; evens idle.
            if ctx.rank() % 2 == 1 {
                let mut g = ctx.group(&[1, 3]);
                let s = g.allreduce_sum(ctx, ctx.rank() as f64);
                let gathered = g.allgatherv_f64(ctx, vec![ctx.rank() as f64]);
                Some((s, gathered))
            } else {
                None
            }
        });
        for r in [1usize, 3] {
            let (s, gathered) = out[r].clone().unwrap();
            assert_eq!(s, 4.0);
            assert_eq!(gathered, vec![vec![1.0], vec![3.0]]);
        }
    }

    #[test]
    fn group_alltoallv_pairs() {
        let out = Cluster::run(ClusterConfig::new(4), |ctx| {
            if ctx.rank() >= 1 && ctx.rank() <= 3 {
                let mut g = ctx.group(&[1, 2, 3]);
                let sends: Vec<Vec<(u64, f64)>> = (0..3)
                    .map(|i| vec![(i as u64, ctx.rank() as f64)])
                    .collect();
                Some(g.alltoallv_pairs(ctx, sends, CommPhase::Recovery))
            } else {
                None
            }
        });
        // Member with group index i receives (i, src_rank) from each member.
        for (rank, res) in out.iter().enumerate() {
            if let Some(recvd) = res {
                let my_index = rank - 1;
                for (j, v) in recvd.iter().enumerate() {
                    let src_rank = j + 1;
                    assert_eq!(v, &vec![(my_index as u64, src_rank as f64)]);
                }
            }
        }
    }

    #[test]
    fn stats_track_phases() {
        let out = Cluster::run(ClusterConfig::new(2), |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 1, Payload::f64s(vec![0.0; 10]), CommPhase::Spmv);
                ctx.send(1, 2, Payload::f64s(vec![0.0; 3]), CommPhase::Redundancy);
            } else {
                ctx.recv(0, 1);
                ctx.recv(0, 2);
            }
            (
                ctx.stats().elems(CommPhase::Spmv),
                ctx.stats().elems(CommPhase::Redundancy),
            )
        });
        assert_eq!(out[0], (10, 3));
        assert_eq!(out[1], (0, 0)); // receives are counted at the sender
    }

    #[test]
    fn vclock_charges_messages() {
        let cost = CostModel {
            lambda: 1.0,
            mu: 0.1,
            gamma: 0.0,
        };
        let out = Cluster::run(ClusterConfig::new(2).with_cost(cost), |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 1, Payload::f64s(vec![0.0; 10]), CommPhase::Spmv);
            } else {
                ctx.recv(0, 1);
            }
            ctx.vtime()
        });
        // Sender: λ + 10µ = 2.0. Receiver absorbs the same arrival stamp.
        assert_eq!(out[0], 2.0);
        assert_eq!(out[1], 2.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds for a cluster of 8 nodes")]
    fn out_of_bounds_failure_script_rejected() {
        // A script naming rank 9 on an 8-node cluster would be silently
        // inert; Cluster::run must reject it when the size is known.
        let script = crate::fault::FailureScript::new(vec![crate::fault::FailureEvent {
            when: crate::fault::FailAt::Iteration(3),
            ranks: vec![9],
        }]);
        Cluster::run(ClusterConfig::new(8).with_script(script), |_| ());
    }

    #[test]
    fn spare_pool_claims_deterministically() {
        let out = Cluster::run(ClusterConfig::new(3).with_spares(2), |ctx| {
            let mut pool = ctx.spare_pool();
            assert_eq!(pool.total(), 2);
            let first = pool.claim(1);
            let second = pool.claim(3); // only 1 left
            let third = pool.claim(1); // dry
            (first, second, third, pool.remaining())
        });
        // Every node's private pool copy evolves identically.
        assert!(out.iter().all(|&o| o == (1, 1, 0, 0)), "{out:?}");
    }

    #[test]
    fn spare_pool_defaults_to_empty() {
        let out = Cluster::run(ClusterConfig::new(2), |ctx| ctx.spare_pool().remaining());
        assert_eq!(out, vec![0, 0]);
    }

    #[test]
    #[should_panic(expected = "[deadlock] wait-for cycle")]
    fn cross_recv_deadlock_reported_in_every_build() {
        // Rank 0 and rank 1 each wait for the other: the scheduler runs
        // out of runnable nodes and names the cycle instantly — no audit
        // feature, no timeout.
        Cluster::run(ClusterConfig::new(2), |ctx| {
            let peer = 1 - ctx.rank();
            ctx.recv(peer, 1);
        });
    }

    #[test]
    #[should_panic(expected = "wait chain ends at a terminated rank")]
    fn recv_from_finished_rank_is_reported() {
        Cluster::run(ClusterConfig::new(2), |ctx| {
            if ctx.rank() == 1 {
                // Rank 0 finishes without ever sending; rank 1's wait can
                // never be satisfied.
                ctx.recv(0, 1);
            }
        });
    }

    #[test]
    #[should_panic(expected = "node 1 panicked")]
    fn node_panic_propagates() {
        Cluster::run(ClusterConfig::new(2), |ctx| {
            if ctx.rank() == 1 {
                panic!("boom");
            }
            // Rank 0 must not block forever on a dead peer in this test:
            // it does no communication.
        });
    }
}
