//! The communication-protocol auditor (compiled only with `--features audit`).
//!
//! The ESR correctness argument (Pachajoa et al., ICPP 2019) rests on
//! protocol invariants the test suite historically never checked: disjoint
//! per-attempt reconstruction tag windows, agreed-upon collective schedules
//! across survivors, and complete message drain across the restart substeps.
//! Every shipped protocol bug (the PR 2 FIFO non-overtaking violation, the
//! mismatched-reduction hangs) was found by accident. This module makes the
//! contract machine-checked:
//!
//! * every send is stamped ([`MsgStamp`]) with a per-`(dest, tag)` sequence
//!   number and the sender's current recovery-attempt window;
//! * every receive and collective is recorded into a per-node [`NodeLog`];
//! * [`check_teardown`] runs after all node threads have joined (so every
//!   send has landed — the checks are deterministic) and enforces
//!   **message-drain**, **non-overtaking**, **collective agreement**, and
//!   **tag-window disjointness**.
//!
//! Deadlock detection is *not* an audit concern anymore: the event-driven
//! scheduler ([`crate::sched`]) proves a wait-for cycle the instant the
//! cluster runs out of runnable nodes, in every build. (It used to live
//! here as a polled shared blocked-on table with double-snapshot
//! heuristics, needed only because free-running threads could race the
//! detector.)
//!
//! Everything here is diagnostics: the auditor never touches the virtual
//! clock or the statistics, so enabling the feature cannot change any
//! simulated timing (the bench harness asserts byte-identical vtime with the
//! feature off; see `crates/bench/benches/report.rs`).

use std::collections::{BTreeMap, HashMap};

use crate::comm::ReduceOp;
use crate::payload::Message;
use crate::tag::Tag;

/// Audit stamp carried by every [`Message`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MsgStamp {
    /// Per-`(sender, dest, tag)` send sequence number, starting at 0. The
    /// non-overtaking check demands that same-`(src, tag)` deliveries at one
    /// receiver observe strictly increasing values.
    pub seq: u64,
    /// The sender's recovery-attempt window at send time (`None` outside
    /// recovery). A receive must observe its own current window here.
    pub window: Option<u32>,
}

/// One recorded receive.
#[derive(Clone, Copy, Debug)]
pub struct RecvRec {
    /// Sending rank.
    pub src: usize,
    /// Matched tag.
    pub tag: Tag,
    /// The message's send sequence number (see [`MsgStamp::seq`]).
    pub seq: u64,
    /// The window the message was sent in.
    pub msg_window: Option<u32>,
    /// The receiver's window when the receive matched.
    pub window: Option<u32>,
}

/// One recorded collective call (logged *before* the collective runs, so an
/// interrupted collective still shows what each rank intended to do).
#[derive(Clone, Debug, PartialEq)]
pub struct CollEvent {
    /// `None` for the world communicator, `Some(gid)` for a group.
    pub scope: Option<u32>,
    /// The communicator's collective sequence number.
    pub seq: u64,
    /// Collective kind (a [`crate::tag::op`] constant).
    pub kind: u8,
    /// Reduction operator, for reductions.
    pub rop: Option<ReduceOp>,
    /// Contributed buffer length where the protocol requires agreement
    /// (all-reduce); `None` for ragged collectives (gather, all-to-all) and
    /// for participants that do not know the length up front (bcast leaves).
    pub len: Option<usize>,
    /// Hash of the member set (0 for the world communicator).
    pub members_hash: u64,
    /// Number of participants the caller believes the communicator has.
    pub n_members: usize,
}

/// Placeholder member-set hash for world-communicator collectives.
pub const WORLD_HASH: u64 = 0;

/// Per-node event log, returned by the node thread at teardown.
#[derive(Debug, Default)]
pub struct NodeLog {
    /// The rank that produced this log.
    pub rank: usize,
    /// Receives, in program order.
    pub recvs: Vec<RecvRec>,
    /// Collective calls, in program order.
    pub colls: Vec<CollEvent>,
}

/// Per-node audit state owned by the `NodeCtx`.
pub(crate) struct AuditState {
    pub(crate) log: NodeLog,
    send_seqs: HashMap<(usize, Tag), u64>,
    /// Current recovery-attempt window (see `NodeCtx::audit_enter_window`).
    pub(crate) window: Option<u32>,
}

impl AuditState {
    pub(crate) fn new(rank: usize) -> Self {
        AuditState {
            log: NodeLog {
                rank,
                ..NodeLog::default()
            },
            send_seqs: HashMap::new(),
            window: None,
        }
    }

    /// Stamp an outgoing message to `dest` under `tag`.
    pub(crate) fn stamp_send(&mut self, dest: usize, tag: Tag) -> MsgStamp {
        let c = self.send_seqs.entry((dest, tag)).or_insert(0);
        let seq = *c;
        *c += 1;
        MsgStamp {
            seq,
            window: self.window,
        }
    }

    /// Record a matched receive.
    pub(crate) fn record_recv(&mut self, m: &Message) {
        self.log.recvs.push(RecvRec {
            src: m.src,
            tag: m.tag,
            seq: m.stamp.seq,
            msg_window: m.stamp.window,
            window: self.window,
        });
    }

    /// Record a collective call.
    pub(crate) fn record_coll(&mut self, ev: CollEvent) {
        self.log.colls.push(ev);
    }

    pub(crate) fn into_log(self) -> NodeLog {
        self.log
    }
}

// ---------------------------------------------------------------------------
// Teardown checker
// ---------------------------------------------------------------------------

/// Cap on reported violations, so a systemic bug does not produce a
/// megabyte-sized panic message.
const MAX_REPORTED: usize = 20;

fn describe_coll(c: &CollEvent) -> String {
    let mut s = String::from(crate::tag::op::name(c.kind));
    if let Some(rop) = c.rop {
        s.push_str(&format!("({rop:?})"));
    }
    if let Some(len) = c.len {
        s.push_str(&format!(" len {len}"));
    }
    s.push_str(&format!(" on {} members", c.n_members));
    s
}

fn window_name(w: Option<u32>) -> String {
    match w {
        Some(k) => format!("recovery window {k}"),
        None => "no window".to_string(),
    }
}

/// Run the post-join protocol checks over all node logs and mailbox
/// residue. Deterministic: every send has landed by the time this runs.
/// `clean` is false when some node panicked — completeness-style checks
/// (message drain, collective participation) are skipped then, because an
/// interrupted run legitimately leaves both behind; the pairwise agreement
/// checks still run on whatever was recorded.
pub(crate) fn check_teardown(
    logs: &[NodeLog],
    leaks: &[(usize, Message)],
    clean: bool,
) -> Vec<String> {
    let mut violations = Vec::new();

    // (1) Message drain: a clean run must consume every delivered message.
    if clean {
        for (rank, m) in leaks {
            violations.push(format!(
                "[message-drain] rank {rank}: unconsumed message from rank {} \
                 (tag {}, {} elems, send #{}, sent in {})",
                m.src,
                m.tag.describe(),
                m.payload.elems(),
                m.stamp.seq,
                window_name(m.stamp.window),
            ));
        }
    }

    // (2) Non-overtaking: same-(src, tag) deliveries in send order.
    for log in logs {
        let mut last: HashMap<(usize, Tag), u64> = HashMap::new();
        for r in &log.recvs {
            if let Some(&prev) = last.get(&(r.src, r.tag)) {
                if r.seq <= prev {
                    violations.push(format!(
                        "[non-overtaking] rank {}: (src {}, tag {}) delivered send #{} \
                         after send #{} — same-(src, tag) messages must match in send order",
                        log.rank,
                        r.src,
                        r.tag.describe(),
                        r.seq,
                        prev,
                    ));
                }
            }
            last.insert((r.src, r.tag), r.seq);
        }
    }

    // (4) Tag-window disjointness: a receive must match only messages sent
    // in the receiver's current recovery-attempt window.
    for log in logs {
        for r in &log.recvs {
            if r.msg_window != r.window {
                violations.push(format!(
                    "[tag-window] rank {}: message from rank {} (tag {}) sent in {} \
                     was matched by a receive in {} — recovery-attempt tag windows \
                     must be disjoint",
                    log.rank,
                    r.src,
                    r.tag.describe(),
                    window_name(r.msg_window),
                    window_name(r.window),
                ));
            }
        }
    }

    // (3) Collective agreement: every participant of a collective instance
    // must have issued the same (op, operator, length) on the same member
    // set. Instances are keyed by (scope, seq) — SPMD programs consume
    // sequence numbers in lockstep.
    // One collective instance, keyed (scope, seq) → its participants.
    type Instances<'a> = BTreeMap<(Option<u32>, u64), Vec<(usize, &'a CollEvent)>>;
    let mut instances: Instances<'_> = BTreeMap::new();
    for log in logs {
        for c in &log.colls {
            instances
                .entry((c.scope, c.seq))
                .or_default()
                .push((log.rank, c));
        }
    }
    for ((scope, seq), parts) in &instances {
        let scope_name = match scope {
            Some(gid) => format!("group {gid:#x}"),
            None => "world".to_string(),
        };
        let (rank0, ev0) = parts[0];
        if let Some((rank, ev)) = parts[1..].iter().find(|(_, c)| {
            c.kind != ev0.kind
                || c.rop != ev0.rop
                || c.members_hash != ev0.members_hash
                || c.n_members != ev0.n_members
        }) {
            violations.push(format!(
                "[collective-mismatch] {scope_name} collective seq {seq}: rank {rank0} \
                 issued {} but rank {rank} issued {}",
                describe_coll(ev0),
                describe_coll(ev),
            ));
            continue;
        }
        // Length agreement among participants that declared one.
        let mut with_len = parts.iter().filter_map(|&(r, c)| c.len.map(|l| (r, l)));
        if let Some((r0, l0)) = with_len.next() {
            if let Some((r1, l1)) = with_len.find(|&(_, l)| l != l0) {
                violations.push(format!(
                    "[collective-mismatch] {scope_name} collective seq {seq} \
                     ({}): rank {r0} contributed len {l0} but rank {r1} \
                     contributed len {l1}",
                    describe_coll(ev0),
                ));
                continue;
            }
        }
        // Participation: on a clean run, everyone the callers believe is a
        // member must have shown up.
        if clean && parts.len() != ev0.n_members {
            let present: Vec<usize> = parts.iter().map(|&(r, _)| r).collect();
            violations.push(format!(
                "[collective-mismatch] {scope_name} collective seq {seq} ({}): only \
                 {} of {} members participated (ranks {present:?})",
                describe_coll(ev0),
                parts.len(),
                ev0.n_members,
            ));
        }
    }

    violations.truncate(MAX_REPORTED);
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::Payload;
    use crate::tag::op;

    fn coll(
        scope: Option<u32>,
        seq: u64,
        kind: u8,
        rop: Option<ReduceOp>,
        len: Option<usize>,
        n: usize,
    ) -> CollEvent {
        CollEvent {
            scope,
            seq,
            kind,
            rop,
            len,
            members_hash: WORLD_HASH,
            n_members: n,
        }
    }

    #[test]
    fn clean_logs_produce_no_violations() {
        let logs = vec![
            NodeLog {
                rank: 0,
                recvs: vec![RecvRec {
                    src: 1,
                    tag: Tag::user(7),
                    seq: 0,
                    msg_window: None,
                    window: None,
                }],
                colls: vec![coll(
                    None,
                    0,
                    op::ALLREDUCE,
                    Some(ReduceOp::Sum),
                    Some(3),
                    2,
                )],
            },
            NodeLog {
                rank: 1,
                recvs: vec![],
                colls: vec![coll(
                    None,
                    0,
                    op::ALLREDUCE,
                    Some(ReduceOp::Sum),
                    Some(3),
                    2,
                )],
            },
        ];
        assert!(check_teardown(&logs, &[], true).is_empty());
    }

    #[test]
    fn out_of_order_delivery_is_flagged() {
        let logs = vec![NodeLog {
            rank: 0,
            recvs: [1u64, 0]
                .iter()
                .map(|&seq| RecvRec {
                    src: 2,
                    tag: Tag::user(5),
                    seq,
                    msg_window: None,
                    window: None,
                })
                .collect(),
            colls: vec![],
        }];
        let v = check_teardown(&logs, &[], true);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("[non-overtaking]"), "{}", v[0]);
        assert!(v[0].contains("rank 0"), "{}", v[0]);
        assert!(v[0].contains("user(5)"), "{}", v[0]);
    }

    #[test]
    fn window_mismatch_is_flagged() {
        let logs = vec![NodeLog {
            rank: 3,
            recvs: vec![RecvRec {
                src: 1,
                tag: Tag::user(9),
                seq: 0,
                msg_window: Some(0),
                window: Some(1),
            }],
            colls: vec![],
        }];
        let v = check_teardown(&logs, &[], true);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("[tag-window]"), "{}", v[0]);
        assert!(v[0].contains("rank 3"), "{}", v[0]);
    }

    #[test]
    fn leak_reported_with_provenance() {
        let mut m = Message::new(2, Tag::user(4), Payload::F64(1.0), 0.0);
        m.stamp = MsgStamp {
            seq: 7,
            window: Some(3),
        };
        let v = check_teardown(&[], &[(5, m)], true);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("[message-drain]"), "{}", v[0]);
        assert!(v[0].contains("rank 5"), "{}", v[0]);
        assert!(v[0].contains("from rank 2"), "{}", v[0]);
        assert!(v[0].contains("send #7"), "{}", v[0]);
        assert!(v[0].contains("window 3"), "{}", v[0]);
    }

    #[test]
    fn leaks_tolerated_on_panicked_runs() {
        let m = Message::new(2, Tag::user(4), Payload::F64(1.0), 0.0);
        assert!(check_teardown(&[], &[(5, m)], false).is_empty());
    }

    #[test]
    fn operator_disagreement_is_flagged() {
        let logs = vec![
            NodeLog {
                rank: 0,
                recvs: vec![],
                colls: vec![coll(
                    None,
                    0,
                    op::ALLREDUCE,
                    Some(ReduceOp::Sum),
                    Some(1),
                    2,
                )],
            },
            NodeLog {
                rank: 1,
                recvs: vec![],
                colls: vec![coll(
                    None,
                    0,
                    op::ALLREDUCE,
                    Some(ReduceOp::Max),
                    Some(1),
                    2,
                )],
            },
        ];
        let v = check_teardown(&logs, &[], true);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("[collective-mismatch]"), "{}", v[0]);
        assert!(v[0].contains("Sum"), "{}", v[0]);
        assert!(v[0].contains("Max"), "{}", v[0]);
    }

    #[test]
    fn length_disagreement_is_flagged() {
        let logs = vec![
            NodeLog {
                rank: 0,
                recvs: vec![],
                colls: vec![coll(
                    None,
                    2,
                    op::ALLREDUCE,
                    Some(ReduceOp::Sum),
                    Some(1),
                    2,
                )],
            },
            NodeLog {
                rank: 1,
                recvs: vec![],
                colls: vec![coll(
                    None,
                    2,
                    op::ALLREDUCE,
                    Some(ReduceOp::Sum),
                    Some(4),
                    2,
                )],
            },
        ];
        let v = check_teardown(&logs, &[], true);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("len 1"), "{}", v[0]);
        assert!(v[0].contains("len 4"), "{}", v[0]);
    }

    #[test]
    fn missing_participant_flagged_only_when_clean() {
        let logs = vec![NodeLog {
            rank: 0,
            recvs: vec![],
            colls: vec![coll(None, 0, op::BARRIER, None, Some(0), 2)],
        }];
        let v = check_teardown(&logs, &[], true);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("1 of 2 members"), "{}", v[0]);
        assert!(check_teardown(&logs, &[], false).is_empty());
    }
}
