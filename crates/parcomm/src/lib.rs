//! # parcomm — a simulated distributed-memory parallel computer
//!
//! This crate is the substrate beneath the ESR-PCG reproduction of
//! Pachajoa et al., *"How to Make the Preconditioned Conjugate Gradient
//! Method Resilient Against Multiple Node Failures"* (ICPP 2019).
//!
//! The paper runs on MPI (with ULFM-style fault tolerance assumed) on 128
//! physical nodes. Here, every **node** of the parallel computer has
//! strictly private state and a mailbox; all interaction happens through
//! explicit message passing, mirroring the MPI programming model. Node
//! programs are written in blocking style (each node owns an OS thread as
//! its stack), but execution is driven by a deterministic discrete-event
//! scheduler ([`sched`]): exactly one node runs at a time, blocking
//! operations park the node, and the next runnable node is dispatched by
//! minimum `(virtual time, rank)` — so a 1024-node cluster runs on one
//! core and every run replays the identical schedule. The primitives:
//!
//! * point-to-point [`NodeCtx::send`] / [`NodeCtx::recv`] with
//!   `(source, tag)` matching,
//! * deterministic collectives ([`NodeCtx::allreduce_sum`],
//!   [`NodeCtx::allgatherv_f64`], [`NodeCtx::alltoallv_u64`], …) built on
//!   point-to-point messages — recursive doubling for all-reduce,
//!   binomial trees for broadcast/gather,
//! * non-blocking operations ([`NodeCtx::isend`], [`NodeCtx::irecv`],
//!   [`NodeCtx::iallreduce_vec`]) with request handles ([`request`]) and an
//!   **overlap-aware clock**: compute issued between start and wait hides
//!   the flight time, and [`CommStats`] splits communication into exposed
//!   vs hidden virtual time — the substrate of the communication-hiding
//!   pipelined PCG,
//! * sub-communicators ([`NodeCtx::group`]) used by replacement nodes during
//!   cooperative state reconstruction,
//! * a ULFM-like [`fault::FaultOracle`] that detects node failures, notifies
//!   all surviving nodes consistently, and provisions replacement nodes,
//! * a **virtual BSP clock** ([`vclock`]) implementing the latency–bandwidth
//!   cost model of the paper's Sec. 4.2 (`λ` per message, `µ` per vector
//!   element, `γ` per flop), so that 128-node experiments produce meaningful
//!   timing *shapes* even on a 2-core host.
//!
//! Failures are *simulated* exactly as in the paper (Sec. 6): a failed
//! node's dynamic data is poisoned (NaN) and the node keeps its scheduler
//! slot, continuing in the *replacement node* role (the lifecycle state
//! machine is documented in [`fault`]). Tests rely on the poisoning to
//! prove that recovery never reads lost data.

// Indexed loops over several parallel arrays are the clearest form for
// the numeric kernels in this crate; iterator-zip pyramids obscure the math.
#![allow(clippy::needless_range_loop)]

#[cfg(feature = "audit")]
pub mod audit;
pub mod cluster;
pub mod comm;
pub mod fault;
pub mod group;
pub mod mailbox;
pub mod payload;
pub mod request;
pub(crate) mod sched;
pub mod stats;
pub mod tag;
#[cfg(feature = "trace")]
pub mod trace;
pub mod vclock;

pub use cluster::{Cluster, ClusterConfig, SparePool};
pub use comm::{NodeCtx, ReduceOp};
pub use fault::{FailAt, FailureEvent, FailureScript, FaultOracle};
pub use group::Group;
pub use payload::Payload;
pub use request::{AllreduceRequest, RecvRequest, SendRequest};
pub use stats::{CommPhase, CommStats, LogHist};
pub use tag::Tag;
#[cfg(feature = "trace")]
pub use trace::{ClusterTrace, CriticalPath, NodeTrace, TraceEvent, TraceEventKind};
pub use vclock::{CostModel, VClock};
