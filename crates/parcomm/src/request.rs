//! Non-blocking communication: request handles and the overlap-aware clock
//! accounting behind them.
//!
//! The blocking primitives charge the node's virtual clock immediately: a
//! `send` makes the sender busy for `λ + s·µ`, a `recv` stalls the receiver
//! until the arrival stamp. Communication-hiding algorithms (pipelined PCG,
//! Levonyak et al., arXiv:1912.09230) instead *start* an operation, compute
//! while it is in flight, and *wait* for it later. The handles here model
//! that with a detached timeline, as if the transfer ran on a communication
//! offload engine or MPI progress thread:
//!
//! * `start` records the operation's begin time `t₀` and computes its
//!   completion time `T` on the engine timeline (for collectives the engine
//!   replays the exact recursive-doubling schedule, so the *result* is
//!   bitwise identical to the blocking collective);
//! * compute issued between `start` and `wait` advances the node clock
//!   normally — concurrently with the flight time;
//! * `wait` charges only the remaining latency `max(clock, T) − clock`.
//!   The charged part is recorded as *exposed* ([`crate::CommStats::wait_vtime`]),
//!   the overlapped part `T − t₀ − exposed` as *hidden*
//!   ([`crate::CommStats::hidden_vtime`]).
//!
//! The engine drains its partner messages eagerly through the real mailbox
//! inside `start` — which may park the node on the scheduler like any
//! blocking receive. That is invisible to the cost model: scheduling order
//! carries no time, virtual time is what the experiments measure.
//!
//! Requests are **linear**: every request must be consumed by `wait`.
//! Dropping an un-waited request is a protocol bug (MPI would leak the
//! request and possibly its buffer) and panics.

use crate::comm::{NodeCtx, RdPort};
use crate::payload::Payload;
use crate::stats::CommPhase;
use crate::tag::Tag;

/// The detached transport used by non-blocking collectives: the same
/// recursive-doubling schedule as the blocking path, but time flows on the
/// engine's own clock (`now`), starting from the moment the operation was
/// issued. Sends advance the engine by the full transfer cost; receives
/// wait (on the engine timeline) for the partner's stamp. The node clock is
/// never touched — the caller charges the un-hidden remainder at `wait`.
pub(crate) struct EnginePort<'a> {
    ctx: &'a mut NodeCtx,
    now: f64,
    phase: CommPhase,
}

impl<'a> EnginePort<'a> {
    pub(crate) fn new(ctx: &'a mut NodeCtx, start: f64, phase: CommPhase) -> Self {
        EnginePort {
            ctx,
            now: start,
            phase,
        }
    }

    /// The engine's current time (the operation's completion time once the
    /// schedule has run).
    pub(crate) fn now(&self) -> f64 {
        self.now
    }
}

impl RdPort for EnginePort<'_> {
    fn port_send(&mut self, peer: usize, tag: Tag, payload: Payload) {
        let elems = payload.elems();
        self.ctx.stats_mut().record_send(self.phase, elems);
        let cost = self.ctx.clock().model().msg_cost(elems);
        #[cfg(feature = "trace")]
        self.ctx
            .trace_send_event(self.phase, peer, tag, elems, self.now, cost, true);
        self.now += cost;
        self.ctx.raw_send(peer, tag, payload, self.now);
    }

    fn port_recv(&mut self, peer: usize, tag: Tag) -> Payload {
        let m = self.ctx.raw_recv_blocking(peer, tag);
        if m.arrival_vtime > self.now {
            self.now = m.arrival_vtime;
        }
        #[cfg(feature = "trace")]
        self.ctx.trace_recv_event(
            self.phase,
            peer,
            tag,
            m.payload.elems(),
            self.now,
            0.0,
            true,
        );
        m.payload
    }

    fn round_open(&mut self, round: usize) {
        self.ctx.trace_open("round", round as u64);
    }

    fn round_close(&mut self) {
        self.ctx.trace_close();
    }
}

/// Charge the un-hidden remainder of an operation spanning
/// `[start, done_at]` on the engine timeline: the node clock advances by
/// `max(done_at − clock, 0)` (exposed, recorded as wait time); the rest of
/// the operation's duration was hidden behind compute.
fn charge_wait(ctx: &mut NodeCtx, phase: CommPhase, start: f64, done_at: f64) {
    let t0 = ctx.clock().now();
    let exposed = (done_at - t0).max(0.0);
    if exposed > 0.0 {
        ctx.clock_mut().advance(exposed);
    }
    ctx.stats_mut().record_wait_vtime(phase, exposed);
    let duration = (done_at - start).max(0.0);
    let hidden = (duration - exposed).max(0.0);
    ctx.stats_mut().record_hidden_vtime(phase, hidden);
    #[cfg(feature = "trace")]
    ctx.trace_wait_event(phase, t0, exposed, hidden);
}

fn guard_unwaited(what: &str, completed: bool) {
    if !completed && !std::thread::panicking() {
        panic!("{what} dropped without wait — requests are linear; call wait() (or test() until complete, then wait())");
    }
}

/// Handle of an in-flight non-blocking send ([`NodeCtx::isend`]).
#[must_use = "requests must be completed with wait()"]
pub struct SendRequest {
    start: f64,
    done_at: f64,
    phase: CommPhase,
    completed: bool,
}

impl SendRequest {
    pub(crate) fn new(done_at: f64, cost: f64, phase: CommPhase) -> Self {
        SendRequest {
            start: done_at - cost,
            done_at,
            phase,
            completed: false,
        }
    }

    /// True once the transfer is complete in virtual time (the node clock
    /// has caught up with the transfer's end) — a subsequent `wait` charges
    /// nothing.
    pub fn test(&self, ctx: &NodeCtx) -> bool {
        self.done_at <= ctx.clock().now()
    }

    /// Complete the send: charges the part of the transfer not hidden
    /// behind compute issued since [`NodeCtx::isend`].
    pub fn wait(mut self, ctx: &mut NodeCtx) {
        self.completed = true;
        charge_wait(ctx, self.phase, self.start, self.done_at);
    }
}

impl Drop for SendRequest {
    fn drop(&mut self) {
        guard_unwaited("SendRequest", self.completed);
    }
}

/// Handle of an in-flight non-blocking receive ([`NodeCtx::irecv`]).
///
/// The request never consumes a message before `wait`: matching happens
/// purely in the order `wait`/`recv` calls execute on this node, so which
/// payload a request gets is independent of host-thread delivery timing —
/// the determinism contract of the simulator. `test` is a non-consuming
/// probe with MPI_Test-like advisory semantics: it can flip from `false`
/// to `true` depending on how far the sending thread has physically
/// progressed, so solver numerics must never branch on it.
#[must_use = "requests must be completed with wait()"]
pub struct RecvRequest {
    src: usize,
    tag: Tag,
    phase: CommPhase,
    posted_at: f64,
    completed: bool,
}

impl RecvRequest {
    pub(crate) fn new(src: usize, tag: Tag, phase: CommPhase, posted_at: f64) -> Self {
        RecvRequest {
            src,
            tag,
            phase,
            posted_at,
            completed: false,
        }
    }

    /// True once a matching message has been delivered *and* has arrived
    /// in virtual time — a subsequent `wait` charges nothing. Advisory
    /// (see the type docs); never consumes the message.
    pub fn test(&self, ctx: &mut NodeCtx) -> bool {
        let now = ctx.clock().now();
        ctx.raw_peek_recv(self.src, self.tag)
            .is_some_and(|m| m.arrival_vtime <= now)
    }

    /// Complete the receive: blocks until the matching message is here and
    /// charges only the remaining flight time
    /// (`max(clock, arrival) − clock`).
    pub fn wait(mut self, ctx: &mut NodeCtx) -> Payload {
        self.completed = true;
        let m = ctx.raw_recv_blocking(self.src, self.tag);
        #[cfg(feature = "trace")]
        {
            let t = ctx.clock().now();
            ctx.trace_recv_event(
                self.phase,
                self.src,
                self.tag,
                m.payload.elems(),
                t,
                0.0,
                true,
            );
        }
        charge_wait(
            ctx,
            self.phase,
            self.posted_at.min(m.arrival_vtime),
            m.arrival_vtime,
        );
        m.payload
    }
}

impl Drop for RecvRequest {
    fn drop(&mut self) {
        guard_unwaited("RecvRequest", self.completed);
    }
}

/// Handle of an in-flight non-blocking all-reduce
/// ([`NodeCtx::iallreduce_vec`]). The reduced buffer is bitwise identical
/// to what the blocking [`NodeCtx::allreduce_vec`] would return — the same
/// deterministic schedule runs, only the time accounting differs.
#[must_use = "requests must be completed with wait()"]
pub struct AllreduceRequest {
    result: Option<Vec<f64>>,
    start: f64,
    done_at: f64,
    phase: CommPhase,
}

impl AllreduceRequest {
    pub(crate) fn new(result: Vec<f64>, start: f64, done_at: f64, phase: CommPhase) -> Self {
        AllreduceRequest {
            result: Some(result),
            start,
            done_at,
            phase,
        }
    }

    /// True once the reduction is complete in virtual time — a subsequent
    /// `wait` charges nothing.
    pub fn test(&self, ctx: &NodeCtx) -> bool {
        self.done_at <= ctx.clock().now()
    }

    /// The reduction's completion time on the engine timeline.
    pub fn completion_vtime(&self) -> f64 {
        self.done_at
    }

    /// Complete the reduction and return the reduced buffer, charging only
    /// the part of the reduction not hidden behind compute issued since
    /// [`NodeCtx::iallreduce_vec`].
    pub fn wait(mut self, ctx: &mut NodeCtx) -> Vec<f64> {
        let result = self.result.take().expect("result present until wait");
        charge_wait(ctx, self.phase, self.start, self.done_at);
        result
    }
}

impl Drop for AllreduceRequest {
    fn drop(&mut self) {
        guard_unwaited("AllreduceRequest", self.result.is_none());
    }
}
