//! Communication statistics, partitioned by algorithm phase.
//!
//! The paper's evaluation separates the *undisturbed* redundancy overhead
//! (extra elements appended to SpMV messages, Table 2 columns 3–5) from the
//! *reconstruction* cost (Table 2 columns 7–9). Tagging every send with a
//! [`CommPhase`] lets the benchmark harness compute both, and lets the
//! Sec. 4.2 analysis compare measured redundancy traffic against the
//! theoretical bounds.

/// Which algorithm phase a message belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CommPhase {
    /// Plan construction and other one-time setup.
    Setup,
    /// Ghost exchange required by SpMV regardless of resilience.
    Spmv,
    /// Extra elements sent only to maintain φ redundant copies (Eqn. 6).
    Redundancy,
    /// Scalar reductions (dot products, norms).
    Reduction,
    /// State reconstruction after failures (paper Alg. 2).
    Recovery,
    /// Everything else.
    Other,
}

/// Number of [`CommPhase`] variants (the length of per-phase arrays).
pub const NPHASES: usize = 6;

fn phase_index(p: CommPhase) -> usize {
    match p {
        CommPhase::Setup => 0,
        CommPhase::Spmv => 1,
        CommPhase::Redundancy => 2,
        CommPhase::Reduction => 3,
        CommPhase::Recovery => 4,
        CommPhase::Other => 5,
    }
}

impl CommPhase {
    /// Every phase, in [`CommPhase::index`] order.
    pub const ALL: [CommPhase; NPHASES] = [
        CommPhase::Setup,
        CommPhase::Spmv,
        CommPhase::Redundancy,
        CommPhase::Reduction,
        CommPhase::Recovery,
        CommPhase::Other,
    ];

    /// Stable index of this phase in `0..NPHASES`.
    pub fn index(self) -> usize {
        phase_index(self)
    }

    /// Short lowercase name for reports and trace lanes.
    pub fn name(self) -> &'static str {
        match self {
            CommPhase::Setup => "setup",
            CommPhase::Spmv => "spmv",
            CommPhase::Redundancy => "redundancy",
            CommPhase::Reduction => "reduction",
            CommPhase::Recovery => "recovery",
            CommPhase::Other => "other",
        }
    }
}

/// A deterministic logarithmic-bucket histogram over non-negative `f64`
/// samples. Bucket selection reads the sample's binary exponent straight
/// from its bit pattern — no floating-point `log` call, so two runs that
/// produce bitwise-identical samples produce identical histograms on any
/// platform. Bucket `0` collects zero (and any non-positive) samples;
/// bucket `k ≥ 1` collects samples in `[2^(k−32), 2^(k−31))`, covering
/// `~2.3e-10 .. ~4.3e9` — message sizes in elements and virtual-second
/// wait times both land comfortably inside. Out-of-range samples clamp to
/// the edge buckets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogHist {
    buckets: [u64; 64],
    count: u64,
}

impl Default for LogHist {
    fn default() -> Self {
        LogHist {
            buckets: [0; 64],
            count: 0,
        }
    }
}

impl LogHist {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket(v: f64) -> usize {
        // NaN lands in the zero bucket too (partial_cmp → None).
        if v.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return 0;
        }
        // IEEE-754 biased exponent; bias 1023, so `e − 1023 = ⌊log₂ v⌋`
        // for normal numbers (subnormals collapse into the low edge).
        let e = ((v.to_bits() >> 52) & 0x7ff) as i64;
        (e - 1023 + 32).clamp(1, 63) as usize
    }

    /// Upper bound of bucket `i` (0 for the zero bucket).
    fn upper_bound(i: usize) -> f64 {
        if i == 0 {
            0.0
        } else {
            (2.0f64).powi(i as i32 - 31)
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: f64) {
        self.buckets[Self::bucket(v)] += 1;
        self.count += 1;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The `q`-quantile (`0 < q ≤ 1`) as the upper bound of the bucket
    /// containing it — a deterministic overestimate within one octave.
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= target {
                return Self::upper_bound(i);
            }
        }
        Self::upper_bound(63)
    }

    /// Median (bucket upper bound).
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 99th percentile (bucket upper bound).
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Accumulate another histogram's samples into this one.
    pub fn merge(&mut self, other: &LogHist) {
        for i in 0..64 {
            self.buckets[i] += other.buckets[i];
        }
        self.count += other.count;
    }
}

/// Per-phase message/element counters for one node.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CommStats {
    msgs: [u64; NPHASES],
    elems: [u64; NPHASES],
    /// Messages that opened a link no other traffic in the same round used
    /// (the paper's "extra latency" case, Sec. 4.2).
    extra_latency_msgs: u64,
    /// All-reduce collective calls this node participated in.
    allreduces: u64,
    /// Total communication rounds across those all-reduce calls (the
    /// critical-path depth: ⌈log₂N⌉, +2 on non-power-of-two sizes).
    allreduce_rounds: u64,
    /// Virtual seconds the node clock advanced *inside blocking sends*
    /// (`λ + s·µ` per message — the sender is busy for the transfer).
    send_vtime: [f64; NPHASES],
    /// Virtual seconds the node clock advanced *stalled*: blocked in a
    /// `recv` waiting for a message that had not yet arrived, or charged at
    /// a non-blocking `wait` for the un-hidden remainder of the operation.
    wait_vtime: [f64; NPHASES],
    /// Virtual seconds of non-blocking communication that overlapped local
    /// compute — flight time the node clock never had to pay for.
    hidden_vtime: [f64; NPHASES],
    /// Distribution of message sizes (in elements), all phases together.
    msg_size_hist: LogHist,
    /// Per-phase distribution of individual wait charges (blocking recv
    /// stalls and non-blocking `wait` exposures, in virtual seconds).
    wait_hist: [LogHist; NPHASES],
}

impl CommStats {
    /// Fresh, zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a sent message of `elems` vector elements in `phase`.
    pub fn record_send(&mut self, phase: CommPhase, elems: usize) {
        let i = phase_index(phase);
        self.msgs[i] += 1;
        self.elems[i] += elems as u64;
        self.msg_size_hist.record(elems as f64);
    }

    /// Record that a redundancy message needed its own link (extra λ).
    pub fn record_extra_latency(&mut self) {
        self.extra_latency_msgs += 1;
    }

    /// Record one all-reduce call that took `rounds` communication rounds.
    pub fn record_allreduce(&mut self, rounds: usize) {
        self.allreduces += 1;
        self.allreduce_rounds += rounds as u64;
    }

    /// Record virtual time spent inside a blocking send in `phase`.
    pub fn record_send_vtime(&mut self, phase: CommPhase, dt: f64) {
        debug_assert!(dt >= 0.0);
        self.send_vtime[phase_index(phase)] += dt;
    }

    /// Record virtual time spent stalled (blocking `recv` arrival wait or
    /// the exposed remainder charged by a non-blocking `wait`) in `phase`.
    pub fn record_wait_vtime(&mut self, phase: CommPhase, dt: f64) {
        debug_assert!(dt >= 0.0);
        let i = phase_index(phase);
        self.wait_vtime[i] += dt;
        self.wait_hist[i].record(dt);
    }

    /// Record non-blocking communication time hidden behind compute.
    pub fn record_hidden_vtime(&mut self, phase: CommPhase, dt: f64) {
        debug_assert!(dt >= 0.0);
        self.hidden_vtime[phase_index(phase)] += dt;
    }

    /// Remove one message (not its elements) from `phase` — used when a
    /// logically separate payload piggybacks on an existing message.
    pub fn uncount_msg(&mut self, phase: CommPhase) {
        let i = phase_index(phase);
        debug_assert!(self.msgs[i] > 0);
        self.msgs[i] -= 1;
    }

    /// Messages sent in `phase`.
    pub fn msgs(&self, phase: CommPhase) -> u64 {
        self.msgs[phase_index(phase)]
    }

    /// Elements sent in `phase`.
    pub fn elems(&self, phase: CommPhase) -> u64 {
        self.elems[phase_index(phase)]
    }

    /// Total messages across phases.
    pub fn total_msgs(&self) -> u64 {
        self.msgs.iter().sum()
    }

    /// Total elements across phases.
    pub fn total_elems(&self) -> u64 {
        self.elems.iter().sum()
    }

    /// Redundancy messages that paid their own latency.
    pub fn extra_latency_msgs(&self) -> u64 {
        self.extra_latency_msgs
    }

    /// All-reduce calls this node participated in.
    pub fn allreduces(&self) -> u64 {
        self.allreduces
    }

    /// Total rounds across all all-reduce calls (divide by
    /// [`CommStats::allreduces`] for the per-call critical-path depth).
    pub fn allreduce_rounds(&self) -> u64 {
        self.allreduce_rounds
    }

    /// Virtual time spent inside blocking sends in `phase`.
    pub fn send_vtime(&self, phase: CommPhase) -> f64 {
        self.send_vtime[phase_index(phase)]
    }

    /// Virtual time spent stalled waiting in `phase`.
    pub fn wait_vtime(&self, phase: CommPhase) -> f64 {
        self.wait_vtime[phase_index(phase)]
    }

    /// Non-blocking communication time hidden behind compute in `phase`.
    pub fn hidden_vtime(&self, phase: CommPhase) -> f64 {
        self.hidden_vtime[phase_index(phase)]
    }

    /// Distribution of message sizes in elements (all phases).
    pub fn msg_size_hist(&self) -> &LogHist {
        &self.msg_size_hist
    }

    /// Distribution of individual wait charges in `phase`.
    pub fn wait_hist(&self, phase: CommPhase) -> &LogHist {
        &self.wait_hist[phase_index(phase)]
    }

    /// Distribution of individual wait charges across all phases.
    pub fn total_wait_hist(&self) -> LogHist {
        let mut h = LogHist::new();
        for p in &self.wait_hist {
            h.merge(p);
        }
        h
    }

    /// *Exposed* communication time in `phase`: virtual time the node clock
    /// actually advanced doing communication (blocking send transfers plus
    /// stalls). Hidden time is excluded — that is the point of the split.
    pub fn exposed_vtime(&self, phase: CommPhase) -> f64 {
        let i = phase_index(phase);
        self.send_vtime[i] + self.wait_vtime[i]
    }

    /// Total stalled time across phases.
    pub fn total_wait_vtime(&self) -> f64 {
        self.wait_vtime.iter().sum()
    }

    /// Total hidden time across phases.
    pub fn total_hidden_vtime(&self) -> f64 {
        self.hidden_vtime.iter().sum()
    }

    /// Total exposed communication time across phases.
    pub fn total_exposed_vtime(&self) -> f64 {
        self.send_vtime.iter().sum::<f64>() + self.wait_vtime.iter().sum::<f64>()
    }

    /// Merge another node's counters into this one (cluster-wide totals).
    pub fn merge(&mut self, other: &CommStats) {
        for i in 0..NPHASES {
            self.msgs[i] += other.msgs[i];
            self.elems[i] += other.elems[i];
            self.send_vtime[i] += other.send_vtime[i];
            self.wait_vtime[i] += other.wait_vtime[i];
            self.hidden_vtime[i] += other.hidden_vtime[i];
            self.wait_hist[i].merge(&other.wait_hist[i]);
        }
        self.msg_size_hist.merge(&other.msg_size_hist);
        self.extra_latency_msgs += other.extra_latency_msgs;
        self.allreduces += other.allreduces;
        self.allreduce_rounds += other.allreduce_rounds;
    }

    /// Reset all counters (between timed experiment sections).
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_by_phase() {
        let mut s = CommStats::new();
        s.record_send(CommPhase::Spmv, 100);
        s.record_send(CommPhase::Spmv, 50);
        s.record_send(CommPhase::Redundancy, 7);
        assert_eq!(s.msgs(CommPhase::Spmv), 2);
        assert_eq!(s.elems(CommPhase::Spmv), 150);
        assert_eq!(s.msgs(CommPhase::Redundancy), 1);
        assert_eq!(s.elems(CommPhase::Redundancy), 7);
        assert_eq!(s.total_msgs(), 3);
        assert_eq!(s.total_elems(), 157);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = CommStats::new();
        a.record_send(CommPhase::Recovery, 10);
        let mut b = CommStats::new();
        b.record_send(CommPhase::Recovery, 5);
        b.record_extra_latency();
        a.merge(&b);
        assert_eq!(a.elems(CommPhase::Recovery), 15);
        assert_eq!(a.extra_latency_msgs(), 1);
    }

    #[test]
    fn wait_accounting_merges_per_phase() {
        let mut a = CommStats::new();
        a.record_send_vtime(CommPhase::Reduction, 1.0);
        a.record_wait_vtime(CommPhase::Reduction, 2.0);
        a.record_hidden_vtime(CommPhase::Reduction, 3.0);
        a.record_wait_vtime(CommPhase::Spmv, 0.5);
        let mut b = CommStats::new();
        b.record_wait_vtime(CommPhase::Reduction, 4.0);
        b.record_hidden_vtime(CommPhase::Spmv, 1.5);
        a.merge(&b);
        assert_eq!(a.wait_vtime(CommPhase::Reduction), 6.0);
        assert_eq!(a.hidden_vtime(CommPhase::Reduction), 3.0);
        assert_eq!(a.exposed_vtime(CommPhase::Reduction), 7.0);
        assert_eq!(a.wait_vtime(CommPhase::Spmv), 0.5);
        assert_eq!(a.hidden_vtime(CommPhase::Spmv), 1.5);
        assert_eq!(a.total_wait_vtime(), 6.5);
        assert_eq!(a.total_hidden_vtime(), 4.5);
        assert_eq!(a.total_exposed_vtime(), 7.5);
    }

    #[test]
    fn loghist_buckets_by_octave() {
        let mut h = LogHist::new();
        for _ in 0..99 {
            h.record(1.5); // [1, 2)
        }
        h.record(1000.0); // [512, 1024)
        assert_eq!(h.count(), 100);
        assert_eq!(h.p50(), 2.0);
        assert_eq!(h.p99(), 2.0);
        assert_eq!(h.quantile(1.0), 1024.0);
    }

    #[test]
    fn loghist_zero_and_empty() {
        let h = LogHist::new();
        assert_eq!(h.p50(), 0.0);
        let mut h = LogHist::new();
        h.record(0.0);
        h.record(-3.0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.p99(), 0.0);
    }

    #[test]
    fn loghist_merge_accumulates() {
        let mut a = LogHist::new();
        a.record(4.0);
        let mut b = LogHist::new();
        b.record(4.0);
        b.record(1e-6);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        // Two of three samples in [4, 8) ⇒ the median bucket is [4, 8).
        assert_eq!(a.p50(), 8.0);
    }

    #[test]
    fn loghist_deterministic_on_tiny_vtimes() {
        // Wait-time scale samples land in distinct, reproducible buckets.
        let mut h = LogHist::new();
        h.record(1.2e-5);
        h.record(2.5e-5);
        assert_eq!(h.count(), 2);
        assert_eq!(h.p50(), h.quantile(0.5));
        assert!(h.p50() > 1.2e-5 && h.p50() < 1.2e-4, "{}", h.p50());
    }

    #[test]
    fn stats_histograms_follow_sends_and_waits() {
        let mut a = CommStats::new();
        a.record_send(CommPhase::Spmv, 100);
        a.record_wait_vtime(CommPhase::Reduction, 1e-5);
        let mut b = CommStats::new();
        b.record_send(CommPhase::Spmv, 100);
        a.merge(&b);
        assert_eq!(a.msg_size_hist().count(), 2);
        assert_eq!(a.wait_hist(CommPhase::Reduction).count(), 1);
        assert_eq!(a.total_wait_hist().count(), 1);
        assert_eq!(a.msg_size_hist().p99(), 128.0); // 100 ∈ [64, 128)
    }

    #[test]
    fn reset_clears() {
        let mut s = CommStats::new();
        s.record_send(CommPhase::Other, 3);
        s.reset();
        assert_eq!(s.total_msgs(), 0);
        assert_eq!(s.total_elems(), 0);
    }
}
