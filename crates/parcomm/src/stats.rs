//! Communication statistics, partitioned by algorithm phase.
//!
//! The paper's evaluation separates the *undisturbed* redundancy overhead
//! (extra elements appended to SpMV messages, Table 2 columns 3–5) from the
//! *reconstruction* cost (Table 2 columns 7–9). Tagging every send with a
//! [`CommPhase`] lets the benchmark harness compute both, and lets the
//! Sec. 4.2 analysis compare measured redundancy traffic against the
//! theoretical bounds.

/// Which algorithm phase a message belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CommPhase {
    /// Plan construction and other one-time setup.
    Setup,
    /// Ghost exchange required by SpMV regardless of resilience.
    Spmv,
    /// Extra elements sent only to maintain φ redundant copies (Eqn. 6).
    Redundancy,
    /// Scalar reductions (dot products, norms).
    Reduction,
    /// State reconstruction after failures (paper Alg. 2).
    Recovery,
    /// Everything else.
    Other,
}

const NPHASES: usize = 6;

fn phase_index(p: CommPhase) -> usize {
    match p {
        CommPhase::Setup => 0,
        CommPhase::Spmv => 1,
        CommPhase::Redundancy => 2,
        CommPhase::Reduction => 3,
        CommPhase::Recovery => 4,
        CommPhase::Other => 5,
    }
}

/// Per-phase message/element counters for one node.
#[derive(Clone, Debug, Default)]
pub struct CommStats {
    msgs: [u64; NPHASES],
    elems: [u64; NPHASES],
    /// Messages that opened a link no other traffic in the same round used
    /// (the paper's "extra latency" case, Sec. 4.2).
    extra_latency_msgs: u64,
    /// All-reduce collective calls this node participated in.
    allreduces: u64,
    /// Total communication rounds across those all-reduce calls (the
    /// critical-path depth: ⌈log₂N⌉, +2 on non-power-of-two sizes).
    allreduce_rounds: u64,
    /// Virtual seconds the node clock advanced *inside blocking sends*
    /// (`λ + s·µ` per message — the sender is busy for the transfer).
    send_vtime: [f64; NPHASES],
    /// Virtual seconds the node clock advanced *stalled*: blocked in a
    /// `recv` waiting for a message that had not yet arrived, or charged at
    /// a non-blocking `wait` for the un-hidden remainder of the operation.
    wait_vtime: [f64; NPHASES],
    /// Virtual seconds of non-blocking communication that overlapped local
    /// compute — flight time the node clock never had to pay for.
    hidden_vtime: [f64; NPHASES],
}

impl CommStats {
    /// Fresh, zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a sent message of `elems` vector elements in `phase`.
    pub fn record_send(&mut self, phase: CommPhase, elems: usize) {
        let i = phase_index(phase);
        self.msgs[i] += 1;
        self.elems[i] += elems as u64;
    }

    /// Record that a redundancy message needed its own link (extra λ).
    pub fn record_extra_latency(&mut self) {
        self.extra_latency_msgs += 1;
    }

    /// Record one all-reduce call that took `rounds` communication rounds.
    pub fn record_allreduce(&mut self, rounds: usize) {
        self.allreduces += 1;
        self.allreduce_rounds += rounds as u64;
    }

    /// Record virtual time spent inside a blocking send in `phase`.
    pub fn record_send_vtime(&mut self, phase: CommPhase, dt: f64) {
        debug_assert!(dt >= 0.0);
        self.send_vtime[phase_index(phase)] += dt;
    }

    /// Record virtual time spent stalled (blocking `recv` arrival wait or
    /// the exposed remainder charged by a non-blocking `wait`) in `phase`.
    pub fn record_wait_vtime(&mut self, phase: CommPhase, dt: f64) {
        debug_assert!(dt >= 0.0);
        self.wait_vtime[phase_index(phase)] += dt;
    }

    /// Record non-blocking communication time hidden behind compute.
    pub fn record_hidden_vtime(&mut self, phase: CommPhase, dt: f64) {
        debug_assert!(dt >= 0.0);
        self.hidden_vtime[phase_index(phase)] += dt;
    }

    /// Remove one message (not its elements) from `phase` — used when a
    /// logically separate payload piggybacks on an existing message.
    pub fn uncount_msg(&mut self, phase: CommPhase) {
        let i = phase_index(phase);
        debug_assert!(self.msgs[i] > 0);
        self.msgs[i] -= 1;
    }

    /// Messages sent in `phase`.
    pub fn msgs(&self, phase: CommPhase) -> u64 {
        self.msgs[phase_index(phase)]
    }

    /// Elements sent in `phase`.
    pub fn elems(&self, phase: CommPhase) -> u64 {
        self.elems[phase_index(phase)]
    }

    /// Total messages across phases.
    pub fn total_msgs(&self) -> u64 {
        self.msgs.iter().sum()
    }

    /// Total elements across phases.
    pub fn total_elems(&self) -> u64 {
        self.elems.iter().sum()
    }

    /// Redundancy messages that paid their own latency.
    pub fn extra_latency_msgs(&self) -> u64 {
        self.extra_latency_msgs
    }

    /// All-reduce calls this node participated in.
    pub fn allreduces(&self) -> u64 {
        self.allreduces
    }

    /// Total rounds across all all-reduce calls (divide by
    /// [`CommStats::allreduces`] for the per-call critical-path depth).
    pub fn allreduce_rounds(&self) -> u64 {
        self.allreduce_rounds
    }

    /// Virtual time spent inside blocking sends in `phase`.
    pub fn send_vtime(&self, phase: CommPhase) -> f64 {
        self.send_vtime[phase_index(phase)]
    }

    /// Virtual time spent stalled waiting in `phase`.
    pub fn wait_vtime(&self, phase: CommPhase) -> f64 {
        self.wait_vtime[phase_index(phase)]
    }

    /// Non-blocking communication time hidden behind compute in `phase`.
    pub fn hidden_vtime(&self, phase: CommPhase) -> f64 {
        self.hidden_vtime[phase_index(phase)]
    }

    /// *Exposed* communication time in `phase`: virtual time the node clock
    /// actually advanced doing communication (blocking send transfers plus
    /// stalls). Hidden time is excluded — that is the point of the split.
    pub fn exposed_vtime(&self, phase: CommPhase) -> f64 {
        let i = phase_index(phase);
        self.send_vtime[i] + self.wait_vtime[i]
    }

    /// Total stalled time across phases.
    pub fn total_wait_vtime(&self) -> f64 {
        self.wait_vtime.iter().sum()
    }

    /// Total hidden time across phases.
    pub fn total_hidden_vtime(&self) -> f64 {
        self.hidden_vtime.iter().sum()
    }

    /// Total exposed communication time across phases.
    pub fn total_exposed_vtime(&self) -> f64 {
        self.send_vtime.iter().sum::<f64>() + self.wait_vtime.iter().sum::<f64>()
    }

    /// Merge another node's counters into this one (cluster-wide totals).
    pub fn merge(&mut self, other: &CommStats) {
        for i in 0..NPHASES {
            self.msgs[i] += other.msgs[i];
            self.elems[i] += other.elems[i];
            self.send_vtime[i] += other.send_vtime[i];
            self.wait_vtime[i] += other.wait_vtime[i];
            self.hidden_vtime[i] += other.hidden_vtime[i];
        }
        self.extra_latency_msgs += other.extra_latency_msgs;
        self.allreduces += other.allreduces;
        self.allreduce_rounds += other.allreduce_rounds;
    }

    /// Reset all counters (between timed experiment sections).
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_by_phase() {
        let mut s = CommStats::new();
        s.record_send(CommPhase::Spmv, 100);
        s.record_send(CommPhase::Spmv, 50);
        s.record_send(CommPhase::Redundancy, 7);
        assert_eq!(s.msgs(CommPhase::Spmv), 2);
        assert_eq!(s.elems(CommPhase::Spmv), 150);
        assert_eq!(s.msgs(CommPhase::Redundancy), 1);
        assert_eq!(s.elems(CommPhase::Redundancy), 7);
        assert_eq!(s.total_msgs(), 3);
        assert_eq!(s.total_elems(), 157);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = CommStats::new();
        a.record_send(CommPhase::Recovery, 10);
        let mut b = CommStats::new();
        b.record_send(CommPhase::Recovery, 5);
        b.record_extra_latency();
        a.merge(&b);
        assert_eq!(a.elems(CommPhase::Recovery), 15);
        assert_eq!(a.extra_latency_msgs(), 1);
    }

    #[test]
    fn wait_accounting_merges_per_phase() {
        let mut a = CommStats::new();
        a.record_send_vtime(CommPhase::Reduction, 1.0);
        a.record_wait_vtime(CommPhase::Reduction, 2.0);
        a.record_hidden_vtime(CommPhase::Reduction, 3.0);
        a.record_wait_vtime(CommPhase::Spmv, 0.5);
        let mut b = CommStats::new();
        b.record_wait_vtime(CommPhase::Reduction, 4.0);
        b.record_hidden_vtime(CommPhase::Spmv, 1.5);
        a.merge(&b);
        assert_eq!(a.wait_vtime(CommPhase::Reduction), 6.0);
        assert_eq!(a.hidden_vtime(CommPhase::Reduction), 3.0);
        assert_eq!(a.exposed_vtime(CommPhase::Reduction), 7.0);
        assert_eq!(a.wait_vtime(CommPhase::Spmv), 0.5);
        assert_eq!(a.hidden_vtime(CommPhase::Spmv), 1.5);
        assert_eq!(a.total_wait_vtime(), 6.5);
        assert_eq!(a.total_hidden_vtime(), 4.5);
        assert_eq!(a.total_exposed_vtime(), 7.5);
    }

    #[test]
    fn reset_clears() {
        let mut s = CommStats::new();
        s.record_send(CommPhase::Other, 3);
        s.reset();
        assert_eq!(s.total_msgs(), 0);
        assert_eq!(s.total_elems(), 0);
    }
}
