//! Virtual-time tracing: per-node span/event logs, Chrome-trace export, and
//! critical-path analysis.
//!
//! Compiled only under `--features trace`. The tracer is **strictly
//! observational**: it reads the virtual clock but never advances it, so
//! every traced run produces bitwise-identical trajectories and virtual
//! times to the untraced build (the same discipline as the `audit`
//! feature, pinned by the `report` bench).
//!
//! Each node records a flat list of [`TraceEvent`]s stamped with the
//! virtual clock: `Open`/`Close` span markers (solver iterations, recovery
//! attempts and their substeps, collectives and their recursive-doubling
//! rounds, checkpoint deposits), point-to-point `Send`/`Recv` events
//! carrying `(peer, tag, elems)` and a per-`(peer, tag)` sequence number
//! that pairs each receive with the exact send that produced its message,
//! and `Wait` events carrying the exposed-vs-hidden split charged by the
//! overlap-aware clock. [`crate::cluster::Cluster::run_traced`] gathers the
//! per-rank logs into a [`ClusterTrace`] with three consumers:
//!
//! 1. [`ClusterTrace::chrome_trace_json`] — a Chrome-trace/Perfetto JSON
//!    export (one process per rank, one thread lane per phase);
//! 2. [`ClusterTrace::critical_path`] — a deterministic longest-path walk
//!    over program order and send→recv dependencies, attributing the
//!    longest dependent chain by rank, phase, and enclosing scope;
//! 3. [`ClusterTrace::validate`] — structural well-formedness (balanced
//!    nesting, monotone timestamps, every receive matched to a send).

use std::collections::HashMap;

use crate::stats::CommPhase;
use crate::tag::Tag;

/// One recorded event on a node's virtual-time line.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Virtual time the event was recorded at: span start for `Open`,
    /// operation start for `Send`/`Recv`/`Wait`. Events flagged
    /// `engine: true` are stamped from the detached engine timeline and
    /// are exempt from the per-rank monotonicity invariant.
    pub t: f64,
    /// What happened.
    pub kind: TraceEventKind,
}

/// The event payload.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEventKind {
    /// A named scope span begins (iteration, recovery, collective, round…).
    Open {
        /// Scope name (static — scopes are a closed vocabulary).
        name: &'static str,
        /// Scope argument (iteration index, attempt sequence, round…).
        arg: u64,
    },
    /// The innermost open scope span ends.
    Close,
    /// A message left this node.
    Send {
        /// Accounting phase the traffic was booked under.
        phase: CommPhase,
        /// Destination rank.
        dst: usize,
        /// Message tag.
        tag: Tag,
        /// Payload size in vector elements.
        elems: usize,
        /// Per-`(dst, tag)` send sequence number (pairs with the matching
        /// receive's per-`(src, tag)` sequence number).
        seq: u64,
        /// Transfer cost `λ + s·µ`. Charged to the node clock for blocking
        /// sends; flows on the detached timeline when `engine`.
        dt: f64,
        /// True when issued by the non-blocking engine (isend or a
        /// detached collective schedule) — the cost is then charged later,
        /// at the `Wait` event.
        engine: bool,
    },
    /// A message was consumed on this node.
    Recv {
        /// Accounting phase the stall was booked under.
        phase: CommPhase,
        /// Source rank.
        src: usize,
        /// Message tag.
        tag: Tag,
        /// Payload size in vector elements.
        elems: usize,
        /// Per-`(src, tag)` receive sequence number.
        seq: u64,
        /// Blocking stall (`max(arrival − clock, 0)`); 0 when `engine`.
        stall: f64,
        /// True when consumed by the non-blocking engine — any exposed
        /// cost is charged later, at the `Wait` event.
        engine: bool,
    },
    /// A non-blocking operation was completed (`wait`), charging the
    /// un-hidden remainder.
    Wait {
        /// Accounting phase.
        phase: CommPhase,
        /// Virtual time the node clock actually advanced.
        exposed: f64,
        /// Flight time hidden behind compute since the operation started.
        hidden: f64,
    },
    /// A zero-duration marker (failure notification, grant, retirement…).
    Instant {
        /// Marker name.
        name: &'static str,
        /// Marker argument.
        arg: u64,
    },
}

impl TraceEventKind {
    fn is_engine(&self) -> bool {
        matches!(
            self,
            TraceEventKind::Send { engine: true, .. } | TraceEventKind::Recv { engine: true, .. }
        )
    }
}

/// Per-node recorder, owned by the `NodeCtx` while the program runs.
#[derive(Debug)]
pub struct TraceState {
    rank: usize,
    events: Vec<TraceEvent>,
    send_seq: HashMap<(usize, Tag), u64>,
    recv_seq: HashMap<(usize, Tag), u64>,
    /// Virtual time already elapsed on clock epochs that were since reset
    /// (`NodeCtx::reset_metrics` rewinds the node clock to zero after
    /// setup). Folding the pre-reset value into a base offset keeps trace
    /// time monotone across the whole run while the solver's own vtime
    /// accounting still starts from zero.
    base: f64,
}

impl TraceState {
    pub(crate) fn new(rank: usize) -> Self {
        TraceState {
            rank,
            events: Vec::new(),
            send_seq: HashMap::new(),
            recv_seq: HashMap::new(),
            base: 0.0,
        }
    }

    pub(crate) fn record(&mut self, t: f64, kind: TraceEventKind) {
        self.events.push(TraceEvent {
            t: self.base + t,
            kind,
        });
    }

    /// The node clock is about to rewind to zero from `now`: absorb the
    /// elapsed epoch into the base offset.
    pub(crate) fn clock_reset(&mut self, now: f64) {
        self.base += now;
    }

    /// Sequence number of the next message sent to `(dst, tag)`. The
    /// mailbox is FIFO per `(src, tag)`, so the k-th message consumed by
    /// the receiver is the k-th sent — the counters pair sends and
    /// receives without touching the wire format.
    pub(crate) fn next_send_seq(&mut self, dst: usize, tag: Tag) -> u64 {
        let c = self.send_seq.entry((dst, tag)).or_insert(0);
        let s = *c;
        *c += 1;
        s
    }

    /// Sequence number of the next message consumed from `(src, tag)`.
    pub(crate) fn next_recv_seq(&mut self, src: usize, tag: Tag) -> u64 {
        let c = self.recv_seq.entry((src, tag)).or_insert(0);
        let s = *c;
        *c += 1;
        s
    }

    pub(crate) fn into_log(self) -> NodeTrace {
        NodeTrace {
            rank: self.rank,
            events: self.events,
        }
    }
}

/// One node's completed event log.
#[derive(Clone, Debug, Default)]
pub struct NodeTrace {
    /// The recording node's rank.
    pub rank: usize,
    /// Events in program order.
    pub events: Vec<TraceEvent>,
}

/// All nodes' logs, gathered at cluster teardown (indexed by rank).
#[derive(Clone, Debug, Default)]
pub struct ClusterTrace {
    /// Per-rank logs in rank order.
    pub nodes: Vec<NodeTrace>,
}

/// A step of the critical path: one event whose cost the longest dependent
/// chain actually pays.
#[derive(Clone, Debug)]
pub struct CriticalStep {
    /// Rank the step executed on.
    pub rank: usize,
    /// Accounting phase of the step's cost.
    pub phase: Option<CommPhase>,
    /// Innermost enclosing scope when the step ran (e.g.
    /// `("iteration", 7)`), if any.
    pub scope: Option<(&'static str, u64)>,
    /// Step kind: `"send"`, `"recv"`, or `"wait"`.
    pub kind: &'static str,
    /// Virtual time the chain spends in this step.
    pub weight: f64,
    /// Virtual time the step started.
    pub t: f64,
}

/// Result of [`ClusterTrace::critical_path`]: the longest dependent chain
/// of communication costs, with attribution rollups.
#[derive(Clone, Debug, Default)]
pub struct CriticalPath {
    /// Total virtual time along the chain.
    pub total: f64,
    /// The chain's cost-bearing steps, in execution order.
    pub steps: Vec<CriticalStep>,
    /// Chain time by phase (non-zero entries, `phase_index` order).
    pub by_phase: Vec<(CommPhase, f64)>,
    /// Chain time by rank (non-zero entries, ascending rank).
    pub by_rank: Vec<(usize, f64)>,
    /// Chain time by innermost scope label (non-zero entries, first-seen
    /// order; e.g. `"iteration 7"`, `"recovery 3"`, `"<toplevel>"`).
    pub by_scope: Vec<(String, f64)>,
}

impl ClusterTrace {
    /// Total number of recorded events across all ranks.
    pub fn total_events(&self) -> usize {
        self.nodes.iter().map(|n| n.events.len()).sum()
    }

    /// Structural well-formedness:
    ///
    /// 1. span nesting is balanced on every rank (`Close` never underflows
    ///    and every `Open` is closed),
    /// 2. timestamps of non-engine events are monotone non-decreasing in
    ///    the virtual clock on every rank,
    /// 3. every `Recv` names a `Send` recorded at the source with the same
    ///    `(src, dst, tag, seq)` key and the same element count.
    pub fn validate(&self) -> Result<(), String> {
        for nt in &self.nodes {
            let mut depth: i64 = 0;
            let mut last_t = f64::NEG_INFINITY;
            for (i, ev) in nt.events.iter().enumerate() {
                if !ev.kind.is_engine() {
                    if ev.t < last_t {
                        return Err(format!(
                            "rank {}: event {} at t={} precedes t={}",
                            nt.rank, i, ev.t, last_t
                        ));
                    }
                    last_t = ev.t;
                }
                match ev.kind {
                    TraceEventKind::Open { .. } => depth += 1,
                    TraceEventKind::Close => {
                        depth -= 1;
                        if depth < 0 {
                            return Err(format!(
                                "rank {}: event {} closes a span that was never opened",
                                nt.rank, i
                            ));
                        }
                    }
                    _ => {}
                }
            }
            if depth != 0 {
                return Err(format!(
                    "rank {}: {} span(s) left open at teardown",
                    nt.rank, depth
                ));
            }
        }
        // Cross-node receive ↔ send matching.
        let mut sends: HashMap<(usize, usize, Tag, u64), usize> = HashMap::new();
        for nt in &self.nodes {
            for ev in &nt.events {
                if let TraceEventKind::Send {
                    dst,
                    tag,
                    elems,
                    seq,
                    ..
                } = ev.kind
                {
                    if sends.insert((nt.rank, dst, tag, seq), elems).is_some() {
                        return Err(format!(
                            "rank {}: duplicate send seq {} to rank {} tag {}",
                            nt.rank,
                            seq,
                            dst,
                            tag.describe()
                        ));
                    }
                }
            }
        }
        for nt in &self.nodes {
            for ev in &nt.events {
                if let TraceEventKind::Recv {
                    src,
                    tag,
                    elems,
                    seq,
                    ..
                } = ev.kind
                {
                    match sends.get(&(src, nt.rank, tag, seq)) {
                        None => {
                            return Err(format!(
                                "rank {}: recv seq {} from rank {} tag {} names no send",
                                nt.rank,
                                seq,
                                src,
                                tag.describe()
                            ));
                        }
                        Some(&sent) if sent != elems => {
                            return Err(format!(
                                "rank {}: recv seq {} from rank {} tag {} got {} elems, send had {}",
                                nt.rank,
                                seq,
                                src,
                                tag.describe(),
                                elems,
                                sent
                            ));
                        }
                        Some(_) => {}
                    }
                }
            }
        }
        Ok(())
    }

    /// The longest dependent chain of communication costs.
    ///
    /// Events form a DAG: program order within each rank, plus one edge
    /// from every send to its matching receive. An event's own cost —
    /// blocking send transfer `dt`, blocking receive `stall`, `Wait`
    /// `exposed`; engine events cost 0, their exposure surfaces at the
    /// `Wait` — is paid when the chain enters it through program order;
    /// entering a receive through its cross edge costs nothing (the
    /// message's flight was already paid on the sender's chain, and any
    /// residual stall overlaps it). The walk is a deterministic
    /// longest-path DP in topological order; ties break toward the
    /// earliest `(rank, index)`. On a serial (N=1) run the chain is the
    /// single rank's program order and the total equals the node's total
    /// exposed communication vtime exactly.
    pub fn critical_path(&self) -> CriticalPath {
        let nranks = self.nodes.len();
        let mut offsets = vec![0usize; nranks + 1];
        for (r, nt) in self.nodes.iter().enumerate() {
            offsets[r + 1] = offsets[r] + nt.events.len();
        }
        let nev = offsets[nranks];
        if nev == 0 {
            return CriticalPath::default();
        }
        let rank_of = |g: usize| offsets.partition_point(|&o| o <= g) - 1;
        let event_of = |g: usize| {
            let r = rank_of(g);
            (r, &self.nodes[r].events[g - offsets[r]])
        };
        let own_cost = |ev: &TraceEvent| match ev.kind {
            TraceEventKind::Send { dt, engine, .. } => {
                if engine {
                    0.0
                } else {
                    dt
                }
            }
            TraceEventKind::Recv { stall, engine, .. } => {
                if engine {
                    0.0
                } else {
                    stall
                }
            }
            TraceEventKind::Wait { exposed, .. } => exposed,
            _ => 0.0,
        };

        // Edges as predecessor lists: (pred, edge weight).
        let mut preds: Vec<Vec<(usize, f64)>> = vec![Vec::new(); nev];
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); nev];
        let mut sends: HashMap<(usize, usize, Tag, u64), usize> = HashMap::new();
        for (r, nt) in self.nodes.iter().enumerate() {
            for (i, ev) in nt.events.iter().enumerate() {
                let g = offsets[r] + i;
                if i > 0 {
                    preds[g].push((g - 1, own_cost(ev)));
                    succs[g - 1].push(g);
                }
                if let TraceEventKind::Send { dst, tag, seq, .. } = ev.kind {
                    sends.insert((r, dst, tag, seq), g);
                }
            }
        }
        for (r, nt) in self.nodes.iter().enumerate() {
            for (i, ev) in nt.events.iter().enumerate() {
                if let TraceEventKind::Recv { src, tag, seq, .. } = ev.kind {
                    if let Some(&s) = sends.get(&(src, r, tag, seq)) {
                        let g = offsets[r] + i;
                        preds[g].push((s, 0.0));
                        succs[s].push(g);
                    }
                }
            }
        }

        // Longest-path DP in Kahn topological order (FIFO queue seeded in
        // global order keeps the walk deterministic).
        let mut indeg: Vec<usize> = preds.iter().map(Vec::len).collect();
        let mut queue: std::collections::VecDeque<usize> =
            (0..nev).filter(|&g| indeg[g] == 0).collect();
        let mut dist = vec![0.0f64; nev];
        let mut best_pred: Vec<Option<usize>> = vec![None; nev];
        let mut seen = 0usize;
        while let Some(g) = queue.pop_front() {
            seen += 1;
            let (_, ev) = event_of(g);
            let mut d = if preds[g].is_empty() {
                own_cost(ev)
            } else {
                f64::NEG_INFINITY
            };
            for &(p, w) in &preds[g] {
                let cand = dist[p] + w;
                if cand > d {
                    d = cand;
                    best_pred[g] = Some(p);
                }
            }
            dist[g] = d;
            for &s in &succs[g] {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    queue.push_back(s);
                }
            }
        }
        debug_assert_eq!(seen, nev, "trace dependency graph has a cycle");

        let mut end = 0usize;
        for g in 1..nev {
            if dist[g] > dist[end] {
                end = g;
            }
        }
        let total = dist[end].max(0.0);

        // Innermost scope per event, per rank.
        let mut scope_of: Vec<Option<(&'static str, u64)>> = vec![None; nev];
        for (r, nt) in self.nodes.iter().enumerate() {
            let mut stack: Vec<(&'static str, u64)> = Vec::new();
            for (i, ev) in nt.events.iter().enumerate() {
                match ev.kind {
                    TraceEventKind::Open { name, arg } => {
                        scope_of[offsets[r] + i] = stack.last().copied();
                        stack.push((name, arg));
                    }
                    TraceEventKind::Close => {
                        stack.pop();
                        scope_of[offsets[r] + i] = stack.last().copied();
                    }
                    _ => scope_of[offsets[r] + i] = stack.last().copied(),
                }
            }
        }

        // Backtrack the chain; keep only cost-bearing steps.
        let mut chain = Vec::new();
        let mut g = end;
        loop {
            chain.push(g);
            match best_pred[g] {
                Some(p) => g = p,
                None => break,
            }
        }
        chain.reverse();
        let mut steps = Vec::new();
        for (k, &g) in chain.iter().enumerate() {
            let paid = if k == 0 {
                dist[g]
            } else {
                dist[g] - dist[chain[k - 1]]
            };
            if paid <= 0.0 {
                continue;
            }
            let (r, ev) = event_of(g);
            let (kind, phase) = match ev.kind {
                TraceEventKind::Send { phase, .. } => ("send", Some(phase)),
                TraceEventKind::Recv { phase, .. } => ("recv", Some(phase)),
                TraceEventKind::Wait { phase, .. } => ("wait", Some(phase)),
                _ => ("other", None),
            };
            steps.push(CriticalStep {
                rank: r,
                phase,
                scope: scope_of[g],
                kind,
                weight: paid,
                t: ev.t,
            });
        }

        // Rollups.
        let mut by_phase_acc = [0.0f64; crate::stats::NPHASES];
        let mut by_rank_acc = vec![0.0f64; nranks];
        let mut by_scope: Vec<(String, f64)> = Vec::new();
        for s in &steps {
            if let Some(p) = s.phase {
                by_phase_acc[p.index()] += s.weight;
            }
            by_rank_acc[s.rank] += s.weight;
            let label = match s.scope {
                Some((name, arg)) => format!("{name} {arg}"),
                None => "<toplevel>".to_string(),
            };
            match by_scope.iter_mut().find(|(l, _)| *l == label) {
                Some((_, w)) => *w += s.weight,
                None => by_scope.push((label, s.weight)),
            }
        }
        let by_phase = CommPhase::ALL
            .iter()
            .filter(|p| by_phase_acc[p.index()] > 0.0)
            .map(|&p| (p, by_phase_acc[p.index()]))
            .collect();
        let by_rank = by_rank_acc
            .iter()
            .enumerate()
            .filter(|&(_, &w)| w > 0.0)
            .map(|(r, &w)| (r, w))
            .collect();

        CriticalPath {
            total,
            steps,
            by_phase,
            by_rank,
            by_scope,
        }
    }

    /// Export as Chrome-trace ("Trace Event Format") JSON, loadable in
    /// Perfetto or `chrome://tracing`. One *process* per rank; within a
    /// rank, thread lane 0 carries the scope spans and instants, lanes
    /// `1 + phase` the blocking comm events and waits of that phase, lanes
    /// `7 + phase` the detached engine events. Timestamps are virtual
    /// seconds scaled to microseconds.
    pub fn chrome_trace_json(&self) -> String {
        const US: f64 = 1e6;
        let mut out = String::with_capacity(4096 + 160 * self.total_events());
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        let push = |s: String, out: &mut String, first: &mut bool| {
            if !*first {
                out.push(',');
            }
            *first = false;
            out.push_str(&s);
        };
        for nt in &self.nodes {
            let pid = nt.rank;
            push(
                format!(
                    "{{\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_name\",\
                     \"args\":{{\"name\":\"rank {pid}\"}}}}"
                ),
                &mut out,
                &mut first,
            );
            // Emit thread-name metadata only for lanes this rank uses.
            let mut lanes_used = [false; 13];
            lanes_used[0] = true;
            for ev in &nt.events {
                match ev.kind {
                    TraceEventKind::Send { phase, engine, .. }
                    | TraceEventKind::Recv { phase, engine, .. } => {
                        lanes_used[if engine { 7 } else { 1 } + phase.index()] = true;
                    }
                    TraceEventKind::Wait { phase, .. } => {
                        lanes_used[1 + phase.index()] = true;
                    }
                    _ => {}
                }
            }
            for (tid, &used) in lanes_used.iter().enumerate() {
                if !used {
                    continue;
                }
                let lane = if tid == 0 {
                    "control".to_string()
                } else if tid < 7 {
                    format!("comm:{}", CommPhase::ALL[tid - 1].name())
                } else {
                    format!("engine:{}", CommPhase::ALL[tid - 7].name())
                };
                push(
                    format!(
                        "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
                         \"name\":\"thread_name\",\"args\":{{\"name\":\"{lane}\"}}}}"
                    ),
                    &mut out,
                    &mut first,
                );
            }
            // Scope spans: match Open/Close on a stack into complete "X"
            // events; any span left open closes at the last timestamp.
            let t_end = nt.events.last().map_or(0.0, |e| e.t);
            let mut stack: Vec<(&'static str, u64, f64)> = Vec::new();
            for ev in &nt.events {
                match ev.kind {
                    TraceEventKind::Open { name, arg } => stack.push((name, arg, ev.t)),
                    TraceEventKind::Close => {
                        if let Some((name, arg, t0)) = stack.pop() {
                            push(
                                format!(
                                    "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":0,\
                                     \"name\":\"{name}\",\"ts\":{},\"dur\":{},\
                                     \"args\":{{\"arg\":{arg}}}}}",
                                    num(t0 * US),
                                    num((ev.t - t0).max(0.0) * US),
                                ),
                                &mut out,
                                &mut first,
                            );
                        }
                    }
                    TraceEventKind::Instant { name, arg } => {
                        push(
                            format!(
                                "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":0,\
                                 \"name\":\"{name}\",\"ts\":{},\"s\":\"t\",\
                                 \"args\":{{\"arg\":{arg}}}}}",
                                num(ev.t * US),
                            ),
                            &mut out,
                            &mut first,
                        );
                    }
                    TraceEventKind::Send {
                        phase,
                        dst,
                        tag,
                        elems,
                        seq,
                        dt,
                        engine,
                    } => {
                        let tid = if engine { 7 } else { 1 } + phase.index();
                        push(
                            format!(
                                "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\
                                 \"name\":\"send\",\"ts\":{},\"dur\":{},\
                                 \"args\":{{\"dst\":{dst},\"tag\":\"{}\",\
                                 \"elems\":{elems},\"seq\":{seq}}}}}",
                                num(ev.t * US),
                                num(dt * US),
                                esc(&tag.describe()),
                            ),
                            &mut out,
                            &mut first,
                        );
                    }
                    TraceEventKind::Recv {
                        phase,
                        src,
                        tag,
                        elems,
                        seq,
                        stall,
                        engine,
                    } => {
                        let tid = if engine { 7 } else { 1 } + phase.index();
                        push(
                            format!(
                                "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\
                                 \"name\":\"recv\",\"ts\":{},\"dur\":{},\
                                 \"args\":{{\"src\":{src},\"tag\":\"{}\",\
                                 \"elems\":{elems},\"seq\":{seq}}}}}",
                                num(ev.t * US),
                                num(stall * US),
                                esc(&tag.describe()),
                            ),
                            &mut out,
                            &mut first,
                        );
                    }
                    TraceEventKind::Wait {
                        phase,
                        exposed,
                        hidden,
                    } => {
                        let tid = 1 + phase.index();
                        push(
                            format!(
                                "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\
                                 \"name\":\"wait\",\"ts\":{},\"dur\":{},\
                                 \"args\":{{\"exposed\":{},\"hidden\":{}}}}}",
                                num(ev.t * US),
                                num(exposed * US),
                                num(exposed),
                                num(hidden),
                            ),
                            &mut out,
                            &mut first,
                        );
                    }
                }
            }
            while let Some((name, arg, t0)) = stack.pop() {
                push(
                    format!(
                        "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":0,\
                         \"name\":\"{name}\",\"ts\":{},\"dur\":{},\
                         \"args\":{{\"arg\":{arg}}}}}",
                        num(t0 * US),
                        num((t_end - t0).max(0.0) * US),
                    ),
                    &mut out,
                    &mut first,
                );
            }
        }
        out.push_str("]}");
        out
    }
}

/// Format a finite `f64` as a JSON number. `Display` for `f64` never emits
/// exponent notation or non-numeric tokens for finite values.
fn num(x: f64) -> String {
    debug_assert!(x.is_finite(), "trace timestamps are finite");
    format!("{x}")
}

/// Escape a string for a JSON literal (the tag vocabulary only needs the
/// two structural characters, but stay safe for arbitrary input).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ----------------------------------------------------------------------
// Chrome-trace schema validation (hand-rolled JSON — the workspace has no
// serde; see DESIGN.md "Dependency policy").
// ----------------------------------------------------------------------

#[derive(Debug, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            b: s.as_bytes(),
            i: 0,
        }
    }

    fn err(&self, what: &str) -> String {
        format!("JSON parse error at byte {}: {what}", self.i)
    }

    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.eat(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.i + 4 >= self.b.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.b[self.i + 1..self.i + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through bytewise.
                    let start = self.i;
                    self.i += 1;
                    while self.i < self.b.len() && (self.b[self.i] & 0xC0) == 0x80 {
                        self.i += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.b[start..self.i])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("bad number"))
    }
}

/// Parse `json` and verify it is a structurally valid Chrome-trace
/// document: a top-level object holding a `traceEvents` array whose every
/// entry is an event object with the fields Perfetto requires for its
/// phase (`X` complete events, `M` metadata, `i` instants). Returns the
/// number of events on success.
pub fn validate_chrome_trace(json: &str) -> Result<usize, String> {
    let mut p = Parser::new(json);
    let doc = p.value()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(p.err("trailing garbage"));
    }
    let events = match doc.get("traceEvents") {
        Some(Json::Arr(events)) => events,
        _ => return Err("top-level object lacks a traceEvents array".to_string()),
    };
    for (i, ev) in events.iter().enumerate() {
        let ph = match ev.get("ph") {
            Some(Json::Str(s)) => s.as_str(),
            _ => return Err(format!("event {i}: missing ph")),
        };
        let need_num = |key: &str| match ev.get(key) {
            Some(Json::Num(x)) if x.is_finite() => Ok(*x),
            _ => Err(format!("event {i} (ph {ph}): missing numeric {key}")),
        };
        let need_str = |key: &str| match ev.get(key) {
            Some(Json::Str(_)) => Ok(()),
            _ => Err(format!("event {i} (ph {ph}): missing string {key}")),
        };
        match ph {
            "X" => {
                need_str("name")?;
                need_num("pid")?;
                need_num("tid")?;
                need_num("ts")?;
                let dur = need_num("dur")?;
                if dur < 0.0 {
                    return Err(format!("event {i}: negative dur"));
                }
            }
            "M" => {
                need_str("name")?;
                need_num("pid")?;
            }
            "i" => {
                need_str("name")?;
                need_num("pid")?;
                need_num("tid")?;
                need_num("ts")?;
            }
            other => return Err(format!("event {i}: unexpected ph {other:?}")),
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: f64, kind: TraceEventKind) -> TraceEvent {
        TraceEvent { t, kind }
    }

    fn send(dst: usize, seq: u64, dt: f64) -> TraceEventKind {
        TraceEventKind::Send {
            phase: CommPhase::Spmv,
            dst,
            tag: Tag::user(1),
            elems: 4,
            seq,
            dt,
            engine: false,
        }
    }

    fn recv(src: usize, seq: u64, stall: f64) -> TraceEventKind {
        TraceEventKind::Recv {
            phase: CommPhase::Spmv,
            src,
            tag: Tag::user(1),
            elems: 4,
            seq,
            stall,
            engine: false,
        }
    }

    #[test]
    fn validate_accepts_matched_pair() {
        let tr = ClusterTrace {
            nodes: vec![
                NodeTrace {
                    rank: 0,
                    events: vec![ev(0.0, send(1, 0, 0.5))],
                },
                NodeTrace {
                    rank: 1,
                    events: vec![ev(0.0, recv(0, 0, 0.5))],
                },
            ],
        };
        tr.validate().expect("well-formed");
    }

    #[test]
    fn validate_rejects_orphan_recv() {
        let tr = ClusterTrace {
            nodes: vec![
                NodeTrace {
                    rank: 0,
                    events: vec![],
                },
                NodeTrace {
                    rank: 1,
                    events: vec![ev(0.0, recv(0, 0, 0.5))],
                },
            ],
        };
        let err = tr.validate().unwrap_err();
        assert!(err.contains("names no send"), "{err}");
    }

    #[test]
    fn validate_rejects_unbalanced_nesting() {
        let tr = ClusterTrace {
            nodes: vec![NodeTrace {
                rank: 0,
                events: vec![ev(
                    0.0,
                    TraceEventKind::Open {
                        name: "iteration",
                        arg: 0,
                    },
                )],
            }],
        };
        assert!(tr.validate().unwrap_err().contains("left open"));
        let tr = ClusterTrace {
            nodes: vec![NodeTrace {
                rank: 0,
                events: vec![ev(0.0, TraceEventKind::Close)],
            }],
        };
        assert!(tr.validate().unwrap_err().contains("never opened"));
    }

    #[test]
    fn validate_rejects_time_regression() {
        let tr = ClusterTrace {
            nodes: vec![NodeTrace {
                rank: 0,
                events: vec![
                    ev(1.0, TraceEventKind::Instant { name: "a", arg: 0 }),
                    ev(0.5, TraceEventKind::Instant { name: "b", arg: 0 }),
                ],
            }],
        };
        assert!(tr.validate().unwrap_err().contains("precedes"));
    }

    #[test]
    fn serial_critical_path_sums_exposed() {
        // One rank: costs accumulate along program order.
        let tr = ClusterTrace {
            nodes: vec![NodeTrace {
                rank: 0,
                events: vec![
                    ev(
                        0.0,
                        TraceEventKind::Wait {
                            phase: CommPhase::Reduction,
                            exposed: 0.25,
                            hidden: 0.1,
                        },
                    ),
                    ev(
                        1.0,
                        TraceEventKind::Wait {
                            phase: CommPhase::Spmv,
                            exposed: 0.5,
                            hidden: 0.0,
                        },
                    ),
                ],
            }],
        };
        let cp = tr.critical_path();
        assert_eq!(cp.total, 0.75);
        assert_eq!(cp.steps.len(), 2);
        assert_eq!(cp.by_rank, vec![(0, 0.75)]);
    }

    #[test]
    fn cross_edge_does_not_double_count_flight() {
        // Rank 0 sends (dt 1.0); rank 1 stalls 0.9 waiting for it. The
        // chain crosses at the send: total is 1.0, not 1.9.
        let tr = ClusterTrace {
            nodes: vec![
                NodeTrace {
                    rank: 0,
                    events: vec![ev(0.0, send(1, 0, 1.0))],
                },
                NodeTrace {
                    rank: 1,
                    events: vec![ev(0.1, recv(0, 0, 0.9))],
                },
            ],
        };
        let cp = tr.critical_path();
        assert_eq!(cp.total, 1.0);
        assert_eq!(cp.steps.len(), 1);
        assert_eq!(cp.steps[0].kind, "send");
        assert_eq!(cp.by_rank, vec![(0, 1.0)]);
    }

    #[test]
    fn critical_path_attributes_scopes() {
        let tr = ClusterTrace {
            nodes: vec![NodeTrace {
                rank: 0,
                events: vec![
                    ev(
                        0.0,
                        TraceEventKind::Open {
                            name: "iteration",
                            arg: 3,
                        },
                    ),
                    ev(
                        0.0,
                        TraceEventKind::Wait {
                            phase: CommPhase::Reduction,
                            exposed: 2.0,
                            hidden: 0.0,
                        },
                    ),
                    ev(2.0, TraceEventKind::Close),
                ],
            }],
        };
        let cp = tr.critical_path();
        assert_eq!(cp.total, 2.0);
        assert_eq!(cp.by_scope, vec![("iteration 3".to_string(), 2.0)]);
        assert_eq!(cp.by_phase, vec![(CommPhase::Reduction, 2.0)]);
    }

    #[test]
    fn chrome_export_is_schema_valid() {
        let tr = ClusterTrace {
            nodes: vec![
                NodeTrace {
                    rank: 0,
                    events: vec![
                        ev(
                            0.0,
                            TraceEventKind::Open {
                                name: "iteration",
                                arg: 0,
                            },
                        ),
                        ev(0.0, send(1, 0, 0.5)),
                        ev(
                            0.5,
                            TraceEventKind::Instant {
                                name: "failure",
                                arg: 1,
                            },
                        ),
                        ev(1.0, TraceEventKind::Close),
                    ],
                },
                NodeTrace {
                    rank: 1,
                    events: vec![
                        ev(0.0, recv(0, 0, 0.5)),
                        ev(
                            0.5,
                            TraceEventKind::Wait {
                                phase: CommPhase::Reduction,
                                exposed: 0.25,
                                hidden: 0.25,
                            },
                        ),
                    ],
                },
            ],
        };
        let json = tr.chrome_trace_json();
        let n = validate_chrome_trace(&json).expect("schema-valid");
        // 2 process_name + 3 thread lanes (rank 0: control+spmv; rank 1:
        // control+spmv+reduction... rank 1 control lane is still emitted)
        // plus 5 payload events.
        assert!(n >= 7, "{n} events in {json}");
    }

    #[test]
    fn chrome_export_closes_dangling_spans() {
        let tr = ClusterTrace {
            nodes: vec![NodeTrace {
                rank: 0,
                events: vec![ev(
                    0.25,
                    TraceEventKind::Open {
                        name: "iteration",
                        arg: 1,
                    },
                )],
            }],
        };
        validate_chrome_trace(&tr.chrome_trace_json()).expect("dangling span closed at export");
    }

    #[test]
    fn json_validator_rejects_garbage() {
        assert!(validate_chrome_trace("").is_err());
        assert!(validate_chrome_trace("{").is_err());
        assert!(validate_chrome_trace("[]").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":{}}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[{\"ph\":\"Q\"}]}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[]} x").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[]}").is_ok());
    }

    #[test]
    fn seq_counters_pair_per_peer_and_tag() {
        let mut st = TraceState::new(0);
        assert_eq!(st.next_send_seq(1, Tag::user(1)), 0);
        assert_eq!(st.next_send_seq(1, Tag::user(1)), 1);
        assert_eq!(st.next_send_seq(2, Tag::user(1)), 0);
        assert_eq!(st.next_send_seq(1, Tag::user(2)), 0);
        assert_eq!(st.next_recv_seq(1, Tag::user(1)), 0);
        assert_eq!(st.next_recv_seq(1, Tag::user(1)), 1);
    }
}
