//! Sub-communicators.
//!
//! During recovery from `ψ` simultaneous failures, the `ψ` replacement nodes
//! cooperate to solve the linear system `A_{If,If} x_If = w` (paper Sec. 4.1:
//! "additional communication between the ψ replacement nodes is necessary").
//! A [`Group`] gives them a private collective context, like an MPI
//! sub-communicator obtained from `MPI_Comm_split`.
//!
//! Group all-reduces use the same recursive-doubling algorithm as the world
//! communicator (see [`crate::comm`]), over group indices instead of global
//! ranks — recovery's inner solves get the ⌈log₂ψ⌉-round cost too.

#[cfg(feature = "audit")]
use crate::audit;
use crate::comm::{
    alltoallv_generic, rd_allreduce, split_by_counts, BlockingPort, NodeCtx, ReduceOp,
};
use crate::payload::Payload;
use crate::request::{AllreduceRequest, EnginePort};
use crate::stats::CommPhase;
use crate::tag::{op, Tag};

/// A sub-communicator over a subset of cluster ranks.
///
/// All members must create the group with the same member set at the same
/// SPMD point, and must issue group collectives in the same order.
pub struct Group {
    members: Vec<usize>,
    my_index: usize,
    gid: u32,
    seq: u32,
}

impl Group {
    pub(crate) fn create(ctx: &mut NodeCtx, ranks: &[usize]) -> Group {
        let mut members = ranks.to_vec();
        members.sort_unstable();
        members.dedup();
        let my_index = members
            .iter()
            .position(|&r| r == ctx.rank())
            .expect("creating a group that does not contain this rank");
        // All members derive the same id from the member set and a local
        // per-set creation counter (consistent because creations are SPMD).
        let counter = ctx.group_creation_counter(&members);
        let gid = fnv1a(&members) ^ counter.wrapping_mul(0x9E37_79B9);
        Group {
            members,
            my_index,
            gid,
            seq: 0,
        }
    }

    /// Number of members.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// This node's index within the group (`0..size`).
    pub fn index(&self) -> usize {
        self.my_index
    }

    /// Global ranks of the members, ascending.
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    fn next_seq(&mut self) -> u32 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    /// Build the audit record for a group collective: scoped by `gid` so the
    /// checker compares schedules member-against-member, never across groups.
    #[cfg(feature = "audit")]
    fn coll_event(
        &self,
        seq: u32,
        kind: u8,
        rop: Option<ReduceOp>,
        len: Option<usize>,
    ) -> audit::CollEvent {
        audit::CollEvent {
            scope: Some(self.gid),
            seq: seq as u64,
            kind,
            rop,
            len,
            members_hash: fnv1a(&self.members) as u64,
            n_members: self.size(),
        }
    }

    /// Group barrier (zero-length recursive-doubling exchange).
    pub fn barrier(&mut self, ctx: &mut NodeCtx) {
        let seq = self.next_seq();
        let tag = Tag::group(self.gid, op::BARRIER, seq);
        #[cfg(feature = "audit")]
        ctx.audit_coll(self.coll_event(seq, op::BARRIER, None, Some(0)));
        ctx.trace_open("group_barrier", seq as u64);
        let mut port = BlockingPort {
            ctx,
            phase: CommPhase::Recovery,
        };
        rd_allreduce(
            &mut port,
            self.my_index,
            self.members.len(),
            Some(&self.members),
            tag,
            ReduceOp::Sum,
            Vec::new(),
        );
        ctx.trace_close();
    }

    /// Group all-reduce of a scalar sum.
    pub fn allreduce_sum(&mut self, ctx: &mut NodeCtx, x: f64) -> f64 {
        self.allreduce_vec(ctx, ReduceOp::Sum, vec![x])[0]
    }

    /// Group all-reduce max of a scalar.
    pub fn allreduce_max(&mut self, ctx: &mut NodeCtx, x: f64) -> f64 {
        self.allreduce_vec(ctx, ReduceOp::Max, vec![x])[0]
    }

    /// Group element-wise all-reduce (recursive doubling over group
    /// indices; bitwise identical on every member), charged to
    /// [`CommPhase::Recovery`] — the historical default, since groups were
    /// born for the replacement nodes' cooperative reconstruction.
    pub fn allreduce_vec(&mut self, ctx: &mut NodeCtx, opr: ReduceOp, x: Vec<f64>) -> Vec<f64> {
        self.allreduce_vec_phase(ctx, opr, x, CommPhase::Recovery)
    }

    /// Group element-wise all-reduce with the traffic charged to `phase`.
    /// A shrunken cluster runs its *solver* reductions through a group, so
    /// those must book under [`CommPhase::Reduction`], not `Recovery`.
    pub fn allreduce_vec_phase(
        &mut self,
        ctx: &mut NodeCtx,
        opr: ReduceOp,
        x: Vec<f64>,
        phase: CommPhase,
    ) -> Vec<f64> {
        let seq = self.next_seq();
        let tag = Tag::group(self.gid, op::ALLREDUCE, seq);
        #[cfg(feature = "audit")]
        ctx.audit_coll(self.coll_event(seq, op::ALLREDUCE, Some(opr), Some(x.len())));
        ctx.trace_open("group_allreduce", seq as u64);
        let mut port = BlockingPort { ctx, phase };
        let (acc, rounds) = rd_allreduce(
            &mut port,
            self.my_index,
            self.members.len(),
            Some(&self.members),
            tag,
            opr,
            x,
        );
        ctx.trace_close();
        ctx.stats_mut().record_allreduce(rounds);
        acc
    }

    /// Non-blocking group element-wise all-reduce: the same detached-engine
    /// semantics as [`NodeCtx::iallreduce_vec`], over the group's members.
    /// The result is bitwise identical to [`Group::allreduce_vec_phase`]
    /// (the identical recursive-doubling schedule runs, only the time
    /// accounting differs), so a solver that continues on a shrunken
    /// communicator keeps both its overlap *and* its determinism.
    pub fn iallreduce_vec_phase(
        &mut self,
        ctx: &mut NodeCtx,
        opr: ReduceOp,
        x: Vec<f64>,
        phase: CommPhase,
    ) -> AllreduceRequest {
        let seq = self.next_seq();
        let tag = Tag::group(self.gid, op::ALLREDUCE, seq);
        #[cfg(feature = "audit")]
        ctx.audit_coll(self.coll_event(seq, op::ALLREDUCE, Some(opr), Some(x.len())));
        ctx.trace_open("group_iallreduce", seq as u64);
        let start = ctx.clock().now();
        let mut port = EnginePort::new(ctx, start, phase);
        let (acc, rounds) = rd_allreduce(
            &mut port,
            self.my_index,
            self.members.len(),
            Some(&self.members),
            tag,
            opr,
            x,
        );
        let done_at = port.now();
        ctx.trace_close();
        ctx.stats_mut().record_allreduce(rounds);
        AllreduceRequest::new(acc, start, done_at, phase)
    }

    /// Personalized all-to-all of pair lists among members;
    /// `sends[i]` goes to group index `i`.
    pub fn alltoallv_pairs(
        &mut self,
        ctx: &mut NodeCtx,
        sends: Vec<Vec<(u64, f64)>>,
        phase: CommPhase,
    ) -> Vec<Vec<(u64, f64)>> {
        assert_eq!(sends.len(), self.size());
        let seq = self.next_seq();
        let tag = Tag::group(self.gid, op::ALLTOALL, seq);
        #[cfg(feature = "audit")]
        ctx.audit_coll(self.coll_event(seq, op::ALLTOALL, None, None));
        ctx.trace_open("group_alltoall", seq as u64);
        let out = alltoallv_generic(ctx, self.my_index, Some(&self.members), tag, phase, sends);
        ctx.trace_close();
        out
    }

    /// Personalized all-to-all of `u64` index lists among members;
    /// `sends[i]` goes to group index `i`. Used to (re)build scatter plans
    /// over a shrunken communicator.
    pub fn alltoallv_u64(
        &mut self,
        ctx: &mut NodeCtx,
        sends: Vec<Vec<u64>>,
        phase: CommPhase,
    ) -> Vec<Vec<u64>> {
        assert_eq!(sends.len(), self.size());
        let seq = self.next_seq();
        let tag = Tag::group(self.gid, op::ALLTOALL, seq);
        #[cfg(feature = "audit")]
        ctx.audit_coll(self.coll_event(seq, op::ALLTOALL, None, None));
        ctx.trace_open("group_alltoall", seq as u64);
        let out = alltoallv_generic(ctx, self.my_index, Some(&self.members), tag, phase, sends);
        ctx.trace_close();
        out
    }

    /// All-gather variable-length `f64` buffers within the group.
    pub fn allgatherv_f64(&mut self, ctx: &mut NodeCtx, x: Vec<f64>) -> Vec<Vec<f64>> {
        let seq = self.next_seq();
        let tag = Tag::group(self.gid, op::GATHER, seq);
        #[cfg(feature = "audit")]
        ctx.audit_coll(self.coll_event(seq, op::GATHER, None, None));
        ctx.trace_open("group_gather", seq as u64);
        // Gather on group index 0.
        let gathered: Option<Vec<Vec<f64>>> = if self.my_index == 0 {
            let mut own = Some(x);
            let mut out = Vec::with_capacity(self.size());
            for i in 0..self.size() {
                if i == 0 {
                    out.push(own.take().expect("own slot filled once"));
                } else {
                    out.push(
                        ctx.recv_tag(self.members[i], tag, CommPhase::Recovery)
                            .payload
                            .into_f64s(),
                    );
                }
            }
            Some(out)
        } else {
            ctx.send_tag(self.members[0], tag, Payload::f64s(x), CommPhase::Recovery);
            None
        };
        // Broadcast counts, then data.
        let seq_counts = self.next_seq();
        let counts = self.tree_bcast(
            ctx,
            match &gathered {
                Some(vs) => Payload::u64s(vs.iter().map(|v| v.len() as u64).collect()),
                None => Payload::Empty,
            },
            seq_counts,
        );
        let seq_flat = self.next_seq();
        let flat = self.tree_bcast(
            ctx,
            match gathered {
                Some(vs) => Payload::f64s(vs.into_iter().flatten().collect()),
                None => Payload::Empty,
            },
            seq_flat,
        );
        ctx.trace_close();
        split_by_counts(flat.into_f64s(), &counts.into_u64s())
    }

    // Binomial broadcast tree over group indices (root = index 0). The
    // per-child `data.clone()` is an `Arc` bump, not a buffer copy.

    fn tree_bcast(&self, ctx: &mut NodeCtx, payload: Payload, seq: u32) -> Payload {
        #[cfg(feature = "audit")]
        ctx.audit_coll(self.coll_event(seq, op::BCAST, None, None));
        let n = self.size();
        if n == 1 {
            return payload;
        }
        let tag = Tag::group(self.gid, op::BCAST, seq);
        ctx.trace_open("group_bcast", seq as u64);
        let v = self.my_index;
        let mut top = 1usize;
        while top << 1 < n {
            top <<= 1;
        }
        let data = if v == 0 {
            payload
        } else {
            let parent = self.members[v & (v - 1)];
            ctx.recv_tag(parent, tag, CommPhase::Recovery).payload
        };
        let lowbit = if v == 0 {
            top << 1
        } else {
            v & v.wrapping_neg()
        };
        let mut mask = top;
        while mask > 0 {
            if mask < lowbit {
                let child_v = v | mask;
                if child_v < n {
                    ctx.send_tag(
                        self.members[child_v],
                        tag,
                        data.clone(),
                        CommPhase::Recovery,
                    );
                }
            }
            mask >>= 1;
        }
        ctx.trace_close();
        data
    }
}

fn fnv1a(members: &[usize]) -> u32 {
    let mut h: u32 = 0x811C_9DC5;
    for &m in members {
        for b in (m as u64).to_le_bytes() {
            h ^= b as u32;
            h = h.wrapping_mul(0x0100_0193);
        }
    }
    h
}
