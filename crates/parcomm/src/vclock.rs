//! Virtual BSP clock: the latency–bandwidth cost model of the paper.
//!
//! Sec. 4.2 of the paper analyses communication overhead in a model where a
//! message of `s` vector elements from node `i` to node `k` costs
//! `λ_ik + s·µ` and nodes send/receive one element at a time. We implement
//! exactly this model, plus a per-flop cost `γ` so compute/communication
//! ratios are meaningful:
//!
//! * a local computation of `f` flops advances the node's clock by `f·γ`;
//! * a send stamps the message with `departure + λ + s·µ`;
//! * a receive advances the receiver's clock to
//!   `max(own clock, arrival stamp)` — waiting costs virtual time;
//! * collectives synchronize clocks through their constituent messages.
//!
//! Wall-clock time on an oversubscribed host is meaningless for a 128-node
//! experiment; the virtual clock reproduces the *shape* of the paper's
//! runtime results (who wins, by what factor, where crossovers fall) because
//! those shapes are determined by message counts and sizes.

/// Cost-model parameters. Defaults approximate a commodity cluster
/// (1 µs latency, 10 GB/s ≅ 0.8 ns per f64, ~10 Gflop/s effective).
/// Only *ratios* matter for the reproduced tables.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Per-message latency λ (seconds).
    pub lambda: f64,
    /// Per-element transfer cost µ (seconds per f64).
    pub mu: f64,
    /// Per-flop compute cost γ (seconds per floating-point operation).
    pub gamma: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            lambda: 1.0e-6,
            mu: 0.8e-9,
            gamma: 1.0e-10,
        }
    }
}

impl CostModel {
    /// Cost of one message with `elems` vector elements.
    pub fn msg_cost(&self, elems: usize) -> f64 {
        self.lambda + elems as f64 * self.mu
    }

    /// Upper bound `φ·(λ + ⌈n/N⌉·µ)` from the paper's Sec. 4.2 on the
    /// per-iteration redundancy-communication overhead.
    pub fn redundancy_overhead_upper_bound(&self, phi: usize, n: usize, nodes: usize) -> f64 {
        phi as f64 * (self.lambda + (n as f64 / nodes as f64).ceil() * self.mu)
    }
}

/// A node's virtual clock.
#[derive(Clone, Debug)]
pub struct VClock {
    now: f64,
    model: CostModel,
}

impl VClock {
    /// A clock at time zero under `model`.
    pub fn new(model: CostModel) -> Self {
        VClock { now: 0.0, model }
    }

    /// Current virtual time (seconds).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// The active cost model.
    pub fn model(&self) -> CostModel {
        self.model
    }

    /// Account for `flops` floating-point operations of local compute.
    pub fn advance_flops(&mut self, flops: usize) {
        self.now += flops as f64 * self.model.gamma;
    }

    /// Account for an arbitrary local cost (e.g. memory traffic dominated
    /// phases charged by element count).
    pub fn advance(&mut self, seconds: f64) {
        debug_assert!(seconds >= 0.0);
        self.now += seconds;
    }

    /// Stamp an outgoing message: returns its arrival time at the receiver
    /// and advances the sender by the send overhead (the sender is busy for
    /// the full transfer in the one-element-at-a-time model of the paper).
    pub fn stamp_send(&mut self, elems: usize) -> f64 {
        let cost = self.model.msg_cost(elems);
        self.now += cost;
        self.now
    }

    /// Account for receiving a message with the given arrival stamp:
    /// the receiver cannot proceed before the message has arrived. Returns
    /// the stall — how long the clock jumped forward waiting (0 if the
    /// message had already arrived).
    pub fn absorb_arrival(&mut self, arrival_vtime: f64) -> f64 {
        if arrival_vtime > self.now {
            let stall = arrival_vtime - self.now;
            self.now = arrival_vtime;
            stall
        } else {
            0.0
        }
    }

    /// Jump forward to `t` if `t` is later (used by barriers/reductions).
    pub fn sync_to(&mut self, t: f64) {
        if t > self.now {
            self.now = t;
        }
    }

    /// Reset to zero (between timed experiment sections).
    pub fn reset(&mut self) {
        self.now = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_is_sane() {
        let m = CostModel::default();
        assert!(m.lambda > 0.0 && m.mu > 0.0 && m.gamma > 0.0);
        // Latency dominates tiny messages; bandwidth dominates huge ones.
        assert!(m.msg_cost(1) < 2.0 * m.lambda);
        assert!(m.msg_cost(10_000_000) > 100.0 * m.lambda);
    }

    #[test]
    fn send_advances_sender_and_stamps_arrival() {
        let mut c = VClock::new(CostModel {
            lambda: 1.0,
            mu: 0.5,
            gamma: 0.0,
        });
        let arrival = c.stamp_send(4); // 1 + 4*0.5 = 3
        assert_eq!(arrival, 3.0);
        assert_eq!(c.now(), 3.0);
    }

    #[test]
    fn receive_waits_for_arrival() {
        let mut c = VClock::new(CostModel::default());
        assert_eq!(c.absorb_arrival(5.0), 5.0);
        assert_eq!(c.now(), 5.0);
        assert_eq!(c.absorb_arrival(2.0), 0.0); // already past: no regression
        assert_eq!(c.now(), 5.0);
    }

    #[test]
    fn flops_accumulate() {
        let mut c = VClock::new(CostModel {
            lambda: 0.0,
            mu: 0.0,
            gamma: 2.0,
        });
        c.advance_flops(3);
        assert_eq!(c.now(), 6.0);
    }

    #[test]
    fn upper_bound_matches_paper_formula() {
        let m = CostModel {
            lambda: 10.0,
            mu: 1.0,
            gamma: 0.0,
        };
        // φ(λ + ⌈n/N⌉µ) with n=100, N=8 → ⌈12.5⌉=13 → 3*(10+13)=69
        assert_eq!(m.redundancy_overhead_upper_bound(3, 100, 8), 69.0);
    }
}
