//! ULFM-like failure injection, detection, and notification.
//!
//! The MPI extension *User Level Failure Mitigation* (paper Sec. 1.1.1)
//! provides: detection of node failures, consistent notification of the
//! surviving nodes about *which* nodes failed, and a mechanism for providing
//! replacement nodes. We reproduce those semantics with a shared, read-only
//! [`FailureScript`] consulted at well-defined algorithm boundaries:
//!
//! * because the solver is SPMD, every node reaches the same boundary with
//!   the same identifier, so all nodes agree on the announced failures
//!   without an explicit agreement protocol (this stands in for
//!   ULFM's `MPI_Comm_agree`);
//! * the *failed* node itself learns of its failure at the boundary,
//!   poisons its dynamic state with NaN ([`poison`]) and continues in the
//!   **replacement node** role — exactly the simulation methodology of the
//!   paper (Sec. 6), which keeps ranks alive and re-purposes them;
//! * failures scheduled *inside* a recovery ([`FailAt::RecoverySubstep`])
//!   model **overlapping failures**: the reconstruction is aborted and
//!   restarted with the enlarged failed set (paper Sec. 4.1).
//!
//! ## Node lifecycle
//!
//! A node's life is a composition of two state machines. The *scheduler*
//! level ([`crate::sched`]) knows only execution states — a node is
//! **Runnable** (parked, dispatchable), **Running** (holds the baton),
//! **Blocked** (parked in a receive with no matching message), or **Done**
//! (its program returned). The *solver* level layers failure roles on top,
//! without ever leaving the scheduler's view:
//!
//! ```text
//!   Healthy ──failure announced at a boundary──▶ Failed (state poisoned)
//!      ▲                                            │
//!      │                      ┌─────────────────────┤
//!      │              spare granted           no spare left
//!      │                      │                     │
//!      └── Replacement ◀──────┘                     ▼
//!          (same rank,                       Retired (leaves the
//!           reconstructs via ESR)            solve; its subdomain
//!                                            is adopted by survivors)
//! ```
//!
//! A **Failed** node is not torn down: it keeps its rank and scheduler
//! slot, and — having poisoned its dynamic data — either re-enters the
//! solve as the **Replacement** node (reconstructing its subdomain from
//! redundant copies) or **Retires**, finishing its program early so its
//! scheduler state goes Done while the survivors adopt its rows. There is
//! no per-role thread bookkeeping anywhere: roles are pure solver-level
//! facts, derived deterministically from the script by every node.

use std::sync::Arc;

/// The algorithm boundary at which a failure becomes visible.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FailAt {
    /// Detected at the post-SpMV boundary of solver iteration `j`
    /// (0-based). At this point redundant copies of `p(j)` and `p(j-1)`
    /// exist, which is what the ESR reconstruction requires.
    Iteration(u64),
    /// Detected during the recovery triggered at iteration
    /// `after_iteration`, before recovery substep `substep` completes —
    /// an *overlapping* failure.
    RecoverySubstep {
        /// The iteration whose boundary started the interrupted recovery.
        after_iteration: u64,
        /// The recovery substep about to begin when the failure hits.
        substep: u32,
    },
}

/// One failure event: the boundary and the ranks that fail there.
#[derive(Clone, Debug)]
pub struct FailureEvent {
    /// The boundary at which the failure is detected.
    pub when: FailAt,
    /// The ranks that fail there (distinct).
    pub ranks: Vec<usize>,
}

/// A deterministic schedule of node failures for one solver run.
#[derive(Clone, Debug, Default)]
pub struct FailureScript {
    events: Vec<FailureEvent>,
    /// Cluster size the script was validated against at construction
    /// (builders that know `nodes` set this; [`FailureScript::new`] cannot).
    validated_nodes: Option<usize>,
}

impl FailureScript {
    /// A failure-free run.
    pub fn none() -> Self {
        Self::default()
    }

    /// Script with the given events. Rank bounds cannot be checked here
    /// (the cluster size is unknown); prefer the size-aware builders
    /// [`FailureScript::simultaneous`] / [`FailureScript::at_iterations`],
    /// which validate everything at construction.
    pub fn new(events: Vec<FailureEvent>) -> Self {
        let s = FailureScript {
            events,
            validated_nodes: None,
        };
        s.validate();
        s
    }

    /// Convenience: `count` simultaneous failures of contiguous ranks
    /// starting at `first_rank`, detected at iteration `iteration`. This is
    /// the paper's experimental setup (Sec. 7.1: failures "placed in
    /// contiguous ranks", starting at rank 0 or rank N/2). Bounds are
    /// checked here, at construction.
    pub fn simultaneous(iteration: u64, first_rank: usize, count: usize, nodes: usize) -> Self {
        // `count >= nodes` would wrap modulo `nodes` into duplicate ranks
        // and die with a misleading "duplicate rank" panic; the real
        // constraint is ψ ≤ N−1 — at least one node must survive to hold
        // the redundant copies the reconstruction reads.
        assert!(
            count < nodes,
            "cannot fail {count} of {nodes} nodes simultaneously: \
             ψ ≤ N−1 must leave at least one survivor"
        );
        assert!(
            first_rank < nodes,
            "first_rank {first_rank} out of bounds for a cluster of {nodes} nodes"
        );
        let ranks = (0..count).map(|i| (first_rank + i) % nodes).collect();
        let mut s = FailureScript::new(vec![FailureEvent {
            when: FailAt::Iteration(iteration),
            ranks,
        }]);
        s.validated_nodes = Some(nodes);
        s
    }

    /// Builder for multi-event scripts: one `(iteration, rank)` pair per
    /// failure, grouped into one [`FailureEvent`] per distinct iteration.
    /// Rank bounds are validated here, once, at construction — not later
    /// inside [`crate::Cluster::run`] — so a typo'd rank fails at the line
    /// that wrote it.
    ///
    /// ```
    /// use parcomm::FailureScript;
    /// // Rank 1 dies at iteration 4, ranks 0 and 5 at iteration 9.
    /// let script = FailureScript::at_iterations(6, &[(4, 1), (9, 0), (9, 5)]);
    /// assert_eq!(script.total_failed_ranks(), 3);
    /// ```
    pub fn at_iterations(nodes: usize, failures: &[(u64, usize)]) -> Self {
        for &(iter, rank) in failures {
            assert!(
                rank < nodes,
                "failure (iteration {iter}, rank {rank}) out of bounds for a \
                 cluster of {nodes} nodes"
            );
        }
        let mut iters: Vec<u64> = failures.iter().map(|&(it, _)| it).collect();
        iters.sort_unstable();
        iters.dedup();
        let events: Vec<FailureEvent> = iters
            .into_iter()
            .map(|it| FailureEvent {
                when: FailAt::Iteration(it),
                ranks: failures
                    .iter()
                    .filter(|&&(eit, _)| eit == it)
                    .map(|&(_, r)| r)
                    .collect(),
            })
            .collect();
        let mut s = FailureScript::new(events);
        s.validated_nodes = Some(nodes);
        s
    }

    /// The cluster size this script was bounds-checked against at
    /// construction, if its builder knew one.
    pub fn validated_nodes(&self) -> Option<usize> {
        self.validated_nodes
    }

    fn validate(&self) {
        for e in &self.events {
            assert!(!e.ranks.is_empty(), "failure event with no ranks");
            let mut sorted = e.ranks.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(
                sorted.len(),
                e.ranks.len(),
                "duplicate rank in failure event"
            );
        }
    }

    /// Validate the script against a concrete cluster size. A script whose
    /// ranks fall outside `0..nodes` is silently inert (no boundary ever
    /// announces them) — which in a resilience experiment means the failure
    /// you believed you injected never happened. The size-aware builders
    /// run this at construction; for [`FailureScript::new`]-built scripts
    /// it runs as a backstop when the oracle is attached to a cluster,
    /// where the size is finally known.
    ///
    /// # Panics
    /// Panics on the first out-of-bounds rank, and when the script was
    /// built for a different cluster size than it is now being run on.
    pub fn validate_for_cluster(&self, nodes: usize) {
        if let Some(built_for) = self.validated_nodes {
            assert!(
                built_for == nodes,
                "failure script was built for a cluster of {built_for} nodes \
                 but is attached to one of {nodes}"
            );
            return; // bounds already checked at construction
        }
        for e in &self.events {
            for &r in &e.ranks {
                assert!(
                    r < nodes,
                    "failure script rank {r} out of bounds for a cluster of {nodes} nodes \
                     (event at {:?}) — the event would be silently inert",
                    e.when
                );
            }
        }
    }

    /// All events in the script.
    pub fn events(&self) -> &[FailureEvent] {
        &self.events
    }

    /// Ranks that fail exactly at `boundary` (consistent on every caller).
    pub fn failures_at(&self, boundary: FailAt) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .events
            .iter()
            .filter(|e| e.when == boundary)
            .flat_map(|e| e.ranks.iter().copied())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Total number of distinct ranks failing anywhere in the script.
    pub fn total_failed_ranks(&self) -> usize {
        let mut all: Vec<usize> = self
            .events
            .iter()
            .flat_map(|e| e.ranks.iter().copied())
            .collect();
        all.sort_unstable();
        all.dedup();
        all.len()
    }

    /// True if no failures are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Shared failure oracle; nodes consult it at boundaries. Read-only after
/// construction, hence trivially consistent across nodes (the ULFM
/// "agreement" comes for free from SPMD determinism).
#[derive(Clone, Debug)]
pub struct FaultOracle {
    script: Arc<FailureScript>,
}

impl FaultOracle {
    /// Wrap a failure script for shared consultation.
    pub fn new(script: FailureScript) -> Self {
        FaultOracle {
            script: Arc::new(script),
        }
    }

    /// Ranks newly failed at this boundary.
    pub fn poll(&self, boundary: FailAt) -> Vec<usize> {
        self.script.failures_at(boundary)
    }

    /// The underlying script.
    pub fn script(&self) -> &FailureScript {
        &self.script
    }
}

/// Poison a buffer that belonged to a failed node. Recovery code must never
/// read these values; NaN propagation makes any violation visible in tests
/// (a reconstructed state containing NaN fails every accuracy assertion).
pub fn poison(buf: &mut [f64]) {
    for x in buf.iter_mut() {
        *x = f64::NAN;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simultaneous_wraps_ranks() {
        let s = FailureScript::simultaneous(10, 6, 4, 8);
        let f = s.failures_at(FailAt::Iteration(10));
        assert_eq!(f, vec![0, 1, 6, 7]);
        assert_eq!(s.total_failed_ranks(), 4);
    }

    #[test]
    fn failures_only_at_matching_boundary() {
        let s = FailureScript::simultaneous(10, 0, 2, 8);
        assert!(s.failures_at(FailAt::Iteration(9)).is_empty());
        assert_eq!(s.failures_at(FailAt::Iteration(10)).len(), 2);
        assert!(s
            .failures_at(FailAt::RecoverySubstep {
                after_iteration: 10,
                substep: 0
            })
            .is_empty());
    }

    #[test]
    fn overlapping_events_are_distinct_boundaries() {
        let s = FailureScript::new(vec![
            FailureEvent {
                when: FailAt::Iteration(5),
                ranks: vec![1],
            },
            FailureEvent {
                when: FailAt::RecoverySubstep {
                    after_iteration: 5,
                    substep: 2,
                },
                ranks: vec![3],
            },
        ]);
        assert_eq!(s.failures_at(FailAt::Iteration(5)), vec![1]);
        assert_eq!(
            s.failures_at(FailAt::RecoverySubstep {
                after_iteration: 5,
                substep: 2
            }),
            vec![3]
        );
        assert_eq!(s.total_failed_ranks(), 2);
    }

    #[test]
    fn oracle_is_consistent_across_clones() {
        let o = FaultOracle::new(FailureScript::simultaneous(3, 2, 2, 16));
        let o2 = o.clone();
        assert_eq!(o.poll(FailAt::Iteration(3)), o2.poll(FailAt::Iteration(3)));
    }

    #[test]
    fn poison_sets_nan() {
        let mut v = vec![1.0, 2.0];
        poison(&mut v);
        assert!(v.iter().all(|x| x.is_nan()));
    }

    #[test]
    #[should_panic(expected = "ψ ≤ N−1 must leave at least one survivor")]
    fn simultaneous_whole_cluster_rejected() {
        // Used to wrap modulo `nodes` and panic with the misleading
        // "duplicate rank in failure event".
        FailureScript::simultaneous(3, 0, 4, 4);
    }

    #[test]
    #[should_panic(expected = "ψ ≤ N−1 must leave at least one survivor")]
    fn simultaneous_more_than_cluster_rejected() {
        FailureScript::simultaneous(3, 2, 9, 8);
    }

    #[test]
    fn at_iterations_groups_by_iteration() {
        let s = FailureScript::at_iterations(8, &[(4, 1), (9, 0), (9, 5)]);
        assert_eq!(s.failures_at(FailAt::Iteration(4)), vec![1]);
        assert_eq!(s.failures_at(FailAt::Iteration(9)), vec![0, 5]);
        assert_eq!(s.total_failed_ranks(), 3);
        assert_eq!(s.validated_nodes(), Some(8));
        // Already validated — the cluster backstop accepts the same size.
        s.validate_for_cluster(8);
    }

    #[test]
    #[should_panic(expected = "out of bounds for a cluster of 4 nodes")]
    fn at_iterations_rejects_bad_rank_at_construction() {
        FailureScript::at_iterations(4, &[(2, 1), (5, 7)]);
    }

    #[test]
    #[should_panic(expected = "duplicate rank")]
    fn at_iterations_rejects_duplicate_rank_in_one_event() {
        FailureScript::at_iterations(4, &[(2, 1), (2, 1)]);
    }

    #[test]
    #[should_panic(expected = "first_rank 9 out of bounds")]
    fn simultaneous_rejects_bad_first_rank_at_construction() {
        FailureScript::simultaneous(3, 9, 1, 8);
    }

    #[test]
    #[should_panic(expected = "built for a cluster of 8 nodes")]
    fn size_mismatch_between_builder_and_cluster_rejected() {
        let s = FailureScript::simultaneous(3, 1, 2, 8);
        s.validate_for_cluster(6);
    }

    #[test]
    #[should_panic(expected = "duplicate rank")]
    fn duplicate_ranks_rejected() {
        FailureScript::new(vec![FailureEvent {
            when: FailAt::Iteration(0),
            ranks: vec![1, 1],
        }]);
    }
}
