//! ULFM-like failure injection, detection, and notification.
//!
//! The MPI extension *User Level Failure Mitigation* (paper Sec. 1.1.1)
//! provides: detection of node failures, consistent notification of the
//! surviving nodes about *which* nodes failed, and a mechanism for providing
//! replacement nodes. We reproduce those semantics with a shared, read-only
//! [`FailureScript`] consulted at well-defined algorithm boundaries:
//!
//! * because the solver is SPMD, every node reaches the same boundary with
//!   the same identifier, so all nodes agree on the announced failures
//!   without an explicit agreement protocol (this stands in for
//!   ULFM's `MPI_Comm_agree`);
//! * the *failed* node itself learns of its failure at the boundary, poisons
//!   its dynamic state with NaN ([`poison`]) and continues in the
//!   **replacement node** role — exactly the simulation methodology of the
//!   paper (Sec. 6), which keeps ranks alive and re-purposes them;
//! * failures scheduled *inside* a recovery ([`FailAt::RecoverySubstep`])
//!   model **overlapping failures**: the reconstruction is aborted and
//!   restarted with the enlarged failed set (paper Sec. 4.1).

use std::sync::Arc;

/// The algorithm boundary at which a failure becomes visible.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FailAt {
    /// Detected at the post-SpMV boundary of solver iteration `j`
    /// (0-based). At this point redundant copies of `p(j)` and `p(j-1)`
    /// exist, which is what the ESR reconstruction requires.
    Iteration(u64),
    /// Detected during the recovery triggered at iteration
    /// `after_iteration`, before recovery substep `substep` completes —
    /// an *overlapping* failure.
    RecoverySubstep {
        /// The iteration whose boundary started the interrupted recovery.
        after_iteration: u64,
        /// The recovery substep about to begin when the failure hits.
        substep: u32,
    },
}

/// One failure event: the boundary and the ranks that fail there.
#[derive(Clone, Debug)]
pub struct FailureEvent {
    /// The boundary at which the failure is detected.
    pub when: FailAt,
    /// The ranks that fail there (distinct).
    pub ranks: Vec<usize>,
}

/// A deterministic schedule of node failures for one solver run.
#[derive(Clone, Debug, Default)]
pub struct FailureScript {
    events: Vec<FailureEvent>,
}

impl FailureScript {
    /// A failure-free run.
    pub fn none() -> Self {
        Self::default()
    }

    /// Script with the given events.
    pub fn new(events: Vec<FailureEvent>) -> Self {
        let s = FailureScript { events };
        s.validate();
        s
    }

    /// Convenience: `count` simultaneous failures of contiguous ranks
    /// starting at `first_rank`, detected at iteration `iteration`. This is
    /// the paper's experimental setup (Sec. 7.1: failures "placed in
    /// contiguous ranks", starting at rank 0 or rank N/2).
    pub fn simultaneous(iteration: u64, first_rank: usize, count: usize, nodes: usize) -> Self {
        // `count >= nodes` would wrap modulo `nodes` into duplicate ranks
        // and die with a misleading "duplicate rank" panic; the real
        // constraint is ψ ≤ N−1 — at least one node must survive to hold
        // the redundant copies the reconstruction reads.
        assert!(
            count < nodes,
            "cannot fail {count} of {nodes} nodes simultaneously: \
             ψ ≤ N−1 must leave at least one survivor"
        );
        let ranks = (0..count).map(|i| (first_rank + i) % nodes).collect();
        FailureScript::new(vec![FailureEvent {
            when: FailAt::Iteration(iteration),
            ranks,
        }])
    }

    fn validate(&self) {
        for e in &self.events {
            assert!(!e.ranks.is_empty(), "failure event with no ranks");
            let mut sorted = e.ranks.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(
                sorted.len(),
                e.ranks.len(),
                "duplicate rank in failure event"
            );
        }
    }

    /// Validate the script against a concrete cluster size. A script whose
    /// ranks fall outside `0..nodes` is silently inert (no boundary ever
    /// announces them) — which in a resilience experiment means the failure
    /// you believed you injected never happened. Checked when the oracle is
    /// attached to a cluster, where the size is finally known.
    ///
    /// # Panics
    /// Panics on the first out-of-bounds rank.
    pub fn validate_for_cluster(&self, nodes: usize) {
        for e in &self.events {
            for &r in &e.ranks {
                assert!(
                    r < nodes,
                    "failure script rank {r} out of bounds for a cluster of {nodes} nodes \
                     (event at {:?}) — the event would be silently inert",
                    e.when
                );
            }
        }
    }

    /// All events in the script.
    pub fn events(&self) -> &[FailureEvent] {
        &self.events
    }

    /// Ranks that fail exactly at `boundary` (consistent on every caller).
    pub fn failures_at(&self, boundary: FailAt) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .events
            .iter()
            .filter(|e| e.when == boundary)
            .flat_map(|e| e.ranks.iter().copied())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Total number of distinct ranks failing anywhere in the script.
    pub fn total_failed_ranks(&self) -> usize {
        let mut all: Vec<usize> = self
            .events
            .iter()
            .flat_map(|e| e.ranks.iter().copied())
            .collect();
        all.sort_unstable();
        all.dedup();
        all.len()
    }

    /// True if no failures are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Shared failure oracle; nodes consult it at boundaries. Read-only after
/// construction, hence trivially consistent across nodes (the ULFM
/// "agreement" comes for free from SPMD determinism).
#[derive(Clone, Debug)]
pub struct FaultOracle {
    script: Arc<FailureScript>,
}

impl FaultOracle {
    /// Wrap a failure script for shared consultation.
    pub fn new(script: FailureScript) -> Self {
        FaultOracle {
            script: Arc::new(script),
        }
    }

    /// Ranks newly failed at this boundary.
    pub fn poll(&self, boundary: FailAt) -> Vec<usize> {
        self.script.failures_at(boundary)
    }

    /// The underlying script.
    pub fn script(&self) -> &FailureScript {
        &self.script
    }
}

/// Poison a buffer that belonged to a failed node. Recovery code must never
/// read these values; NaN propagation makes any violation visible in tests
/// (a reconstructed state containing NaN fails every accuracy assertion).
pub fn poison(buf: &mut [f64]) {
    for x in buf.iter_mut() {
        *x = f64::NAN;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simultaneous_wraps_ranks() {
        let s = FailureScript::simultaneous(10, 6, 4, 8);
        let f = s.failures_at(FailAt::Iteration(10));
        assert_eq!(f, vec![0, 1, 6, 7]);
        assert_eq!(s.total_failed_ranks(), 4);
    }

    #[test]
    fn failures_only_at_matching_boundary() {
        let s = FailureScript::simultaneous(10, 0, 2, 8);
        assert!(s.failures_at(FailAt::Iteration(9)).is_empty());
        assert_eq!(s.failures_at(FailAt::Iteration(10)).len(), 2);
        assert!(s
            .failures_at(FailAt::RecoverySubstep {
                after_iteration: 10,
                substep: 0
            })
            .is_empty());
    }

    #[test]
    fn overlapping_events_are_distinct_boundaries() {
        let s = FailureScript::new(vec![
            FailureEvent {
                when: FailAt::Iteration(5),
                ranks: vec![1],
            },
            FailureEvent {
                when: FailAt::RecoverySubstep {
                    after_iteration: 5,
                    substep: 2,
                },
                ranks: vec![3],
            },
        ]);
        assert_eq!(s.failures_at(FailAt::Iteration(5)), vec![1]);
        assert_eq!(
            s.failures_at(FailAt::RecoverySubstep {
                after_iteration: 5,
                substep: 2
            }),
            vec![3]
        );
        assert_eq!(s.total_failed_ranks(), 2);
    }

    #[test]
    fn oracle_is_consistent_across_clones() {
        let o = FaultOracle::new(FailureScript::simultaneous(3, 2, 2, 16));
        let o2 = o.clone();
        assert_eq!(o.poll(FailAt::Iteration(3)), o2.poll(FailAt::Iteration(3)));
    }

    #[test]
    fn poison_sets_nan() {
        let mut v = vec![1.0, 2.0];
        poison(&mut v);
        assert!(v.iter().all(|x| x.is_nan()));
    }

    #[test]
    #[should_panic(expected = "ψ ≤ N−1 must leave at least one survivor")]
    fn simultaneous_whole_cluster_rejected() {
        // Used to wrap modulo `nodes` and panic with the misleading
        // "duplicate rank in failure event".
        FailureScript::simultaneous(3, 0, 4, 4);
    }

    #[test]
    #[should_panic(expected = "ψ ≤ N−1 must leave at least one survivor")]
    fn simultaneous_more_than_cluster_rejected() {
        FailureScript::simultaneous(3, 2, 9, 8);
    }

    #[test]
    #[should_panic(expected = "duplicate rank")]
    fn duplicate_ranks_rejected() {
        FailureScript::new(vec![FailureEvent {
            when: FailAt::Iteration(0),
            ranks: vec![1, 1],
        }]);
    }
}
