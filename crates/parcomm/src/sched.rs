//! The discrete-event node scheduler: deterministic cooperative execution
//! of the simulated cluster.
//!
//! [`crate::cluster::Cluster::run`] still gives every node its own OS
//! thread (node programs keep their blocking call style and their private
//! stacks), but the threads no longer free-run: exactly **one** node
//! executes at any moment, and the scheduler decides which. A node runs
//! until it *blocks* (a receive with no matching message) or *finishes*;
//! the scheduler then hands the baton to the runnable node with the
//! minimum `(virtual time, rank)` key. Execution order is therefore a
//! pure function of the program — independent of host load, core count,
//! and OS scheduling — and the cluster occupies one core no matter how
//! many nodes it simulates, which is what makes N = 1024 runs routine.
//!
//! ## Invariants
//!
//! * **Single baton.** At most one node is in [`NodeState::Running`];
//!   every other thread is parked on its per-rank condvar. All scheduler
//!   state sits behind one mutex, and the running node is the only
//!   thread that transitions it (until the baton is handed over).
//! * **Park implies no match.** A node parks only after draining its
//!   channel and finding no matching message — and no peer can send
//!   while it drains, because sending requires the baton. A parked
//!   node's wait is therefore genuine, and "no runnable node while
//!   blocked nodes exist" is *exactly* a deadlock: detected the instant
//!   it forms, with the wait-for chain spelled out. No timeouts, no
//!   snapshot heuristics.
//! * **Wake on match only.** A send marks a blocked matching receiver
//!   [`NodeState::Runnable`] (at the virtual time it parked at) but does
//!   not preempt the sender; the receiver runs when dispatch order
//!   reaches it.
//!
//! Dispatching by minimum `(vtime, rank)` mirrors the BSP cost model of
//! [`crate::vclock`]: virtual time advances only through each node's own
//! compute and communication charges, and message arrival stamps are
//! fixed by the sender — the scheduler's choice never feeds back into
//! the clock algebra. Every virtual-time result is bitwise identical to
//! the old free-running thread-per-node runtime, which computed the same
//! clock values in whatever order the host happened to run the threads.

use std::sync::{Condvar, Mutex, MutexGuard};

use crate::tag::Tag;

/// What a blocked node is waiting for (`src: None` ⇒ any source).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct BlockedOn {
    pub src: Option<usize>,
    pub tag: Tag,
}

impl BlockedOn {
    fn matches(&self, src: usize, tag: Tag) -> bool {
        self.src.is_none_or(|s| s == src) && self.tag == tag
    }

    fn describe(&self) -> String {
        match self.src {
            Some(s) => format!("recv(src {}, tag {})", s, self.tag.describe()),
            None => format!("recv_any(tag {})", self.tag.describe()),
        }
    }
}

/// The node lifecycle, as the scheduler sees it. (Failed-and-replaced
/// and retired are *solver-level* roles layered on top — see
/// [`crate::fault`]; a node acting as a replacement or retiring early is
/// still Runnable/Blocked/Done here.)
#[derive(Clone, Debug)]
enum NodeState {
    /// Parked but dispatchable: runs when its `(vtime, rank)` key is the
    /// minimum among runnable nodes.
    Runnable(f64),
    /// Holds the baton (at most one node at a time).
    Running,
    /// Parked in a blocking receive with no matching message delivered.
    Blocked { on: BlockedOn, vtime: f64 },
    /// The node program returned — or panicked (see `abort`).
    Done,
}

struct SchedInner {
    state: Vec<NodeState>,
    /// First rank whose program panicked; set before waking everyone so
    /// woken peers can name the culprit.
    abort: Option<usize>,
    /// Deadlock report, built by the dispatch that proved the stall.
    deadlock: Option<String>,
}

/// The cluster-wide scheduler. One per [`crate::cluster::Cluster`] run,
/// shared by all node threads.
pub(crate) struct Scheduler {
    inner: Mutex<SchedInner>,
    /// One condvar per rank: a single shared condvar would thundering-herd
    /// every baton handoff at N = 1024.
    cvs: Vec<Condvar>,
}

impl Scheduler {
    pub(crate) fn new(n: usize) -> Self {
        Scheduler {
            inner: Mutex::new(SchedInner {
                state: vec![NodeState::Runnable(0.0); n],
                abort: None,
                deadlock: None,
            }),
            cvs: (0..n).map(|_| Condvar::new()).collect(),
        }
    }

    /// Hand out the first baton (all nodes start Runnable at vtime 0.0,
    /// so rank 0 runs first). Called by the harness thread after the node
    /// threads are spawned.
    pub(crate) fn start(&self) {
        let mut g = self.lock();
        self.dispatch_locked(&mut g);
    }

    /// Node-thread entry point: park until dispatched for the first time.
    pub(crate) fn wait_for_baton(&self, rank: usize) {
        let g = self.lock();
        self.wait_until_running(rank, g);
    }

    /// Block `rank` in a receive: record what it waits for, hand the baton
    /// to the next runnable node (or declare deadlock), and park until a
    /// matching send makes this node runnable and dispatch reaches it.
    pub(crate) fn park_recv(&self, rank: usize, on: BlockedOn, vtime: f64) {
        let mut g = self.lock();
        g.state[rank] = NodeState::Blocked { on, vtime };
        self.dispatch_locked(&mut g);
        self.wait_until_running(rank, g);
    }

    /// A message `(src, tag)` was pushed into `dest`'s channel. If `dest`
    /// is blocked on a matching receive it becomes runnable (at the
    /// virtual time it parked at) — the sender keeps the baton.
    pub(crate) fn notify_send(&self, dest: usize, src: usize, tag: Tag) {
        let mut g = self.lock();
        if let NodeState::Blocked { on, vtime } = g.state[dest] {
            if on.matches(src, tag) {
                g.state[dest] = NodeState::Runnable(vtime);
            }
        }
    }

    /// `rank`'s program returned cleanly; hand the baton on.
    pub(crate) fn finish(&self, rank: usize) {
        let mut g = self.lock();
        g.state[rank] = NodeState::Done;
        self.dispatch_locked(&mut g);
    }

    /// `rank`'s program panicked. Record the root cause (first aborter
    /// wins) and wake every parked node; each wakes into a panic naming
    /// the culprit, so the whole cluster tears down immediately.
    pub(crate) fn abort(&self, rank: usize) {
        let mut g = self.lock();
        if g.abort.is_none() {
            g.abort = Some(rank);
        }
        g.state[rank] = NodeState::Done;
        for cv in &self.cvs {
            cv.notify_all();
        }
    }

    fn lock(&self) -> MutexGuard<'_, SchedInner> {
        self.inner.lock().expect("scheduler lock poisoned")
    }

    /// Park on this rank's condvar until dispatched. Panics (inside the
    /// node's `catch_unwind`) when the cluster aborted or deadlocked
    /// while parked.
    fn wait_until_running(&self, rank: usize, mut g: MutexGuard<'_, SchedInner>) {
        loop {
            if matches!(g.state[rank], NodeState::Running) {
                return;
            }
            if let Some(report) = &g.deadlock {
                let report = report.clone();
                drop(g);
                panic!("{report}");
            }
            if let Some(p) = g.abort {
                drop(g);
                panic!("rank {rank}: peer {p} aborted");
            }
            g = self.cvs[rank].wait(g).expect("scheduler lock poisoned");
        }
    }

    /// Hand the baton to the runnable node with the minimum
    /// `(vtime, rank)` key. If none is runnable but blocked nodes remain,
    /// the cluster is deadlocked: publish the report and wake everyone.
    fn dispatch_locked(&self, inner: &mut SchedInner) {
        let mut best: Option<(f64, usize)> = None;
        for (rank, st) in inner.state.iter().enumerate() {
            if let NodeState::Runnable(vt) = st {
                // Ascending rank scan with a strict comparison ⇒ ties on
                // vtime resolve to the lower rank. NaN never appears in a
                // vclock, but total_cmp keeps the order total regardless.
                if best.is_none_or(|(bt, _)| vt.total_cmp(&bt).is_lt()) {
                    best = Some((*vt, rank));
                }
            }
        }
        match best {
            Some((_, rank)) => {
                inner.state[rank] = NodeState::Running;
                self.cvs[rank].notify_one();
            }
            None => {
                let any_blocked = inner
                    .state
                    .iter()
                    .any(|s| matches!(s, NodeState::Blocked { .. }));
                if any_blocked && inner.abort.is_none() && inner.deadlock.is_none() {
                    inner.deadlock = Some(deadlock_report(&inner.state));
                    for cv in &self.cvs {
                        cv.notify_all();
                    }
                }
            }
        }
    }
}

/// Spell out why the cluster can make no progress. Reached only when no
/// node is runnable and at least one is blocked — every live node is
/// blocked, so the wait-for graph has either a cycle, a chain into a
/// terminated rank, or an any-source wait that nobody can satisfy.
fn deadlock_report(state: &[NodeState]) -> String {
    let blocked_on = |r: usize| match &state[r] {
        NodeState::Blocked { on, .. } => Some(*on),
        _ => None,
    };
    let describe = |r: usize| match blocked_on(r) {
        Some(b) => format!("rank {} blocked in {}", r, b.describe()),
        None => format!("rank {r} (running)"),
    };
    let start = state
        .iter()
        .position(|s| matches!(s, NodeState::Blocked { .. }))
        .expect("deadlock report needs a blocked node");
    let mut chain = vec![start];
    loop {
        let cur = *chain.last().expect("chain non-empty");
        let on = blocked_on(cur).expect("chain members are blocked");
        let Some(src) = on.src else {
            // An any-source wait that no live node can satisfy: report
            // the whole (fully blocked) cluster.
            let mut out =
                String::from("[deadlock] every live rank is blocked with no messages in flight: ");
            let mut first = true;
            for r in 0..state.len() {
                if matches!(state[r], NodeState::Done) {
                    continue;
                }
                if !first {
                    out.push_str("; ");
                }
                first = false;
                out.push_str(&describe(r));
            }
            return out;
        };
        if matches!(state[src], NodeState::Done) {
            let mut out = String::from("[deadlock] wait chain ends at a terminated rank: ");
            for (i, &r) in chain.iter().enumerate() {
                if i > 0 {
                    out.push_str(" -> ");
                }
                out.push_str(&describe(r));
            }
            out.push_str(&format!(" -> rank {src} (terminated)"));
            return out;
        }
        if let Some(pos) = chain.iter().position(|&r| r == src) {
            let cycle = &chain[pos..];
            let mut out = String::from("[deadlock] wait-for cycle, no messages in flight: ");
            for (i, &r) in cycle.iter().enumerate() {
                if i > 0 {
                    out.push_str(" -> ");
                }
                out.push_str(&describe(r));
            }
            out.push_str(&format!(" -> rank {}", cycle[0]));
            return out;
        }
        chain.push(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blocked(src: Option<usize>, tag: Tag) -> NodeState {
        NodeState::Blocked {
            on: BlockedOn { src, tag },
            vtime: 0.0,
        }
    }

    #[test]
    fn blocked_on_matching() {
        let b = BlockedOn {
            src: Some(3),
            tag: Tag::user(7),
        };
        assert!(b.matches(3, Tag::user(7)));
        assert!(!b.matches(2, Tag::user(7)));
        assert!(!b.matches(3, Tag::user(8)));
        let any = BlockedOn {
            src: None,
            tag: Tag::user(7),
        };
        assert!(any.matches(5, Tag::user(7)));
        assert!(!any.matches(5, Tag::user(8)));
    }

    #[test]
    fn report_names_cycles() {
        let state = vec![
            blocked(Some(1), Tag::user(1)),
            blocked(Some(0), Tag::user(2)),
        ];
        let r = deadlock_report(&state);
        assert!(r.contains("[deadlock] wait-for cycle"), "{r}");
        assert!(
            r.contains("rank 0 blocked in recv(src 1, tag user(1))"),
            "{r}"
        );
        assert!(
            r.contains("rank 1 blocked in recv(src 0, tag user(2))"),
            "{r}"
        );
        assert!(r.ends_with("-> rank 0"), "{r}");
    }

    #[test]
    fn report_names_terminated_targets() {
        let state = vec![blocked(Some(1), Tag::user(1)), NodeState::Done];
        let r = deadlock_report(&state);
        assert!(r.contains("wait chain ends at a terminated rank"), "{r}");
        assert!(r.ends_with("-> rank 1 (terminated)"), "{r}");
    }

    #[test]
    fn report_names_starved_any_source_waits() {
        let state = vec![blocked(None, Tag::user(4)), NodeState::Done];
        let r = deadlock_report(&state);
        assert!(r.contains("every live rank is blocked"), "{r}");
        assert!(r.contains("recv_any(tag user(4))"), "{r}");
    }
}
