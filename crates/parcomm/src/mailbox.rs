//! Per-node mailboxes with `(source, tag)` matching.
//!
//! Each node owns one unbounded MPSC channel; every other node holds a clone
//! of the sender. Because messages from *different* sources interleave
//! arbitrarily, a receive for a specific `(src, tag)` buffers any
//! non-matching messages in a pending list — the standard MPI unexpected-
//! message queue.
//!
//! With `--features audit`, blocking receives poll the channel on a short
//! interval and consult the cluster-wide [`crate::audit::AuditShared`]
//! blocked-on table: a wait-for cycle (or a wait on a terminated rank) with
//! no messages in flight panics immediately with the cycle spelled out,
//! instead of stalling until the 300 s backstop.

use std::sync::mpsc::{channel as unbounded, Receiver, RecvTimeoutError, Sender};
use std::time::Duration;

use crate::payload::Message;
use crate::tag::Tag;

#[cfg(feature = "audit")]
use crate::audit::{AuditShared, BlockedOn};
#[cfg(feature = "audit")]
use std::sync::Arc;
#[cfg(feature = "audit")]
use std::time::Instant;

/// How long a blocking receive waits before declaring the cluster
/// deadlocked. A backstop only — a panicking peer broadcasts
/// [`Tag::ABORT`] so genuine failures tear the cluster down immediately
/// (and the `audit` feature detects wait-for cycles within milliseconds).
const DEADLOCK_TIMEOUT: Duration = Duration::from_secs(300);

/// The receiving half of a node's mailbox.
pub struct Mailbox {
    rank: usize,
    rx: Receiver<Message>,
    /// Unexpected-message queue: arrived but not yet matched.
    pending: Vec<Message>,
    #[cfg(feature = "audit")]
    audit: Option<Arc<AuditShared>>,
    /// Test double: reintroduces the PR 2 `swap_remove` FIFO defect so the
    /// auditor's non-overtaking check can be proven against it.
    #[cfg(feature = "audit")]
    fifo_bug: bool,
}

/// A handle for delivering messages to some node.
pub type Outbox = Sender<Message>;

/// Clears this rank's blocked-on entry even if the receive panics (abort,
/// deadlock report), so peers never chain through a stale entry.
#[cfg(feature = "audit")]
struct BlockedGuard {
    shared: Arc<AuditShared>,
    rank: usize,
}

#[cfg(feature = "audit")]
impl Drop for BlockedGuard {
    fn drop(&mut self) {
        self.shared.set_blocked(self.rank, None);
    }
}

impl Mailbox {
    /// Create a mailbox for `rank`; returns the mailbox and the sender handle
    /// to distribute to all peers.
    pub fn new(rank: usize) -> (Self, Outbox) {
        let (tx, rx) = unbounded();
        (
            Mailbox {
                rank,
                rx,
                pending: Vec::new(),
                #[cfg(feature = "audit")]
                audit: None,
                #[cfg(feature = "audit")]
                fifo_bug: false,
            },
            tx,
        )
    }

    /// Attach the cluster-wide deadlock-detection state.
    #[cfg(feature = "audit")]
    pub(crate) fn install_audit(&mut self, shared: Arc<AuditShared>) {
        self.audit = Some(shared);
    }

    #[cfg(feature = "audit")]
    pub(crate) fn seed_fifo_bug(&mut self) {
        self.fifo_bug = true;
    }

    /// Bump this rank's consumed-message counter (deadlock detection: a rank
    /// whose channel may hold an unexamined message is never starved). Must
    /// be called for every message pulled off `rx`.
    fn note_consumed(&self) {
        #[cfg(feature = "audit")]
        if let Some(a) = &self.audit {
            a.note_consumed(self.rank);
        }
    }

    /// Remove and return `pending[pos]`, preserving arrival order.
    fn take_pending(&mut self, pos: usize) -> Message {
        #[cfg(feature = "audit")]
        if self.fifo_bug {
            // Test double: the PR 2 defect. `swap_remove` moves the last
            // buffered message into this slot, so a later receive for the
            // same `(src, tag)` matches out of arrival order.
            return self.pending.swap_remove(pos);
        }
        // Order-preserving removal: `swap_remove` would reorder later
        // same-`(src, tag)` matches — an MPI non-overtaking violation.
        self.pending.remove(pos)
    }

    /// Blocking receive matching an exact `(src, tag)`.
    ///
    /// # Panics
    /// Panics after a long timeout — in this simulator an unmatched receive
    /// is always a protocol bug (deadlock), and panicking with context beats
    /// hanging the test suite. With `--features audit` a provable wait-for
    /// cycle panics within milliseconds instead, naming the cycle.
    pub fn recv(&mut self, src: usize, tag: Tag) -> Message {
        self.recv_matching(Some(src), tag)
    }

    /// Blocking receive matching a tag from *any* source. Returns the full
    /// message so the caller learns the source.
    pub fn recv_any(&mut self, tag: Tag) -> Message {
        self.recv_matching(None, tag)
    }

    fn recv_matching(&mut self, src: Option<usize>, tag: Tag) -> Message {
        let matches = |m: &Message| src.is_none_or(|s| m.src == s) && m.tag == tag;
        if let Some(pos) = self.pending.iter().position(matches) {
            return self.take_pending(pos);
        }
        #[cfg(feature = "audit")]
        let _guard = self.audit.as_ref().map(|a| {
            a.set_blocked(self.rank, Some(BlockedOn { src, tag }));
            BlockedGuard {
                shared: a.clone(),
                rank: self.rank,
            }
        });
        #[cfg(feature = "audit")]
        let deadline = Instant::now() + DEADLOCK_TIMEOUT;
        let poll = self.poll_interval();
        loop {
            // A deadlock probe may have parked new arrivals in `pending`.
            #[cfg(feature = "audit")]
            if let Some(pos) = self.pending.iter().position(matches) {
                return self.take_pending(pos);
            }
            match self.rx.recv_timeout(poll) {
                Ok(m) => {
                    self.note_consumed();
                    if m.tag == Tag::ABORT {
                        panic!("rank {}: peer {} aborted", self.rank, m.src);
                    }
                    if matches(&m) {
                        return m;
                    }
                    self.pending.push(m);
                }
                Err(RecvTimeoutError::Timeout) => {
                    #[cfg(feature = "audit")]
                    if self.audit.is_some() {
                        self.deadlock_probe();
                        if Instant::now() < deadline {
                            continue;
                        }
                    }
                    panic!(
                        "rank {}: deadlock waiting for {} with tag {:?} \
                         ({} unexpected messages pending)",
                        self.rank,
                        match src {
                            Some(s) => format!("message from rank {s}"),
                            None => "any-source message".to_string(),
                        },
                        tag,
                        self.pending.len()
                    );
                }
                Err(RecvTimeoutError::Disconnected) => {
                    // Senders live as long as the cluster; losing them all
                    // means every peer is gone.
                    panic!("rank {}: all peers disconnected", self.rank);
                }
            }
        }
    }

    fn poll_interval(&self) -> Duration {
        #[cfg(feature = "audit")]
        if self.audit.is_some() {
            return crate::audit::POLL_INTERVAL;
        }
        DEADLOCK_TIMEOUT
    }

    /// Poll timeout expired: ask the shared table whether the cluster is in
    /// a provable stall involving this rank, and panic with the report if
    /// so. Messages that raced in while the probe deliberated defuse it.
    #[cfg(feature = "audit")]
    fn deadlock_probe(&mut self) {
        let Some(shared) = self.audit.clone() else {
            return;
        };
        let Some(report) = shared.stall_report(self.rank) else {
            return;
        };
        let mut arrived = false;
        while let Ok(m) = self.rx.try_recv() {
            self.note_consumed();
            if m.tag == Tag::ABORT {
                panic!("rank {}: peer {} aborted", self.rank, m.src);
            }
            self.pending.push(m);
            arrived = true;
        }
        if arrived {
            return;
        }
        panic!("{report}");
    }

    /// Non-blocking, **non-consuming** probe for an exact `(src, tag)`
    /// match: drains whatever has already been delivered into the pending
    /// queue, then returns a reference to the earliest-arrived match, if
    /// any. Never blocks and never removes — the `RecvRequest::test` path
    /// of the non-blocking API. Because nothing is consumed, a later
    /// blocking `recv` (or the request's own `wait`) still matches
    /// messages purely in program order, keeping payload matching
    /// independent of host-thread delivery timing.
    pub fn peek_match(&mut self, src: usize, tag: Tag) -> Option<&Message> {
        while let Ok(m) = self.rx.try_recv() {
            self.note_consumed();
            if m.tag == Tag::ABORT {
                panic!("rank {}: peer {} aborted", self.rank, m.src);
            }
            self.pending.push(m);
        }
        self.pending.iter().find(|m| m.src == src && m.tag == tag)
    }

    /// Drain the channel and hand over everything still unconsumed. Called
    /// by the cluster after all node threads have joined (so every send has
    /// landed); any non-ABORT message here was never matched by a receive.
    pub(crate) fn drain_residue(&mut self) -> Vec<Message> {
        while let Ok(m) = self.rx.try_recv() {
            self.note_consumed();
            self.pending.push(m);
        }
        std::mem::take(&mut self.pending)
    }

    /// Recovery-attempt boundary check: when the engine closes tag window
    /// `window`, no message stamped with it may remain undelivered to the
    /// program — such a message could only ever be matched (wrongly) by a
    /// later attempt, or leak. Panics with provenance if one is found.
    #[cfg(feature = "audit")]
    pub(crate) fn scan_window_residue(&mut self, window: u32) {
        while let Ok(m) = self.rx.try_recv() {
            self.note_consumed();
            if m.tag == Tag::ABORT {
                panic!("rank {}: peer {} aborted", self.rank, m.src);
            }
            self.pending.push(m);
        }
        if let Some(m) = self.pending.iter().find(|m| m.stamp.window == Some(window)) {
            panic!(
                "[message-drain] rank {}: recovery window {window} closed with an \
                 unconsumed message from rank {} (tag {}, {} elems, send #{})",
                self.rank,
                m.src,
                m.tag.describe(),
                m.payload.elems(),
                m.stamp.seq,
            );
        }
    }

    /// Number of buffered unexpected messages (diagnostics).
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::Payload;

    fn msg(src: usize, tag: Tag, x: f64) -> Message {
        Message::new(src, tag, Payload::F64(x), 0.0)
    }

    #[test]
    fn matches_src_and_tag() {
        let (mut mb, tx) = Mailbox::new(0);
        tx.send(msg(2, Tag::user(9), 2.0)).unwrap();
        tx.send(msg(1, Tag::user(7), 1.0)).unwrap();
        // Ask for the later-sent message first: the other must be buffered.
        let m = mb.recv(1, Tag::user(7));
        assert_eq!(m.payload, Payload::F64(1.0));
        assert_eq!(mb.pending_len(), 1);
        let m = mb.recv(2, Tag::user(9));
        assert_eq!(m.payload, Payload::F64(2.0));
        assert_eq!(mb.pending_len(), 0);
    }

    #[test]
    fn same_src_tag_preserves_fifo() {
        let (mut mb, tx) = Mailbox::new(0);
        tx.send(msg(1, Tag::user(7), 1.0)).unwrap();
        tx.send(msg(1, Tag::user(7), 2.0)).unwrap();
        assert_eq!(mb.recv(1, Tag::user(7)).payload, Payload::F64(1.0));
        assert_eq!(mb.recv(1, Tag::user(7)).payload, Payload::F64(2.0));
    }

    #[test]
    fn fifo_preserved_with_three_buffered_same_key() {
        // Regression: with ≥3 messages of the same (src, tag) parked in the
        // pending queue, `swap_remove` matched the *third* before the
        // second. Force all three into pending by receiving an unrelated
        // message first, then drain them and demand arrival order.
        let (mut mb, tx) = Mailbox::new(0);
        tx.send(msg(1, Tag::user(7), 1.0)).unwrap();
        tx.send(msg(1, Tag::user(7), 2.0)).unwrap();
        tx.send(msg(1, Tag::user(7), 3.0)).unwrap();
        tx.send(msg(2, Tag::user(9), 99.0)).unwrap();
        assert_eq!(mb.recv(2, Tag::user(9)).payload, Payload::F64(99.0));
        assert_eq!(mb.pending_len(), 3);
        assert_eq!(mb.recv(1, Tag::user(7)).payload, Payload::F64(1.0));
        assert_eq!(mb.recv(1, Tag::user(7)).payload, Payload::F64(2.0));
        assert_eq!(mb.recv(1, Tag::user(7)).payload, Payload::F64(3.0));
        assert_eq!(mb.pending_len(), 0);
    }

    #[test]
    fn recv_any_fifo_with_buffered_same_key() {
        // Same regression through the any-source path.
        let (mut mb, tx) = Mailbox::new(0);
        tx.send(msg(1, Tag::user(7), 1.0)).unwrap();
        tx.send(msg(1, Tag::user(7), 2.0)).unwrap();
        tx.send(msg(1, Tag::user(7), 3.0)).unwrap();
        tx.send(msg(2, Tag::user(9), 99.0)).unwrap();
        assert_eq!(mb.recv(2, Tag::user(9)).payload, Payload::F64(99.0));
        assert_eq!(mb.recv_any(Tag::user(7)).payload, Payload::F64(1.0));
        assert_eq!(mb.recv_any(Tag::user(7)).payload, Payload::F64(2.0));
        assert_eq!(mb.recv_any(Tag::user(7)).payload, Payload::F64(3.0));
    }

    #[test]
    fn peek_match_is_nonblocking_and_nonconsuming() {
        let (mut mb, tx) = Mailbox::new(0);
        assert!(mb.peek_match(1, Tag::user(7)).is_none());
        tx.send(msg(1, Tag::user(7), 1.0)).unwrap();
        tx.send(msg(1, Tag::user(7), 2.0)).unwrap();
        tx.send(msg(2, Tag::user(9), 9.0)).unwrap();
        // Peek sees the earliest-arrived match and does not consume it...
        assert_eq!(
            mb.peek_match(1, Tag::user(7)).unwrap().payload,
            Payload::F64(1.0)
        );
        assert_eq!(
            mb.peek_match(1, Tag::user(7)).unwrap().payload,
            Payload::F64(1.0)
        );
        // ...so a blocking recv still matches in arrival order.
        assert_eq!(mb.recv(1, Tag::user(7)).payload, Payload::F64(1.0));
        assert_eq!(mb.recv(1, Tag::user(7)).payload, Payload::F64(2.0));
        assert_eq!(mb.recv(2, Tag::user(9)).payload, Payload::F64(9.0));
    }

    #[test]
    fn recv_any_returns_source() {
        let (mut mb, tx) = Mailbox::new(0);
        tx.send(msg(5, Tag::user(3), 4.0)).unwrap();
        let m = mb.recv_any(Tag::user(3));
        assert_eq!(m.src, 5);
    }

    #[test]
    fn pending_scan_prefers_earliest_match() {
        let (mut mb, tx) = Mailbox::new(0);
        tx.send(msg(1, Tag::user(1), 1.0)).unwrap();
        tx.send(msg(1, Tag::user(2), 2.0)).unwrap();
        // Buffer both by asking for something else first? Instead: receive
        // tag 2, which buffers tag 1, then receive tag 1 from pending.
        assert_eq!(mb.recv(1, Tag::user(2)).payload, Payload::F64(2.0));
        assert_eq!(mb.recv(1, Tag::user(1)).payload, Payload::F64(1.0));
    }

    #[test]
    fn drain_residue_hands_over_everything() {
        let (mut mb, tx) = Mailbox::new(0);
        tx.send(msg(1, Tag::user(1), 1.0)).unwrap();
        tx.send(msg(2, Tag::user(2), 2.0)).unwrap();
        // Buffer the first by receiving the second.
        assert_eq!(mb.recv(2, Tag::user(2)).payload, Payload::F64(2.0));
        tx.send(msg(3, Tag::user(3), 3.0)).unwrap();
        let residue = mb.drain_residue();
        assert_eq!(residue.len(), 2);
        assert_eq!(residue[0].src, 1); // buffered pending first…
        assert_eq!(residue[1].src, 3); // …then the undelivered channel tail
        assert_eq!(mb.pending_len(), 0);
    }

    #[cfg(feature = "audit")]
    #[test]
    fn fifo_bug_double_reorders_same_key_matches() {
        let (mut mb, tx) = Mailbox::new(0);
        mb.seed_fifo_bug();
        tx.send(msg(1, Tag::user(7), 1.0)).unwrap();
        tx.send(msg(1, Tag::user(7), 2.0)).unwrap();
        tx.send(msg(1, Tag::user(7), 3.0)).unwrap();
        tx.send(msg(2, Tag::user(9), 99.0)).unwrap();
        assert_eq!(mb.recv(2, Tag::user(9)).payload, Payload::F64(99.0));
        // The defect: matching the earliest entry but removing with
        // swap_remove delivers 1, then *3*, then 2.
        assert_eq!(mb.recv(1, Tag::user(7)).payload, Payload::F64(1.0));
        assert_eq!(mb.recv(1, Tag::user(7)).payload, Payload::F64(3.0));
        assert_eq!(mb.recv(1, Tag::user(7)).payload, Payload::F64(2.0));
    }
}
