//! Per-node mailboxes with `(source, tag)` matching.
//!
//! Each node owns one unbounded MPSC channel; every other node holds a clone
//! of the sender. Because messages from *different* sources interleave
//! arbitrarily, a receive for a specific `(src, tag)` buffers any
//! non-matching messages in a pending list — the standard MPI unexpected-
//! message queue.

use std::sync::mpsc::{channel as unbounded, Receiver, Sender};
use std::time::Duration;

use crate::payload::Message;
use crate::tag::Tag;

/// How long a blocking receive waits before declaring the cluster
/// deadlocked. A backstop only — a panicking peer broadcasts
/// [`Tag::ABORT`] so genuine failures tear the cluster down immediately.
const DEADLOCK_TIMEOUT: Duration = Duration::from_secs(300);

/// The receiving half of a node's mailbox.
pub struct Mailbox {
    rank: usize,
    rx: Receiver<Message>,
    /// Unexpected-message queue: arrived but not yet matched.
    pending: Vec<Message>,
}

/// A handle for delivering messages to some node.
pub type Outbox = Sender<Message>;

impl Mailbox {
    /// Create a mailbox for `rank`; returns the mailbox and the sender handle
    /// to distribute to all peers.
    pub fn new(rank: usize) -> (Self, Outbox) {
        let (tx, rx) = unbounded();
        (
            Mailbox {
                rank,
                rx,
                pending: Vec::new(),
            },
            tx,
        )
    }

    /// Blocking receive matching an exact `(src, tag)`.
    ///
    /// # Panics
    /// Panics after a long timeout — in this simulator an unmatched receive
    /// is always a protocol bug (deadlock), and panicking with context beats
    /// hanging the test suite.
    pub fn recv(&mut self, src: usize, tag: Tag) -> Message {
        if let Some(pos) = self
            .pending
            .iter()
            .position(|m| m.src == src && m.tag == tag)
        {
            // Order-preserving removal: `swap_remove` would move the last
            // buffered message into this slot, so a later receive for the
            // same `(src, tag)` would match messages out of arrival order —
            // an MPI non-overtaking violation.
            return self.pending.remove(pos);
        }
        loop {
            match self.rx.recv_timeout(DEADLOCK_TIMEOUT) {
                Ok(m) => {
                    if m.tag == Tag::ABORT {
                        panic!("rank {}: peer {} aborted", self.rank, m.src);
                    }
                    if m.src == src && m.tag == tag {
                        return m;
                    }
                    self.pending.push(m);
                }
                Err(_) => panic!(
                    "rank {}: deadlock waiting for message from rank {} with tag {:?} \
                     ({} unexpected messages pending)",
                    self.rank,
                    src,
                    tag,
                    self.pending.len()
                ),
            }
        }
    }

    /// Non-blocking, **non-consuming** probe for an exact `(src, tag)`
    /// match: drains whatever has already been delivered into the pending
    /// queue, then returns a reference to the earliest-arrived match, if
    /// any. Never blocks and never removes — the `RecvRequest::test` path
    /// of the non-blocking API. Because nothing is consumed, a later
    /// blocking `recv` (or the request's own `wait`) still matches
    /// messages purely in program order, keeping payload matching
    /// independent of host-thread delivery timing.
    pub fn peek_match(&mut self, src: usize, tag: Tag) -> Option<&Message> {
        while let Ok(m) = self.rx.try_recv() {
            if m.tag == Tag::ABORT {
                panic!("rank {}: peer {} aborted", self.rank, m.src);
            }
            self.pending.push(m);
        }
        self.pending.iter().find(|m| m.src == src && m.tag == tag)
    }

    /// Blocking receive matching a tag from *any* source. Returns the full
    /// message so the caller learns the source.
    pub fn recv_any(&mut self, tag: Tag) -> Message {
        if let Some(pos) = self.pending.iter().position(|m| m.tag == tag) {
            return self.pending.remove(pos);
        }
        loop {
            match self.rx.recv_timeout(DEADLOCK_TIMEOUT) {
                Ok(m) => {
                    if m.tag == Tag::ABORT {
                        panic!("rank {}: peer {} aborted", self.rank, m.src);
                    }
                    if m.tag == tag {
                        return m;
                    }
                    self.pending.push(m);
                }
                Err(_) => panic!(
                    "rank {}: deadlock waiting for any-source message with tag {:?} \
                     ({} unexpected messages pending)",
                    self.rank,
                    tag,
                    self.pending.len()
                ),
            }
        }
    }

    /// Number of buffered unexpected messages (diagnostics).
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::Payload;

    fn msg(src: usize, tag: Tag, x: f64) -> Message {
        Message {
            src,
            tag,
            payload: Payload::F64(x),
            arrival_vtime: 0.0,
        }
    }

    #[test]
    fn matches_src_and_tag() {
        let (mut mb, tx) = Mailbox::new(0);
        tx.send(msg(2, Tag::user(9), 2.0)).unwrap();
        tx.send(msg(1, Tag::user(7), 1.0)).unwrap();
        // Ask for the later-sent message first: the other must be buffered.
        let m = mb.recv(1, Tag::user(7));
        assert_eq!(m.payload, Payload::F64(1.0));
        assert_eq!(mb.pending_len(), 1);
        let m = mb.recv(2, Tag::user(9));
        assert_eq!(m.payload, Payload::F64(2.0));
        assert_eq!(mb.pending_len(), 0);
    }

    #[test]
    fn same_src_tag_preserves_fifo() {
        let (mut mb, tx) = Mailbox::new(0);
        tx.send(msg(1, Tag::user(7), 1.0)).unwrap();
        tx.send(msg(1, Tag::user(7), 2.0)).unwrap();
        assert_eq!(mb.recv(1, Tag::user(7)).payload, Payload::F64(1.0));
        assert_eq!(mb.recv(1, Tag::user(7)).payload, Payload::F64(2.0));
    }

    #[test]
    fn fifo_preserved_with_three_buffered_same_key() {
        // Regression: with ≥3 messages of the same (src, tag) parked in the
        // pending queue, `swap_remove` matched the *third* before the
        // second. Force all three into pending by receiving an unrelated
        // message first, then drain them and demand arrival order.
        let (mut mb, tx) = Mailbox::new(0);
        tx.send(msg(1, Tag::user(7), 1.0)).unwrap();
        tx.send(msg(1, Tag::user(7), 2.0)).unwrap();
        tx.send(msg(1, Tag::user(7), 3.0)).unwrap();
        tx.send(msg(2, Tag::user(9), 99.0)).unwrap();
        assert_eq!(mb.recv(2, Tag::user(9)).payload, Payload::F64(99.0));
        assert_eq!(mb.pending_len(), 3);
        assert_eq!(mb.recv(1, Tag::user(7)).payload, Payload::F64(1.0));
        assert_eq!(mb.recv(1, Tag::user(7)).payload, Payload::F64(2.0));
        assert_eq!(mb.recv(1, Tag::user(7)).payload, Payload::F64(3.0));
        assert_eq!(mb.pending_len(), 0);
    }

    #[test]
    fn recv_any_fifo_with_buffered_same_key() {
        // Same regression through the any-source path.
        let (mut mb, tx) = Mailbox::new(0);
        tx.send(msg(1, Tag::user(7), 1.0)).unwrap();
        tx.send(msg(1, Tag::user(7), 2.0)).unwrap();
        tx.send(msg(1, Tag::user(7), 3.0)).unwrap();
        tx.send(msg(2, Tag::user(9), 99.0)).unwrap();
        assert_eq!(mb.recv(2, Tag::user(9)).payload, Payload::F64(99.0));
        assert_eq!(mb.recv_any(Tag::user(7)).payload, Payload::F64(1.0));
        assert_eq!(mb.recv_any(Tag::user(7)).payload, Payload::F64(2.0));
        assert_eq!(mb.recv_any(Tag::user(7)).payload, Payload::F64(3.0));
    }

    #[test]
    fn peek_match_is_nonblocking_and_nonconsuming() {
        let (mut mb, tx) = Mailbox::new(0);
        assert!(mb.peek_match(1, Tag::user(7)).is_none());
        tx.send(msg(1, Tag::user(7), 1.0)).unwrap();
        tx.send(msg(1, Tag::user(7), 2.0)).unwrap();
        tx.send(msg(2, Tag::user(9), 9.0)).unwrap();
        // Peek sees the earliest-arrived match and does not consume it...
        assert_eq!(
            mb.peek_match(1, Tag::user(7)).unwrap().payload,
            Payload::F64(1.0)
        );
        assert_eq!(
            mb.peek_match(1, Tag::user(7)).unwrap().payload,
            Payload::F64(1.0)
        );
        // ...so a blocking recv still matches in arrival order.
        assert_eq!(mb.recv(1, Tag::user(7)).payload, Payload::F64(1.0));
        assert_eq!(mb.recv(1, Tag::user(7)).payload, Payload::F64(2.0));
        assert_eq!(mb.recv(2, Tag::user(9)).payload, Payload::F64(9.0));
    }

    #[test]
    fn recv_any_returns_source() {
        let (mut mb, tx) = Mailbox::new(0);
        tx.send(msg(5, Tag::user(3), 4.0)).unwrap();
        let m = mb.recv_any(Tag::user(3));
        assert_eq!(m.src, 5);
    }

    #[test]
    fn pending_scan_prefers_earliest_match() {
        let (mut mb, tx) = Mailbox::new(0);
        tx.send(msg(1, Tag::user(1), 1.0)).unwrap();
        tx.send(msg(1, Tag::user(2), 2.0)).unwrap();
        // Buffer both by asking for something else first? Instead: receive
        // tag 2, which buffers tag 1, then receive tag 1 from pending.
        assert_eq!(mb.recv(1, Tag::user(2)).payload, Payload::F64(2.0));
        assert_eq!(mb.recv(1, Tag::user(1)).payload, Payload::F64(1.0));
    }
}
