//! Per-node mailboxes with `(source, tag)` matching.
//!
//! Each node owns one unbounded MPSC channel; every other node holds a clone
//! of the sender. Because messages from *different* sources interleave
//! arbitrarily, a receive for a specific `(src, tag)` buffers any
//! non-matching messages in a pending list — the standard MPI unexpected-
//! message queue.
//!
//! A receive that finds no match does not poll: it parks the node on the
//! cluster's [`crate::sched::Scheduler`], which hands the baton to the next
//! runnable node and wakes this one when a matching send arrives. A receive
//! that can *never* match — a wait-for cycle, or a wait on a terminated
//! rank — is detected the moment the cluster runs out of runnable nodes and
//! panics with the exact wait-for chain spelled out (in every build, not
//! just under `--features audit`).
//!
//! A standalone mailbox (no scheduler installed — unit tests drive it
//! directly) panics immediately on a would-block receive: with no peers to
//! park for, an unmatched receive is always a bug.

use std::sync::mpsc::{channel as unbounded, Receiver, Sender};
use std::sync::Arc;

use crate::payload::Message;
use crate::sched::{BlockedOn, Scheduler};
use crate::tag::Tag;

/// The receiving half of a node's mailbox.
pub struct Mailbox {
    rank: usize,
    rx: Receiver<Message>,
    /// Unexpected-message queue: arrived but not yet matched.
    pending: Vec<Message>,
    /// The cluster's node scheduler; `None` for standalone mailboxes.
    sched: Option<Arc<Scheduler>>,
    /// Test double: reintroduces the PR 2 `swap_remove` FIFO defect so the
    /// auditor's non-overtaking check can be proven against it.
    #[cfg(feature = "audit")]
    fifo_bug: bool,
}

/// A handle for delivering messages to some node.
pub type Outbox = Sender<Message>;

impl Mailbox {
    /// Create a mailbox for `rank`; returns the mailbox and the sender handle
    /// to distribute to all peers.
    pub fn new(rank: usize) -> (Self, Outbox) {
        let (tx, rx) = unbounded();
        (
            Mailbox {
                rank,
                rx,
                pending: Vec::new(),
                sched: None,
                #[cfg(feature = "audit")]
                fifo_bug: false,
            },
            tx,
        )
    }

    /// Attach the cluster's node scheduler: would-block receives park there
    /// instead of panicking.
    pub(crate) fn install_sched(&mut self, sched: Arc<Scheduler>) {
        self.sched = Some(sched);
    }

    #[cfg(feature = "audit")]
    pub(crate) fn seed_fifo_bug(&mut self) {
        self.fifo_bug = true;
    }

    /// Remove and return `pending[pos]`, preserving arrival order.
    fn take_pending(&mut self, pos: usize) -> Message {
        #[cfg(feature = "audit")]
        if self.fifo_bug {
            // Test double: the PR 2 defect. `swap_remove` moves the last
            // buffered message into this slot, so a later receive for the
            // same `(src, tag)` matches out of arrival order.
            return self.pending.swap_remove(pos);
        }
        // Order-preserving removal: `swap_remove` would reorder later
        // same-`(src, tag)` matches — an MPI non-overtaking violation.
        self.pending.remove(pos)
    }

    /// Pull everything already delivered into the pending queue; returns
    /// whether anything arrived.
    fn drain_channel(&mut self) -> bool {
        let mut arrived = false;
        while let Ok(m) = self.rx.try_recv() {
            self.pending.push(m);
            arrived = true;
        }
        arrived
    }

    /// Blocking receive matching an exact `(src, tag)`; `now` is the node's
    /// current virtual time (recorded by the scheduler while parked).
    ///
    /// # Panics
    /// Panics when the receive can never be matched: the scheduler detects
    /// the moment no node is runnable and reports the exact wait-for cycle
    /// (or terminated-rank chain). A standalone mailbox panics immediately.
    pub fn recv(&mut self, src: usize, tag: Tag, now: f64) -> Message {
        self.recv_matching(Some(src), tag, now)
    }

    /// Blocking receive matching a tag from *any* source. Returns the full
    /// message so the caller learns the source.
    pub fn recv_any(&mut self, tag: Tag, now: f64) -> Message {
        self.recv_matching(None, tag, now)
    }

    fn recv_matching(&mut self, src: Option<usize>, tag: Tag, now: f64) -> Message {
        let matches = |m: &Message| src.is_none_or(|s| m.src == s) && m.tag == tag;
        loop {
            if let Some(pos) = self.pending.iter().position(matches) {
                return self.take_pending(pos);
            }
            if self.drain_channel() {
                continue;
            }
            // Nothing delivered matches: park until a matching send wakes
            // us (the re-scan above is then guaranteed to succeed — the
            // scheduler wakes on match only).
            match &self.sched {
                Some(sched) => sched.park_recv(self.rank, BlockedOn { src, tag }, now),
                None => panic!(
                    "rank {}: deadlock waiting for {} with tag {:?} \
                     ({} unexpected messages pending)",
                    self.rank,
                    match src {
                        Some(s) => format!("message from rank {s}"),
                        None => "any-source message".to_string(),
                    },
                    tag,
                    self.pending.len()
                ),
            }
        }
    }

    /// Non-blocking, **non-consuming** probe for an exact `(src, tag)`
    /// match: drains whatever has already been delivered into the pending
    /// queue, then returns a reference to the earliest-arrived match, if
    /// any. Never blocks and never removes — the `RecvRequest::test` path
    /// of the non-blocking API. Because nothing is consumed, a later
    /// blocking `recv` (or the request's own `wait`) still matches
    /// messages purely in program order, keeping payload matching
    /// independent of delivery timing.
    pub fn peek_match(&mut self, src: usize, tag: Tag) -> Option<&Message> {
        self.drain_channel();
        self.pending.iter().find(|m| m.src == src && m.tag == tag)
    }

    /// Drain the channel and hand over everything still unconsumed. Called
    /// by the cluster after all node threads have joined (so every send has
    /// landed); any message here was never matched by a receive. The leak
    /// check that consumes this only exists in debug and audit builds.
    #[cfg(any(debug_assertions, feature = "audit", test))]
    pub(crate) fn drain_residue(&mut self) -> Vec<Message> {
        self.drain_channel();
        std::mem::take(&mut self.pending)
    }

    /// Recovery-attempt boundary check: when the engine closes tag window
    /// `window`, no message stamped with it may remain undelivered to the
    /// program — such a message could only ever be matched (wrongly) by a
    /// later attempt, or leak. Panics with provenance if one is found.
    #[cfg(feature = "audit")]
    pub(crate) fn scan_window_residue(&mut self, window: u32) {
        self.drain_channel();
        if let Some(m) = self.pending.iter().find(|m| m.stamp.window == Some(window)) {
            panic!(
                "[message-drain] rank {}: recovery window {window} closed with an \
                 unconsumed message from rank {} (tag {}, {} elems, send #{})",
                self.rank,
                m.src,
                m.tag.describe(),
                m.payload.elems(),
                m.stamp.seq,
            );
        }
    }

    /// Number of buffered unexpected messages (diagnostics).
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::Payload;

    fn msg(src: usize, tag: Tag, x: f64) -> Message {
        Message::new(src, tag, Payload::F64(x), 0.0)
    }

    #[test]
    fn matches_src_and_tag() {
        let (mut mb, tx) = Mailbox::new(0);
        tx.send(msg(2, Tag::user(9), 2.0)).unwrap();
        tx.send(msg(1, Tag::user(7), 1.0)).unwrap();
        // Ask for the later-sent message first: the other must be buffered.
        let m = mb.recv(1, Tag::user(7), 0.0);
        assert_eq!(m.payload, Payload::F64(1.0));
        assert_eq!(mb.pending_len(), 1);
        let m = mb.recv(2, Tag::user(9), 0.0);
        assert_eq!(m.payload, Payload::F64(2.0));
        assert_eq!(mb.pending_len(), 0);
    }

    #[test]
    fn same_src_tag_preserves_fifo() {
        let (mut mb, tx) = Mailbox::new(0);
        tx.send(msg(1, Tag::user(7), 1.0)).unwrap();
        tx.send(msg(1, Tag::user(7), 2.0)).unwrap();
        assert_eq!(mb.recv(1, Tag::user(7), 0.0).payload, Payload::F64(1.0));
        assert_eq!(mb.recv(1, Tag::user(7), 0.0).payload, Payload::F64(2.0));
    }

    #[test]
    fn fifo_preserved_with_three_buffered_same_key() {
        // Regression: with ≥3 messages of the same (src, tag) parked in the
        // pending queue, `swap_remove` matched the *third* before the
        // second. Force all three into pending by receiving an unrelated
        // message first, then drain them and demand arrival order.
        let (mut mb, tx) = Mailbox::new(0);
        tx.send(msg(1, Tag::user(7), 1.0)).unwrap();
        tx.send(msg(1, Tag::user(7), 2.0)).unwrap();
        tx.send(msg(1, Tag::user(7), 3.0)).unwrap();
        tx.send(msg(2, Tag::user(9), 99.0)).unwrap();
        assert_eq!(mb.recv(2, Tag::user(9), 0.0).payload, Payload::F64(99.0));
        assert_eq!(mb.pending_len(), 3);
        assert_eq!(mb.recv(1, Tag::user(7), 0.0).payload, Payload::F64(1.0));
        assert_eq!(mb.recv(1, Tag::user(7), 0.0).payload, Payload::F64(2.0));
        assert_eq!(mb.recv(1, Tag::user(7), 0.0).payload, Payload::F64(3.0));
        assert_eq!(mb.pending_len(), 0);
    }

    #[test]
    fn recv_any_fifo_with_buffered_same_key() {
        // Same regression through the any-source path.
        let (mut mb, tx) = Mailbox::new(0);
        tx.send(msg(1, Tag::user(7), 1.0)).unwrap();
        tx.send(msg(1, Tag::user(7), 2.0)).unwrap();
        tx.send(msg(1, Tag::user(7), 3.0)).unwrap();
        tx.send(msg(2, Tag::user(9), 99.0)).unwrap();
        assert_eq!(mb.recv(2, Tag::user(9), 0.0).payload, Payload::F64(99.0));
        assert_eq!(mb.recv_any(Tag::user(7), 0.0).payload, Payload::F64(1.0));
        assert_eq!(mb.recv_any(Tag::user(7), 0.0).payload, Payload::F64(2.0));
        assert_eq!(mb.recv_any(Tag::user(7), 0.0).payload, Payload::F64(3.0));
    }

    #[test]
    fn peek_match_is_nonblocking_and_nonconsuming() {
        let (mut mb, tx) = Mailbox::new(0);
        assert!(mb.peek_match(1, Tag::user(7)).is_none());
        tx.send(msg(1, Tag::user(7), 1.0)).unwrap();
        tx.send(msg(1, Tag::user(7), 2.0)).unwrap();
        tx.send(msg(2, Tag::user(9), 9.0)).unwrap();
        // Peek sees the earliest-arrived match and does not consume it...
        assert_eq!(
            mb.peek_match(1, Tag::user(7)).unwrap().payload,
            Payload::F64(1.0)
        );
        assert_eq!(
            mb.peek_match(1, Tag::user(7)).unwrap().payload,
            Payload::F64(1.0)
        );
        // ...so a blocking recv still matches in arrival order.
        assert_eq!(mb.recv(1, Tag::user(7), 0.0).payload, Payload::F64(1.0));
        assert_eq!(mb.recv(1, Tag::user(7), 0.0).payload, Payload::F64(2.0));
        assert_eq!(mb.recv(2, Tag::user(9), 0.0).payload, Payload::F64(9.0));
    }

    #[test]
    fn recv_any_returns_source() {
        let (mut mb, tx) = Mailbox::new(0);
        tx.send(msg(5, Tag::user(3), 4.0)).unwrap();
        let m = mb.recv_any(Tag::user(3), 0.0);
        assert_eq!(m.src, 5);
    }

    #[test]
    fn pending_scan_prefers_earliest_match() {
        let (mut mb, tx) = Mailbox::new(0);
        tx.send(msg(1, Tag::user(1), 1.0)).unwrap();
        tx.send(msg(1, Tag::user(2), 2.0)).unwrap();
        // Buffer both by asking for something else first? Instead: receive
        // tag 2, which buffers tag 1, then receive tag 1 from pending.
        assert_eq!(mb.recv(1, Tag::user(2), 0.0).payload, Payload::F64(2.0));
        assert_eq!(mb.recv(1, Tag::user(1), 0.0).payload, Payload::F64(1.0));
    }

    #[test]
    fn drain_residue_hands_over_everything() {
        let (mut mb, tx) = Mailbox::new(0);
        tx.send(msg(1, Tag::user(1), 1.0)).unwrap();
        tx.send(msg(2, Tag::user(2), 2.0)).unwrap();
        // Buffer the first by receiving the second.
        assert_eq!(mb.recv(2, Tag::user(2), 0.0).payload, Payload::F64(2.0));
        tx.send(msg(3, Tag::user(3), 3.0)).unwrap();
        let residue = mb.drain_residue();
        assert_eq!(residue.len(), 2);
        assert_eq!(residue[0].src, 1); // buffered pending first…
        assert_eq!(residue[1].src, 3); // …then the undelivered channel tail
        assert_eq!(mb.pending_len(), 0);
    }

    #[test]
    #[should_panic(expected = "deadlock waiting for message from rank 1")]
    fn standalone_would_block_panics_immediately() {
        // No scheduler installed: a receive that cannot match must fail
        // fast, not hang (the old runtime slept 300 s here).
        let (mut mb, tx) = Mailbox::new(0);
        tx.send(msg(2, Tag::user(9), 2.0)).unwrap();
        mb.recv(1, Tag::user(7), 0.0);
    }

    #[cfg(feature = "audit")]
    #[test]
    fn fifo_bug_double_reorders_same_key_matches() {
        let (mut mb, tx) = Mailbox::new(0);
        mb.seed_fifo_bug();
        tx.send(msg(1, Tag::user(7), 1.0)).unwrap();
        tx.send(msg(1, Tag::user(7), 2.0)).unwrap();
        tx.send(msg(1, Tag::user(7), 3.0)).unwrap();
        tx.send(msg(2, Tag::user(9), 99.0)).unwrap();
        assert_eq!(mb.recv(2, Tag::user(9), 0.0).payload, Payload::F64(99.0));
        // The defect: matching the earliest entry but removing with
        // swap_remove delivers 1, then *3*, then 2.
        assert_eq!(mb.recv(1, Tag::user(7), 0.0).payload, Payload::F64(1.0));
        assert_eq!(mb.recv(1, Tag::user(7), 0.0).payload, Payload::F64(3.0));
        assert_eq!(mb.recv(1, Tag::user(7), 0.0).payload, Payload::F64(2.0));
    }
}
