//! Criterion micro-benchmarks of the building blocks: SpMV, assembly,
//! factorizations, the redundancy-set computation (Eqn. 6), and RCM.
//!
//! These quantify the per-iteration primitives behind the table harnesses;
//! sizes follow `ESR_SCALE` like everything else.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use esr_core::redundancy::compute_extra_sends;
use esr_core::BackupStrategy;
use precond::{Ic0, Ilu0, SparseLdl};
use sparsemat::analysis::send_sets;
use sparsemat::gen::suite::PaperMatrix;
use sparsemat::BlockPartition;

fn scale() -> f64 {
    std::env::var("ESR_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.01)
}

fn bench_spmv(c: &mut Criterion) {
    let a = sparsemat::gen::generate(PaperMatrix::M5, scale());
    let x: Vec<f64> = (0..a.n_rows()).map(|i| (i as f64 * 0.1).sin()).collect();
    let mut y = vec![0.0; a.n_rows()];
    c.bench_function("spmv_m5", |b| {
        b.iter(|| {
            a.spmv(black_box(&x), &mut y);
            black_box(&y);
        })
    });
}

fn bench_assembly(c: &mut Criterion) {
    c.bench_function("generate_m1", |b| {
        b.iter(|| black_box(sparsemat::gen::generate(PaperMatrix::M1, scale())))
    });
}

fn bench_factorizations(c: &mut Criterion) {
    // One node-block of the M5' matrix — what block Jacobi factors.
    let a = sparsemat::gen::generate(PaperMatrix::M5, scale());
    let part = BlockPartition::new(a.n_rows(), 16);
    let rows: Vec<usize> = part.range(0).collect();
    let block = a.extract(&rows, &rows);
    c.bench_function("ldl_factor_block", |b| {
        b.iter(|| black_box(SparseLdl::new(black_box(&block)).unwrap()))
    });
    c.bench_function("ilu0_factor_block", |b| {
        b.iter(|| black_box(Ilu0::new(black_box(&block)).unwrap()))
    });
    c.bench_function("ic0_factor_block", |b| {
        b.iter(|| black_box(Ic0::new(black_box(&block)).unwrap()))
    });
    let ldl = SparseLdl::new(&block).unwrap();
    let rhs: Vec<f64> = (0..block.n_rows()).map(|i| i as f64 * 0.01).collect();
    c.bench_function("ldl_solve_block", |b| {
        b.iter(|| black_box(ldl.solve(black_box(&rhs))))
    });
}

fn bench_redundancy(c: &mut Criterion) {
    // The Eqn. (6) extra-set computation for one node of M5'.
    let a = sparsemat::gen::generate(PaperMatrix::M5, scale());
    let part = BlockPartition::new(a.n_rows(), 16);
    let sets = send_sets(&a, &part);
    let start = part.range(0).start;
    let send_natural: Vec<Vec<usize>> = sets[0]
        .iter()
        .map(|sk| sk.iter().map(|&g| g - start).collect())
        .collect();
    c.bench_function("redundancy_extra_sets_phi3", |b| {
        b.iter(|| {
            black_box(compute_extra_sends(
                0,
                16,
                3,
                &BackupStrategy::Minimal,
                part.len_of(0),
                black_box(&send_natural),
            ))
        })
    });
}

fn bench_rcm(c: &mut Criterion) {
    let a = sparsemat::gen::generate(PaperMatrix::M3, scale() * 0.2);
    c.bench_function("rcm_m3", |b| {
        b.iter(|| black_box(sparsemat::order::rcm(black_box(&a))))
    });
}

criterion_group!(
    benches,
    bench_spmv,
    bench_assembly,
    bench_factorizations,
    bench_redundancy,
    bench_rcm
);
criterion_main!(benches);
