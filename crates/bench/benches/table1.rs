//! **Table 1** — properties of the test matrices.
//!
//! Prints the generated analog suite next to the paper's original
//! SuiteSparse matrices, so the scale factor and pattern classes are
//! explicit for every other experiment.

use esr_bench::{banner, write_csv, BenchConfig};
use sparsemat::gen::suite::spec;
use sparsemat::order::mean_row_bandwidth;

fn main() {
    let cfgb = BenchConfig::from_env();
    banner("Table 1 — SPD test matrices (synthetic analogs)", &cfgb);

    println!(
        "{:<4} {:<15} {:<20} {:>9} {:>10} | {:>9} {:>11} {:>9} | pattern",
        "ID", "stands for", "problem type", "paper n", "paper nnz", "n", "nnz", "nnz/row"
    );
    let mut rows = Vec::new();
    for &id in &cfgb.matrices {
        let s = spec(id);
        let a = sparsemat::gen::generate(id, cfgb.scale);
        let per_row = a.nnz() as f64 / a.n_rows() as f64;
        println!(
            "{:<4} {:<15} {:<20} {:>9} {:>10} | {:>9} {:>11} {:>9.1} | {} (mean row bw {:.0})",
            format!("{:?}", id),
            s.paper_name,
            s.problem_type,
            s.paper_n,
            s.paper_nnz,
            a.n_rows(),
            a.nnz(),
            per_row,
            s.pattern,
            mean_row_bandwidth(&a),
        );
        rows.push(format!(
            "{:?},{},{},{},{},{},{},{:.2},{}",
            id,
            s.paper_name,
            s.problem_type,
            s.paper_n,
            s.paper_nnz,
            a.n_rows(),
            a.nnz(),
            per_row,
            s.pattern
        ));
    }
    write_csv(
        "table1.csv",
        "id,paper_name,problem_type,paper_n,paper_nnz,n,nnz,nnz_per_row,pattern",
        &rows,
    );
}
