//! **Table 3** — loss-of-orthogonality metric (paper Eqn. 7):
//! `∆ = (‖r_solver‖₂ − ‖b − A x‖₂) / ‖b − A x‖₂` after convergence, for the
//! reference PCG run (`∆PCG`) and the maximum over all failure experiments
//! (`max ∆ESR`). The deviations must be tiny against the 10⁸ residual
//! reduction — reconstruction with inner tolerance 10⁻¹⁴ does not degrade
//! the solver's accuracy.

use esr_bench::{banner, run_failure_case, write_csv, BenchConfig, FailLocation};
use esr_core::{run_pcg, SolverConfig};
use parcomm::FailureScript;

fn main() {
    let cfgb = BenchConfig::from_env();
    banner("Table 3 — relative residual deviation (Eqn. 7)", &cfgb);
    println!("{:<4} {:>14} {:>14}", "ID", "max ∆ESR", "∆PCG");

    let mut csv = Vec::new();
    for &id in &cfgb.matrices {
        let problem = cfgb.problem(id);
        let reference = run_pcg(
            &problem,
            cfgb.nodes,
            &SolverConfig::reference(),
            cfgb.cost,
            FailureScript::none(),
        )
        .unwrap();
        assert!(reference.converged);
        let delta_pcg = reference.residual_deviation;

        // Largest-magnitude deviation over all failure experiments.
        let mut max_esr = 0.0f64;
        for phi in [1usize, 3, 8] {
            let solver = SolverConfig::resilient(phi);
            for loc in [FailLocation::Start, FailLocation::Center] {
                for &pr in &cfgb.progress {
                    let res = run_failure_case(
                        &cfgb,
                        &problem,
                        &solver,
                        phi,
                        loc,
                        pr,
                        reference.iterations,
                    );
                    assert!(res.converged);
                    if res.residual_deviation.abs() >= max_esr.abs() {
                        max_esr = res.residual_deviation;
                    }
                }
            }
        }
        println!(
            "{:<4} {:>14.2e} {:>14.2e}",
            format!("{id:?}"),
            max_esr,
            delta_pcg
        );
        csv.push(format!("{id:?},{max_esr:e},{delta_pcg:e}"));
    }
    write_csv("table3.csv", "id,max_delta_esr,delta_pcg", &csv);
    println!("\n(the paper reports deviations of 1e-8 .. 1e-3; both solvers'");
    println!(" deviations must stay comparable and tiny vs. the 1e8 reduction)");
}
