//! **Figure 4** — total runtime of M5' with three node failures at the
//! center ranks, injected at 20% / 50% / 80% of the solver's progress:
//! the iteration at which failures strike has little influence on the
//! total runtime (the reconstruction cost is progress-independent).

use esr_bench::{banner, run_failure_case, write_csv, BenchConfig, FailLocation};
use esr_core::{run_pcg, SolverConfig};
use parcomm::FailureScript;
use sparsemat::gen::suite::PaperMatrix;

fn main() {
    let cfgb = BenchConfig::from_env();
    banner(
        "Figure 4 — M5', three failures at center, vs. injection progress",
        &cfgb,
    );
    let problem = cfgb.problem(PaperMatrix::M5);
    let reference = run_pcg(
        &problem,
        cfgb.nodes,
        &SolverConfig::reference(),
        cfgb.cost,
        FailureScript::none(),
    )
    .unwrap();
    assert!(reference.converged);
    println!(
        "reference t0 = {:.3} ms ({} iterations)\n",
        reference.vtime * 1e3,
        reference.iterations
    );
    println!(
        "{:>9} | {:>12} | {:>14} | {:>10}",
        "progress", "time [ms]", "rec time [ms]", "iters"
    );
    let solver = SolverConfig::resilient(3);
    let mut csv = Vec::new();
    for &pr in &cfgb.progress {
        let res = run_failure_case(
            &cfgb,
            &problem,
            &solver,
            3,
            FailLocation::Center,
            pr,
            reference.iterations,
        );
        assert!(res.converged);
        println!(
            "{:>8.0}% | {:>12.3} | {:>14.4} | {:>10}",
            pr * 100.0,
            res.vtime * 1e3,
            res.vtime_recovery * 1e3,
            res.iterations
        );
        csv.push(format!(
            "{pr},{:.6},{:.6},{}",
            res.vtime, res.vtime_recovery, res.iterations
        ));
    }
    write_csv("fig4.csv", "progress,time_s,recovery_s,iterations", &csv);
}
