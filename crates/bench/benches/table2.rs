//! **Table 2** — the paper's main result: reference time `t0`, undisturbed
//! overhead for φ ∈ {1,3,8} redundant copies, and reconstruction time +
//! total overhead for ψ = φ ∈ {1,3,8} simultaneous node failures at the
//! start / center ranks, aggregated over the injection progress points.
//!
//! Times are virtual BSP-clock times (deterministic); the spread reported
//! as ±σ is the variation across the 20%/50%/80% injection points, which
//! is what the paper aggregates over.

use esr_bench::{banner, mean_std, run_failure_case, write_csv, BenchConfig, FailLocation};
use esr_core::{run_pcg, SolverConfig};
use parcomm::FailureScript;

const PHIS: [usize; 3] = [1, 3, 8];

fn main() {
    let cfgb = BenchConfig::from_env();
    banner(
        "Table 2 — runtime overheads of multi-failure ESR-PCG",
        &cfgb,
    );

    let mut csv = Vec::new();
    println!(
        "{:<4} {:>9} | {:>7} {:>7} {:>7} | {:<6} | {:>13} {:>13} {:>13} | {:>13} {:>13} {:>13}",
        "ID",
        "t0[ms]",
        "ovh φ1",
        "ovh φ3",
        "ovh φ8",
        "loc",
        "rec ψ=1 [%]",
        "rec ψ=3 [%]",
        "rec ψ=8 [%]",
        "ovh ψ=1 [%]",
        "ovh ψ=3 [%]",
        "ovh ψ=8 [%]"
    );

    for &id in &cfgb.matrices {
        let problem = cfgb.problem(id);
        let reference = run_pcg(
            &problem,
            cfgb.nodes,
            &SolverConfig::reference(),
            cfgb.cost,
            FailureScript::none(),
        )
        .unwrap();
        assert!(reference.converged, "{id:?}: reference did not converge");
        let t0 = reference.vtime;

        // Undisturbed overheads.
        let mut undisturbed = Vec::new();
        for phi in PHIS {
            let res = run_pcg(
                &problem,
                cfgb.nodes,
                &SolverConfig::resilient(phi),
                cfgb.cost,
                FailureScript::none(),
            )
            .unwrap();
            assert!(res.converged);
            undisturbed.push(100.0 * (res.vtime / t0 - 1.0));
        }

        // Failure runs per location and ψ = φ.
        for loc in [FailLocation::Start, FailLocation::Center] {
            let mut rec_cols = Vec::new();
            let mut ovh_cols = Vec::new();
            for phi in PHIS {
                let solver = SolverConfig::resilient(phi);
                let mut recs = Vec::new();
                let mut ovhs = Vec::new();
                for &pr in &cfgb.progress {
                    let res = run_failure_case(
                        &cfgb,
                        &problem,
                        &solver,
                        phi,
                        loc,
                        pr,
                        reference.iterations,
                    );
                    assert!(res.converged, "{id:?} φ={phi} {loc:?} @{pr}");
                    assert_eq!(res.recoveries, 1);
                    recs.push(100.0 * res.vtime_recovery / t0);
                    ovhs.push(100.0 * (res.vtime / t0 - 1.0));
                }
                rec_cols.push(mean_std(&recs));
                ovh_cols.push(mean_std(&ovhs));
            }
            let fmt = |(m, s): (f64, f64)| format!("{m:6.1}±{s:4.1}");
            if loc == FailLocation::Start {
                println!(
                    "{:<4} {:>9.3} | {:>7.1} {:>7.1} {:>7.1} | {:<6} | {:>13} {:>13} {:>13} | {:>13} {:>13} {:>13}",
                    format!("{id:?}"),
                    t0 * 1e3,
                    undisturbed[0],
                    undisturbed[1],
                    undisturbed[2],
                    loc.label(),
                    fmt(rec_cols[0]), fmt(rec_cols[1]), fmt(rec_cols[2]),
                    fmt(ovh_cols[0]), fmt(ovh_cols[1]), fmt(ovh_cols[2]),
                );
            } else {
                println!(
                    "{:<4} {:>9} | {:>7} {:>7} {:>7} | {:<6} | {:>13} {:>13} {:>13} | {:>13} {:>13} {:>13}",
                    "", "", "", "", "",
                    loc.label(),
                    fmt(rec_cols[0]), fmt(rec_cols[1]), fmt(rec_cols[2]),
                    fmt(ovh_cols[0]), fmt(ovh_cols[1]), fmt(ovh_cols[2]),
                );
            }
            for (k, phi) in PHIS.iter().enumerate() {
                csv.push(format!(
                    "{id:?},{:.6},{:.3},{},{},{:.3},{:.3},{:.3},{:.3}",
                    t0,
                    undisturbed[k],
                    loc.label(),
                    phi,
                    rec_cols[k].0,
                    rec_cols[k].1,
                    ovh_cols[k].0,
                    ovh_cols[k].1,
                ));
            }
        }
    }
    write_csv(
        "table2.csv",
        "id,t0_s,undisturbed_ovh_pct,location,phi,rec_mean_pct,rec_std_pct,ovh_mean_pct,ovh_std_pct",
        &csv,
    );
}
