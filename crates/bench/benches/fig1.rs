//! **Figure 1** — runtimes and relative overhead for the M5'
//! (Emilia_923-class) matrix, failures near the *center* of the vector:
//! the paper's favourable wide-band case, where the reconstruction is
//! nearly free and the overhead comes from the redundant-copy traffic.

use esr_bench::figures::figure;
use esr_bench::FailLocation;
use sparsemat::gen::suite::PaperMatrix;

fn main() {
    figure(
        "fig1",
        "Figure 1 — M5' (Emilia_923 analog), failures at center ranks",
        PaperMatrix::M5,
        FailLocation::Center,
    );
}
