//! **Figure 2** — runtimes and relative overhead for the M1'
//! (parabolic_fem-class) matrix, failures near the *start* of the vector.
//! The paper's Fig. 2 showcases that a run with failures can even finish
//! *faster* than the failure-free run when the reconstruction slightly
//! reduces the remaining iteration count.

use esr_bench::figures::figure;
use esr_bench::FailLocation;
use sparsemat::gen::suite::PaperMatrix;

fn main() {
    figure(
        "fig2",
        "Figure 2 — M1' (parabolic_fem analog), failures at start ranks",
        PaperMatrix::M1,
        FailLocation::Start,
    );
}
