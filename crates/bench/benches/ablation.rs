//! **Ablations** — the design choices DESIGN.md calls out:
//!
//! 1. backup placement: the paper's minimal sets (Eqn. 6) vs. naive
//!    full-block replication (realizes the Sec. 4.2 upper bound);
//! 2. reconstruction block solver: exact sparse LDLᵀ vs. the paper's
//!    ILU(0) (paper Sec. 6 uses ILU in PETSc);
//! 3. bandwidth-reducing RCM reordering before partitioning — the paper's
//!    "future work" direction for scattered patterns (Sec. 8).

use esr_bench::{banner, run_failure_case, write_csv, BenchConfig, FailLocation};
use esr_core::{analysis, run_pcg, BackupStrategy, Problem, SolverConfig};
use parcomm::FailureScript;
use sparsemat::gen::suite::PaperMatrix;
use sparsemat::BlockPartition;

fn main() {
    let cfgb = BenchConfig::from_env();
    banner("Ablations — placement strategy / inner solver / RCM", &cfgb);
    let mut csv = Vec::new();

    // ---- 1. placement: Eqn. 5+6 vs. consecutive ring vs. full block ----
    println!("\n[1] backup placement at φ=3 (undisturbed overhead vs t0):");
    println!(
        "{:<4} {:>16} {:>16} {:>16}",
        "ID", "eqn5+6 (paper)", "consecutive", "full-block"
    );
    for &id in &cfgb.matrices {
        let problem = cfgb.problem(id);
        let t0 = run_pcg(
            &problem,
            cfgb.nodes,
            &SolverConfig::reference(),
            cfgb.cost,
            FailureScript::none(),
        )
        .unwrap();
        let mut ovh = Vec::new();
        for strategy in [
            BackupStrategy::Minimal,
            BackupStrategy::MinimalConsecutive,
            BackupStrategy::FullBlock,
        ] {
            let mut cfg = SolverConfig::resilient(3);
            cfg.resilience.as_mut().unwrap().strategy = strategy;
            let res =
                run_pcg(&problem, cfgb.nodes, &cfg, cfgb.cost, FailureScript::none()).unwrap();
            assert!(res.converged);
            ovh.push(100.0 * (res.vtime / t0.vtime - 1.0));
        }
        println!(
            "{:<4} {:>15.1}% {:>15.1}% {:>15.1}%",
            format!("{id:?}"),
            ovh[0],
            ovh[1],
            ovh[2]
        );
        csv.push(format!(
            "placement,{id:?},{:.3},{:.3},{:.3}",
            ovh[0], ovh[1], ovh[2]
        ));
    }

    // ---- 2. exact LDLᵀ vs. ILU(0) reconstruction solver -----------------
    println!("\n[2] reconstruction inner solver (3 failures at center, rec time % of t0):");
    println!("{:<4} {:>14} {:>14}", "ID", "exact LDLᵀ", "ILU(0)+PCG");
    for &id in &cfgb.matrices {
        let problem = cfgb.problem(id);
        let reference = run_pcg(
            &problem,
            cfgb.nodes,
            &SolverConfig::reference(),
            cfgb.cost,
            FailureScript::none(),
        )
        .unwrap();
        let mut recs = Vec::new();
        for exact in [true, false] {
            let mut cfg = SolverConfig::resilient(3);
            cfg.resilience
                .as_mut()
                .unwrap()
                .recovery
                .exact_block_precond = exact;
            let res = run_failure_case(
                &cfgb,
                &problem,
                &cfg,
                3,
                FailLocation::Center,
                0.5,
                reference.iterations,
            );
            assert!(res.converged);
            recs.push(100.0 * res.vtime_recovery / reference.vtime);
        }
        println!(
            "{:<4} {:>13.2}% {:>13.2}%",
            format!("{id:?}"),
            recs[0],
            recs[1]
        );
        csv.push(format!("inner,{id:?},{:.4},{:.4}", recs[0], recs[1]));
    }

    // ---- 3. RCM reordering for the scattered pattern --------------------
    println!("\n[3] RCM reordering of the scattered M3' pattern (φ=3):");
    let a = sparsemat::gen::generate(PaperMatrix::M3, cfgb.scale);
    let part = BlockPartition::new(a.n_rows(), cfgb.nodes);
    let before = analysis::predict_overhead(&a, &part, 3, &BackupStrategy::Minimal, &cfgb.cost);
    let perm = sparsemat::order::rcm(&a);
    let a_rcm = a.permute_sym(&perm);
    let after = analysis::predict_overhead(&a_rcm, &part, 3, &BackupStrategy::Minimal, &cfgb.cost);
    println!(
        "    extras/iteration: {} natural → {} RCM ({:+.0}%)",
        before.total_extra_elems,
        after.total_extra_elems,
        100.0 * (after.total_extra_elems as f64 / before.total_extra_elems as f64 - 1.0)
    );
    for (label, mat) in [("natural", a), ("rcm", a_rcm)] {
        let problem = Problem::with_random_rhs(mat, 77);
        let t0 = run_pcg(
            &problem,
            cfgb.nodes,
            &SolverConfig::reference(),
            cfgb.cost,
            FailureScript::none(),
        )
        .unwrap();
        let res = run_pcg(
            &problem,
            cfgb.nodes,
            &SolverConfig::resilient(3),
            cfgb.cost,
            FailureScript::none(),
        )
        .unwrap();
        assert!(res.converged);
        let ovh = 100.0 * (res.vtime / t0.vtime - 1.0);
        println!(
            "    {label:>8}: undisturbed overhead {ovh:+.1}% (t0 {:.3} ms)",
            t0.vtime * 1e3
        );
        csv.push(format!("rcm,{label},{:.3},", ovh));
    }
    write_csv("ablation.csv", "ablation,case,v1,v2,v3", &csv);
}
