//! **Figure 3** — runtimes and relative overhead for the M8'
//! (audikw_1-class) matrix, failures at the center ranks: the densest band
//! of the test set. The paper observes superlinear growth of the
//! undisturbed overhead with the number of copies held, yet the smallest
//! relative overheads overall (~2.5% for three failures, ~10% for eight).

use esr_bench::figures::figure;
use esr_bench::FailLocation;
use sparsemat::gen::suite::PaperMatrix;

fn main() {
    figure(
        "fig3",
        "Figure 3 — M8' (audikw_1 analog), failures at center ranks",
        PaperMatrix::M8,
        FailLocation::Center,
    );
}
