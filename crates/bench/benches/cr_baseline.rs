//! **ESR vs. checkpoint/restart on the same engine** — the comparison
//! motivating the paper (Secs. 1.2, 2.2): C/R "imposes a usually
//! considerable runtime overhead due to continuously saving the state of
//! the solver", while ESR keeps only the search-direction copies that
//! mostly ride along with SpMV.
//!
//! Both protections are now *policies of the same `RecoveryEngine`*: the
//! identical PCG loop, cluster, matrices, and failure scenarios run under
//! `Protection::Esr` and `Protection::Checkpoint`, so every measured
//! difference is protection cost, not harness drift. C/R uses diskless
//! neighbour checkpointing on the same ring partners as ESR's Eqn. (5)
//! (the strongest practical C/R variant).

use esr_bench::{banner, write_csv, BenchConfig, FailLocation};
use esr_core::{run_pcg, CrConfig, Protection, SolverConfig};
use parcomm::FailureScript;

/// The ESR solver configuration with its protection swapped to periodic
/// neighbour checkpointing — everything else (policy, φ bookkeeping)
/// identical, so the two flavors differ only in the protection axis.
fn cr_solver(psi: usize, cr: &CrConfig) -> SolverConfig {
    let mut cfg = SolverConfig::resilient(psi);
    cfg.resilience = cfg
        .resilience
        .map(|r| r.with_protection(Protection::Checkpoint(cr.clone())));
    cfg
}

fn main() {
    let cfgb = BenchConfig::from_env();
    banner("Baseline — ESR vs. diskless checkpoint/restart", &cfgb);

    println!(
        "{:<4} | {:>11} {:>11} | {:>11} {:>11} {:>11} | {:>11} {:>11}",
        "ID",
        "ESR undis.",
        "ESR fail",
        "CR5 undis.",
        "CR20 undis.",
        "CR20 fail",
        "ESR rec",
        "CR20 redo"
    );
    let mut csv = Vec::new();
    for &id in &cfgb.matrices {
        let problem = cfgb.problem(id);
        let reference = run_pcg(
            &problem,
            cfgb.nodes,
            &SolverConfig::reference(),
            cfgb.cost,
            FailureScript::none(),
        )
        .unwrap();
        let t0 = reference.vtime;
        let psi = 3usize;
        let fail_at = ((reference.iterations / 2) as u64).max(1);
        let script = FailureScript::simultaneous(
            fail_at,
            FailLocation::Center.first_rank(cfgb.nodes),
            psi,
            cfgb.nodes,
        );
        let solver = SolverConfig::resilient(psi);

        // ESR.
        let esr_u = run_pcg(
            &problem,
            cfgb.nodes,
            &solver,
            cfgb.cost,
            FailureScript::none(),
        )
        .unwrap();
        let esr_f = run_pcg(&problem, cfgb.nodes, &solver, cfgb.cost, script.clone()).unwrap();
        assert!(esr_u.converged && esr_f.converged);

        // C/R with two checkpoint intervals; copies = ψ for equal
        // fault-tolerance level. Same entry point as ESR — the protection
        // flavor is a field of the solver configuration.
        let cr5 = cr_solver(psi, &CrConfig::default().with_interval(5).with_copies(psi));
        let cr20 = cr_solver(psi, &CrConfig::default().with_interval(20).with_copies(psi));
        let cr5_u = run_pcg(&problem, cfgb.nodes, &cr5, cfgb.cost, FailureScript::none()).unwrap();
        let cr20_u = run_pcg(
            &problem,
            cfgb.nodes,
            &cr20,
            cfgb.cost,
            FailureScript::none(),
        )
        .unwrap();
        let cr20_f = run_pcg(&problem, cfgb.nodes, &cr20, cfgb.cost, script).unwrap();
        assert!(cr5_u.converged && cr20_u.converged && cr20_f.converged);
        assert_eq!(cr20_f.recoveries, 1, "the rollback must have fired");

        let pct = |t: f64| 100.0 * (t / t0 - 1.0);
        println!(
            "{:<4} | {:>10.1}% {:>10.1}% | {:>10.1}% {:>10.1}% {:>10.1}% | {:>10.2}% {:>10.2}%",
            format!("{id:?}"),
            pct(esr_u.vtime),
            pct(esr_f.vtime),
            pct(cr5_u.vtime),
            pct(cr20_u.vtime),
            pct(cr20_f.vtime),
            100.0 * esr_f.vtime_recovery / t0,
            100.0 * (cr20_f.vtime - cr20_u.vtime) / t0,
        );
        csv.push(format!(
            "{id:?},{:.3},{:.3},{:.3},{:.3},{:.3},{:.4},{:.4}",
            pct(esr_u.vtime),
            pct(esr_f.vtime),
            pct(cr5_u.vtime),
            pct(cr20_u.vtime),
            pct(cr20_f.vtime),
            100.0 * esr_f.vtime_recovery / t0,
            100.0 * (cr20_f.vtime - cr20_u.vtime) / t0,
        ));
    }
    write_csv(
        "cr_baseline.csv",
        "id,esr_undisturbed_pct,esr_failure_pct,cr5_undisturbed_pct,cr20_undisturbed_pct,cr20_failure_pct,esr_recovery_pct,cr20_redo_pct",
        &csv,
    );
    println!("\n(ψ = 3 failures at 50% progress, center ranks; CR5/CR20 =");
    println!(" checkpoint every 5/20 iterations with ψ replicas; both flavors");
    println!(" run the same engine-backed PCG loop)");
}
