//! **ESR vs. checkpoint/restart** — the comparison motivating the paper
//! (Secs. 1.2, 2.2): C/R "imposes a usually considerable runtime overhead
//! due to continuously saving the state of the solver", while ESR keeps
//! only the search-direction copies that mostly ride along with SpMV.
//!
//! Both protections run on the same solver, cluster, matrices, and failure
//! scenarios; C/R uses diskless neighbour checkpointing with the same ring
//! partners as ESR's Eqn. (5) (the strongest practical C/R variant).

use esr_bench::{banner, write_csv, BenchConfig, FailLocation};
use esr_core::{run_checkpoint_restart, run_pcg, CrConfig, SolverConfig};
use parcomm::FailureScript;

fn main() {
    let cfgb = BenchConfig::from_env();
    banner("Baseline — ESR vs. diskless checkpoint/restart", &cfgb);

    println!(
        "{:<4} | {:>11} {:>11} | {:>11} {:>11} {:>11} | {:>11} {:>11}",
        "ID",
        "ESR undis.",
        "ESR fail",
        "CR5 undis.",
        "CR20 undis.",
        "CR20 fail",
        "ESR rec",
        "CR20 redo"
    );
    let mut csv = Vec::new();
    for &id in &cfgb.matrices {
        let problem = cfgb.problem(id);
        let reference = run_pcg(
            &problem,
            cfgb.nodes,
            &SolverConfig::reference(),
            cfgb.cost,
            FailureScript::none(),
        )
        .unwrap();
        let t0 = reference.vtime;
        let psi = 3usize;
        let fail_at = ((reference.iterations / 2) as u64).max(1);
        let script = FailureScript::simultaneous(
            fail_at,
            FailLocation::Center.first_rank(cfgb.nodes),
            psi,
            cfgb.nodes,
        );
        let solver = SolverConfig::resilient(psi);

        // ESR.
        let esr_u = run_pcg(
            &problem,
            cfgb.nodes,
            &solver,
            cfgb.cost,
            FailureScript::none(),
        )
        .unwrap();
        let esr_f = run_pcg(&problem, cfgb.nodes, &solver, cfgb.cost, script.clone()).unwrap();
        assert!(esr_u.converged && esr_f.converged);

        // C/R with two checkpoint intervals; copies = ψ for equal
        // fault-tolerance level.
        let cr5 = CrConfig {
            interval: 5,
            copies: psi,
        };
        let cr20 = CrConfig {
            interval: 20,
            copies: psi,
        };
        let cr5_u = run_checkpoint_restart(
            &problem,
            cfgb.nodes,
            &solver,
            &cr5,
            cfgb.cost,
            FailureScript::none(),
        )
        .unwrap();
        let cr20_u = run_checkpoint_restart(
            &problem,
            cfgb.nodes,
            &solver,
            &cr20,
            cfgb.cost,
            FailureScript::none(),
        )
        .unwrap();
        let cr20_f =
            run_checkpoint_restart(&problem, cfgb.nodes, &solver, &cr20, cfgb.cost, script)
                .unwrap();
        assert!(cr5_u.converged && cr20_u.converged && cr20_f.converged);

        let pct = |t: f64| 100.0 * (t / t0 - 1.0);
        println!(
            "{:<4} | {:>10.1}% {:>10.1}% | {:>10.1}% {:>10.1}% {:>10.1}% | {:>10.2}% {:>10.2}%",
            format!("{id:?}"),
            pct(esr_u.vtime),
            pct(esr_f.vtime),
            pct(cr5_u.vtime),
            pct(cr20_u.vtime),
            pct(cr20_f.vtime),
            100.0 * esr_f.vtime_recovery / t0,
            100.0 * (cr20_f.vtime - cr20_u.vtime) / t0,
        );
        csv.push(format!(
            "{id:?},{:.3},{:.3},{:.3},{:.3},{:.3},{:.4},{:.4}",
            pct(esr_u.vtime),
            pct(esr_f.vtime),
            pct(cr5_u.vtime),
            pct(cr20_u.vtime),
            pct(cr20_f.vtime),
            100.0 * esr_f.vtime_recovery / t0,
            100.0 * (cr20_f.vtime - cr20_u.vtime) / t0,
        ));
    }
    write_csv(
        "cr_baseline.csv",
        "id,esr_undisturbed_pct,esr_failure_pct,cr5_undisturbed_pct,cr20_undisturbed_pct,cr20_failure_pct,esr_recovery_pct,cr20_redo_pct",
        &csv,
    );
    println!("\n(ψ = 3 failures at 50% progress, center ranks; CR5/CR20 =");
    println!(" checkpoint every 5/20 iterations with ψ replicas)");
}
