//! **Sec. 4.2 / Sec. 5 analysis** — measured redundancy traffic against
//! the paper's theoretical bounds, per matrix and redundancy level:
//!
//! * lower bound `Σₖ maxᵢ|Rᶜᵢₖ|µ`, modeled overhead, and the coarse upper
//!   bound `φ(λmax + ⌈n/N⌉µ)`;
//! * the latency criterion of Sec. 5 (extras riding on natural traffic);
//! * the natural-multiplicity coverage that determines how much of the
//!   redundancy is free;
//! * cross-check: elements measured on the wire == predicted per iteration.

use esr_bench::{banner, write_csv, BenchConfig};
use esr_core::{analysis, run_pcg, BackupStrategy, SolverConfig};
use parcomm::{CommPhase, FailureScript};
use sparsemat::BlockPartition;

fn main() {
    let cfgb = BenchConfig::from_env();
    banner("Analysis — redundancy traffic vs. Sec. 4.2 bounds", &cfgb);
    println!(
        "{:<4} {:>3} | {:>11} {:>11} {:>11} | {:>12} {:>8} | {:>10} {:>9}",
        "ID",
        "φ",
        "lower [µs]",
        "model [µs]",
        "upper [µs]",
        "extras/iter",
        "lat-free",
        "measured",
        "cov m≥φ"
    );

    let mut csv = Vec::new();
    for &id in &cfgb.matrices {
        let problem = cfgb.problem(id);
        let a = &problem.a;
        let part = BlockPartition::new(a.n_rows(), cfgb.nodes);
        let pattern = sparsemat::analysis::analyze(a, &part);
        for phi in [1usize, 3, 8] {
            let pred =
                analysis::predict_overhead(a, &part, phi, &BackupStrategy::Minimal, &cfgb.cost);
            // Measure actual wire traffic in a short resilient run.
            let mut cfg = SolverConfig::resilient(phi);
            cfg.max_iter = 10_000;
            let res =
                run_pcg(&problem, cfgb.nodes, &cfg, cfgb.cost, FailureScript::none()).unwrap();
            assert!(res.converged);
            let measured_per_iter =
                res.stats.elems(CommPhase::Redundancy) as f64 / res.iterations as f64;
            assert_eq!(
                measured_per_iter as usize, pred.total_extra_elems,
                "{id:?} φ={phi}: model and wire disagree"
            );
            println!(
                "{:<4} {:>3} | {:>11.3} {:>11.3} {:>11.3} | {:>12} {:>8} | {:>10.0} {:>8.0}%",
                format!("{id:?}"),
                phi,
                pred.lower_bound * 1e6,
                pred.modeled * 1e6,
                pred.upper_bound * 1e6,
                pred.total_extra_elems,
                pred.latency_free,
                measured_per_iter,
                100.0 * pattern.coverage[phi - 1],
            );
            csv.push(format!(
                "{id:?},{phi},{:.9},{:.9},{:.9},{},{},{:.1},{:.4}",
                pred.lower_bound,
                pred.modeled,
                pred.upper_bound,
                pred.total_extra_elems,
                pred.latency_free,
                measured_per_iter,
                pattern.coverage[phi - 1]
            ));
        }
    }
    write_csv(
        "analysis.csv",
        "id,phi,lower_s,modeled_s,upper_s,extras_per_iter,latency_free,measured_per_iter,coverage",
        &csv,
    );
    println!("\n(bounds: 0 ≤ lower ≤ modeled ≤ upper = φ(λ + ⌈n/N⌉µ), Sec. 4.2)");
}
