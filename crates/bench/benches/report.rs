//! Machine-readable perf report: `BENCH_comm.json` + `BENCH_pcg.json` +
//! `BENCH_pipecg.json` + `BENCH_policy_matrix.json`.
//!
//! Establishes the performance trajectory of the communication hot path so
//! this and every future PR has a number attached. Three artifacts land in
//! `target/esr-results/` (override with `ESR_RESULTS_DIR`):
//!
//! * **`BENCH_comm.json`** — the all-reduce microbenchmark across cluster
//!   sizes: virtual time per call, communication rounds on the critical
//!   path, and message/element counts.
//! * **`BENCH_pcg.json`** — reference PCG (failure-free) across cluster
//!   sizes: virtual time per iteration, all-reduces per iteration, the
//!   reduction-phase traffic, and the exposed (send + stall) communication
//!   time split.
//! * **`BENCH_pipecg.json`** — pipelined vs blocking PCG: vtime per
//!   iteration and the exposed/hidden reduction time per iteration. At
//!   N ≥ 16 the pipelined solver's exposed reduction time must come in
//!   strictly below blocking PCG's (asserted here, so CI gates on it).
//! * **`BENCH_policy_matrix.json`** — the full protection × policy ×
//!   solver grid through the shared `RecoveryEngine`: for every cell of
//!   {ESR, checkpoint} × {replace, spares(1), shrink} × {PCG, pipelined
//!   PCG, BiCGSTAB}, recovery virtual time, reconstruction traffic
//!   (Recovery-phase messages/elements), retired-node count, and
//!   post-recovery iterations for the same ψ = 2 failure event at N ≤ 16.
//!   Checkpoint cells additionally report the rolled-back iteration count
//!   and each solver carries the steady-state checkpoint overhead
//!   (failure-free C/R vtime vs. the unprotected reference). Schema v3
//!   adds per-cell log-bucket quantiles (message sizes, per-phase wait
//!   times) and the per-substep recovery timelines.
//! * **`BENCH_scale.json`** — the event-driven runtime's scaling sweep:
//!   the same fixed-work problem (M1 at the configured scale) solved by
//!   resilient PCG with one injected failure across cluster sizes
//!   N ∈ {16, 64, 128, 256, 1024}. Reports virtual time and host
//!   wall-clock per size, and asserts the N = 1024 solve finishes within
//!   its wall-clock budget (60 s) — the capability the scheduler refactor
//!   bought; the old thread-per-node runtime could not run N = 1024 at
//!   all (1024 free-running OS threads on a 2-core host).
//! * **`BENCH_trace.json` + `ESR_pcg_n16_failure.trace.json`** (only with
//!   `--features trace`) — a traced N = 16 single-failure solve: the
//!   Chrome-trace/Perfetto artifact plus an event census and the
//!   virtual-time critical path attributed by phase/rank/scope.
//! * **`BENCH_kernels.json`** — host wall-clock microbench of the
//!   sequential kernel layer: whole-matrix SpMV (optimized vs a live
//!   replica of the pre-overhaul naive kernel, bitwise cross-checked),
//!   the fused distributed local product vs the old two-pass form, the
//!   block-LDLᵀ in-place solve vs the allocate-and-return one, and ghost
//!   pack/unpack, for every configured paper matrix — plus the
//!   `paper_regime` acceptance entry: the largest matrix regenerated at
//!   `ESR_KERNEL_SCALE` (default 0.15, DRAM-resident; `0` skips it)
//!   compared against the embedded pre-PR baseline
//!   ([`BASELINE_NAIVE_SPMV_DRAM_GFLOPS`]).
//!
//! `BENCH_comm`/`BENCH_pcg` embed the pre-overhaul numbers
//! (reduce-to-root + broadcast all-reduce, 3 reductions per PCG iteration)
//! measured on the same machine/model as `baseline`, so the before/after
//! is part of the artifact.
//!
//! Knobs: `ESR_REPORT_NODES` (comma list, default `4,8,13,16,32,64`),
//! `ESR_SCALE_REPORT_NODES` (the scaling sweep's sizes, default
//! `16,64,128,256,1024`) and the usual `ESR_SCALE`. CI runs this at small
//! N as a smoke gate (the scaling sweep always includes N = 1024 — that
//! *is* the smoke test for the scheduler).

use std::time::Instant;

use esr_bench::{write_json, BenchConfig};
use esr_core::localmat::LocalMatrix;
use esr_core::{run_pcg, run_pipecg, ExperimentResult, RecoveryPolicy, SolverConfig};
use parcomm::comm::ReduceOp;
use parcomm::{Cluster, ClusterConfig, CommPhase, FailureScript};
use precond::SparseLdl;
use sparsemat::gen::suite::{self, PaperMatrix};
use sparsemat::{BlockPartition, Csr};

/// Pre-PR reference numbers (reduce+bcast all-reduce, 3 reductions/iter),
/// captured with the default cost model before the overhaul. Virtual times
/// are deterministic, so these are exact, not sampled.
/// (nodes, vtime_per_call, msgs_per_call)
const BASELINE_COMM: &[(usize, f64, f64)] = &[
    (4, 4.006e-6, 6.0),
    (8, 6.010e-6, 14.0),
    (13, 7.011e-6, 24.0),
    (16, 8.013e-6, 30.0),
    (32, 1.002e-5, 62.0),
    (64, 1.202e-5, 126.0),
];

/// (nodes, iterations, vtime_per_iter) for reference PCG on M1 at the
/// default scale; allreduces/iter was 3 by construction.
const BASELINE_PCG: &[(usize, usize, f64)] = &[
    (4, 25, 1.2635e-4),
    (8, 31, 5.8778e-5),
    (13, 39, 3.5105e-5),
    (16, 43, 2.9346e-5),
];

/// PR 5 reference-PCG timings (M1, default cost model, default scale),
/// captured before any instrumentation layer existed and still exact
/// through PR 7. The `audit` and `trace` features must be zero-cost when
/// compiled **off**: every instrumentation point is behind its
/// `#[cfg(feature = ...)]` (or reads the clock without advancing it), so a
/// build with both features off must reproduce these *bitwise* — equality
/// of `f64::to_bits`, not a tolerance. Virtual times are deterministic, so
/// any drift is a real hot-path change.
const INSTR_OFF_PCG: &[(usize, usize, f64)] = &[
    (4, 25, 1.2476338399999983e-4),
    (8, 31, 5.1020322580645216e-5),
    (13, 39, 2.6066512820512788e-5),
    (16, 43, 1.55297674418605e-5),
];

/// Pre-PR naive SpMV on the M8 analog in the DRAM-resident regime
/// (`ESR_KERNEL_SCALE = 0.15`: 10.7 M nnz, a 171 MB matrix footprint with
/// `usize` indices — several times any L3), measured at commit 189077d on
/// the dev container (1-core 2.1 GHz Xeon, ~9.5 GB/s stream bandwidth).
/// In that regime the naive kernel is memory-bound on its 16.6 B/element
/// traffic (8 B value + 8 B `usize` column index) and the number is stable
/// run-to-run (0.92–0.93 GFLOP/s over repeated measurements), unlike the
/// cache-resident small-scale numbers, which swing ±25% with host
/// contention. This is the embedded baseline the ≥ 2× SpMV acceptance gate
/// compares against; the live-measured naive replica (same algorithm,
/// re-run every invocation) is reported alongside as the
/// hardware-independent comparator.
const BASELINE_NAIVE_SPMV_DRAM_GFLOPS: f64 = 0.93;

fn report_nodes() -> Vec<usize> {
    match std::env::var("ESR_REPORT_NODES") {
        Ok(s) if !s.trim().is_empty() => s
            .split(',')
            .map(|t| t.trim().parse().expect("bad ESR_REPORT_NODES"))
            .collect(),
        _ => vec![4, 8, 13, 16, 32, 64],
    }
}

fn json_f(x: f64) -> String {
    if x.is_finite() {
        format!("{x:e}")
    } else {
        "null".into()
    }
}

fn comm_report(cfgb: &BenchConfig, nodes: &[usize]) -> String {
    const CALLS: usize = 100;
    let mut cases = Vec::new();
    for &n in nodes {
        let wall = Instant::now();
        let out = Cluster::run(ClusterConfig::new(n).with_cost(cfgb.cost), move |ctx| {
            ctx.reset_metrics();
            for i in 0..CALLS {
                ctx.allreduce_vec(ReduceOp::Sum, vec![i as f64, 1.0]);
            }
            (
                ctx.vtime(),
                ctx.stats().allreduces(),
                ctx.stats().allreduce_rounds(),
                ctx.stats().total_msgs(),
                ctx.stats().total_elems(),
            )
        });
        let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
        let vtime = out.iter().map(|o| o.0).fold(0.0, f64::max);
        let rounds_max = out.iter().map(|o| o.2 / o.1).max().unwrap();
        let msgs: u64 = out.iter().map(|o| o.3).sum();
        let elems: u64 = out.iter().map(|o| o.4).sum();
        let baseline = BASELINE_COMM
            .iter()
            .find(|b| b.0 == n)
            .map(|&(_, vt, msgs)| {
                format!(
                    r#", "baseline_reduce_bcast": {{"vtime_per_call": {}, "msgs_per_call": {}, "rounds": {}}}"#,
                    json_f(vt),
                    json_f(msgs),
                    2 * (usize::BITS - (n - 1).leading_zeros())
                )
            })
            .unwrap_or_default();
        cases.push(format!(
            r#"    {{"nodes": {n}, "calls": {CALLS}, "vtime_per_call": {}, "rounds_per_call": {rounds_max}, "msgs_per_call": {}, "elems_per_call": {}, "wall_ms": {}{baseline}}}"#,
            json_f(vtime / CALLS as f64),
            json_f(msgs as f64 / CALLS as f64),
            json_f(elems as f64 / CALLS as f64),
            json_f(wall_ms),
        ));
        println!(
            "comm N={n:3}  vtime/call {:.3e}s  rounds {rounds_max}  msgs/call {:.1}",
            vtime / CALLS as f64,
            msgs as f64 / CALLS as f64
        );
    }
    format!(
        "{{\n  \"schema\": \"esr-bench/comm/v1\",\n  \"collective\": \"allreduce_vec(len=2)\",\n  \"algorithm\": \"recursive-doubling (fold-in/out on non-pow2)\",\n  \"cost_model\": {{\"lambda\": {}, \"mu\": {}, \"gamma\": {}}},\n  \"cases\": [\n{}\n  ]\n}}\n",
        json_f(cfgb.cost.lambda),
        json_f(cfgb.cost.mu),
        json_f(cfgb.cost.gamma),
        cases.join(",\n")
    )
}

/// Whether the instrumentation-off bitwise guard applies: both observation
/// features must be compiled out and the run must use the baseline
/// configuration.
fn instr_guard_applicable(cfgb: &BenchConfig) -> bool {
    let d = parcomm::CostModel::default();
    cfg!(not(feature = "audit"))
        && cfg!(not(feature = "trace"))
        && cfgb.scale == 0.01
        && cfgb.cost.lambda == d.lambda
        && cfgb.cost.mu == d.mu
        && cfgb.cost.gamma == d.gamma
}

fn pcg_report(cfgb: &BenchConfig, nodes: &[usize]) -> (String, Vec<(usize, ExperimentResult)>) {
    let guard = instr_guard_applicable(cfgb);
    let mut guarded = 0usize;
    let mut cases = Vec::new();
    let mut results = Vec::new();
    for &n in nodes {
        let problem = cfgb.problem(PaperMatrix::M1);
        let r = run_pcg(
            &problem,
            n,
            &SolverConfig::reference(),
            cfgb.cost,
            FailureScript::none(),
        )
        .unwrap();
        assert!(r.converged, "reference PCG must converge (N={n})");
        let iters = r.iterations as f64;
        if guard {
            if let Some(&(_, bi, bvt)) = INSTR_OFF_PCG.iter().find(|b| b.0 == n) {
                let vt = r.vtime / iters;
                assert_eq!(
                    r.iterations as usize, bi,
                    "N={n}: iteration count drifted from the instrumentation-off baseline"
                );
                assert_eq!(
                    vt.to_bits(),
                    bvt.to_bits(),
                    "N={n}: vtime/iter {vt:e} != instrumentation-off baseline {bvt:e} — \
                     the audit/trace features must be zero-cost when compiled out"
                );
                guarded += 1;
            }
        }
        // Every rank issues the same collective sequence, so calls/iter is
        // uniform; rounds differ per rank (folded-out ranks take only 2 on
        // non-power-of-two sizes), so report the critical-path maximum.
        let ar_per_iter = r.per_node[0].stats.allreduces() as f64 / iters;
        let rounds_per_ar = r
            .per_node
            .iter()
            .map(|o| o.stats.allreduce_rounds() as f64 / o.stats.allreduces() as f64)
            .fold(0.0, f64::max);
        let baseline = BASELINE_PCG
            .iter()
            .find(|b| b.0 == n)
            .map(|&(_, bi, bvt)| {
                format!(
                    r#", "baseline_reduce_bcast": {{"iterations": {bi}, "vtime_per_iter": {}, "allreduces_per_iter": 3.0}}"#,
                    json_f(bvt)
                )
            })
            .unwrap_or_default();
        cases.push(format!(
            r#"    {{"nodes": {n}, "iterations": {}, "vtime_total": {}, "vtime_per_iter": {}, "allreduces_per_iter": {}, "rounds_per_allreduce": {}, "reduction_msgs": {}, "reduction_elems": {}, "total_msgs": {}, "total_elems": {}, "exposed_reduction_vtime_per_iter": {}, "reduction_wait_vtime_per_iter": {}, "wall_ms": {}{baseline}}}"#,
            r.iterations,
            json_f(r.vtime),
            json_f(r.vtime / iters),
            json_f(ar_per_iter),
            json_f(rounds_per_ar),
            r.stats.msgs(CommPhase::Reduction),
            r.stats.elems(CommPhase::Reduction),
            r.stats.total_msgs(),
            r.stats.total_elems(),
            json_f(r.exposed_vtime_per_iter(CommPhase::Reduction)),
            json_f(r.wait_vtime_per_iter(CommPhase::Reduction)),
            json_f(r.wall.as_secs_f64() * 1e3),
        ));
        println!(
            "pcg  N={n:3}  iters {:3}  vtime/iter {:.4e}s  allreduces/iter {:.2}  rounds/allreduce {:.1}",
            r.iterations,
            r.vtime / iters,
            ar_per_iter,
            rounds_per_ar
        );
        results.push((n, r));
    }
    if guard {
        println!("instrumentation-off bitwise guard: {guarded} case(s) matched the pinned baselines exactly");
    }
    let json = format!(
        "{{\n  \"schema\": \"esr-bench/pcg/v1\",\n  \"matrix\": \"M1\",\n  \"scale\": {},\n  \"solver\": \"reference PCG, fused rr+rz reduction (2 allreduces/iter)\",\n  \"instrumentation_zero_cost\": {{\"audit_feature_compiled\": {}, \"trace_feature_compiled\": {}, \"bitwise_guard_cases\": {guarded}}},\n  \"cost_model\": {{\"lambda\": {}, \"mu\": {}, \"gamma\": {}}},\n  \"cases\": [\n{}\n  ]\n}}\n",
        json_f(cfgb.scale),
        cfg!(feature = "audit"),
        cfg!(feature = "trace"),
        json_f(cfgb.cost.lambda),
        json_f(cfgb.cost.mu),
        json_f(cfgb.cost.gamma),
        cases.join(",\n")
    );
    (json, results)
}

/// The pipelined-vs-blocking comparison; `blocking_results` are the solves
/// `pcg_report` already ran on the identical configuration (reused — the
/// large-N blocking solves dominate the harness's wall time).
fn pipecg_report(
    cfgb: &BenchConfig,
    nodes: &[usize],
    blocking_results: &[(usize, ExperimentResult)],
) -> String {
    let mut cases = Vec::new();
    for &n in nodes {
        let problem = cfgb.problem(PaperMatrix::M1);
        let blocking = &blocking_results
            .iter()
            .find(|(bn, _)| *bn == n)
            .expect("pcg_report covers the same node list")
            .1;
        let piped = run_pipecg(
            &problem,
            n,
            &SolverConfig::reference(),
            cfgb.cost,
            FailureScript::none(),
        )
        .unwrap();
        assert!(piped.converged, "pipelined PCG must converge (N={n})");
        let eb = blocking.exposed_vtime_per_iter(CommPhase::Reduction);
        let ep = piped.exposed_vtime_per_iter(CommPhase::Reduction);
        let hidden = piped.hidden_vtime_per_iter(CommPhase::Reduction);
        // The latency-hiding contract of the ISSUE's acceptance criteria:
        // at N ≥ 16 the pipelined solver exposes strictly less reduction
        // time per iteration than the blocking solver.
        if n >= 16 {
            assert!(
                ep < eb,
                "N={n}: pipelined exposed reduction {ep:.3e} !< blocking {eb:.3e}"
            );
        }
        cases.push(format!(
            r#"    {{"nodes": {n}, "pipelined": {{"iterations": {}, "vtime_per_iter": {}, "exposed_reduction_vtime_per_iter": {}, "hidden_reduction_vtime_per_iter": {}, "allreduces_per_iter": {}}}, "blocking": {{"iterations": {}, "vtime_per_iter": {}, "exposed_reduction_vtime_per_iter": {}, "allreduces_per_iter": {}}}, "exposed_reduction_ratio": {}}}"#,
            piped.iterations,
            json_f(piped.vtime / piped.iterations as f64),
            json_f(ep),
            json_f(hidden),
            json_f(piped.per_node[0].stats.allreduces() as f64 / piped.iterations as f64),
            blocking.iterations,
            json_f(blocking.vtime / blocking.iterations as f64),
            json_f(eb),
            json_f(blocking.per_node[0].stats.allreduces() as f64 / blocking.iterations as f64),
            json_f(ep / eb),
        ));
        println!(
            "pipecg N={n:3}  iters {:3}  vtime/iter {:.4e}s  exposed-red/iter {:.3e}s (blocking {:.3e}s)  hidden/iter {:.3e}s",
            piped.iterations,
            piped.vtime / piped.iterations as f64,
            ep,
            eb,
            hidden
        );
    }
    format!(
        "{{\n  \"schema\": \"esr-bench/pipecg/v1\",\n  \"matrix\": \"M1\",\n  \"scale\": {},\n  \"solver\": \"pipelined PCG (1 overlapped iallreduce/iter) vs blocking PCG (2 allreduces/iter)\",\n  \"cost_model\": {{\"lambda\": {}, \"mu\": {}, \"gamma\": {}}},\n  \"cases\": [\n{}\n  ]\n}}\n",
        json_f(cfgb.scale),
        json_f(cfgb.cost.lambda),
        json_f(cfgb.cost.mu),
        json_f(cfgb.cost.gamma),
        cases.join(",\n")
    )
}

/// The protection × policy × solver grid (`BENCH_policy_matrix.json`):
/// the same ψ-failure event handled by both protection flavors — exact
/// state reconstruction and periodic diskless checkpointing — under every
/// [`RecoveryPolicy`] — in-place replacement, an *undersized* spare pool
/// (1 spare for ψ = 2, so one subdomain is replaced and one adopted in a
/// mixed event), and pure shrink — on every `RecoveryEngine`-backed
/// solver (blocking PCG, pipelined PCG, BiCGSTAB). Reports per cell the
/// recovery cost (virtual time, Recovery-phase reconstruction traffic),
/// retired-node count, and the post-recovery iteration count; checkpoint
/// cells add the rolled-back iteration count (`fail_at mod interval` —
/// re-executed work ESR never pays), and each solver reports the
/// steady-state checkpoint overhead of the failure-free C/R run against
/// the unprotected reference.
fn policy_matrix_report(cfgb: &BenchConfig, nodes: &[usize]) -> String {
    const PSI: usize = 2;
    const PHI: usize = 2;
    const CR_INTERVAL: usize = 4;
    type Runner = fn(
        &esr_core::Problem,
        usize,
        &SolverConfig,
        parcomm::CostModel,
        FailureScript,
    ) -> Result<ExperimentResult, esr_core::ConfigError>;
    let solvers: [(&str, Runner); 3] = [
        ("pcg", run_pcg as Runner),
        ("pipecg", esr_core::run_pipecg as Runner),
        ("bicgstab", esr_core::run_bicgstab as Runner),
    ];
    let policies: [(&str, RecoveryPolicy); 3] = [
        ("replace", RecoveryPolicy::Replace),
        ("spares(1)", RecoveryPolicy::Spares(1)),
        ("shrink", RecoveryPolicy::Shrink),
    ];
    let mut cases = Vec::new();
    for &n in nodes.iter().filter(|&&n| (4..=16).contains(&n)) {
        let problem = cfgb.problem(PaperMatrix::M1);
        let mut solver_rows = Vec::new();
        for (sname, runner) in solvers {
            // Each solver's failure is injected at half of its own
            // failure-free progress.
            let reference = runner(
                &problem,
                n,
                &SolverConfig::reference(),
                cfgb.cost,
                FailureScript::none(),
            )
            .unwrap();
            assert!(reference.converged, "{sname} reference (N={n})");
            let fail_at = (reference.iterations as u64 / 2).max(1);
            let cr = esr_core::CrConfig::default()
                .with_interval(CR_INTERVAL)
                .with_copies(PSI);
            // Steady-state checkpoint cost: the failure-free C/R run pays
            // the periodic deposits but never rolls back, so its vtime
            // excess over the unprotected reference is pure protection
            // overhead (the quantity paper Sec. 2.2 argues against).
            let cr_clean_cfg = {
                let mut c = SolverConfig::resilient(PHI);
                c.resilience = c
                    .resilience
                    .map(|r| r.with_protection(esr_core::Protection::Checkpoint(cr.clone())));
                c
            };
            let cr_clean =
                runner(&problem, n, &cr_clean_cfg, cfgb.cost, FailureScript::none()).unwrap();
            assert!(cr_clean.converged, "{sname} clean C/R (N={n})");
            let ckpt_overhead_pct = 100.0 * (cr_clean.vtime / reference.vtime - 1.0);
            let mut rows = Vec::new();
            for (label, policy) in policies {
                for prot in ["esr", "checkpoint"] {
                    let mut cfg = SolverConfig::resilient_with_policy(PHI, policy);
                    if prot == "checkpoint" {
                        cfg.resilience = cfg.resilience.map(|r| {
                            r.with_protection(esr_core::Protection::Checkpoint(cr.clone()))
                        });
                    }
                    let script = FailureScript::simultaneous(fail_at, n / 2, PSI, n);
                    let r = runner(&problem, n, &cfg, cfgb.cost, script).unwrap();
                    assert!(
                        r.converged,
                        "{sname} × {label} × {prot} must converge (N={n})"
                    );
                    let post = r.iterations as u64 - fail_at;
                    // Deposits land at multiples of the interval, so the
                    // rollback re-executes `fail_at mod interval` iterations.
                    let rolled_back = if prot == "checkpoint" {
                        format!(
                            r#", "rolled_back_iterations": {}"#,
                            fail_at as usize % CR_INTERVAL
                        )
                    } else {
                        String::new()
                    };
                    // Schema v3: deterministic log-bucket quantiles of the
                    // message-size and per-phase wait-time distributions
                    // (cluster-merged), plus the per-substep virtual-time
                    // timeline of each completed recovery.
                    let ms = r.stats.msg_size_hist();
                    let waits = CommPhase::ALL
                        .iter()
                        .map(|&p| (p, r.stats.wait_hist(p)))
                        .filter(|(_, h)| h.count() > 0)
                        .map(|(p, h)| {
                            format!(
                                r#""{}": {{"count": {}, "p50": {}, "p99": {}}}"#,
                                p.name(),
                                h.count(),
                                json_f(h.p50()),
                                json_f(h.p99())
                            )
                        })
                        .collect::<Vec<_>>()
                        .join(", ");
                    let substeps = r
                        .recovery_timelines
                        .iter()
                        .map(|tl| {
                            let segs = tl
                                .segments
                                .iter()
                                .map(|s| {
                                    format!(
                                        r#"{{"attempt": {}, "label": "{}", "vtime": {}}}"#,
                                        s.attempt,
                                        s.label,
                                        json_f(s.vtime)
                                    )
                                })
                                .collect::<Vec<_>>()
                                .join(", ");
                            format!(
                                r#"{{"iteration": {}, "flavor": "{}", "total_vtime": {}, "segments": [{segs}]}}"#,
                                tl.iteration,
                                tl.flavor,
                                json_f(tl.total_vtime())
                            )
                        })
                        .collect::<Vec<_>>()
                        .join(", ");
                    rows.push(format!(
                        r#"        {{"policy": "{label}", "protection": "{prot}", "iterations": {}, "post_recovery_iterations": {post}, "vtime_recovery": {}, "vtime_total": {}, "retired_nodes": {}, "recovery_msgs": {}, "recovery_elems": {}{rolled_back}, "msg_size_elems": {{"count": {}, "p50": {}, "p99": {}}}, "wait_vtime_quantiles": {{{waits}}}, "recovery_substeps": [{substeps}]}}"#,
                        r.iterations,
                        json_f(r.vtime_recovery),
                        json_f(r.vtime),
                        r.retired_nodes(),
                        r.stats.msgs(CommPhase::Recovery),
                        r.stats.elems(CommPhase::Recovery),
                        ms.count(),
                        json_f(ms.p50()),
                        json_f(ms.p99()),
                    ));
                    println!(
                        "matrix N={n:3} {sname:8} {label:10} {prot:10}  iters {:3} (post-fail {post:3})  t_rec {:.3e}s  retired {}",
                        r.iterations,
                        r.vtime_recovery,
                        r.retired_nodes()
                    );
                }
            }
            solver_rows.push(format!(
                "      {{\"solver\": \"{sname}\", \"reference_iterations\": {}, \"fail_at_iteration\": {fail_at}, \"checkpoint\": {{\"interval\": {CR_INTERVAL}, \"copies\": {PSI}, \"clean_vtime_total\": {}, \"steady_state_overhead_pct\": {}}}, \"cells\": [\n{}\n      ]}}",
                reference.iterations,
                json_f(cr_clean.vtime),
                json_f(ckpt_overhead_pct),
                rows.join(",\n")
            ));
        }
        cases.push(format!(
            "    {{\"nodes\": {n}, \"psi\": {PSI}, \"phi\": {PHI}, \"solvers\": [\n{}\n    ]}}",
            solver_rows.join(",\n")
        ));
    }
    format!(
        "{{\n  \"schema\": \"esr-bench/policy-matrix/v3\",\n  \"matrix\": \"M1\",\n  \"scale\": {},\n  \"scenario\": \"psi=2 contiguous failures at N/2, injected at 50% of each solver's reference progress; protections: esr (exact reconstruction) and checkpoint (diskless neighbour C/R, interval 4, psi replicas); v3 adds log-bucket msg-size/wait quantiles and per-substep recovery timelines per cell\",\n  \"cost_model\": {{\"lambda\": {}, \"mu\": {}, \"gamma\": {}}},\n  \"cases\": [\n{}\n  ]\n}}\n",
        json_f(cfgb.scale),
        json_f(cfgb.cost.lambda),
        json_f(cfgb.cost.mu),
        json_f(cfgb.cost.gamma),
        cases.join(",\n")
    )
}

/// Wall-clock budget for the N = 1024 cell of the scaling sweep. The
/// acceptance bar of the event-driven-runtime refactor: a 1024-node
/// resilient PCG solve with one injected failure, on a laptop-class host.
const SCALE_WALL_BUDGET_S: f64 = 60.0;

fn scale_nodes() -> Vec<usize> {
    match std::env::var("ESR_SCALE_REPORT_NODES") {
        Ok(s) if !s.trim().is_empty() => s
            .split(',')
            .map(|t| t.trim().parse().expect("bad ESR_SCALE_REPORT_NODES"))
            .collect(),
        _ => vec![16, 64, 128, 256, 1024],
    }
}

/// The scaling sweep (`BENCH_scale.json`): fixed work — the same M1
/// system at the configured scale — solved by resilient PCG (φ = 1) with
/// one failure injected at rank N/2, across cluster sizes up to the
/// paper-scale N = 128 and beyond to N = 1024. Virtual time measures the
/// simulated cluster (strong scaling under the BSP cost model); wall
/// time measures the simulator itself — the scheduler dispatches one
/// node at a time, so wall cost grows with total event count, not with
/// host-thread contention.
fn scale_report(cfgb: &BenchConfig, nodes: &[usize]) -> String {
    // A fixed early iteration keeps the failure inside every solve
    // (iteration counts grow with N as the block-Jacobi blocks shrink,
    // so any later choice could fall past convergence at small N).
    const FAIL_AT: u64 = 8;
    let problem = cfgb.problem(PaperMatrix::M1);
    let n_rows = problem.n();
    let mut cases = Vec::new();
    for &n in nodes {
        let script = FailureScript::simultaneous(FAIL_AT, n / 2, 1, n);
        let r = run_pcg(&problem, n, &SolverConfig::resilient(1), cfgb.cost, script).unwrap();
        assert!(r.converged, "scaling sweep solve must converge (N={n})");
        assert_eq!(r.recoveries, 1, "exactly one recovery expected (N={n})");
        let wall_s = r.wall.as_secs_f64();
        if n >= 1024 {
            assert!(
                wall_s < SCALE_WALL_BUDGET_S,
                "N={n}: wall-clock {wall_s:.1}s exceeds the {SCALE_WALL_BUDGET_S:.0}s budget \
                 — the event-driven scheduler has regressed"
            );
        }
        cases.push(format!(
            r#"    {{"nodes": {n}, "iterations": {}, "vtime_total": {}, "vtime_recovery": {}, "total_msgs": {}, "total_elems": {}, "wall_s": {}}}"#,
            r.iterations,
            json_f(r.vtime),
            json_f(r.vtime_recovery),
            r.stats.total_msgs(),
            r.stats.total_elems(),
            json_f(wall_s),
        ));
        println!(
            "scale N={n:4}  iters {:3}  vtime {:.4e}s  t_rec {:.3e}s  msgs {:8}  wall {:.2}s",
            r.iterations,
            r.vtime,
            r.vtime_recovery,
            r.stats.total_msgs(),
            wall_s
        );
    }
    format!(
        "{{\n  \"schema\": \"esr-bench/scale/v1\",\n  \"matrix\": \"M1\",\n  \"scale\": {},\n  \"rows\": {n_rows},\n  \"scenario\": \"fixed-work resilient PCG (phi=1), one failure at rank N/2 iteration 8; wall budget {SCALE_WALL_BUDGET_S}s at N=1024\",\n  \"cost_model\": {{\"lambda\": {}, \"mu\": {}, \"gamma\": {}}},\n  \"cases\": [\n{}\n  ]\n}}\n",
        json_f(cfgb.scale),
        json_f(cfgb.cost.lambda),
        json_f(cfgb.cost.mu),
        json_f(cfgb.cost.gamma),
        cases.join(",\n")
    )
}

/// The trace artifact pair (`--features trace` builds only): a resilient
/// N = 16 PCG solve with one injected failure, exported as (a) a
/// Perfetto-loadable Chrome-trace JSON (`about://tracing` / ui.perfetto.dev
/// both open it) and (b) a `BENCH_trace.json` summary with the event
/// census and the virtual-time critical path attributed by phase, rank,
/// and enclosing scope. Both are derived from the same validated
/// [`parcomm::ClusterTrace`], so CI loading this artifact is also a
/// schema gate.
#[cfg(feature = "trace")]
fn trace_report(cfgb: &BenchConfig) -> (String, String) {
    const N: usize = 16;
    let problem = cfgb.problem(PaperMatrix::M1);
    let reference = run_pcg(
        &problem,
        N,
        &SolverConfig::reference(),
        cfgb.cost,
        FailureScript::none(),
    )
    .unwrap();
    let fail_at = (reference.iterations as u64 / 2).max(1);
    let r = run_pcg(
        &problem,
        N,
        &SolverConfig::resilient(1),
        cfgb.cost,
        FailureScript::simultaneous(fail_at, N / 2, 1, N),
    )
    .unwrap();
    assert!(r.converged, "traced N={N} single-failure PCG must converge");
    assert_eq!(r.recoveries, 1, "exactly one recovery event expected");
    r.trace.validate().expect("trace must be well-formed");
    let chrome = r.trace.chrome_trace_json();
    let chrome_events =
        parcomm::trace::validate_chrome_trace(&chrome).expect("chrome trace JSON must validate");
    let cp = r.trace.critical_path();
    let by_phase = cp
        .by_phase
        .iter()
        .map(|(p, t)| format!(r#""{}": {}"#, p.name(), json_f(*t)))
        .collect::<Vec<_>>()
        .join(", ");
    let by_rank = cp
        .by_rank
        .iter()
        .map(|(rk, t)| format!(r#"{{"rank": {rk}, "vtime": {}}}"#, json_f(*t)))
        .collect::<Vec<_>>()
        .join(", ");
    let top_scopes = cp
        .by_scope
        .iter()
        .take(8)
        .map(|(s, t)| format!(r#"{{"scope": "{s}", "vtime": {}}}"#, json_f(*t)))
        .collect::<Vec<_>>()
        .join(", ");
    let per_rank_events = r
        .trace
        .nodes
        .iter()
        .map(|nt| nt.events.len().to_string())
        .collect::<Vec<_>>()
        .join(", ");
    println!(
        "trace N={N}  events {}  chrome-events {chrome_events}  critical path {:.4e}s (vtime {:.4e}s)  steps {}",
        r.trace.total_events(),
        cp.total,
        r.vtime,
        cp.steps.len()
    );
    let summary = format!(
        "{{\n  \"schema\": \"esr-bench/trace/v1\",\n  \"matrix\": \"M1\",\n  \"scale\": {},\n  \"scenario\": \"resilient PCG (phi=1), N={N}, one failure at rank {} iteration {fail_at}\",\n  \"artifact\": \"ESR_pcg_n16_failure.trace.json\",\n  \"events_total\": {},\n  \"events_per_rank\": [{per_rank_events}],\n  \"chrome_events\": {chrome_events},\n  \"iterations\": {},\n  \"vtime_total\": {},\n  \"critical_path\": {{\"total\": {}, \"steps\": {}, \"by_phase\": {{{by_phase}}}, \"by_rank\": [{by_rank}], \"top_scopes\": [{top_scopes}]}}\n}}\n",
        json_f(cfgb.scale),
        N / 2,
        r.trace.total_events(),
        r.iterations,
        json_f(r.vtime),
        json_f(cp.total),
        cp.steps.len(),
    );
    (summary, chrome)
}

// ---------------------------------------------------------------------------
// Kernel microbench (`BENCH_kernels.json`)
// ---------------------------------------------------------------------------

/// Pre-PR SpMV replica: `usize` column indices and the per-element gather
/// loop, exactly the `row_dot` of commit 189077d (before the u32/segment
/// kernel overhaul). Measured live every run so the before/after holds on
/// any hardware, not just the machine the embedded constants came from.
fn naive_spmv(row_ptr: &[usize], col: &[usize], vals: &[f64], x: &[f64], y: &mut [f64]) {
    for (r, yr) in y.iter_mut().enumerate() {
        let (cs, vs) = (
            &col[row_ptr[r]..row_ptr[r + 1]],
            &vals[row_ptr[r]..row_ptr[r + 1]],
        );
        let mut acc = 0.0;
        for (c, v) in cs.iter().zip(vs) {
            acc += v * x[*c];
        }
        *yr = acc;
    }
}

/// Pre-PR `spmv_add` replica (second pass of the old two-pass local
/// product).
fn naive_spmv_add(row_ptr: &[usize], col: &[usize], vals: &[f64], x: &[f64], y: &mut [f64]) {
    for (r, yr) in y.iter_mut().enumerate() {
        let (cs, vs) = (
            &col[row_ptr[r]..row_ptr[r + 1]],
            &vals[row_ptr[r]..row_ptr[r + 1]],
        );
        let mut acc = 0.0;
        for (c, v) in cs.iter().zip(vs) {
            acc += v * x[*c];
        }
        *yr += acc;
    }
}

/// Widen the compact `u32` indices back to the pre-PR `usize` storage.
fn usize_cols(a: &Csr) -> Vec<usize> {
    a.col_idx().iter().map(|&c| c as usize).collect()
}

/// Best (minimum) seconds per call over `passes` timing passes of `reps`
/// calls each — the contention-robust microbench estimator on a shared
/// host.
fn best_call_secs(passes: usize, reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..passes {
        let t = Instant::now();
        for _ in 0..reps {
            f();
        }
        best = best.min(t.elapsed().as_secs_f64() / reps as f64);
    }
    best
}

/// Repetitions so one timing pass covers a few milliseconds of work.
fn spmv_reps(nnz: usize) -> usize {
    (4_000_000 / nnz.max(1)).clamp(1, 2000)
}

fn gflops(flops: usize, secs: f64) -> f64 {
    flops as f64 / secs / 1e9
}

fn ns_per(secs: f64, count: usize) -> f64 {
    secs * 1e9 / count.max(1) as f64
}

/// Whole-matrix SpMV: optimized kernel vs the pre-PR replica (bitwise
/// cross-checked first). Returns (opt_secs, naive_secs) per call.
fn bench_spmv_pair(a: &Csr, x: &[f64], passes: usize) -> (f64, f64) {
    let cols_us = usize_cols(a);
    let mut y = vec![0.0; a.n_rows()];
    let mut y_naive = vec![0.0; a.n_rows()];
    a.spmv(x, &mut y);
    naive_spmv(a.row_ptr(), &cols_us, a.vals(), x, &mut y_naive);
    for (o, n) in y.iter().zip(&y_naive) {
        assert_eq!(o.to_bits(), n.to_bits(), "naive replica drifted");
    }
    let reps = spmv_reps(a.nnz());
    let opt = best_call_secs(passes, reps, || {
        a.spmv(x, &mut y);
        std::hint::black_box(&y);
    });
    let naive = best_call_secs(passes, reps, || {
        naive_spmv(a.row_ptr(), &cols_us, a.vals(), x, &mut y_naive);
        std::hint::black_box(&y_naive);
    });
    (opt, naive)
}

/// One matrix's kernel row: whole-matrix SpMV, the distributed local
/// product (diag / offdiag / fused one-pass vs pre-PR two-pass), the
/// block-LDLᵀ solve, and ghost pack/unpack, all at the configured scale.
#[allow(clippy::too_many_lines)]
fn kernel_entry(cfgb: &BenchConfig, id: PaperMatrix) -> String {
    let a = suite::generate(id, cfgb.scale);
    let n = a.n_rows();
    let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
    let (opt, naive) = bench_spmv_pair(&a, &x, 5);
    let spmv_json = format!(
        "{{\"gflops\": {}, \"ns_per_row\": {}, \"naive_gflops\": {}, \"speedup\": {}}}",
        json_f(gflops(a.spmv_flops(), opt)),
        json_f(ns_per(opt, n)),
        json_f(gflops(a.spmv_flops(), naive)),
        json_f(naive / opt),
    );

    // Distributed local product on the middle rank of the configured
    // partition: the shape the solver actually runs per iteration.
    let part = BlockPartition::new(n, cfgb.nodes);
    let mid = cfgb.nodes / 2;
    let lm = LocalMatrix::build(&a, &part, mid);
    let range = part.range(mid);
    let x_loc = &x[range.clone()];
    let ghosts: Vec<f64> = lm.ghost_cols.iter().map(|&g| x[g]).collect();
    let rows = lm.n_local();
    let mut y_loc = vec![0.0; rows];
    let diag_us = usize_cols(&lm.diag);
    let off_us = usize_cols(&lm.offdiag);
    let reps = spmv_reps(lm.diag.nnz() + lm.offdiag.nnz()).min(20_000);
    let fused = best_call_secs(5, reps, || {
        lm.spmv(x_loc, &ghosts, &mut y_loc);
        std::hint::black_box(&y_loc);
    });
    let diag_only = best_call_secs(5, reps, || {
        lm.diag.spmv(x_loc, &mut y_loc);
        std::hint::black_box(&y_loc);
    });
    let off_only = best_call_secs(5, reps, || {
        lm.offdiag.spmv_add(&ghosts, &mut y_loc);
        std::hint::black_box(&y_loc);
    });
    let two_pass = best_call_secs(5, reps, || {
        naive_spmv(
            lm.diag.row_ptr(),
            &diag_us,
            lm.diag.vals(),
            x_loc,
            &mut y_loc,
        );
        naive_spmv_add(
            lm.offdiag.row_ptr(),
            &off_us,
            lm.offdiag.vals(),
            &ghosts,
            &mut y_loc,
        );
        std::hint::black_box(&y_loc);
    });
    let lflops = lm.spmv_flops();
    let local_json = format!(
        concat!(
            "{{\"nodes\": {}, \"rows\": {}, \"diag_nnz\": {}, \"off_nnz\": {}, ",
            "\"fused\": {{\"gflops\": {}, \"ns_per_row\": {}}}, ",
            "\"diag\": {{\"gflops\": {}, \"ns_per_row\": {}}}, ",
            "\"offdiag\": {{\"gflops\": {}, \"ns_per_row\": {}}}, ",
            "\"two_pass_naive_gflops\": {}, \"fused_speedup\": {}}}"
        ),
        cfgb.nodes,
        rows,
        lm.diag.nnz(),
        lm.offdiag.nnz(),
        json_f(gflops(lflops, fused)),
        json_f(ns_per(fused, rows)),
        json_f(gflops(lm.diag.spmv_flops(), diag_only)),
        json_f(ns_per(diag_only, rows)),
        json_f(gflops(lm.offdiag.spmv_flops(), off_only)),
        json_f(ns_per(off_only, rows)),
        json_f(gflops(lflops, two_pass)),
        json_f(two_pass / fused),
    );

    // Block-LDLᵀ solve on the owned diagonal block (the block-Jacobi
    // ExactLdl shape). `solve_in_place` timings include the right-hand-side
    // refill copy, so repeated solves don't compound through the solution.
    let ldl_json = match SparseLdl::new(&lm.diag) {
        Ok(f) => {
            let mut b = vec![0.0; rows];
            let reps_ldl = (2_000_000 / f.solve_flops().max(1)).clamp(1, 50_000);
            let in_place = best_call_secs(5, reps_ldl, || {
                b.copy_from_slice(x_loc);
                f.solve_in_place(&mut b);
                std::hint::black_box(&b);
            });
            let alloc = best_call_secs(5, reps_ldl, || {
                let z = f.solve(x_loc);
                std::hint::black_box(&z);
            });
            format!(
                concat!(
                    "{{\"rows\": {}, \"l_nnz\": {}, \"solve_gflops\": {}, ",
                    "\"solve_ns_per_row\": {}, \"alloc_solve_ns_per_row\": {}}}"
                ),
                rows,
                f.l_nnz(),
                json_f(gflops(f.solve_flops(), in_place)),
                json_f(ns_per(in_place, rows)),
                json_f(ns_per(alloc, rows)),
            )
        }
        Err(_) => "null".into(),
    };

    // Ghost pack/unpack: the true send list from rank mid to mid+1 (the
    // mirror of mid+1's ghost needs inside mid's owned range). Reused-buffer
    // gather vs the pre-PR fresh `Vec` + `Arc` per exchange.
    let lm2 = LocalMatrix::build(&a, &part, mid + 1);
    let offs: Vec<usize> = lm2
        .ghost_cols
        .iter()
        .filter(|&&g| range.contains(&g))
        .map(|&g| g - range.start)
        .collect();
    let ghost_json = if offs.is_empty() {
        "null".to_string()
    } else {
        let mut sbuf = vec![0.0; offs.len()];
        let mut gdst = vec![0.0; offs.len()];
        let reps_g = (500_000 / offs.len()).clamp(1, 100_000);
        let pack = best_call_secs(5, reps_g, || {
            for (slot, &o) in sbuf.iter_mut().zip(&offs) {
                *slot = x_loc[o];
            }
            std::hint::black_box(&sbuf);
        });
        let pack_prepr = best_call_secs(5, reps_g, || {
            let mut buf = Vec::with_capacity(offs.len());
            buf.extend(offs.iter().map(|&o| x_loc[o]));
            let payload = std::sync::Arc::new(buf);
            std::hint::black_box(&payload);
        });
        let unpack = best_call_secs(5, reps_g, || {
            gdst.copy_from_slice(&sbuf);
            std::hint::black_box(&gdst);
        });
        format!(
            concat!(
                "{{\"elems\": {}, \"pack_ns_per_elem\": {}, ",
                "\"prepr_pack_ns_per_elem\": {}, \"unpack_ns_per_elem\": {}}}"
            ),
            offs.len(),
            json_f(ns_per(pack, offs.len())),
            json_f(ns_per(pack_prepr, offs.len())),
            json_f(ns_per(unpack, offs.len())),
        )
    };

    format!(
        concat!(
            "    {{\"matrix\": \"{:?}\", \"paper_name\": \"{}\", \"n\": {}, ",
            "\"nnz\": {}, \"segments\": {}, \"spmv\": {}, \"local\": {}, ",
            "\"ldl\": {}, \"ghost\": {}}}"
        ),
        id,
        suite::spec(id).paper_name,
        n,
        a.nnz(),
        a.uses_segments(),
        spmv_json,
        local_json,
        ldl_json,
        ghost_json,
    )
}

/// The acceptance measurement: the largest configured matrix, regenerated
/// at `ESR_KERNEL_SCALE` (default 0.15 — a footprint several times any
/// L3, the regime actual paper-scale solves run in), optimized kernel vs
/// both the live naive replica and the embedded pre-PR constant.
fn kernel_paper_regime(cfgb: &BenchConfig) -> String {
    let kernel_scale = std::env::var("ESR_KERNEL_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(0.15);
    let Some(&id) = cfgb
        .matrices
        .iter()
        .max_by_key(|&&id| suite::spec(id).paper_nnz)
    else {
        return "null".into();
    };
    if kernel_scale <= 0.0 {
        return "null".into();
    }
    let a = suite::generate(id, kernel_scale);
    let n = a.n_rows();
    let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
    let (opt, naive) = bench_spmv_pair(&a, &x, 9);
    let opt_gf = gflops(a.spmv_flops(), opt);
    let naive_gf = gflops(a.spmv_flops(), naive);
    format!(
        concat!(
            "{{\"matrix\": \"{:?}\", \"scale\": {}, \"n\": {}, \"nnz\": {}, ",
            "\"opt_gflops\": {}, \"naive_live_gflops\": {}, ",
            "\"baseline_embedded_gflops\": {}, \"speedup_vs_embedded\": {}, ",
            "\"speedup_live\": {}}}"
        ),
        id,
        json_f(kernel_scale),
        n,
        a.nnz(),
        json_f(opt_gf),
        json_f(naive_gf),
        json_f(BASELINE_NAIVE_SPMV_DRAM_GFLOPS),
        json_f(opt_gf / BASELINE_NAIVE_SPMV_DRAM_GFLOPS),
        json_f(opt_gf / naive_gf),
    )
}

fn kernels_report(cfgb: &BenchConfig) -> String {
    let entries: Vec<String> = cfgb
        .matrices
        .iter()
        .map(|&id| {
            println!("  kernels: {id:?}");
            kernel_entry(cfgb, id)
        })
        .collect();
    println!("  kernels: paper-regime sweep");
    let regime = kernel_paper_regime(cfgb);
    format!(
        concat!(
            "{{\n  \"schema\": \"esr-kernels-v1\",\n  \"scale\": {},\n",
            "  \"nodes\": {},\n  \"matrices\": [\n{}\n  ],\n",
            "  \"paper_regime\": {}\n}}\n"
        ),
        json_f(cfgb.scale),
        cfgb.nodes,
        entries.join(",\n"),
        regime,
    )
}

fn main() {
    let cfgb = BenchConfig::from_env();
    let nodes = report_nodes();
    println!("== collective/PCG perf report (N = {nodes:?}) ==");
    write_json("BENCH_comm.json", &comm_report(&cfgb, &nodes));
    let (pcg_json, pcg_results) = pcg_report(&cfgb, &nodes);
    write_json("BENCH_pcg.json", &pcg_json);
    write_json(
        "BENCH_pipecg.json",
        &pipecg_report(&cfgb, &nodes, &pcg_results),
    );
    write_json(
        "BENCH_policy_matrix.json",
        &policy_matrix_report(&cfgb, &nodes),
    );
    write_json("BENCH_scale.json", &scale_report(&cfgb, &scale_nodes()));
    write_json("BENCH_kernels.json", &kernels_report(&cfgb));
    #[cfg(feature = "trace")]
    {
        let (summary, chrome) = trace_report(&cfgb);
        write_json("BENCH_trace.json", &summary);
        write_json("ESR_pcg_n16_failure.trace.json", &chrome);
    }
}
