//! Shared harness for the paper's box-plot figures (Figs. 1–3): runtime
//! and relative overhead versus the number of redundant copies, with and
//! without node failures, for one matrix and one failure location.

use crate::{banner, mean_std, run_failure_case, write_csv, BenchConfig, FailLocation};
use esr_core::{run_pcg, SolverConfig};
use parcomm::FailureScript;
use sparsemat::gen::suite::PaperMatrix;

/// Produce one figure: series of (copies → runtime, overhead) with
/// failure-free ("blue boxes") and with-failure ("orange boxes") runs.
pub fn figure(fig_name: &str, caption: &str, id: PaperMatrix, loc: FailLocation) {
    let cfgb = BenchConfig::from_env();
    banner(caption, &cfgb);

    let problem = cfgb.problem(id);
    let reference = run_pcg(
        &problem,
        cfgb.nodes,
        &SolverConfig::reference(),
        cfgb.cost,
        FailureScript::none(),
    )
    .unwrap();
    assert!(reference.converged);
    let t0 = reference.vtime;
    println!(
        "reference t0 = {:.3} ms ({} iterations), failures at {} ranks\n",
        t0 * 1e3,
        reference.iterations,
        loc.label()
    );
    println!(
        "{:>6} | {:>22} | {:>34}",
        "copies", "failure-free (blue)", "with ψ=φ failures (orange)"
    );
    println!(
        "{:>6} | {:>10} {:>11} | {:>10} {:>11} {:>11}",
        "φ", "time [ms]", "ovh [%]", "time [ms]", "ovh [%]", "±σ [%]"
    );

    let mut csv = Vec::new();
    for phi in [1usize, 3, 8] {
        let solver = SolverConfig::resilient(phi);
        let undisturbed = run_pcg(
            &problem,
            cfgb.nodes,
            &solver,
            cfgb.cost,
            FailureScript::none(),
        )
        .unwrap();
        assert!(undisturbed.converged);
        let u_ovh = 100.0 * (undisturbed.vtime / t0 - 1.0);

        let mut times = Vec::new();
        let mut ovhs = Vec::new();
        for &pr in &cfgb.progress {
            let res =
                run_failure_case(&cfgb, &problem, &solver, phi, loc, pr, reference.iterations);
            assert!(res.converged);
            times.push(res.vtime * 1e3);
            ovhs.push(100.0 * (res.vtime / t0 - 1.0));
        }
        let (tm, _) = mean_std(&times);
        let (om, os) = mean_std(&ovhs);
        println!(
            "{:>6} | {:>10.3} {:>11.2} | {:>10.3} {:>11.2} {:>11.2}",
            phi,
            undisturbed.vtime * 1e3,
            u_ovh,
            tm,
            om,
            os
        );
        csv.push(format!(
            "{phi},{:.6},{:.3},{:.6},{:.3},{:.3}",
            undisturbed.vtime,
            u_ovh,
            tm / 1e3,
            om,
            os
        ));
    }
    write_csv(
        &format!("{fig_name}.csv"),
        "phi,undisturbed_time_s,undisturbed_ovh_pct,failure_time_s,failure_ovh_pct,failure_ovh_std",
        &csv,
    );
}
