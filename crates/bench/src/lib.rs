//! Shared infrastructure for the benchmark harnesses that regenerate the
//! paper's tables and figures (see EXPERIMENTS.md for the mapping).
//!
//! Configuration via environment variables:
//!
//! | variable | default | meaning |
//! |---|---|---|
//! | `ESR_SCALE` | `0.01` | problem size as a fraction of the paper's (1.0 ≈ paper) |
//! | `ESR_NODES` | `128` | simulated cluster size N (the paper's 128) |
//! | `ESR_MATRICES` | all | comma list, e.g. `M1,M5,M8` |
//! | `ESR_PROGRESS` | `0.2,0.5,0.8` | failure-injection progress points |
//! | `ESR_REPS` | `1` | repetitions (virtual time is deterministic) |
//!
//! The virtual BSP clock (λ–µ–γ model, paper Sec. 4.2) is deterministic,
//! so a single repetition yields exact numbers; variation across the
//! progress points reproduces the spread the paper aggregates over.

pub mod figures;

use esr_core::{run_pcg, ExperimentResult, Problem, SolverConfig};
use parcomm::{CostModel, FailureScript};
use sparsemat::gen::suite::{self, PaperMatrix};

/// Benchmark configuration resolved from the environment.
#[derive(Clone, Debug)]
pub struct BenchConfig {
    pub scale: f64,
    pub nodes: usize,
    pub matrices: Vec<PaperMatrix>,
    pub progress: Vec<f64>,
    pub reps: usize,
    pub cost: CostModel,
}

impl BenchConfig {
    /// Read the configuration from `ESR_*` environment variables.
    pub fn from_env() -> Self {
        let scale = env_f64("ESR_SCALE", 0.01);
        // The event-driven scheduler runs one node at a time on parked OS
        // threads, so the paper's full cluster size is the cheap default —
        // N no longer multiplies host-thread contention, only stack count.
        let nodes = env_usize("ESR_NODES", 128);
        let matrices = match std::env::var("ESR_MATRICES") {
            Ok(s) if !s.trim().is_empty() => s
                .split(',')
                .map(|t| match t.trim().to_uppercase().as_str() {
                    "M1" => PaperMatrix::M1,
                    "M2" => PaperMatrix::M2,
                    "M3" => PaperMatrix::M3,
                    "M4" => PaperMatrix::M4,
                    "M5" => PaperMatrix::M5,
                    "M6" => PaperMatrix::M6,
                    "M7" => PaperMatrix::M7,
                    "M8" => PaperMatrix::M8,
                    other => panic!("unknown matrix id {other:?}"),
                })
                .collect(),
            _ => suite::all_ids().to_vec(),
        };
        let progress = match std::env::var("ESR_PROGRESS") {
            Ok(s) if !s.trim().is_empty() => s
                .split(',')
                .map(|t| t.trim().parse::<f64>().expect("bad ESR_PROGRESS"))
                .collect(),
            _ => vec![0.2, 0.5, 0.8],
        };
        BenchConfig {
            scale,
            nodes,
            matrices,
            progress,
            reps: env_usize("ESR_REPS", 1),
            cost: CostModel::default(),
        }
    }

    /// Generate the analog of `id` at the configured scale, with its RHS.
    pub fn problem(&self, id: PaperMatrix) -> Problem {
        let a = suite::generate(id, self.scale);
        Problem::with_random_rhs(a, 0xBE7C_0000 + id as u64)
    }
}

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Failure locations of the paper's setup (Sec. 7.1): contiguous ranks
/// starting at rank 0 ("start") or rank N/2 ("center").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailLocation {
    Start,
    Center,
}

impl FailLocation {
    pub fn first_rank(self, nodes: usize) -> usize {
        match self {
            FailLocation::Start => 0,
            FailLocation::Center => nodes / 2,
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            FailLocation::Start => "start",
            FailLocation::Center => "center",
        }
    }
}

/// Mean and population standard deviation.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (f64::NAN, f64::NAN);
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
    (mean, var.sqrt())
}

/// One failure experiment: `psi` simultaneous failures at `loc`, injected
/// at fraction `progress` of `ref_iters`.
pub fn run_failure_case(
    cfgb: &BenchConfig,
    problem: &Problem,
    solver: &SolverConfig,
    psi: usize,
    loc: FailLocation,
    progress: f64,
    ref_iters: usize,
) -> ExperimentResult {
    let at = ((ref_iters as f64 * progress) as u64).max(1);
    let script = FailureScript::simultaneous(at, loc.first_rank(cfgb.nodes), psi, cfgb.nodes);
    run_pcg(problem, cfgb.nodes, solver, cfgb.cost, script).expect("valid bench configuration")
}

/// Results directory: `ESR_RESULTS_DIR` if set, else the workspace's
/// `target/esr-results/`. Benches run with the package directory as CWD,
/// so the default is anchored at the workspace root.
pub fn results_dir() -> std::path::PathBuf {
    let dir = match std::env::var("ESR_RESULTS_DIR") {
        Ok(d) if !d.trim().is_empty() => std::path::PathBuf::from(d),
        _ => std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/esr-results"),
    };
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Write a machine-readable report (the `BENCH_*.json` artifacts).
pub fn write_json(name: &str, content: &str) {
    let path = results_dir().join(name);
    std::fs::write(&path, content).expect("write json");
    println!("[json] wrote {}", path.display());
}

/// Write a CSV file under the results directory.
pub fn write_csv(name: &str, header: &str, rows: &[String]) {
    let path = results_dir().join(name);
    let mut out = String::with_capacity(rows.len() * 64 + header.len() + 1);
    out.push_str(header);
    out.push('\n');
    for r in rows {
        out.push_str(r);
        out.push('\n');
    }
    std::fs::write(&path, out).expect("write csv");
    println!("[csv] wrote {}", path.display());
}

/// Print the standard harness banner.
pub fn banner(title: &str, cfgb: &BenchConfig) {
    println!("================================================================");
    println!("{title}");
    println!(
        "scale = {} of paper size | N = {} nodes | λ = {:.1e}s µ = {:.1e}s γ = {:.1e}s",
        cfgb.scale, cfgb.nodes, cfgb.cost.lambda, cfgb.cost.mu, cfgb.cost.gamma
    );
    println!("(virtual BSP clock; see EXPERIMENTS.md for paper-vs-measured)");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[2.0, 4.0]);
        assert_eq!(m, 3.0);
        assert_eq!(s, 1.0);
        assert!(mean_std(&[]).0.is_nan());
    }

    #[test]
    fn fail_location_ranks() {
        assert_eq!(FailLocation::Start.first_rank(16), 0);
        assert_eq!(FailLocation::Center.first_rank(16), 8);
    }

    #[test]
    fn default_config_parses() {
        let c = BenchConfig::from_env();
        assert!(c.scale > 0.0);
        assert!(c.nodes >= 2);
        assert!(!c.matrices.is_empty());
    }
}
