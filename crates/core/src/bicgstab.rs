//! ESR-protected distributed BiCGSTAB.
//!
//! The paper (Sec. 1): "our proposed algorithmic modifications can also be
//! applied to the ESR approach for the … preconditioned bi-conjugate
//! gradient stabilized (BiCGSTAB) algorithms", without giving details "due
//! to space restrictions". This module works them out.
//!
//! Preconditioned BiCGSTAB performs **two** SpMVs per iteration —
//! `v = A p̂` with `p̂ = M⁻¹p` and `t = A ŝ` with `ŝ = M⁻¹s` — so two
//! vectors are naturally scattered per iteration and both are retained
//! (two retention channels). At the failure boundary (after the second
//! scatter) the full state is exactly reconstructible on the replacements:
//!
//! * `p̂_If`, `ŝ_If` — from the retained redundant copies;
//! * `p_If = M p̂_If`, `s_If = M ŝ_If` — locally (block-diagonal `M`);
//! * `v_If = A_{If,·} p̂` — survivors hold `p̂`, its ghosts are gathered;
//!   the `If`-columns come from the replacement group's reconstructed
//!   `p̂` blocks;
//! * `r_If = s_If + α v_If` — from the recurrence `s = r − α v`
//!   (`α` is a replicated scalar, re-sent by a survivor);
//! * `x_If` — from `r = b − A x`, solving `A_{If,If} x_If = b_If − r_If −
//!   A_{If,I\If} x_{I\If}` cooperatively, exactly as in PCG recovery;
//! * `r̂0 = b` is static (the solver fixes `x(0) = 0`).
//!
//! Unlike PCG, no previous-iteration data is needed: the recurrences close
//! within the iteration, so only the *current* generation of each channel
//! is read during recovery.

use std::collections::HashSet;
use std::sync::Arc;

use parcomm::comm::ReduceOp;
use parcomm::fault::poison;
use parcomm::{CommPhase, FailAt, NodeCtx, Payload};
use sparsemat::vecops::{axpy, dot};
use sparsemat::{BlockPartition, Csr};

use crate::config::{PrecondConfig, SolverConfig};
use crate::localmat::LocalMatrix;
use crate::pcg::NodeOutcome;
use crate::precsetup::NodePrecond;
use crate::recovery::{gather_failed_ghosts, solve_failed_system, RecoveryEnv};
use crate::redundancy;
use crate::retention::{Gen, Retention};
use crate::scatter::ScatterPlan;

const TAG_ALPHA: u32 = 1 << 24;
const TAG_PHAT: u32 = (1 << 24) + 1;
const TAG_SHAT: u32 = (1 << 24) + 2;
const TAG_REQ_PHAT: u32 = (1 << 24) + 3;
const TAG_RESP_PHAT: u32 = (1 << 24) + 4;
const TAG_REQ_X: u32 = (1 << 24) + 5;
const TAG_RESP_X: u32 = (1 << 24) + 6;

/// The SPMD node program: solve `A x = b` with (optionally resilient)
/// preconditioned BiCGSTAB. `A` may be non-symmetric; the preconditioner
/// must be one of the block-diagonal (M-given) variants.
pub fn esr_bicgstab_node(
    ctx: &mut NodeCtx,
    a: &Arc<Csr>,
    b: &Arc<Vec<f64>>,
    cfg: &SolverConfig,
) -> NodeOutcome {
    assert!(
        !matches!(cfg.precond, PrecondConfig::ExplicitP(_)),
        "ESR-BiCGSTAB supports the block-diagonal (M-given) preconditioners"
    );
    let n = a.n_rows();
    let rank = ctx.rank();
    let part = BlockPartition::new(n, ctx.size());
    let lm = LocalMatrix::build(a, &part, rank);
    let mut plan = ScatterPlan::build(ctx, &lm, &part);
    if let Some(res) = &cfg.resilience {
        plan.send_extra = redundancy::compute_extra_sends(
            rank,
            ctx.size(),
            res.phi,
            &res.strategy,
            lm.n_local(),
            &plan.send_natural,
        );
        plan.announce_extras(ctx);
    }
    // Two retention channels: copies of p̂(j) and of ŝ(j).
    let mut ret_p = Retention::build(&plan, &lm.ghost_cols);
    let mut ret_s = Retention::build(&plan, &lm.ghost_cols);
    let mut prec = NodePrecond::setup(ctx, &cfg.precond, &part, &lm)
        .unwrap_or_else(|e| panic!("rank {rank}: preconditioner setup failed: {e}"));
    ctx.barrier();
    let vtime_setup = ctx.vtime();
    ctx.reset_metrics();

    let nloc = lm.n_local();
    let range = lm.range.clone();
    let b_loc: Vec<f64> = b[range.clone()].to_vec();
    // x(0) = 0 so that r̂0 = r(0) = b is static data.
    let mut x = vec![0.0; nloc];
    let mut r = b_loc.clone();
    let rhat0 = b_loc.clone();
    let mut p = r.clone();
    let mut v = vec![0.0; nloc];
    let mut phat = vec![0.0; nloc];
    let mut shat = vec![0.0; nloc];
    let mut s = vec![0.0; nloc];
    let mut t = vec![0.0; nloc];
    let mut ghosts = vec![0.0; lm.ghost_cols.len()];

    // ‖r(0)‖² and ρ(0) = r̂0ᵀr(0) travel in one fused length-2 all-reduce.
    let init = ctx.allreduce_vec(ReduceOp::Sum, vec![dot(&r, &r), dot(&rhat0, &r)]);
    let r0_sq = init[0];
    let r0_norm = r0_sq.sqrt();
    let target_sq = cfg.rel_tol * cfg.rel_tol * r0_sq;
    let mut rho = init[1];
    // ρ for the *next* iteration's p-update, fused with the convergence
    // reduction at the end of each iteration (both are dots against the
    // just-updated r) — three global reductions per iteration, not four.
    let mut rho_next = rho;
    let mut alpha = 0.0f64;
    let mut omega = 0.0f64;

    let mut iterations = 0usize;
    let mut residual_sq = r0_sq;
    let mut converged = r0_norm <= f64::MIN_POSITIVE;
    let mut recoveries = 0usize;
    let mut ranks_recovered = 0usize;
    let mut vtime_recovery = 0.0f64;
    let mut handled: HashSet<u64> = HashSet::new();
    let resilient = cfg.resilience.is_some();

    while !converged && iterations < cfg.max_iter {
        let j = iterations as u64;
        // p update (j > 0): p = r + β (p − ω v); ρ(j) was carried from the
        // previous iteration's fused reduction.
        if j > 0 {
            if rho_next.abs() < f64::MIN_POSITIVE {
                panic!("rank {rank}: BiCGSTAB breakdown (ρ = 0) at iteration {j}");
            }
            let beta = (rho_next / rho) * (alpha / omega);
            rho = rho_next;
            for ((pi, ri), vi) in p.iter_mut().zip(&r).zip(&v) {
                *pi = ri + beta * (*pi - omega * vi);
            }
            ctx.clock_mut().advance_flops(6 * nloc);
        }
        // p̂ = M⁻¹ p ; first scatter (channel p).
        prec.apply(ctx, &p, &mut phat);
        if resilient {
            ret_p.rotate();
            plan.exchange(ctx, &phat, &mut ghosts, Some(&mut ret_p));
            ret_p.finish_generation();
        } else {
            plan.exchange(ctx, &phat, &mut ghosts, None);
        }
        lm.spmv(&phat, &ghosts, &mut v);
        ctx.clock_mut().advance_flops(lm.spmv_flops());
        let rhat0_v = ctx.allreduce_sum(dot(&rhat0, &v));
        if rhat0_v.abs() < f64::MIN_POSITIVE {
            panic!("rank {rank}: BiCGSTAB breakdown ((r̂0,v) = 0) at iteration {j}");
        }
        alpha = rho / rhat0_v;
        // s = r − α v
        s.copy_from_slice(&r);
        axpy(-alpha, &v, &mut s);
        ctx.clock_mut().advance_flops(2 * nloc);
        // ŝ = M⁻¹ s ; second scatter (channel s).
        prec.apply(ctx, &s, &mut shat);
        if resilient {
            ret_s.rotate();
            plan.exchange(ctx, &shat, &mut ghosts, Some(&mut ret_s));
            ret_s.finish_generation();
        } else {
            plan.exchange(ctx, &shat, &mut ghosts, None);
        }

        // ---- failure boundary: both channels scattered -----------------
        if resilient && !handled.contains(&j) {
            handled.insert(j);
            let failed = ctx.poll_failures(FailAt::Iteration(j));
            if !failed.is_empty() {
                let t0 = ctx.vtime();
                let res = cfg.resilience.as_ref().unwrap();
                let env = RecoveryEnv {
                    a,
                    b_loc: &b_loc,
                    part: &part,
                    lm: &lm,
                    cfg: &res.recovery,
                    iteration: j,
                    has_prev: false,
                };
                recover_bicgstab(
                    ctx,
                    &env,
                    &prec,
                    &failed,
                    &mut alpha,
                    &mut x,
                    &mut r,
                    &mut p,
                    &mut v,
                    &mut s,
                    &mut phat,
                    &mut shat,
                    &mut ghosts,
                    &mut ret_p,
                    &mut ret_s,
                );
                recoveries += 1;
                ranks_recovered += failed.len();
                vtime_recovery += ctx.vtime() - t0;
                // Restart from the ŝ scatter: re-exchange (restores the
                // replacement ghosts and the s-channel redundancy; the
                // p channel heals at the next iteration's scatter).
                ret_s.rotate();
                plan.exchange(ctx, &shat, &mut ghosts, Some(&mut ret_s));
                ret_s.finish_generation();
            }
        }

        // t = A ŝ
        lm.spmv(&shat, &ghosts, &mut t);
        ctx.clock_mut().advance_flops(lm.spmv_flops());
        let tt_ts = ctx.allreduce_vec(ReduceOp::Sum, vec![dot(&t, &t), dot(&t, &s)]);
        ctx.clock_mut().advance_flops(4 * nloc);
        let (tt, ts) = (tt_ts[0], tt_ts[1]);
        if tt <= 0.0 || !tt.is_finite() {
            panic!("rank {rank}: BiCGSTAB breakdown ((t,t) = {tt}) at iteration {j}");
        }
        omega = ts / tt;
        // x += α p̂ + ω ŝ ; r = s − ω t
        axpy(alpha, &phat, &mut x);
        axpy(omega, &shat, &mut x);
        r.copy_from_slice(&s);
        axpy(-omega, &t, &mut r);
        ctx.clock_mut().advance_flops(6 * nloc);

        iterations += 1;
        // Fused: convergence test ‖r‖² + the next iteration's ρ = r̂0ᵀr.
        let rr_rho = ctx.allreduce_vec(ReduceOp::Sum, vec![dot(&r, &r), dot(&rhat0, &r)]);
        ctx.clock_mut().advance_flops(4 * nloc);
        residual_sq = rr_rho[0];
        rho_next = rr_rho[1];
        if residual_sq <= target_sq {
            converged = true;
        }
    }

    NodeOutcome {
        rank,
        x_loc: x,
        range_start: range.start,
        iterations,
        residual_norm: residual_sq.sqrt(),
        initial_residual_norm: r0_norm,
        converged,
        vtime_total: ctx.vtime(),
        vtime_recovery,
        recoveries,
        ranks_recovered,
        stats: ctx.stats().clone(),
        vtime_setup,
        retired: false,
    }
}

/// Reconstruction of the BiCGSTAB state on the replacements.
#[allow(clippy::too_many_arguments)]
fn recover_bicgstab(
    ctx: &mut NodeCtx,
    env: &RecoveryEnv,
    prec: &NodePrecond,
    failed: &[usize],
    alpha: &mut f64,
    x: &mut [f64],
    r: &mut [f64],
    p: &mut [f64],
    v: &mut [f64],
    s: &mut [f64],
    phat: &mut [f64],
    shat: &mut [f64],
    ghosts: &mut [f64],
    ret_p: &mut Retention,
    ret_s: &mut Retention,
) {
    let rank = ctx.rank();
    let mut failed = failed.to_vec();
    failed.sort_unstable();
    failed.dedup();
    let am_failed = failed.binary_search(&rank).is_ok();
    let if_indices = env.part.union_of(&failed);
    let nloc = env.lm.n_local();
    let my_start = env.lm.range.start;

    if am_failed {
        poison(x);
        poison(r);
        poison(p);
        poison(v);
        poison(s);
        poison(phat);
        poison(shat);
        poison(ghosts);
        ret_p.poison();
        ret_s.poison();
        *alpha = f64::NAN;
    }

    // α (replicated scalar) from the lowest survivor.
    let lowest_surv = (0..ctx.size())
        .find(|r| failed.binary_search(r).is_err())
        .expect("at least one survivor");
    if rank == lowest_surv {
        for &f in &failed {
            ctx.send(f, TAG_ALPHA, Payload::F64(*alpha), CommPhase::Recovery);
        }
    } else if am_failed {
        *alpha = ctx
            .recv_phase(lowest_surv, TAG_ALPHA, CommPhase::Recovery)
            .into_f64();
    }

    // Retained copies of p̂_If and ŝ_If.
    if !am_failed {
        for &f in &failed {
            let range = env.part.range(f);
            ctx.send(
                f,
                TAG_PHAT,
                Payload::pairs(ret_p.collect_range(Gen::Cur, range.start, range.end)),
                CommPhase::Recovery,
            );
            ctx.send(
                f,
                TAG_SHAT,
                Payload::pairs(ret_s.collect_range(Gen::Cur, range.start, range.end)),
                CommPhase::Recovery,
            );
        }
    } else {
        let mut got_p = vec![false; nloc];
        let mut got_s = vec![false; nloc];
        for src in 0..ctx.size() {
            if failed.binary_search(&src).is_ok() {
                continue;
            }
            for (g, val) in ctx
                .recv_phase(src, TAG_PHAT, CommPhase::Recovery)
                .into_pairs()
            {
                let o = g as usize - my_start;
                phat[o] = val;
                got_p[o] = true;
            }
            for (g, val) in ctx
                .recv_phase(src, TAG_SHAT, CommPhase::Recovery)
                .into_pairs()
            {
                let o = g as usize - my_start;
                shat[o] = val;
                got_s[o] = true;
            }
        }
        assert!(
            got_p.iter().all(|&g| g) && got_s.iter().all(|&g| g),
            "rank {rank}: unrecoverable — missing p̂/ŝ copies (more than φ failures?)"
        );
        // p_If = M p̂_If ; s_If = M ŝ_If (block-diagonal M).
        prec.m_forward_local(env.lm, phat, p);
        prec.m_forward_local(env.lm, shat, s);
        ctx.clock_mut().advance_flops(2 * env.lm.diag.spmv_flops());
    }

    // v_If = A_{If,·} p̂: survivors provide the I\If ghosts; the If-columns
    // come from the other replacements' reconstructed p̂ blocks.
    let ghost_phat = gather_failed_ghosts(
        ctx,
        env.part,
        &failed,
        am_failed,
        &env.lm.ghost_cols,
        phat,
        my_start,
        TAG_REQ_PHAT,
        TAG_RESP_PHAT,
    );
    if am_failed {
        let mut group = ctx.group(&failed);
        let parts = group.allgatherv_f64(ctx, phat.to_vec());
        let phat_if: Vec<f64> = parts.into_iter().flatten().collect();
        let rows: Vec<usize> = env.lm.range.clone().collect();
        let sub = env.a.extract(&rows, &if_indices);
        sub.spmv(&phat_if, v);
        ctx.clock_mut().advance_flops(sub.spmv_flops());
        let mut off = vec![0.0; nloc];
        env.lm
            .offdiag_mul_excluding(&ghost_phat.unwrap(), &if_indices, &mut off);
        ctx.clock_mut().advance_flops(env.lm.offdiag.spmv_flops());
        for i in 0..nloc {
            v[i] += off[i];
        }
        // r_If = s_If + α v_If  (from s = r − α v).
        for i in 0..nloc {
            r[i] = s[i] + *alpha * v[i];
        }
        ctx.clock_mut().advance_flops(4 * nloc);
    }

    // x_If from r = b − A x (same machinery as PCG recovery).
    let ghost_x = gather_failed_ghosts(
        ctx,
        env.part,
        &failed,
        am_failed,
        &env.lm.ghost_cols,
        x,
        my_start,
        TAG_REQ_X,
        TAG_RESP_X,
    );
    if am_failed {
        let mut w = vec![0.0; nloc];
        env.lm
            .offdiag_mul_excluding(&ghost_x.unwrap(), &if_indices, &mut w);
        ctx.clock_mut().advance_flops(env.lm.offdiag.spmv_flops());
        for i in 0..nloc {
            w[i] = env.b_loc[i] - r[i] - w[i];
        }
        let (x_new, _iters) = solve_failed_system(ctx, env, &failed, &if_indices, env.a, w);
        x.copy_from_slice(&x_new);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SolverConfig;
    use crate::driver::Problem;
    use parcomm::{Cluster, ClusterConfig, FailureScript};
    use sparsemat::gen::poisson2d;

    fn run(
        problem: &Problem,
        nodes: usize,
        cfg: &SolverConfig,
        script: FailureScript,
    ) -> Vec<NodeOutcome> {
        let a = problem.a.clone();
        let b = problem.b.clone();
        let cfg = cfg.clone();
        Cluster::run(ClusterConfig::new(nodes).with_script(script), move |ctx| {
            esr_bicgstab_node(ctx, &a, &b, &cfg)
        })
    }

    fn max_err_to_ones(outs: &[NodeOutcome]) -> f64 {
        outs.iter()
            .flat_map(|o| o.x_loc.iter())
            .map(|xi| (xi - 1.0).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn failure_free_solves() {
        let a = poisson2d(12, 12);
        let problem = Problem::with_ones_solution(a);
        let outs = run(
            &problem,
            4,
            &SolverConfig::reference(),
            FailureScript::none(),
        );
        assert!(outs[0].converged);
        assert!(
            max_err_to_ones(&outs) < 1e-6,
            "err {}",
            max_err_to_ones(&outs)
        );
    }

    #[test]
    fn survives_single_failure() {
        let a = poisson2d(12, 12);
        let problem = Problem::with_ones_solution(a);
        let script = FailureScript::simultaneous(4, 1, 1, 4);
        let outs = run(&problem, 4, &SolverConfig::resilient(1), script);
        assert!(outs[0].converged);
        assert_eq!(outs[0].recoveries, 1);
        assert!(
            max_err_to_ones(&outs) < 1e-6,
            "err {}",
            max_err_to_ones(&outs)
        );
    }

    #[test]
    fn survives_two_simultaneous_failures() {
        let a = poisson2d(14, 14);
        let problem = Problem::with_ones_solution(a);
        let script = FailureScript::simultaneous(6, 2, 2, 7);
        let outs = run(&problem, 7, &SolverConfig::resilient(2), script);
        assert!(outs[0].converged);
        assert_eq!(outs[0].ranks_recovered, 2);
        assert!(
            max_err_to_ones(&outs) < 1e-6,
            "err {}",
            max_err_to_ones(&outs)
        );
    }

    #[test]
    fn jacobi_preconditioned_with_failure() {
        let a = poisson2d(10, 10);
        let problem = Problem::with_ones_solution(a);
        let cfg = SolverConfig {
            precond: crate::config::PrecondConfig::Jacobi,
            ..SolverConfig::resilient(1)
        };
        let script = FailureScript::simultaneous(3, 0, 1, 5);
        let outs = run(&problem, 5, &cfg, script);
        assert!(outs[0].converged);
        assert!(max_err_to_ones(&outs) < 1e-6);
    }
}
