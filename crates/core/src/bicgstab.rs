//! ESR-protected distributed BiCGSTAB.
//!
//! The paper (Sec. 1): "our proposed algorithmic modifications can also be
//! applied to the ESR approach for the … preconditioned bi-conjugate
//! gradient stabilized (BiCGSTAB) algorithms", without giving details "due
//! to space restrictions". This module works them out on top of the shared
//! [`crate::engine`] — which also buys BiCGSTAB the four-substep
//! overlapping-failure restart protocol and the full recovery-policy
//! matrix (replacement nodes, finite spare pool, shrink-with-adoption)
//! that used to be PCG-only.
//!
//! Preconditioned BiCGSTAB performs **two** SpMVs per iteration —
//! `v = A p̂` with `p̂ = M⁻¹p` and `t = A ŝ` with `ŝ = M⁻¹s` — so two
//! vectors are naturally scattered per iteration and both are retained
//! (two retention channels). At the failure boundary (after the second
//! scatter) the full state is exactly reconstructible per failed block
//! (see [`BicgstabKernel`]):
//!
//! * `p̂_If`, `ŝ_If` — from the retained redundant copies;
//! * `p_If = M p̂_If`, `s_If = M ŝ_If` — per block from static data
//!   (block-diagonal `M`), which is what lets an *adopter* rebuild a
//!   block it never owned;
//! * `v_If = A_{If,·} p̂` — survivors serve `p̂` outside `If`; the
//!   `If`-columns come from the reconstructor group's all-gather;
//! * `r_If = s_If + α v_If` — from the recurrence `s = r − α v`
//!   (`α` is a replicated scalar, re-sent by a survivor);
//! * `x_If` — from `r = b − A x`, via the engine's shared cooperative
//!   inner solve;
//! * `r̂0 = b` is static (the solver fixes `x(0) = 0`), so after a shrink
//!   the adopter's widened `r̂0` block is just `b` over the new range.
//!
//! Unlike PCG, no previous-iteration data is needed: the recurrences close
//! within the iteration, so only the *current* generation of each channel
//! is read during recovery.

use std::collections::HashSet;
use std::ops::Range;
use std::sync::Arc;

use parcomm::comm::ReduceOp;
use parcomm::fault::poison;
use parcomm::{FailAt, NodeCtx};
use sparsemat::vecops::{axpy, dot};
use sparsemat::Csr;

use crate::config::SolverConfig;
use crate::engine::{
    self, splice, ChannelRead, EngineComm, EngineEnv, EngineOutcome, EngineShared, Layout,
    ReconBlock, RecoveryTimeline, ResilientKernel,
};
use crate::pcg::NodeOutcome;
use crate::retention::Gen;

// Block-vector slots of the BiCGSTAB kernel.
const PHAT: usize = 0;
const SHAT: usize = 1;
const P: usize = 2;
const S: usize = 3;
const V: usize = 4;
const R: usize = 5;
const X: usize = 6;

/// BiCGSTAB's [`ResilientKernel`]: two retention channels (`p̂(j)`,
/// `ŝ(j)`), one replicated scalar `α(j)`, and the reconstruction
/// identities listed in the module docs.
pub(crate) struct BicgstabKernel<'a> {
    /// The iterate block `x(j)_Iᵢ`.
    pub x: &'a mut Vec<f64>,
    /// The residual block `r_Iᵢ`.
    pub r: &'a mut Vec<f64>,
    /// The search direction `p_Iᵢ`.
    pub p: &'a mut Vec<f64>,
    /// `v = A p̂`.
    pub v: &'a mut Vec<f64>,
    /// `s = r − α v`.
    pub s: &'a mut Vec<f64>,
    /// `p̂ = M⁻¹ p`.
    pub phat: &'a mut Vec<f64>,
    /// `ŝ = M⁻¹ s`.
    pub shat: &'a mut Vec<f64>,
    /// `t = A ŝ` scratch.
    pub t: &'a mut Vec<f64>,
    /// Ghost values from the last exchange.
    pub ghosts: &'a mut Vec<f64>,
    /// Owned right-hand-side block.
    pub b_loc: &'a mut Vec<f64>,
    /// The shadow residual `r̂0 = b` (static; re-cut after a shrink).
    pub rhat0: &'a mut Vec<f64>,
    /// The replicated scalar `α(j)`.
    pub alpha: &'a mut f64,
    /// The replicated scalar `ρ(j) = r̂0ᵀr(j)` (needed by the *next*
    /// iteration's β; `ρ(j+1)` is recomputed by the post-recovery fused
    /// reduction, but `ρ(j)` itself would be lost with the node).
    pub rho: &'a mut f64,
    /// The replicated scalar `ω(j)` (checkpoint-pack state: the loop-top
    /// β-update reads it; ESR restarts mid-iteration and recomputes it).
    pub omega: &'a mut f64,
    /// The replicated scalar `ρ(j+1)` carried by the fused end-of-iteration
    /// reduction (checkpoint-pack state, like `ω`).
    pub rho_next: &'a mut f64,
}

impl ResilientKernel for BicgstabKernel<'_> {
    fn n_channels(&self) -> usize {
        2
    }

    fn channel_reads(&self, _has_prev: bool) -> Vec<ChannelRead> {
        // Both channels scattered earlier in the same iteration: always
        // present, no previous-generation reads.
        vec![
            ChannelRead {
                channel: 0,
                generation: Gen::Cur,
                required: true,
                what: "p̂(j)",
            },
            ChannelRead {
                channel: 1,
                generation: Gen::Cur,
                required: true,
                what: "ŝ(j)",
            },
        ]
    }

    fn scalars(&self) -> Vec<f64> {
        vec![*self.alpha, *self.rho]
    }

    fn set_scalars(&mut self, s: &[f64]) {
        *self.alpha = s[0];
        *self.rho = s[1];
    }

    fn poison(&mut self) {
        poison(self.x);
        poison(self.r);
        poison(self.p);
        poison(self.v);
        poison(self.s);
        poison(self.phat);
        poison(self.shat);
        poison(self.ghosts);
        *self.alpha = f64::NAN;
        *self.rho = f64::NAN;
        *self.omega = f64::NAN;
        *self.rho_next = f64::NAN;
        // r̂0 and b_loc are static data (r̂0 = b with x(0) = 0) and survive
        // on reliable storage — paper Sec. 1.1.2.
    }

    fn n_pack_vecs(&self) -> usize {
        5
    }

    fn n_pack_scalars(&self) -> usize {
        4
    }

    fn pack(&self) -> Vec<f64> {
        // Loop-top recurrence state: [x | r | r̂0 | p | v | α, ω, ρ, ρ(j+1)].
        // Everything else (s, p̂, ŝ, t, ghosts) is recomputed within the
        // restarted iteration.
        let mut data = Vec::with_capacity(5 * self.x.len() + 4);
        data.extend_from_slice(self.x);
        data.extend_from_slice(self.r);
        data.extend_from_slice(self.rhat0);
        data.extend_from_slice(self.p);
        data.extend_from_slice(self.v);
        data.push(*self.alpha);
        data.push(*self.omega);
        data.push(*self.rho);
        data.push(*self.rho_next);
        data
    }

    fn unpack(&mut self, data: &[f64], new_range: &Range<usize>, b: &[f64]) {
        let nloc = new_range.len();
        let vec_at = |slot: usize| data[slot * nloc..(slot + 1) * nloc].to_vec();
        *self.x = vec_at(0);
        *self.r = vec_at(1);
        *self.rhat0 = vec_at(2);
        *self.p = vec_at(3);
        *self.v = vec_at(4);
        *self.alpha = data[5 * nloc];
        *self.omega = data[5 * nloc + 1];
        *self.rho = data[5 * nloc + 2];
        *self.rho_next = data[5 * nloc + 3];
        *self.b_loc = b[new_range.clone()].to_vec();
        *self.s = vec![0.0; nloc];
        *self.phat = vec![0.0; nloc];
        *self.shat = vec![0.0; nloc];
        *self.t = vec![0.0; nloc];
    }

    fn n_block_vecs(&self) -> usize {
        7
    }

    fn r_slot(&self) -> usize {
        R
    }

    fn x_slot(&self) -> usize {
        X
    }

    fn x_loc(&self) -> &[f64] {
        self.x
    }

    fn rebuild_local(
        &mut self,
        ctx: &mut NodeCtx,
        shared: &EngineShared<'_>,
        blk: &mut ReconBlock,
        mut copies: Vec<Option<Vec<f64>>>,
    ) {
        let phat = copies[0].take().expect("p̂(j) copies are mandatory");
        let shat = copies[1].take().expect("ŝ(j) copies are mandatory");
        // p_b = M_{b,b} p̂_b ; s_b = M_{b,b} ŝ_b (block-diagonal M).
        blk.vecs[P] = engine::m_block_forward(ctx, shared.a, shared.precond, &blk.range, &phat);
        blk.vecs[S] = engine::m_block_forward(ctx, shared.a, shared.precond, &blk.range, &shat);
        blk.vecs[PHAT] = phat;
        blk.vecs[SHAT] = shat;
    }

    fn rebuild_distributed(
        &mut self,
        ctx: &mut NodeCtx,
        shared: &EngineShared<'_>,
        comm: &mut EngineComm<'_>,
        blocks: &mut [ReconBlock],
    ) {
        // v_If = A_{If,·} p̂: survivors serve the outside-If values, the
        // If-columns come from the reconstructors' rebuilt p̂ blocks.
        comm.apply_matrix(ctx, shared.a, blocks, PHAT, V, self.phat);
        // r_If = s_If + α v_If  (from s = r − α v).
        let alpha = *self.alpha;
        for blk in blocks.iter_mut() {
            let blen = blk.range.len();
            let mut r = vec![0.0; blen];
            for i in 0..blen {
                r[i] = blk.vecs[S][i] + alpha * blk.vecs[V][i];
            }
            ctx.clock_mut().advance_flops(2 * blen);
            blk.vecs[R] = r;
        }
    }

    fn install(&mut self, blk: &ReconBlock) {
        self.phat.copy_from_slice(&blk.vecs[PHAT]);
        self.shat.copy_from_slice(&blk.vecs[SHAT]);
        self.p.copy_from_slice(&blk.vecs[P]);
        self.s.copy_from_slice(&blk.vecs[S]);
        self.v.copy_from_slice(&blk.vecs[V]);
        self.r.copy_from_slice(&blk.vecs[R]);
        self.x.copy_from_slice(&blk.vecs[X]);
    }

    fn splice(
        &mut self,
        new_range: &Range<usize>,
        own: Option<&Range<usize>>,
        blocks: &[ReconBlock],
        b: &[f64],
    ) {
        *self.x = splice(new_range, own, self.x, blocks, X);
        *self.r = splice(new_range, own, self.r, blocks, R);
        *self.p = splice(new_range, own, self.p, blocks, P);
        *self.v = splice(new_range, own, self.v, blocks, V);
        *self.s = splice(new_range, own, self.s, blocks, S);
        *self.phat = splice(new_range, own, self.phat, blocks, PHAT);
        *self.shat = splice(new_range, own, self.shat, blocks, SHAT);
        *self.b_loc = b[new_range.clone()].to_vec();
        // x(0) = 0 makes r̂0 = b static: the widened block is just b.
        *self.rhat0 = self.b_loc.clone();
    }

    fn resize_scratch(&mut self, nloc: usize, n_ghosts: usize) {
        *self.t = vec![0.0; nloc];
        *self.ghosts = vec![0.0; n_ghosts];
    }
}

/// The SPMD node program: solve `A x = b` with (optionally resilient)
/// preconditioned BiCGSTAB. `A` may be non-symmetric; the preconditioner
/// must be one of the block-diagonal (M-given) variants.
pub fn esr_bicgstab_node(
    ctx: &mut NodeCtx,
    a: &Arc<Csr>,
    b: &Arc<Vec<f64>>,
    cfg: &SolverConfig,
) -> NodeOutcome {
    let n = a.n_rows();
    assert_eq!(b.len(), n, "rhs length");
    let rank = ctx.rank();
    // Protection flavor (see `pcg`): ESR needs two retention channels,
    // copies of p̂(j) and of ŝ(j); checkpoint/rollback needs none.
    let cr = cfg.resilience.as_ref().and_then(|res| res.cr());
    let esr = cfg.resilience.is_some() && cr.is_none();
    let mut layout = Layout::build_full(ctx, a, cfg, if cr.is_some() { 0 } else { 2 });
    assert!(
        !layout.prec.is_explicit_p(),
        "rank {rank}: ESR-BiCGSTAB supports the block-diagonal (M-given) preconditioners"
    );
    ctx.barrier();
    let vtime_setup = ctx.vtime();
    ctx.reset_metrics();

    let mut nloc = layout.lm.n_local();
    let mut b_loc: Vec<f64> = b[layout.lm.range.clone()].to_vec();
    // x(0) = 0 so that r̂0 = r(0) = b is static data.
    let mut x = vec![0.0; nloc];
    let mut r = b_loc.clone();
    let mut rhat0 = b_loc.clone();
    let mut p = r.clone();
    let mut v = vec![0.0; nloc];
    let mut phat = vec![0.0; nloc];
    let mut shat = vec![0.0; nloc];
    let mut s = vec![0.0; nloc];
    let mut t = vec![0.0; nloc];
    let mut ghosts = vec![0.0; layout.lm.ghost_cols.len()];
    let mut pool = ctx.spare_pool();

    // ‖r(0)‖² and ρ(0) = r̂0ᵀr(0) travel in one fused length-2 all-reduce.
    let init = ctx.allreduce_vec(ReduceOp::Sum, vec![dot(&r, &r), dot(&rhat0, &r)]);
    let r0_sq = init[0];
    let r0_norm = r0_sq.sqrt();
    let target_sq = cfg.rel_tol * cfg.rel_tol * r0_sq;
    let mut rho = init[1];
    // ρ for the *next* iteration's p-update, fused with the convergence
    // reduction at the end of each iteration (both are dots against the
    // just-updated r) — three global reductions per iteration, not four.
    let mut rho_next = rho;
    let mut alpha = 0.0f64;
    let mut omega = 0.0f64;

    let mut iterations = 0usize;
    let mut residual_sq = r0_sq;
    let mut converged = r0_norm <= f64::MIN_POSITIVE;
    let mut retired = false;
    let mut recoveries = 0usize;
    let mut ranks_recovered = 0usize;
    let mut vtime_recovery = 0.0f64;
    let mut handled_iter: HashSet<u64> = HashSet::new();
    let mut handled_sub: HashSet<(u64, u32)> = HashSet::new();
    let mut recovery_seq: u32 = 0;
    let mut recovery_timelines: Vec<RecoveryTimeline> = Vec::new();
    let resilient = cfg.resilience.is_some();
    let mut ckpt =
        cr.map(|c| crate::retention::CheckpointStore::new(c, &layout.members, layout.my_slot));

    while !converged && iterations < cfg.max_iter {
        let j = iterations as u64;
        ctx.trace_open("iteration", j);

        // Periodic checkpoint deposit of the loop-top recurrence state
        // (before the p-update, which consumes ρ(j+1)).
        if let Some(store) = ckpt.as_mut() {
            if j.is_multiple_of(store.interval() as u64) {
                let kernel = BicgstabKernel {
                    x: &mut x,
                    r: &mut r,
                    p: &mut p,
                    v: &mut v,
                    s: &mut s,
                    phat: &mut phat,
                    shat: &mut shat,
                    t: &mut t,
                    ghosts: &mut ghosts,
                    b_loc: &mut b_loc,
                    rhat0: &mut rhat0,
                    alpha: &mut alpha,
                    rho: &mut rho,
                    omega: &mut omega,
                    rho_next: &mut rho_next,
                };
                let data = kernel.pack();
                let seq = recovery_seq;
                recovery_seq += 1;
                store.deposit(ctx, seq, j, data);
            }
        }

        // p update (j > 0): p = r + β (p − ω v); ρ(j) was carried from the
        // previous iteration's fused reduction.
        if j > 0 {
            if rho_next.abs() < f64::MIN_POSITIVE {
                panic!("rank {rank}: BiCGSTAB breakdown (ρ = 0) at iteration {j}");
            }
            let beta = (rho_next / rho) * (alpha / omega);
            rho = rho_next;
            for ((pi, ri), vi) in p.iter_mut().zip(&r).zip(&v) {
                *pi = ri + beta * (*pi - omega * vi);
            }
            ctx.clock_mut().advance_flops(6 * nloc);
        }
        // p̂ = M⁻¹ p ; first scatter (channel 0).
        layout.prec.apply(ctx, &p, &mut phat);
        if esr {
            layout.channels[0].rotate();
            layout
                .plan
                .exchange(ctx, &phat, &mut ghosts, Some(&mut layout.channels[0]));
            layout.channels[0].finish_generation();
        } else {
            layout.plan.exchange(ctx, &phat, &mut ghosts, None);
        }
        layout.lm.spmv(&phat, &ghosts, &mut v);
        ctx.clock_mut().advance_flops(layout.lm.spmv_flops());
        let rhat0_v = layout.allreduce_sum(ctx, dot(&rhat0, &v));
        if rhat0_v.abs() < f64::MIN_POSITIVE {
            panic!("rank {rank}: BiCGSTAB breakdown ((r̂0,v) = 0) at iteration {j}");
        }
        alpha = rho / rhat0_v;
        // s = r − α v
        s.copy_from_slice(&r);
        axpy(-alpha, &v, &mut s);
        ctx.clock_mut().advance_flops(2 * nloc);
        // ŝ = M⁻¹ s ; second scatter (channel 1).
        layout.prec.apply(ctx, &s, &mut shat);
        if esr {
            layout.channels[1].rotate();
            layout
                .plan
                .exchange(ctx, &shat, &mut ghosts, Some(&mut layout.channels[1]));
            layout.channels[1].finish_generation();
        } else {
            layout.plan.exchange(ctx, &shat, &mut ghosts, None);
        }

        // ---- failure boundary: both channels scattered -----------------
        if resilient && !handled_iter.contains(&j) {
            handled_iter.insert(j);
            let failed = layout.poll_member_failures(ctx, FailAt::Iteration(j));
            if !failed.is_empty() {
                let t0 = ctx.vtime();
                let res = cfg.resilience.as_ref().unwrap();
                let env = EngineEnv {
                    a,
                    b,
                    res,
                    precond: &cfg.precond,
                    iteration: j,
                    // Both channels are from *this* iteration; recovery
                    // never reads previous-generation data.
                    has_prev: false,
                };
                let mut kernel = BicgstabKernel {
                    x: &mut x,
                    r: &mut r,
                    p: &mut p,
                    v: &mut v,
                    s: &mut s,
                    phat: &mut phat,
                    shat: &mut shat,
                    t: &mut t,
                    ghosts: &mut ghosts,
                    b_loc: &mut b_loc,
                    rhat0: &mut rhat0,
                    alpha: &mut alpha,
                    rho: &mut rho,
                    omega: &mut omega,
                    rho_next: &mut rho_next,
                };
                let rolled_back = match engine::recover(
                    ctx,
                    &env,
                    &mut layout,
                    &mut kernel,
                    &failed,
                    &mut handled_sub,
                    &mut recovery_seq,
                    &mut pool,
                    ckpt.as_mut(),
                ) {
                    EngineOutcome::Retired => {
                        retired = true;
                        ctx.trace_close(); // iteration
                        break;
                    }
                    EngineOutcome::Recovered(report) => {
                        recoveries += 1;
                        ranks_recovered += report.total_failed;
                        vtime_recovery += ctx.vtime() - t0;
                        nloc = layout.lm.n_local();
                        let rollback_to = report.rollback_to;
                        recovery_timelines.push(report.timeline);
                        rollback_to
                    }
                };
                if let Some(epoch) = rolled_back {
                    // Rollback restores *loop-top* state: abandon the
                    // interrupted iteration entirely and resume the epoch
                    // (ESR instead restarts mid-iteration below).
                    iterations = epoch as usize;
                    ctx.trace_close(); // iteration
                    continue;
                }
                // Restart from the ŝ scatter: re-exchange (restores the
                // replacement ghosts and the s-channel redundancy; the
                // p channel heals at the next iteration's scatter).
                layout.channels[1].rotate();
                layout
                    .plan
                    .exchange(ctx, &shat, &mut ghosts, Some(&mut layout.channels[1]));
                layout.channels[1].finish_generation();
            }
        }

        // t = A ŝ
        layout.lm.spmv(&shat, &ghosts, &mut t);
        ctx.clock_mut().advance_flops(layout.lm.spmv_flops());
        let tt_ts = layout.allreduce_vec(ctx, ReduceOp::Sum, vec![dot(&t, &t), dot(&t, &s)]);
        ctx.clock_mut().advance_flops(4 * nloc);
        let (tt, ts) = (tt_ts[0], tt_ts[1]);
        if tt <= 0.0 || !tt.is_finite() {
            panic!("rank {rank}: BiCGSTAB breakdown ((t,t) = {tt}) at iteration {j}");
        }
        omega = ts / tt;
        // x += α p̂ + ω ŝ ; r = s − ω t
        axpy(alpha, &phat, &mut x);
        axpy(omega, &shat, &mut x);
        r.copy_from_slice(&s);
        axpy(-omega, &t, &mut r);
        ctx.clock_mut().advance_flops(6 * nloc);

        iterations += 1;
        // Fused: convergence test ‖r‖² + the next iteration's ρ = r̂0ᵀr.
        let rr_rho = layout.allreduce_vec(ctx, ReduceOp::Sum, vec![dot(&r, &r), dot(&rhat0, &r)]);
        ctx.clock_mut().advance_flops(4 * nloc);
        residual_sq = rr_rho[0];
        rho_next = rr_rho[1];
        if residual_sq <= target_sq {
            converged = true;
        }
        ctx.trace_close(); // iteration
    }

    NodeOutcome::finish(
        ctx,
        x,
        layout.lm.range.start,
        iterations,
        residual_sq.sqrt(),
        r0_norm,
        converged,
        vtime_recovery,
        recoveries,
        ranks_recovered,
        vtime_setup,
        retired,
        recovery_timelines,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SolverConfig;
    use crate::driver::Problem;
    use parcomm::{Cluster, ClusterConfig, FailureScript};
    use sparsemat::gen::poisson2d;

    fn run(
        problem: &Problem,
        nodes: usize,
        cfg: &SolverConfig,
        script: FailureScript,
    ) -> Vec<NodeOutcome> {
        let a = problem.a.clone();
        let b = problem.b.clone();
        let cfg = cfg.clone();
        Cluster::run(ClusterConfig::new(nodes).with_script(script), move |ctx| {
            esr_bicgstab_node(ctx, &a, &b, &cfg)
        })
    }

    fn max_err_to_ones(outs: &[NodeOutcome]) -> f64 {
        outs.iter()
            .flat_map(|o| o.x_loc.iter())
            .map(|xi| (xi - 1.0).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn failure_free_solves() {
        let a = poisson2d(12, 12);
        let problem = Problem::with_ones_solution(a);
        let outs = run(
            &problem,
            4,
            &SolverConfig::reference(),
            FailureScript::none(),
        );
        assert!(outs[0].converged);
        assert!(
            max_err_to_ones(&outs) < 1e-6,
            "err {}",
            max_err_to_ones(&outs)
        );
    }

    #[test]
    fn survives_single_failure() {
        let a = poisson2d(12, 12);
        let problem = Problem::with_ones_solution(a);
        let script = FailureScript::simultaneous(4, 1, 1, 4);
        let outs = run(&problem, 4, &SolverConfig::resilient(1), script);
        assert!(outs[0].converged);
        assert_eq!(outs[0].recoveries, 1);
        assert!(
            max_err_to_ones(&outs) < 1e-6,
            "err {}",
            max_err_to_ones(&outs)
        );
    }

    #[test]
    fn survives_two_simultaneous_failures() {
        let a = poisson2d(14, 14);
        let problem = Problem::with_ones_solution(a);
        let script = FailureScript::simultaneous(6, 2, 2, 7);
        let outs = run(&problem, 7, &SolverConfig::resilient(2), script);
        assert!(outs[0].converged);
        assert_eq!(outs[0].ranks_recovered, 2);
        assert!(
            max_err_to_ones(&outs) < 1e-6,
            "err {}",
            max_err_to_ones(&outs)
        );
    }

    #[test]
    fn jacobi_preconditioned_with_failure() {
        let a = poisson2d(10, 10);
        let problem = Problem::with_ones_solution(a);
        let cfg = SolverConfig {
            precond: crate::config::PrecondConfig::Jacobi,
            ..SolverConfig::resilient(1)
        };
        let script = FailureScript::simultaneous(3, 0, 1, 5);
        let outs = run(&problem, 5, &cfg, script);
        assert!(outs[0].converged);
        assert!(max_err_to_ones(&outs) < 1e-6);
    }

    #[test]
    fn survives_overlapping_failure_during_recovery() {
        // New with the engine port: the four-substep restart protocol now
        // covers BiCGSTAB too (the old solver-private recovery was blind
        // to failures arriving mid-reconstruction).
        use parcomm::{FailAt, FailureEvent};
        let a = poisson2d(14, 14);
        let problem = Problem::with_ones_solution(a);
        for substep in 0..4 {
            let script = FailureScript::new(vec![
                FailureEvent {
                    when: FailAt::Iteration(4),
                    ranks: vec![2],
                },
                FailureEvent {
                    when: FailAt::RecoverySubstep {
                        after_iteration: 4,
                        substep,
                    },
                    ranks: vec![4],
                },
            ]);
            let outs = run(&problem, 7, &SolverConfig::resilient(2), script);
            assert!(outs[0].converged, "substep={substep}");
            assert_eq!(outs[0].ranks_recovered, 2, "substep={substep}");
            assert!(
                max_err_to_ones(&outs) < 1e-6,
                "substep={substep} err {}",
                max_err_to_ones(&outs)
            );
        }
    }
}
