//! ESR-protected distributed Jacobi iteration.
//!
//! Chen's original ESR paper covers stationary methods (Jacobi,
//! Gauss–Seidel, SOR, SSOR), and this paper's Sec. 1 states the
//! multi-failure extension applies to them as well. For these methods the
//! naturally scattered vector is the **iterate `x(j)` itself**, which makes
//! ESR particularly simple: the retained copies of the current `x(j)` *are*
//! the full solver state — reconstruction is a pure copy, no linear solve.
//!
//! The distributed method implemented here is the Jacobi iteration (the
//! only classical stationary method whose sweep is embarrassingly parallel
//! under a block-row distribution; Gauss–Seidel/SOR become block-hybrid
//! methods in distributed memory and are provided sequentially in
//! `krylov::stationary`).

use std::collections::HashSet;
use std::sync::Arc;

use parcomm::fault::poison;
use parcomm::{CommPhase, FailAt, NodeCtx, Payload};
use sparsemat::vecops::dot;
use sparsemat::{BlockPartition, Csr};

use crate::config::SolverConfig;
use crate::localmat::LocalMatrix;
use crate::pcg::NodeOutcome;
use crate::redundancy;
use crate::retention::{Gen, Retention};
use crate::scatter::ScatterPlan;

const TAG_XCOPY: u32 = (1 << 25) + 1;

/// The SPMD node program: solve `A x = b` with the (optionally resilient)
/// distributed Jacobi iteration `x ← x + D⁻¹(b − A x)`. Requires `A` to
/// be such that Jacobi converges (e.g. strictly diagonally dominant).
pub fn esr_jacobi_node(
    ctx: &mut NodeCtx,
    a: &Arc<Csr>,
    b: &Arc<Vec<f64>>,
    cfg: &SolverConfig,
) -> NodeOutcome {
    let n = a.n_rows();
    let rank = ctx.rank();
    let part = BlockPartition::new(n, ctx.size());
    let lm = LocalMatrix::build(a, &part, rank);
    let mut plan = ScatterPlan::build(ctx, &lm, &part);
    if let Some(res) = &cfg.resilience {
        plan.send_extra = redundancy::compute_extra_sends(
            rank,
            ctx.size(),
            res.phi,
            &res.strategy,
            lm.n_local(),
            &plan.send_natural,
        );
        plan.announce_extras(ctx);
    }
    let mut retention = Retention::build(&plan, &lm.ghost_cols);
    ctx.barrier();
    let vtime_setup = ctx.vtime();
    ctx.reset_metrics();

    let nloc = lm.n_local();
    let range = lm.range.clone();
    let b_loc: Vec<f64> = b[range.clone()].to_vec();
    let inv_diag: Vec<f64> = lm
        .diag
        .diag()
        .iter()
        .map(|&d| {
            assert!(d > 0.0, "rank {rank}: Jacobi needs positive diagonal");
            1.0 / d
        })
        .collect();
    let mut x = vec![0.0; nloc];
    let mut ax = vec![0.0; nloc];
    let mut ghosts = vec![0.0; lm.ghost_cols.len()];

    let r0_sq = ctx.allreduce_sum(dot(&b_loc, &b_loc));
    let r0_norm = r0_sq.sqrt();
    let target_sq = cfg.rel_tol * cfg.rel_tol * r0_sq;

    let mut iterations = 0usize;
    let mut residual_sq = r0_sq;
    let mut converged = r0_norm <= f64::MIN_POSITIVE;
    let mut recoveries = 0usize;
    let mut ranks_recovered = 0usize;
    let mut vtime_recovery = 0.0f64;
    let mut handled: HashSet<u64> = HashSet::new();
    let resilient = cfg.resilience.is_some();

    while !converged && iterations < cfg.max_iter {
        let j = iterations as u64;
        // Scatter x(j) (the stationary methods' communicated vector).
        if resilient {
            retention.rotate();
            plan.exchange(ctx, &x, &mut ghosts, Some(&mut retention));
            retention.finish_generation();
        } else {
            plan.exchange(ctx, &x, &mut ghosts, None);
        }

        // Failure boundary.
        if resilient && !handled.contains(&j) {
            handled.insert(j);
            let failed = ctx.poll_failures(FailAt::Iteration(j));
            if !failed.is_empty() {
                let t0 = ctx.vtime();
                let mut failed = failed;
                failed.sort_unstable();
                let am_failed = failed.binary_search(&rank).is_ok();
                if am_failed {
                    poison(&mut x);
                    poison(&mut ghosts);
                    retention.poison();
                }
                // Reconstruction = copy: x(j)_If from the retained copies.
                if !am_failed {
                    for &f in &failed {
                        let fr = part.range(f);
                        ctx.send(
                            f,
                            TAG_XCOPY,
                            Payload::pairs(retention.collect_range(Gen::Cur, fr.start, fr.end)),
                            CommPhase::Recovery,
                        );
                    }
                } else {
                    let mut got = vec![false; nloc];
                    for src in 0..ctx.size() {
                        if failed.binary_search(&src).is_ok() {
                            continue;
                        }
                        for (g, val) in ctx
                            .recv_phase(src, TAG_XCOPY, CommPhase::Recovery)
                            .into_pairs()
                        {
                            let o = g as usize - range.start;
                            x[o] = val;
                            got[o] = true;
                        }
                    }
                    assert!(
                        got.iter().all(|&g| g),
                        "rank {rank}: unrecoverable — missing x copies (more than φ failures?)"
                    );
                }
                recoveries += 1;
                ranks_recovered += failed.len();
                vtime_recovery += ctx.vtime() - t0;
                // Restart the iteration: re-scatter x(j) (restores the
                // replacement ghosts and the lost redundancy duties).
                continue;
            }
        }

        // Jacobi sweep: x ← x + D⁻¹ (b − A x).
        lm.spmv(&x, &ghosts, &mut ax);
        ctx.clock_mut().advance_flops(lm.spmv_flops());
        let mut rn_sq_loc = 0.0;
        for i in 0..nloc {
            let res = b_loc[i] - ax[i];
            rn_sq_loc += res * res;
            x[i] += inv_diag[i] * res;
        }
        ctx.clock_mut().advance_flops(5 * nloc);
        iterations += 1;
        residual_sq = ctx.allreduce_sum(rn_sq_loc);
        if residual_sq <= target_sq {
            converged = true;
        }
    }

    NodeOutcome {
        rank,
        x_loc: x,
        range_start: range.start,
        iterations,
        residual_norm: residual_sq.sqrt(),
        initial_residual_norm: r0_norm,
        converged,
        vtime_total: ctx.vtime(),
        vtime_recovery,
        recoveries,
        ranks_recovered,
        stats: ctx.stats().clone(),
        vtime_setup,
        retired: false,
        recovery_timelines: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SolverConfig;
    use crate::driver::Problem;
    use parcomm::{Cluster, ClusterConfig, FailureScript};
    use sparsemat::gen::poisson2d;

    fn run(
        problem: &Problem,
        nodes: usize,
        cfg: &SolverConfig,
        script: FailureScript,
    ) -> Vec<NodeOutcome> {
        let a = problem.a.clone();
        let b = problem.b.clone();
        let cfg = cfg.clone();
        Cluster::run(ClusterConfig::new(nodes).with_script(script), move |ctx| {
            esr_jacobi_node(ctx, &a, &b, &cfg)
        })
    }

    fn max_err_to_ones(outs: &[NodeOutcome]) -> f64 {
        outs.iter()
            .flat_map(|o| o.x_loc.iter())
            .map(|xi| (xi - 1.0).abs())
            .fold(0.0, f64::max)
    }

    fn jacobi_cfg(phi: Option<usize>) -> SolverConfig {
        let mut cfg = match phi {
            Some(p) => SolverConfig::resilient(p),
            None => SolverConfig::reference(),
        };
        cfg.rel_tol = 1e-7;
        cfg.max_iter = 50_000;
        cfg
    }

    #[test]
    fn failure_free_converges() {
        let a = poisson2d(8, 8);
        let problem = Problem::with_ones_solution(a);
        let outs = run(&problem, 4, &jacobi_cfg(None), FailureScript::none());
        assert!(outs[0].converged, "iters {}", outs[0].iterations);
        assert!(max_err_to_ones(&outs) < 1e-4);
    }

    #[test]
    fn survives_two_failures() {
        let a = poisson2d(8, 8);
        let problem = Problem::with_ones_solution(a);
        let script = FailureScript::simultaneous(20, 1, 2, 4);
        let outs = run(&problem, 4, &jacobi_cfg(Some(2)), script);
        assert!(outs[0].converged);
        assert_eq!(outs[0].recoveries, 1);
        assert_eq!(outs[0].ranks_recovered, 2);
        assert!(max_err_to_ones(&outs) < 1e-4);
    }

    #[test]
    fn failure_does_not_change_trajectory() {
        // ESR for stationary methods is exact: the iteration count with a
        // mid-run failure equals the failure-free count.
        let a = poisson2d(8, 8);
        let problem = Problem::with_ones_solution(a);
        let clean = run(&problem, 4, &jacobi_cfg(Some(1)), FailureScript::none());
        let script = FailureScript::simultaneous(15, 2, 1, 4);
        let failed = run(&problem, 4, &jacobi_cfg(Some(1)), script);
        assert_eq!(clean[0].iterations, failed[0].iterations);
        assert_eq!(clean[0].residual_norm, failed[0].residual_norm);
    }
}
