//! The redundant-state stores — one per protection flavor.
//!
//! **[`Retention`]** (ESR): in non-resilient PCG, a node drops the
//! search-direction elements it received for SpMV once the product is
//! computed. ESR instead **retains** everything received for the two most
//! recent search directions (paper Sec. 2.2): "there is a redundant copy
//! of each element of p(j) after computing A·p(j)". The store holds two
//! generations — `cur` for `p(j)`, `prev` for `p(j-1)` — rotated at every
//! SpMV, and answers the recovery-time query *"give me every retained
//! element owned by the failed nodes"*.
//!
//! **[`CheckpointStore`]** (checkpoint/rollback): the periodic-checkpoint
//! counterpart. Every deposit round each node replicates its packed
//! dynamic state to `copies` ring partners — the same Eqn. (5)
//! alternating-ring placement ESR uses for redundant copies, so the two
//! flavors are equally failure-decorrelated — and holds the newest
//! replica deposited by each of its clients, answering the rollback-time
//! query *"give me the newest surviving checkpoint of this failed block"*.

use std::collections::HashMap;
use std::sync::Arc;

use parcomm::{CommPhase, NodeCtx, Payload};

use crate::config::CrConfig;
use crate::redundancy::backup_targets;
use crate::scatter::ScatterPlan;

/// Tag offset of deposit fan-out messages inside a deposit round's window
/// (each round gets its own window from the shared recovery sequence).
const OFF_CKPT: u32 = 0;

/// Which generation of retained copies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Gen {
    /// Copies of `p(j)` — the most recently scattered search direction.
    Cur,
    /// Copies of `p(j-1)`.
    Prev,
}

/// Two-generation store of received search-direction elements.
#[derive(Clone, Debug)]
pub struct Retention {
    /// Sorted global indices of every element this node receives per
    /// iteration (natural ghosts ∪ redundancy extras).
    idx: Vec<usize>,
    cur: Vec<f64>,
    prev: Vec<f64>,
    /// Per peer: positions into `idx` of that peer's natural values, in
    /// message order.
    nat_pos: Vec<Vec<usize>>,
    /// Per peer: positions into `idx` of that peer's extra values.
    ext_pos: Vec<Vec<usize>>,
    cur_valid: bool,
    prev_valid: bool,
}

impl Retention {
    /// Build from a completed scatter plan (extras announced) and the ghost
    /// column list of the local matrix.
    pub fn build(plan: &ScatterPlan, ghost_cols: &[usize]) -> Self {
        let mut idx: Vec<usize> = ghost_cols.to_vec();
        for ext in &plan.recv_extra {
            idx.extend_from_slice(ext);
        }
        idx.sort_unstable();
        idx.dedup();

        let lookup = |g: usize| -> usize { idx.binary_search(&g).expect("retained index") };
        let mut nat_pos = Vec::with_capacity(plan.nodes);
        let mut ext_pos = Vec::with_capacity(plan.nodes);
        for k in 0..plan.nodes {
            nat_pos.push(
                plan.recv_ghost_range[k]
                    .clone()
                    .map(|p| lookup(ghost_cols[p]))
                    .collect::<Vec<_>>(),
            );
            ext_pos.push(
                plan.recv_extra[k]
                    .iter()
                    .map(|&g| lookup(g))
                    .collect::<Vec<_>>(),
            );
        }
        let n = idx.len();
        Retention {
            idx,
            cur: vec![f64::NAN; n],
            prev: vec![f64::NAN; n],
            nat_pos,
            ext_pos,
            cur_valid: false,
            prev_valid: false,
        }
    }

    /// Rotate generations at the start of an SpMV: `prev ← cur`.
    pub fn rotate(&mut self) {
        std::mem::swap(&mut self.cur, &mut self.prev);
        self.prev_valid = self.cur_valid;
        self.cur_valid = false;
    }

    /// Mark the current generation complete (all exchanges received).
    pub fn finish_generation(&mut self) {
        self.cur_valid = true;
    }

    /// Check that a deposit covers the peer's slots exactly. A hard assert
    /// in *all* build profiles: with a `debug_assert` only, a short
    /// `naturals`/`extras` slice in a release build silently truncates via
    /// `zip`, leaving stale or NaN retained copies that corrupt a later
    /// reconstruction — the worst possible failure mode for a resilience
    /// library (the corruption only surfaces when a node actually dies).
    fn check_deposit(&self, peer: usize, naturals: &[f64], extras: &[f64]) {
        assert_eq!(
            naturals.len(),
            self.nat_pos[peer].len(),
            "retention deposit from peer {peer}: naturals length mismatch"
        );
        assert_eq!(
            extras.len(),
            self.ext_pos[peer].len(),
            "retention deposit from peer {peer}: extras length mismatch"
        );
    }

    /// Deposit values received from `peer` into the current generation.
    pub fn store(&mut self, peer: usize, naturals: &[f64], extras: &[f64]) {
        self.check_deposit(peer, naturals, extras);
        for (&p, &v) in self.nat_pos[peer].iter().zip(naturals) {
            self.cur[p] = v;
        }
        for (&p, &v) in self.ext_pos[peer].iter().zip(extras) {
            self.cur[p] = v;
        }
    }

    /// Deposit into an explicit generation (recovery-time redundancy
    /// restoration re-scatters `p(j-1)` into `Prev`).
    pub fn store_gen(&mut self, generation: Gen, peer: usize, naturals: &[f64], extras: &[f64]) {
        match generation {
            Gen::Cur => self.store(peer, naturals, extras),
            Gen::Prev => {
                self.check_deposit(peer, naturals, extras);
                for (&p, &v) in self.nat_pos[peer].iter().zip(naturals) {
                    self.prev[p] = v;
                }
                for (&p, &v) in self.ext_pos[peer].iter().zip(extras) {
                    self.prev[p] = v;
                }
            }
        }
    }

    /// Mark a generation valid after recovery restoration.
    pub fn set_valid(&mut self, generation: Gen) {
        match generation {
            Gen::Cur => self.cur_valid = true,
            Gen::Prev => self.prev_valid = true,
        }
    }

    /// Is the generation complete?
    pub fn is_valid(&self, generation: Gen) -> bool {
        match generation {
            Gen::Cur => self.cur_valid,
            Gen::Prev => self.prev_valid,
        }
    }

    /// All retained `(global index, value)` pairs of `generation` whose
    /// indices fall into `[lo, hi)` — the recovery query for a failed
    /// node's range.
    pub fn collect_range(&self, generation: Gen, lo: usize, hi: usize) -> Vec<(u64, f64)> {
        if !self.is_valid(generation) {
            return Vec::new();
        }
        let vals = match generation {
            Gen::Cur => &self.cur,
            Gen::Prev => &self.prev,
        };
        let start = self.idx.partition_point(|&g| g < lo);
        let end = self.idx.partition_point(|&g| g < hi);
        (start..end)
            .map(|p| (self.idx[p] as u64, vals[p]))
            .collect()
    }

    /// Number of retained elements per generation.
    pub fn len(&self) -> usize {
        self.idx.len()
    }

    /// True if nothing is ever retained (single node, no ghosts).
    pub fn is_empty(&self) -> bool {
        self.idx.is_empty()
    }

    /// Destroy all retained data (this node failed): values become NaN and
    /// both generations invalid, so any illegal read is detectable.
    pub fn poison(&mut self) {
        parcomm::fault::poison(&mut self.cur);
        parcomm::fault::poison(&mut self.prev);
        self.cur_valid = false;
        self.prev_valid = false;
    }
}

/// One saved state: the iteration it was packed at and the packed block
/// (see [`crate::engine::ResilientKernel::pack`] for the layout).
#[derive(Clone, Debug)]
pub(crate) struct Checkpoint {
    /// The outer iteration the pack describes (a deposit-round boundary).
    pub iteration: u64,
    /// The packed dynamic state. `Arc`-backed so one deposit buffer serves
    /// as the own copy *and* every outgoing ring replica without a deep
    /// copy per destination.
    pub data: Arc<Vec<f64>>,
}

/// Periodic-checkpoint store for
/// [`crate::config::Protection::Checkpoint`]: this node's own newest
/// checkpoint plus the newest replica held for each ring client.
///
/// Placement is by **member slot**, not global rank, so the ring contracts
/// correctly after a shrink: `partners = members[backup_targets(my_slot)]`.
/// On the full cluster the two coincide.
#[derive(Clone, Debug)]
pub(crate) struct CheckpointStore {
    interval: usize,
    copies: usize,
    /// Global ranks this node deposits replicas on (current layout).
    partners: Vec<usize>,
    /// Global ranks that deposit replicas here (current layout).
    clients: Vec<usize>,
    /// Newest replica held per client, keyed by global rank.
    held: HashMap<usize, Checkpoint>,
    /// This node's own newest checkpoint.
    pub own: Checkpoint,
}

impl CheckpointStore {
    /// Build the store for the current layout. `copies` is clamped to the
    /// member count minus one (a shrink can leave fewer ring partners than
    /// configured replicas).
    pub fn new(cr: &CrConfig, members: &[usize], my_slot: usize) -> Self {
        let (partners, clients) = Self::placement(cr.copies, members, my_slot);
        CheckpointStore {
            interval: cr.interval,
            copies: cr.copies,
            partners,
            clients,
            held: HashMap::new(),
            own: Checkpoint {
                iteration: 0,
                data: Arc::new(Vec::new()),
            },
        }
    }

    fn placement(copies: usize, members: &[usize], my_slot: usize) -> (Vec<usize>, Vec<usize>) {
        let k = members.len();
        let copies_eff = copies.min(k.saturating_sub(1));
        if copies_eff == 0 {
            return (Vec::new(), Vec::new()); // single survivor: no ring
        }
        let partners: Vec<usize> = backup_targets(my_slot, k, copies_eff)
            .into_iter()
            .map(|s| members[s])
            .collect();
        let clients: Vec<usize> = (0..k)
            .filter(|&s| s != my_slot && backup_targets(s, k, copies_eff).contains(&my_slot))
            .map(|s| members[s])
            .collect();
        (partners, clients)
    }

    /// Checkpoint every `interval` outer iterations.
    pub fn interval(&self) -> usize {
        self.interval
    }

    /// Global ranks holding replicas of member `f`'s block (ring order —
    /// rollback serves from the first *surviving* one).
    pub fn holders_of(&self, members: &[usize], f: usize) -> Vec<usize> {
        let k = members.len();
        let copies_eff = self.copies.min(k.saturating_sub(1));
        if copies_eff == 0 {
            return Vec::new();
        }
        let slot = members
            .binary_search(&f)
            .expect("failed rank is an active member");
        backup_targets(slot, k, copies_eff)
            .into_iter()
            .map(|s| members[s])
            .collect()
    }

    /// The newest replica held for global rank `f`, if any.
    pub fn replica_of(&self, f: usize) -> Option<&Checkpoint> {
        self.held.get(&f)
    }

    /// One deposit round: save `data` as this node's own checkpoint for
    /// `iteration`, fan the replica out to the ring partners, and collect
    /// the clients' replicas. Collective over the active members;
    /// bracketed in its own audit tag window `seq` (drawn from the shared
    /// recovery sequence, so deposit rounds and recovery attempts can
    /// never alias). One shared buffer fans out to every partner (Arc
    /// bump per send, no per-destination deep copy; each message still
    /// pays the full λ + s·µ).
    pub fn deposit(&mut self, ctx: &mut NodeCtx, seq: u32, iteration: u64, data: Vec<f64>) {
        ctx.audit_enter_window(seq);
        ctx.trace_open("deposit", iteration);
        self.own = Checkpoint {
            iteration,
            data: Arc::new(data),
        };
        for &d in &self.partners {
            ctx.send(
                d,
                crate::engine::tag(seq, OFF_CKPT),
                Payload::f64s_shared(self.own.data.clone()),
                CommPhase::Redundancy,
            );
        }
        for &c in &self.clients {
            let data = ctx
                .recv_phase(c, crate::engine::tag(seq, OFF_CKPT), CommPhase::Redundancy)
                .into_f64s_arc();
            self.held.insert(c, Checkpoint { iteration, data });
        }
        ctx.trace_close();
        ctx.audit_exit_window();
    }

    /// Destroy all checkpoint data (this node failed): both the own copy
    /// and every held replica are gone.
    pub fn poison(&mut self) {
        self.own.data = Arc::new(Vec::new());
        self.held.clear();
    }

    /// Recompute the ring for a new layout (post-shrink) and drop all
    /// state; the caller re-seeds `own`, and the re-deposit at the rolled
    /// -back iteration (always a deposit boundary) refills the replicas.
    pub fn rebuild(&mut self, members: &[usize], my_slot: usize) {
        let (partners, clients) = Self::placement(self.copies, members, my_slot);
        self.partners = partners;
        self.clients = clients;
        self.held.clear();
        self.own = Checkpoint {
            iteration: 0,
            data: Arc::new(Vec::new()),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini_plan() -> (ScatterPlan, Vec<usize>) {
        // 2 peers; this node (rank 1 of 3) has ghosts {0, 1, 20} and
        // receives extras {2} from peer 0, {21} from peer 2.
        let mut plan = ScatterPlan {
            nodes: 3,
            members: vec![0, 1, 2],
            my_slot: 1,
            my_start: 10,
            my_len: 10,
            send_natural: vec![vec![], vec![], vec![]],
            send_extra: vec![vec![], vec![], vec![]],
            recv_ghost_range: vec![0..2, 0..0, 2..3],
            recv_extra: vec![vec![2], vec![], vec![21]],
            gather: Vec::new(),
            bufs: Vec::new(),
        };
        plan.refresh_pack_lists();
        (plan, vec![0, 1, 20])
    }

    #[test]
    fn build_merges_and_sorts_indices() {
        let (plan, ghosts) = mini_plan();
        let ret = Retention::build(&plan, &ghosts);
        assert_eq!(ret.len(), 5); // {0,1,2,20,21}
        assert!(!ret.is_valid(Gen::Cur));
    }

    #[test]
    fn store_and_collect() {
        let (plan, ghosts) = mini_plan();
        let mut ret = Retention::build(&plan, &ghosts);
        ret.rotate();
        ret.store(0, &[100.0, 101.0], &[102.0]); // globals 0,1 + extra 2
        ret.store(2, &[120.0], &[121.0]); // global 20 + extra 21
        ret.finish_generation();
        let got = ret.collect_range(Gen::Cur, 0, 3);
        assert_eq!(got, vec![(0, 100.0), (1, 101.0), (2, 102.0)]);
        let got = ret.collect_range(Gen::Cur, 20, 22);
        assert_eq!(got, vec![(20, 120.0), (21, 121.0)]);
        assert!(ret.collect_range(Gen::Cur, 5, 9).is_empty());
    }

    #[test]
    fn rotation_moves_generations() {
        let (plan, ghosts) = mini_plan();
        let mut ret = Retention::build(&plan, &ghosts);
        ret.rotate();
        ret.store(0, &[1.0, 2.0], &[3.0]);
        ret.store(2, &[4.0], &[5.0]);
        ret.finish_generation();
        ret.rotate();
        ret.store(0, &[10.0, 20.0], &[30.0]);
        ret.store(2, &[40.0], &[50.0]);
        ret.finish_generation();
        assert_eq!(ret.collect_range(Gen::Prev, 0, 1), vec![(0, 1.0)]);
        assert_eq!(ret.collect_range(Gen::Cur, 0, 1), vec![(0, 10.0)]);
    }

    #[test]
    fn invalid_generation_yields_nothing() {
        let (plan, ghosts) = mini_plan();
        let mut ret = Retention::build(&plan, &ghosts);
        ret.rotate();
        ret.store(0, &[1.0, 2.0], &[3.0]);
        ret.store(2, &[4.0], &[5.0]);
        ret.finish_generation();
        // Prev was never filled.
        assert!(ret.collect_range(Gen::Prev, 0, 30).is_empty());
    }

    #[test]
    fn poison_invalidates() {
        let (plan, ghosts) = mini_plan();
        let mut ret = Retention::build(&plan, &ghosts);
        ret.rotate();
        ret.store(0, &[1.0, 2.0], &[3.0]);
        ret.store(2, &[4.0], &[5.0]);
        ret.finish_generation();
        ret.poison();
        assert!(ret.collect_range(Gen::Cur, 0, 30).is_empty());
    }

    // These three are the release-profile regression for the former
    // `debug_assert_eq!` guards: `cargo test --release` runs them with
    // debug assertions off, so they only pass because the length checks
    // are hard asserts (a zip-truncation would otherwise pass silently).
    #[test]
    #[should_panic(expected = "naturals length mismatch")]
    fn short_naturals_slice_is_rejected_in_every_profile() {
        let (plan, ghosts) = mini_plan();
        let mut ret = Retention::build(&plan, &ghosts);
        ret.rotate();
        ret.store(0, &[100.0], &[102.0]); // peer 0 owes 2 naturals
    }

    #[test]
    #[should_panic(expected = "extras length mismatch")]
    fn short_extras_slice_is_rejected_in_every_profile() {
        let (plan, ghosts) = mini_plan();
        let mut ret = Retention::build(&plan, &ghosts);
        ret.rotate();
        ret.store(2, &[120.0], &[]); // peer 2 owes 1 extra
    }

    #[test]
    #[should_panic(expected = "naturals length mismatch")]
    fn store_gen_prev_checks_lengths_too() {
        let (plan, ghosts) = mini_plan();
        let mut ret = Retention::build(&plan, &ghosts);
        // The Prev branch used to have *no* length guard at all.
        ret.store_gen(Gen::Prev, 0, &[7.0], &[9.0]);
    }

    #[test]
    fn store_gen_prev_restores_without_rotation() {
        let (plan, ghosts) = mini_plan();
        let mut ret = Retention::build(&plan, &ghosts);
        ret.store_gen(Gen::Prev, 0, &[7.0, 8.0], &[9.0]);
        ret.store_gen(Gen::Prev, 2, &[1.0], &[2.0]);
        ret.set_valid(Gen::Prev);
        assert_eq!(ret.collect_range(Gen::Prev, 0, 2), vec![(0, 7.0), (1, 8.0)]);
        assert!(!ret.is_valid(Gen::Cur));
    }

    // ---- CheckpointStore ring placement --------------------------------

    fn store_on(members: &[usize], my_slot: usize, copies: usize) -> CheckpointStore {
        CheckpointStore::new(&CrConfig::default().with_copies(copies), members, my_slot)
    }

    #[test]
    fn checkpoint_placement_full_cluster_matches_ring() {
        let members: Vec<usize> = (0..5).collect();
        let st = store_on(&members, 1, 2);
        assert_eq!(st.partners, backup_targets(1, 5, 2));
        // Partner/client relations are mutually consistent across nodes.
        for slot in 0..5 {
            let s = store_on(&members, slot, 2);
            for &c in &s.clients {
                let cs = store_on(&members, c, 2);
                assert!(cs.partners.contains(&members[slot]));
            }
            for &d in &s.partners {
                let ds = store_on(&members, d, 2);
                assert!(ds.clients.contains(&members[slot]));
            }
        }
    }

    #[test]
    fn checkpoint_placement_is_by_slot_after_shrink() {
        // Members {0, 2, 3, 6}: the ring runs over slots, then maps back
        // to global ranks — slot 1 (rank 2) targets slot 2 (rank 3).
        let members = vec![0, 2, 3, 6];
        let st = store_on(&members, 1, 1);
        assert_eq!(st.partners, vec![3]);
        assert_eq!(st.holders_of(&members, 2), vec![3]);
    }

    #[test]
    fn checkpoint_copies_clamp_to_surviving_ring() {
        // Three members but five configured replicas: only two other
        // nodes exist to hold them.
        let members = vec![1, 4, 7];
        let st = store_on(&members, 0, 5);
        assert_eq!(st.partners.len(), 2);
        // A single survivor has no ring at all.
        let st = store_on(&[4], 0, 3);
        assert!(st.partners.is_empty() && st.clients.is_empty());
        assert!(st.holders_of(&[4], 4).is_empty());
    }

    #[test]
    fn checkpoint_poison_and_rebuild_drop_replicas() {
        let members: Vec<usize> = (0..4).collect();
        let mut st = store_on(&members, 2, 1);
        st.own = Checkpoint {
            iteration: 10,
            data: Arc::new(vec![1.0, 2.0]),
        };
        st.held.insert(
            1,
            Checkpoint {
                iteration: 10,
                data: Arc::new(vec![3.0]),
            },
        );
        st.poison();
        assert!(st.own.data.is_empty());
        assert!(st.replica_of(1).is_none());
        st.rebuild(&[0, 2], 1);
        assert_eq!(st.partners, vec![0]);
        assert_eq!(st.own.iteration, 0);
    }
}
