//! Redundancy placement — the core contribution of the paper (Sec. 4).
//!
//! To tolerate up to `φ` simultaneous node failures, every element of the
//! two most recent search directions must have `φ` redundant copies on `φ`
//! distinct nodes other than its owner (then any `ψ ≤ φ` failures leave at
//! least one copy alive).
//!
//! * [`backup_targets`] — the ring-alternating targets `d_ik` of Eqn. (5):
//!   `d_ik = (i + ⌈k/2⌉) mod N` for odd `k`, `(i − k/2) mod N` for even.
//!   With matrix entries clustered around the diagonal these targets
//!   already receive natural SpMV traffic, so the extras ride along for
//!   free (no extra latency — Sec. 5).
//! * [`compute_extra_sends`] — the extra sets `Rᶜᵢₖ` of Eqn. (6), using
//!   the natural multiplicity `mᵢ(s)` (Eqn. 3) and the count `gᵢ(s)` of
//!   backup targets already receiving `s`.
//!
//! Note on minimality: Eqn. (6) guarantees ≥ φ distinct holders (proved in
//! the tests below) and is minimal *when the backup targets that receive
//! an element naturally occupy the earliest rounds* — true for the banded
//! patterns the strategy is designed around (natural traffic goes to ring
//! neighbours, which are exactly `d_i1`, `d_i2`, …). For adversarial
//! patterns the formula can place a copy beyond the φ-th: it errs toward
//! more redundancy, never less. We reproduce the paper's formula exactly.

use crate::config::BackupStrategy;

/// The backup targets `d_i1 … d_iφ` of node `i` (paper Eqn. 5).
///
/// # Panics
/// Panics unless `1 ≤ phi < nodes` (the paper requires `φ < N`).
pub fn backup_targets(i: usize, nodes: usize, phi: usize) -> Vec<usize> {
    assert!(
        phi >= 1 && phi < nodes,
        "need 1 ≤ φ < N (φ={phi}, N={nodes})"
    );
    (1..=phi)
        .map(|k| {
            if k % 2 == 1 {
                (i + k.div_ceil(2)) % nodes
            } else {
                (i + nodes - k / 2) % nodes
            }
        })
        .collect()
}

/// Consecutive-ring targets `d_ik = (i + k) mod N` — the ablation
/// alternative to Eqn. (5).
pub fn backup_targets_consecutive(i: usize, nodes: usize, phi: usize) -> Vec<usize> {
    assert!(
        phi >= 1 && phi < nodes,
        "need 1 ≤ φ < N (φ={phi}, N={nodes})"
    );
    (1..=phi).map(|k| (i + k) % nodes).collect()
}

/// The targets a strategy places its copies on.
pub fn targets_for(strategy: &BackupStrategy, i: usize, nodes: usize, phi: usize) -> Vec<usize> {
    match strategy {
        BackupStrategy::Minimal | BackupStrategy::FullBlock => backup_targets(i, nodes, phi),
        BackupStrategy::MinimalConsecutive => backup_targets_consecutive(i, nodes, phi),
    }
}

/// Compute the extra send sets (one per peer, as local offsets) for node
/// `rank`, given its natural send lists `S_ik` (local offsets per peer).
///
/// For [`BackupStrategy::Minimal`] this is Eqn. (6); for
/// [`BackupStrategy::FullBlock`] the whole block goes to every backup
/// target (minus what already travels there naturally), realizing the
/// Sec. 4.2 upper bound.
pub fn compute_extra_sends(
    rank: usize,
    nodes: usize,
    phi: usize,
    strategy: &BackupStrategy,
    my_len: usize,
    send_natural: &[Vec<usize>],
) -> Vec<Vec<usize>> {
    assert_eq!(send_natural.len(), nodes);
    let targets = targets_for(strategy, rank, nodes, phi);

    // mᵢ(s): to how many distinct peers each owned element travels.
    let mut m = vec![0u32; my_len];
    for (k, sends) in send_natural.iter().enumerate() {
        if k == rank {
            continue;
        }
        for &off in sends {
            m[off] += 1;
        }
    }

    // Membership bitmap per backup target: s ∈ S_{i,d_ik}?
    let in_target: Vec<Vec<bool>> = targets
        .iter()
        .map(|&d| {
            let mut bits = vec![false; my_len];
            for &off in &send_natural[d] {
                bits[off] = true;
            }
            bits
        })
        .collect();

    // gᵢ(s): number of backup targets that already receive s naturally.
    let mut g = vec![0u32; my_len];
    for bits in &in_target {
        for (s, &b) in bits.iter().enumerate() {
            if b {
                g[s] += 1;
            }
        }
    }

    let mut extra: Vec<Vec<usize>> = vec![Vec::new(); nodes];
    for (k1, (&d, bits)) in targets.iter().zip(&in_target).enumerate() {
        let k = k1 + 1; // Eqn. 6 numbers rounds from 1
        let list = &mut extra[d];
        for s in 0..my_len {
            let include = match strategy {
                BackupStrategy::Minimal | BackupStrategy::MinimalConsecutive => {
                    !bits[s] && (m[s] - g[s]) as usize + k <= phi
                }
                BackupStrategy::FullBlock => !bits[s],
            };
            if include {
                list.push(s);
            }
        }
    }
    extra
}

/// Verify the coverage invariant: with the given natural sends and extras,
/// every owned element has at least `phi` distinct non-owner holders.
/// Returns the first violating local offset, if any. (Test/diagnostic
/// helper — the solver relies on the guarantee, tests verify it.)
pub fn check_coverage(
    rank: usize,
    nodes: usize,
    phi: usize,
    my_len: usize,
    send_natural: &[Vec<usize>],
    send_extra: &[Vec<usize>],
) -> Option<usize> {
    for s in 0..my_len {
        let mut holders = std::collections::BTreeSet::new();
        for k in 0..nodes {
            if k == rank {
                continue;
            }
            if send_natural[k].contains(&s) || send_extra[k].contains(&s) {
                holders.insert(k);
            }
        }
        if holders.len() < phi {
            return Some(s);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn targets_alternate_around_ring() {
        // Eqn. 5: +1, -1, +2, -2, +3, -3, +4, -4 around the ring.
        assert_eq!(backup_targets(0, 16, 8), vec![1, 15, 2, 14, 3, 13, 4, 12]);
        assert_eq!(backup_targets(5, 8, 3), vec![6, 4, 7]);
        // Wrap-around.
        assert_eq!(backup_targets(7, 8, 2), vec![0, 6]);
    }

    #[test]
    fn targets_are_distinct_and_not_self() {
        for nodes in [2usize, 3, 5, 8, 13] {
            for phi in 1..nodes {
                for i in 0..nodes {
                    let t = backup_targets(i, nodes, phi);
                    let mut u = t.clone();
                    u.sort_unstable();
                    u.dedup();
                    assert_eq!(u.len(), phi, "duplicates: i={i} N={nodes} φ={phi}");
                    assert!(!t.contains(&i), "self-target: i={i} N={nodes} φ={phi}");
                }
            }
        }
    }

    #[test]
    fn chen_single_failure_special_case() {
        // φ=1 must reduce to Chen's scheme: Rᶜᵢ (never-sent elements) goes
        // to (i+1) mod N, and only those.
        let nodes = 4;
        // Node 1 owns offsets 0..4; offsets 1, 2 travel naturally.
        let send_natural = vec![vec![1], vec![], vec![2], vec![]];
        let extra = compute_extra_sends(1, nodes, 1, &BackupStrategy::Minimal, 4, &send_natural);
        // d_11 = 2. Elements never sent anywhere: {0, 3}. Element 1 goes
        // to node 0 (m=1>0 ⟹ m-g=1 > φ-k=0 ⟹ excluded). Element 2
        // already goes to node 2 naturally.
        assert_eq!(extra[2], vec![0, 3]);
        assert!(extra[0].is_empty() && extra[1].is_empty() && extra[3].is_empty());
    }

    #[test]
    fn coverage_invariant_small_example() {
        let nodes = 5;
        let my_len = 6;
        // Mixed natural traffic.
        let send_natural = vec![
            vec![],     // self (rank 0)
            vec![0, 1], // to node 1
            vec![1],    // to node 2
            vec![],     // to node 3
            vec![5],    // to node 4
        ];
        for phi in 1..5 {
            let extra = compute_extra_sends(
                0,
                nodes,
                phi,
                &BackupStrategy::Minimal,
                my_len,
                &send_natural,
            );
            assert_eq!(
                check_coverage(0, nodes, phi, my_len, &send_natural, &extra),
                None,
                "coverage violated at φ={phi}"
            );
        }
    }

    #[test]
    fn minimal_sends_nothing_when_ring_neighbours_receive() {
        // Natural receivers = the nearest ring neighbours (the banded
        // case Eqn. 5 is designed for): redundancy is completely free as
        // long as φ ≤ multiplicity (the zero-overhead case of Sec. 5).
        let nodes = 6;
        let my_len = 4;
        let all: Vec<usize> = (0..my_len).collect();
        // Rank 0 sends everything to ranks 1, 5, 2 = d_01, d_02, d_03.
        let send_natural = vec![
            vec![],
            all.clone(),
            all.clone(),
            vec![],
            vec![],
            all.clone(),
        ];
        for phi in 1..=3 {
            let extra = compute_extra_sends(
                0,
                nodes,
                phi,
                &BackupStrategy::Minimal,
                my_len,
                &send_natural,
            );
            let total: usize = extra.iter().map(Vec::len).sum();
            assert_eq!(total, 0, "φ={phi} should be free");
        }
        // φ=4 needs exactly one more copy of each element (to d_04 = 4).
        let extra =
            compute_extra_sends(0, nodes, 4, &BackupStrategy::Minimal, my_len, &send_natural);
        assert_eq!(
            check_coverage(0, nodes, 4, my_len, &send_natural, &extra),
            None
        );
        let total: usize = extra.iter().map(Vec::len).sum();
        assert_eq!(total, my_len, "exactly one extra copy per element");
        assert_eq!(extra[4].len(), my_len);
    }

    #[test]
    fn eqn6_is_conservative_for_late_natural_targets() {
        // Natural receivers {1, 2, 3}: target d_03 = 2 receives naturally
        // but sits in round k=3 > φ−(m−g) — Eqn. (6) then places a fourth
        // copy (conservative, never fewer than φ). Documents the exact
        // paper behaviour.
        let nodes = 6;
        let my_len = 2;
        let all: Vec<usize> = (0..my_len).collect();
        let send_natural = vec![
            vec![],
            all.clone(), // d_01 (k=1)
            all.clone(), // d_03 (k=3)
            all.clone(), // not a target
            vec![],
            vec![], // d_02 (k=2)
        ];
        let extra =
            compute_extra_sends(0, nodes, 3, &BackupStrategy::Minimal, my_len, &send_natural);
        // m = 3 ≥ φ = 3, yet round 2 (target 5) gets a copy:
        // m − g = 3 − 2 = 1 ≤ φ − k = 1.
        assert_eq!(extra[5], all);
        // Coverage is of course still satisfied.
        assert_eq!(
            check_coverage(0, nodes, 3, my_len, &send_natural, &extra),
            None
        );
    }

    #[test]
    fn full_block_strategy_sends_everything() {
        let nodes = 4;
        let my_len = 5;
        let send_natural = vec![vec![], vec![0], vec![], vec![]];
        let extra = compute_extra_sends(
            0,
            nodes,
            2,
            &BackupStrategy::FullBlock,
            my_len,
            &send_natural,
        );
        // Targets: d_01 = 1, d_02 = 3. To node 1: everything except the
        // naturally-sent {0}; to node 3: everything.
        assert_eq!(extra[1], vec![1, 2, 3, 4]);
        assert_eq!(extra[3], vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn minimal_is_no_larger_than_full_block() {
        let nodes = 7;
        let my_len = 10;
        let send_natural: Vec<Vec<usize>> = (0..nodes)
            .map(|k| (0..my_len).filter(|s| (s + k) % 3 == 0 && k != 0).collect())
            .collect();
        for phi in 1..nodes {
            let min_total: usize = compute_extra_sends(
                0,
                nodes,
                phi,
                &BackupStrategy::Minimal,
                my_len,
                &send_natural,
            )
            .iter()
            .map(Vec::len)
            .sum();
            let full_total: usize = compute_extra_sends(
                0,
                nodes,
                phi,
                &BackupStrategy::FullBlock,
                my_len,
                &send_natural,
            )
            .iter()
            .map(Vec::len)
            .sum();
            assert!(min_total <= full_total, "φ={phi}");
            assert_eq!(
                check_coverage(
                    0,
                    nodes,
                    phi,
                    my_len,
                    &send_natural,
                    &compute_extra_sends(
                        0,
                        nodes,
                        phi,
                        &BackupStrategy::Minimal,
                        my_len,
                        &send_natural
                    )
                ),
                None
            );
        }
    }

    #[test]
    #[should_panic(expected = "need 1 ≤ φ < N")]
    fn phi_must_be_less_than_n() {
        backup_targets(0, 4, 4);
    }

    #[test]
    fn consecutive_targets_walk_the_ring() {
        assert_eq!(backup_targets_consecutive(0, 8, 3), vec![1, 2, 3]);
        assert_eq!(backup_targets_consecutive(6, 8, 3), vec![7, 0, 1]);
    }

    #[test]
    fn alternating_avoids_extra_latency_on_banded_traffic() {
        // Banded-matrix traffic from rank 3: lower-boundary elements go to
        // the −1 neighbour (rank 2), upper-boundary elements to the +1
        // neighbour (rank 4); every element has multiplicity 1. At φ=2 one
        // extra copy per element is unavoidable for both strategies — but
        // the Eqn. (5) alternation places all extras on the {+1, −1} links
        // that already carry traffic, while the consecutive ring must open
        // a *new* link to the silent +2 neighbour (extra latency, the
        // Sec. 4.2 penalty).
        let nodes = 8;
        let my_len = 4;
        let mut send_natural = vec![Vec::new(); nodes];
        send_natural[2] = vec![0, 1]; // −1 neighbour
        send_natural[4] = vec![2, 3]; // +1 neighbour
        let alt = compute_extra_sends(3, nodes, 2, &BackupStrategy::Minimal, my_len, &send_natural);
        let con = compute_extra_sends(
            3,
            nodes,
            2,
            &BackupStrategy::MinimalConsecutive,
            my_len,
            &send_natural,
        );
        let silent_extras = |extra: &[Vec<usize>]| -> usize {
            (0..nodes)
                .filter(|&d| send_natural[d].is_empty())
                .map(|d| extra[d].len())
                .sum()
        };
        assert_eq!(silent_extras(&alt), 0, "alternating piggybacks everything");
        assert!(
            silent_extras(&con) > 0,
            "consecutive opens a silent link: {con:?}"
        );
        // Both still guarantee coverage.
        assert_eq!(
            check_coverage(3, nodes, 2, my_len, &send_natural, &alt),
            None
        );
        assert_eq!(
            check_coverage(3, nodes, 2, my_len, &send_natural, &con),
            None
        );
    }

    #[test]
    fn coverage_holds_for_consecutive_strategy() {
        let nodes = 6;
        let my_len = 5;
        let send_natural = vec![vec![], vec![0, 2], vec![], vec![1], vec![], vec![4]];
        for phi in 1..nodes {
            let extra = compute_extra_sends(
                0,
                nodes,
                phi,
                &BackupStrategy::MinimalConsecutive,
                my_len,
                &send_natural,
            );
            assert_eq!(
                check_coverage(0, nodes, phi, my_len, &send_natural, &extra),
                None,
                "φ={phi}"
            );
        }
    }
}
