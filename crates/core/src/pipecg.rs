//! The resilient distributed **pipelined** PCG node program —
//! communication-hiding PCG (Ghysels–Vanroose recurrences) with the ESR
//! resilience of Levonyak, Pacher & Gansterer (arXiv:1912.09230) woven in.
//!
//! Differences from the blocking [`crate::pcg`] solver:
//!
//! * the two dependent reductions per iteration are fused into **one**
//!   length-3 all-reduce (`γ = rᵀu`, `δ = wᵀu`, `‖r‖²`), issued with
//!   [`parcomm::NodeCtx::iallreduce_vec`] *before* the preconditioner
//!   application, ghost exchange, and SpMV — all of which are independent
//!   of the reduction result, so their cost hides the reduction's flight
//!   time on the overlap-aware virtual clock;
//! * the ghost exchange scatters `m(j) = M⁻¹ w(j)` and piggybacks
//!   redundant copies of `u(j)` and `p(j-1)` (the two vectors from which
//!   the whole pipelined state is reconstructible — see
//!   [`crate::pipe_recovery`]);
//! * the ULFM boundary is polled at the same post-exchange point; a
//!   failure first drains the in-flight reduction (its values are from the
//!   pre-failure state and are simply discarded), then reconstructs and
//!   restarts the interrupted iteration.
//!
//! Requires a block-diagonal (M-given) preconditioner — `None`, `Jacobi`,
//! or `BlockJacobiExact`. The P-given `ExplicitP` variant applies `P` with
//! its own ghost exchange, which would serialize against the overlapped
//! reduction and reintroduce the latency the method exists to hide; it is
//! rejected at setup.

use std::collections::HashSet;
use std::sync::Arc;

use parcomm::comm::ReduceOp;
use parcomm::{FailAt, NodeCtx};
use sparsemat::vecops::{axpy, dot, xpay};
use sparsemat::{BlockPartition, Csr};

use crate::config::SolverConfig;
use crate::localmat::LocalMatrix;
use crate::pcg::NodeOutcome;
use crate::pipe_recovery::{self, PipeSolverState};
use crate::precsetup::NodePrecond;
use crate::recovery::RecoveryEnv;
use crate::redundancy;
use crate::retention::Retention;
use crate::scatter::{PipeBackups, ScatterPlan};

/// The SPMD node program: solve `A x = b` with (optionally resilient)
/// pipelined PCG.
pub fn esr_pipecg_node(
    ctx: &mut NodeCtx,
    a: &Arc<Csr>,
    b: &Arc<Vec<f64>>,
    cfg: &SolverConfig,
) -> NodeOutcome {
    let n = a.n_rows();
    assert_eq!(b.len(), n, "rhs length");
    let rank = ctx.rank();
    let part = BlockPartition::new(n, ctx.size());

    // ---- setup: local rows, communication plans, preconditioner --------
    let lm = LocalMatrix::build(a, &part, rank);
    let mut plan = ScatterPlan::build(ctx, &lm, &part);
    if let Some(res) = &cfg.resilience {
        plan.send_extra = redundancy::compute_extra_sends(
            rank,
            ctx.size(),
            res.phi,
            &res.strategy,
            lm.n_local(),
            &plan.send_natural,
        );
        plan.announce_extras(ctx);
    }
    let mut ret_u = Retention::build(&plan, &lm.ghost_cols);
    let mut ret_p = Retention::build(&plan, &lm.ghost_cols);
    let mut prec = NodePrecond::setup(ctx, &cfg.precond, &part, &lm)
        .unwrap_or_else(|e| panic!("rank {rank}: preconditioner setup failed: {e}"));
    assert!(
        !prec.is_explicit_p(),
        "rank {rank}: pipelined PCG requires a block-diagonal (M-given) preconditioner \
         (None, Jacobi, or BlockJacobiExact), not ExplicitP"
    );
    ctx.barrier();
    let vtime_setup = ctx.vtime();
    ctx.reset_metrics();

    // ---- initial state: x(0) = 0, u(0) = M⁻¹r(0), w(0) = A u(0) --------
    let nloc = lm.n_local();
    let range = lm.range.clone();
    let b_loc: Vec<f64> = b[range.clone()].to_vec();
    let mut x = vec![0.0; nloc];
    let mut r = b_loc.clone(); // r(0) = b − A·0
    let mut u = vec![0.0; nloc];
    prec.apply(ctx, &r, &mut u);
    let mut ghosts = vec![0.0; lm.ghost_cols.len()];
    // The w(0) = A u(0) bootstrap needs one plain ghost exchange of u.
    plan.exchange(ctx, &u, &mut ghosts, None);
    let mut w = vec![0.0; nloc];
    lm.spmv(&u, &ghosts, &mut w);
    ctx.clock_mut().advance_flops(lm.spmv_flops());

    let r0_sq = ctx.allreduce_sum(dot(&r, &r));
    ctx.clock_mut().advance_flops(2 * nloc);
    let r0_norm = r0_sq.sqrt();
    let target_sq = cfg.rel_tol * cfg.rel_tol * r0_sq;

    let mut z = vec![0.0; nloc];
    let mut q = vec![0.0; nloc];
    let mut s = vec![0.0; nloc];
    let mut p = vec![0.0; nloc];
    let mut mbuf = vec![0.0; nloc];
    let mut nbuf = vec![0.0; nloc];
    let mut gamma_prev = 0.0f64;
    let mut alpha_prev = 0.0f64;

    let mut iterations = 0usize;
    let mut residual_sq = r0_sq;
    let mut converged = r0_norm <= f64::MIN_POSITIVE;
    let mut vtime_recovery = 0.0f64;
    let mut recoveries = 0usize;
    let mut ranks_recovered = 0usize;
    let mut handled_iter: HashSet<u64> = HashSet::new();
    let mut handled_sub: HashSet<(u64, u32)> = HashSet::new();
    let mut recovery_seq: u32 = 0;
    let resilient = cfg.resilience.is_some();

    while !converged && iterations < cfg.max_iter {
        let j = iterations as u64;

        // The single fused reduction of the iteration, overlapped with
        // everything below until the wait.
        ctx.clock_mut().advance_flops(6 * nloc);
        let red_req =
            ctx.iallreduce_vec(ReduceOp::Sum, vec![dot(&r, &u), dot(&w, &u), dot(&r, &r)]);

        // m(j) = M⁻¹ w(j) — independent of the reduction result.
        prec.apply(ctx, &w, &mut mbuf);

        // Ghost exchange of m(j), with redundant copies of u(j), p(j-1)
        // appended. The rotation per scatter expires stale generations (and
        // the post-recovery restart re-scatters, restoring lost copies).
        if resilient {
            ret_u.rotate();
            ret_p.rotate();
            plan.exchange_pipelined(
                ctx,
                &mbuf,
                &mut ghosts,
                Some(PipeBackups {
                    u_loc: &u,
                    p_loc: if j > 0 { Some(&p) } else { None },
                    ret_u: &mut ret_u,
                    ret_p: &mut ret_p,
                }),
            );
            ret_u.finish_generation();
            if j > 0 {
                ret_p.finish_generation();
            }
        } else {
            plan.exchange_pipelined(ctx, &mbuf, &mut ghosts, None);
        }

        // ULFM failure boundary (paper Sec. 1.1.1): consistent notification.
        if resilient && !handled_iter.contains(&j) {
            handled_iter.insert(j);
            let failed = ctx.poll_failures(FailAt::Iteration(j));
            if !failed.is_empty() {
                // Drain the overlapped reduction first: its values stem
                // from the pre-failure state and are discarded — the
                // restart recomputes them from the reconstructed state.
                let _ = red_req.wait(ctx);
                let t0 = ctx.vtime();
                let res = cfg.resilience.as_ref().unwrap();
                let env = RecoveryEnv {
                    a,
                    b_loc: &b_loc,
                    part: &part,
                    lm: &lm,
                    cfg: &res.recovery,
                    iteration: j,
                    has_prev: j > 0,
                };
                let mut st = PipeSolverState {
                    x: &mut x,
                    r: &mut r,
                    u: &mut u,
                    w: &mut w,
                    p: &mut p,
                    s: &mut s,
                    q: &mut q,
                    z: &mut z,
                    ghosts: &mut ghosts,
                    ret_u: &mut ret_u,
                    ret_p: &mut ret_p,
                    gamma_prev: &mut gamma_prev,
                    alpha_prev: &mut alpha_prev,
                };
                let report = pipe_recovery::recover_pipelined(
                    ctx,
                    &env,
                    &mut prec,
                    &failed,
                    &mut handled_sub,
                    &mut recovery_seq,
                    &mut st,
                );
                recoveries += 1;
                ranks_recovered += report.total_failed;
                vtime_recovery += ctx.vtime() - t0;
                // Restart the interrupted iteration: re-scatter m(j) (which
                // also restores redundancy) and re-reduce from the
                // reconstructed state.
                continue;
            }
        }

        // n(j) = A m(j) — the SpMV the reduction hides behind.
        lm.spmv(&mbuf, &ghosts, &mut nbuf);
        ctx.clock_mut().advance_flops(lm.spmv_flops());

        let red = red_req.wait(ctx);
        let (gamma, delta) = (red[0], red[1]);
        residual_sq = red[2];
        if residual_sq <= target_sq {
            converged = true;
            break;
        }

        let alpha;
        if iterations == 0 {
            if delta <= 0.0 || !delta.is_finite() {
                panic!("rank {rank}: pipelined PCG breakdown at iteration {j} (δ = {delta})");
            }
            alpha = gamma / delta;
            z.copy_from_slice(&nbuf);
            q.copy_from_slice(&mbuf);
            s.copy_from_slice(&w);
            p.copy_from_slice(&u);
        } else {
            let beta = gamma / gamma_prev;
            // In exact arithmetic δ − β γ / α(j-1) = pᵀA p.
            let denom = delta - beta * gamma / alpha_prev;
            if denom <= 0.0 || !denom.is_finite() {
                panic!("rank {rank}: pipelined PCG breakdown at iteration {j} (pᵀAp = {denom})");
            }
            alpha = gamma / denom;
            xpay(&nbuf, beta, &mut z); // z = n + β z
            xpay(&mbuf, beta, &mut q); // q = m + β q
            xpay(&w, beta, &mut s); //    s = w + β s
            xpay(&u, beta, &mut p); //    p = u + β p
        }
        axpy(alpha, &p, &mut x);
        axpy(-alpha, &s, &mut r);
        axpy(-alpha, &q, &mut u);
        axpy(-alpha, &z, &mut w);
        // Four axpy updates always; the four xpay recurrences only from
        // iteration 1 on (iteration 0 initializes by copy, zero flops).
        ctx.clock_mut()
            .advance_flops(if iterations == 0 { 8 } else { 16 } * nloc);
        gamma_prev = gamma;
        alpha_prev = alpha;
        iterations += 1;
    }

    NodeOutcome {
        rank,
        x_loc: x,
        range_start: range.start,
        iterations,
        residual_norm: residual_sq.sqrt(),
        initial_residual_norm: r0_norm,
        converged,
        vtime_total: ctx.vtime(),
        vtime_recovery,
        recoveries,
        ranks_recovered,
        stats: ctx.stats().clone(),
        vtime_setup,
        retired: false,
    }
}
