//! The resilient distributed **pipelined** PCG node program —
//! communication-hiding PCG (Ghysels–Vanroose recurrences) with the ESR
//! resilience of Levonyak, Pacher & Gansterer (arXiv:1912.09230) woven in.
//!
//! Differences from the blocking [`crate::pcg`] solver:
//!
//! * the two dependent reductions per iteration are fused into **one**
//!   length-3 all-reduce (`γ = rᵀu`, `δ = wᵀu`, `‖r‖²`), issued with
//!   [`parcomm::NodeCtx::iallreduce_vec`] (or its group twin on a shrunken
//!   cluster) *before* the preconditioner application, ghost exchange, and
//!   SpMV — all of which are independent of the reduction result, so their
//!   cost hides the reduction's flight time on the overlap-aware virtual
//!   clock;
//! * the ghost exchange scatters `m(j) = M⁻¹ w(j)` and piggybacks
//!   redundant copies of `u(j)` and `p(j-1)` — the two vectors from which
//!   the whole pipelined state is reconstructible through the invariants
//!   `r = Mu, w = Au, s = Ap, q = M⁻¹s, z = Aq` (see [`PipeKernel`]);
//! * the ULFM boundary is polled at the same post-exchange point; a
//!   failure first drains the in-flight reduction (its values are from the
//!   pre-failure state and are simply discarded), then reconstructs
//!   through the shared [`crate::engine`] and restarts the interrupted
//!   iteration.
//!
//! Requires a block-diagonal (M-given) preconditioner — `None`, `Jacobi`,
//! or `BlockJacobiExact`. The P-given `ExplicitP` variant applies `P` with
//! its own ghost exchange, which would serialize against the overlapped
//! reduction and reintroduce the latency the method exists to hide; it is
//! rejected by configuration validation.

use std::collections::HashSet;
use std::ops::Range;
use std::sync::Arc;

use parcomm::comm::ReduceOp;
use parcomm::fault::poison;
use parcomm::{FailAt, NodeCtx};
use sparsemat::vecops::{axpy, dot, xpay};
use sparsemat::Csr;

use crate::config::SolverConfig;
use crate::engine::{
    self, splice, ChannelRead, EngineComm, EngineEnv, EngineOutcome, EngineShared, Layout,
    ReconBlock, RecoveryTimeline, ResilientKernel,
};
use crate::pcg::NodeOutcome;
use crate::retention::Gen;
use crate::scatter::PipeBackups;

// Block-vector slots of the pipelined kernel.
const U: usize = 0;
const P: usize = 1;
const R: usize = 2;
const X: usize = 3;
const W: usize = 4;
const S: usize = 5;
const Q: usize = 6;
const Z: usize = 7;

/// Pipelined PCG's [`ResilientKernel`].
///
/// The pipelined solver carries four auxiliary vectors beyond PCG's
/// `(x, r, z, p)`, but they are all tied to `u` and `p` by the invariants
///
/// ```text
/// r = M u,   w = A u,   s = A p,   q = M⁻¹ s,   z = A q,
/// ```
///
/// so redundant copies of **u(j)** and **p(j-1)** (two retention channels,
/// distributed with the `m`-ghost exchange — see
/// [`crate::scatter::PipeBackups`]) are enough to reconstruct everything:
/// `r = M u` per block from static data, `x` through the engine's shared
/// inner solve, and the 8-vector tail `w, s, q, z` through three
/// distributed `A`-products in the kernel's distributed stage.
pub(crate) struct PipeKernel<'a> {
    /// The iterate block `x(j)_Iᵢ`.
    pub x: &'a mut Vec<f64>,
    /// The residual block `r(j)_Iᵢ`.
    pub r: &'a mut Vec<f64>,
    /// `u(j) = M⁻¹ r(j)`.
    pub u: &'a mut Vec<f64>,
    /// `w(j) = A u(j)`.
    pub w: &'a mut Vec<f64>,
    /// The search direction `p(j-1)_Iᵢ`.
    pub p: &'a mut Vec<f64>,
    /// `s(j-1) = A p(j-1)`.
    pub s: &'a mut Vec<f64>,
    /// `q(j-1) = M⁻¹ s(j-1)`.
    pub q: &'a mut Vec<f64>,
    /// `z(j-1) = A q(j-1)`.
    pub z: &'a mut Vec<f64>,
    /// `m(j) = M⁻¹ w(j)` scratch.
    pub mbuf: &'a mut Vec<f64>,
    /// `n(j) = A m(j)` scratch.
    pub nbuf: &'a mut Vec<f64>,
    /// Ghost values of `m(j)` from the last exchange.
    pub ghosts: &'a mut Vec<f64>,
    /// Owned right-hand-side block.
    pub b_loc: &'a mut Vec<f64>,
    /// The replicated scalar `γ(j-1) = r(j-1)ᵀu(j-1)`.
    pub gamma_prev: &'a mut f64,
    /// The replicated scalar `α(j-1)`.
    pub alpha_prev: &'a mut f64,
    /// Whether a search direction `p(j-1)` exists yet (replicated;
    /// checkpoint-pack state — the restarted loop top branches on it).
    pub has_dir: &'a mut bool,
}

impl ResilientKernel for PipeKernel<'_> {
    fn n_channels(&self) -> usize {
        2
    }

    fn channel_reads(&self, has_prev: bool) -> Vec<ChannelRead> {
        vec![
            ChannelRead {
                channel: 0,
                generation: Gen::Cur,
                required: true,
                what: "u(j)",
            },
            ChannelRead {
                channel: 1,
                generation: Gen::Cur,
                required: has_prev,
                what: "p(j-1)",
            },
        ]
    }

    fn scalars(&self) -> Vec<f64> {
        vec![*self.gamma_prev, *self.alpha_prev]
    }

    fn set_scalars(&mut self, s: &[f64]) {
        *self.gamma_prev = s[0];
        *self.alpha_prev = s[1];
    }

    fn poison(&mut self) {
        poison(self.x);
        poison(self.r);
        poison(self.u);
        poison(self.w);
        poison(self.p);
        poison(self.s);
        poison(self.q);
        poison(self.z);
        poison(self.ghosts);
        *self.gamma_prev = f64::NAN;
        *self.alpha_prev = f64::NAN;
    }

    fn n_pack_vecs(&self) -> usize {
        8
    }

    fn n_pack_scalars(&self) -> usize {
        3
    }

    fn pack(&self) -> Vec<f64> {
        // The full 8-vector recurrence state plus the replicated scalars;
        // has_dir travels as 0.0/1.0 so the restarted loop top takes the
        // same β branch it originally did.
        let mut data = Vec::with_capacity(8 * self.x.len() + 3);
        data.extend_from_slice(self.x);
        data.extend_from_slice(self.r);
        data.extend_from_slice(self.u);
        data.extend_from_slice(self.w);
        data.extend_from_slice(self.p);
        data.extend_from_slice(self.s);
        data.extend_from_slice(self.q);
        data.extend_from_slice(self.z);
        data.push(*self.gamma_prev);
        data.push(*self.alpha_prev);
        data.push(if *self.has_dir { 1.0 } else { 0.0 });
        data
    }

    fn unpack(&mut self, data: &[f64], new_range: &Range<usize>, b: &[f64]) {
        let nloc = new_range.len();
        let vec_at = |slot: usize| data[slot * nloc..(slot + 1) * nloc].to_vec();
        *self.x = vec_at(0);
        *self.r = vec_at(1);
        *self.u = vec_at(2);
        *self.w = vec_at(3);
        *self.p = vec_at(4);
        *self.s = vec_at(5);
        *self.q = vec_at(6);
        *self.z = vec_at(7);
        *self.gamma_prev = data[8 * nloc];
        *self.alpha_prev = data[8 * nloc + 1];
        *self.has_dir = data[8 * nloc + 2] != 0.0;
        *self.b_loc = b[new_range.clone()].to_vec();
        *self.mbuf = vec![0.0; nloc];
        *self.nbuf = vec![0.0; nloc];
    }

    fn n_block_vecs(&self) -> usize {
        8
    }

    fn r_slot(&self) -> usize {
        R
    }

    fn x_slot(&self) -> usize {
        X
    }

    fn x_loc(&self) -> &[f64] {
        self.x
    }

    fn rebuild_local(
        &mut self,
        ctx: &mut NodeCtx,
        shared: &EngineShared<'_>,
        blk: &mut ReconBlock,
        mut copies: Vec<Option<Vec<f64>>>,
    ) {
        let u_new = copies[0].take().expect("u(j) copies are mandatory");
        // r_If = M_{If,If} u_If — local because M is block-diagonal.
        blk.vecs[R] = engine::m_block_forward(ctx, shared.a, shared.precond, &blk.range, &u_new);
        if let Some(p_new) = copies[1].take() {
            blk.vecs[P] = p_new;
        } else {
            // Iteration 0: no search direction exists yet; the solver's
            // β = 0 branch re-initializes p, s, q, z from u and w.
            let blen = blk.range.len();
            blk.vecs[P] = vec![0.0; blen];
            blk.vecs[S] = vec![0.0; blen];
            blk.vecs[Q] = vec![0.0; blen];
            blk.vecs[Z] = vec![0.0; blen];
        }
        blk.vecs[U] = u_new;
    }

    fn rebuild_distributed(
        &mut self,
        ctx: &mut NodeCtx,
        shared: &EngineShared<'_>,
        comm: &mut EngineComm<'_>,
        blocks: &mut [ReconBlock],
    ) {
        // w_If = (A u)_If: survivor ghost values + group all-gather of the
        // reconstructed u blocks.
        comm.apply_matrix(ctx, shared.a, blocks, U, W, self.u);
        if shared.has_prev {
            // s_If = (A p)_If, then q_If = M⁻¹_{b,b} s_If per block (local,
            // static data), then z_If = (A q)_If.
            comm.apply_matrix(ctx, shared.a, blocks, P, S, self.p);
            for blk in blocks.iter_mut() {
                blk.vecs[Q] = engine::m_block_inverse(
                    ctx,
                    shared.a,
                    shared.precond,
                    &blk.range,
                    &blk.vecs[S],
                );
            }
            comm.apply_matrix(ctx, shared.a, blocks, Q, Z, self.q);
        }
    }

    fn install(&mut self, blk: &ReconBlock) {
        self.u.copy_from_slice(&blk.vecs[U]);
        self.p.copy_from_slice(&blk.vecs[P]);
        self.r.copy_from_slice(&blk.vecs[R]);
        self.x.copy_from_slice(&blk.vecs[X]);
        self.w.copy_from_slice(&blk.vecs[W]);
        self.s.copy_from_slice(&blk.vecs[S]);
        self.q.copy_from_slice(&blk.vecs[Q]);
        self.z.copy_from_slice(&blk.vecs[Z]);
    }

    fn splice(
        &mut self,
        new_range: &Range<usize>,
        own: Option<&Range<usize>>,
        blocks: &[ReconBlock],
        b: &[f64],
    ) {
        *self.x = splice(new_range, own, self.x, blocks, X);
        *self.r = splice(new_range, own, self.r, blocks, R);
        *self.u = splice(new_range, own, self.u, blocks, U);
        *self.w = splice(new_range, own, self.w, blocks, W);
        *self.p = splice(new_range, own, self.p, blocks, P);
        *self.s = splice(new_range, own, self.s, blocks, S);
        *self.q = splice(new_range, own, self.q, blocks, Q);
        *self.z = splice(new_range, own, self.z, blocks, Z);
        *self.b_loc = b[new_range.clone()].to_vec();
    }

    fn resize_scratch(&mut self, nloc: usize, n_ghosts: usize) {
        *self.mbuf = vec![0.0; nloc];
        *self.nbuf = vec![0.0; nloc];
        *self.ghosts = vec![0.0; n_ghosts];
    }
}

/// The SPMD node program: solve `A x = b` with (optionally resilient)
/// pipelined PCG.
pub fn esr_pipecg_node(
    ctx: &mut NodeCtx,
    a: &Arc<Csr>,
    b: &Arc<Vec<f64>>,
    cfg: &SolverConfig,
) -> NodeOutcome {
    let n = a.n_rows();
    assert_eq!(b.len(), n, "rhs length");
    let rank = ctx.rank();

    // ---- setup: local rows, communication plans, preconditioner --------
    // Protection flavor (see `pcg`): ESR needs two retention channels,
    // copies of u(j) and of p(j-1); checkpoint/rollback needs none.
    let cr = cfg.resilience.as_ref().and_then(|res| res.cr());
    let esr = cfg.resilience.is_some() && cr.is_none();
    let mut layout = Layout::build_full(ctx, a, cfg, if cr.is_some() { 0 } else { 2 });
    assert!(
        !layout.prec.is_explicit_p(),
        "rank {rank}: pipelined PCG requires a block-diagonal (M-given) preconditioner \
         (None, Jacobi, or BlockJacobiExact), not ExplicitP"
    );
    ctx.barrier();
    let vtime_setup = ctx.vtime();
    ctx.reset_metrics();

    // ---- initial state: x(0) = 0, u(0) = M⁻¹r(0), w(0) = A u(0) --------
    let mut nloc = layout.lm.n_local();
    let mut b_loc: Vec<f64> = b[layout.lm.range.clone()].to_vec();
    let mut x = vec![0.0; nloc];
    let mut r = b_loc.clone(); // r(0) = b − A·0
    let mut u = vec![0.0; nloc];
    layout.prec.apply(ctx, &r, &mut u);
    let mut ghosts = vec![0.0; layout.lm.ghost_cols.len()];
    // The w(0) = A u(0) bootstrap needs one plain ghost exchange of u.
    layout.plan.exchange(ctx, &u, &mut ghosts, None);
    let mut w = vec![0.0; nloc];
    layout.lm.spmv(&u, &ghosts, &mut w);
    ctx.clock_mut().advance_flops(layout.lm.spmv_flops());

    let r0_sq = ctx.allreduce_sum(dot(&r, &r));
    ctx.clock_mut().advance_flops(2 * nloc);
    let r0_norm = r0_sq.sqrt();
    let target_sq = cfg.rel_tol * cfg.rel_tol * r0_sq;

    let mut z = vec![0.0; nloc];
    let mut q = vec![0.0; nloc];
    let mut s = vec![0.0; nloc];
    let mut p = vec![0.0; nloc];
    let mut mbuf = vec![0.0; nloc];
    let mut nbuf = vec![0.0; nloc];
    let mut gamma_prev = 0.0f64;
    let mut alpha_prev = 0.0f64;
    let mut pool = ctx.spare_pool();

    let mut iterations = 0usize;
    let mut residual_sq = r0_sq;
    let mut converged = r0_norm <= f64::MIN_POSITIVE;
    let mut retired = false;
    let mut vtime_recovery = 0.0f64;
    let mut recoveries = 0usize;
    let mut ranks_recovered = 0usize;
    let mut handled_iter: HashSet<u64> = HashSet::new();
    let mut handled_sub: HashSet<(u64, u32)> = HashSet::new();
    let mut recovery_seq: u32 = 0;
    let mut recovery_timelines: Vec<RecoveryTimeline> = Vec::new();
    let resilient = cfg.resilience.is_some();
    // True once a search direction p(j-1) exists. Cleared when a shrink
    // re-bootstraps the pipeline (below): the recurrences restart through
    // the β = 0 branch, exactly like iteration 0.
    let mut has_dir = false;
    let mut ckpt =
        cr.map(|c| crate::retention::CheckpointStore::new(c, &layout.members, layout.my_slot));

    while !converged && iterations < cfg.max_iter {
        let j = iterations as u64;
        ctx.trace_open("iteration", j);

        // Periodic checkpoint deposit of the loop-top recurrence state
        // (before the overlapped reduction is issued).
        if let Some(store) = ckpt.as_mut() {
            if j.is_multiple_of(store.interval() as u64) {
                let kernel = PipeKernel {
                    x: &mut x,
                    r: &mut r,
                    u: &mut u,
                    w: &mut w,
                    p: &mut p,
                    s: &mut s,
                    q: &mut q,
                    z: &mut z,
                    mbuf: &mut mbuf,
                    nbuf: &mut nbuf,
                    ghosts: &mut ghosts,
                    b_loc: &mut b_loc,
                    gamma_prev: &mut gamma_prev,
                    alpha_prev: &mut alpha_prev,
                    has_dir: &mut has_dir,
                };
                let data = kernel.pack();
                let seq = recovery_seq;
                recovery_seq += 1;
                store.deposit(ctx, seq, j, data);
            }
        }

        // The single fused reduction of the iteration, overlapped with
        // everything below until the wait (group-backed after a shrink).
        ctx.clock_mut().advance_flops(6 * nloc);
        let red_req = layout.iallreduce_vec(
            ctx,
            ReduceOp::Sum,
            vec![dot(&r, &u), dot(&w, &u), dot(&r, &r)],
        );

        // m(j) = M⁻¹ w(j) — independent of the reduction result.
        layout.prec.apply(ctx, &w, &mut mbuf);

        // Ghost exchange of m(j), with redundant copies of u(j), p(j-1)
        // appended. The rotation per scatter expires stale generations (and
        // the post-recovery restart re-scatters, restoring lost copies).
        if esr {
            let (ch_u, ch_p) = layout.channels.split_at_mut(1);
            let ret_u = &mut ch_u[0];
            let ret_p = &mut ch_p[0];
            ret_u.rotate();
            ret_p.rotate();
            layout.plan.exchange_pipelined(
                ctx,
                &mbuf,
                &mut ghosts,
                Some(PipeBackups {
                    u_loc: &u,
                    p_loc: if has_dir { Some(&p) } else { None },
                    ret_u,
                    ret_p,
                }),
            );
            ret_u.finish_generation();
            if has_dir {
                ret_p.finish_generation();
            }
        } else {
            layout
                .plan
                .exchange_pipelined(ctx, &mbuf, &mut ghosts, None);
        }

        // ULFM failure boundary (paper Sec. 1.1.1): consistent notification.
        if resilient && !handled_iter.contains(&j) {
            handled_iter.insert(j);
            let failed = layout.poll_member_failures(ctx, FailAt::Iteration(j));
            if !failed.is_empty() {
                // Drain the overlapped reduction first: its values stem
                // from the pre-failure state and are discarded — the
                // restart recomputes them from the reconstructed state.
                let _ = red_req.wait(ctx);
                let t0 = ctx.vtime();
                let res = cfg.resilience.as_ref().unwrap();
                let env = EngineEnv {
                    a,
                    b,
                    res,
                    precond: &cfg.precond,
                    iteration: j,
                    has_prev: has_dir,
                };
                let mut kernel = PipeKernel {
                    x: &mut x,
                    r: &mut r,
                    u: &mut u,
                    w: &mut w,
                    p: &mut p,
                    s: &mut s,
                    q: &mut q,
                    z: &mut z,
                    mbuf: &mut mbuf,
                    nbuf: &mut nbuf,
                    ghosts: &mut ghosts,
                    b_loc: &mut b_loc,
                    gamma_prev: &mut gamma_prev,
                    alpha_prev: &mut alpha_prev,
                    has_dir: &mut has_dir,
                };
                match engine::recover(
                    ctx,
                    &env,
                    &mut layout,
                    &mut kernel,
                    &failed,
                    &mut handled_sub,
                    &mut recovery_seq,
                    &mut pool,
                    ckpt.as_mut(),
                ) {
                    EngineOutcome::Retired => {
                        retired = true;
                        ctx.trace_close(); // iteration
                        break;
                    }
                    EngineOutcome::Recovered(report) => {
                        recoveries += 1;
                        ranks_recovered += report.total_failed;
                        nloc = layout.lm.n_local();
                        recovery_timelines.push(report.timeline.clone());
                        if let Some(epoch) = report.rollback_to {
                            // Rollback: every rank resumes the checkpointed
                            // epoch with the unpacked loop-top state.
                            iterations = epoch as usize;
                        }
                        if report.retired_ranks > 0 {
                            // The layout shrank, so the preconditioner was
                            // rebuilt with merged blocks — but the pipelined
                            // recurrences never recompute u = M⁻¹r or
                            // q = M⁻¹s; continuing would mix old-M and new-M
                            // data in the incremental updates and the
                            // implicit operator stops being SPD (pᵀAp can go
                            // negative). Re-bootstrap the pipeline from the
                            // exactly-reconstructed (x, r): u = M'⁻¹ r,
                            // w = A u, and restart the recurrence through
                            // the β = 0 branch — a preconditioner-restarted
                            // CG, which is what a shrink already is.
                            layout.prec.apply(ctx, &r, &mut u);
                            layout.plan.exchange(ctx, &u, &mut ghosts, None);
                            layout.lm.spmv(&u, &ghosts, &mut w);
                            ctx.clock_mut().advance_flops(layout.lm.spmv_flops());
                            has_dir = false;
                        }
                        vtime_recovery += ctx.vtime() - t0;
                    }
                }
                // Restart the interrupted iteration: re-scatter m(j) (which
                // also restores redundancy) and re-reduce from the
                // reconstructed state.
                ctx.trace_close(); // iteration
                continue;
            }
        }

        // n(j) = A m(j) — the SpMV the reduction hides behind.
        layout.lm.spmv(&mbuf, &ghosts, &mut nbuf);
        ctx.clock_mut().advance_flops(layout.lm.spmv_flops());

        let red = red_req.wait(ctx);
        let (gamma, delta) = (red[0], red[1]);
        residual_sq = red[2];
        if residual_sq <= target_sq {
            converged = true;
            ctx.trace_close(); // iteration
            break;
        }

        let alpha;
        if !has_dir {
            if delta <= 0.0 || !delta.is_finite() {
                panic!("rank {rank}: pipelined PCG breakdown at iteration {j} (δ = {delta})");
            }
            alpha = gamma / delta;
            z.copy_from_slice(&nbuf);
            q.copy_from_slice(&mbuf);
            s.copy_from_slice(&w);
            p.copy_from_slice(&u);
        } else {
            let beta = gamma / gamma_prev;
            // In exact arithmetic δ − β γ / α(j-1) = pᵀA p.
            let denom = delta - beta * gamma / alpha_prev;
            if denom <= 0.0 || !denom.is_finite() {
                panic!("rank {rank}: pipelined PCG breakdown at iteration {j} (pᵀAp = {denom})");
            }
            alpha = gamma / denom;
            xpay(&nbuf, beta, &mut z); // z = n + β z
            xpay(&mbuf, beta, &mut q); // q = m + β q
            xpay(&w, beta, &mut s); //    s = w + β s
            xpay(&u, beta, &mut p); //    p = u + β p
        }
        axpy(alpha, &p, &mut x);
        axpy(-alpha, &s, &mut r);
        axpy(-alpha, &q, &mut u);
        axpy(-alpha, &z, &mut w);
        // Four axpy updates always; the four xpay recurrences only once a
        // direction exists (the β = 0 branch initializes by copy, zero
        // flops).
        ctx.clock_mut()
            .advance_flops(if has_dir { 16 } else { 8 } * nloc);
        has_dir = true;
        gamma_prev = gamma;
        alpha_prev = alpha;
        iterations += 1;
        ctx.trace_close(); // iteration
    }

    NodeOutcome::finish(
        ctx,
        x,
        layout.lm.range.start,
        iterations,
        residual_sq.sqrt(),
        r0_norm,
        converged,
        vtime_recovery,
        recoveries,
        ranks_recovered,
        vtime_setup,
        retired,
        recovery_timelines,
    )
}
