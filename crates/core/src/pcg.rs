//! The resilient distributed PCG node program — paper Alg. 1 with the ESR
//! hooks of Secs. 2.2–4 woven into the SpMV.
//!
//! Differences from non-resilient PCG are exactly the ones the paper
//! describes:
//!
//! * the SpMV ghost exchange additionally carries the extra sets `Rᶜᵢₖ`
//!   appended to existing messages (one λ per link, Sec. 4.2);
//! * received search-direction elements are *retained* for two generations
//!   instead of dropped (Sec. 2.2);
//! * at every post-SpMV boundary the ULFM-style oracle is polled; on
//!   failure, all nodes enter the shared [`crate::engine`] recovery and the
//!   interrupted iteration restarts.
//!
//! The solver's side of the recovery contract is [`PcgKernel`]: one
//! retention channel (`p(j)`, `p(j-1)` as its two generations), one
//! replicated scalar `β(j-1)`, and the reconstruction maps of paper Alg. 2
//! (`z = p(j) − β p(j-1)`; `r = M z` locally for the M-given
//! preconditioners, or the P-given gather + distributed solve for
//! `ExplicitP`).
//!
//! With `resilience: None` the solver is the reference non-resilient PCG
//! used for the paper's `t₀` baselines.

use std::collections::HashSet;
use std::ops::Range;
use std::sync::Arc;

use parcomm::comm::ReduceOp;
use parcomm::fault::poison;
use parcomm::{CommStats, FailAt, NodeCtx};
use sparsemat::vecops::{axpy, dot, xpay};
use sparsemat::Csr;

use crate::config::{PrecondConfig, SolverConfig};
use crate::engine::{
    self, splice, ChannelRead, EngineComm, EngineEnv, EngineOutcome, EngineShared, Layout,
    ReconBlock, RecoveryTimeline, ResilientKernel,
};
use crate::retention::Gen;

/// Per-node result of a distributed solve.
#[derive(Clone, Debug)]
pub struct NodeOutcome {
    /// This node's rank.
    pub rank: usize,
    /// The owned block of the solution.
    pub x_loc: Vec<f64>,
    /// Global range of `x_loc`.
    pub range_start: usize,
    /// Completed iterations.
    pub iterations: usize,
    /// Final solver residual norm ‖r‖₂ (global, replicated).
    pub residual_norm: f64,
    /// Initial residual norm ‖b - A x₀‖₂.
    pub initial_residual_norm: f64,
    /// Whether the residual target was reached.
    pub converged: bool,
    /// Virtual time at solve end (setup excluded).
    pub vtime_total: f64,
    /// Virtual time spent inside recovery.
    pub vtime_recovery: f64,
    /// Number of recovery events (not attempts).
    pub recoveries: usize,
    /// Total ranks reconstructed across all recoveries.
    pub ranks_recovered: usize,
    /// Communication statistics (setup excluded).
    pub stats: CommStats,
    /// Virtual time of the setup phase (plans, factorizations).
    pub vtime_setup: f64,
    /// True if this node failed with no replacement available and left the
    /// cluster (its subdomain was adopted by a survivor; `x_loc` is empty).
    /// Always `false` under [`crate::config::RecoveryPolicy::Replace`].
    pub retired: bool,
    /// Per-substep virtual-time timeline of every recovery event this node
    /// completed, in event order (empty on failure-free runs).
    pub recovery_timelines: Vec<RecoveryTimeline>,
}

impl NodeOutcome {
    /// Assemble the per-node outcome at the end of a solve, reading the
    /// clock and statistics from the node context. A retired node owns no
    /// rows and its convergence state is stale (the survivors finish the
    /// solve), so its outcome is forced to the empty/unconverged shape —
    /// one place, shared by every solver, instead of a per-solver pair of
    /// near-identical struct literals.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn finish(
        ctx: &parcomm::NodeCtx,
        x_loc: Vec<f64>,
        range_start: usize,
        iterations: usize,
        residual_norm: f64,
        initial_residual_norm: f64,
        converged: bool,
        vtime_recovery: f64,
        recoveries: usize,
        ranks_recovered: usize,
        vtime_setup: f64,
        retired: bool,
        recovery_timelines: Vec<RecoveryTimeline>,
    ) -> Self {
        NodeOutcome {
            rank: ctx.rank(),
            x_loc: if retired { Vec::new() } else { x_loc },
            range_start: if retired { 0 } else { range_start },
            iterations,
            residual_norm,
            initial_residual_norm,
            converged: converged && !retired,
            vtime_total: ctx.vtime(),
            vtime_recovery,
            recoveries,
            ranks_recovered,
            stats: ctx.stats().clone(),
            vtime_setup,
            retired,
            recovery_timelines,
        }
    }
}

// Block-vector slots of the PCG kernel.
const P: usize = 0;
const Z: usize = 1;
const R: usize = 2;
const X: usize = 3;

/// Blocking PCG's [`ResilientKernel`]: borrows the node program's live
/// state for the duration of one recovery event.
pub(crate) struct PcgKernel<'a> {
    /// The iterate block `x(j)_Iᵢ`.
    pub x: &'a mut Vec<f64>,
    /// The residual block `r(j)_Iᵢ`.
    pub r: &'a mut Vec<f64>,
    /// The preconditioned residual block `z(j)_Iᵢ`.
    pub z: &'a mut Vec<f64>,
    /// The search-direction block `p(j)_Iᵢ`.
    pub p: &'a mut Vec<f64>,
    /// SpMV result scratch (resized on a layout change).
    pub u: &'a mut Vec<f64>,
    /// Ghost values of `p(j)` from the last exchange.
    pub ghosts: &'a mut Vec<f64>,
    /// Owned right-hand-side block.
    pub b_loc: &'a mut Vec<f64>,
    /// The replicated scalar `β(j-1)`.
    pub beta_prev: &'a mut f64,
    /// The replicated scalar `r(j)ᵀz(j)` (checkpoint-pack state; ESR
    /// re-derives it with a fresh reduction instead).
    pub rz: &'a mut f64,
    /// `P = M⁻¹` when configured: selects the P-given reconstruction
    /// (Alg. 2 lines 5–6) in the distributed stage.
    pub explicit_p: Option<Arc<Csr>>,
}

impl ResilientKernel for PcgKernel<'_> {
    fn n_channels(&self) -> usize {
        1
    }

    fn channel_reads(&self, has_prev: bool) -> Vec<ChannelRead> {
        vec![
            ChannelRead {
                channel: 0,
                generation: Gen::Cur,
                required: true,
                what: "p(j)",
            },
            ChannelRead {
                channel: 0,
                generation: Gen::Prev,
                required: has_prev,
                what: "p(j-1)",
            },
        ]
    }

    fn scalars(&self) -> Vec<f64> {
        vec![*self.beta_prev]
    }

    fn set_scalars(&mut self, s: &[f64]) {
        *self.beta_prev = s[0];
    }

    fn poison(&mut self) {
        poison(self.x);
        poison(self.r);
        poison(self.z);
        poison(self.p);
        poison(self.ghosts);
        *self.beta_prev = f64::NAN;
        *self.rz = f64::NAN;
    }

    fn n_pack_vecs(&self) -> usize {
        4
    }

    fn n_pack_scalars(&self) -> usize {
        2
    }

    fn pack(&self) -> Vec<f64> {
        // Layout [x | r | z | p | β(j-1), r(j)ᵀz(j)] — the loop-top state a
        // restarted iteration resumes from.
        let mut data = Vec::with_capacity(4 * self.x.len() + 2);
        data.extend_from_slice(self.x);
        data.extend_from_slice(self.r);
        data.extend_from_slice(self.z);
        data.extend_from_slice(self.p);
        data.push(*self.beta_prev);
        data.push(*self.rz);
        data
    }

    fn unpack(&mut self, data: &[f64], new_range: &Range<usize>, b: &[f64]) {
        let nloc = new_range.len();
        let vec_at = |slot: usize| data[slot * nloc..(slot + 1) * nloc].to_vec();
        *self.x = vec_at(0);
        *self.r = vec_at(1);
        *self.z = vec_at(2);
        *self.p = vec_at(3);
        *self.beta_prev = data[4 * nloc];
        *self.rz = data[4 * nloc + 1];
        *self.b_loc = b[new_range.clone()].to_vec();
        // Scratch follows the (possibly unchanged) block length; ghosts are
        // refreshed by the restarted iteration's re-scatter.
        *self.u = vec![0.0; nloc];
    }

    fn n_block_vecs(&self) -> usize {
        4
    }

    fn r_slot(&self) -> usize {
        R
    }

    fn x_slot(&self) -> usize {
        X
    }

    fn x_loc(&self) -> &[f64] {
        self.x
    }

    fn rebuild_local(
        &mut self,
        ctx: &mut NodeCtx,
        shared: &EngineShared<'_>,
        blk: &mut ReconBlock,
        mut copies: Vec<Option<Vec<f64>>>,
    ) {
        let p_cur = copies[0].take().expect("p(j) copies are mandatory");
        let blen = blk.range.len();
        // z(j) = p(j) − β(j-1) p(j-1)  [Alg. 2 line 4].
        let mut z = vec![0.0; blen];
        if shared.has_prev {
            let p_prev = copies[1]
                .take()
                .expect("complete when has_prev (the engine panics on a gap)");
            let beta = *self.beta_prev;
            for i in 0..blen {
                z[i] = p_cur[i] - beta * p_prev[i];
            }
        } else {
            z.copy_from_slice(&p_cur);
        }
        ctx.clock_mut().advance_flops(2 * blen);
        // M-given: r_b = M_{b,b} z_b from static data alone (what lets an
        // adopter rebuild a block it never owned). P-given defers r to the
        // distributed stage.
        if self.explicit_p.is_none() {
            blk.vecs[R] = engine::m_block_forward(ctx, shared.a, shared.precond, &blk.range, &z);
        }
        blk.vecs[P] = p_cur;
        blk.vecs[Z] = z;
    }

    fn rebuild_distributed(
        &mut self,
        ctx: &mut NodeCtx,
        _shared: &EngineShared<'_>,
        comm: &mut EngineComm<'_>,
        blocks: &mut [ReconBlock],
    ) {
        // P-given (Alg. 2 lines 5–6): survivors serve their r values over
        // P's pattern, reconstructors form v = z_If − P_{If,I\If} r_{I\If}
        // and solve P_{If,If} r_If = v over the group.
        let Some(p_full) = self.explicit_p.clone() else {
            return;
        };
        let lookup = comm.gather_outside(ctx, &p_full, blocks, self.r);
        if blocks.is_empty() {
            return;
        }
        let lookup = lookup.expect("reconstructors obtain the r lookup");
        let mut rows: Vec<usize> = Vec::new();
        let mut rhs: Vec<f64> = Vec::new();
        for blk in blocks.iter() {
            let mut flops = 0usize;
            for (i, gr) in blk.range.clone().enumerate() {
                let (cols, vals) = p_full.row(gr);
                let mut s = 0.0;
                for (c, v) in cols.iter().zip(vals) {
                    let c = *c as usize;
                    if comm.if_indices.binary_search(&c).is_err() {
                        let pos = lookup
                            .binary_search_by_key(&c, |e| e.0)
                            .expect("gathered every surviving coupled r");
                        s += v * lookup[pos].1;
                    }
                }
                flops += 2 * cols.len();
                rhs.push(blk.vecs[Z][i] - s);
            }
            ctx.clock_mut().advance_flops(flops + blk.range.len());
            rows.extend(blk.range.clone());
        }
        let r_new = comm.solve_if_system(ctx, &p_full, &rows, rhs);
        let mut off = 0usize;
        for blk in blocks.iter_mut() {
            blk.vecs[R] = r_new[off..off + blk.range.len()].to_vec();
            off += blk.range.len();
        }
    }

    fn install(&mut self, blk: &ReconBlock) {
        self.p.copy_from_slice(&blk.vecs[P]);
        self.z.copy_from_slice(&blk.vecs[Z]);
        self.r.copy_from_slice(&blk.vecs[R]);
        self.x.copy_from_slice(&blk.vecs[X]);
        // ghosts/retention refill on the restarted iteration's re-scatter.
    }

    fn splice(
        &mut self,
        new_range: &Range<usize>,
        own: Option<&Range<usize>>,
        blocks: &[ReconBlock],
        b: &[f64],
    ) {
        *self.x = splice(new_range, own, self.x, blocks, X);
        *self.r = splice(new_range, own, self.r, blocks, R);
        *self.z = splice(new_range, own, self.z, blocks, Z);
        *self.p = splice(new_range, own, self.p, blocks, P);
        *self.b_loc = b[new_range.clone()].to_vec();
    }

    fn resize_scratch(&mut self, nloc: usize, n_ghosts: usize) {
        *self.u = vec![0.0; nloc];
        *self.ghosts = vec![0.0; n_ghosts];
    }
}

/// The SPMD node program: solve `A x = b` with (optionally resilient) PCG.
///
/// All nodes receive the same `a`, `b` (static data on reliable storage)
/// and configuration; the failure script lives in the cluster's oracle.
pub fn esr_pcg_node(
    ctx: &mut NodeCtx,
    a: &Arc<Csr>,
    b: &Arc<Vec<f64>>,
    cfg: &SolverConfig,
) -> NodeOutcome {
    let n = a.n_rows();
    assert_eq!(b.len(), n, "rhs length");
    let rank = ctx.rank();
    // The driver's SolverConfig::validate rejects this combination with a
    // typed error; keep the node-level guard for direct Cluster::run users
    // — the P-given reconstruction gathers over the full cluster, which a
    // shrunken cluster no longer has, and failing here beats hanging deep
    // inside a post-shrink rebuild.
    if let Some(res) = &cfg.resilience {
        assert!(
            res.policy == crate::config::RecoveryPolicy::Replace
                || !matches!(cfg.precond, PrecondConfig::ExplicitP(_)),
            "rank {rank}: RecoveryPolicy::{:?} requires a block-diagonal (M-given) \
             preconditioner; use RecoveryPolicy::Replace with ExplicitP",
            res.policy
        );
    }

    // Protection flavor: ESR retains search directions in the scatter and
    // reconstructs; checkpoint/rollback deposits loop-top packs on a ring
    // and rolls every rank back. CR needs no retention channels.
    let cr = cfg.resilience.as_ref().and_then(|res| res.cr());
    let esr = cfg.resilience.is_some() && cr.is_none();

    // ---- setup: local rows, communication plans, preconditioner --------
    let mut layout = Layout::build_full(ctx, a, cfg, if cr.is_some() { 0 } else { 1 });
    ctx.barrier();
    let vtime_setup = ctx.vtime();
    ctx.reset_metrics();

    // ---- initial state: x(0) = 0 ---------------------------------------
    let mut nloc = layout.lm.n_local();
    let mut b_loc: Vec<f64> = b[layout.lm.range.clone()].to_vec();
    let mut x = vec![0.0; nloc];
    let mut r = b_loc.clone(); // r(0) = b − A·0
    let mut z = vec![0.0; nloc];
    layout.prec.apply(ctx, &r, &mut z);
    let mut p = z.clone(); // p(0) = z(0)
    let mut ghosts = vec![0.0; layout.lm.ghost_cols.len()];
    let mut u = vec![0.0; nloc];
    let mut pool = ctx.spare_pool();

    ctx.clock_mut().advance_flops(4 * nloc);
    // ‖r(0)‖² and r(0)ᵀz(0) travel in one fused length-2 all-reduce.
    let init = ctx.allreduce_vec(ReduceOp::Sum, vec![dot(&r, &r), dot(&r, &z)]);
    let r0_sq = init[0];
    let r0_norm = r0_sq.sqrt();
    let target_sq = cfg.rel_tol * cfg.rel_tol * r0_sq;
    let mut rz = init[1];
    let mut beta_prev = 0.0f64;

    let mut iterations = 0usize;
    let mut residual_sq = r0_sq;
    let mut converged = r0_norm <= f64::MIN_POSITIVE;
    let mut retired = false;
    let mut vtime_recovery = 0.0f64;
    let mut recoveries = 0usize;
    let mut ranks_recovered = 0usize;
    let mut handled_iter: HashSet<u64> = HashSet::new();
    let mut handled_sub: HashSet<(u64, u32)> = HashSet::new();
    let mut recovery_seq: u32 = 0;
    let mut recovery_timelines: Vec<RecoveryTimeline> = Vec::new();
    let resilient = cfg.resilience.is_some();
    let mut ckpt =
        cr.map(|c| crate::retention::CheckpointStore::new(c, &layout.members, layout.my_slot));

    while !converged && iterations < cfg.max_iter {
        let j = iterations as u64;
        ctx.trace_open("iteration", j);

        // Periodic checkpoint deposit (loop top = the state a rollback
        // resumes from). Runs again right after a rollback — the agreed
        // epoch is itself a multiple of the interval — which refills
        // replicas lost with the failed ranks, on the current ring.
        if let Some(store) = ckpt.as_mut() {
            if j.is_multiple_of(store.interval() as u64) {
                let kernel = PcgKernel {
                    x: &mut x,
                    r: &mut r,
                    z: &mut z,
                    p: &mut p,
                    u: &mut u,
                    ghosts: &mut ghosts,
                    b_loc: &mut b_loc,
                    beta_prev: &mut beta_prev,
                    rz: &mut rz,
                    explicit_p: None,
                };
                let data = kernel.pack();
                let seq = recovery_seq;
                recovery_seq += 1;
                store.deposit(ctx, seq, j, data);
            }
        }

        // SpMV scatter: ghost exchange + redundancy distribution. The
        // retention generations rotate with every scatter of a new p(j)
        // (and identically on the post-recovery restart, which re-scatters
        // the recovered p(j) and thereby restores lost redundancy).
        if esr {
            layout.channels[0].rotate();
            layout
                .plan
                .exchange(ctx, &p, &mut ghosts, Some(&mut layout.channels[0]));
            layout.channels[0].finish_generation();
        } else {
            layout.plan.exchange(ctx, &p, &mut ghosts, None);
        }

        // ULFM failure boundary (paper Sec. 1.1.1): consistent notification.
        // Events naming ranks that already retired in an earlier shrink are
        // inert — that hardware is gone.
        if resilient && !handled_iter.contains(&j) {
            handled_iter.insert(j);
            let failed = layout.poll_member_failures(ctx, FailAt::Iteration(j));
            if !failed.is_empty() {
                let t0 = ctx.vtime();
                let res = cfg.resilience.as_ref().unwrap();
                let env = EngineEnv {
                    a,
                    b,
                    res,
                    precond: &cfg.precond,
                    iteration: j,
                    has_prev: j > 0,
                };
                let mut kernel = PcgKernel {
                    x: &mut x,
                    r: &mut r,
                    z: &mut z,
                    p: &mut p,
                    u: &mut u,
                    ghosts: &mut ghosts,
                    b_loc: &mut b_loc,
                    beta_prev: &mut beta_prev,
                    rz: &mut rz,
                    explicit_p: match &cfg.precond {
                        PrecondConfig::ExplicitP(p) => Some(p.clone()),
                        _ => None,
                    },
                };
                let rolled_back = match engine::recover(
                    ctx,
                    &env,
                    &mut layout,
                    &mut kernel,
                    &failed,
                    &mut handled_sub,
                    &mut recovery_seq,
                    &mut pool,
                    ckpt.as_mut(),
                ) {
                    EngineOutcome::Retired => {
                        retired = true;
                        ctx.trace_close(); // iteration
                        break;
                    }
                    EngineOutcome::Recovered(report) => {
                        recoveries += 1;
                        ranks_recovered += report.total_failed;
                        vtime_recovery += ctx.vtime() - t0;
                        nloc = layout.lm.n_local();
                        let rollback_to = report.rollback_to;
                        recovery_timelines.push(report.timeline);
                        rollback_to
                    }
                };
                if let Some(epoch) = rolled_back {
                    // Rollback: every rank resumes the checkpointed epoch;
                    // the unpacked state carries rz with it.
                    iterations = epoch as usize;
                } else {
                    // ESR: rz must be re-established (replacements recompute
                    // their share); bitwise identical on survivors' data.
                    ctx.clock_mut().advance_flops(2 * nloc);
                    rz = layout.allreduce_sum(ctx, dot(&r, &z));
                }
                // Restart the interrupted iteration: re-scatter p(j) (also
                // restores redundancy and replacement ghosts).
                ctx.trace_close(); // iteration
                continue;
            }
        }

        // u = A p(j)  (local part; ghosts already exchanged)
        layout.lm.spmv(&p, &ghosts, &mut u);
        ctx.clock_mut().advance_flops(layout.lm.spmv_flops());

        // α(j) = r(j)ᵀz(j) / p(j)ᵀAp(j)   [Alg. 1 line 3]
        ctx.clock_mut().advance_flops(2 * nloc);
        let pap = layout.allreduce_sum(ctx, dot(&p, &u));
        if pap <= 0.0 || !pap.is_finite() {
            panic!("rank {rank}: PCG breakdown at iteration {j} (pᵀAp = {pap})");
        }
        let alpha = rz / pap;
        axpy(alpha, &p, &mut x); // line 4
        axpy(-alpha, &u, &mut r); // line 5
        ctx.clock_mut().advance_flops(4 * nloc);

        iterations += 1;

        // Apply the preconditioner *before* the convergence test so the
        // test value ‖r(j+1)‖² and the β numerator r(j+1)ᵀz(j+1) travel in
        // ONE length-2 all-reduce — two global reductions per iteration
        // instead of three. The preconditioner apply on the final
        // (converging) iteration is discarded work, but a full reduction
        // round is saved on every other iteration, and per Sec. 4.2 the
        // rounds dominate: λ ≫ µ at the reduction's message sizes.
        layout.prec.apply(ctx, &r, &mut z); // line 6
        ctx.clock_mut().advance_flops(4 * nloc);
        let rr_rz = layout.allreduce_vec(ctx, ReduceOp::Sum, vec![dot(&r, &r), dot(&r, &z)]);
        residual_sq = rr_rz[0];
        if residual_sq <= target_sq {
            converged = true;
            ctx.trace_close(); // iteration
            break;
        }
        let rz_next = rr_rz[1];
        beta_prev = rz_next / rz; // line 7
        rz = rz_next;
        xpay(&z, beta_prev, &mut p); // line 8
        ctx.clock_mut().advance_flops(2 * nloc);
        ctx.trace_close(); // iteration
    }

    NodeOutcome::finish(
        ctx,
        x,
        layout.lm.range.start,
        iterations,
        residual_sq.sqrt(),
        r0_norm,
        converged,
        vtime_recovery,
        recoveries,
        ranks_recovered,
        vtime_setup,
        retired,
        recovery_timelines,
    )
}
