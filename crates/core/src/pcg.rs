//! The resilient distributed PCG node program — paper Alg. 1 with the ESR
//! hooks of Secs. 2.2–4 woven into the SpMV.
//!
//! Differences from non-resilient PCG are exactly the ones the paper
//! describes:
//!
//! * the SpMV ghost exchange additionally carries the extra sets `Rᶜᵢₖ`
//!   appended to existing messages (one λ per link, Sec. 4.2);
//! * received search-direction elements are *retained* for two generations
//!   instead of dropped (Sec. 2.2);
//! * at every post-SpMV boundary the ULFM-style oracle is polled; on
//!   failure, all nodes enter [`crate::recovery::recover`] and the
//!   interrupted iteration restarts.
//!
//! With `resilience: None` the solver is the reference non-resilient PCG
//! used for the paper's `t₀` baselines.

use std::collections::HashSet;
use std::sync::Arc;

use parcomm::comm::ReduceOp;
use parcomm::{CommStats, FailAt, NodeCtx};
use sparsemat::vecops::{axpy, dot, xpay};
use sparsemat::{BlockPartition, Csr};

use crate::config::{PrecondConfig, RecoveryPolicy, SolverConfig};
use crate::localmat::LocalMatrix;
use crate::precsetup::NodePrecond;
use crate::recovery::{self, RecoveryEnv, SolverState};
use crate::redundancy;
use crate::retention::Retention;
use crate::scatter::ScatterPlan;
use crate::shrink::{self, AdoptEnv, AdoptState, Layout, PolicyOutcome};

/// Per-node result of a distributed solve.
#[derive(Clone, Debug)]
pub struct NodeOutcome {
    /// This node's rank.
    pub rank: usize,
    /// The owned block of the solution.
    pub x_loc: Vec<f64>,
    /// Global range of `x_loc`.
    pub range_start: usize,
    /// Completed iterations.
    pub iterations: usize,
    /// Final solver residual norm ‖r‖₂ (global, replicated).
    pub residual_norm: f64,
    /// Initial residual norm ‖b - A x₀‖₂.
    pub initial_residual_norm: f64,
    /// Whether the residual target was reached.
    pub converged: bool,
    /// Virtual time at solve end (setup excluded).
    pub vtime_total: f64,
    /// Virtual time spent inside recovery.
    pub vtime_recovery: f64,
    /// Number of recovery events (not attempts).
    pub recoveries: usize,
    /// Total ranks reconstructed across all recoveries.
    pub ranks_recovered: usize,
    /// Communication statistics (setup excluded).
    pub stats: CommStats,
    /// Virtual time of the setup phase (plans, factorizations).
    pub vtime_setup: f64,
    /// True if this node failed with no replacement available and left the
    /// cluster (its subdomain was adopted by a survivor; `x_loc` is empty).
    /// Always `false` under [`crate::config::RecoveryPolicy::Replace`].
    pub retired: bool,
}

/// The SPMD node program: solve `A x = b` with (optionally resilient) PCG.
///
/// All nodes receive the same `a`, `b` (static data on reliable storage)
/// and configuration; the failure script lives in the cluster's oracle.
pub fn esr_pcg_node(
    ctx: &mut NodeCtx,
    a: &Arc<Csr>,
    b: &Arc<Vec<f64>>,
    cfg: &SolverConfig,
) -> NodeOutcome {
    let n = a.n_rows();
    assert_eq!(b.len(), n, "rhs length");
    let rank = ctx.rank();
    let part = BlockPartition::new(n, ctx.size());
    let policy = cfg
        .resilience
        .as_ref()
        .map_or(RecoveryPolicy::Replace, |res| res.policy);
    if policy != RecoveryPolicy::Replace {
        assert!(
            !matches!(cfg.precond, PrecondConfig::ExplicitP(_)),
            "RecoveryPolicy::{policy:?} requires a block-diagonal (M-given) preconditioner: \
             the P-given reconstruction gathers over the full cluster, which a shrunken \
             cluster no longer has. Use RecoveryPolicy::Replace with ExplicitP."
        );
    }

    // ---- setup: local rows, communication plans, preconditioner --------
    let lm = LocalMatrix::build(a, &part, rank);
    let mut plan = ScatterPlan::build(ctx, &lm, &part);
    if let Some(res) = &cfg.resilience {
        plan.send_extra = redundancy::compute_extra_sends(
            rank,
            ctx.size(),
            res.phi,
            &res.strategy,
            lm.n_local(),
            &plan.send_natural,
        );
        plan.announce_extras(ctx);
    }
    let retention = Retention::build(&plan, &lm.ghost_cols);
    let prec = NodePrecond::setup(ctx, &cfg.precond, &part, &lm)
        .unwrap_or_else(|e| panic!("rank {rank}: preconditioner setup failed: {e}"));
    let mut layout = Layout {
        part,
        lm,
        plan,
        retention,
        prec,
        members: (0..ctx.size()).collect(),
        my_slot: rank,
        group: None,
    };
    ctx.barrier();
    let vtime_setup = ctx.vtime();
    ctx.reset_metrics();

    // ---- initial state: x(0) = 0 ---------------------------------------
    let nloc = layout.lm.n_local();
    let range = layout.lm.range.clone();
    let mut b_loc: Vec<f64> = b[range.clone()].to_vec();
    let mut x = vec![0.0; nloc];
    let mut r = b_loc.clone(); // r(0) = b − A·0
    let mut z = vec![0.0; nloc];
    layout.prec.apply(ctx, &r, &mut z);
    let mut p = z.clone(); // p(0) = z(0)
    let mut ghosts = vec![0.0; layout.lm.ghost_cols.len()];
    let mut u = vec![0.0; nloc];
    let mut pool = ctx.spare_pool();

    ctx.clock_mut().advance_flops(4 * nloc);
    // ‖r(0)‖² and r(0)ᵀz(0) travel in one fused length-2 all-reduce.
    let init = ctx.allreduce_vec(ReduceOp::Sum, vec![dot(&r, &r), dot(&r, &z)]);
    let r0_sq = init[0];
    let r0_norm = r0_sq.sqrt();
    let target_sq = cfg.rel_tol * cfg.rel_tol * r0_sq;
    let mut rz = init[1];
    let mut beta_prev = 0.0f64;

    let mut nloc = nloc;
    let mut iterations = 0usize;
    let mut residual_sq = r0_sq;
    let mut converged = r0_norm <= f64::MIN_POSITIVE;
    let mut retired = false;
    let mut vtime_recovery = 0.0f64;
    let mut recoveries = 0usize;
    let mut ranks_recovered = 0usize;
    let mut handled_iter: HashSet<u64> = HashSet::new();
    let mut handled_sub: HashSet<(u64, u32)> = HashSet::new();
    let mut recovery_seq: u32 = 0;
    let resilient = cfg.resilience.is_some();

    while !converged && iterations < cfg.max_iter {
        let j = iterations as u64;

        // SpMV scatter: ghost exchange + redundancy distribution. The
        // retention generations rotate with every scatter of a new p(j)
        // (and identically on the post-recovery restart, which re-scatters
        // the recovered p(j) and thereby restores lost redundancy).
        if resilient {
            layout.retention.rotate();
            layout
                .plan
                .exchange(ctx, &p, &mut ghosts, Some(&mut layout.retention));
            layout.retention.finish_generation();
        } else {
            layout.plan.exchange(ctx, &p, &mut ghosts, None);
        }

        // ULFM failure boundary (paper Sec. 1.1.1): consistent notification.
        // Events naming ranks that already retired in an earlier shrink are
        // inert — that hardware is gone.
        if resilient && !handled_iter.contains(&j) {
            handled_iter.insert(j);
            let failed: Vec<usize> = ctx
                .poll_failures(FailAt::Iteration(j))
                .into_iter()
                .filter(|f| layout.members.binary_search(f).is_ok())
                .collect();
            if !failed.is_empty() {
                let t0 = ctx.vtime();
                let res = cfg.resilience.as_ref().unwrap();
                if policy == RecoveryPolicy::Replace {
                    // The paper's model: in-place replacement nodes, the
                    // cluster never shrinks (members stay the full world).
                    let env = RecoveryEnv {
                        a,
                        b_loc: &b_loc,
                        part: &layout.part,
                        lm: &layout.lm,
                        cfg: &res.recovery,
                        iteration: j,
                        has_prev: j > 0,
                    };
                    let mut st = SolverState {
                        x: &mut x,
                        r: &mut r,
                        z: &mut z,
                        p: &mut p,
                        ghosts: &mut ghosts,
                        retention: &mut layout.retention,
                        beta_prev: &mut beta_prev,
                    };
                    let report = recovery::recover(
                        ctx,
                        &env,
                        &mut layout.prec,
                        &failed,
                        &mut handled_sub,
                        &mut recovery_seq,
                        &mut st,
                    );
                    recoveries += 1;
                    ranks_recovered += report.total_failed;
                    vtime_recovery += ctx.vtime() - t0;
                } else {
                    // Finite spare pool / no spares: replaced subdomains
                    // rebuild in place, uncovered ones are adopted and the
                    // cluster continues shrunken.
                    let env = AdoptEnv {
                        a,
                        b,
                        res,
                        precond: &cfg.precond,
                        iteration: j,
                        has_prev: j > 0,
                    };
                    let mut st = AdoptState {
                        x: &mut x,
                        r: &mut r,
                        z: &mut z,
                        p: &mut p,
                        ghosts: &mut ghosts,
                        b_loc: &mut b_loc,
                        beta_prev: &mut beta_prev,
                    };
                    match shrink::recover_with_adoption(
                        ctx,
                        &env,
                        &mut layout,
                        &mut st,
                        &failed,
                        &mut handled_sub,
                        &mut recovery_seq,
                        &mut pool,
                    ) {
                        PolicyOutcome::Retired => {
                            retired = true;
                            break;
                        }
                        PolicyOutcome::Recovered(report) => {
                            recoveries += 1;
                            ranks_recovered += report.total_failed;
                            vtime_recovery += ctx.vtime() - t0;
                            nloc = layout.lm.n_local();
                            u = vec![0.0; nloc];
                        }
                    }
                }
                // rz must be re-established (replacements recompute their
                // share); bitwise identical on survivors' data.
                ctx.clock_mut().advance_flops(2 * nloc);
                rz = layout.allreduce_sum(ctx, dot(&r, &z));
                // Restart the interrupted iteration: re-scatter p(j) (also
                // restores redundancy and replacement ghosts).
                continue;
            }
        }

        // u = A p(j)  (local part; ghosts already exchanged)
        layout.lm.spmv(&p, &ghosts, &mut u);
        ctx.clock_mut().advance_flops(layout.lm.spmv_flops());

        // α(j) = r(j)ᵀz(j) / p(j)ᵀAp(j)   [Alg. 1 line 3]
        ctx.clock_mut().advance_flops(2 * nloc);
        let pap = layout.allreduce_sum(ctx, dot(&p, &u));
        if pap <= 0.0 || !pap.is_finite() {
            panic!("rank {rank}: PCG breakdown at iteration {j} (pᵀAp = {pap})");
        }
        let alpha = rz / pap;
        axpy(alpha, &p, &mut x); // line 4
        axpy(-alpha, &u, &mut r); // line 5
        ctx.clock_mut().advance_flops(4 * nloc);

        iterations += 1;

        // Apply the preconditioner *before* the convergence test so the
        // test value ‖r(j+1)‖² and the β numerator r(j+1)ᵀz(j+1) travel in
        // ONE length-2 all-reduce — two global reductions per iteration
        // instead of three. The preconditioner apply on the final
        // (converging) iteration is discarded work, but a full reduction
        // round is saved on every other iteration, and per Sec. 4.2 the
        // rounds dominate: λ ≫ µ at the reduction's message sizes.
        layout.prec.apply(ctx, &r, &mut z); // line 6
        ctx.clock_mut().advance_flops(4 * nloc);
        let rr_rz = layout.allreduce_vec(ctx, ReduceOp::Sum, vec![dot(&r, &r), dot(&r, &z)]);
        residual_sq = rr_rz[0];
        if residual_sq <= target_sq {
            converged = true;
            break;
        }
        let rz_next = rr_rz[1];
        beta_prev = rz_next / rz; // line 7
        rz = rz_next;
        xpay(&z, beta_prev, &mut p); // line 8
        ctx.clock_mut().advance_flops(2 * nloc);
    }

    if retired {
        // This node left the cluster mid-solve; it owns no rows and its
        // last known scalars are stale (the survivors finish the solve).
        return NodeOutcome {
            rank,
            x_loc: Vec::new(),
            range_start: 0,
            iterations,
            residual_norm: residual_sq.sqrt(),
            initial_residual_norm: r0_norm,
            converged: false,
            vtime_total: ctx.vtime(),
            vtime_recovery,
            recoveries,
            ranks_recovered,
            stats: ctx.stats().clone(),
            vtime_setup,
            retired: true,
        };
    }
    NodeOutcome {
        rank,
        x_loc: x,
        range_start: layout.lm.range.start,
        iterations,
        residual_norm: residual_sq.sqrt(),
        initial_residual_norm: r0_norm,
        converged,
        vtime_total: ctx.vtime(),
        vtime_recovery,
        recoveries,
        ranks_recovered,
        stats: ctx.stats().clone(),
        vtime_setup,
        retired: false,
    }
}
