//! Per-node preconditioner state.
//!
//! The preconditioner is distributed like everything else (paper
//! Sec. 1.1.2: block rows of `M` live on the owning node). Three of the
//! four configurations are block-diagonal and apply locally; an explicit
//! `P = M⁻¹` with coupling across nodes needs its own ghost exchange, for
//! which it gets a dedicated scatter plan over `P`'s pattern.

use parcomm::NodeCtx;
use precond::{PrecondError, SparseLdl};
use sparsemat::{BlockPartition, Csr};
use std::sync::Arc;

use crate::config::PrecondConfig;
use crate::localmat::LocalMatrix;
use crate::scatter::ScatterPlan;

/// A node's share of the preconditioner.
///
/// One value lives per node for the whole solve; the size skew between
/// variants is irrelevant (never stored in bulk).
#[allow(clippy::large_enum_variant)]
pub enum NodePrecond {
    /// Identity (plain CG).
    None {
        /// Owned block length.
        n_local: usize,
    },
    /// `M = diag(A)`: the owned diagonal entries.
    Jacobi {
        /// Owned diagonal of `A`.
        diag: Vec<f64>,
        /// Element-wise inverse of `diag`.
        inv_diag: Vec<f64>,
    },
    /// The paper's setup: `M` = the node's diagonal block of `A`, solved
    /// exactly by sparse LDLᵀ. The block itself is `LocalMatrix::diag`.
    BlockJacobiExact {
        /// Exact LDLᵀ factorization of the node's diagonal block.
        factor: SparseLdl,
    },
    /// Explicit `P = M⁻¹` as a distributed sparse matrix: apply is a
    /// distributed SpMV over `P`'s own communication plan.
    ExplicitP {
        /// The full `P` (static data; recovery reads its rows).
        p_full: Arc<Csr>,
        /// This node's block rows of `P`.
        p_local: LocalMatrix,
        /// Ghost-exchange plan over `P`'s pattern.
        p_plan: ScatterPlan,
        /// Ghost buffer for `P`-applies.
        p_ghosts: Vec<f64>,
    },
}

impl NodePrecond {
    /// Collective setup — all nodes must call this at the same SPMD point
    /// with the same configuration.
    pub fn setup(
        ctx: &mut NodeCtx,
        cfg: &PrecondConfig,
        part: &BlockPartition,
        lm: &LocalMatrix,
    ) -> Result<Self, PrecondError> {
        match cfg {
            PrecondConfig::None => Ok(NodePrecond::None {
                n_local: lm.n_local(),
            }),
            PrecondConfig::Jacobi => {
                let diag = lm.diag.diag();
                let mut inv_diag = Vec::with_capacity(diag.len());
                for (i, &d) in diag.iter().enumerate() {
                    if d <= 0.0 || !d.is_finite() {
                        return Err(PrecondError::Breakdown(lm.range.start + i));
                    }
                    inv_diag.push(1.0 / d);
                }
                Ok(NodePrecond::Jacobi { diag, inv_diag })
            }
            PrecondConfig::BlockJacobiExact => {
                let factor = SparseLdl::new(&lm.diag)?;
                // Charge the factorization to the virtual clock (done once;
                // a coarse 20 flops per factor nonzero).
                ctx.clock_mut().advance_flops(20 * factor.l_nnz().max(1));
                Ok(NodePrecond::BlockJacobiExact { factor })
            }
            PrecondConfig::ExplicitP(p) => {
                if p.n_rows() != part.n() || p.n_cols() != part.n() {
                    return Err(PrecondError::Shape(format!(
                        "P is {}x{}, system is {}",
                        p.n_rows(),
                        p.n_cols(),
                        part.n()
                    )));
                }
                let p_local = LocalMatrix::build(p, part, ctx.rank());
                let p_plan = ScatterPlan::build(ctx, &p_local, part);
                let p_ghosts = vec![0.0; p_local.ghost_cols.len()];
                Ok(NodePrecond::ExplicitP {
                    p_full: p.clone(),
                    p_local,
                    p_plan,
                    p_ghosts,
                })
            }
        }
    }

    /// Apply `z ← M⁻¹ r` on the owned block. May communicate (explicit P
    /// with off-node coupling) — all nodes must call together.
    pub fn apply(&mut self, ctx: &mut NodeCtx, r_loc: &[f64], z_loc: &mut [f64]) {
        match self {
            NodePrecond::None { .. } => z_loc.copy_from_slice(r_loc),
            NodePrecond::Jacobi { inv_diag, .. } => {
                for ((z, r), d) in z_loc.iter_mut().zip(r_loc).zip(inv_diag.iter()) {
                    *z = r * d;
                }
                ctx.clock_mut().advance_flops(r_loc.len());
            }
            NodePrecond::BlockJacobiExact { factor } => {
                z_loc.copy_from_slice(r_loc);
                factor.solve_in_place(z_loc);
                ctx.clock_mut().advance_flops(factor.solve_flops());
            }
            NodePrecond::ExplicitP {
                p_local,
                p_plan,
                p_ghosts,
                ..
            } => {
                p_plan.exchange(ctx, r_loc, p_ghosts, None);
                p_local.spmv(r_loc, p_ghosts, z_loc);
                ctx.clock_mut().advance_flops(p_local.spmv_flops());
            }
        }
    }

    /// Apply the *forward* operator `r_If = M_{If,·} z` restricted to the
    /// owned (failed) block — the M-given reconstruction step (companion
    /// paper Alg. 3; local because M is block-diagonal for these variants).
    /// Not available for `ExplicitP` (which uses the Alg. 2 P-given path).
    pub fn m_forward_local(&self, lm: &LocalMatrix, z_loc: &[f64], r_loc: &mut [f64]) {
        match self {
            NodePrecond::None { .. } => r_loc.copy_from_slice(z_loc),
            NodePrecond::Jacobi { diag, .. } => {
                for ((r, z), d) in r_loc.iter_mut().zip(z_loc).zip(diag.iter()) {
                    *r = z * d;
                }
            }
            NodePrecond::BlockJacobiExact { .. } => {
                // M's block is exactly the diagonal block of A.
                lm.diag.spmv(z_loc, r_loc);
            }
            NodePrecond::ExplicitP { .. } => {
                unreachable!("ExplicitP uses the P-given reconstruction path")
            }
        }
    }

    /// True if recovery must use the P-given path (Alg. 2 lines 5–6).
    pub fn is_explicit_p(&self) -> bool {
        matches!(self, NodePrecond::ExplicitP { .. })
    }

    /// The explicit `P` matrix (P-given recovery needs its rows).
    pub fn p_matrix(&self) -> Option<&Arc<Csr>> {
        match self {
            NodePrecond::ExplicitP { p_full, .. } => Some(p_full),
            _ => None,
        }
    }

    /// Flops of one apply (for sizing expectations in tests).
    pub fn flops_per_apply(&self) -> usize {
        match self {
            NodePrecond::None { .. } => 0,
            NodePrecond::Jacobi { inv_diag, .. } => inv_diag.len(),
            NodePrecond::BlockJacobiExact { factor } => factor.solve_flops(),
            NodePrecond::ExplicitP { p_local, .. } => p_local.spmv_flops(),
        }
    }
}
