//! Experiment orchestration: run a distributed solve on the simulated
//! cluster and aggregate the metrics the paper reports (Secs. 6–7).

use std::sync::Arc;
use std::time::{Duration, Instant};

use parcomm::{Cluster, ClusterConfig, CommStats, CostModel, FailureScript};
use sparsemat::vecops::norm2;
use sparsemat::Csr;

use crate::config::{ConfigError, RecoveryPolicy, SolverConfig, SolverKind};
use crate::engine::RecoveryTimeline;
use crate::pcg::{esr_pcg_node, NodeOutcome};

/// A linear system `A x = b` with `A` SPD.
#[derive(Clone)]
pub struct Problem {
    /// The SPD system matrix (static data on reliable storage).
    pub a: Arc<Csr>,
    /// The right-hand side.
    pub b: Arc<Vec<f64>>,
}

impl Problem {
    /// Wrap a matrix and right-hand side.
    pub fn new(a: Csr, b: Vec<f64>) -> Self {
        assert_eq!(a.n_rows(), b.len());
        Problem {
            a: Arc::new(a),
            b: Arc::new(b),
        }
    }

    /// Problem with known solution `x = 1` (`b = A·1`).
    pub fn with_ones_solution(a: Csr) -> Self {
        let b = sparsemat::gen::rhs_for_ones(&a);
        Problem::new(a, b)
    }

    /// Problem with a deterministic random right-hand side.
    pub fn with_random_rhs(a: Csr, seed: u64) -> Self {
        let b = sparsemat::gen::random_rhs(a.n_rows(), seed);
        Problem::new(a, b)
    }

    /// System dimension.
    pub fn n(&self) -> usize {
        self.a.n_rows()
    }
}

/// Aggregated result of one distributed solve.
#[derive(Clone, Debug)]
pub struct ExperimentResult {
    /// Assembled global solution.
    pub x: Vec<f64>,
    /// Completed outer iterations.
    pub iterations: usize,
    /// Whether the residual target was reached.
    pub converged: bool,
    /// Final solver (recursive) residual norm ‖r‖₂.
    pub solver_residual: f64,
    /// Recomputed true residual ‖b − A x‖₂.
    pub true_residual: f64,
    /// The paper's Eqn. (7): `∆ = (‖r‖ − ‖b−Ax‖) / ‖b−Ax‖`.
    pub residual_deviation: f64,
    /// Virtual solve time: max over nodes (the BSP makespan).
    pub vtime: f64,
    /// Virtual time spent in reconstruction: max over nodes.
    pub vtime_recovery: f64,
    /// Virtual setup time (plans + factorizations): max over nodes.
    pub vtime_setup: f64,
    /// Host wall-clock time of the whole cluster run (oversubscribed
    /// host — use `vtime` for paper-shaped comparisons).
    pub wall: Duration,
    /// Cluster-wide communication totals.
    pub stats: CommStats,
    /// Failure events recovered from (max over nodes — identical on all).
    pub recoveries: usize,
    /// Total ranks reconstructed.
    pub ranks_recovered: usize,
    /// Per-node outcomes for detailed analysis.
    pub per_node: Vec<NodeOutcome>,
    /// Per-substep virtual-time timeline of every completed recovery, in
    /// event order (from the canonical surviving node; empty when the run
    /// was failure-free).
    pub recovery_timelines: Vec<RecoveryTimeline>,
    /// Per-rank span trace of the whole run (virtual-clock-stamped).
    /// Export with [`parcomm::ClusterTrace::chrome_trace_json`] or analyze
    /// with [`parcomm::ClusterTrace::critical_path`].
    #[cfg(feature = "trace")]
    pub trace: parcomm::ClusterTrace,
}

/// Critical-path communication-time breakdown for one [`parcomm::CommPhase`]:
/// the max-over-nodes totals of the three ways an operation's virtual time
/// can be spent. `exposed` is the time charged on the critical path
/// (blocking transfers + stalls + non-blocking wait charges); `wait` is the
/// stalled subset of it (receiver idle at a matched recv or wait); `hidden`
/// is flight time fully overlapped by compute (never on the critical path).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PhaseBreakdown {
    /// The communication phase this breakdown describes.
    pub phase: parcomm::CommPhase,
    /// Exposed (critical-path) communication vtime, max over nodes.
    pub exposed: f64,
    /// Stalled (wait-only) vtime, max over nodes. A subset of `exposed`.
    pub wait: f64,
    /// Overlapped (hidden) flight vtime, max over nodes.
    pub hidden: f64,
}

impl ExperimentResult {
    /// The canonical node outcome for solve-level scalars: the first node
    /// that finished the solve (never a retired one — a node that left the
    /// cluster mid-solve carries stale iteration/convergence state).
    fn canonical(per_node: &[NodeOutcome]) -> &NodeOutcome {
        per_node
            .iter()
            .find(|o| !o.retired)
            .expect("at least one node survives the solve")
    }

    /// Divide a per-solve total by the iteration count, returning 0.0 for
    /// the converged-at-`x0` case (`iterations == 0`) instead of NaN —
    /// 0/0 would otherwise poison bench JSON with `NaN`.
    fn per_iter(&self, total: f64) -> f64 {
        if self.iterations == 0 {
            0.0
        } else {
            total / self.iterations as f64
        }
    }

    /// Relative residual reduction achieved (0.0 when the initial guess
    /// already solved the system).
    pub fn relative_residual(&self) -> f64 {
        let r0 = Self::canonical(&self.per_node).initial_residual_norm;
        if r0 == 0.0 {
            0.0
        } else {
            self.solver_residual / r0
        }
    }

    /// Full exposed/wait/hidden breakdown of `phase`, max over nodes.
    /// The one place benches and tests get per-phase communication time
    /// from — re-deriving these folds from raw [`CommStats`] at call sites
    /// is a bug factory (easy to forget the max-over-nodes step).
    pub fn phase_breakdown(&self, phase: parcomm::CommPhase) -> PhaseBreakdown {
        let fold = |get: fn(&CommStats, parcomm::CommPhase) -> f64| {
            self.per_node
                .iter()
                .map(|o| get(&o.stats, phase))
                .fold(0.0, f64::max)
        };
        PhaseBreakdown {
            phase,
            exposed: fold(CommStats::exposed_vtime),
            wait: fold(CommStats::wait_vtime),
            hidden: fold(CommStats::hidden_vtime),
        }
    }

    /// [`Self::phase_breakdown`] for every [`parcomm::CommPhase`], in
    /// `CommPhase::ALL` order.
    pub fn phase_breakdowns(&self) -> Vec<PhaseBreakdown> {
        parcomm::CommPhase::ALL
            .iter()
            .map(|&p| self.phase_breakdown(p))
            .collect()
    }

    /// Critical-path **exposed** communication time per iteration in
    /// `phase`: max over nodes of blocking send transfers + stalls +
    /// non-blocking wait charges, divided by the iteration count. The
    /// metric the pipelined-vs-blocking comparison gates on — defined
    /// once here so the bench, tests, and examples measure the same thing.
    pub fn exposed_vtime_per_iter(&self, phase: parcomm::CommPhase) -> f64 {
        self.per_iter(self.phase_breakdown(phase).exposed)
    }

    /// Critical-path stalled (wait-only) time per iteration in `phase`.
    pub fn wait_vtime_per_iter(&self, phase: parcomm::CommPhase) -> f64 {
        self.per_iter(self.phase_breakdown(phase).wait)
    }

    /// Critical-path **hidden** communication time per iteration in
    /// `phase` (non-blocking flight time overlapped by compute).
    pub fn hidden_vtime_per_iter(&self, phase: parcomm::CommPhase) -> f64 {
        self.per_iter(self.phase_breakdown(phase).hidden)
    }

    /// Number of nodes that retired mid-solve (left the cluster because no
    /// replacement was available; their subdomains were adopted). Always 0
    /// under [`RecoveryPolicy::Replace`].
    pub fn retired_nodes(&self) -> usize {
        self.per_node.iter().filter(|o| o.retired).count()
    }
}

/// Run (resilient) PCG on a simulated cluster of `nodes` nodes.
///
/// Every `run_*` entry point validates the solver × policy × precondi-
/// tioner combination up front ([`SolverConfig::validate`]) and returns a
/// typed [`ConfigError`] naming the violated constraint — unsupported
/// combinations fail as a `Result`, not as a panic deep in a node thread.
pub fn run_pcg(
    problem: &Problem,
    nodes: usize,
    cfg: &SolverConfig,
    cost: CostModel,
    script: FailureScript,
) -> Result<ExperimentResult, ConfigError> {
    cfg.validate(SolverKind::Pcg, nodes)?;
    Ok(run_with(problem, nodes, cfg, cost, script, esr_pcg_node))
}

/// Run (resilient) **pipelined** PCG: the communication-hiding variant
/// that overlaps its single fused reduction with the SpMV and
/// preconditioner application (Levonyak et al., arXiv:1912.09230).
/// Requires a block-diagonal (M-given) preconditioner.
pub fn run_pipecg(
    problem: &Problem,
    nodes: usize,
    cfg: &SolverConfig,
    cost: CostModel,
    script: FailureScript,
) -> Result<ExperimentResult, ConfigError> {
    cfg.validate(SolverKind::PipeCg, nodes)?;
    Ok(run_with(
        problem,
        nodes,
        cfg,
        cost,
        script,
        crate::pipecg::esr_pipecg_node,
    ))
}

/// Run (resilient) preconditioned BiCGSTAB (paper Sec. 1 extension).
pub fn run_bicgstab(
    problem: &Problem,
    nodes: usize,
    cfg: &SolverConfig,
    cost: CostModel,
    script: FailureScript,
) -> Result<ExperimentResult, ConfigError> {
    cfg.validate(SolverKind::BiCgStab, nodes)?;
    Ok(run_with(
        problem,
        nodes,
        cfg,
        cost,
        script,
        crate::bicgstab::esr_bicgstab_node,
    ))
}

/// Run the (resilient) distributed Jacobi iteration (paper Sec. 1
/// extension; requires a Jacobi-convergent matrix). Replace-only: the
/// stationary solver assumes the full cluster outlives the solve.
pub fn run_jacobi(
    problem: &Problem,
    nodes: usize,
    cfg: &SolverConfig,
    cost: CostModel,
    script: FailureScript,
) -> Result<ExperimentResult, ConfigError> {
    cfg.validate(SolverKind::Jacobi, nodes)?;
    Ok(run_with(
        problem,
        nodes,
        cfg,
        cost,
        script,
        crate::stationary::esr_jacobi_node,
    ))
}

/// Run checkpoint/restart-protected PCG (paper Sec. 1.2's comparator
/// class; see [`crate::checkpoint`]).
///
/// Compatibility shim over the engine-backed protection axis: equivalent
/// to [`run_pcg`] with `resilience.protection =`
/// [`Protection::Checkpoint`]`(cr)`. A missing `cfg.resilience` defaults
/// to [`ResilienceConfig::paper`] (the C/R parameters all live in `cr`).
pub fn run_checkpoint_restart(
    problem: &Problem,
    nodes: usize,
    cfg: &SolverConfig,
    cr: &crate::config::CrConfig,
    cost: CostModel,
    script: FailureScript,
) -> Result<ExperimentResult, ConfigError> {
    let mut cfg = cfg.clone();
    let res = cfg
        .resilience
        .take()
        .unwrap_or_else(|| crate::config::ResilienceConfig::paper(1));
    cfg.resilience = Some(res.with_protection(crate::config::Protection::Checkpoint(cr.clone())));
    cfg.validate(SolverKind::CheckpointRestart, nodes)?;
    Ok(run_with(problem, nodes, &cfg, cost, script, esr_pcg_node))
}

fn run_with<F>(
    problem: &Problem,
    nodes: usize,
    cfg: &SolverConfig,
    cost: CostModel,
    script: FailureScript,
    node_program: F,
) -> ExperimentResult
where
    F: Fn(&mut parcomm::NodeCtx, &Arc<Csr>, &Arc<Vec<f64>>, &SolverConfig) -> NodeOutcome + Sync,
{
    let a = problem.a.clone();
    let b = problem.b.clone();
    let cfg = cfg.clone();
    // A Spares policy provisions the cluster's hot-spare pool; the node
    // programs consume it through `NodeCtx::spare_pool`.
    let spares = match cfg.resilience.as_ref().map(|r| r.policy) {
        Some(RecoveryPolicy::Spares(k)) => k,
        _ => 0,
    };
    let cluster_cfg = ClusterConfig::new(nodes)
        .with_cost(cost)
        .with_script(script)
        .with_spares(spares);
    let start = Instant::now();
    #[cfg(feature = "trace")]
    let (per_node, trace) =
        Cluster::run_traced(cluster_cfg, move |ctx| node_program(ctx, &a, &b, &cfg));
    #[cfg(not(feature = "trace"))]
    let per_node = Cluster::run(cluster_cfg, move |ctx| node_program(ctx, &a, &b, &cfg));
    let wall = start.elapsed();

    // Assemble the global solution in rank order (retired nodes own no
    // rows; adopters cover the gaps with their widened blocks).
    let mut x = vec![0.0; problem.n()];
    for o in &per_node {
        x[o.range_start..o.range_start + o.x_loc.len()].copy_from_slice(&o.x_loc);
    }

    // True residual and the Eqn. (7) deviation.
    let mut resid = problem.a.mul_vec(&x);
    for (ri, bi) in resid.iter_mut().zip(problem.b.iter()) {
        *ri = bi - *ri;
    }
    let true_residual = norm2(&resid);
    // Solve-level scalars come from a node that finished the solve — a
    // retired node's values froze when it left the cluster.
    let canon = ExperimentResult::canonical(&per_node);
    let solver_residual = canon.residual_norm;
    let residual_deviation = if true_residual > 0.0 {
        (solver_residual - true_residual) / true_residual
    } else {
        0.0
    };

    let mut stats = CommStats::new();
    for o in &per_node {
        stats.merge(&o.stats);
    }
    let vtime = per_node.iter().map(|o| o.vtime_total).fold(0.0, f64::max);
    let vtime_recovery = per_node
        .iter()
        .map(|o| o.vtime_recovery)
        .fold(0.0, f64::max);
    let vtime_setup = per_node.iter().map(|o| o.vtime_setup).fold(0.0, f64::max);

    ExperimentResult {
        iterations: canon.iterations,
        converged: canon.converged,
        solver_residual,
        true_residual,
        residual_deviation,
        vtime,
        vtime_recovery,
        vtime_setup,
        wall,
        stats,
        recoveries: canon.recoveries,
        ranks_recovered: canon.ranks_recovered,
        recovery_timelines: canon.recovery_timelines.clone(),
        x,
        per_node,
        #[cfg(feature = "trace")]
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PrecondConfig, SolverConfig};
    use parcomm::FailureScript;
    use precond::{BlockJacobi, BlockSolver};
    use sparsemat::gen::poisson2d;
    use sparsemat::BlockPartition;

    fn solve_error(result: &ExperimentResult) -> f64 {
        result
            .x
            .iter()
            .map(|xi| (xi - 1.0).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn failure_free_matches_sequential_pcg() {
        let a = poisson2d(12, 12);
        let problem = Problem::with_ones_solution(a.clone());
        let cfg = SolverConfig::reference();
        let res = run_pcg(
            &problem,
            4,
            &cfg,
            CostModel::default(),
            FailureScript::none(),
        )
        .unwrap();
        assert!(res.converged);
        assert!(solve_error(&res) < 1e-6, "err={}", solve_error(&res));
        // Sequential oracle with the same preconditioner.
        let part = BlockPartition::new(144, 4);
        let bj = BlockJacobi::from_partition(&a, &part, BlockSolver::ExactLdl).unwrap();
        let seq = krylov::pcg(&a, &problem.b, &vec![0.0; 144], &bj, 1e-8, 10_000);
        assert!(seq.converged());
        assert!(
            res.iterations.abs_diff(seq.iterations) <= 1,
            "dist {} vs seq {}",
            res.iterations,
            seq.iterations
        );
    }

    #[test]
    fn resilient_without_failures_same_iterations() {
        let a = poisson2d(10, 10);
        let problem = Problem::with_random_rhs(a, 3);
        let plain = run_pcg(
            &problem,
            4,
            &SolverConfig::reference(),
            CostModel::default(),
            FailureScript::none(),
        )
        .unwrap();
        let resilient = run_pcg(
            &problem,
            4,
            &SolverConfig::resilient(2),
            CostModel::default(),
            FailureScript::none(),
        )
        .unwrap();
        // Redundancy changes communication, not numerics.
        assert_eq!(plain.iterations, resilient.iterations);
        assert_eq!(plain.solver_residual, resilient.solver_residual);
        // But it does cost extra elements.
        assert!(
            resilient.stats.elems(parcomm::CommPhase::Redundancy)
                > plain.stats.elems(parcomm::CommPhase::Redundancy)
        );
    }

    #[test]
    fn survives_single_failure() {
        let a = poisson2d(12, 12);
        let problem = Problem::with_ones_solution(a);
        let script = FailureScript::simultaneous(5, 1, 1, 4);
        let res = run_pcg(
            &problem,
            4,
            &SolverConfig::resilient(1),
            CostModel::default(),
            script,
        )
        .unwrap();
        assert!(res.converged);
        assert_eq!(res.recoveries, 1);
        assert_eq!(res.ranks_recovered, 1);
        assert!(solve_error(&res) < 1e-6, "err={}", solve_error(&res));
        assert!(res.vtime_recovery > 0.0);
    }

    #[test]
    fn survives_three_simultaneous_failures() {
        let a = poisson2d(14, 14);
        let problem = Problem::with_ones_solution(a);
        let script = FailureScript::simultaneous(8, 2, 3, 7);
        let res = run_pcg(
            &problem,
            7,
            &SolverConfig::resilient(3),
            CostModel::default(),
            script,
        )
        .unwrap();
        assert!(res.converged);
        assert_eq!(res.recoveries, 1);
        assert_eq!(res.ranks_recovered, 3);
        assert!(solve_error(&res) < 1e-6, "err={}", solve_error(&res));
    }

    #[test]
    fn jacobi_preconditioner_with_failures() {
        let a = poisson2d(10, 10);
        let problem = Problem::with_ones_solution(a);
        let cfg = SolverConfig {
            precond: PrecondConfig::Jacobi,
            ..SolverConfig::resilient(2)
        };
        let script = FailureScript::simultaneous(10, 0, 2, 5);
        let res = run_pcg(&problem, 5, &cfg, CostModel::default(), script).unwrap();
        assert!(res.converged);
        assert!(solve_error(&res) < 1e-6);
    }

    #[test]
    fn deviation_metric_is_small() {
        let a = poisson2d(12, 12);
        let problem = Problem::with_random_rhs(a, 9);
        let script = FailureScript::simultaneous(6, 1, 2, 6);
        let res = run_pcg(
            &problem,
            6,
            &SolverConfig::resilient(2),
            CostModel::default(),
            script,
        )
        .unwrap();
        assert!(res.converged);
        // Eqn. 7 deviation: tiny compared to the 1e8 residual reduction.
        assert!(
            res.residual_deviation.abs() < 1e-4,
            "∆ESR = {}",
            res.residual_deviation
        );
    }
}
