//! The solver-agnostic resilience engine.
//!
//! Before this module existed, the four-substep ESR restart protocol of
//! paper Sec. 4.1 was implemented three separate times — once for blocking
//! PCG (`recovery.rs`), once for pipelined PCG (`pipe_recovery.rs`), and
//! once for the spare-pool/shrink policies (`shrink.rs`) — and BiCGSTAB
//! carried a fourth, overlap-blind copy. One [`RecoveryEngine`] now owns
//! everything a recovery has in common, and a [`ResilientKernel`] describes
//! the one thing that differs per solver: *which vectors are retained and
//! how full iteration state follows from them*.
//!
//! ## Division of labour
//!
//! The **engine** owns:
//!
//! * the attempt loop with per-attempt tag windows, and the four overlap
//!   substep boundaries (any new failure aborts the attempt and restarts
//!   with the enlarged failed set — paper Sec. 4.1);
//! * the recovery **policy** ([`crate::config::RecoveryPolicy`]): in-place
//!   replacement (the paper's unbounded model), spare-pool grants to the
//!   lowest-ranked failed nodes, and survivor **adoption** of uncovered
//!   subdomains with the nearest-preceding-survivor rule, which keeps
//!   ownership contiguous and makes the post-shrink layout a generalized
//!   [`BlockPartition::from_starts`] partition;
//! * routing of replicated scalars and retained redundant copies from the
//!   survivors to each failed block's *reconstructor* (the replacement
//!   node, or the adopting survivor);
//! * the cooperative inner solve of `A_{If,If} x_If = w` over the
//!   reconstructor group (Alg. 2 lines 7–8), generalized to reconstructors
//!   owning several failed blocks at once;
//! * the post-shrink layout rebuild: [`LocalMatrix`], [`ScatterPlan`] and
//!   redundancy targets over the shrunken communicator, preconditioner,
//!   retention channels, and the splice of reconstructed blocks into the
//!   adopters' widened state.
//!
//! The **kernel** (one per solver — `pcg`, `pipecg`, `bicgstab`) declares:
//!
//! * its retention channels and which `(channel, generation)` copies the
//!   reconstruction reads;
//! * the replicated scalars a replacement must be re-sent;
//! * how the locally derivable part of a failed block follows from the
//!   copies (e.g. PCG's `z = p(j) − β p(j−1)`, `r = M z`);
//! * which auxiliary vectors need distributed `A`-products to rebuild
//!   (pipelined PCG's `w = Au, s = Ap, q = M⁻¹s, z = Aq`; BiCGSTAB's
//!   `v = A p̂`, `r = s + α v`), expressed through [`EngineComm`];
//! * how to install a rebuilt block in place, and how to splice/resize its
//!   state after a layout change.
//!
//! Retirement is monotone across restart attempts: the spare budget is
//! snapshotted at event start and always granted to the lowest-ranked
//! failed nodes, and the failed set only grows, so a rank that retired can
//! never be resurrected by a later attempt.

use std::collections::HashSet;
use std::ops::Range;
use std::sync::Arc;

use parcomm::comm::ReduceOp;
use parcomm::request::AllreduceRequest;
use parcomm::{CommPhase, FailAt, Group, NodeCtx, Payload, SparePool};
use precond::{Ilu0, SparseLdl};
use sparsemat::vecops::{axpy, dot, xpay};
use sparsemat::{BlockPartition, Csr};

use crate::config::{
    PrecondConfig, Protection, RecoveryConfig, RecoveryPolicy, ResilienceConfig, SolverConfig,
};
use crate::localmat::LocalMatrix;
use crate::precsetup::NodePrecond;
use crate::redundancy;
use crate::retention::{Gen, Retention};
use crate::scatter::ScatterPlan;

// Recovery tag bases; each attempt gets its own tag window so messages
// from an aborted attempt can never be confused with a later one. The
// same sequence counter numbers checkpoint-deposit rounds and rollback
// attempts (`checkpoint`/`retention`), so every window — ESR attempt,
// deposit, rollback attempt — is globally unique.
const TAG_STRIDE: u32 = 32;
const TAG_BASE: u32 = 1 << 16;
const OFF_SCALARS: u32 = 0;
const OFF_COPIES: u32 = 1; // one offset per channel read, up to OFF_DYNAMIC
const OFF_DYNAMIC: u32 = 10; // request/response pairs allocated per gather

pub(crate) fn tag(seq: u32, off: u32) -> u32 {
    debug_assert!(off < TAG_STRIDE);
    TAG_BASE + seq * TAG_STRIDE + off
}

/// The distributed layout a node program runs on. On the full cluster the
/// members are `0..N` and collectives go through the world communicator;
/// after a shrink they go through the surviving members' [`Group`].
pub(crate) struct Layout {
    /// One contiguous block per member, in member order.
    pub part: BlockPartition,
    /// This node's block rows of `A`.
    pub lm: LocalMatrix,
    /// Ghost-exchange + redundancy plan on the current layout.
    pub plan: ScatterPlan,
    /// Redundant-copy stores on the current layout — one per vector the
    /// solver scatters copies of (PCG: `p`; pipelined: `u`, `p`;
    /// BiCGSTAB: `p̂`, `ŝ`).
    pub channels: Vec<Retention>,
    /// Preconditioner state on the current layout.
    pub prec: NodePrecond,
    /// Sorted global ranks of the active members.
    pub members: Vec<usize>,
    /// This node's slot (`members[my_slot] == rank`).
    pub my_slot: usize,
    /// The shrunken communicator (`None` while the full cluster is alive).
    pub group: Option<Group>,
}

impl Layout {
    /// Build the full-cluster layout: local rows, scatter plan with
    /// redundancy extras, `n_channels` retention stores, preconditioner.
    /// Collective — all nodes call together at setup.
    pub fn build_full(ctx: &mut NodeCtx, a: &Csr, cfg: &SolverConfig, n_channels: usize) -> Self {
        let rank = ctx.rank();
        let part = BlockPartition::new(a.n_rows(), ctx.size());
        let lm = LocalMatrix::build(a, &part, rank);
        let mut plan = ScatterPlan::build(ctx, &lm, &part);
        match &cfg.resilience {
            // Only ESR rides redundancy extras on the SpMV traffic;
            // checkpoint protection pays its deposit traffic instead.
            Some(res) if res.is_esr() => {
                plan.send_extra = redundancy::compute_extra_sends(
                    rank,
                    ctx.size(),
                    res.phi,
                    &res.strategy,
                    lm.n_local(),
                    &plan.send_natural,
                );
                plan.announce_extras(ctx);
            }
            _ => {}
        }
        let channels = (0..n_channels)
            .map(|_| Retention::build(&plan, &lm.ghost_cols))
            .collect();
        let prec = NodePrecond::setup(ctx, &cfg.precond, &part, &lm)
            .unwrap_or_else(|e| panic!("rank {rank}: preconditioner setup failed: {e}"));
        Layout {
            part,
            lm,
            plan,
            channels,
            prec,
            members: (0..ctx.size()).collect(),
            my_slot: rank,
            group: None,
        }
    }

    /// Element-wise all-reduce over the active members, charged to the
    /// Reduction phase. Bitwise-deterministic either way (same
    /// recursive-doubling schedule over member indices).
    pub fn allreduce_vec(&mut self, ctx: &mut NodeCtx, opr: ReduceOp, x: Vec<f64>) -> Vec<f64> {
        match &mut self.group {
            None => ctx.allreduce_vec(opr, x),
            Some(g) => g.allreduce_vec_phase(ctx, opr, x, CommPhase::Reduction),
        }
    }

    /// Scalar sum all-reduce over the active members.
    pub fn allreduce_sum(&mut self, ctx: &mut NodeCtx, x: f64) -> f64 {
        self.allreduce_vec(ctx, ReduceOp::Sum, vec![x])[0]
    }

    /// Non-blocking element-wise all-reduce over the active members: the
    /// communication-hiding solvers keep their overlap on a shrunken
    /// cluster (the group variant replays the identical schedule, so the
    /// result stays bitwise-deterministic).
    pub fn iallreduce_vec(
        &mut self,
        ctx: &mut NodeCtx,
        opr: ReduceOp,
        x: Vec<f64>,
    ) -> AllreduceRequest {
        match &mut self.group {
            None => ctx.iallreduce_vec(opr, x),
            Some(g) => g.iallreduce_vec_phase(ctx, opr, x, CommPhase::Reduction),
        }
    }

    /// Filter a world failure notification down to the active members:
    /// events naming ranks that already retired in an earlier shrink are
    /// inert — that hardware is gone and has nothing left to lose.
    pub fn poll_member_failures(&self, ctx: &NodeCtx, boundary: FailAt) -> Vec<usize> {
        ctx.poll_failures(boundary)
            .into_iter()
            .filter(|f| self.members.binary_search(f).is_ok())
            .collect()
    }
}

/// One timed segment of a recovery attempt.
#[derive(Clone, Debug, PartialEq)]
pub struct SubstepTiming {
    /// Attempt number within the event (1-based; > 1 iff overlapping
    /// failures forced a restart).
    pub attempt: usize,
    /// Substep label — ESR: `setup`/`gather`/`rebuild`/`xsolve`/`commit`;
    /// checkpoint rollback: `setup`/`fetch`/`epoch`/`idle`/`commit`.
    pub label: &'static str,
    /// Virtual time this node spent in the segment.
    pub vtime: f64,
}

/// Per-substep virtual-time breakdown of one recovery event on this node,
/// across every attempt (aborted attempts included). Built from clock
/// *reads* at the substep boundaries — recording it never advances the
/// clock, so enabling it cannot perturb the experiments.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RecoveryTimeline {
    /// The iteration whose boundary detected the failure.
    pub iteration: u64,
    /// `"esr"` (reconstruction) or `"cr"` (checkpoint rollback).
    pub flavor: &'static str,
    /// Timed segments in execution order.
    pub segments: Vec<SubstepTiming>,
}

impl RecoveryTimeline {
    pub(crate) fn new(iteration: u64, flavor: &'static str) -> Self {
        RecoveryTimeline {
            iteration,
            flavor,
            segments: Vec::new(),
        }
    }

    /// Close the segment running since `*seg_t` under `label` and restart
    /// the segment clock.
    pub(crate) fn mark(
        &mut self,
        ctx: &NodeCtx,
        seg_t: &mut f64,
        attempt: usize,
        label: &'static str,
    ) {
        let now = ctx.vtime();
        self.segments.push(SubstepTiming {
            attempt,
            label,
            vtime: now - *seg_t,
        });
        *seg_t = now;
    }

    /// Total virtual time across all segments.
    pub fn total_vtime(&self) -> f64 {
        self.segments.iter().map(|s| s.vtime).sum()
    }
}

/// Outcome of one recovery event.
#[derive(Clone, Debug)]
#[must_use = "a recovery report carries attempt/retirement counts the caller must fold into its own accounting"]
pub struct RecoveryReport {
    /// Total distinct ranks reconstructed (≥ the initial set if
    /// overlapping failures occurred).
    pub total_failed: usize,
    /// Ranks that left the cluster (no replacement; subdomains adopted).
    /// `> 0` means the layout shrank — including the preconditioner, whose
    /// blocks merged; solvers whose recurrences carry `M`-dependent
    /// auxiliary vectors must re-derive them (see `pipecg`).
    pub retired_ranks: usize,
    /// Reconstruction attempts (> 1 iff overlapping failures).
    pub attempts: usize,
    /// Inner-solver iterations of the final attempt's distributed systems.
    pub inner_iterations: usize,
    /// `Some(epoch)` when the recovery was a checkpoint rollback
    /// ([`crate::config::Protection::Checkpoint`]): *all* ranks restored
    /// the state saved at iteration `epoch` and the node program must
    /// rewind its iteration counter there. `None` for ESR — survivors
    /// keep their iterates and nothing is re-executed.
    pub rollback_to: Option<u64>,
    /// Per-substep virtual-time timeline of the event on this node.
    pub timeline: RecoveryTimeline,
}

/// How a recovery ended for this node.
pub(crate) enum EngineOutcome {
    /// Recovery complete; the layout may have shrunk.
    Recovered(RecoveryReport),
    /// This node failed with no replacement available: it leaves the
    /// cluster (its subdomain was adopted by a survivor).
    Retired,
}

/// Static context of one recovery event.
pub(crate) struct EngineEnv<'a> {
    /// Full system matrix (static data, reliable storage).
    pub a: &'a Arc<Csr>,
    /// Full right-hand side (static data; adopters read adopted rows).
    pub b: &'a [f64],
    /// Resilience configuration (φ, strategy, inner solver, policy).
    pub res: &'a ResilienceConfig,
    /// Preconditioner configuration (per-block reconstruction + rebuild).
    pub precond: &'a PrecondConfig,
    /// The iteration whose boundary detected the failure.
    pub iteration: u64,
    /// `false` at iteration 0 (no previous search direction exists yet).
    pub has_prev: bool,
}

/// One `(channel, generation)` retained-copy read the engine routes from
/// the survivors to each failed block's reconstructor.
pub(crate) struct ChannelRead {
    /// Index into [`Layout::channels`].
    pub channel: usize,
    /// Which generation to read.
    pub generation: Gen,
    /// Panic on a coverage gap (`true`) or hand the kernel `None` (reads
    /// that legitimately may not exist yet, e.g. `p(j-1)` at iteration 0).
    pub required: bool,
    /// What the copies are, for diagnostics.
    pub what: &'static str,
}

/// One failed block at its reconstructor. The engine carries
/// `n_block_vecs` per-block vectors whose meaning the kernel defines by
/// slot index; the engine itself only touches the kernel-declared `r` slot
/// (read, for the x right-hand side) and `x` slot (written by the solve).
pub(crate) struct ReconBlock {
    /// Global rows of the block (one failed rank's old owned range).
    pub range: Range<usize>,
    /// Kernel-defined per-block vectors.
    pub vecs: Vec<Vec<f64>>,
}

/// What a solver must describe for the [`RecoveryEngine`] to reconstruct
/// it: retained channels, replicated scalars, and the maps from retained
/// copies to full iteration state. Kernel instances borrow the node
/// program's live solver state for the duration of one recovery event.
pub(crate) trait ResilientKernel {
    /// Retention channels this solver scatters (== `Layout::channels` len).
    fn n_channels(&self) -> usize;
    /// The copy reads recovery needs at this boundary.
    fn channel_reads(&self, has_prev: bool) -> Vec<ChannelRead>;
    /// Replicated scalars a replacement must be re-sent (valid on
    /// survivors; NaN on a poisoned node).
    fn scalars(&self) -> Vec<f64>;
    /// Install the re-sent replicated scalars.
    fn set_scalars(&mut self, s: &[f64]);
    /// Destroy every dynamic vector and scalar of this node (NaN poison;
    /// the retention channels are poisoned by the engine).
    fn poison(&mut self);
    /// Number of per-block vectors the engine carries for this kernel.
    fn n_block_vecs(&self) -> usize;
    /// Slot of the reconstructed residual `r` (the engine reads it when
    /// forming `w = b_If − r_If − A_{If,I\If} x_{I\If}`).
    fn r_slot(&self) -> usize;
    /// Slot the engine writes the reconstructed `x` into.
    fn x_slot(&self) -> usize;
    /// The owned block of the iterate (survivors serve it to the x gather).
    fn x_loc(&self) -> &[f64];
    /// Rebuild the locally derivable part of one failed block from the
    /// assembled copies (`copies[i]` answers `channel_reads()[i]`; reads
    /// marked `required` are always `Some`). Local math only.
    fn rebuild_local(
        &mut self,
        ctx: &mut NodeCtx,
        shared: &EngineShared<'_>,
        blk: &mut ReconBlock,
        copies: Vec<Option<Vec<f64>>>,
    );
    /// Rebuild the block vectors that need distributed `A`-products, via
    /// [`EngineComm`]. Called by **all** active nodes together (survivors
    /// serve value requests inside the comm helpers); `blocks` is empty on
    /// a node that reconstructs nothing. Default: nothing to rebuild.
    fn rebuild_distributed(
        &mut self,
        ctx: &mut NodeCtx,
        shared: &EngineShared<'_>,
        comm: &mut EngineComm<'_>,
        blocks: &mut [ReconBlock],
    ) {
        let _ = (ctx, shared, comm, blocks);
    }
    /// Install a reconstructed block in place — the pure-replacement path,
    /// where each replaced rank rebuilt exactly its own block.
    fn install(&mut self, blk: &ReconBlock);
    /// Splice surviving values and reconstructed blocks into the adopted
    /// (possibly widened) range after a shrink. `own` is this node's old
    /// owned range, `None` if the node was itself replaced in a mixed
    /// event (its old values are poisoned; its block is in `blocks`).
    fn splice(
        &mut self,
        new_range: &Range<usize>,
        own: Option<&Range<usize>>,
        blocks: &[ReconBlock],
        b: &[f64],
    );
    /// Resize scratch buffers after the post-shrink layout rebuild.
    fn resize_scratch(&mut self, nloc: usize, n_ghosts: usize);

    // ---- checkpoint pack ([`crate::config::Protection::Checkpoint`]) ----
    // Solvers that support checkpoint protection override the four pack
    // methods; the defaults declare no pack, and `SolverConfig::validate`
    // keeps checkpoint protection away from such solvers.

    /// Number of owned-block-length vectors in this solver's checkpoint
    /// pack.
    fn n_pack_vecs(&self) -> usize {
        panic!("this solver declares no checkpoint pack")
    }
    /// Number of replicated scalars at the tail of the pack.
    fn n_pack_scalars(&self) -> usize {
        panic!("this solver declares no checkpoint pack")
    }
    /// Pack the dynamic state: `n_pack_vecs()` vectors of the owned block
    /// length concatenated, then `n_pack_scalars()` scalars.
    fn pack(&self) -> Vec<f64> {
        panic!("this solver declares no checkpoint pack")
    }
    /// Restore the dynamic state over `new_range` from a pack produced by
    /// [`ResilientKernel::pack`] (after a shrink: merged across the
    /// adopted blocks, so `new_range` may be wider than the packing
    /// range). Must also resize every scratch vector that tracks the
    /// owned-block length.
    fn unpack(&mut self, data: &[f64], new_range: &Range<usize>, b: &[f64]) {
        let _ = (data, new_range, b);
        panic!("this solver declares no checkpoint pack")
    }
}

/// Static per-attempt context shared with kernel callbacks.
pub(crate) struct EngineShared<'a> {
    /// Full system matrix.
    pub a: &'a Csr,
    /// Preconditioner configuration (block reconstruction operators).
    pub precond: &'a PrecondConfig,
    /// `false` at iteration 0.
    pub has_prev: bool,
}

/// The engine's namespace for the entry point (the protocol itself lives
/// in [`recover`]; kernels and the communication helpers around it).
pub struct RecoveryEngine;

/// Run the unified recovery protocol. All *active* members call this
/// together at a failure boundary with the same failed set (already
/// filtered to active members — ULFM-consistent notification).
///
/// Dispatches on the configured protection flavor: ESR reconstruction
/// (below) or checkpoint rollback ([`crate::checkpoint::recover_rollback`]
/// — `ckpt` must then carry the node's deposit store). Both flavors share
/// the attempt loop with per-attempt tag windows, the overlap substep
/// boundaries, and the policy grant/retire/adoption math.
#[allow(clippy::too_many_arguments)]
pub(crate) fn recover(
    ctx: &mut NodeCtx,
    env: &EngineEnv<'_>,
    layout: &mut Layout,
    kernel: &mut dyn ResilientKernel,
    initial_failed: &[usize],
    handled: &mut HashSet<(u64, u32)>,
    recovery_seq: &mut u32,
    pool: &mut SparePool,
    ckpt: Option<&mut crate::retention::CheckpointStore>,
) -> EngineOutcome {
    if let Protection::Checkpoint(_) = &env.res.protection {
        let store = ckpt.expect("checkpoint protection requires a deposit store");
        return crate::checkpoint::recover_rollback(
            ctx,
            env,
            layout,
            kernel,
            store,
            initial_failed,
            handled,
            recovery_seq,
            pool,
        );
    }
    let me = ctx.rank();
    ctx.trace_open("recovery", env.iteration);
    let mut timeline = RecoveryTimeline::new(env.iteration, "esr");
    let mut failed = initial_failed.to_vec();
    failed.sort_unstable();
    failed.dedup();
    debug_assert_eq!(layout.channels.len(), kernel.n_channels());
    // The replacement budget at event start: Replace models ULFM's
    // unbounded replacement capacity, Spares grants from the finite pool
    // snapshot (every attempt of this event grants from the same budget,
    // so restarts with an enlarged failed set remain SPMD-consistent; the
    // definitive claim happens once, on success), Shrink grants nothing.
    let avail = match env.res.policy {
        RecoveryPolicy::Replace => usize::MAX,
        RecoveryPolicy::Spares(_) => pool.remaining(),
        RecoveryPolicy::Shrink => 0,
    };
    let mut attempts = 0usize;

    'attempt: loop {
        attempts += 1;
        let seq = *recovery_seq;
        *recovery_seq += 1;
        // Declare this attempt's tag window to the protocol auditor: all
        // recovery traffic issued from here until the matching exit belongs
        // to attempt `seq`, and must never match a receive posted under a
        // different attempt (no-op without the `audit` feature).
        ctx.audit_enter_window(seq);
        ctx.trace_open("attempt", seq as u64);
        let mut seg_t = ctx.vtime();
        ctx.trace_open("setup", 0);
        assert!(
            failed.len() < layout.members.len(),
            "all {} active nodes failed — nothing left to recover from",
            layout.members.len()
        );

        // ---- grant replacements to the lowest-ranked failed nodes ------
        let granted = avail.min(failed.len());
        let replaced: Vec<usize> = failed[..granted].to_vec();
        let retired: Vec<usize> = failed[granted..].to_vec();
        ctx.trace_instant("grant", granted as u64);
        if retired.binary_search(&me).is_ok() {
            // No replacement for this node: it is gone. Its subdomain is
            // adopted by a survivor; the thread leaves the cluster.
            ctx.trace_close(); // setup
            ctx.trace_close(); // attempt
            ctx.trace_close(); // recovery
            ctx.audit_exit_window();
            return EngineOutcome::Retired;
        }
        let am_failed = failed.binary_search(&me).is_ok(); // ⇒ replaced
        let am_survivor = !am_failed;

        let old_slot = |r: usize| {
            layout
                .members
                .binary_search(&r)
                .expect("failed rank is an active member")
        };
        let survivors: Vec<usize> = layout
            .members
            .iter()
            .copied()
            .filter(|r| failed.binary_search(r).is_err())
            .collect();
        let new_members: Vec<usize> = layout
            .members
            .iter()
            .copied()
            .filter(|r| retired.binary_search(r).is_err())
            .collect();
        // The post-event partition: boundaries are the old block starts of
        // the remaining members (the first pulled to row 0), which *is*
        // the nearest-preceding-survivor adoption rule. With no
        // retirements this reproduces the old partition exactly.
        let mut new_starts = Vec::with_capacity(new_members.len() + 1);
        new_starts.push(0);
        for m in new_members.iter().skip(1) {
            new_starts.push(layout.part.range(old_slot(*m)).start);
        }
        new_starts.push(layout.part.n());
        let new_part = BlockPartition::from_starts(new_starts);
        let reconstructor = |f: usize| -> usize {
            if replaced.binary_search(&f).is_ok() {
                f // in-place replacement
            } else {
                let start = layout.part.range(old_slot(f)).start;
                new_members[new_part.owner_of(start)] // adopter
            }
        };
        let mut reconstructors: Vec<usize> = failed.iter().map(|&f| reconstructor(f)).collect();
        reconstructors.sort_unstable();
        reconstructors.dedup();
        let if_indices: Vec<usize> = failed
            .iter()
            .flat_map(|&f| layout.part.range(old_slot(f)))
            .collect();
        debug_assert!(if_indices.windows(2).all(|w| w[0] < w[1]));
        let my_range = layout.lm.range.clone();
        let shared = EngineShared {
            a: env.a,
            precond: env.precond,
            has_prev: env.has_prev,
        };

        if am_failed {
            // The node failure: all dynamic data of this rank is lost.
            kernel.poison();
            for ch in &mut layout.channels {
                ch.poison();
            }
        }

        // ---- substep 0: before any recovery communication --------------
        ctx.trace_close();
        timeline.mark(ctx, &mut seg_t, attempts, "setup");
        if poll_overlap(ctx, env.iteration, 0, handled, &mut failed, &layout.members) {
            ctx.trace_instant("overlap_restart", failed.len() as u64);
            ctx.trace_close(); // attempt
            continue 'attempt;
        }
        ctx.trace_open("gather", 0);

        // ---- replicated scalars → the replaced ranks -------------------
        // Adopters are survivors and already hold them; replaced ranks
        // lost theirs to poisoning and receive them from the lowest
        // survivor.
        let lowest_surv = survivors[0];
        if me == lowest_surv {
            let sc = kernel.scalars();
            for &f in &replaced {
                ctx.send(
                    f,
                    tag(seq, OFF_SCALARS),
                    Payload::f64s(sc.clone()),
                    CommPhase::Recovery,
                );
            }
        } else if am_failed {
            let sc = ctx
                .recv_phase(lowest_surv, tag(seq, OFF_SCALARS), CommPhase::Recovery)
                .into_f64s();
            kernel.set_scalars(&sc);
        }

        // ---- retained copies → reconstructors --------------------------
        // Every survivor sends, per failed block in sorted order and per
        // channel read, its retained pairs in that block's range to the
        // block's reconstructor; FIFO (src, tag) ordering disambiguates
        // multiple blocks bound for the same reconstructor.
        let reads = kernel.channel_reads(env.has_prev);
        assert!(
            reads.len() as u32 <= OFF_DYNAMIC - OFF_COPIES,
            "kernel declares more channel reads than the tag window holds"
        );
        if am_survivor {
            for &f in &failed {
                let rho = reconstructor(f);
                if rho == me {
                    continue; // used locally during assembly below
                }
                let br = layout.part.range(old_slot(f));
                for (ri, rd) in reads.iter().enumerate() {
                    ctx.send(
                        rho,
                        tag(seq, OFF_COPIES + ri as u32),
                        Payload::pairs(layout.channels[rd.channel].collect_range(
                            rd.generation,
                            br.start,
                            br.end,
                        )),
                        CommPhase::Recovery,
                    );
                }
            }
        }
        let mut blocks: Vec<ReconBlock> = Vec::new();
        for &f in &failed {
            if reconstructor(f) != me {
                continue;
            }
            let br = layout.part.range(old_slot(f));
            let mut copies: Vec<Option<Vec<f64>>> = Vec::with_capacity(reads.len());
            for (ri, rd) in reads.iter().enumerate() {
                let own = if am_survivor {
                    layout.channels[rd.channel].collect_range(rd.generation, br.start, br.end)
                } else {
                    Vec::new()
                };
                copies.push(assemble_range(
                    ctx,
                    &survivors,
                    me,
                    own,
                    &br,
                    tag(seq, OFF_COPIES + ri as u32),
                    rd.what,
                    rd.required,
                ));
            }
            let mut blk = ReconBlock {
                range: br,
                vecs: vec![Vec::new(); kernel.n_block_vecs()],
            };
            kernel.rebuild_local(ctx, &shared, &mut blk, copies);
            blocks.push(blk);
        }

        // ---- substep 1: after copy gathering ---------------------------
        ctx.trace_close();
        timeline.mark(ctx, &mut seg_t, attempts, "gather");
        if poll_overlap(ctx, env.iteration, 1, handled, &mut failed, &layout.members) {
            ctx.trace_instant("overlap_restart", failed.len() as u64);
            ctx.trace_close(); // attempt
            continue 'attempt;
        }
        ctx.trace_open("rebuild", 0);

        // ---- kernel-specific distributed rebuilds ----------------------
        let mut comm = EngineComm {
            seq,
            next_off: OFF_DYNAMIC,
            part: &layout.part,
            members: &layout.members,
            my_range: my_range.clone(),
            failed: failed.clone(),
            survivors: &survivors,
            reconstructors: &reconstructors,
            if_indices: &if_indices,
            me,
            am_survivor,
            rcfg: &env.res.recovery,
            group: None,
            inner_iterations: 0,
        };
        kernel.rebuild_distributed(ctx, &shared, &mut comm, &mut blocks);

        // ---- substep 2: after the auxiliary rebuilds -------------------
        ctx.trace_close();
        timeline.mark(ctx, &mut seg_t, attempts, "rebuild");
        if poll_overlap(ctx, env.iteration, 2, handled, &mut failed, &layout.members) {
            ctx.trace_instant("overlap_restart", failed.len() as u64);
            ctx.trace_close(); // attempt
            continue 'attempt;
        }
        ctx.trace_open("xsolve", 0);

        // ---- x reconstruction (Alg. 2 lines 7–8) -----------------------
        // Reconstructors gather the surviving x values their failed rows
        // couple to, form `w = b_If − r_If − A_{If,I\If} x_{I\If}`, and
        // solve `A_{If,If} x_If = w` cooperatively over the group.
        let lookup = comm.gather_outside(ctx, env.a, &blocks, kernel.x_loc());
        if !blocks.is_empty() {
            let lookup = lookup.expect("reconstructors obtain the x lookup");
            let r_slot = kernel.r_slot();
            let mut rows: Vec<usize> = Vec::new();
            let mut rhs: Vec<f64> = Vec::new();
            for blk in &blocks {
                let mut flops = 0usize;
                for (i, gr) in blk.range.clone().enumerate() {
                    let (cols, vals) = env.a.row(gr);
                    let mut s = 0.0;
                    for (c, v) in cols.iter().zip(vals) {
                        let c = *c as usize;
                        if if_indices.binary_search(&c).is_err() {
                            let pos = lookup
                                .binary_search_by_key(&c, |e| e.0)
                                .expect("gathered every surviving coupled x");
                            s += v * lookup[pos].1;
                        }
                    }
                    flops += 2 * cols.len();
                    rhs.push(env.b[gr] - blk.vecs[r_slot][i] - s);
                }
                ctx.clock_mut().advance_flops(flops + 2 * blk.range.len());
                rows.extend(blk.range.clone());
            }
            debug_assert!(rows.windows(2).all(|w| w[0] < w[1]));
            let x_new = comm.solve_if_system(ctx, env.a, &rows, rhs);
            let x_slot = kernel.x_slot();
            let mut off = 0usize;
            for blk in &mut blocks {
                blk.vecs[x_slot] = x_new[off..off + blk.range.len()].to_vec();
                off += blk.range.len();
            }
        }
        let inner_iterations = comm.inner_iterations;
        drop(comm);

        // ---- substep 3: failures during the x solve --------------------
        ctx.trace_close();
        timeline.mark(ctx, &mut seg_t, attempts, "xsolve");
        if poll_overlap(ctx, env.iteration, 3, handled, &mut failed, &layout.members) {
            ctx.trace_instant("overlap_restart", failed.len() as u64);
            ctx.trace_close(); // attempt
            continue 'attempt;
        }
        ctx.trace_open("commit", 0);

        // ---- success: commit the spare claim, apply the new layout -----
        if matches!(env.res.policy, RecoveryPolicy::Spares(_)) {
            pool.claim(granted);
        }
        let mut report = RecoveryReport {
            total_failed: failed.len(),
            retired_ranks: retired.len(),
            attempts,
            inner_iterations,
            rollback_to: None,
            timeline: RecoveryTimeline::default(),
        };

        if retired.is_empty() {
            // Every failed rank got a replacement: pure in-place rebuild.
            if am_failed {
                debug_assert!(blocks.len() == 1 && blocks[0].range == my_range);
                kernel.install(&blocks[0]);
                // ghosts/retention refill on the restarted iteration's
                // re-scatter, exactly as before.
            }
            ctx.trace_close(); // commit
            timeline.mark(ctx, &mut seg_t, attempts, "commit");
            ctx.trace_close(); // attempt
            ctx.trace_close(); // recovery
            report.timeline = timeline;
            ctx.audit_exit_window();
            return EngineOutcome::Recovered(report);
        }

        // Shrink: splice own surviving values and reconstructed blocks
        // into the adopted (wider) range, then rebuild every piece of
        // distributed state on the new layout.
        let my_new_slot = new_members
            .binary_search(&me)
            .expect("active non-retired rank is a new member");
        let new_range = new_part.range(my_new_slot);
        let own = if am_failed { None } else { Some(&my_range) };
        kernel.splice(&new_range, own, &blocks, env.b);
        rebuild_layout_after_shrink(ctx, env, layout, kernel, new_part, new_members, true);
        ctx.trace_close(); // commit
        timeline.mark(ctx, &mut seg_t, attempts, "commit");
        ctx.trace_close(); // attempt
        ctx.trace_close(); // recovery
        report.timeline = timeline;
        ctx.audit_exit_window();
        return EngineOutcome::Recovered(report);
    }
}

/// Rebuild every piece of distributed state on the shrunken layout:
/// [`LocalMatrix`], preconditioner, the survivors' [`Group`], the scatter
/// plan (with re-derived redundancy extras when `with_redundancy` — the
/// ESR flavor; checkpoint protection deposits replicas instead), retention
/// channels, and the kernel's scratch buffers. Collective over
/// `new_members`; the caller has already installed the solver state over
/// the new ranges (ESR: `splice`; rollback: `unpack`).
pub(crate) fn rebuild_layout_after_shrink(
    ctx: &mut NodeCtx,
    env: &EngineEnv<'_>,
    layout: &mut Layout,
    kernel: &mut dyn ResilientKernel,
    new_part: BlockPartition,
    new_members: Vec<usize>,
    with_redundancy: bool,
) {
    let me = ctx.rank();
    let my_new_slot = new_members
        .binary_search(&me)
        .expect("active non-retired rank is a new member");
    let lm = LocalMatrix::build(env.a, &new_part, my_new_slot);
    // Coarse cost of re-extracting the adopted static rows.
    ctx.clock_mut()
        .advance_flops(lm.diag.nnz() + lm.offdiag.nnz());
    let prec = NodePrecond::setup(ctx, env.precond, &new_part, &lm)
        .unwrap_or_else(|e| panic!("rank {me}: preconditioner rebuild after shrink: {e}"));
    let mut group = ctx.group(&new_members);
    let mut plan = ScatterPlan::build_on(ctx, &mut group, &lm, &new_part);
    let k = new_members.len();
    let phi_eff = env.res.phi.min(k.saturating_sub(1));
    if with_redundancy && phi_eff >= 1 {
        plan.send_extra = redundancy::compute_extra_sends(
            my_new_slot,
            k,
            phi_eff,
            &env.res.strategy,
            lm.n_local(),
            &plan.send_natural,
        );
        plan.announce_extras_on(ctx, &mut group);
    }
    let channels = (0..layout.channels.len())
        .map(|_| Retention::build(&plan, &lm.ghost_cols))
        .collect();
    kernel.resize_scratch(lm.n_local(), lm.ghost_cols.len());

    layout.part = new_part;
    layout.lm = lm;
    layout.plan = plan;
    layout.channels = channels;
    layout.prec = prec;
    layout.members = new_members;
    layout.my_slot = my_new_slot;
    layout.group = Some(group);
}

/// Check the overlap boundary `(iteration, substep)`; merge any newly
/// failed *active* ranks into `failed` and report whether a restart is
/// needed. Failures naming ranks outside `members` are inert — retired
/// hardware is gone and has nothing left to lose.
pub(crate) fn poll_overlap(
    ctx: &NodeCtx,
    iteration: u64,
    substep: u32,
    handled: &mut HashSet<(u64, u32)>,
    failed: &mut Vec<usize>,
    members: &[usize],
) -> bool {
    let key = (iteration, substep);
    if !handled.insert(key) {
        return false; // already processed in an earlier attempt
    }
    let new: Vec<usize> = ctx
        .poll_failures(FailAt::RecoverySubstep {
            after_iteration: iteration,
            substep,
        })
        .into_iter()
        .filter(|r| members.binary_search(r).is_ok())
        .collect();
    if new.is_empty() {
        return false;
    }
    failed.extend(new);
    failed.sort_unstable();
    failed.dedup();
    true
}

/// Assemble one failed block over `range` from the `(global index, value)`
/// pair lists sent by every survivor except the receiver itself, seeded
/// with the receiver's own retained pairs (`own`, empty on a replacement
/// node whose retention is lost). Panics on a coverage gap when `required`
/// (more simultaneous failures than φ); returns `None` on a gap otherwise
/// (e.g. no `p(j-1)` exists yet at iteration 0).
#[allow(clippy::too_many_arguments)]
fn assemble_range(
    ctx: &mut NodeCtx,
    survivors: &[usize],
    me: usize,
    own: Vec<(u64, f64)>,
    range: &Range<usize>,
    tag: u32,
    what: &str,
    required: bool,
) -> Option<Vec<f64>> {
    let blen = range.len();
    let mut vals = vec![0.0; blen];
    let mut got = vec![false; blen];
    let put = |pairs: Vec<(u64, f64)>, vals: &mut [f64], got: &mut [bool]| {
        for (g, v) in pairs {
            let o = g as usize - range.start;
            vals[o] = v;
            got[o] = true;
        }
    };
    put(own, &mut vals, &mut got);
    for &s in survivors {
        if s == me {
            continue;
        }
        let pairs = ctx.recv_phase(s, tag, CommPhase::Recovery).into_pairs();
        put(pairs, &mut vals, &mut got);
    }
    if let Some(o) = got.iter().position(|&g| !g) {
        if required {
            panic!(
                "rank {me}: unrecoverable — no surviving copy of {what}[{}]; \
                 more simultaneous failures than φ?",
                range.start + o
            );
        }
        return None;
    }
    Some(vals)
}

/// The engine's distributed-rebuild toolkit, handed to
/// [`ResilientKernel::rebuild_distributed`]. Every helper is collective
/// over the active members (survivors serve, reconstructors compute), so
/// kernels must call them unconditionally — not gated on whether this node
/// reconstructs anything.
pub(crate) struct EngineComm<'a> {
    seq: u32,
    next_off: u32,
    part: &'a BlockPartition,
    members: &'a [usize],
    my_range: Range<usize>,
    /// Snapshot of the attempt's failed set (owned: the engine may enlarge
    /// its own copy at the next substep boundary while this one is alive).
    failed: Vec<usize>,
    survivors: &'a [usize],
    reconstructors: &'a [usize],
    /// Sorted global rows of all failed blocks.
    pub if_indices: &'a [usize],
    me: usize,
    am_survivor: bool,
    rcfg: &'a RecoveryConfig,
    /// The reconstructor sub-communicator, created lazily on first use and
    /// shared by every group operation of the attempt.
    group: Option<Group>,
    /// Inner-solver iterations accumulated by [`EngineComm::solve_if_system`].
    inner_iterations: usize,
}

impl EngineComm<'_> {
    fn next_tag_pair(&mut self) -> (u32, u32) {
        let req = self.next_off;
        self.next_off += 2;
        assert!(self.next_off <= TAG_STRIDE, "tag window exhausted");
        (tag(self.seq, req), tag(self.seq, req + 1))
    }

    fn group(&mut self, ctx: &mut NodeCtx) -> &mut Group {
        let recon = self.reconstructors;
        self.group.get_or_insert_with(|| ctx.group(recon))
    }

    /// Survivor-served value lookup: every reconstructor obtains the value
    /// of the distributed vector (whose owned block is `v_loc` on every
    /// active node) at each column of `m`'s rows within its blocks that
    /// falls outside `If`. Returns the sorted `(column, value)` lookup on
    /// reconstructors, `None` on pure survivors. Collective.
    pub fn gather_outside(
        &mut self,
        ctx: &mut NodeCtx,
        m: &Csr,
        blocks: &[ReconBlock],
        v_loc: &[f64],
    ) -> Option<Vec<(usize, f64)>> {
        let (tag_req, tag_resp) = self.next_tag_pair();
        let am_reconstructor = !blocks.is_empty();
        let mut needed: Vec<usize> = Vec::new();
        if am_reconstructor {
            for blk in blocks {
                for gr in blk.range.clone() {
                    let (cols, _) = m.row(gr);
                    needed.extend(
                        cols.iter()
                            .map(|&c| c as usize)
                            .filter(|c| self.if_indices.binary_search(c).is_err()),
                    );
                }
            }
            needed.sort_unstable();
            needed.dedup();
            let mut per_slot: Vec<Vec<u64>> = vec![Vec::new(); self.members.len()];
            for &c in &needed {
                per_slot[self.part.owner_of(c)].push(c as u64);
            }
            for (slot, req) in per_slot.into_iter().enumerate() {
                let owner = self.members[slot];
                if owner == self.me {
                    continue;
                }
                // c ∉ If ⇒ its owner is a survivor.
                debug_assert!(req.is_empty() || self.failed.binary_search(&owner).is_err());
                if self.failed.binary_search(&owner).is_err() {
                    ctx.send(owner, tag_req, Payload::u64s(req), CommPhase::Recovery);
                }
            }
        }
        if self.am_survivor {
            for &rho in self.reconstructors {
                if rho == self.me {
                    continue;
                }
                let req = ctx
                    .recv_phase(rho, tag_req, CommPhase::Recovery)
                    .into_u64s();
                let resp: Vec<(u64, f64)> = req
                    .into_iter()
                    .map(|g| (g, v_loc[g as usize - self.my_range.start]))
                    .collect();
                ctx.send(rho, tag_resp, Payload::pairs(resp), CommPhase::Recovery);
            }
        }
        if !am_reconstructor {
            return None;
        }
        // Sorted (col, value) lookup of every surviving value needed —
        // seeded with this node's own block where it is a survivor
        // (an adopter reads its own values locally).
        let mut lookup: Vec<(usize, f64)> = if self.am_survivor {
            needed
                .iter()
                .copied()
                .filter(|&c| self.my_range.contains(&c))
                .map(|c| (c, v_loc[c - self.my_range.start]))
                .collect()
        } else {
            Vec::new()
        };
        for &s in self.survivors {
            if s == self.me {
                continue;
            }
            for (g, v) in ctx
                .recv_phase(s, tag_resp, CommPhase::Recovery)
                .into_pairs()
            {
                lookup.push((g as usize, v));
            }
        }
        lookup.sort_unstable_by_key(|e| e.0);
        Some(lookup)
    }

    /// `blocks[*].vecs[out_slot] = (m · v)` restricted to each block's
    /// rows, for a distributed vector `v` whose reconstructed `If`-part
    /// lives in `vecs[v_slot]` of the reconstructors' blocks (group
    /// all-gather, concatenating to the sorted `If` layout) and whose
    /// surviving part is `v_loc` (survivor ghost gather). Collective.
    pub fn apply_matrix(
        &mut self,
        ctx: &mut NodeCtx,
        m: &Csr,
        blocks: &mut [ReconBlock],
        v_slot: usize,
        out_slot: usize,
        v_loc: &[f64],
    ) {
        let lookup = self.gather_outside(ctx, m, blocks, v_loc);
        if blocks.is_empty() {
            return;
        }
        let lookup = lookup.expect("reconstructors obtain the lookup");
        let concat: Vec<f64> = blocks
            .iter()
            .flat_map(|b| b.vecs[v_slot].iter().copied())
            .collect();
        let parts = self.group(ctx).allgatherv_f64(ctx, concat);
        let v_if: Vec<f64> = parts.into_iter().flatten().collect();
        debug_assert_eq!(v_if.len(), self.if_indices.len());
        for blk in blocks.iter_mut() {
            let blen = blk.range.len();
            let mut out = vec![0.0; blen];
            let mut flops = 0usize;
            for (i, gr) in blk.range.clone().enumerate() {
                let (cols, vals) = m.row(gr);
                // Two partial sums — If-coupled and outside — added once at
                // the end: the same floating-point association as the
                // former sub-matrix SpMV + masked off-diagonal product, so
                // the replacement path stays bitwise faithful to it.
                let mut s_if = 0.0;
                let mut s_out = 0.0;
                for (c, v) in cols.iter().zip(vals) {
                    let c = *c as usize;
                    match self.if_indices.binary_search(&c) {
                        Ok(pos) => s_if += v * v_if[pos],
                        Err(_) => {
                            let pos = lookup
                                .binary_search_by_key(&c, |e| e.0)
                                .expect("gathered every outside value");
                            s_out += v * lookup[pos].1;
                        }
                    }
                }
                flops += 2 * cols.len();
                out[i] = s_if + s_out;
            }
            ctx.clock_mut().advance_flops(flops + blen);
            blk.vecs[out_slot] = out;
        }
    }

    /// Cooperatively solve `M_{If,If} y = rhs` over the reconstructor
    /// group with an inner distributed PCG (paper Sec. 6: "a PCG solver
    /// assembled with global operations", block-Jacobi preconditioner with
    /// blocks matching each member's reconstructed rows). `rows` is this
    /// member's sorted row set; the concatenation of the members' rows in
    /// ascending rank order equals `If` — guaranteed by the
    /// nearest-preceding-survivor adoption rule. Reconstructors only.
    pub fn solve_if_system(
        &mut self,
        ctx: &mut NodeCtx,
        m: &Csr,
        rows: &[usize],
        rhs: Vec<f64>,
    ) -> Vec<f64> {
        let rcfg = self.rcfg;
        let if_indices = self.if_indices;
        // Split the lazy-group borrow from the fields the solver reads.
        let group = {
            let recon = self.reconstructors;
            self.group.get_or_insert_with(|| ctx.group(recon))
        };
        let (y, iters) = solve_failed_rows(ctx, group, rcfg, rows, if_indices, m, rhs);
        self.inner_iterations += iters;
        y
    }
}

/// The cooperative inner solve behind [`EngineComm::solve_if_system`].
fn solve_failed_rows(
    ctx: &mut NodeCtx,
    group: &mut Group,
    rcfg: &RecoveryConfig,
    rows: &[usize],
    if_indices: &[usize],
    m: &Csr,
    rhs: Vec<f64>,
) -> (Vec<f64>, usize) {
    let rank = ctx.rank();
    // This member's rows of M_{If,If} (columns renumbered into If).
    let sub = m.extract(rows, if_indices);
    // Own diagonal block of M_{If,If} for preconditioning.
    let block = m.extract(rows, rows);
    enum BlockPrec {
        Exact(SparseLdl),
        Ilu(Ilu0),
    }
    let prec = if rcfg.exact_block_precond {
        BlockPrec::Exact(
            SparseLdl::new(&block)
                .unwrap_or_else(|e| panic!("rank {rank}: reconstruction block not SPD: {e}")),
        )
    } else {
        BlockPrec::Ilu(
            Ilu0::new(&block)
                .unwrap_or_else(|e| panic!("rank {rank}: reconstruction block ILU breakdown: {e}")),
        )
    };
    let apply_prec = |p: &BlockPrec, r: &[f64], z: &mut [f64]| {
        z.copy_from_slice(r);
        match p {
            BlockPrec::Exact(f) => f.solve_in_place(z),
            BlockPrec::Ilu(f) => f.solve_in_place(z),
        }
    };
    // Coarse factorization cost.
    ctx.clock_mut().advance_flops(20 * block.nnz().max(1));

    let nloc = rhs.len();
    let mut x = vec![0.0; nloc];
    let mut r = rhs;
    let mut z = vec![0.0; nloc];
    apply_prec(&prec, &r, &mut z);
    let mut p = z.clone();
    // Fused: ‖r‖² and rᵀz in one group all-reduce (same 2-reductions-per-
    // iteration scheme as the outer PCG).
    let init = group.allreduce_vec(ctx, ReduceOp::Sum, vec![dot(&r, &r), dot(&r, &z)]);
    let rn0_sq = init[0];
    let mut rz = init[1];
    if rn0_sq <= f64::MIN_POSITIVE {
        return (x, 0);
    }
    let target_sq = rcfg.inner_rel_tol * rcfg.inner_rel_tol * rn0_sq;
    let mut u = vec![0.0; nloc];
    let mut iters = 0usize;
    for _ in 0..rcfg.inner_max_iter {
        iters += 1;
        // Assemble the full If-vector (group index order == ascending
        // reconstructor ranks == the layout of `if_indices`).
        let parts = group.allgatherv_f64(ctx, p.clone());
        let p_full: Vec<f64> = parts.into_iter().flatten().collect();
        debug_assert_eq!(p_full.len(), if_indices.len());
        sub.spmv(&p_full, &mut u);
        ctx.clock_mut().advance_flops(sub.spmv_flops());
        let pap = group.allreduce_sum(ctx, dot(&p, &u));
        if pap <= 0.0 || !pap.is_finite() {
            panic!("rank {rank}: inner reconstruction solver broke down (pᵀAp = {pap})");
        }
        let alpha = rz / pap;
        axpy(alpha, &p, &mut x);
        axpy(-alpha, &u, &mut r);
        ctx.clock_mut().advance_flops(4 * nloc);
        apply_prec(&prec, &r, &mut z);
        let rr_rz = group.allreduce_vec(ctx, ReduceOp::Sum, vec![dot(&r, &r), dot(&r, &z)]);
        if rr_rz[0] <= target_sq {
            break;
        }
        let rz_next = rr_rz[1];
        let beta = rz_next / rz;
        rz = rz_next;
        xpay(&z, beta, &mut p);
        ctx.clock_mut().advance_flops(2 * nloc);
    }
    (x, iters)
}

/// `r_b = M_{b,b} z_b` for one failed block from static data alone — the
/// M-given reconstruction step (companion paper Alg. 3), local because the
/// block-diagonal preconditioners align with the block boundaries. What
/// lets an *adopter* reconstruct a block it never owned.
pub(crate) fn m_block_forward(
    ctx: &mut NodeCtx,
    a: &Csr,
    precond: &PrecondConfig,
    range: &Range<usize>,
    z: &[f64],
) -> Vec<f64> {
    let blen = range.len();
    let rows: Vec<usize> = range.clone().collect();
    match precond {
        PrecondConfig::None => z.to_vec(),
        PrecondConfig::Jacobi => {
            let d = a.extract(&rows, &rows).diag();
            ctx.clock_mut().advance_flops(blen);
            z.iter().zip(&d).map(|(z, d)| z * d).collect()
        }
        PrecondConfig::BlockJacobiExact => {
            let m_bb = a.extract(&rows, &rows);
            let mut r = vec![0.0; blen];
            m_bb.spmv(z, &mut r);
            ctx.clock_mut().advance_flops(m_bb.spmv_flops());
            r
        }
        PrecondConfig::ExplicitP(_) => {
            // Guarded by config validation; the P-given path reconstructs r
            // through the kernel's distributed stage instead.
            unreachable!("ExplicitP has no local M-forward block operator")
        }
    }
}

/// `q_b = M_{b,b}⁻¹ s_b` for one failed block from static data alone — the
/// inverse companion of [`m_block_forward`] (pipelined PCG rebuilds
/// `q = M⁻¹ s` per block).
pub(crate) fn m_block_inverse(
    ctx: &mut NodeCtx,
    a: &Csr,
    precond: &PrecondConfig,
    range: &Range<usize>,
    s: &[f64],
) -> Vec<f64> {
    let blen = range.len();
    let rows: Vec<usize> = range.clone().collect();
    match precond {
        PrecondConfig::None => s.to_vec(),
        PrecondConfig::Jacobi => {
            let d = a.extract(&rows, &rows).diag();
            ctx.clock_mut().advance_flops(blen);
            s.iter().zip(&d).map(|(s, d)| s / d).collect()
        }
        PrecondConfig::BlockJacobiExact => {
            let m_bb = a.extract(&rows, &rows);
            let factor = SparseLdl::new(&m_bb).unwrap_or_else(|e| {
                panic!(
                    "reconstruction block [{}, {}) not SPD: {e}",
                    range.start, range.end
                )
            });
            ctx.clock_mut().advance_flops(20 * factor.l_nnz().max(1));
            let mut q = s.to_vec();
            factor.solve_in_place(&mut q);
            ctx.clock_mut().advance_flops(factor.solve_flops());
            q
        }
        PrecondConfig::ExplicitP(_) => {
            unreachable!("ExplicitP has no local M-inverse block operator")
        }
    }
}

/// Build the new local vector over `new_range` from the node's old owned
/// values (`None` for a replaced rank, whose old values are poisoned and
/// whose block is in `blocks`) and its reconstructed blocks' `slot`
/// vectors. Every row of `new_range` is covered exactly once by
/// construction.
pub(crate) fn splice(
    new_range: &Range<usize>,
    own_range: Option<&Range<usize>>,
    old: &[f64],
    blocks: &[ReconBlock],
    slot: usize,
) -> Vec<f64> {
    let mut out = vec![f64::NAN; new_range.len()];
    if let Some(own) = own_range {
        out[own.start - new_range.start..own.end - new_range.start].copy_from_slice(old);
    }
    for blk in blocks {
        out[blk.range.start - new_range.start..blk.range.end - new_range.start]
            .copy_from_slice(&blk.vecs[slot]);
    }
    debug_assert!(out.iter().all(|v| !v.is_nan()), "shrink splice left a gap");
    out
}
