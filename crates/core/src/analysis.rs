//! Communication-overhead analysis — the paper's Sec. 4.2 bounds and the
//! Sec. 5 sparsity-pattern criteria, computed for a concrete matrix,
//! partition, and redundancy level.
//!
//! The paper bounds the per-iteration overhead `O` of distributing the
//! redundant copies by
//!
//! ```text
//! 0  ≤  Σₖ maxᵢ |Rᶜᵢₖ| µ  ≤  O  ≤  Σₖ maxᵢ (λᵢₖ + |Rᶜᵢₖ| µ)  ≤  φ (λmax + ⌈n/N⌉ µ)
//! ```
//!
//! and notes that no extra latency is paid if, for every node `i` and
//! round `k`, the submatrix `A_{I_{d_ik}, I_i}` has a nonzero (natural
//! traffic to the backup target exists).

use parcomm::CostModel;
use sparsemat::{analysis::send_sets, BlockPartition, Csr};

use crate::config::BackupStrategy;
use crate::redundancy::{compute_extra_sends, targets_for};

/// Predicted redundancy overhead for one matrix/partition/φ combination.
#[derive(Clone, Debug)]
pub struct OverheadPrediction {
    /// Redundancy level analyzed.
    pub phi: usize,
    /// Per round `k` (1-based index `k-1`): `maxᵢ |Rᶜᵢₖ|`.
    pub max_extra_per_round: Vec<usize>,
    /// Per round: does any node pay an extra message latency?
    pub extra_latency_round: Vec<bool>,
    /// Lower bound on the per-iteration overhead (seconds, cost model).
    pub lower_bound: f64,
    /// Modeled per-iteration overhead under the cost model (extra
    /// elements + extra latencies actually incurred).
    pub modeled: f64,
    /// The paper's coarse upper bound `φ(λmax + ⌈n/N⌉µ)`.
    pub upper_bound: f64,
    /// Total extra elements sent per iteration, cluster-wide.
    pub total_extra_elems: usize,
    /// No round actually pays an extra message latency (nothing extra is
    /// sent over links without natural traffic).
    pub latency_free: bool,
    /// The strict Sec. 5 criterion: `A_{I_{d_ik}, I_i} ≠ 0` for **all**
    /// `i`, `k` — every backup link carries natural traffic. Sufficient
    /// (but not necessary) for `latency_free`.
    pub all_backup_links_natural: bool,
}

/// Analyze the redundancy traffic the scheme would generate.
pub fn predict_overhead(
    a: &Csr,
    part: &BlockPartition,
    phi: usize,
    strategy: &BackupStrategy,
    cost: &CostModel,
) -> OverheadPrediction {
    let nodes = part.nodes();
    let sets = send_sets(a, part);

    let mut max_extra_per_round = vec![0usize; phi];
    let mut extra_latency_round = vec![false; phi];
    let mut total_extra = 0usize;
    let mut all_backup_links_natural = true;

    for i in 0..nodes {
        // Natural sends of node i as local offsets.
        let start = part.range(i).start;
        let send_natural: Vec<Vec<usize>> = sets[i]
            .iter()
            .map(|sk| sk.iter().map(|&g| g - start).collect())
            .collect();
        let extras = compute_extra_sends(i, nodes, phi, strategy, part.len_of(i), &send_natural);
        let targets = targets_for(strategy, i, nodes, phi);
        for (k1, &d) in targets.iter().enumerate() {
            let cnt = extras[d].len();
            total_extra += cnt;
            max_extra_per_round[k1] = max_extra_per_round[k1].max(cnt);
            let natural_to_target = !send_natural[d].is_empty();
            if !natural_to_target {
                all_backup_links_natural = false;
                if cnt > 0 {
                    extra_latency_round[k1] = true;
                }
            }
        }
    }

    let lower_bound: f64 = max_extra_per_round
        .iter()
        .map(|&m| m as f64 * cost.mu)
        .sum();
    let modeled: f64 = max_extra_per_round
        .iter()
        .zip(&extra_latency_round)
        .map(|(&m, &lat)| m as f64 * cost.mu + if lat { cost.lambda } else { 0.0 })
        .sum();
    let upper_bound = cost.redundancy_overhead_upper_bound(phi, part.n(), nodes);
    let latency_free = !extra_latency_round.iter().any(|&b| b);

    OverheadPrediction {
        phi,
        max_extra_per_round,
        extra_latency_round,
        lower_bound,
        modeled,
        upper_bound,
        total_extra_elems: total_extra,
        latency_free,
        all_backup_links_natural,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsemat::gen::{circuit_like, elasticity3d, poisson3d, BlockStencil};

    #[test]
    fn bounds_are_ordered() {
        let a = poisson3d(6, 6, 6);
        let part = BlockPartition::new(216, 8);
        let cost = CostModel::default();
        for phi in [1usize, 3] {
            let p = predict_overhead(&a, &part, phi, &BackupStrategy::Minimal, &cost);
            assert!(p.lower_bound <= p.modeled + 1e-18, "phi={phi}");
            assert!(p.modeled <= p.upper_bound * (1.0 + 1e-12), "phi={phi}");
        }
    }

    #[test]
    fn overhead_grows_with_phi() {
        let a = poisson3d(6, 6, 6);
        let part = BlockPartition::new(216, 8);
        let cost = CostModel::default();
        let p1 = predict_overhead(&a, &part, 1, &BackupStrategy::Minimal, &cost);
        let p3 = predict_overhead(&a, &part, 3, &BackupStrategy::Minimal, &cost);
        assert!(p3.total_extra_elems > p1.total_extra_elems);
    }

    #[test]
    fn wide_band_is_latency_free_for_small_phi() {
        // Full27 elasticity on few nodes: each node talks to its ring
        // neighbours naturally, and every element already travels (m ≥ 1),
        // so φ=1 redundancy is completely free — no extras, no latency.
        let a = elasticity3d(6, 6, 6, 3, BlockStencil::Full27, 0.0, 1);
        let part = BlockPartition::new(a.n_rows(), 6);
        let p = predict_overhead(
            &a,
            &part,
            1,
            &BackupStrategy::Minimal,
            &CostModel::default(),
        );
        assert!(p.latency_free, "{:?}", p.extra_latency_round);
        // The strict all-links criterion fails only at the band's ends
        // (rank N-1's ring-wrap backup target 0 shares no band entries).
        assert!(!p.all_backup_links_natural);
        assert_eq!(p.total_extra_elems, 0, "φ=1 should be free on wide bands");
    }

    #[test]
    fn full_block_hits_upper_bound_in_bandwidth_regime() {
        // The coarse upper bound φ(λ + ⌈n/N⌉µ) includes a latency term
        // that piggybacked messages avoid; compare in a pure-bandwidth
        // model (λ = 0), where FullBlock sends ≈ ⌈n/N⌉ per round.
        let a = circuit_like(240, 4, 0.02, 7);
        let part = BlockPartition::new(240, 8);
        let cost = CostModel {
            lambda: 0.0,
            mu: 1.0e-9,
            gamma: 0.0,
        };
        let min = predict_overhead(&a, &part, 3, &BackupStrategy::Minimal, &cost);
        let full = predict_overhead(&a, &part, 3, &BackupStrategy::FullBlock, &cost);
        assert!(full.total_extra_elems >= min.total_extra_elems);
        assert!(
            full.modeled > 0.8 * full.upper_bound,
            "modeled {} vs bound {}",
            full.modeled,
            full.upper_bound
        );
    }

    #[test]
    fn minimal_on_high_multiplicity_pattern_is_cheap() {
        // Scattered pattern with high multiplicity: φ=1 extras are rare.
        let a = circuit_like(400, 40, 0.5, 3);
        let part = BlockPartition::new(400, 16);
        let p = predict_overhead(
            &a,
            &part,
            1,
            &BackupStrategy::Minimal,
            &CostModel::default(),
        );
        let n_per_node = 25.0;
        let avg_extra = p.total_extra_elems as f64 / 16.0;
        assert!(
            avg_extra < n_per_node,
            "extras {avg_extra} should be below block size {n_per_node}"
        );
    }
}
