//! State reconstruction for the **pipelined** PCG — the ESR extension of
//! Levonyak, Pacher & Gansterer (arXiv:1912.09230) adapted to the
//! Ghysels–Vanroose recurrences of [`crate::pipecg`].
//!
//! The pipelined solver carries four auxiliary vectors beyond PCG's
//! `(x, r, z, p)`, but they are all tied to `u` and `p` by the invariants
//!
//! ```text
//! r = M u,   w = A u,   s = A p,   q = M⁻¹ s,   z = A q,
//! ```
//!
//! so redundant copies of **u(j)** and **p(j-1)** (distributed with the
//! `m`-ghost exchange, see [`crate::scatter::PipeBackups`]) are enough to
//! reconstruct everything:
//!
//! 1. replicated scalars `γ(j-1)`, `α(j-1)` from the lowest survivor;
//! 2. `u_If` and `p(j-1)_If` from the survivors' retained copies;
//! 3. `r_If = M_{If,If} u_If` — local, because the pipelined solver
//!    requires a block-diagonal (M-given) preconditioner;
//! 4. `x_If` exactly as in the blocking ESR (gather surviving `x`, solve
//!    `A_{If,If} x_If = b_If − r_If − A_{If,I\If} x_{I\If}` cooperatively);
//! 5. `w_If = (A u)_If`, `s_If = (A p)_If`, `q_If = M⁻¹_{If,If} s_If`,
//!    `z_If = (A q)_If`: ghost values of `u`, `p`, `q` outside `I_f` come
//!    from survivors, the `A_{If,If}`-coupled parts from a group
//!    all-gather among the replacement nodes.
//!
//! Overlapping failures use the same four substep boundaries and
//! restart-with-enlarged-set protocol as the blocking recovery
//! (paper Sec. 4.1), so [`parcomm::FailAt::RecoverySubstep`] scripts apply
//! unchanged.

use std::collections::HashSet;

use parcomm::fault::poison;
use parcomm::{CommPhase, NodeCtx, Payload};
use sparsemat::Csr;

use crate::precsetup::NodePrecond;
use crate::recovery::{
    assemble_block, gather_failed_ghosts, poll_overlap, solve_failed_system, tag, RecoveryEnv,
    RecoveryReport,
};
use crate::retention::{Gen, Retention};

// Tag offsets inside the per-attempt window of `recovery::tag` (stride 16;
// the blocking and pipelined protocols never run in the same solve).
const OFF_SCALARS: u32 = 0;
const OFF_UCUR: u32 = 1;
const OFF_PPREV: u32 = 2;
const OFF_REQ_X: u32 = 3;
const OFF_RESP_X: u32 = 4;
const OFF_REQ_U: u32 = 5;
const OFF_RESP_U: u32 = 6;
const OFF_REQ_P: u32 = 7;
const OFF_RESP_P: u32 = 8;
const OFF_REQ_Q: u32 = 9;
const OFF_RESP_Q: u32 = 10;

/// The mutable pipelined-solver state being reconstructed.
pub struct PipeSolverState<'a> {
    /// The iterate block `x(j)_Iᵢ`.
    pub x: &'a mut [f64],
    /// The residual block `r(j)_Iᵢ`.
    pub r: &'a mut [f64],
    /// `u(j) = M⁻¹ r(j)`.
    pub u: &'a mut [f64],
    /// `w(j) = A u(j)`.
    pub w: &'a mut [f64],
    /// The search direction `p(j-1)_Iᵢ`.
    pub p: &'a mut [f64],
    /// `s(j-1) = A p(j-1)`.
    pub s: &'a mut [f64],
    /// `q(j-1) = M⁻¹ s(j-1)`.
    pub q: &'a mut [f64],
    /// `z(j-1) = A q(j-1)`.
    pub z: &'a mut [f64],
    /// Ghost values of `m(j)` from the last exchange.
    pub ghosts: &'a mut [f64],
    /// Redundant copies of `u(j)`.
    pub ret_u: &'a mut Retention,
    /// Redundant copies of `p(j-1)`.
    pub ret_p: &'a mut Retention,
    /// The replicated scalar `γ(j-1) = r(j-1)ᵀu(j-1)`.
    pub gamma_prev: &'a mut f64,
    /// The replicated scalar `α(j-1)`.
    pub alpha_prev: &'a mut f64,
}

/// Run the pipelined recovery protocol. All nodes call this at the same
/// post-exchange boundary with the same `initial_failed` set.
#[allow(clippy::too_many_arguments)]
pub fn recover_pipelined(
    ctx: &mut NodeCtx,
    env: &RecoveryEnv,
    prec: &mut NodePrecond,
    initial_failed: &[usize],
    handled: &mut HashSet<(u64, u32)>,
    recovery_seq: &mut u32,
    st: &mut PipeSolverState,
) -> RecoveryReport {
    assert!(
        !prec.is_explicit_p(),
        "pipelined PCG requires a block-diagonal (M-given) preconditioner"
    );
    let mut failed = initial_failed.to_vec();
    failed.sort_unstable();
    failed.dedup();
    let mut attempts = 0usize;

    'attempt: loop {
        attempts += 1;
        let seq = *recovery_seq;
        *recovery_seq += 1;
        assert!(
            failed.len() < ctx.size(),
            "all {} nodes failed — nothing left to recover from",
            ctx.size()
        );
        let rank = ctx.rank();
        let am_failed = failed.binary_search(&rank).is_ok();
        let if_indices = env.part.union_of(&failed);
        let nloc = env.lm.n_local();
        let my_start = env.lm.range.start;

        if am_failed {
            // The node failure: all dynamic data of this rank is lost.
            poison(st.x);
            poison(st.r);
            poison(st.u);
            poison(st.w);
            poison(st.p);
            poison(st.s);
            poison(st.q);
            poison(st.z);
            poison(st.ghosts);
            st.ret_u.poison();
            st.ret_p.poison();
            *st.gamma_prev = f64::NAN;
            *st.alpha_prev = f64::NAN;
        }

        // ---- substep 0: before any recovery communication ------------
        if poll_overlap(ctx, env, 0, handled, &mut failed) {
            continue 'attempt;
        }

        // ---- γ(j-1), α(j-1): replicated scalars from the lowest survivor
        let lowest_surv = (0..ctx.size())
            .find(|r| failed.binary_search(r).is_err())
            .expect("at least one survivor");
        if rank == lowest_surv {
            for &f in &failed {
                ctx.send(
                    f,
                    tag(seq, OFF_SCALARS),
                    Payload::f64s(vec![*st.gamma_prev, *st.alpha_prev]),
                    CommPhase::Recovery,
                );
            }
        } else if am_failed {
            let sc = ctx
                .recv_phase(lowest_surv, tag(seq, OFF_SCALARS), CommPhase::Recovery)
                .into_f64s();
            *st.gamma_prev = sc[0];
            *st.alpha_prev = sc[1];
        }

        // ---- redundant copies of u(j), p(j-1) → replacements ----------
        if !am_failed {
            for &f in &failed {
                let range = env.part.range(f);
                ctx.send(
                    f,
                    tag(seq, OFF_UCUR),
                    Payload::pairs(st.ret_u.collect_range(Gen::Cur, range.start, range.end)),
                    CommPhase::Recovery,
                );
                ctx.send(
                    f,
                    tag(seq, OFF_PPREV),
                    Payload::pairs(st.ret_p.collect_range(Gen::Cur, range.start, range.end)),
                    CommPhase::Recovery,
                );
            }
        } else {
            let u_new = assemble_block(
                ctx,
                &failed,
                nloc,
                my_start,
                tag(seq, OFF_UCUR),
                "u(j)",
                true,
            )
            .expect("u(j) copies are mandatory");
            let p_new = assemble_block(
                ctx,
                &failed,
                nloc,
                my_start,
                tag(seq, OFF_PPREV),
                "p(j-1)",
                env.has_prev,
            );
            st.u.copy_from_slice(&u_new);
            // r_If = M_{If,If} u_If — local because M is block-diagonal.
            prec.m_forward_local(env.lm, st.u, st.r);
            ctx.clock_mut().advance_flops(env.lm.diag.spmv_flops());
            if let Some(p_new) = p_new {
                st.p.copy_from_slice(&p_new);
            } else {
                // Iteration 0: no search direction exists yet; the solver's
                // β = 0 branch re-initializes p, s, q, z from u and w.
                st.p.fill(0.0);
                st.s.fill(0.0);
                st.q.fill(0.0);
                st.z.fill(0.0);
            }
        }

        // ---- substep 1: after copy gathering --------------------------
        if poll_overlap(ctx, env, 1, handled, &mut failed) {
            continue 'attempt;
        }

        // ---- x reconstruction (Alg. 2 lines 7–8, unchanged) ------------
        let mut inner_iterations = 0usize;
        let ghost_x = gather_failed_ghosts(
            ctx,
            env.part,
            &failed,
            am_failed,
            &env.lm.ghost_cols,
            st.x,
            my_start,
            tag(seq, OFF_REQ_X),
            tag(seq, OFF_RESP_X),
        );
        if am_failed {
            // w = b_If − r_If − A_{If,I\If} x_{I\If}
            let mut rhs = vec![0.0; nloc];
            env.lm
                .offdiag_mul_excluding(&ghost_x.unwrap(), &if_indices, &mut rhs);
            ctx.clock_mut().advance_flops(env.lm.offdiag.spmv_flops());
            for i in 0..nloc {
                rhs[i] = env.b_loc[i] - st.r[i] - rhs[i];
            }
            let (x_new, iters) = solve_failed_system(ctx, env, &failed, &if_indices, env.a, rhs);
            inner_iterations += iters;
            st.x.copy_from_slice(&x_new);
        }

        // ---- substep 2: after x reconstruction -------------------------
        if poll_overlap(ctx, env, 2, handled, &mut failed) {
            continue 'attempt;
        }

        // ---- auxiliary recurrence vectors ------------------------------
        // Replacements rebuild w, s, q, z from the invariants; survivors
        // only answer ghost requests. The A_{If,If}-coupled contributions
        // come from a group all-gather among the replacements.
        let rows: Vec<usize> = env.lm.range.clone().collect();
        let sub = if am_failed {
            Some(env.a.extract(&rows, &if_indices))
        } else {
            None
        };
        let mut group = if am_failed {
            Some(ctx.group(&failed))
        } else {
            None
        };

        // w_If = (A u)_If
        let ghost_u = gather_failed_ghosts(
            ctx,
            env.part,
            &failed,
            am_failed,
            &env.lm.ghost_cols,
            st.u,
            my_start,
            tag(seq, OFF_REQ_U),
            tag(seq, OFF_RESP_U),
        );
        if am_failed {
            apply_full_row(
                ctx,
                sub.as_ref().unwrap(),
                group.as_mut().unwrap(),
                env,
                &if_indices,
                st.u,
                &ghost_u.unwrap(),
                st.w,
            );
        }

        if env.has_prev {
            // s_If = (A p)_If, then q_If = M⁻¹_{If,If} s_If (local).
            let ghost_p = gather_failed_ghosts(
                ctx,
                env.part,
                &failed,
                am_failed,
                &env.lm.ghost_cols,
                st.p,
                my_start,
                tag(seq, OFF_REQ_P),
                tag(seq, OFF_RESP_P),
            );
            if am_failed {
                apply_full_row(
                    ctx,
                    sub.as_ref().unwrap(),
                    group.as_mut().unwrap(),
                    env,
                    &if_indices,
                    st.p,
                    &ghost_p.unwrap(),
                    st.s,
                );
                prec.apply(ctx, st.s, st.q);
            }
            // z_If = (A q)_If
            let ghost_q = gather_failed_ghosts(
                ctx,
                env.part,
                &failed,
                am_failed,
                &env.lm.ghost_cols,
                st.q,
                my_start,
                tag(seq, OFF_REQ_Q),
                tag(seq, OFF_RESP_Q),
            );
            if am_failed {
                apply_full_row(
                    ctx,
                    sub.as_ref().unwrap(),
                    group.as_mut().unwrap(),
                    env,
                    &if_indices,
                    st.q,
                    &ghost_q.unwrap(),
                    st.z,
                );
            }
        }
        drop(group);

        // ---- substep 3: failures during the rebuild --------------------
        if poll_overlap(ctx, env, 3, handled, &mut failed) {
            continue 'attempt;
        }

        return RecoveryReport {
            total_failed: failed.len(),
            attempts,
            inner_iterations,
        };
    }
}

/// `out = (A v)_Iᵢ` on a replacement node: the `A_{If,If}`-coupled part
/// from a group all-gather of the replacements' blocks, the rest from the
/// survivor ghost values (failed columns excluded — they are covered by
/// the gathered full block).
#[allow(clippy::too_many_arguments)]
fn apply_full_row(
    ctx: &mut NodeCtx,
    sub: &Csr,
    group: &mut parcomm::Group,
    env: &RecoveryEnv,
    if_indices: &[usize],
    v_loc: &[f64],
    ghost_v: &[f64],
    out: &mut [f64],
) {
    let parts = group.allgatherv_f64(ctx, v_loc.to_vec());
    let v_full: Vec<f64> = parts.into_iter().flatten().collect();
    debug_assert_eq!(v_full.len(), if_indices.len());
    sub.spmv(&v_full, out);
    ctx.clock_mut().advance_flops(sub.spmv_flops());
    let mut off = vec![0.0; out.len()];
    env.lm.offdiag_mul_excluding(ghost_v, if_indices, &mut off);
    ctx.clock_mut().advance_flops(env.lm.offdiag.spmv_flops());
    for (o, d) in out.iter_mut().zip(&off) {
        *o += d;
    }
}
