//! Solver, resilience, and recovery configuration.

use sparsemat::Csr;
use std::sync::Arc;

/// How redundant copies of the search directions are placed.
#[derive(Clone, Debug, PartialEq)]
pub enum BackupStrategy {
    /// The paper's strategy: backup targets `d_ik` from Eqn. (5)
    /// (alternating ring: +1, −1, +2, −2, …), minimal extra sets `Rᶜᵢₖ`
    /// from Eqn. (6). With `φ = 1` this reduces exactly to Chen's
    /// single-failure scheme (Sec. 3).
    Minimal,
    /// Ablation of the Eqn. (5) placement: same minimal sets, but
    /// *consecutive* ring targets `d_ik = (i + k) mod N`. For a banded
    /// matrix the natural traffic reaches ring distance ±c, so the
    /// alternating choice finds free rides up to `φ = 2c` while the
    /// consecutive choice stops at `φ = c` — exactly the asymmetry the
    /// paper's heuristic exploits.
    MinimalConsecutive,
    /// Naive ablation: send the *entire* owned block to every backup
    /// target, ignoring natural SpMV traffic. Realizes the paper's
    /// Sec. 4.2 upper bound `φ(λmax + ⌈n/N⌉µ)` and quantifies how much
    /// Eqn. (6) saves.
    FullBlock,
}

/// The preconditioner configuration, which also selects the reconstruction
/// variant (paper Alg. 2 assumes `P = M⁻¹` given; the companion paper's
/// Alg. 3 handles `M` given).
#[derive(Clone)]
pub enum PrecondConfig {
    /// No preconditioning (plain CG): `z = r`, reconstruction is trivial.
    None,
    /// `M = diag(A)`: M-given reconstruction, `r_If = D_If · z_If` locally.
    Jacobi,
    /// The paper's setup (Sec. 6): block Jacobi aligned with the node
    /// partition, blocks solved **exactly** (sparse LDLᵀ). M-given
    /// reconstruction is local: `r_If = A_{If,If} z_If`.
    BlockJacobiExact,
    /// Explicit `P = M⁻¹` given as a sparse matrix: the fully general
    /// P-given reconstruction (Alg. 2 lines 5–6), including the gather of
    /// surviving `r` parts and the distributed solve of
    /// `P_{If,If} r_If = v` when `P` couples across nodes.
    ExplicitP(Arc<Csr>),
}

impl std::fmt::Debug for PrecondConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrecondConfig::None => write!(f, "None"),
            PrecondConfig::Jacobi => write!(f, "Jacobi"),
            PrecondConfig::BlockJacobiExact => write!(f, "BlockJacobiExact"),
            PrecondConfig::ExplicitP(p) => {
                write!(f, "ExplicitP({}x{})", p.n_rows(), p.n_cols())
            }
        }
    }
}

/// Reconstruction-phase configuration (paper Secs. 6, 7.1).
#[derive(Clone, Debug)]
pub struct RecoveryConfig {
    /// Relative tolerance of the inner solver for `A_{If,If} x_If = w`.
    /// The paper uses `1e-14` ("we can set the tolerance for the local
    /// system to a very small value").
    pub inner_rel_tol: f64,
    /// Iteration cap for the inner solver.
    pub inner_max_iter: usize,
    /// Solve `A_{If,If}` with the exact per-block LDLᵀ as the inner
    /// preconditioner (`true`, default) or zero-fill ILU as in the paper's
    /// PETSc implementation (`false`).
    ///
    /// Redundancy restoration after recovery needs no configuration: the
    /// interrupted iteration restarts with a fresh scatter of the
    /// recovered `p(j)`, which re-establishes every lost redundant copy
    /// before the next failure boundary can observe the gap (the paper's
    /// "skip steps that have already been performed" remark).
    pub exact_block_precond: bool,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            inner_rel_tol: 1e-14,
            inner_max_iter: 20_000,
            exact_block_precond: true,
        }
    }
}

/// What the cluster does with the subdomains of failed nodes.
///
/// The paper assumes ULFM hands every failed rank a replacement node
/// (Sec. 1.1.1, Sec. 6) — but replacement capacity is exactly what a real
/// machine may lack after multiple node failures (Pachajoa et al.,
/// arXiv:2007.04066). The policy decides:
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RecoveryPolicy {
    /// The paper's model: every failed rank gets a replacement node that
    /// rebuilds the lost subdomain in place. Cluster size never changes.
    #[default]
    Replace,
    /// A finite pool of `k` hot spares managed by the cluster
    /// ([`parcomm::cluster::SparePool`]). Each failed rank consumes one
    /// spare and is replaced in place; once the pool runs dry, the
    /// uncovered failed subdomains are *adopted* by surviving nodes and
    /// the cluster continues shrunken (the [`RecoveryPolicy::Shrink`]
    /// fallback).
    Spares(usize),
    /// No replacement capacity at all: surviving nodes adopt the failed
    /// subdomains (reconstructing them from the retained `p(j)/p(j−1)`
    /// copies) and the solve continues on `N − ψ` ranks with a non-uniform
    /// block partition, a shrunken communicator, and re-derived redundancy
    /// targets for the surviving ring.
    Shrink,
}

/// Periodic checkpoint parameters for [`Protection::Checkpoint`].
///
/// Diskless neighbour checkpointing (paper Sec. 1.2's comparator class):
/// every `interval` iterations each node packs its dynamic solver state
/// and deposits `copies` replicas on ring partners picked by the same
/// Eqn. (5) alternating-ring placement ESR uses for redundant copies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CrConfig {
    /// Checkpoint every `interval` outer iterations (`interval ≥ 1`;
    /// iteration 0 is always checkpointed).
    pub interval: usize,
    /// Replicas per checkpoint, placed on the Eqn. (5) ring
    /// (`1 ≤ copies ≤ N − 1`). Recovery from `ψ` failures needs at least
    /// one replica of every failed block on a survivor.
    pub copies: usize,
}

impl Default for CrConfig {
    fn default() -> Self {
        CrConfig {
            interval: 10,
            copies: 1,
        }
    }
}

impl CrConfig {
    /// Same configuration with a different checkpoint interval.
    #[must_use]
    pub fn with_interval(mut self, interval: usize) -> Self {
        self.interval = interval;
        self
    }

    /// Same configuration with a different replica count.
    #[must_use]
    pub fn with_copies(mut self, copies: usize) -> Self {
        self.copies = copies;
        self
    }
}

/// Which state-protection flavor guards the dynamic solver state — the
/// axis the paper's headline comparison (Sec. 1.2/2.2) varies while
/// holding solver, failure script, and recovery policy fixed.
#[derive(Clone, Debug, PartialEq)]
pub enum Protection {
    /// Exact state reconstruction: `φ` redundant copies of the two most
    /// recent search directions ride the SpMV traffic, and recovery
    /// rebuilds the lost state algebraically. No rollback — surviving
    /// nodes keep their iterates.
    Esr,
    /// Periodic diskless neighbour checkpointing: recovery fetches the
    /// newest surviving replica of every failed block and rolls *all*
    /// ranks back to the checkpointed iteration.
    Checkpoint(CrConfig),
}

/// Resilience configuration: how many simultaneous failures to tolerate.
#[derive(Clone, Debug)]
pub struct ResilienceConfig {
    /// `φ`: number of redundant copies ≡ maximum simultaneous (or
    /// overlapping) node failures tolerated. Must satisfy `φ < N`.
    /// (Only meaningful under [`Protection::Esr`]; the checkpointing
    /// flavor sizes its survivability by [`CrConfig::copies`] instead.)
    pub phi: usize,
    /// Placement strategy for the copies.
    pub strategy: BackupStrategy,
    /// Reconstruction parameters.
    pub recovery: RecoveryConfig,
    /// What happens to a failed node's subdomain (replacement node,
    /// finite spare pool, or adoption by survivors).
    pub policy: RecoveryPolicy,
    /// How the dynamic state is protected: ESR reconstruction (the
    /// paper's method) or periodic checkpoint/rollback.
    pub protection: Protection,
}

impl ResilienceConfig {
    /// The paper's configuration for a given `φ` (in-place replacement,
    /// ESR protection).
    pub fn paper(phi: usize) -> Self {
        ResilienceConfig {
            phi,
            strategy: BackupStrategy::Minimal,
            recovery: RecoveryConfig::default(),
            policy: RecoveryPolicy::Replace,
            protection: Protection::Esr,
        }
    }

    /// Same, with an explicit recovery policy.
    pub fn with_policy(mut self, policy: RecoveryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Same, with an explicit state-protection flavor.
    #[must_use]
    pub fn with_protection(mut self, protection: Protection) -> Self {
        self.protection = protection;
        self
    }

    /// The checkpoint parameters, when checkpointing is the protection.
    pub fn cr(&self) -> Option<&CrConfig> {
        match &self.protection {
            Protection::Esr => None,
            Protection::Checkpoint(cr) => Some(cr),
        }
    }

    /// True when the protection flavor is exact state reconstruction.
    pub fn is_esr(&self) -> bool {
        self.protection == Protection::Esr
    }
}

/// The distributed solvers the driver can run — named so configuration
/// errors can state exactly which solver rejected which combination.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SolverKind {
    /// Blocking PCG ([`crate::driver::run_pcg`]).
    Pcg,
    /// Communication-hiding pipelined PCG ([`crate::driver::run_pipecg`]).
    PipeCg,
    /// Preconditioned BiCGSTAB ([`crate::driver::run_bicgstab`]).
    BiCgStab,
    /// The stationary Jacobi iteration ([`crate::driver::run_jacobi`]).
    Jacobi,
    /// The checkpoint/restart baseline
    /// ([`crate::driver::run_checkpoint_restart`]).
    CheckpointRestart,
}

impl SolverKind {
    /// Human-readable solver name for error messages.
    pub fn name(self) -> &'static str {
        match self {
            SolverKind::Pcg => "blocking PCG",
            SolverKind::PipeCg => "pipelined PCG",
            SolverKind::BiCgStab => "BiCGSTAB",
            SolverKind::Jacobi => "the Jacobi iteration",
            SolverKind::CheckpointRestart => "checkpoint/restart",
        }
    }
}

/// A solver × policy × preconditioner combination the suite cannot run,
/// with the violated constraint named. Returned by
/// [`SolverConfig::validate`] (and therefore by every `run_*` entry point)
/// instead of panicking deep inside a node program.
#[derive(Clone, Debug, PartialEq)]
pub enum ConfigError {
    /// The recovery policy is not implemented for this solver.
    PolicyUnsupported {
        /// The rejecting solver.
        solver: SolverKind,
        /// The requested policy.
        policy: RecoveryPolicy,
        /// The constraint that rules the combination out.
        constraint: &'static str,
    },
    /// The preconditioner conflicts with the solver or the policy.
    PrecondUnsupported {
        /// The rejecting solver.
        solver: SolverKind,
        /// Debug rendering of the requested preconditioner.
        precond: String,
        /// The constraint that rules the combination out.
        constraint: &'static str,
    },
    /// `φ` does not leave a survivor: `φ < N` must hold.
    PhiTooLarge {
        /// Requested redundancy.
        phi: usize,
        /// Cluster size.
        nodes: usize,
    },
    /// The checkpoint parameters are out of range for this cluster, or
    /// checkpoint protection is unsupported here.
    CrInvalid {
        /// Requested checkpoint interval.
        interval: usize,
        /// Requested replicas per checkpoint.
        copies: usize,
        /// Cluster size.
        nodes: usize,
        /// The constraint that rules the combination out.
        constraint: &'static str,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::PolicyUnsupported {
                solver,
                policy,
                constraint,
            } => write!(
                f,
                "RecoveryPolicy::{policy:?} is not supported by {}: {constraint}",
                solver.name()
            ),
            ConfigError::PrecondUnsupported {
                solver,
                precond,
                constraint,
            } => write!(
                f,
                "PrecondConfig::{precond} is not supported by {}: {constraint}",
                solver.name()
            ),
            ConfigError::PhiTooLarge { phi, nodes } => write!(
                f,
                "phi = {phi} redundant copies on a cluster of {nodes} nodes: \
                 φ ≤ N−1 must leave at least one survivor holding copies"
            ),
            ConfigError::CrInvalid {
                interval,
                copies,
                nodes,
                constraint,
            } => write!(
                f,
                "CrConfig {{ interval: {interval}, copies: {copies} }} on a cluster \
                 of {nodes} nodes: {constraint}"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Full solver configuration.
#[derive(Clone, Debug)]
pub struct SolverConfig {
    /// Relative residual tolerance; the paper terminates "once the
    /// relative residual norm has been reduced by a factor of 10⁸".
    pub rel_tol: f64,
    /// Outer iteration cap.
    pub max_iter: usize,
    /// Preconditioner (also fixes the reconstruction variant).
    pub precond: PrecondConfig,
    /// `None` = plain non-resilient PCG (the paper's reference runs).
    pub resilience: Option<ResilienceConfig>,
}

impl SolverConfig {
    /// The paper's reference configuration: non-resilient PCG with exact
    /// block Jacobi, tolerance 1e-8.
    pub fn reference() -> Self {
        SolverConfig {
            rel_tol: 1e-8,
            max_iter: 100_000,
            precond: PrecondConfig::BlockJacobiExact,
            resilience: None,
        }
    }

    /// The paper's resilient configuration with `φ` redundant copies.
    pub fn resilient(phi: usize) -> Self {
        SolverConfig {
            resilience: Some(ResilienceConfig::paper(phi)),
            ..SolverConfig::reference()
        }
    }

    /// Resilient configuration with an explicit recovery policy.
    pub fn resilient_with_policy(phi: usize, policy: RecoveryPolicy) -> Self {
        SolverConfig {
            resilience: Some(ResilienceConfig::paper(phi).with_policy(policy)),
            ..SolverConfig::reference()
        }
    }

    /// Check this configuration against a solver and cluster size, naming
    /// the violated constraint on rejection. The full recovery-policy ×
    /// solver matrix {Replace, Spares, Shrink} × {PCG, PipeCG, BiCGSTAB}
    /// runs through the shared [`crate::engine::RecoveryEngine`] under
    /// either state-protection flavor; what remains unsupported:
    ///
    /// * the stationary Jacobi solver assumes the full cluster outlives
    ///   the solve (Replace only) and has no checkpoint pack;
    /// * [`Protection::Checkpoint`] needs `interval ≥ 1` and
    ///   `1 ≤ copies ≤ N − 1` (a replica on every node is the ceiling);
    /// * `ExplicitP` reconstruction (P-given, Alg. 2 lines 5–6) gathers
    ///   over the full cluster, which a shrunken cluster no longer has —
    ///   Replace only, and blocking PCG only (the pipelined solver would
    ///   serialize `P`'s ghost exchange against its overlapped reduction;
    ///   BiCGSTAB's reconstruction identities assume block-diagonal `M`);
    /// * `φ ≥ N` leaves no survivor to hold copies.
    pub fn validate(&self, solver: SolverKind, nodes: usize) -> Result<(), ConfigError> {
        // Solver-inherent preconditioner constraints hold with or without
        // resilience configured.
        if matches!(self.precond, PrecondConfig::ExplicitP(_)) {
            if solver == SolverKind::PipeCg {
                return Err(ConfigError::PrecondUnsupported {
                    solver,
                    precond: format!("{:?}", self.precond),
                    constraint: "pipelined PCG requires a block-diagonal (M-given) \
                                 preconditioner (None, Jacobi, or BlockJacobiExact): \
                                 P's own ghost exchange would serialize against the \
                                 overlapped reduction",
                });
            }
            if solver == SolverKind::BiCgStab {
                return Err(ConfigError::PrecondUnsupported {
                    solver,
                    precond: format!("{:?}", self.precond),
                    constraint: "ESR-BiCGSTAB's reconstruction identities (p = M p̂, \
                                 s = M ŝ) require a block-diagonal (M-given) \
                                 preconditioner",
                });
            }
        }
        let Some(res) = &self.resilience else {
            return Ok(()); // non-resilient runs have no policy to reject
        };
        if res.phi >= nodes {
            return Err(ConfigError::PhiTooLarge {
                phi: res.phi,
                nodes,
            });
        }
        let policy = res.policy;
        let engine_backed = matches!(
            solver,
            SolverKind::Pcg
                | SolverKind::PipeCg
                | SolverKind::BiCgStab
                | SolverKind::CheckpointRestart
        );
        if policy != RecoveryPolicy::Replace && !engine_backed {
            return Err(ConfigError::PolicyUnsupported {
                solver,
                policy,
                constraint: "this solver assumes the full cluster outlives the solve; \
                             only the RecoveryEngine-backed solvers (PCG, pipelined PCG, \
                             BiCGSTAB, checkpoint/restart) support spare pools and \
                             shrinking",
            });
        }
        if let Protection::Checkpoint(cr) = &res.protection {
            if !engine_backed {
                return Err(ConfigError::CrInvalid {
                    interval: cr.interval,
                    copies: cr.copies,
                    nodes,
                    constraint: "the stationary Jacobi iteration has no checkpoint \
                                 pack; checkpoint protection runs on the \
                                 RecoveryEngine-backed solvers only",
                });
            }
            if cr.interval == 0 {
                return Err(ConfigError::CrInvalid {
                    interval: cr.interval,
                    copies: cr.copies,
                    nodes,
                    constraint: "interval ≥ 1 is required (interval = 0 would \
                                 checkpoint every message boundary, i.e. never \
                                 advance)",
                });
            }
            if cr.copies == 0 {
                return Err(ConfigError::CrInvalid {
                    interval: cr.interval,
                    copies: cr.copies,
                    nodes,
                    constraint: "copies ≥ 1 is required: with no replicas every \
                                 failure is unrecoverable",
                });
            }
            if cr.copies >= nodes {
                return Err(ConfigError::CrInvalid {
                    interval: cr.interval,
                    copies: cr.copies,
                    nodes,
                    constraint: "copies ≤ N − 1 must hold: a node deposits replicas \
                                 on *other* ring members, of which there are only \
                                 N − 1",
                });
            }
            if matches!(self.precond, PrecondConfig::ExplicitP(_)) {
                return Err(ConfigError::PrecondUnsupported {
                    solver,
                    precond: format!("{:?}", self.precond),
                    constraint: "the checkpoint/rollback path wires the paper's \
                                 M-given (block-diagonal) preconditioners only",
                });
            }
        }
        if matches!(self.precond, PrecondConfig::ExplicitP(_)) && policy != RecoveryPolicy::Replace
        {
            return Err(ConfigError::PrecondUnsupported {
                solver,
                precond: format!("{:?}", self.precond),
                constraint: "the P-given reconstruction gathers over the full \
                             cluster, which a shrunken cluster no longer has; \
                             use RecoveryPolicy::Replace with ExplicitP",
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper() {
        let r = SolverConfig::reference();
        assert_eq!(r.rel_tol, 1e-8);
        assert!(r.resilience.is_none());
        let s = SolverConfig::resilient(3);
        let res = s.resilience.unwrap();
        assert_eq!(res.phi, 3);
        assert_eq!(res.strategy, BackupStrategy::Minimal);
        assert_eq!(res.recovery.inner_rel_tol, 1e-14);
        assert!(res.recovery.exact_block_precond);
        // The paper's model is in-place replacement; the default must stay
        // Replace so existing pinned trajectories are untouched.
        assert_eq!(res.policy, RecoveryPolicy::Replace);
    }

    #[test]
    fn policy_presets() {
        let s = SolverConfig::resilient_with_policy(2, RecoveryPolicy::Spares(3));
        assert_eq!(s.resilience.unwrap().policy, RecoveryPolicy::Spares(3));
        let s = SolverConfig::resilient_with_policy(2, RecoveryPolicy::Shrink);
        assert_eq!(s.resilience.unwrap().policy, RecoveryPolicy::Shrink);
        assert_eq!(RecoveryPolicy::default(), RecoveryPolicy::Replace);
    }

    #[test]
    fn debug_impls_render() {
        let cfg = SolverConfig::resilient(1);
        let s = format!("{cfg:?}");
        assert!(s.contains("BlockJacobiExact"));
    }

    #[test]
    fn protection_defaults_to_esr() {
        let res = SolverConfig::resilient(2).resilience.unwrap();
        assert_eq!(res.protection, Protection::Esr);
        assert!(res.is_esr());
        assert!(res.cr().is_none());
    }

    fn cr_cfg(cr: CrConfig) -> SolverConfig {
        let mut cfg = SolverConfig::resilient(1);
        cfg.resilience =
            Some(ResilienceConfig::paper(1).with_protection(Protection::Checkpoint(cr)));
        cfg
    }

    #[test]
    fn cr_bounds_are_typed_errors() {
        let zero_interval = cr_cfg(CrConfig::default().with_interval(0));
        assert!(matches!(
            zero_interval.validate(SolverKind::Pcg, 4),
            Err(ConfigError::CrInvalid { interval: 0, .. })
        ));
        let zero_copies = cr_cfg(CrConfig::default().with_copies(0));
        assert!(matches!(
            zero_copies.validate(SolverKind::Pcg, 4),
            Err(ConfigError::CrInvalid { copies: 0, .. })
        ));
        // copies ≥ N leaves no legal ring placement.
        let too_many = cr_cfg(CrConfig::default().with_copies(4));
        assert!(matches!(
            too_many.validate(SolverKind::Pcg, 4),
            Err(ConfigError::CrInvalid { copies: 4, .. })
        ));
        // N − 1 replicas (a copy on every other node) is the legal ceiling.
        let ceiling = cr_cfg(CrConfig::default().with_copies(3));
        assert!(ceiling.validate(SolverKind::Pcg, 4).is_ok());
    }

    #[test]
    fn cr_rejects_jacobi_and_explicit_p() {
        let cfg = cr_cfg(CrConfig::default());
        assert!(matches!(
            cfg.validate(SolverKind::Jacobi, 4),
            Err(ConfigError::CrInvalid { .. })
        ));
        let mut cfg = cr_cfg(CrConfig::default());
        cfg.precond = PrecondConfig::ExplicitP(Arc::new(Csr::identity(8)));
        assert!(matches!(
            cfg.validate(SolverKind::Pcg, 4),
            Err(ConfigError::PrecondUnsupported { .. })
        ));
    }

    #[test]
    fn cr_supports_every_engine_policy() {
        for policy in [
            RecoveryPolicy::Replace,
            RecoveryPolicy::Spares(2),
            RecoveryPolicy::Shrink,
        ] {
            let mut cfg = cr_cfg(CrConfig::default().with_copies(2));
            cfg.resilience = Some(cfg.resilience.unwrap().with_policy(policy));
            for solver in [SolverKind::Pcg, SolverKind::PipeCg, SolverKind::BiCgStab] {
                assert!(cfg.validate(solver, 5).is_ok(), "{solver:?} × {policy:?}");
            }
        }
    }

    #[test]
    fn cr_error_display_names_the_constraint() {
        let err = cr_cfg(CrConfig::default().with_interval(0))
            .validate(SolverKind::Pcg, 4)
            .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("interval: 0"), "{msg}");
        assert!(msg.contains("interval ≥ 1"), "{msg}");
    }
}
