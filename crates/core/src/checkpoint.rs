//! Checkpoint/rollback as an engine protection flavor.
//!
//! The class of techniques the paper positions ESR against (Sec. 1.2):
//! *"The currently in practice most commonly used class of fault-tolerance
//! techniques to cope with node failures is checkpoint/restart … These
//! techniques frequently save the current state of a running application
//! and roll back to the latest saved state"*, with the key drawback that
//! they *"impose a usually considerable runtime overhead due to
//! continuously saving the state of the solver"* (Sec. 2.2).
//!
//! The suite implements the strongest practical variant for a fair
//! comparison: **diskless neighbour checkpointing**, selected per run via
//! [`Protection::Checkpoint`](crate::config::Protection). Every
//! [`CrConfig::interval`] iterations each node packs its dynamic solver
//! state ([`ResilientKernel::pack`]) and deposits [`CrConfig::copies`]
//! replicas on ring partners — the same Eqn. (5) alternating-ring
//! placement ESR uses for redundant copies, so the two flavors are equally
//! failure-decorrelated (the deposit store lives in
//! [`crate::retention::CheckpointStore`], next to ESR's [`Retention`]
//! (crate::retention::Retention) channels). On a failure,
//! [`recover_rollback`] fetches the newest surviving replica of every
//! failed block and **all** ranks roll back to the checkpointed epoch,
//! re-executing the lost iterations.
//!
//! Rollback is a *peer* of the four-substep ESR restart protocol inside
//! the [`RecoveryEngine`](crate::engine::RecoveryEngine): it runs the same
//! attempt loop with per-attempt tag windows, the same overlap substep
//! boundaries (a failure *during* rollback aborts the attempt and restarts
//! with the enlarged failed set — which the old standalone C/R baseline
//! never handled), and the same policy grant/retire/adoption math, so the
//! full {Replace, Spares(k), Shrink} × {PCG, PipeCG, BiCGSTAB} grid works
//! under either protection flavor.
//!
//! Contrast with ESR (same solver, same cluster, same failures):
//!
//! * C/R pays `n_pack_vecs·(n/N)·copies` extra elements every `interval`
//!   iterations whether or not anything fails; ESR pays only the elements
//!   that do not already travel in SpMV (often zero — paper Sec. 5);
//! * after a failure, C/R repeats up to `interval` iterations of work on
//!   the *whole cluster*; ESR reconstructs locally and repeats one SpMV.

use std::collections::HashSet;
use std::ops::Range;

use parcomm::comm::ReduceOp;
use parcomm::{CommPhase, NodeCtx, Payload, SparePool};
use sparsemat::BlockPartition;

pub use crate::config::CrConfig;
use crate::config::RecoveryPolicy;
use crate::engine::{
    poll_overlap, rebuild_layout_after_shrink, tag, EngineEnv, EngineOutcome, Layout,
    RecoveryReport, RecoveryTimeline, ResilientKernel,
};
use crate::retention::{Checkpoint, CheckpointStore};

/// Tag offset of the rollback replica push inside an attempt's window.
const OFF_FETCH: u32 = 1;

/// One fetched replica at its reconstructor.
struct Fetched {
    /// Global rows of the failed rank's old owned block.
    range: Range<usize>,
    /// The packed state of that block at the rollback epoch.
    data: Vec<f64>,
}

/// The checkpoint-rollback restart path — the engine's second protection
/// flavor, dispatched from [`crate::engine::recover`]. All *active*
/// members call this together at a failure boundary with the same failed
/// set.
///
/// Per attempt: grant/retire under the recovery policy, poison the failed
/// ranks' state and deposit store, push each failed block's newest
/// surviving replica to its reconstructor (substeps 0–1), agree on the
/// rollback epoch over the post-event members (substep 2), then commit
/// (substep 3): everyone restores the epoch's pack — survivors from their
/// own copy, replacements from the fetched data, adopters from their own
/// copy merged with the adopted blocks' replicas — and the node program
/// rewinds its iteration counter to [`RecoveryReport::rollback_to`].
/// Any overlapping failure at a substep boundary aborts the attempt and
/// restarts with the enlarged failed set.
#[allow(clippy::too_many_arguments)]
pub(crate) fn recover_rollback(
    ctx: &mut NodeCtx,
    env: &EngineEnv<'_>,
    layout: &mut Layout,
    kernel: &mut dyn ResilientKernel,
    store: &mut CheckpointStore,
    initial_failed: &[usize],
    handled: &mut HashSet<(u64, u32)>,
    recovery_seq: &mut u32,
    pool: &mut SparePool,
) -> EngineOutcome {
    let me = ctx.rank();
    ctx.trace_open("rollback", env.iteration);
    let mut timeline = RecoveryTimeline::new(env.iteration, "cr");
    let mut failed = initial_failed.to_vec();
    failed.sort_unstable();
    failed.dedup();
    // The replacement budget at event start — same monotone-retirement
    // snapshot as the ESR flavor (see `engine::recover`).
    let avail = match env.res.policy {
        RecoveryPolicy::Replace => usize::MAX,
        RecoveryPolicy::Spares(_) => pool.remaining(),
        RecoveryPolicy::Shrink => 0,
    };
    let mut attempts = 0usize;

    'attempt: loop {
        attempts += 1;
        let seq = *recovery_seq;
        *recovery_seq += 1;
        ctx.audit_enter_window(seq);
        ctx.trace_open("attempt", seq as u64);
        let mut seg_t = ctx.vtime();
        ctx.trace_open("setup", 0);
        assert!(
            failed.len() < layout.members.len(),
            "all {} active nodes failed — nothing left to roll back to",
            layout.members.len()
        );

        // ---- grant replacements to the lowest-ranked failed nodes ------
        let granted = avail.min(failed.len());
        let replaced: Vec<usize> = failed[..granted].to_vec();
        let retired: Vec<usize> = failed[granted..].to_vec();
        ctx.trace_instant("grant", granted as u64);
        if retired.binary_search(&me).is_ok() {
            ctx.trace_close(); // setup
            ctx.trace_close(); // attempt
            ctx.trace_close(); // rollback
            ctx.audit_exit_window();
            return EngineOutcome::Retired;
        }
        let am_failed = failed.binary_search(&me).is_ok();

        let old_slot = |r: usize| {
            layout
                .members
                .binary_search(&r)
                .expect("failed rank is an active member")
        };
        let new_members: Vec<usize> = layout
            .members
            .iter()
            .copied()
            .filter(|r| retired.binary_search(r).is_err())
            .collect();
        let mut new_starts = Vec::with_capacity(new_members.len() + 1);
        new_starts.push(0);
        for m in new_members.iter().skip(1) {
            new_starts.push(layout.part.range(old_slot(*m)).start);
        }
        new_starts.push(layout.part.n());
        let new_part = BlockPartition::from_starts(new_starts);
        let reconstructor = |f: usize| -> usize {
            if replaced.binary_search(&f).is_ok() {
                f // in-place replacement rolls back its own block
            } else {
                let start = layout.part.range(old_slot(f)).start;
                new_members[new_part.owner_of(start)] // adopter
            }
        };
        let my_range = layout.lm.range.clone();

        if am_failed {
            // The node failure: all dynamic data *and* all checkpoint data
            // of this rank is lost.
            kernel.poison();
            store.poison();
            for ch in &mut layout.channels {
                ch.poison();
            }
        }

        // ---- substep 0: before any recovery communication --------------
        ctx.trace_close();
        timeline.mark(ctx, &mut seg_t, attempts, "setup");
        if poll_overlap(ctx, env.iteration, 0, handled, &mut failed, &layout.members) {
            ctx.trace_instant("overlap_restart", failed.len() as u64);
            ctx.trace_close(); // attempt
            continue 'attempt;
        }
        ctx.trace_open("fetch", 0);

        // ---- replica fetch ----------------------------------------------
        // Push each failed block's newest surviving replica to its
        // reconstructor. Deterministic on every node: the serving holder
        // is the first *surviving* holder on the block's ring; FIFO
        // (src, tag) order over the sorted failed set disambiguates
        // multiple blocks pushed to one adopter. A reconstructor that is
        // itself a surviving holder reads its replica locally.
        let server_of = |f: usize, failed: &[usize]| -> usize {
            let holders = store.holders_of(&layout.members, f);
            holders
                .iter()
                .copied()
                .find(|h| failed.binary_search(h).is_err())
                .unwrap_or_else(|| {
                    panic!(
                        "rank {me}: unrecoverable — all {} checkpoint holders of \
                         rank {f} failed too",
                        holders.len()
                    )
                })
        };
        for &f in &failed {
            let rho = reconstructor(f);
            let server = server_of(f, &failed);
            if me == server && server != rho {
                let ck = store
                    .replica_of(f)
                    .unwrap_or_else(|| panic!("rank {me}: no held replica of rank {f}"));
                ctx.send(
                    rho,
                    tag(seq, OFF_FETCH),
                    Payload::f64s_shared(ck.data.clone()),
                    CommPhase::Recovery,
                );
            }
        }
        let mut blocks: Vec<Fetched> = Vec::new();
        for &f in &failed {
            if reconstructor(f) != me {
                continue;
            }
            let server = server_of(f, &failed);
            let data = if server == me {
                store
                    .replica_of(f)
                    .expect("surviving holder keeps the replica")
                    .data
                    .as_ref()
                    .clone()
            } else {
                ctx.recv_phase(server, tag(seq, OFF_FETCH), CommPhase::Recovery)
                    .into_f64s()
            };
            assert!(
                !data.is_empty(),
                "rank {me}: holder {server} had no checkpoint of rank {f}'s block"
            );
            blocks.push(Fetched {
                range: layout.part.range(old_slot(f)),
                data,
            });
        }

        // ---- substep 1: after the replica fetch -------------------------
        ctx.trace_close();
        timeline.mark(ctx, &mut seg_t, attempts, "fetch");
        if poll_overlap(ctx, env.iteration, 1, handled, &mut failed, &layout.members) {
            ctx.trace_instant("overlap_restart", failed.len() as u64);
            ctx.trace_close(); // attempt
            continue 'attempt;
        }
        ctx.trace_open("epoch", 0);

        // ---- epoch agreement over the post-event members ----------------
        // Survivors propose their own newest checkpoint's iteration;
        // replaced ranks (whose store is poisoned) propose +∞. Deposits
        // happen at the same SPMD boundaries, so the min is a guard more
        // than an arbiter — and the fetched replicas carry the same epoch
        // (deposit rounds and failure boundaries never interleave).
        let mut g = ctx.group(&new_members);
        let epoch = g.allreduce_vec_phase(
            ctx,
            ReduceOp::Min,
            vec![if am_failed {
                f64::INFINITY
            } else {
                store.own.iteration as f64
            }],
            CommPhase::Recovery,
        )[0] as u64;
        drop(g);

        // ---- substep 2: after epoch agreement ---------------------------
        ctx.trace_close();
        timeline.mark(ctx, &mut seg_t, attempts, "epoch");
        if poll_overlap(ctx, env.iteration, 2, handled, &mut failed, &layout.members) {
            ctx.trace_instant("overlap_restart", failed.len() as u64);
            ctx.trace_close(); // attempt
            continue 'attempt;
        }
        ctx.trace_open("idle", 0);
        // ---- substep 3: last boundary before the state is committed -----
        ctx.trace_close();
        timeline.mark(ctx, &mut seg_t, attempts, "idle");
        if poll_overlap(ctx, env.iteration, 3, handled, &mut failed, &layout.members) {
            ctx.trace_instant("overlap_restart", failed.len() as u64);
            ctx.trace_close(); // attempt
            continue 'attempt;
        }
        ctx.trace_open("commit", 0);

        // ---- success: commit the spare claim, install the rollback ------
        if matches!(env.res.policy, RecoveryPolicy::Spares(_)) {
            pool.claim(granted);
        }
        let mut report = RecoveryReport {
            total_failed: failed.len(),
            retired_ranks: retired.len(),
            attempts,
            inner_iterations: 0,
            rollback_to: Some(epoch),
            timeline: RecoveryTimeline::default(),
        };

        if retired.is_empty() {
            // Every failed rank got a replacement: the layout is unchanged
            // and every rank rolls back exactly its own block.
            if am_failed {
                debug_assert!(blocks.len() == 1 && blocks[0].range == my_range);
                kernel.unpack(&blocks[0].data, &my_range, env.b);
                store.own = Checkpoint {
                    iteration: epoch,
                    data: std::sync::Arc::new(std::mem::take(&mut blocks[0].data)),
                };
            } else {
                debug_assert_eq!(store.own.iteration, epoch);
                kernel.unpack(&store.own.data, &my_range, env.b);
            }
            ctx.trace_close(); // commit
            timeline.mark(ctx, &mut seg_t, attempts, "commit");
            ctx.trace_close(); // attempt
            ctx.trace_close(); // rollback
            report.timeline = timeline;
            ctx.audit_exit_window();
            return EngineOutcome::Recovered(report);
        }

        // Shrink: merge this node's own pack with the adopted blocks'
        // fetched packs over the widened range, then rebuild the layout on
        // the survivors (without ESR redundancy extras — checkpoint
        // protection deposits replicas instead) and re-seed the deposit
        // ring for the new member list.
        let my_new_slot = new_members
            .binary_search(&me)
            .expect("active non-retired rank is a new member");
        let new_range = new_part.range(my_new_slot);
        let nv = kernel.n_pack_vecs();
        let ns = kernel.n_pack_scalars();
        let new_nloc = new_range.len();
        let mut merged = vec![f64::NAN; nv * new_nloc + ns];
        {
            let mut put = |range: &Range<usize>, data: &[f64]| {
                let blen = range.len();
                debug_assert_eq!(data.len(), nv * blen + ns);
                let off = range.start - new_range.start;
                for v in 0..nv {
                    merged[v * new_nloc + off..v * new_nloc + off + blen]
                        .copy_from_slice(&data[v * blen..(v + 1) * blen]);
                }
                // The scalar tail is replicated: identical in every pack
                // of the same epoch.
                merged[nv * new_nloc..].copy_from_slice(&data[nv * blen..]);
            };
            if !am_failed {
                debug_assert_eq!(store.own.iteration, epoch);
                put(&my_range, &store.own.data);
            }
            for blk in &blocks {
                put(&blk.range, &blk.data);
            }
        }
        debug_assert!(
            merged[..nv * new_nloc].iter().all(|v| !v.is_nan()),
            "merged rollback pack does not cover the adopted range"
        );
        kernel.unpack(&merged, &new_range, env.b);
        rebuild_layout_after_shrink(
            ctx,
            env,
            layout,
            kernel,
            new_part,
            new_members,
            /* with_redundancy = */ false,
        );
        store.rebuild(&layout.members, layout.my_slot);
        store.own = Checkpoint {
            iteration: epoch,
            data: std::sync::Arc::new(merged),
        };
        ctx.trace_close(); // commit
        timeline.mark(ctx, &mut seg_t, attempts, "commit");
        ctx.trace_close(); // attempt
        ctx.trace_close(); // rollback
        report.timeline = timeline;
        ctx.audit_exit_window();
        return EngineOutcome::Recovered(report);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{RecoveryPolicy, SolverConfig};
    use crate::driver::{run_checkpoint_restart, ExperimentResult, Problem};
    use parcomm::{CostModel, FailureScript};
    use sparsemat::gen::poisson2d;

    fn run_cr(
        problem: &Problem,
        nodes: usize,
        cfg: &SolverConfig,
        cr: &CrConfig,
        script: FailureScript,
    ) -> ExperimentResult {
        run_checkpoint_restart(problem, nodes, cfg, cr, CostModel::default(), script)
            .expect("valid C/R configuration")
    }

    fn max_err(res: &ExperimentResult) -> f64 {
        res.x.iter().map(|xi| (xi - 1.0).abs()).fold(0.0, f64::max)
    }

    #[test]
    fn failure_free_matches_plain_pcg() {
        let a = poisson2d(12, 12);
        let problem = Problem::with_ones_solution(a);
        let res = run_cr(
            &problem,
            4,
            &SolverConfig::resilient(1),
            &CrConfig::default(),
            FailureScript::none(),
        );
        assert!(res.converged);
        assert!(max_err(&res) < 1e-6);
        // Steady-state checkpointing cost shows in the stats, on the same
        // phase ESR's redundant copies use.
        let ck = res.stats.elems(parcomm::CommPhase::Redundancy);
        assert!(ck > 0, "checkpoints must be recorded as redundancy traffic");
    }

    #[test]
    fn recovers_from_single_failure_by_rollback() {
        let a = poisson2d(14, 14);
        let problem = Problem::with_ones_solution(a);
        let script = FailureScript::simultaneous(13, 2, 1, 4);
        let cr = CrConfig::default().with_interval(5).with_copies(1);
        let res = run_cr(&problem, 4, &SolverConfig::resilient(1), &cr, script);
        assert!(res.converged);
        assert_eq!(res.recoveries, 1);
        assert!(max_err(&res) < 1e-6, "err {}", max_err(&res));
        // Rollback repeats work: the iteration counter rewinds, so the
        // repeated iterations show up as extra virtual time, not extra
        // counted iterations.
        let clean = run_cr(
            &problem,
            4,
            &SolverConfig::resilient(1),
            &cr,
            FailureScript::none(),
        );
        assert_eq!(res.iterations, clean.iterations);
        assert!(res.vtime > clean.vtime);
    }

    #[test]
    fn recovers_from_two_failures_with_two_copies() {
        let a = poisson2d(14, 14);
        let problem = Problem::with_ones_solution(a);
        let script = FailureScript::simultaneous(8, 1, 2, 6);
        let cr = CrConfig::default().with_interval(4).with_copies(2);
        let res = run_cr(&problem, 6, &SolverConfig::resilient(2), &cr, script);
        assert!(res.converged);
        assert_eq!(res.ranks_recovered, 2);
        assert!(max_err(&res) < 1e-6);
    }

    #[test]
    fn holder_loss_is_unrecoverable() {
        // Rank 1 fails together with its only checkpoint holder (d_11 = 2).
        let a = poisson2d(10, 10);
        let problem = Problem::with_ones_solution(a);
        let script = FailureScript::simultaneous(6, 1, 2, 5); // ranks 1 and 2
        let cr = CrConfig::default().with_interval(3).with_copies(1);
        let result = std::panic::catch_unwind(|| {
            run_cr(&problem, 5, &SolverConfig::resilient(1), &cr, script)
        });
        assert!(result.is_err());
    }

    #[test]
    fn rollback_at_iteration_zero() {
        // The epoch-0 deposit lands before the first failure boundary, so
        // a failure in iteration 0 rolls back to the initial state instead
        // of dying with an empty store.
        let a = poisson2d(12, 12);
        let problem = Problem::with_ones_solution(a);
        let cr = CrConfig::default().with_interval(5).with_copies(1);
        let res = run_cr(
            &problem,
            4,
            &SolverConfig::resilient(1),
            &cr,
            FailureScript::simultaneous(0, 2, 1, 4),
        );
        assert!(res.converged);
        assert_eq!(res.recoveries, 1);
        assert!(max_err(&res) < 1e-6);
    }

    #[test]
    fn interval_longer_than_solve_rolls_back_to_start() {
        // interval ≫ total iterations: the epoch-0 checkpoint is the only
        // one ever taken, and a late failure replays the whole solve.
        let a = poisson2d(12, 12);
        let problem = Problem::with_ones_solution(a);
        let cr = CrConfig::default().with_interval(10_000).with_copies(1);
        let clean = run_cr(
            &problem,
            4,
            &SolverConfig::resilient(1),
            &cr,
            FailureScript::none(),
        );
        let res = run_cr(
            &problem,
            4,
            &SolverConfig::resilient(1),
            &cr,
            FailureScript::simultaneous(9, 1, 1, 4),
        );
        assert!(res.converged);
        assert_eq!(res.recoveries, 1);
        assert_eq!(res.iterations, clean.iterations);
        assert!(max_err(&res) < 1e-6);
        // Rolled all the way back: at least 9 repeated iterations of vtime.
        assert!(res.vtime > 1.5 * clean.vtime);
    }

    #[test]
    fn single_survivor_shrink_rollback() {
        // Four of five ranks fail at once under Shrink; with copies = 4
        // the lone survivor holds a replica of every failed block and
        // adopts the whole domain.
        let a = poisson2d(12, 12);
        let problem = Problem::with_ones_solution(a);
        let cr = CrConfig::default().with_interval(4).with_copies(4);
        let cfg = SolverConfig::resilient_with_policy(4, RecoveryPolicy::Shrink);
        let res = run_cr(
            &problem,
            5,
            &cfg,
            &cr,
            FailureScript::simultaneous(6, 1, 4, 5),
        );
        assert!(res.converged);
        assert_eq!(res.retired_nodes(), 4);
        assert_eq!(res.x.len(), problem.n());
        assert!(max_err(&res) < 1e-6, "err {}", max_err(&res));
    }

    #[test]
    fn spares_pool_runs_dry_then_shrinks() {
        // Spares(1): the first failure claims the only spare, the second
        // finds the pool empty and retires into a shrink — both on the
        // rollback path.
        let a = poisson2d(14, 14);
        let problem = Problem::with_ones_solution(a);
        let cr = CrConfig::default().with_interval(4).with_copies(2);
        let cfg = SolverConfig::resilient_with_policy(2, RecoveryPolicy::Spares(1));
        let script = FailureScript::at_iterations(6, &[(3, 1), (9, 4)]);
        let res = run_cr(&problem, 6, &cfg, &cr, script);
        assert!(res.converged);
        assert_eq!(res.recoveries, 2);
        assert_eq!(res.retired_nodes(), 1);
        assert!(max_err(&res) < 1e-6, "err {}", max_err(&res));
    }

    #[test]
    fn survives_overlapping_failure_during_rollback() {
        // A second failure arriving at any substep boundary of the rollback
        // aborts the attempt and restarts with the enlarged set — the
        // protocol the old standalone C/R baseline never had.
        use parcomm::{FailAt, FailureEvent};
        let a = poisson2d(14, 14);
        let problem = Problem::with_ones_solution(a);
        let cr = CrConfig::default().with_interval(5).with_copies(2);
        for substep in 0..4 {
            let script = FailureScript::new(vec![
                FailureEvent {
                    when: FailAt::Iteration(6),
                    ranks: vec![2],
                },
                FailureEvent {
                    when: FailAt::RecoverySubstep {
                        after_iteration: 6,
                        substep,
                    },
                    ranks: vec![4],
                },
            ]);
            let res = run_cr(&problem, 7, &SolverConfig::resilient(2), &cr, script);
            assert!(res.converged, "substep={substep}");
            assert_eq!(res.ranks_recovered, 2, "substep={substep}");
            assert!(
                max_err(&res) < 1e-6,
                "substep={substep} err {}",
                max_err(&res)
            );
        }
    }
}
