//! In-memory checkpoint/restart (C/R) baseline.
//!
//! The class of techniques the paper positions ESR against (Sec. 1.2):
//! *"The currently in practice most commonly used class of fault-tolerance
//! techniques to cope with node failures is checkpoint/restart … These
//! techniques frequently save the current state of a running application
//! and roll back to the latest saved state"*, with the key drawback that
//! they *"impose a usually considerable runtime overhead due to
//! continuously saving the state of the solver"* (Sec. 2.2).
//!
//! This module implements the strongest practical variant for a fair
//! comparison: **diskless neighbour checkpointing**. Every `interval`
//! iterations each node replicates its full dynamic state block
//! (`x, r, z, p` + scalars = 4·n/N values) to `copies` partner nodes —
//! the same ring partners as ESR's Eqn. (5), so the placement is equally
//! failure-decorrelated. On a failure, replacements fetch the newest
//! surviving checkpoint of the failed blocks and **all** nodes roll back
//! to it, re-executing the lost iterations.
//!
//! Contrast with ESR (same solver, same cluster, same failures):
//!
//! * C/R pays `4·(n/N)·copies` extra elements every `interval` iterations
//!   whether or not anything fails; ESR pays only the elements that do not
//!   already travel in SpMV (often zero — paper Sec. 5);
//! * after a failure, C/R repeats up to `interval` iterations of work on
//!   the *whole cluster*; ESR reconstructs locally and repeats one SpMV.

use std::collections::HashSet;
use std::sync::Arc;

use parcomm::fault::poison;
use parcomm::{CommPhase, FailAt, NodeCtx, Payload};
use sparsemat::vecops::{axpy, dot, xpay};
use sparsemat::{BlockPartition, Csr};

use crate::config::{PrecondConfig, SolverConfig};
use crate::localmat::LocalMatrix;
use crate::pcg::NodeOutcome;
use crate::precsetup::NodePrecond;
use crate::redundancy::backup_targets;
use crate::scatter::ScatterPlan;

const TAG_CKPT: u32 = (1 << 26) + 1;
const TAG_FETCH_REQ: u32 = (1 << 26) + 2;
const TAG_FETCH_RESP: u32 = (1 << 26) + 3;

/// Checkpoint/restart configuration.
#[derive(Clone, Debug)]
pub struct CrConfig {
    /// Checkpoint every this many iterations (the paper's C/R citations
    /// use application-dependent periods; smaller = less lost work, more
    /// overhead).
    pub interval: usize,
    /// Number of replicas per state block (failure tolerance, like φ).
    pub copies: usize,
}

impl Default for CrConfig {
    fn default() -> Self {
        CrConfig {
            interval: 10,
            copies: 1,
        }
    }
}

/// One saved state: iteration number and the packed block
/// `[x | r | z | p | β, rz]`.
#[derive(Clone, Debug)]
struct Checkpoint {
    iteration: u64,
    data: Vec<f64>,
}

fn pack(x: &[f64], r: &[f64], z: &[f64], p: &[f64], beta_prev: f64, rz: f64) -> Vec<f64> {
    let mut d = Vec::with_capacity(4 * x.len() + 2);
    d.extend_from_slice(x);
    d.extend_from_slice(r);
    d.extend_from_slice(z);
    d.extend_from_slice(p);
    d.push(beta_prev);
    d.push(rz);
    d
}

#[allow(clippy::too_many_arguments)]
fn unpack(
    d: &[f64],
    nloc: usize,
    x: &mut [f64],
    r: &mut [f64],
    z: &mut [f64],
    p: &mut [f64],
    beta_prev: &mut f64,
    rz: &mut f64,
) {
    x.copy_from_slice(&d[0..nloc]);
    r.copy_from_slice(&d[nloc..2 * nloc]);
    z.copy_from_slice(&d[2 * nloc..3 * nloc]);
    p.copy_from_slice(&d[3 * nloc..4 * nloc]);
    *beta_prev = d[4 * nloc];
    *rz = d[4 * nloc + 1];
}

/// The SPMD node program: PCG protected by neighbour checkpointing instead
/// of ESR. `cfg.resilience` is ignored except as an on/off switch; the C/R
/// parameters come from `cr`.
pub fn cr_pcg_node(
    ctx: &mut NodeCtx,
    a: &Arc<Csr>,
    b: &Arc<Vec<f64>>,
    cfg: &SolverConfig,
    cr: &CrConfig,
) -> NodeOutcome {
    assert!(
        !matches!(cfg.precond, PrecondConfig::ExplicitP(_)),
        "the C/R baseline supports the block-diagonal preconditioners"
    );
    assert!(cr.copies >= 1 && cr.copies < ctx.size());
    let n = a.n_rows();
    let rank = ctx.rank();
    let part = BlockPartition::new(n, ctx.size());
    let lm = LocalMatrix::build(a, &part, rank);
    let plan = ScatterPlan::build(ctx, &lm, &part);
    let mut prec = NodePrecond::setup(ctx, &cfg.precond, &part, &lm)
        .unwrap_or_else(|e| panic!("rank {rank}: preconditioner setup failed: {e}"));
    ctx.barrier();
    let vtime_setup = ctx.vtime();
    ctx.reset_metrics();

    let nloc = lm.n_local();
    let range = lm.range.clone();
    let b_loc: Vec<f64> = b[range.clone()].to_vec();
    let mut x = vec![0.0; nloc];
    let mut r = b_loc.clone();
    let mut z = vec![0.0; nloc];
    prec.apply(ctx, &r, &mut z);
    let mut p = z.clone();
    let mut ghosts = vec![0.0; lm.ghost_cols.len()];
    let mut u = vec![0.0; nloc];

    let r0_sq = ctx.allreduce_sum(dot(&r, &r));
    let r0_norm = r0_sq.sqrt();
    let target_sq = cfg.rel_tol * cfg.rel_tol * r0_sq;
    let mut rz = ctx.allreduce_sum(dot(&r, &z));
    let mut beta_prev = 0.0f64;

    // Checkpoint storage: own latest + blocks held for partners.
    // `held[s]` = newest checkpoint of rank s stored on this node.
    let my_partners = backup_targets(rank, ctx.size(), cr.copies);
    let mut own_ckpt = Checkpoint {
        iteration: 0,
        data: pack(&x, &r, &z, &p, beta_prev, rz),
    };
    let mut held: Vec<Option<Checkpoint>> = vec![None; ctx.size()];
    // Who sends checkpoints *to* this node: ranks i with d_ik == rank.
    let holders_of: Vec<Vec<usize>> = (0..ctx.size())
        .map(|i| backup_targets(i, ctx.size(), cr.copies))
        .collect();
    let my_clients: Vec<usize> = (0..ctx.size())
        .filter(|&i| i != rank && holders_of[i].contains(&rank))
        .collect();

    let mut iterations = 0usize;
    let mut residual_sq = r0_sq;
    let mut converged = r0_norm <= f64::MIN_POSITIVE;
    let mut recoveries = 0usize;
    let mut ranks_recovered = 0usize;
    let mut vtime_recovery = 0.0f64;
    let mut handled: HashSet<u64> = HashSet::new();
    let resilient = cfg.resilience.is_some();

    while !converged && iterations < cfg.max_iter {
        let j = iterations as u64;

        // Periodic checkpoint (before the iteration, so a failure at
        // boundary j can roll back to a state ≤ j).
        if resilient && iterations.is_multiple_of(cr.interval) {
            own_ckpt = Checkpoint {
                iteration: j,
                data: pack(&x, &r, &z, &p, beta_prev, rz),
            };
            // One shared buffer fans out to every partner (Arc bump per
            // send, no per-destination deep copy; each message still pays
            // the full λ + s·µ).
            let shared = std::sync::Arc::new(own_ckpt.data.clone());
            for &d in &my_partners {
                ctx.send(
                    d,
                    TAG_CKPT,
                    Payload::f64s_shared(shared.clone()),
                    CommPhase::Redundancy,
                );
            }
            for &c in &my_clients {
                let data = ctx
                    .recv_phase(c, TAG_CKPT, CommPhase::Redundancy)
                    .into_f64s();
                held[c] = Some(Checkpoint { iteration: j, data });
            }
        }

        plan.exchange(ctx, &p, &mut ghosts, None);

        // Failure boundary.
        if resilient && !handled.contains(&j) {
            handled.insert(j);
            let failed = ctx.poll_failures(FailAt::Iteration(j));
            if !failed.is_empty() {
                let t0v = ctx.vtime();
                let mut failed = failed;
                failed.sort_unstable();
                let am_failed = failed.binary_search(&rank).is_ok();
                if am_failed {
                    poison(&mut x);
                    poison(&mut r);
                    poison(&mut z);
                    poison(&mut p);
                    poison(&mut ghosts);
                    own_ckpt.data.clear();
                    held = vec![None; ctx.size()];
                    beta_prev = f64::NAN;
                    rz = f64::NAN;
                }
                // Replacements fetch the newest surviving replica of their
                // block: ask each surviving holder, take any response
                // (replicas of the same epoch are identical).
                if am_failed {
                    let surviving_holder = holders_of[rank]
                        .iter()
                        .copied()
                        .find(|h| failed.binary_search(h).is_err())
                        .unwrap_or_else(|| {
                            panic!(
                                "rank {rank}: unrecoverable — all {} checkpoint \
                                 holders failed too",
                                holders_of[rank].len()
                            )
                        });
                    ctx.send(
                        surviving_holder,
                        TAG_FETCH_REQ,
                        Payload::Empty,
                        CommPhase::Recovery,
                    );
                    let resp =
                        ctx.recv_phase(surviving_holder, TAG_FETCH_RESP, CommPhase::Recovery);
                    let data = resp.into_f64s();
                    assert!(
                        !data.is_empty(),
                        "rank {rank}: holder had no checkpoint of this block"
                    );
                    own_ckpt = Checkpoint {
                        iteration: 0, // true epoch re-agreed below
                        data,
                    };
                } else {
                    // Survivors answer any fetch requests addressed to them.
                    for &f in &failed {
                        if holders_of[f].contains(&rank) {
                            // Only respond if actually asked: the failed
                            // rank picks its first *surviving* holder.
                            let first_surviving = holders_of[f]
                                .iter()
                                .copied()
                                .find(|h| failed.binary_search(h).is_err());
                            if first_surviving == Some(rank) {
                                ctx.recv_phase(f, TAG_FETCH_REQ, CommPhase::Recovery);
                                let data =
                                    held[f].as_ref().map(|c| c.data.clone()).unwrap_or_default();
                                ctx.send(
                                    f,
                                    TAG_FETCH_RESP,
                                    Payload::f64s(data),
                                    CommPhase::Recovery,
                                );
                            }
                        }
                    }
                }
                // Agree on the restart epoch (identical on all survivors —
                // checkpoints are taken at the same SPMD points; the min
                // guards against a replacement that has not re-saved yet).
                let epoch = ctx.allreduce_min(if am_failed {
                    f64::INFINITY
                } else {
                    own_ckpt.iteration as f64
                }) as u64;
                if am_failed {
                    own_ckpt.iteration = epoch;
                }
                // Global rollback: everyone restores the checkpoint epoch
                // (survivors from their own copy, replacements from the
                // fetched data).
                unpack(
                    &own_ckpt.data.clone(),
                    nloc,
                    &mut x,
                    &mut r,
                    &mut z,
                    &mut p,
                    &mut beta_prev,
                    &mut rz,
                );
                // Lost work: re-execute from the checkpoint epoch.
                iterations = epoch as usize;
                recoveries += 1;
                ranks_recovered += failed.len();
                vtime_recovery += ctx.vtime() - t0v;
                continue;
            }
        }

        lm.spmv(&p, &ghosts, &mut u);
        ctx.clock_mut().advance_flops(lm.spmv_flops());
        ctx.clock_mut().advance_flops(2 * nloc);
        let pap = ctx.allreduce_sum(dot(&p, &u));
        if pap <= 0.0 || !pap.is_finite() {
            panic!("rank {rank}: PCG breakdown at iteration {j} (pᵀAp = {pap})");
        }
        let alpha = rz / pap;
        axpy(alpha, &p, &mut x);
        axpy(-alpha, &u, &mut r);
        ctx.clock_mut().advance_flops(4 * nloc);

        iterations += 1;
        ctx.clock_mut().advance_flops(2 * nloc);
        residual_sq = ctx.allreduce_sum(dot(&r, &r));
        if residual_sq <= target_sq {
            converged = true;
            break;
        }
        prec.apply(ctx, &r, &mut z);
        ctx.clock_mut().advance_flops(2 * nloc);
        let rz_next = ctx.allreduce_sum(dot(&r, &z));
        beta_prev = rz_next / rz;
        rz = rz_next;
        xpay(&z, beta_prev, &mut p);
        ctx.clock_mut().advance_flops(2 * nloc);
    }

    NodeOutcome {
        rank,
        x_loc: x,
        range_start: range.start,
        iterations,
        residual_norm: residual_sq.sqrt(),
        initial_residual_norm: r0_norm,
        converged,
        vtime_total: ctx.vtime(),
        vtime_recovery,
        recoveries,
        ranks_recovered,
        stats: ctx.stats().clone(),
        vtime_setup,
        retired: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SolverConfig;
    use crate::driver::Problem;
    use parcomm::{Cluster, ClusterConfig, FailureScript};
    use sparsemat::gen::poisson2d;

    fn run_cr(
        problem: &Problem,
        nodes: usize,
        cfg: &SolverConfig,
        cr: &CrConfig,
        script: FailureScript,
    ) -> Vec<NodeOutcome> {
        let a = problem.a.clone();
        let b = problem.b.clone();
        let cfg = cfg.clone();
        let cr = cr.clone();
        Cluster::run(ClusterConfig::new(nodes).with_script(script), move |ctx| {
            cr_pcg_node(ctx, &a, &b, &cfg, &cr)
        })
    }

    fn max_err(outs: &[NodeOutcome]) -> f64 {
        outs.iter()
            .flat_map(|o| o.x_loc.iter())
            .map(|xi| (xi - 1.0).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn failure_free_matches_plain_pcg() {
        let a = poisson2d(12, 12);
        let problem = Problem::with_ones_solution(a);
        let outs = run_cr(
            &problem,
            4,
            &SolverConfig::resilient(1),
            &CrConfig::default(),
            FailureScript::none(),
        );
        assert!(outs[0].converged);
        assert!(max_err(&outs) < 1e-6);
        // Checkpointing cost shows in the stats.
        let ck: u64 = outs
            .iter()
            .map(|o| o.stats.elems(parcomm::CommPhase::Redundancy))
            .sum();
        assert!(ck > 0, "checkpoints must be recorded as redundancy traffic");
    }

    #[test]
    fn recovers_from_single_failure_by_rollback() {
        let a = poisson2d(14, 14);
        let problem = Problem::with_ones_solution(a);
        let script = FailureScript::simultaneous(13, 2, 1, 4);
        let cr = CrConfig {
            interval: 5,
            copies: 1,
        };
        let outs = run_cr(&problem, 4, &SolverConfig::resilient(1), &cr, script);
        assert!(outs[0].converged);
        assert_eq!(outs[0].recoveries, 1);
        assert!(max_err(&outs) < 1e-6, "err {}", max_err(&outs));
        // Rollback repeats work: more iterations executed than the clean
        // run (iterations counter counts completed ones after rollback, so
        // compare via the residual being reached later in virtual time).
        let clean = run_cr(
            &problem,
            4,
            &SolverConfig::resilient(1),
            &cr,
            FailureScript::none(),
        );
        assert!(outs[0].vtime_total > clean[0].vtime_total);
    }

    #[test]
    fn recovers_from_two_failures_with_two_copies() {
        let a = poisson2d(14, 14);
        let problem = Problem::with_ones_solution(a);
        let script = FailureScript::simultaneous(8, 1, 2, 6);
        let cr = CrConfig {
            interval: 4,
            copies: 2,
        };
        let outs = run_cr(&problem, 6, &SolverConfig::resilient(2), &cr, script);
        assert!(outs[0].converged);
        assert!(max_err(&outs) < 1e-6);
    }

    #[test]
    fn holder_loss_is_unrecoverable() {
        // Rank 1 fails together with its only checkpoint holder (d_11 = 2).
        let a = poisson2d(10, 10);
        let problem = Problem::with_ones_solution(a);
        let script = FailureScript::simultaneous(6, 1, 2, 5); // ranks 1 and 2
        let cr = CrConfig {
            interval: 3,
            copies: 1,
        };
        let result = std::panic::catch_unwind(|| {
            run_cr(&problem, 5, &SolverConfig::resilient(1), &cr, script)
        });
        assert!(result.is_err());
    }
}
