//! State reconstruction after node failures — the paper's Alg. 2,
//! generalized to `ψ ≤ φ` simultaneous failures (Sec. 4.1) and overlapping
//! failures (restart with the enlarged failed set).
//!
//! All nodes enter [`recover`] together at a failure boundary. Ranks in the
//! failed set act as **replacement nodes**: their dynamic data is poisoned
//! with NaN first (the failure simulation of paper Sec. 6 — any read of
//! lost data surfaces as NaN in test assertions), then rebuilt:
//!
//! 1. retrieve static data — already held as `Arc`s (reliable storage
//!    assumption, Sec. 1.1.2);
//! 2. receive `β(j-1)` (replicated scalar) and the redundant copies of
//!    `p(j)_If`, `p(j-1)_If` retained by the survivors;
//! 3. `z_If = p(j)_If − β(j-1) p(j-1)_If` (Alg. 2 line 4);
//! 4. reconstruct `r_If`: locally via `r = M z` for block-diagonal
//!    preconditioners (M-given variant), or via gather + distributed solve
//!    of `P_{If,If} r_If = z_If − P_{If,I\If} r_{I\If}` (P-given, Alg. 2
//!    lines 5–6);
//! 5. gather surviving `x_{I\If}` parts, form
//!    `w = b_If − r_If − A_{If,I\If} x_{I\If}`, and solve
//!    `A_{If,If} x_If = w` cooperatively across the replacement nodes with
//!    an inner distributed PCG (Alg. 2 lines 7–8, Sec. 6).
//!
//! Overlapping failures are detected at four substep boundaries; any new
//! failure aborts the attempt and restarts with the union of failed ranks,
//! exactly as prescribed in Sec. 4.1.

use std::collections::HashSet;

use parcomm::comm::ReduceOp;
use parcomm::fault::poison;
use parcomm::{CommPhase, FailAt, NodeCtx, Payload};
use precond::{Ilu0, SparseLdl};
use sparsemat::vecops::{axpy, dot, xpay};
use sparsemat::{BlockPartition, Csr};

use crate::config::RecoveryConfig;
use crate::localmat::LocalMatrix;
use crate::precsetup::NodePrecond;
use crate::retention::{Gen, Retention};

// Recovery tag bases; each attempt gets its own tag window so messages
// from an aborted attempt can never be confused with a later one.
const TAG_STRIDE: u32 = 16;
const TAG_BASE: u32 = 1 << 16;
pub(crate) const OFF_BETA: u32 = 0;
pub(crate) const OFF_PCUR: u32 = 1;
pub(crate) const OFF_PPREV: u32 = 2;
pub(crate) const OFF_REQ_X: u32 = 3;
pub(crate) const OFF_RESP_X: u32 = 4;
const OFF_REQ_R: u32 = 5;
const OFF_RESP_R: u32 = 6;

pub(crate) fn tag(seq: u32, off: u32) -> u32 {
    TAG_BASE + seq * TAG_STRIDE + off
}

/// Static context of one recovery.
pub struct RecoveryEnv<'a> {
    /// Full system matrix (static data, reliable storage).
    pub a: &'a Csr,
    /// Full right-hand side block owned by this node.
    pub b_loc: &'a [f64],
    /// The block-row distribution.
    pub part: &'a BlockPartition,
    /// This node's block rows.
    pub lm: &'a LocalMatrix,
    /// Reconstruction parameters (tolerances, inner solver).
    pub cfg: &'a RecoveryConfig,
    /// The iteration whose boundary detected the failure.
    pub iteration: u64,
    /// `false` at iteration 0 (no `p(j-1)` exists yet; `z(0) = p(0)`).
    pub has_prev: bool,
}

/// Outcome of one recovery.
#[derive(Clone, Debug)]
pub struct RecoveryReport {
    /// Total distinct ranks reconstructed (≥ the initial set if
    /// overlapping failures occurred).
    pub total_failed: usize,
    /// Reconstruction attempts (> 1 iff overlapping failures).
    pub attempts: usize,
    /// Inner-solver iterations of the final attempt's x-system.
    pub inner_iterations: usize,
}

/// The mutable solver state being reconstructed.
pub struct SolverState<'a> {
    /// The iterate block `x(j)_Iᵢ`.
    pub x: &'a mut [f64],
    /// The residual block `r(j)_Iᵢ`.
    pub r: &'a mut [f64],
    /// The preconditioned residual block `z(j)_Iᵢ`.
    pub z: &'a mut [f64],
    /// The search-direction block `p(j)_Iᵢ`.
    pub p: &'a mut [f64],
    /// Ghost values of `p(j)` from the last exchange.
    pub ghosts: &'a mut [f64],
    /// The redundant-copy store.
    pub retention: &'a mut Retention,
    /// The replicated scalar `β(j-1)`.
    pub beta_prev: &'a mut f64,
}

/// Run the recovery protocol. All nodes call this at the same boundary
/// with the same `initial_failed` set (ULFM-consistent notification).
#[allow(clippy::too_many_arguments)]
pub fn recover(
    ctx: &mut NodeCtx,
    env: &RecoveryEnv,
    prec: &mut NodePrecond,
    initial_failed: &[usize],
    handled: &mut HashSet<(u64, u32)>,
    recovery_seq: &mut u32,
    st: &mut SolverState,
) -> RecoveryReport {
    let mut failed = initial_failed.to_vec();
    failed.sort_unstable();
    failed.dedup();
    let mut attempts = 0usize;

    'attempt: loop {
        attempts += 1;
        let seq = *recovery_seq;
        *recovery_seq += 1;
        assert!(
            failed.len() < ctx.size(),
            "all {} nodes failed — nothing left to recover from",
            ctx.size()
        );
        let rank = ctx.rank();
        let am_failed = failed.binary_search(&rank).is_ok();
        let if_indices = env.part.union_of(&failed);
        let nloc = env.lm.n_local();
        let my_start = env.lm.range.start;

        if am_failed {
            // The node failure: all dynamic data of this rank is lost.
            poison(st.x);
            poison(st.r);
            poison(st.z);
            poison(st.p);
            poison(st.ghosts);
            st.retention.poison();
            *st.beta_prev = f64::NAN;
        }

        // ---- substep 0: before any recovery communication ------------
        if poll_overlap(ctx, env, 0, handled, &mut failed) {
            continue 'attempt;
        }

        // ---- β(j-1): replicated scalar from the lowest survivor ------
        let lowest_surv = (0..ctx.size())
            .find(|r| failed.binary_search(r).is_err())
            .expect("at least one survivor");
        if rank == lowest_surv {
            for &f in &failed {
                ctx.send(
                    f,
                    tag(seq, OFF_BETA),
                    Payload::F64(*st.beta_prev),
                    CommPhase::Recovery,
                );
            }
        } else if am_failed {
            *st.beta_prev = ctx
                .recv_phase(lowest_surv, tag(seq, OFF_BETA), CommPhase::Recovery)
                .into_f64();
        }

        // ---- redundant copies of p(j), p(j-1) → replacements ----------
        if !am_failed {
            for &f in &failed {
                let range = env.part.range(f);
                ctx.send(
                    f,
                    tag(seq, OFF_PCUR),
                    Payload::pairs(st.retention.collect_range(Gen::Cur, range.start, range.end)),
                    CommPhase::Recovery,
                );
                ctx.send(
                    f,
                    tag(seq, OFF_PPREV),
                    Payload::pairs(
                        st.retention
                            .collect_range(Gen::Prev, range.start, range.end),
                    ),
                    CommPhase::Recovery,
                );
            }
        } else {
            let p_cur = assemble_block(
                ctx,
                &failed,
                nloc,
                my_start,
                tag(seq, OFF_PCUR),
                "p(j)",
                true,
            )
            .expect("p(j) copies are mandatory");
            let p_prev = assemble_block(
                ctx,
                &failed,
                nloc,
                my_start,
                tag(seq, OFF_PPREV),
                "p(j-1)",
                env.has_prev,
            );
            // p(j) restored; z(j) = p(j) − β(j-1) p(j-1)  [Alg. 2 line 4].
            st.p.copy_from_slice(&p_cur);
            if env.has_prev {
                let p_prev =
                    p_prev.expect("complete when has_prev (assemble_block panics otherwise)");
                let beta = *st.beta_prev;
                for i in 0..nloc {
                    st.z[i] = p_cur[i] - beta * p_prev[i];
                }
            } else {
                st.z.copy_from_slice(&p_cur);
            }
            ctx.clock_mut().advance_flops(2 * nloc);
        }

        // ---- substep 1: after copy gathering --------------------------
        if poll_overlap(ctx, env, 1, handled, &mut failed) {
            continue 'attempt;
        }

        // ---- r reconstruction -----------------------------------------
        let mut inner_iterations = 0usize;
        if prec.is_explicit_p() {
            // P-given (Alg. 2 lines 5–6): all nodes participate.
            let p_full = prec.p_matrix().expect("explicit P").clone();
            let p_lm = LocalMatrix::build(&p_full, env.part, rank);
            let ghost_r = gather_failed_ghosts(
                ctx,
                env.part,
                &failed,
                am_failed,
                &p_lm.ghost_cols,
                st.r,
                my_start,
                tag(seq, OFF_REQ_R),
                tag(seq, OFF_RESP_R),
            );
            if am_failed {
                // v = z_If − P_{If,I\If} r_{I\If}
                let mut v = vec![0.0; nloc];
                p_lm.offdiag_mul_excluding(&ghost_r.unwrap(), &if_indices, &mut v);
                ctx.clock_mut().advance_flops(p_lm.offdiag.spmv_flops());
                for i in 0..nloc {
                    v[i] = st.z[i] - v[i];
                }
                // Solve P_{If,If} r_If = v over the replacement group.
                let (r_new, iters) =
                    solve_failed_system(ctx, env, &failed, &if_indices, &p_full, v);
                inner_iterations += iters;
                st.r.copy_from_slice(&r_new);
            }
        } else if am_failed {
            // M-given: r_If = M_{If,If} z_If, local (M block-diagonal).
            prec.m_forward_local(env.lm, st.z, st.r);
            ctx.clock_mut().advance_flops(env.lm.diag.spmv_flops());
        }

        // ---- substep 2: after r reconstruction -------------------------
        if poll_overlap(ctx, env, 2, handled, &mut failed) {
            continue 'attempt;
        }

        // ---- x reconstruction (Alg. 2 lines 7–8) -----------------------
        let ghost_x = gather_failed_ghosts(
            ctx,
            env.part,
            &failed,
            am_failed,
            &env.lm.ghost_cols,
            st.x,
            my_start,
            tag(seq, OFF_REQ_X),
            tag(seq, OFF_RESP_X),
        );
        if am_failed {
            // w = b_If − r_If − A_{If,I\If} x_{I\If}
            let mut w = vec![0.0; nloc];
            env.lm
                .offdiag_mul_excluding(&ghost_x.unwrap(), &if_indices, &mut w);
            ctx.clock_mut().advance_flops(env.lm.offdiag.spmv_flops());
            for i in 0..nloc {
                w[i] = env.b_loc[i] - st.r[i] - w[i];
            }
            let (x_new, iters) = solve_failed_system(ctx, env, &failed, &if_indices, env.a, w);
            inner_iterations += iters;
            st.x.copy_from_slice(&x_new);
        }

        // ---- substep 3: failures during the x solve --------------------
        if poll_overlap(ctx, env, 3, handled, &mut failed) {
            continue 'attempt;
        }

        return RecoveryReport {
            total_failed: failed.len(),
            attempts,
            inner_iterations,
        };
    }
}

/// Replacement-side assembly of one reconstructed block from the
/// `(global index, value)` pair lists sent by every survivor. Panics on a
/// coverage gap when `required` (more simultaneous failures than φ);
/// returns `None` on a gap otherwise (e.g. no `p(j-1)` exists yet at
/// iteration 0). Shared by the blocking and pipelined recovery protocols;
/// the adoption protocol uses the [`assemble_range`] generalization.
pub(crate) fn assemble_block(
    ctx: &mut NodeCtx,
    failed: &[usize],
    nloc: usize,
    my_start: usize,
    tag: u32,
    what: &str,
    required: bool,
) -> Option<Vec<f64>> {
    let survivors: Vec<usize> = (0..ctx.size())
        .filter(|s| failed.binary_search(s).is_err())
        .collect();
    let range = my_start..my_start + nloc;
    let me = ctx.rank();
    assemble_range(ctx, &survivors, me, Vec::new(), &range, tag, what, required)
}

/// Assemble one failed block over `range` from the `(global index, value)`
/// pair lists sent by every survivor except the receiver itself, seeded
/// with the receiver's own retained pairs (`own`, empty on a replacement
/// node whose retention is lost). The generalization that lets an
/// *adopter* — a survivor reconstructing a block it never owned — reuse
/// the replacement-side assembly.
#[allow(clippy::too_many_arguments)]
pub(crate) fn assemble_range(
    ctx: &mut NodeCtx,
    survivors: &[usize],
    me: usize,
    own: Vec<(u64, f64)>,
    range: &std::ops::Range<usize>,
    tag: u32,
    what: &str,
    required: bool,
) -> Option<Vec<f64>> {
    let blen = range.len();
    let mut vals = vec![0.0; blen];
    let mut got = vec![false; blen];
    let put = |pairs: Vec<(u64, f64)>, vals: &mut [f64], got: &mut [bool]| {
        for (g, v) in pairs {
            let o = g as usize - range.start;
            vals[o] = v;
            got[o] = true;
        }
    };
    put(own, &mut vals, &mut got);
    for &s in survivors {
        if s == me {
            continue;
        }
        let pairs = ctx.recv_phase(s, tag, CommPhase::Recovery).into_pairs();
        put(pairs, &mut vals, &mut got);
    }
    if let Some(o) = got.iter().position(|&g| !g) {
        if required {
            panic!(
                "rank {me}: unrecoverable — no surviving copy of {what}[{}]; \
                 more simultaneous failures than φ?",
                range.start + o
            );
        }
        return None;
    }
    Some(vals)
}

/// Check the overlap boundary `(iteration, substep)`; merge any newly
/// failed ranks into `failed` and report whether a restart is needed.
pub(crate) fn poll_overlap(
    ctx: &NodeCtx,
    env: &RecoveryEnv,
    substep: u32,
    handled: &mut HashSet<(u64, u32)>,
    failed: &mut Vec<usize>,
) -> bool {
    poll_overlap_members(ctx, env.iteration, substep, handled, failed, None)
}

/// [`poll_overlap`] generalized to a (possibly shrunken) member set: with
/// `members` given, failures naming ranks outside it are inert — retired
/// hardware is gone and has nothing left to lose.
pub(crate) fn poll_overlap_members(
    ctx: &NodeCtx,
    iteration: u64,
    substep: u32,
    handled: &mut HashSet<(u64, u32)>,
    failed: &mut Vec<usize>,
    members: Option<&[usize]>,
) -> bool {
    let key = (iteration, substep);
    if !handled.insert(key) {
        return false; // already processed in an earlier attempt
    }
    let new: Vec<usize> = ctx
        .poll_failures(FailAt::RecoverySubstep {
            after_iteration: iteration,
            substep,
        })
        .into_iter()
        .filter(|r| members.is_none_or(|m| m.binary_search(r).is_ok()))
        .collect();
    if new.is_empty() {
        return false;
    }
    failed.extend(new);
    failed.sort_unstable();
    failed.dedup();
    true
}

/// Replacements request the surviving parts of a distributed vector they
/// need (vector values at their ghost columns outside `If`); survivors
/// answer. Returns the filled ghost buffer for replacements (entries in
/// failed ranges left at 0), `None` for survivors.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gather_failed_ghosts(
    ctx: &mut NodeCtx,
    part: &BlockPartition,
    failed: &[usize],
    am_failed: bool,
    ghost_cols: &[usize],
    v_loc: &[f64],
    my_start: usize,
    tag_req: u32,
    tag_resp: u32,
) -> Option<Vec<f64>> {
    if am_failed {
        // Group needed indices by (surviving) owner.
        let mut requests: Vec<Vec<u64>> = vec![Vec::new(); ctx.size()];
        for &g in ghost_cols {
            let owner = part.owner_of(g);
            if failed.binary_search(&owner).is_err() {
                requests[owner].push(g as u64);
            }
        }
        for s in 0..ctx.size() {
            if s == ctx.rank() || failed.binary_search(&s).is_ok() {
                continue;
            }
            let req = std::mem::take(&mut requests[s]);
            ctx.send(s, tag_req, Payload::u64s(req), CommPhase::Recovery);
        }
        let mut ghosts = vec![0.0; ghost_cols.len()];
        for s in 0..ctx.size() {
            if s == ctx.rank() || failed.binary_search(&s).is_ok() {
                continue;
            }
            for (g, v) in ctx
                .recv_phase(s, tag_resp, CommPhase::Recovery)
                .into_pairs()
            {
                let pos = ghost_cols
                    .binary_search(&(g as usize))
                    .expect("response for unrequested index");
                ghosts[pos] = v;
            }
        }
        Some(ghosts)
    } else {
        // Survivors answer every replacement (requests may be empty).
        for &f in failed {
            let req = ctx.recv_phase(f, tag_req, CommPhase::Recovery).into_u64s();
            let resp: Vec<(u64, f64)> = req
                .into_iter()
                .map(|g| (g, v_loc[g as usize - my_start]))
                .collect();
            ctx.send(f, tag_resp, Payload::pairs(resp), CommPhase::Recovery);
        }
        None
    }
}

/// Cooperatively solve `M_{If,If} y = rhs` across the replacement group
/// with an inner distributed PCG (paper Sec. 6: "a PCG solver assembled
/// with global operations", block Jacobi preconditioner with blocks
/// matching the replacement index sets). Returns this replacement's block
/// of the solution and the iteration count.
pub(crate) fn solve_failed_system(
    ctx: &mut NodeCtx,
    env: &RecoveryEnv,
    failed: &[usize],
    if_indices: &[usize],
    m: &Csr,
    rhs: Vec<f64>,
) -> (Vec<f64>, usize) {
    let rows: Vec<usize> = env.part.range(ctx.rank()).collect();
    solve_failed_rows(ctx, env.cfg, failed, &rows, if_indices, m, rhs)
}

/// Generalization of [`solve_failed_system`] to arbitrary (sorted) row
/// ownership: each member of `group_ranks` owns `rows` of the `If` system.
/// Under in-place replacement each replacement owns exactly its own block;
/// under adoption (shrink / exhausted spare pool) a surviving node may own
/// several failed blocks at once. The concatenation of the members' `rows`
/// in ascending rank order must equal `if_indices` — guaranteed by the
/// nearest-preceding-survivor adoption rule (see [`crate::shrink`]).
pub(crate) fn solve_failed_rows(
    ctx: &mut NodeCtx,
    rcfg: &RecoveryConfig,
    group_ranks: &[usize],
    rows: &[usize],
    if_indices: &[usize],
    m: &Csr,
    rhs: Vec<f64>,
) -> (Vec<f64>, usize) {
    let rank = ctx.rank();
    // This member's rows of M_{If,If} (columns renumbered into If).
    let sub = m.extract(rows, if_indices);
    // Own diagonal block of M_{If,If} for preconditioning.
    let block = m.extract(rows, rows);
    enum BlockPrec {
        Exact(SparseLdl),
        Ilu(Ilu0),
    }
    let prec = if rcfg.exact_block_precond {
        BlockPrec::Exact(
            SparseLdl::new(&block)
                .unwrap_or_else(|e| panic!("rank {rank}: reconstruction block not SPD: {e}")),
        )
    } else {
        BlockPrec::Ilu(
            Ilu0::new(&block)
                .unwrap_or_else(|e| panic!("rank {rank}: reconstruction block ILU breakdown: {e}")),
        )
    };
    let apply_prec = |p: &BlockPrec, r: &[f64], z: &mut [f64]| {
        z.copy_from_slice(r);
        match p {
            BlockPrec::Exact(f) => f.solve_in_place(z),
            BlockPrec::Ilu(f) => f.solve_in_place(z),
        }
    };
    // Coarse factorization cost.
    ctx.clock_mut().advance_flops(20 * block.nnz().max(1));

    let mut group = ctx.group(group_ranks);
    let nloc = rhs.len();
    let mut x = vec![0.0; nloc];
    let mut r = rhs;
    let mut z = vec![0.0; nloc];
    apply_prec(&prec, &r, &mut z);
    let mut p = z.clone();
    // Fused: ‖r‖² and rᵀz in one group all-reduce (same 2-reductions-per-
    // iteration scheme as the outer PCG).
    let init = group.allreduce_vec(ctx, ReduceOp::Sum, vec![dot(&r, &r), dot(&r, &z)]);
    let rn0_sq = init[0];
    let mut rz = init[1];
    if rn0_sq <= f64::MIN_POSITIVE {
        return (x, 0);
    }
    let target_sq = rcfg.inner_rel_tol * rcfg.inner_rel_tol * rn0_sq;
    let mut u = vec![0.0; nloc];
    let mut iters = 0usize;
    for _ in 0..rcfg.inner_max_iter {
        iters += 1;
        // Assemble the full If-vector (group index order == sorted failed
        // ranks == the layout of `if_indices`).
        let parts = group.allgatherv_f64(ctx, p.clone());
        let p_full: Vec<f64> = parts.into_iter().flatten().collect();
        debug_assert_eq!(p_full.len(), if_indices.len());
        sub.spmv(&p_full, &mut u);
        ctx.clock_mut().advance_flops(sub.spmv_flops());
        let pap = group.allreduce_sum(ctx, dot(&p, &u));
        if pap <= 0.0 || !pap.is_finite() {
            panic!("rank {rank}: inner reconstruction solver broke down (pᵀAp = {pap})");
        }
        let alpha = rz / pap;
        axpy(alpha, &p, &mut x);
        axpy(-alpha, &u, &mut r);
        ctx.clock_mut().advance_flops(4 * nloc);
        apply_prec(&prec, &r, &mut z);
        let rr_rz = group.allreduce_vec(ctx, ReduceOp::Sum, vec![dot(&r, &r), dot(&r, &z)]);
        if rr_rz[0] <= target_sq {
            break;
        }
        let rz_next = rr_rz[1];
        let beta = rz_next / rz;
        rz = rz_next;
        xpay(&z, beta, &mut p);
        ctx.clock_mut().advance_flops(2 * nloc);
    }
    drop(group);
    (x, iters)
}
