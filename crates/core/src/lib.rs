//! # esr-core — exact state reconstruction for distributed PCG
//!
//! The primary contribution of Pachajoa, Levonyak, Gansterer & Träff,
//! *"How to Make the Preconditioned Conjugate Gradient Method Resilient
//! Against Multiple Node Failures"* (ICPP 2019): a distributed PCG solver
//! that survives up to `φ` **simultaneous or overlapping node failures**
//! without checkpointing, by keeping `φ` redundant copies of the two most
//! recent search directions distributed across the cluster.
//!
//! Module map (paper section → code):
//!
//! | Paper | Module |
//! |---|---|
//! | Alg. 1 (PCG), block-row distribution (Sec. 1.1.2) | [`pcg`], [`localmat`] |
//! | SpMV generalized scatter (Sec. 6) | [`scatter`] |
//! | Eqns. (2)–(6): `S_ik`, `mᵢ(s)`, `d_ik`, `Rᶜᵢₖ` (Secs. 3–4) | [`redundancy`] |
//! | Retention of `p(j)`, `p(j-1)` copies (Sec. 2.2) | [`retention`] |
//! | Alg. 2 generalized to `ψ ≤ φ` failures (Sec. 4.1), recovery policies | [`engine`] |
//! | Communication-hiding pipelined PCG + its ESR (arXiv:1912.09230) | [`pipecg`] |
//! | Preconditioner variants (M-given / P-given) | [`precsetup`] |
//! | Communication-overhead bounds (Sec. 4.2, Sec. 5) | [`analysis`] |
//! | Experiment orchestration (Secs. 6–7) | [`driver`] |
//! | ESR beyond PCG: BiCGSTAB, stationary methods (Sec. 1) | [`bicgstab`], [`stationary`] |
//!
//! The recovery protocol itself — scalar/copy routing, the four-substep
//! overlapping-failure restart, spare-pool grants, shrink adoption and the
//! post-shrink layout rebuild — lives once, in [`engine`]; each solver
//! contributes only a `ResilientKernel` describing which vectors it
//! retains and how its full state follows from them.

// Indexed loops over several parallel arrays are the clearest form for
// the numeric kernels in this crate; iterator-zip pyramids obscure the math.
#![allow(clippy::needless_range_loop)]

pub mod analysis;
pub mod bicgstab;
pub mod checkpoint;
pub mod config;
pub mod driver;
pub mod engine;
pub mod localmat;
pub mod pcg;
pub mod pipecg;
pub mod precsetup;
pub mod redundancy;
pub mod retention;
pub mod scatter;
pub mod stationary;

pub use config::{
    BackupStrategy, ConfigError, CrConfig, PrecondConfig, Protection, RecoveryConfig,
    RecoveryPolicy, ResilienceConfig, SolverConfig, SolverKind,
};
pub use driver::{
    run_bicgstab, run_checkpoint_restart, run_jacobi, run_pcg, run_pipecg, ExperimentResult,
    PhaseBreakdown, Problem,
};
pub use engine::{RecoveryEngine, RecoveryReport, RecoveryTimeline, SubstepTiming};
pub use pcg::NodeOutcome;
