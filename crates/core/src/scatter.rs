//! Communication plans for the distributed SpMV — the "generalized
//! scatter" of PETSc that the paper's implementation builds on (Sec. 6),
//! extended with the redundancy traffic of Sec. 4.
//!
//! The plan is computed collectively once (the matrix pattern is static):
//! every node derives its ghost needs from its own rows, requests them from
//! the owners, and the owners record the resulting send lists `S_ik`
//! (paper Eqn. 2). The redundancy extension later appends the extra sets
//! `Rᶜᵢₖ` (Eqn. 6) to the same messages, so that — whenever natural traffic
//! to the backup target exists — **no additional message latency** is paid
//! (paper Sec. 4.2).

use parcomm::{CommPhase, NodeCtx, Payload};
use sparsemat::BlockPartition;
use std::ops::Range;
use std::sync::Arc;

use crate::localmat::LocalMatrix;
use crate::retention::Retention;

/// User message tag for SpMV ghost exchange (with appended redundancy).
pub const TAG_SPMV: u32 = 10;

/// Redundant-copy payloads appended to a pipelined-PCG ghost exchange.
///
/// The pipelined solver scatters `m(j) = M⁻¹ w(j)` for its SpMV, but its
/// ESR reconstruction needs copies of **u(j)** and **p(j-1)** (every other
/// recurrence vector follows from those two via `s = Ap`, `q = M⁻¹s`,
/// `z = Aq` — see `crate::pipe_recovery`). So the backup traffic carries
/// values of `u` and `p` at the same covering index sets (natural ∪ extra)
/// the blocking solver uses for `p`, appended to the `m`-ghost messages:
/// still one message and one λ per link.
pub struct PipeBackups<'a> {
    /// The owned block of `u(j)`.
    pub u_loc: &'a [f64],
    /// The owned block of `p(j-1)` (`None` at iteration 0, where no search
    /// direction exists yet).
    pub p_loc: Option<&'a [f64]>,
    /// Retention store receiving the `u` copies.
    pub ret_u: &'a mut Retention,
    /// Retention store receiving the `p` copies.
    pub ret_p: &'a mut Retention,
}

/// The per-node communication plan.
///
/// Peers are addressed by **slot** — the index of their block in the
/// partition. On the full cluster slot `k` is global rank `k`; on a
/// shrunken cluster [`ScatterPlan::members`] maps slots to the surviving
/// global ranks.
#[derive(Clone, Debug)]
pub struct ScatterPlan {
    /// Number of participating nodes (slots).
    pub nodes: usize,
    /// Global ranks of the participants, ascending; `members[slot]` is the
    /// rank owning partition block `slot`. Identity on the full cluster.
    pub members: Vec<usize>,
    /// This node's slot (`members[my_slot] == rank`).
    pub my_slot: usize,
    /// Start of the owned range (local offset = global − start).
    pub my_start: usize,
    /// Owned range length.
    pub my_len: usize,
    /// Per peer slot `k`: local offsets sent naturally during SpMV (`S_ik`).
    pub send_natural: Vec<Vec<usize>>,
    /// Per peer slot `k`: local offsets sent only for redundancy (`Rᶜᵢₖ`);
    /// filled in by [`crate::redundancy`].
    pub send_extra: Vec<Vec<usize>>,
    /// Per peer slot `k`: the positions in the ghost buffer filled by `k`'s
    /// natural values (contiguous, because ghost columns are sorted and
    /// ownership ranges are contiguous).
    pub recv_ghost_range: Vec<Range<usize>>,
    /// Per peer slot `k`: global indices of redundancy extras received
    /// from `k`.
    pub recv_extra: Vec<Vec<usize>>,
    /// Per peer slot `k`: the precomputed pack list
    /// `send_natural[k] ++ send_extra[k]` as compact local offsets — the
    /// single gather walked by the exchange hot paths. Kept in sync by
    /// [`ScatterPlan::refresh_pack_lists`].
    pub(crate) gather: Vec<Vec<u32>>,
    /// Per peer slot `k`: the reusable send buffer. In steady state the
    /// receiver has dropped the previous message before our next exchange
    /// (iterations are separated by blocking collectives), so
    /// `Arc::get_mut` succeeds and packing reuses the allocation; a miss
    /// is counted via [`sparsemat::hotpath`] and falls back to a fresh
    /// buffer.
    pub(crate) bufs: Vec<Arc<Vec<f64>>>,
}

impl ScatterPlan {
    /// Build the natural-traffic plan collectively over the full cluster.
    /// Must be called by all nodes at the same SPMD point.
    pub fn build(ctx: &mut NodeCtx, lm: &LocalMatrix, part: &BlockPartition) -> Self {
        let nodes = ctx.size();
        let rank = ctx.rank();
        // Catch a mismatched LocalMatrix/partition pairing here, at the
        // misuse site, not as garbled ghost exchanges several calls later.
        debug_assert_eq!(lm.range, part.range(rank), "lm built for another rank");
        let requests = Self::ghost_requests(lm, part, nodes);
        let incoming = ctx.alltoallv_u64(requests.0);
        Self::assemble((0..nodes).collect(), rank, lm, requests.1, incoming)
    }

    /// Build the plan collectively over a shrunken communicator: only
    /// `group` members participate, and partition block `k` belongs to
    /// `group.members()[k]`. Traffic is charged to [`CommPhase::Recovery`]
    /// (plans are rebuilt inside the recovery window).
    pub fn build_on(
        ctx: &mut NodeCtx,
        group: &mut parcomm::Group,
        lm: &LocalMatrix,
        part: &BlockPartition,
    ) -> Self {
        let members = group.members().to_vec();
        debug_assert_eq!(members.len(), part.nodes());
        let my_slot = group.index();
        debug_assert_eq!(members[my_slot], ctx.rank());
        debug_assert_eq!(lm.range, part.range(my_slot), "lm built for another slot");
        let requests = Self::ghost_requests(lm, part, members.len());
        let incoming = group.alltoallv_u64(ctx, requests.0, CommPhase::Recovery);
        Self::assemble(members, my_slot, lm, requests.1, incoming)
    }

    /// Group own ghost needs by owning slot: contiguous segments of the
    /// sorted ghost column list. Returns (per-slot requests, ghost ranges).
    #[allow(clippy::type_complexity)]
    fn ghost_requests(
        lm: &LocalMatrix,
        part: &BlockPartition,
        nodes: usize,
    ) -> (Vec<Vec<u64>>, Vec<Range<usize>>) {
        let mut requests: Vec<Vec<u64>> = vec![Vec::new(); nodes];
        let mut recv_ghost_range: Vec<Range<usize>> = vec![0..0; nodes];
        let gc = &lm.ghost_cols;
        let mut pos = 0usize;
        while pos < gc.len() {
            let owner = part.owner_of(gc[pos]);
            let end_of_owner = part.range(owner).end;
            let mut end = pos;
            while end < gc.len() && gc[end] < end_of_owner {
                end += 1;
            }
            recv_ghost_range[owner] = pos..end;
            requests[owner].extend(gc[pos..end].iter().map(|&g| g as u64));
            pos = end;
        }
        (requests, recv_ghost_range)
    }

    /// Owners learn who needs what (the send lists `S_ik`) from the
    /// all-to-all result and finish the plan.
    fn assemble(
        members: Vec<usize>,
        my_slot: usize,
        lm: &LocalMatrix,
        recv_ghost_range: Vec<Range<usize>>,
        incoming: Vec<Vec<u64>>,
    ) -> Self {
        let nodes = members.len();
        let my_start = lm.range.start;
        let mut send_natural: Vec<Vec<usize>> = Vec::with_capacity(nodes);
        for (k, req) in incoming.into_iter().enumerate() {
            if k == my_slot {
                send_natural.push(Vec::new());
                continue;
            }
            send_natural.push(
                req.into_iter()
                    .map(|g| {
                        let g = g as usize;
                        debug_assert!(lm.range.contains(&g), "request outside owned range");
                        g - my_start
                    })
                    .collect(),
            );
        }

        let mut plan = ScatterPlan {
            nodes,
            members,
            my_slot,
            my_start,
            my_len: lm.range.len(),
            send_natural,
            send_extra: vec![Vec::new(); nodes],
            recv_ghost_range,
            recv_extra: vec![Vec::new(); nodes],
            gather: Vec::new(),
            bufs: Vec::new(),
        };
        plan.refresh_pack_lists();
        plan
    }

    /// Rebuild the per-peer pack lists and pre-size the reusable send
    /// buffers from `send_natural`/`send_extra`. Must be called after
    /// mutating `send_extra` directly (the redundancy setup does this via
    /// [`ScatterPlan::announce_extras`]).
    pub fn refresh_pack_lists(&mut self) {
        self.gather = self
            .send_natural
            .iter()
            .zip(&self.send_extra)
            .map(|(nat, ext)| {
                nat.iter()
                    .chain(ext)
                    .map(|&o| {
                        debug_assert!(o < self.my_len, "send offset outside owned range");
                        o as u32
                    })
                    .collect()
            })
            .collect();
        // Worst-case payload is the pipelined one: m[nat] ++ u[g] ++ p[g].
        self.bufs = self
            .gather
            .iter()
            .zip(&self.send_natural)
            .map(|(g, nat)| Arc::new(Vec::with_capacity(nat.len() + 2 * g.len())))
            .collect();
    }

    /// Clear-and-borrow a peer's send buffer for packing, falling back to
    /// a fresh allocation (and recording the reuse miss) if the previous
    /// message is still alive at the receiver.
    fn writable(arc: &mut Arc<Vec<f64>>) -> &mut Vec<f64> {
        if Arc::get_mut(arc).is_none() {
            sparsemat::hotpath::record_alloc_miss();
            *arc = Arc::new(Vec::new());
        }
        let buf = Arc::get_mut(arc).expect("fresh Arc is unique");
        buf.clear();
        buf
    }

    /// After `send_extra` is filled, announce the extras to their receivers
    /// so they can size and index their retention stores. Collective over
    /// the full cluster.
    pub fn announce_extras(&mut self, ctx: &mut NodeCtx) {
        let sends = self.extra_announcements();
        let incoming = ctx.alltoallv_u64(sends);
        self.record_extras(incoming);
    }

    /// [`ScatterPlan::announce_extras`] over a shrunken communicator.
    pub fn announce_extras_on(&mut self, ctx: &mut NodeCtx, group: &mut parcomm::Group) {
        let sends = self.extra_announcements();
        let incoming = group.alltoallv_u64(ctx, sends, CommPhase::Recovery);
        self.record_extras(incoming);
    }

    fn extra_announcements(&self) -> Vec<Vec<u64>> {
        self.send_extra
            .iter()
            .map(|offs| offs.iter().map(|&o| (self.my_start + o) as u64).collect())
            .collect()
    }

    fn record_extras(&mut self, incoming: Vec<Vec<u64>>) {
        self.recv_extra = incoming
            .into_iter()
            .map(|v| v.into_iter().map(|g| g as usize).collect())
            .collect();
        // `send_extra` was just filled by the caller: fold it into the
        // pack lists and re-size the send buffers.
        self.refresh_pack_lists();
    }

    /// True if any peer receives traffic from us in SpMV.
    pub fn sends_anything(&self) -> bool {
        self.send_natural.iter().any(|s| !s.is_empty())
            || self.send_extra.iter().any(|s| !s.is_empty())
    }

    /// Total extra elements per iteration (the overhead term of Sec. 4.2).
    pub fn extra_elems(&self) -> usize {
        self.send_extra.iter().map(Vec::len).sum()
    }

    /// Exchange ghost values of `v_loc` and deposit received copies into
    /// the retention store (if given): the fused SpMV-scatter +
    /// redundancy distribution of one PCG iteration.
    ///
    /// `ghosts` must have one slot per ghost column. When `retention` is
    /// `Some`, both natural ghosts and extras are recorded as redundant
    /// copies of the sender's block.
    pub fn exchange(
        &mut self,
        ctx: &mut NodeCtx,
        v_loc: &[f64],
        ghosts: &mut [f64],
        mut retention: Option<&mut Retention>,
    ) {
        debug_assert_eq!(v_loc.len(), self.my_len);
        // Post all sends first (asynchronous channels: no deadlock).
        for k in 0..self.nodes {
            if k == self.my_slot {
                continue;
            }
            let n_nat = self.send_natural[k].len();
            let gather = &self.gather[k];
            if gather.is_empty() {
                continue;
            }
            let buf = Self::writable(&mut self.bufs[k]);
            buf.extend(gather.iter().map(|&o| v_loc[o as usize]));
            if n_nat == 0 {
                // This link exists only for redundancy: the extra-latency
                // case of the paper's Sec. 4.2 analysis.
                ctx.stats_mut().record_extra_latency();
            }
            ctx.send_with_phases(
                self.members[k],
                TAG_SPMV,
                Payload::f64s_shared(self.bufs[k].clone()),
                &[
                    (CommPhase::Spmv, n_nat),
                    (CommPhase::Redundancy, gather.len() - n_nat),
                ],
            );
        }
        // Receive in deterministic peer order.
        for k in 0..self.nodes {
            if k == self.my_slot {
                continue;
            }
            let ghost_range = self.recv_ghost_range[k].clone();
            let n_ext = self.recv_extra[k].len();
            if ghost_range.is_empty() && n_ext == 0 {
                continue;
            }
            let msg = ctx.recv_phase(self.members[k], TAG_SPMV, CommPhase::Spmv);
            let data = msg.as_f64s();
            debug_assert_eq!(data.len(), ghost_range.len() + n_ext);
            let (nat_vals, ext_vals) = data.split_at(ghost_range.len());
            ghosts[ghost_range].copy_from_slice(nat_vals);
            if let Some(ret) = retention.as_deref_mut() {
                ret.store(k, nat_vals, ext_vals);
            }
        }
    }

    /// The pipelined-PCG variant of [`ScatterPlan::exchange`]: scatter the
    /// SpMV operand `m_loc` (natural ghosts only — `m` itself needs no
    /// backups) and piggyback redundant copies of `u(j)` and `p(j-1)` on
    /// the same messages. Per link the payload is
    /// `m[nat] ++ u[nat ∪ ext] ++ p[nat ∪ ext]`, so the per-iteration
    /// redundancy cost is `2·(|S_ik| + |Rᶜᵢₖ|)` elements but **zero extra
    /// messages** wherever natural traffic exists — the same
    /// latency-avoidance argument as the blocking solver's (Sec. 4.2),
    /// which is what keeps communication hiding worthwhile.
    pub fn exchange_pipelined(
        &mut self,
        ctx: &mut NodeCtx,
        m_loc: &[f64],
        ghosts: &mut [f64],
        mut backups: Option<PipeBackups<'_>>,
    ) {
        debug_assert_eq!(m_loc.len(), self.my_len);
        let has_p = backups.as_ref().is_some_and(|b| b.p_loc.is_some());
        // Post all sends first (asynchronous channels: no deadlock).
        for k in 0..self.nodes {
            if k == self.my_slot {
                continue;
            }
            let nat = &self.send_natural[k];
            let gather = &self.gather[k];
            if gather.is_empty() {
                continue;
            }
            let per_vec = gather.len();
            let buf = Self::writable(&mut self.bufs[k]);
            buf.extend(nat.iter().map(|&o| m_loc[o]));
            let mut backup_elems = 0;
            if let Some(b) = &backups {
                buf.extend(gather.iter().map(|&o| b.u_loc[o as usize]));
                backup_elems += per_vec;
                if let Some(p_loc) = b.p_loc {
                    buf.extend(gather.iter().map(|&o| p_loc[o as usize]));
                    backup_elems += per_vec;
                }
            }
            if nat.is_empty() {
                // This link exists only for redundancy: the extra-latency
                // case of the paper's Sec. 4.2 analysis.
                ctx.stats_mut().record_extra_latency();
            }
            ctx.send_with_phases(
                self.members[k],
                TAG_SPMV,
                Payload::f64s_shared(self.bufs[k].clone()),
                &[
                    (CommPhase::Spmv, nat.len()),
                    (CommPhase::Redundancy, backup_elems),
                ],
            );
        }
        // Receive in deterministic peer order.
        for k in 0..self.nodes {
            if k == self.my_slot {
                continue;
            }
            let ghost_range = self.recv_ghost_range[k].clone();
            let n_nat = ghost_range.len();
            let n_ext = self.recv_extra[k].len();
            if n_nat == 0 && n_ext == 0 {
                continue;
            }
            let per_vec = n_nat + n_ext;
            let msg = ctx.recv_phase(self.members[k], TAG_SPMV, CommPhase::Spmv);
            let data = msg.as_f64s();
            let expect = n_nat
                + if backups.is_some() {
                    per_vec * if has_p { 2 } else { 1 }
                } else {
                    0
                };
            debug_assert_eq!(data.len(), expect);
            ghosts[ghost_range].copy_from_slice(&data[..n_nat]);
            if let Some(b) = backups.as_mut() {
                let u_part = &data[n_nat..n_nat + per_vec];
                b.ret_u.store(k, &u_part[..n_nat], &u_part[n_nat..]);
                if has_p {
                    let p_part = &data[n_nat + per_vec..];
                    b.ret_p.store(k, &p_part[..n_nat], &p_part[n_nat..]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcomm::{Cluster, ClusterConfig};
    use sparsemat::gen::poisson2d;
    use sparsemat::Csr;
    use std::sync::Arc;

    fn build_plans(a: Arc<Csr>, nodes: usize) -> Vec<(ScatterPlan, LocalMatrix)> {
        let n = a.n_rows();
        Cluster::run(ClusterConfig::new(nodes), move |ctx| {
            let part = BlockPartition::new(n, ctx.size());
            let lm = LocalMatrix::build(&a, &part, ctx.rank());
            let plan = ScatterPlan::build(ctx, &lm, &part);
            (plan, lm)
        })
    }

    #[test]
    fn send_and_recv_lists_are_symmetric() {
        let a = Arc::new(poisson2d(6, 6));
        let plans = build_plans(a, 4);
        for (i, (plan_i, _)) in plans.iter().enumerate() {
            for (k, (plan_k, _)) in plans.iter().enumerate() {
                if i == k {
                    continue;
                }
                // What i sends to k == what k expects from i.
                let sent: Vec<usize> = plan_i.send_natural[k]
                    .iter()
                    .map(|&o| o + plan_i.my_start)
                    .collect();
                let expected: Vec<usize> = {
                    let (_, lm_k) = &plans[k];
                    let r = plan_k.recv_ghost_range[i].clone();
                    lm_k.ghost_cols[r].to_vec()
                };
                assert_eq!(sent, expected, "i={i} k={k}");
            }
        }
    }

    #[test]
    fn exchange_delivers_ghosts() {
        let a = Arc::new(poisson2d(6, 6));
        let n = 36;
        let out = Cluster::run(ClusterConfig::new(3), move |ctx| {
            let part = BlockPartition::new(n, ctx.size());
            let lm = LocalMatrix::build(&a, &part, ctx.rank());
            let mut plan = ScatterPlan::build(ctx, &lm, &part);
            // Global vector x[i] = i².
            let v_loc: Vec<f64> = lm.range.clone().map(|i| (i * i) as f64).collect();
            let mut ghosts = vec![f64::NAN; lm.ghost_cols.len()];
            plan.exchange(ctx, &v_loc, &mut ghosts, None);
            (lm.ghost_cols.clone(), ghosts)
        });
        for (cols, ghosts) in out {
            for (g, v) in cols.iter().zip(&ghosts) {
                assert_eq!(*v, (g * g) as f64);
            }
        }
    }

    #[test]
    fn distributed_spmv_through_plan_matches_sequential() {
        let a = Arc::new(poisson2d(7, 5));
        let n = 35;
        let a2 = a.clone();
        let out = Cluster::run(ClusterConfig::new(5), move |ctx| {
            let part = BlockPartition::new(n, ctx.size());
            let lm = LocalMatrix::build(&a2, &part, ctx.rank());
            let mut plan = ScatterPlan::build(ctx, &lm, &part);
            let x_loc: Vec<f64> = lm.range.clone().map(|i| (i as f64 * 0.31).cos()).collect();
            let mut ghosts = vec![0.0; lm.ghost_cols.len()];
            plan.exchange(ctx, &x_loc, &mut ghosts, None);
            let mut y = vec![0.0; lm.n_local()];
            lm.spmv(&x_loc, &ghosts, &mut y);
            y
        });
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.31).cos()).collect();
        let y_seq = a.mul_vec(&x);
        let y_dist: Vec<f64> = out.into_iter().flatten().collect();
        for (d, s) in y_dist.iter().zip(&y_seq) {
            assert!((d - s).abs() < 1e-14);
        }
    }
}
