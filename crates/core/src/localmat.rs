//! A node's block of rows, split for distributed SpMV.
//!
//! PETSc-style storage (paper Sec. 1.1.2 + Sec. 6): the owned rows of `A`
//! are split into a **diagonal block** (columns inside the owned range,
//! renumbered locally) and an **off-diagonal block** whose columns are
//! compressed onto the node's sorted ghost-column list. The distributed
//! SpMV is then `y = diag·x_loc + offdiag·ghosts` once the ghost values
//! have been exchanged.

use sparsemat::{BlockPartition, Csr};
use std::ops::Range;

/// The locally-owned part of the distributed matrix.
#[derive(Clone, Debug)]
pub struct LocalMatrix {
    /// Owned global row range `Iᵢ`.
    pub range: Range<usize>,
    /// Owned rows × owned columns, locally numbered.
    pub diag: Csr,
    /// Owned rows × ghost columns (compressed onto `ghost_cols`).
    pub offdiag: Csr,
    /// Sorted global indices of the ghost columns.
    pub ghost_cols: Vec<usize>,
}

impl LocalMatrix {
    /// Extract `rank`'s block rows from the full matrix.
    pub fn build(a: &Csr, part: &BlockPartition, rank: usize) -> Self {
        let range = part.range(rank);
        let ghost_cols = sparsemat::analysis::ghost_needs(a, part, rank);
        let nloc = range.len();

        let mut diag_ptr = Vec::with_capacity(nloc + 1);
        let mut diag_col = Vec::new();
        let mut diag_val = Vec::new();
        let mut off_ptr = Vec::with_capacity(nloc + 1);
        let mut off_col = Vec::new();
        let mut off_val = Vec::new();
        diag_ptr.push(0);
        off_ptr.push(0);
        for r in range.clone() {
            let (cols, vals) = a.row(r);
            for (c, v) in cols.iter().zip(vals) {
                let c = *c as usize;
                if range.contains(&c) {
                    diag_col.push(c - range.start);
                    diag_val.push(*v);
                } else {
                    // ghost_cols is sorted and complete by construction.
                    let pos = ghost_cols.binary_search(&c).expect("ghost column");
                    off_col.push(pos);
                    off_val.push(*v);
                }
            }
            diag_ptr.push(diag_col.len());
            off_ptr.push(off_col.len());
        }
        LocalMatrix {
            range,
            diag: Csr::from_parts(nloc, nloc, diag_ptr, diag_col, diag_val),
            offdiag: Csr::from_parts(nloc, ghost_cols.len(), off_ptr, off_col, off_val),
            ghost_cols,
        }
    }

    /// Number of owned rows.
    pub fn n_local(&self) -> usize {
        self.range.len()
    }

    /// Distributed SpMV local part: `y = diag·x_loc + offdiag·ghosts`.
    ///
    /// Fused single pass over the owned rows (each `y[i]` is written once);
    /// bitwise identical to the two-pass diag-then-offdiag formulation.
    pub fn spmv(&self, x_loc: &[f64], ghosts: &[f64], y: &mut [f64]) {
        self.diag.spmv_fused(&self.offdiag, x_loc, ghosts, y);
    }

    /// Flops of one local SpMV.
    pub fn spmv_flops(&self) -> usize {
        self.diag.spmv_flops() + self.offdiag.spmv_flops()
    }

    /// `offdiag · ghosts` with ghost columns belonging to `excluded`
    /// (sorted global indices) zeroed — computes `A_{Iᵢ, I\If} x_{I\If}`
    /// during reconstruction, where `If`-columns must not contribute.
    pub fn offdiag_mul_excluding(&self, ghosts: &[f64], excluded: &[usize], y: &mut [f64]) {
        debug_assert_eq!(ghosts.len(), self.ghost_cols.len());
        let mut masked = ghosts.to_vec();
        for (pos, g) in self.ghost_cols.iter().enumerate() {
            if excluded.binary_search(g).is_ok() {
                masked[pos] = 0.0;
            }
        }
        self.offdiag.spmv(&masked, y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsemat::gen::poisson2d;

    #[test]
    fn blocks_partition_the_rows() {
        let a = poisson2d(6, 6);
        let part = BlockPartition::new(36, 3);
        for rank in 0..3 {
            let lm = LocalMatrix::build(&a, &part, rank);
            assert_eq!(lm.n_local(), 12);
            let nnz: usize = lm.diag.nnz() + lm.offdiag.nnz();
            let expect: usize = part.range(rank).map(|r| a.row(r).0.len()).sum();
            assert_eq!(nnz, expect, "no entries lost");
        }
    }

    #[test]
    fn distributed_spmv_matches_sequential() {
        let a = poisson2d(5, 7);
        let n = 35;
        let part = BlockPartition::new(n, 4);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.13).sin()).collect();
        let y_seq = a.mul_vec(&x);
        for rank in 0..4 {
            let lm = LocalMatrix::build(&a, &part, rank);
            let x_loc: Vec<f64> = lm.range.clone().map(|i| x[i]).collect();
            let ghosts: Vec<f64> = lm.ghost_cols.iter().map(|&g| x[g]).collect();
            let mut y = vec![0.0; lm.n_local()];
            lm.spmv(&x_loc, &ghosts, &mut y);
            for (i, r) in lm.range.clone().enumerate() {
                assert!((y[i] - y_seq[r]).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn excluding_failed_columns() {
        let a = poisson2d(4, 4);
        let part = BlockPartition::new(16, 4);
        let lm = LocalMatrix::build(&a, &part, 1);
        let x = [1.0; 16];
        let ghosts: Vec<f64> = lm.ghost_cols.iter().map(|&g| x[g]).collect();
        // Exclude node 2's range from the ghost contribution.
        let excluded: Vec<usize> = part.range(2).collect();
        let mut y = vec![0.0; 4];
        lm.offdiag_mul_excluding(&ghosts, &excluded, &mut y);
        // Compare against a manual computation.
        for (i, r) in lm.range.clone().enumerate() {
            let (cols, vals) = a.row(r);
            let expect: f64 = cols
                .iter()
                .zip(vals)
                .filter(|&(&c, _)| {
                    let c = c as usize;
                    !lm.range.contains(&c) && !excluded.contains(&c)
                })
                .map(|(_, v)| v)
                .sum();
            assert!((y[i] - expect).abs() < 1e-14);
        }
    }

    #[test]
    fn ghost_cols_sorted_unique() {
        let a = poisson2d(8, 8);
        let part = BlockPartition::new(64, 4);
        let lm = LocalMatrix::build(&a, &part, 2);
        assert!(lm.ghost_cols.windows(2).all(|w| w[0] < w[1]));
        assert!(lm.ghost_cols.iter().all(|g| !lm.range.contains(g)));
    }
}
