//! Recovery without guaranteed replacement nodes: the spare-pool and
//! shrink policies ([`crate::config::RecoveryPolicy`]).
//!
//! The paper assumes ULFM hands every failed rank a replacement node
//! (Sec. 1.1.1, Sec. 6). This module implements what happens when that
//! assumption breaks (Pachajoa et al., arXiv:2007.04066): a failure event
//! of ψ ranks is granted `min(ψ, spares remaining)` replacements from the
//! cluster's finite [`SparePool`]; failed subdomains with a replacement
//! are rebuilt in place exactly as in [`crate::recovery`], while the
//! uncovered subdomains are **adopted** by surviving nodes and the solve
//! continues on `N − ψ` ranks.
//!
//! The adoption rule keeps every node's ownership contiguous: a retired
//! block merges into the nearest *preceding* surviving member's block
//! (leading blocks merge into the first survivor), so the new layout is a
//! generalized non-uniform [`BlockPartition`] built with
//! [`BlockPartition::from_starts`] — the boundaries of the shrunken
//! partition are simply the old block starts of the surviving members.
//! This also guarantees that, walking the reconstructors in ascending rank
//! order, their reconstructed rows concatenate to the sorted failed index
//! set `If` — the layout the cooperative inner solve
//! ([`crate::recovery::solve_failed_rows`]) requires.
//!
//! The protocol reuses the four-substep restart structure of
//! [`crate::recovery::recover`], so failures *during* a shrink (overlapping
//! failures, paper Sec. 4.1) abort the attempt and restart with the
//! enlarged failed set. Retirement is monotone across restarts: the spare
//! grant always goes to the lowest-ranked failed nodes and the failed set
//! only grows, so a rank that has retired can never be resurrected by a
//! later attempt.
//!
//! After a successful event with retirements, the survivors rebuild the
//! entire distributed state on the new layout: [`LocalMatrix`],
//! [`ScatterPlan`] (over the shrunken communicator, a [`Group`] used for
//! the remaining solve's collectives too), the block preconditioner, and
//! re-derived redundancy targets for the surviving ring with
//! `φ' = min(φ, N' − 1)`.

use std::collections::HashSet;
use std::ops::Range;
use std::sync::Arc;

use parcomm::comm::ReduceOp;
use parcomm::fault::poison;
use parcomm::{CommPhase, Group, NodeCtx, Payload, SparePool};
use sparsemat::{BlockPartition, Csr};

use crate::config::{PrecondConfig, RecoveryPolicy, ResilienceConfig};
use crate::localmat::LocalMatrix;
use crate::precsetup::NodePrecond;
use crate::recovery::{
    assemble_range, poll_overlap_members, solve_failed_rows, tag, RecoveryReport, OFF_BETA,
    OFF_PCUR, OFF_PPREV, OFF_REQ_X, OFF_RESP_X,
};
use crate::redundancy;
use crate::retention::{Gen, Retention};
use crate::scatter::ScatterPlan;

/// The distributed layout a node program runs on. On the full cluster the
/// members are `0..N` and collectives go through the world communicator;
/// after a shrink they go through the surviving members' [`Group`].
pub(crate) struct Layout {
    /// One contiguous block per member, in member order.
    pub part: BlockPartition,
    /// This node's block rows of `A`.
    pub lm: LocalMatrix,
    /// Ghost-exchange + redundancy plan on the current layout.
    pub plan: ScatterPlan,
    /// Redundant-copy store on the current layout.
    pub retention: Retention,
    /// Preconditioner state on the current layout.
    pub prec: NodePrecond,
    /// Sorted global ranks of the active members.
    pub members: Vec<usize>,
    /// This node's slot (`members[my_slot] == rank`).
    pub my_slot: usize,
    /// The shrunken communicator (`None` while the full cluster is alive).
    pub group: Option<Group>,
}

impl Layout {
    /// Element-wise all-reduce over the active members, charged to the
    /// Reduction phase. Bitwise-deterministic either way (same
    /// recursive-doubling schedule over member indices).
    pub fn allreduce_vec(&mut self, ctx: &mut NodeCtx, opr: ReduceOp, x: Vec<f64>) -> Vec<f64> {
        match &mut self.group {
            None => ctx.allreduce_vec(opr, x),
            Some(g) => g.allreduce_vec_phase(ctx, opr, x, CommPhase::Reduction),
        }
    }

    /// Scalar sum all-reduce over the active members.
    pub fn allreduce_sum(&mut self, ctx: &mut NodeCtx, x: f64) -> f64 {
        self.allreduce_vec(ctx, ReduceOp::Sum, vec![x])[0]
    }
}

/// The node-local solver vectors, passed by `&mut Vec` because adoption
/// changes their lengths.
pub(crate) struct AdoptState<'a> {
    /// Iterate block.
    pub x: &'a mut Vec<f64>,
    /// Residual block.
    pub r: &'a mut Vec<f64>,
    /// Preconditioned residual block.
    pub z: &'a mut Vec<f64>,
    /// Search-direction block.
    pub p: &'a mut Vec<f64>,
    /// Ghost buffer of the last exchange.
    pub ghosts: &'a mut Vec<f64>,
    /// Owned right-hand-side block.
    pub b_loc: &'a mut Vec<f64>,
    /// Replicated scalar `β(j-1)`.
    pub beta_prev: &'a mut f64,
}

/// Static context of one policy-driven recovery.
pub(crate) struct AdoptEnv<'a> {
    /// Full system matrix (static data, reliable storage).
    pub a: &'a Arc<Csr>,
    /// Full right-hand side (static data; adopters read adopted rows).
    pub b: &'a [f64],
    /// Resilience configuration (φ, strategy, inner solver, policy).
    pub res: &'a ResilienceConfig,
    /// Preconditioner configuration (rebuilt on the new layout).
    pub precond: &'a PrecondConfig,
    /// The iteration whose boundary detected the failure.
    pub iteration: u64,
    /// `false` at iteration 0 (no `p(j-1)` exists; `z(0) = p(0)`).
    pub has_prev: bool,
}

/// How a policy-driven recovery ended for this node.
pub(crate) enum PolicyOutcome {
    /// Recovery complete; the layout may have shrunk.
    Recovered(RecoveryReport),
    /// This node failed with no spare available: it leaves the cluster
    /// (its subdomain was adopted by a survivor).
    Retired,
}

/// One reconstructed failed block at its reconstructor.
struct ReconBlock {
    range: Range<usize>,
    p: Vec<f64>,
    z: Vec<f64>,
    r: Vec<f64>,
    x: Vec<f64>,
}

/// Run the spare-pool / shrink recovery protocol. All *active* members
/// call this together at a failure boundary with the same failed set
/// (already filtered to active members).
#[allow(clippy::too_many_arguments)]
pub(crate) fn recover_with_adoption(
    ctx: &mut NodeCtx,
    env: &AdoptEnv,
    layout: &mut Layout,
    st: &mut AdoptState,
    initial_failed: &[usize],
    handled: &mut HashSet<(u64, u32)>,
    recovery_seq: &mut u32,
    pool: &mut SparePool,
) -> PolicyOutcome {
    let me = ctx.rank();
    let mut failed = initial_failed.to_vec();
    failed.sort_unstable();
    failed.dedup();
    // The pool snapshot at event start: every attempt of this event grants
    // from the same budget, so restarts with an enlarged failed set remain
    // SPMD-consistent; the definitive claim happens once, on success.
    let avail = match env.res.policy {
        RecoveryPolicy::Spares(_) => pool.remaining(),
        _ => 0,
    };
    let mut attempts = 0usize;

    'attempt: loop {
        attempts += 1;
        let seq = *recovery_seq;
        *recovery_seq += 1;
        assert!(
            failed.len() < layout.members.len(),
            "all {} active nodes failed — nothing left to recover from",
            layout.members.len()
        );

        // ---- grant spares to the lowest-ranked failed nodes -----------
        let granted = avail.min(failed.len());
        let replaced: Vec<usize> = failed[..granted].to_vec();
        let retired: Vec<usize> = failed[granted..].to_vec();
        if retired.binary_search(&me).is_ok() {
            // No replacement for this node: it is gone. Its subdomain is
            // adopted by a survivor; the thread leaves the cluster.
            return PolicyOutcome::Retired;
        }
        let am_failed = failed.binary_search(&me).is_ok(); // ⇒ replaced
        let am_survivor = !am_failed;

        let old_slot = |r: usize| {
            layout
                .members
                .binary_search(&r)
                .expect("failed rank is an active member")
        };
        let survivors: Vec<usize> = layout
            .members
            .iter()
            .copied()
            .filter(|r| failed.binary_search(r).is_err())
            .collect();
        let new_members: Vec<usize> = layout
            .members
            .iter()
            .copied()
            .filter(|r| retired.binary_search(r).is_err())
            .collect();
        // The shrunken partition: boundaries are the old block starts of
        // the surviving members (the first pulled to row 0), which *is*
        // the nearest-preceding-survivor adoption rule.
        let mut new_starts = Vec::with_capacity(new_members.len() + 1);
        new_starts.push(0);
        for m in new_members.iter().skip(1) {
            new_starts.push(layout.part.range(old_slot(*m)).start);
        }
        new_starts.push(layout.part.n());
        let new_part = BlockPartition::from_starts(new_starts);
        let reconstructor = |f: usize| -> usize {
            if replaced.binary_search(&f).is_ok() {
                f // in-place replacement
            } else {
                let start = layout.part.range(old_slot(f)).start;
                new_members[new_part.owner_of(start)] // adopter
            }
        };
        let mut reconstructors: Vec<usize> = failed.iter().map(|&f| reconstructor(f)).collect();
        reconstructors.sort_unstable();
        reconstructors.dedup();
        let if_indices: Vec<usize> = failed
            .iter()
            .flat_map(|&f| layout.part.range(old_slot(f)))
            .collect();
        debug_assert!(if_indices.windows(2).all(|w| w[0] < w[1]));

        if am_failed {
            // The node failure: all dynamic data of this rank is lost.
            poison(st.x);
            poison(st.r);
            poison(st.z);
            poison(st.p);
            poison(st.ghosts);
            layout.retention.poison();
            *st.beta_prev = f64::NAN;
        }

        // ---- substep 0: before any recovery communication -------------
        if poll_overlap_members(
            ctx,
            env.iteration,
            0,
            handled,
            &mut failed,
            Some(&layout.members),
        ) {
            continue 'attempt;
        }

        // ---- β(j-1): replicated scalar to the replaced ranks ----------
        // Adopters that are survivors already hold it; replaced ranks —
        // including a replaced rank that also adopts in a mixed event —
        // lost theirs to poisoning and receive it here.
        let lowest_surv = survivors[0];
        if me == lowest_surv {
            for &f in &replaced {
                ctx.send(
                    f,
                    tag(seq, OFF_BETA),
                    Payload::F64(*st.beta_prev),
                    CommPhase::Recovery,
                );
            }
        } else if am_failed {
            *st.beta_prev = ctx
                .recv_phase(lowest_surv, tag(seq, OFF_BETA), CommPhase::Recovery)
                .into_f64();
        }

        // ---- retained copies of p(j), p(j-1) → reconstructors ----------
        // Every survivor sends, per failed block in sorted order, its
        // retained pairs in that block's range to the block's
        // reconstructor; FIFO (src, tag) ordering disambiguates multiple
        // blocks bound for the same reconstructor.
        if am_survivor {
            for &f in &failed {
                let rho = reconstructor(f);
                if rho == me {
                    continue; // used locally during assembly below
                }
                let br = layout.part.range(old_slot(f));
                ctx.send(
                    rho,
                    tag(seq, OFF_PCUR),
                    Payload::pairs(layout.retention.collect_range(Gen::Cur, br.start, br.end)),
                    CommPhase::Recovery,
                );
                ctx.send(
                    rho,
                    tag(seq, OFF_PPREV),
                    Payload::pairs(layout.retention.collect_range(Gen::Prev, br.start, br.end)),
                    CommPhase::Recovery,
                );
            }
        }
        let mut my_blocks: Vec<ReconBlock> = Vec::new();
        for &f in &failed {
            if reconstructor(f) != me {
                continue;
            }
            let br = layout.part.range(old_slot(f));
            let own_cur = if am_survivor {
                layout.retention.collect_range(Gen::Cur, br.start, br.end)
            } else {
                Vec::new()
            };
            let own_prev = if am_survivor {
                layout.retention.collect_range(Gen::Prev, br.start, br.end)
            } else {
                Vec::new()
            };
            let p_cur = assemble_range(
                ctx,
                &survivors,
                me,
                own_cur,
                &br,
                tag(seq, OFF_PCUR),
                "p(j)",
                true,
            )
            .expect("p(j) copies are mandatory");
            let p_prev = assemble_range(
                ctx,
                &survivors,
                me,
                own_prev,
                &br,
                tag(seq, OFF_PPREV),
                "p(j-1)",
                env.has_prev,
            );
            // z(j) = p(j) − β(j-1) p(j-1)  [Alg. 2 line 4].
            let blen = br.len();
            let mut z = vec![0.0; blen];
            if env.has_prev {
                let pp = p_prev.expect("complete when has_prev (assemble_range panics otherwise)");
                let beta = *st.beta_prev;
                for i in 0..blen {
                    z[i] = p_cur[i] - beta * pp[i];
                }
            } else {
                z.copy_from_slice(&p_cur);
            }
            ctx.clock_mut().advance_flops(2 * blen);
            my_blocks.push(ReconBlock {
                range: br,
                p: p_cur,
                z,
                r: Vec::new(),
                x: Vec::new(),
            });
        }

        // ---- substep 1: after copy gathering ---------------------------
        if poll_overlap_members(
            ctx,
            env.iteration,
            1,
            handled,
            &mut failed,
            Some(&layout.members),
        ) {
            continue 'attempt;
        }

        // ---- r reconstruction: M-given, local per failed block ---------
        // (The preconditioner is block-diagonal aligned with the current
        // blocks, so r_b = M_{b,b} z_b needs only static data — which is
        // exactly what lets an *adopter* do it for a block it never owned.)
        for blk in &mut my_blocks {
            let blen = blk.range.len();
            let rows: Vec<usize> = blk.range.clone().collect();
            blk.r = match env.precond {
                PrecondConfig::None => blk.z.clone(),
                PrecondConfig::Jacobi => {
                    let d = env.a.extract(&rows, &rows).diag();
                    ctx.clock_mut().advance_flops(blen);
                    blk.z.iter().zip(&d).map(|(z, d)| z * d).collect()
                }
                PrecondConfig::BlockJacobiExact => {
                    let m_bb = env.a.extract(&rows, &rows);
                    let mut r = vec![0.0; blen];
                    m_bb.spmv(&blk.z, &mut r);
                    ctx.clock_mut().advance_flops(m_bb.spmv_flops());
                    r
                }
                PrecondConfig::ExplicitP(_) => {
                    // Rejected up front in the node program; the P-given
                    // gather + distributed solve needs the full cluster.
                    unreachable!("ExplicitP is Replace-only")
                }
            };
        }

        // ---- substep 2: after r reconstruction -------------------------
        if poll_overlap_members(
            ctx,
            env.iteration,
            2,
            handled,
            &mut failed,
            Some(&layout.members),
        ) {
            continue 'attempt;
        }

        // ---- x reconstruction (Alg. 2 lines 7–8) -----------------------
        // Reconstructors gather the surviving x values their failed rows
        // couple to; survivors answer every reconstructor.
        let am_reconstructor = !my_blocks.is_empty();
        let my_range = layout.lm.range.clone();
        let mut needed: Vec<usize> = Vec::new();
        if am_reconstructor {
            for blk in &my_blocks {
                for gr in blk.range.clone() {
                    let (cols, _) = env.a.row(gr);
                    needed.extend(
                        cols.iter()
                            .copied()
                            .filter(|c| if_indices.binary_search(c).is_err()),
                    );
                }
            }
            needed.sort_unstable();
            needed.dedup();
            let mut per_slot: Vec<Vec<u64>> = vec![Vec::new(); layout.members.len()];
            for &c in &needed {
                per_slot[layout.part.owner_of(c)].push(c as u64);
            }
            for (slot, req) in per_slot.into_iter().enumerate() {
                let owner = layout.members[slot];
                if owner == me {
                    continue;
                }
                // c ∉ If ⇒ its owner is a survivor.
                debug_assert!(req.is_empty() || failed.binary_search(&owner).is_err());
                if failed.binary_search(&owner).is_err() {
                    ctx.send(
                        owner,
                        tag(seq, OFF_REQ_X),
                        Payload::u64s(req),
                        CommPhase::Recovery,
                    );
                }
            }
        }
        if am_survivor {
            for &rho in &reconstructors {
                if rho == me {
                    continue;
                }
                let req = ctx
                    .recv_phase(rho, tag(seq, OFF_REQ_X), CommPhase::Recovery)
                    .into_u64s();
                let resp: Vec<(u64, f64)> = req
                    .into_iter()
                    .map(|g| (g, st.x[g as usize - my_range.start]))
                    .collect();
                ctx.send(
                    rho,
                    tag(seq, OFF_RESP_X),
                    Payload::pairs(resp),
                    CommPhase::Recovery,
                );
            }
        }
        let mut inner_iterations = 0usize;
        if am_reconstructor {
            // Sorted (col, value) lookup of every surviving x value needed.
            let mut x_lookup: Vec<(usize, f64)> = needed
                .iter()
                .copied()
                .filter(|&c| my_range.contains(&c))
                .map(|c| (c, st.x[c - my_range.start]))
                .collect();
            for &s in &survivors {
                if s == me {
                    continue;
                }
                for (g, v) in ctx
                    .recv_phase(s, tag(seq, OFF_RESP_X), CommPhase::Recovery)
                    .into_pairs()
                {
                    x_lookup.push((g as usize, v));
                }
            }
            x_lookup.sort_unstable_by_key(|e| e.0);

            // w = b_If − r_If − A_{If,I\If} x_{I\If}, per owned block.
            let mut rows: Vec<usize> = Vec::new();
            let mut rhs: Vec<f64> = Vec::new();
            for blk in &my_blocks {
                let mut flops = 0usize;
                for (i, gr) in blk.range.clone().enumerate() {
                    let (cols, vals) = env.a.row(gr);
                    let mut s = 0.0;
                    for (c, v) in cols.iter().zip(vals) {
                        if if_indices.binary_search(c).is_err() {
                            let pos = x_lookup
                                .binary_search_by_key(c, |e| e.0)
                                .expect("gathered every surviving coupled x");
                            s += v * x_lookup[pos].1;
                        }
                    }
                    flops += 2 * cols.len();
                    rhs.push(env.b[gr] - blk.r[i] - s);
                }
                ctx.clock_mut().advance_flops(flops + 2 * blk.range.len());
                rows.extend(blk.range.clone());
            }
            debug_assert!(rows.windows(2).all(|w| w[0] < w[1]));
            let (x_new, iters) = solve_failed_rows(
                ctx,
                &env.res.recovery,
                &reconstructors,
                &rows,
                &if_indices,
                env.a,
                rhs,
            );
            inner_iterations = iters;
            let mut off = 0usize;
            for blk in &mut my_blocks {
                blk.x = x_new[off..off + blk.range.len()].to_vec();
                off += blk.range.len();
            }
        }

        // ---- substep 3: failures during the x solve --------------------
        if poll_overlap_members(
            ctx,
            env.iteration,
            3,
            handled,
            &mut failed,
            Some(&layout.members),
        ) {
            continue 'attempt;
        }

        // ---- success: commit the spare claim, apply the new layout -----
        pool.claim(granted);
        let report = RecoveryReport {
            total_failed: failed.len(),
            attempts,
            inner_iterations,
        };

        if retired.is_empty() {
            // Every failed rank got a spare: pure in-place replacement.
            if am_failed {
                let blk = my_blocks
                    .pop()
                    .expect("replaced rank rebuilt its own block");
                debug_assert!(my_blocks.is_empty() && blk.range == my_range);
                st.p.copy_from_slice(&blk.p);
                st.z.copy_from_slice(&blk.z);
                st.r.copy_from_slice(&blk.r);
                st.x.copy_from_slice(&blk.x);
                // ghosts/retention refill on the restarted iteration's
                // re-scatter, exactly as in the Replace protocol.
            }
            return PolicyOutcome::Recovered(report);
        }

        // Shrink: splice own surviving values and reconstructed blocks
        // into the adopted (wider) range, then rebuild every piece of
        // distributed state on the new layout.
        let my_new_slot = new_members
            .binary_search(&me)
            .expect("active non-retired rank is a new member");
        let new_range = new_part.range(my_new_slot);
        let own = if am_failed { None } else { Some(&my_range) };
        *st.x = splice(&new_range, own, st.x, &my_blocks, |b| &b.x);
        *st.r = splice(&new_range, own, st.r, &my_blocks, |b| &b.r);
        *st.z = splice(&new_range, own, st.z, &my_blocks, |b| &b.z);
        *st.p = splice(&new_range, own, st.p, &my_blocks, |b| &b.p);
        *st.b_loc = env.b[new_range.clone()].to_vec();

        let lm = LocalMatrix::build(env.a, &new_part, my_new_slot);
        // Coarse cost of re-extracting the adopted static rows.
        ctx.clock_mut()
            .advance_flops(lm.diag.nnz() + lm.offdiag.nnz());
        let prec = NodePrecond::setup(ctx, env.precond, &new_part, &lm)
            .unwrap_or_else(|e| panic!("rank {me}: preconditioner rebuild after shrink: {e}"));
        let mut group = ctx.group(&new_members);
        let mut plan = ScatterPlan::build_on(ctx, &mut group, &lm, &new_part);
        let k = new_members.len();
        let phi_eff = env.res.phi.min(k.saturating_sub(1));
        if phi_eff >= 1 {
            plan.send_extra = redundancy::compute_extra_sends(
                my_new_slot,
                k,
                phi_eff,
                &env.res.strategy,
                lm.n_local(),
                &plan.send_natural,
            );
            plan.announce_extras_on(ctx, &mut group);
        }
        let retention = Retention::build(&plan, &lm.ghost_cols);
        *st.ghosts = vec![0.0; lm.ghost_cols.len()];

        layout.part = new_part;
        layout.lm = lm;
        layout.plan = plan;
        layout.retention = retention;
        layout.prec = prec;
        layout.members = new_members;
        layout.my_slot = my_new_slot;
        layout.group = Some(group);
        return PolicyOutcome::Recovered(report);
    }
}

/// Build the new local vector over `new_range` from the node's old owned
/// values (`None` for a replaced rank, whose old values are poisoned and
/// whose block is in `blocks`) and its reconstructed blocks. Every row of
/// `new_range` is covered exactly once by construction.
fn splice(
    new_range: &Range<usize>,
    own_range: Option<&Range<usize>>,
    old: &[f64],
    blocks: &[ReconBlock],
    sel: impl Fn(&ReconBlock) -> &[f64],
) -> Vec<f64> {
    let mut out = vec![f64::NAN; new_range.len()];
    if let Some(own) = own_range {
        out[own.start - new_range.start..own.end - new_range.start].copy_from_slice(old);
    }
    for blk in blocks {
        out[blk.range.start - new_range.start..blk.range.end - new_range.start]
            .copy_from_slice(sel(blk));
    }
    debug_assert!(out.iter().all(|v| !v.is_nan()), "shrink splice left a gap");
    out
}
