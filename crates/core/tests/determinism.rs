//! Determinism regression test for the event-driven runtime (ISSUE 9).
//!
//! The scheduler dispatches the unique next runnable node by minimum
//! `(virtual time, rank)`, so two runs of the same experiment must replay
//! the identical schedule — not just "the same numbers to within epsilon"
//! but **bitwise-identical** everything: solution vectors, virtual times,
//! communication statistics (including the wait-time histograms, which are
//! sensitive to the exact interleaving of receives), and recovery
//! timelines. Under `--features trace` even the serialized span trace must
//! match byte for byte.
//!
//! This is the property the old thread-per-node runtime could only promise
//! for clock *values* (the clock algebra was scheduling-independent); any
//! observable that depended on host-thread timing — `recv_any` match
//! order, trace event interleavings — was fair game. Now nothing is.

use esr_core::{run_pcg, Problem, SolverConfig};
use parcomm::{CostModel, FailureScript};
use sparsemat::gen::poisson2d;

fn bits(v: f64) -> u64 {
    v.to_bits()
}

#[test]
fn failure_recovery_solve_is_bitwise_reproducible() {
    let a = poisson2d(13, 13);
    let problem = Problem::with_ones_solution(a);
    let cfg = SolverConfig::resilient(2);
    // Two nodes fail simultaneously mid-solve on a 13-node cluster: the
    // run exercises redundancy traffic, failure detection, group-scoped
    // reconstruction collectives, and the replacement hand-off.
    let run = || {
        run_pcg(
            &problem,
            13,
            &cfg,
            CostModel::default(),
            FailureScript::simultaneous(7, 3, 2, 13),
        )
        .unwrap()
    };
    let r1 = run();
    let r2 = run();

    assert!(r1.converged && r1.recoveries == 1 && r1.ranks_recovered == 2);

    // Solve-level scalars, bitwise.
    assert_eq!(r1.iterations, r2.iterations);
    assert_eq!(r1.converged, r2.converged);
    assert_eq!(bits(r1.solver_residual), bits(r2.solver_residual));
    assert_eq!(bits(r1.true_residual), bits(r2.true_residual));
    assert_eq!(bits(r1.residual_deviation), bits(r2.residual_deviation));
    assert_eq!(bits(r1.vtime), bits(r2.vtime));
    assert_eq!(bits(r1.vtime_recovery), bits(r2.vtime_recovery));
    assert_eq!(bits(r1.vtime_setup), bits(r2.vtime_setup));

    // The assembled solution, element-wise bitwise.
    assert_eq!(r1.x.len(), r2.x.len());
    for (i, (a, b)) in r1.x.iter().zip(&r2.x).enumerate() {
        assert_eq!(bits(*a), bits(*b), "x[{i}] differs");
    }

    // Cluster-wide communication statistics — `CommStats` equality covers
    // message/element counters, vtime accumulators, and the logarithmic
    // wait/size histograms (whose bucket counts detect any reordering of
    // individual receive charges, not just changed totals).
    assert_eq!(r1.stats, r2.stats);

    // Per-node outcomes.
    assert_eq!(r1.per_node.len(), r2.per_node.len());
    for (a, b) in r1.per_node.iter().zip(&r2.per_node) {
        assert_eq!(a.rank, b.rank);
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.retired, b.retired);
        assert_eq!(bits(a.residual_norm), bits(b.residual_norm));
        assert_eq!(bits(a.vtime_total), bits(b.vtime_total), "rank {}", a.rank);
        assert_eq!(bits(a.vtime_recovery), bits(b.vtime_recovery));
        assert_eq!(bits(a.vtime_setup), bits(b.vtime_setup));
        assert_eq!(a.stats, b.stats, "rank {} stats differ", a.rank);
        assert_eq!(a.x_loc.len(), b.x_loc.len());
        for (xa, xb) in a.x_loc.iter().zip(&b.x_loc) {
            assert_eq!(bits(*xa), bits(*xb));
        }
    }

    // Recovery timelines: same substeps, same per-substep virtual times.
    assert_eq!(r1.recovery_timelines.len(), r2.recovery_timelines.len());
    for (a, b) in r1.recovery_timelines.iter().zip(&r2.recovery_timelines) {
        assert_eq!(a.iteration, b.iteration);
        assert_eq!(a.flavor, b.flavor);
        assert_eq!(a.segments.len(), b.segments.len());
        for (sa, sb) in a.segments.iter().zip(&b.segments) {
            assert_eq!(sa.attempt, sb.attempt);
            assert_eq!(sa.label, sb.label);
            assert_eq!(bits(sa.vtime), bits(sb.vtime), "substep {}", sa.label);
        }
    }

    // Under tracing, the full serialized span trace — every event, in
    // order, with its virtual timestamp — must be byte-identical.
    #[cfg(feature = "trace")]
    assert_eq!(r1.trace.chrome_trace_json(), r2.trace.chrome_trace_json());
}
