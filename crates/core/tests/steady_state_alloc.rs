//! Steady-state allocation audit.
//!
//! The kernel layer promises that after setup, solver iterations run
//! entirely out of persistent workspaces: ghost-exchange send buffers are
//! reused `Arc`s, preconditioner applies are in-place, retention deposits
//! copy into preallocated slots. Every hot-path site that *should* reuse a
//! buffer but has to allocate fresh reports to
//! [`sparsemat::hotpath::record_alloc_miss`]; this test asserts the miss
//! count stays **zero** across entire failure-free solves.
//!
//! Counters are thread-local and the simulated cluster runs one thread per
//! node (`parcomm::Cluster`), so the audit must happen *inside* each node
//! program — resetting or reading the counter on the test thread would
//! observe nothing. Each closure resets its node's counter, runs the
//! solve, and returns the node's miss count for the assertion.

use std::sync::Arc;

use esr_core::pcg::esr_pcg_node;
use esr_core::pipecg::esr_pipecg_node;
use esr_core::{CrConfig, Problem, Protection, ResilienceConfig, SolverConfig};
use parcomm::{Cluster, ClusterConfig, NodeCtx};
use sparsemat::gen::poisson2d;
use sparsemat::hotpath;
use sparsemat::Csr;

/// Run `node_program` on a failure-free cluster and return, per node, the
/// alloc-miss count recorded on that node's thread plus whether its solve
/// converged.
fn audit<F>(nodes: usize, problem: &Problem, cfg: SolverConfig, node_program: F) -> Vec<(u64, bool)>
where
    F: Fn(&mut NodeCtx, &Arc<Csr>, &Arc<Vec<f64>>, &SolverConfig) -> esr_core::NodeOutcome + Sync,
{
    let a = problem.a.clone();
    let b = problem.b.clone();
    Cluster::run(ClusterConfig::new(nodes), move |ctx| {
        hotpath::reset_alloc_misses();
        let out = node_program(ctx, &a, &b, &cfg);
        (hotpath::alloc_misses(), out.converged)
    })
}

fn assert_zero_misses(results: &[(u64, bool)]) {
    for (rank, &(misses, converged)) in results.iter().enumerate() {
        assert!(converged, "node {rank} did not converge");
        assert_eq!(
            misses, 0,
            "node {rank} recorded {misses} hot-path allocation misses"
        );
    }
}

#[test]
fn esr_pcg_steady_state_allocates_nothing() {
    // φ = 2 redundancy: every iteration ships natural ghosts *and* the
    // Eqn. (6) extras through the reused send buffers.
    let problem = Problem::with_ones_solution(poisson2d(20, 20));
    let results = audit(4, &problem, SolverConfig::resilient(2), esr_pcg_node);
    assert_zero_misses(&results);
}

#[test]
fn plain_pcg_steady_state_allocates_nothing() {
    let problem = Problem::with_random_rhs(poisson2d(16, 16), 7);
    let results = audit(4, &problem, SolverConfig::reference(), esr_pcg_node);
    assert_zero_misses(&results);
}

#[test]
fn pipelined_pcg_steady_state_allocates_nothing() {
    // The pipelined exchange packs three vectors (m, u-backups, p-backups)
    // per peer message through the same reused buffers.
    let problem = Problem::with_ones_solution(poisson2d(18, 18));
    let results = audit(4, &problem, SolverConfig::resilient(2), esr_pipecg_node);
    assert_zero_misses(&results);
}

#[test]
fn checkpoint_protected_pcg_steady_state_allocates_nothing() {
    // Periodic deposits allocate one fresh pack buffer per round by design
    // (cold path, every `interval`-th iteration); the in-between
    // iterations must still be miss-free.
    let mut cfg = SolverConfig::resilient(1);
    cfg.resilience = Some(
        ResilienceConfig::paper(1)
            .with_protection(Protection::Checkpoint(CrConfig::default().with_interval(5))),
    );
    let problem = Problem::with_ones_solution(poisson2d(16, 16));
    let results = audit(4, &problem, cfg, esr_pcg_node);
    assert_zero_misses(&results);
}
