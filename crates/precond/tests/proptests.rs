//! Property-based tests of the factorizations and preconditioners.

use proptest::prelude::*;

use precond::{
    BlockJacobi, BlockSolver, Ic0, Ilu0, Jacobi, LdlWorkspace, Preconditioner, SparseLdl, Ssor,
};
use sparsemat::gen::banded_spd;
use sparsemat::vecops::{dot, norm2};
use sparsemat::Csr;

fn residual(a: &Csr, x: &[f64], b: &[f64]) -> f64 {
    let mut r = a.mul_vec(x);
    for (ri, bi) in r.iter_mut().zip(b) {
        *ri -= bi;
    }
    norm2(&r) / norm2(b).max(1e-300)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The exact LDLᵀ factorization solves any generated SPD system to
    /// machine precision.
    #[test]
    fn ldl_solves_exactly(seed in any::<u64>(), n in 5usize..60, bw in 1usize..6) {
        let a = banded_spd(n, bw, 0.7, seed);
        let f = SparseLdl::new(&a).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.17).sin()).collect();
        let x = f.solve(&b);
        prop_assert!(residual(&a, &x, &b) < 1e-10);
    }

    /// LDLᵀ agrees with the dense Cholesky oracle.
    #[test]
    fn ldl_matches_dense(seed in any::<u64>(), n in 4usize..25) {
        let a = banded_spd(n, 3, 0.8, seed);
        let sparse = SparseLdl::new(&a).unwrap();
        let dense = a.to_dense().cholesky().unwrap();
        let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 3) as f64).collect();
        let xs = sparse.solve(&b);
        let xd = dense.solve(&b);
        for (s, d) in xs.iter().zip(&xd) {
            prop_assert!((s - d).abs() < 1e-9);
        }
    }

    /// Incomplete factorizations never *worsen* the residual of a single
    /// preconditioned step (they approximate A⁻¹).
    #[test]
    fn incomplete_factorizations_contract(seed in any::<u64>(), n in 8usize..60) {
        let a = banded_spd(n, 3, 0.6, seed);
        let b: Vec<f64> = (0..n).map(|i| ((i * 7 % 11) as f64) - 5.0).collect();
        for (name, z) in [
            ("ilu0", Ilu0::new(&a).unwrap().solve(&b)),
            ("ic0", {
                let f = Ic0::new(&a).unwrap();
                let mut x = b.clone();
                f.solve_lower(&mut x);
                f.solve_upper(&mut x);
                x
            }),
        ] {
            prop_assert!(
                residual(&a, &z, &b) < 1.0,
                "{name} failed to contract"
            );
        }
    }

    /// Every preconditioner application is a symmetric positive definite
    /// operator — required for PCG correctness.
    #[test]
    fn preconditioners_are_spd_operators(seed in any::<u64>(), n in 8usize..40) {
        let a = banded_spd(n, 2, 0.7, seed);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.29).sin()).collect();
        let y: Vec<f64> = (0..n).map(|i| (i as f64 * 0.53).cos()).collect();
        let jacobi = Jacobi::new(&a).unwrap();
        let ssor = Ssor::new(&a, 1.1).unwrap();
        let bj = BlockJacobi::with_blocks(&a, 3.min(n), BlockSolver::ExactLdl).unwrap();
        let ldl = SparseLdl::new(&a).unwrap();
        let precs: [&dyn Preconditioner; 4] = [&jacobi, &ssor, &bj, &ldl];
        for m in precs {
            let mut mx = vec![0.0; n];
            let mut my = vec![0.0; n];
            m.apply(&x, &mut mx);
            m.apply(&y, &mut my);
            let sym_err = (dot(&y, &mx) - dot(&x, &my)).abs();
            prop_assert!(
                sym_err <= 1e-9 * (1.0 + dot(&y, &mx).abs()),
                "{} not symmetric: {sym_err}",
                m.name()
            );
            prop_assert!(dot(&x, &mx) > 0.0, "{} not positive", m.name());
        }
    }

    /// Factoring through a shared [`LdlWorkspace`] is **bitwise** identical
    /// to factoring with a fresh workspace each time, across a sequence of
    /// systems of varying size (the block-Jacobi setup path: one workspace,
    /// many blocks). A stale flag/lnz/y entry surviving `reset` would show
    /// up here as a flipped bit in some solve.
    #[test]
    fn ldl_workspace_reuse_is_bitwise_identical(
        seed in any::<u64>(),
        n in 5usize..40,
        bw in 1usize..5,
        rounds in 2usize..6,
    ) {
        let mut ws = LdlWorkspace::new();
        for k in 0..rounds {
            // Grow and shrink across rounds so reset() covers both.
            let ni = 5 + (n + k * 7) % 40;
            let a = banded_spd(ni, bw.min(ni - 1), 0.7, seed.wrapping_add(k as u64));
            let fresh = SparseLdl::new(&a).unwrap();
            let reused = SparseLdl::factor_with(&a, &mut ws).unwrap();
            let b: Vec<f64> = (0..ni).map(|i| (i as f64 * 0.31).cos()).collect();
            let x_fresh = fresh.solve(&b);
            let mut x_reused = b.clone();
            reused.solve_in_place(&mut x_reused);
            for (f, r) in x_fresh.iter().zip(&x_reused) {
                prop_assert_eq!(f.to_bits(), r.to_bits());
            }
            // Repeated in-place solves through the same factor are pure.
            let mut again = b.clone();
            reused.solve_in_place(&mut again);
            for (f, r) in again.iter().zip(&x_reused) {
                prop_assert_eq!(f.to_bits(), r.to_bits());
            }
        }
    }

    /// A factorization breakdown (non-SPD input) must not poison the
    /// workspace: the next factorization through the same workspace is
    /// still bitwise identical to a fresh-workspace one.
    #[test]
    fn ldl_workspace_survives_breakdown(seed in any::<u64>(), n in 5usize..30) {
        // Indefinite: an SPD band with one diagonal entry negated.
        let good = banded_spd(n, 2, 0.7, seed);
        let mut coo = sparsemat::Coo::new(n, n);
        for r in 0..n {
            let (cols, vals) = good.row(r);
            for (c, v) in cols.iter().zip(vals) {
                let c = *c as usize;
                let v = if r == n / 2 && c == n / 2 { -v.abs() } else { *v };
                coo.push(r, c, v);
            }
        }
        let bad = coo.to_csr();
        let mut ws = LdlWorkspace::new();
        prop_assert!(SparseLdl::factor_with(&bad, &mut ws).is_err());
        let reused = SparseLdl::factor_with(&good, &mut ws).unwrap();
        let fresh = SparseLdl::new(&good).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.53).sin()).collect();
        let x_fresh = fresh.solve(&b);
        let mut x_reused = b.clone();
        reused.solve_in_place(&mut x_reused);
        for (f, r) in x_fresh.iter().zip(&x_reused) {
            prop_assert_eq!(f.to_bits(), r.to_bits());
        }
    }

    /// Block Jacobi with one block per row degenerates to Jacobi.
    #[test]
    fn block_jacobi_single_rows_is_jacobi(seed in any::<u64>(), n in 4usize..20) {
        let a = banded_spd(n, 2, 0.8, seed);
        let bj = BlockJacobi::with_blocks(&a, n, BlockSolver::ExactLdl).unwrap();
        let j = Jacobi::new(&a).unwrap();
        let r: Vec<f64> = (0..n).map(|i| i as f64 - 2.0).collect();
        let mut z1 = vec![0.0; n];
        let mut z2 = vec![0.0; n];
        bj.apply(&r, &mut z1);
        j.apply(&r, &mut z2);
        for (a, b) in z1.iter().zip(&z2) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }
}
