//! IC(0): incomplete Cholesky with zero fill-in.
//!
//! The symmetric counterpart of ILU(0): `A ≈ L Lᵀ` with `L` restricted to
//! the lower-triangular pattern of `A`. Also serves as the split
//! preconditioner `M = L Lᵀ` for the split-preconditioned CG variant
//! (the `krylov` crate's SPCG; paper Sec. 1 lists SPCG among the methods the ESR
//! extension applies to).

use crate::traits::{PrecondError, Preconditioner};
use sparsemat::Csr;

/// Zero-fill incomplete Cholesky factor `L` (lower triangular, CSR rows).
#[derive(Clone, Debug)]
pub struct Ic0 {
    /// Lower-triangular factor on A's lower pattern (diagonal included).
    l: Csr,
    /// Transpose of `l`, precomputed for the backward solve.
    lt: Csr,
}

impl Ic0 {
    /// Factor the lower triangle of `a`. Fails if a pivot becomes
    /// non-positive (IC(0) can break down on general SPD matrices; it is
    /// guaranteed for M-matrices, which all generators in `sparsemat::gen`
    /// produce).
    pub fn new(a: &Csr) -> Result<Self, PrecondError> {
        if a.n_rows() != a.n_cols() {
            return Err(PrecondError::Shape(format!(
                "ic0 needs square, got {}x{}",
                a.n_rows(),
                a.n_cols()
            )));
        }
        let n = a.n_rows();
        // Extract the lower triangle pattern/values.
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::new();
        let mut vals = Vec::new();
        row_ptr.push(0);
        for r in 0..n {
            let (cols, vs) = a.row(r);
            for (c, v) in cols.iter().zip(vs) {
                if *c as usize <= r {
                    col_idx.push(*c as usize);
                    vals.push(*v);
                }
            }
            row_ptr.push(col_idx.len());
            // The algorithm relies on the diagonal being present (and, per
            // CSR ordering, last in each lower-triangular row).
            if col_idx.last() != Some(&r) {
                return Err(PrecondError::Breakdown(r));
            }
        }

        // Row-oriented IC(0): for each row i and each k < i in pattern,
        //   L(i,k) = (A(i,k) - Σ_j L(i,j) L(k,j)) / L(k,k),  j < k in both
        //   L(i,i) = sqrt(A(i,i) - Σ_j L(i,j)²)
        for i in 0..n {
            let (ri_start, ri_end) = (row_ptr[i], row_ptr[i + 1]);
            for p in ri_start..ri_end {
                let k = col_idx[p];
                if k < i {
                    // Sparse dot of L-rows i and k over columns < k.
                    let mut s = vals[p];
                    let (mut pi, mut pk) = (ri_start, row_ptr[k]);
                    let (pi_end, pk_end) = (p, row_ptr[k + 1] - 1); // exclude (k,k)
                    while pi < pi_end && pk < pk_end {
                        let (ci, ck) = (col_idx[pi], col_idx[pk]);
                        match ci.cmp(&ck) {
                            std::cmp::Ordering::Less => pi += 1,
                            std::cmp::Ordering::Greater => pk += 1,
                            std::cmp::Ordering::Equal => {
                                s -= vals[pi] * vals[pk];
                                pi += 1;
                                pk += 1;
                            }
                        }
                    }
                    let lkk = vals[row_ptr[k + 1] - 1]; // diag is last in row k
                    if lkk == 0.0 || !lkk.is_finite() {
                        return Err(PrecondError::Breakdown(k));
                    }
                    vals[p] = s / lkk;
                } else {
                    // Diagonal entry (last in the sorted lower row).
                    let mut s = vals[p];
                    for q in ri_start..p {
                        s -= vals[q] * vals[q];
                    }
                    if s <= 0.0 || !s.is_finite() {
                        return Err(PrecondError::Breakdown(i));
                    }
                    vals[p] = s.sqrt();
                }
            }
        }
        let l = Csr::from_parts(n, n, row_ptr, col_idx, vals);
        let lt = l.transpose();
        Ok(Ic0 { l, lt })
    }

    /// The lower factor `L`.
    pub fn l(&self) -> &Csr {
        &self.l
    }

    /// Forward solve `L y = b`.
    pub fn solve_lower(&self, x: &mut [f64]) {
        let n = self.l.n_rows();
        for i in 0..n {
            let (cols, vals) = self.l.row(i);
            let mut s = x[i];
            // All columns < i, then the diagonal (last).
            for (c, v) in cols.iter().zip(vals).take(cols.len() - 1) {
                s -= v * x[*c as usize];
            }
            x[i] = s / vals[cols.len() - 1];
        }
    }

    /// Backward solve `Lᵀ x = y`.
    pub fn solve_upper(&self, x: &mut [f64]) {
        let n = self.lt.n_rows();
        for i in (0..n).rev() {
            let (cols, vals) = self.lt.row(i);
            // Diagonal first (columns ≥ i in Lᵀ row i).
            let mut s = x[i];
            for (c, v) in cols.iter().zip(vals).skip(1) {
                s -= v * x[*c as usize];
            }
            x[i] = s / vals[0];
        }
    }

    /// Flops of one apply.
    pub fn solve_flops(&self) -> usize {
        4 * self.l.nnz()
    }
}

impl Preconditioner for Ic0 {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        z.copy_from_slice(r);
        self.solve_lower(z);
        self.solve_upper(z);
    }

    fn dim(&self) -> usize {
        self.l.n_rows()
    }

    fn flops_per_apply(&self) -> usize {
        self.solve_flops()
    }

    fn name(&self) -> &'static str {
        "ic0"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsemat::gen::{banded_spd, poisson2d, rhs_for_ones};
    use sparsemat::vecops::norm2;

    #[test]
    fn exact_on_tridiagonal() {
        let a = banded_spd(20, 1, 1.0, 5);
        let f = Ic0::new(&a).unwrap();
        let b = rhs_for_ones(&a);
        let mut x = b.clone();
        f.solve_lower(&mut x);
        f.solve_upper(&mut x);
        for xi in &x {
            assert!((xi - 1.0).abs() < 1e-10, "{xi}");
        }
    }

    #[test]
    fn factor_matches_full_cholesky_on_dense_pattern() {
        // A fully dense SPD pattern drops nothing: IC(0) == Cholesky.
        let d = sparsemat::Dense::from_rows(3, 3, &[4.0, 1.0, 0.5, 1.0, 3.0, 1.0, 0.5, 1.0, 2.0]);
        let mut coo = sparsemat::Coo::new(3, 3);
        for r in 0..3 {
            for c in 0..3 {
                coo.push(r, c, d[(r, c)]);
            }
        }
        let f = Ic0::new(&coo.to_csr()).unwrap();
        let chol = d.cholesky().unwrap();
        let b = vec![1.0, 2.0, 3.0];
        let mut x = b.clone();
        f.solve_lower(&mut x);
        f.solve_upper(&mut x);
        let xd = chol.solve(&b);
        for (a, b) in x.iter().zip(&xd) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn approximates_poisson() {
        let a = poisson2d(10, 10);
        let f = Ic0::new(&a).unwrap();
        let b = rhs_for_ones(&a);
        let mut z = vec![0.0; 100];
        f.apply(&b, &mut z);
        let mut r = a.mul_vec(&z);
        for (ri, bi) in r.iter_mut().zip(&b) {
            *ri -= bi;
        }
        assert!(norm2(&r) / norm2(&b) < 0.5);
    }

    #[test]
    fn rejects_indefinite() {
        let mut coo = sparsemat::Coo::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push_sym(0, 1, 2.0);
        coo.push(1, 1, 1.0);
        assert!(matches!(
            Ic0::new(&coo.to_csr()),
            Err(PrecondError::Breakdown(_))
        ));
    }
}
