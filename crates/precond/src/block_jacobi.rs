//! Block Jacobi preconditioning.
//!
//! The paper's outer-solver preconditioner (Sec. 6): block-diagonal with
//! blocks matching the node partition, *"solving the preconditioner blocks
//! exactly"*. Exact solves use [`SparseLdl`]; the approximate alternative
//! ([`Ilu0`], [`Ic0`]) is what the paper uses inside the reconstruction.
//!
//! Block boundaries need not match the node partition — misaligned blocks
//! couple across nodes, which exercises the fully general P-given
//! reconstruction path (paper Alg. 2 lines 5–6) and is one of the ablation
//! configurations.

use crate::ic::Ic0;
use crate::ilu::Ilu0;
use crate::ldl::{LdlWorkspace, SparseLdl};
use crate::traits::{PrecondError, Preconditioner};
use sparsemat::{BlockPartition, Csr};

/// Which solver inverts each diagonal block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockSolver {
    /// Exact sparse LDLᵀ (the paper's outer-solver configuration).
    ExactLdl,
    /// Zero-fill incomplete LU (the paper's reconstruction configuration).
    Ilu0,
    /// Zero-fill incomplete Cholesky.
    Ic0,
}

enum Factor {
    Ldl(SparseLdl),
    Ilu(Ilu0),
    Ic(Ic0),
}

impl Factor {
    fn solve_in_place(&self, x: &mut [f64]) {
        match self {
            Factor::Ldl(f) => f.solve_in_place(x),
            Factor::Ilu(f) => f.solve_in_place(x),
            Factor::Ic(f) => {
                f.solve_lower(x);
                f.solve_upper(x);
            }
        }
    }

    fn flops(&self) -> usize {
        match self {
            Factor::Ldl(f) => f.solve_flops(),
            Factor::Ilu(f) => f.solve_flops(),
            Factor::Ic(f) => f.solve_flops(),
        }
    }
}

/// Block-diagonal preconditioner: `M = diag(A_{B₁,B₁}, …, A_{B_k,B_k})`.
pub struct BlockJacobi {
    n: usize,
    /// Block start offsets (`blocks + 1` entries).
    starts: Vec<usize>,
    factors: Vec<Factor>,
    solver: BlockSolver,
}

impl BlockJacobi {
    /// Build with blocks equal to the ranges of `part` (the paper's
    /// node-aligned configuration).
    pub fn from_partition(
        a: &Csr,
        part: &BlockPartition,
        solver: BlockSolver,
    ) -> Result<Self, PrecondError> {
        let starts: Vec<usize> = (0..=part.nodes())
            .map(|k| {
                if k == part.nodes() {
                    part.n()
                } else {
                    part.range(k).start
                }
            })
            .collect();
        Self::from_starts(a, starts, solver)
    }

    /// Build with `blocks` equal-sized blocks (may straddle node
    /// boundaries — the misaligned ablation).
    pub fn with_blocks(a: &Csr, blocks: usize, solver: BlockSolver) -> Result<Self, PrecondError> {
        let part = BlockPartition::new(a.n_rows(), blocks);
        Self::from_partition(a, &part, solver)
    }

    fn from_starts(a: &Csr, starts: Vec<usize>, solver: BlockSolver) -> Result<Self, PrecondError> {
        if a.n_rows() != a.n_cols() {
            return Err(PrecondError::Shape(format!(
                "block jacobi needs square, got {}x{}",
                a.n_rows(),
                a.n_cols()
            )));
        }
        let n = a.n_rows();
        let mut factors = Vec::with_capacity(starts.len() - 1);
        // One scratch workspace shared across every LDLᵀ block factorization.
        let mut ws = LdlWorkspace::new();
        for w in starts.windows(2) {
            let rows: Vec<usize> = (w[0]..w[1]).collect();
            let block = a.extract(&rows, &rows);
            factors.push(match solver {
                BlockSolver::ExactLdl => Factor::Ldl(SparseLdl::factor_with(&block, &mut ws)?),
                BlockSolver::Ilu0 => Factor::Ilu(Ilu0::new(&block)?),
                BlockSolver::Ic0 => Factor::Ic(Ic0::new(&block)?),
            });
        }
        Ok(BlockJacobi {
            n,
            starts,
            factors,
            solver,
        })
    }

    /// Number of blocks.
    pub fn blocks(&self) -> usize {
        self.factors.len()
    }

    /// The configured block solver.
    pub fn solver(&self) -> BlockSolver {
        self.solver
    }

    /// Densified explicit inverse `P = M⁻¹` as a sparse matrix (dense
    /// within each block). Only sensible for small blocks; used to exercise
    /// the paper's P-given reconstruction variant.
    pub fn to_explicit_inverse(&self, a: &Csr) -> Csr {
        let mut coo = sparsemat::Coo::new(self.n, self.n);
        for (bi, w) in self.starts.windows(2).enumerate() {
            let len = w[1] - w[0];
            assert!(len <= 2048, "block too large to densify");
            // Invert by solving against unit vectors.
            let mut e = vec![0.0; len];
            for j in 0..len {
                e.iter_mut().for_each(|x| *x = 0.0);
                e[j] = 1.0;
                let mut col = e.clone();
                self.factors[bi].solve_in_place(&mut col);
                for (i, &v) in col.iter().enumerate() {
                    if v != 0.0 {
                        coo.push(w[0] + i, w[0] + j, v);
                    }
                }
            }
        }
        let _ = a; // signature kept symmetric with other constructors
        coo.to_csr()
    }
}

impl Preconditioner for BlockJacobi {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        debug_assert_eq!(r.len(), self.n);
        z.copy_from_slice(r);
        for (bi, w) in self.starts.windows(2).enumerate() {
            self.factors[bi].solve_in_place(&mut z[w[0]..w[1]]);
        }
    }

    fn dim(&self) -> usize {
        self.n
    }

    fn flops_per_apply(&self) -> usize {
        self.factors.iter().map(Factor::flops).sum()
    }

    fn name(&self) -> &'static str {
        match self.solver {
            BlockSolver::ExactLdl => "block-jacobi(ldl)",
            BlockSolver::Ilu0 => "block-jacobi(ilu0)",
            BlockSolver::Ic0 => "block-jacobi(ic0)",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsemat::gen::{poisson2d, rhs_for_ones};
    use sparsemat::vecops::{dot, norm2};

    #[test]
    fn single_block_is_exact_solve() {
        let a = poisson2d(6, 6);
        let p = BlockJacobi::with_blocks(&a, 1, BlockSolver::ExactLdl).unwrap();
        let b = rhs_for_ones(&a);
        let mut z = vec![0.0; 36];
        p.apply(&b, &mut z);
        for zi in &z {
            assert!((zi - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn multi_block_is_spd_operator() {
        let a = poisson2d(6, 6);
        let p = BlockJacobi::with_blocks(&a, 4, BlockSolver::ExactLdl).unwrap();
        assert_eq!(p.blocks(), 4);
        let x: Vec<f64> = (0..36).map(|i| ((i % 7) as f64) - 3.0).collect();
        let y: Vec<f64> = (0..36).map(|i| ((i % 5) as f64) - 2.0).collect();
        let mut mx = vec![0.0; 36];
        let mut my = vec![0.0; 36];
        p.apply(&x, &mut mx);
        p.apply(&y, &mut my);
        assert!((dot(&y, &mx) - dot(&x, &my)).abs() < 1e-10, "symmetric");
        assert!(dot(&x, &mx) > 0.0, "positive definite");
    }

    #[test]
    fn block_solvers_all_reduce_residual() {
        let a = poisson2d(8, 8);
        let b = rhs_for_ones(&a);
        for solver in [BlockSolver::ExactLdl, BlockSolver::Ilu0, BlockSolver::Ic0] {
            let p = BlockJacobi::with_blocks(&a, 4, solver).unwrap();
            let mut z = vec![0.0; 64];
            p.apply(&b, &mut z);
            let mut r = a.mul_vec(&z);
            for (ri, bi) in r.iter_mut().zip(&b) {
                *ri -= bi;
            }
            assert!(norm2(&r) / norm2(&b) < 1.0, "{solver:?}");
        }
    }

    #[test]
    fn explicit_inverse_matches_apply() {
        let a = poisson2d(4, 4);
        let p = BlockJacobi::with_blocks(&a, 2, BlockSolver::ExactLdl).unwrap();
        let pinv = p.to_explicit_inverse(&a);
        let r: Vec<f64> = (0..16).map(|i| (i as f64 * 0.9).sin()).collect();
        let mut z = vec![0.0; 16];
        p.apply(&r, &mut z);
        let z2 = pinv.mul_vec(&r);
        for (a, b) in z.iter().zip(&z2) {
            assert!((a - b).abs() < 1e-12);
        }
        // Block-diagonal structure: no coupling across the block boundary.
        assert_eq!(pinv.get(0, 8), 0.0);
    }

    #[test]
    fn partition_aligned_blocks() {
        let a = poisson2d(5, 5);
        let part = BlockPartition::new(25, 3);
        let p = BlockJacobi::from_partition(&a, &part, BlockSolver::ExactLdl).unwrap();
        assert_eq!(p.blocks(), 3);
    }
}
