//! Jacobi (diagonal) preconditioning.

use crate::traits::{PrecondError, Preconditioner};
use sparsemat::Csr;

/// `M = diag(A)`: the cheapest preconditioner, and the one whose inverse is
/// trivially available as an explicit sparse matrix (used by the P-given
/// ESR reconstruction variant, see [`crate::ExplicitPrec`]).
#[derive(Clone, Debug)]
pub struct Jacobi {
    inv_diag: Vec<f64>,
}

impl Jacobi {
    /// Build from the diagonal of `a`; fails on non-positive diagonal
    /// entries (the matrix would not be SPD).
    pub fn new(a: &Csr) -> Result<Self, PrecondError> {
        let d = a.diag();
        let mut inv_diag = Vec::with_capacity(d.len());
        for (i, &di) in d.iter().enumerate() {
            if di <= 0.0 || !di.is_finite() {
                return Err(PrecondError::Breakdown(i));
            }
            inv_diag.push(1.0 / di);
        }
        Ok(Jacobi { inv_diag })
    }

    /// The inverse diagonal entries.
    pub fn inv_diag(&self) -> &[f64] {
        &self.inv_diag
    }
}

impl Preconditioner for Jacobi {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        debug_assert_eq!(r.len(), self.inv_diag.len());
        for ((zi, ri), di) in z.iter_mut().zip(r).zip(&self.inv_diag) {
            *zi = ri * di;
        }
    }

    fn dim(&self) -> usize {
        self.inv_diag.len()
    }

    fn flops_per_apply(&self) -> usize {
        self.inv_diag.len()
    }

    fn name(&self) -> &'static str {
        "jacobi"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsemat::gen::poisson2d;

    #[test]
    fn scales_by_inverse_diagonal() {
        let a = poisson2d(3, 3); // diagonal entries are 4
        let p = Jacobi::new(&a).unwrap();
        let mut z = vec![0.0; 9];
        p.apply(&[8.0; 9], &mut z);
        assert!(z.iter().all(|&x| x == 2.0));
    }

    #[test]
    fn rejects_nonpositive_diagonal() {
        let mut coo = sparsemat::Coo::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(1, 1, -2.0);
        assert_eq!(
            Jacobi::new(&coo.to_csr()).unwrap_err(),
            PrecondError::Breakdown(1)
        );
    }

    #[test]
    fn rejects_missing_diagonal() {
        let mut coo = sparsemat::Coo::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push_sym(0, 1, 0.5); // row 1 has no diagonal entry
        assert!(Jacobi::new(&coo.to_csr()).is_err());
    }
}
