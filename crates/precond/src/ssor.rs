//! SSOR preconditioning.
//!
//! `M = ω/(2-ω) · (D/ω + L) D⁻¹ (D/ω + U)` for `A = L + D + U`. The apply
//! is one forward and one backward Gauss–Seidel-like sweep over `A`'s
//! triangles. The paper's companion work (Pachajoa et al. 2018) lists SSOR
//! among the stationary methods ESR extends to.

use crate::traits::{PrecondError, Preconditioner};
use sparsemat::Csr;

/// SSOR preconditioner with relaxation parameter `ω ∈ (0, 2)`.
#[derive(Clone, Debug)]
pub struct Ssor {
    a: Csr,
    diag: Vec<f64>,
    omega: f64,
}

impl Ssor {
    /// Build for matrix `a` and relaxation `omega` (1.0 = symmetric
    /// Gauss–Seidel).
    pub fn new(a: &Csr, omega: f64) -> Result<Self, PrecondError> {
        if a.n_rows() != a.n_cols() {
            return Err(PrecondError::Shape(format!(
                "ssor needs square, got {}x{}",
                a.n_rows(),
                a.n_cols()
            )));
        }
        if !(0.0..2.0).contains(&omega) || omega == 0.0 {
            return Err(PrecondError::Shape(format!("omega {omega} not in (0,2)")));
        }
        let diag = a.diag();
        for (i, &d) in diag.iter().enumerate() {
            if d <= 0.0 || !d.is_finite() {
                return Err(PrecondError::Breakdown(i));
            }
        }
        Ok(Ssor {
            a: a.clone(),
            diag,
            omega,
        })
    }
}

impl Preconditioner for Ssor {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        let n = self.a.n_rows();
        debug_assert_eq!(r.len(), n);
        let w = self.omega;
        // Forward sweep: (D/ω + L) y = r
        for i in 0..n {
            let (cols, vals) = self.a.row(i);
            let mut s = r[i];
            for (c, v) in cols.iter().zip(vals) {
                if *c as usize >= i {
                    break;
                }
                s -= v * z[*c as usize];
            }
            z[i] = s * w / self.diag[i];
        }
        // Scale: y ← D y · (2-ω)/ω … folded into the combined constant
        // below. Apply D/ω scaling between the sweeps:
        for i in 0..n {
            z[i] *= self.diag[i] / w;
        }
        // Backward sweep: (D/ω + U) z = y
        for i in (0..n).rev() {
            let (cols, vals) = self.a.row(i);
            let mut s = z[i];
            for (c, v) in cols.iter().zip(vals).rev() {
                if *c as usize <= i {
                    break;
                }
                s -= v * z[*c as usize];
            }
            z[i] = s * w / self.diag[i];
        }
        // Overall constant (2-ω)/ω making M symmetric positive definite.
        let k = (2.0 - w) / w;
        for zi in z.iter_mut() {
            *zi *= k;
        }
    }

    fn dim(&self) -> usize {
        self.a.n_rows()
    }

    fn flops_per_apply(&self) -> usize {
        4 * self.a.nnz() + 4 * self.a.n_rows()
    }

    fn name(&self) -> &'static str {
        "ssor"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsemat::gen::{poisson2d, rhs_for_ones};
    use sparsemat::vecops::{dot, norm2};

    #[test]
    fn apply_is_symmetric_operator() {
        // SSOR's M⁻¹ must be symmetric: xᵀ M⁻¹ y == yᵀ M⁻¹ x.
        let a = poisson2d(5, 5);
        let p = Ssor::new(&a, 1.3).unwrap();
        let x: Vec<f64> = (0..25).map(|i| (i as f64 * 0.3).sin()).collect();
        let y: Vec<f64> = (0..25).map(|i| (i as f64 * 0.7).cos()).collect();
        let mut mx = vec![0.0; 25];
        let mut my = vec![0.0; 25];
        p.apply(&x, &mut mx);
        p.apply(&y, &mut my);
        assert!((dot(&y, &mx) - dot(&x, &my)).abs() < 1e-10);
    }

    #[test]
    fn apply_is_positive_definite() {
        let a = poisson2d(4, 4);
        let p = Ssor::new(&a, 1.0).unwrap();
        let x: Vec<f64> = (0..16).map(|i| (i as f64 - 8.0) * 0.1).collect();
        let mut mx = vec![0.0; 16];
        p.apply(&x, &mut mx);
        assert!(dot(&x, &mx) > 0.0);
    }

    #[test]
    fn improves_residual() {
        let a = poisson2d(8, 8);
        let p = Ssor::new(&a, 1.0).unwrap();
        let b = rhs_for_ones(&a);
        let mut z = vec![0.0; 64];
        p.apply(&b, &mut z);
        let mut r = a.mul_vec(&z);
        for (ri, bi) in r.iter_mut().zip(&b) {
            *ri -= bi;
        }
        assert!(norm2(&r) / norm2(&b) < 1.0);
    }

    #[test]
    fn rejects_bad_omega() {
        let a = poisson2d(3, 3);
        assert!(Ssor::new(&a, 0.0).is_err());
        assert!(Ssor::new(&a, 2.0).is_err());
        assert!(Ssor::new(&a, 2.5).is_err());
        assert!(Ssor::new(&a, 1.99).is_ok());
    }
}
