//! Sparse LDLᵀ factorization — the *exact* solver for preconditioner
//! blocks and reconstruction subsystems.
//!
//! Up-looking algorithm driven by the elimination tree, in the style of
//! Davis's LDL: a symbolic pass computes the tree and column counts, the
//! numeric pass performs one sparse triangular solve per row. `A = L D Lᵀ`
//! with unit lower-triangular `L` (stored column-compressed) and positive
//! diagonal `D` for SPD input — a non-positive pivot reports
//! [`PrecondError::Breakdown`], which doubles as an SPD test.

use crate::traits::{PrecondError, Preconditioner};
use sparsemat::Csr;

/// Reusable scratch for [`SparseLdl`] factorizations.
///
/// One workspace amortizes the six O(n) scratch arrays (etree, marks,
/// column counts, dense accumulator, row pattern, insertion cursors)
/// across repeated factorizations — e.g. every block of a
/// [`crate::BlockJacobi`], or the per-recovery subsystem factors in the
/// engine. Buffers grow to the largest `n` seen and are then reused
/// without further heap traffic; [`SparseLdl::factor_with`] leaves the
/// workspace ready for the next call regardless of success or breakdown.
#[derive(Clone, Debug, Default)]
pub struct LdlWorkspace {
    parent: Vec<usize>,
    flag: Vec<usize>,
    lnz: Vec<usize>,
    y: Vec<f64>,
    pattern: Vec<usize>,
    next: Vec<usize>,
}

impl LdlWorkspace {
    /// An empty workspace; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resize-and-reset all scratch to a clean state for dimension `n`.
    /// Allocation-free once capacity has reached `n`.
    fn reset(&mut self, n: usize) {
        self.parent.clear();
        self.parent.resize(n, usize::MAX);
        self.flag.clear();
        self.flag.resize(n, usize::MAX);
        self.lnz.clear();
        self.lnz.resize(n, 0);
        self.y.clear();
        self.y.resize(n, 0.0);
        self.pattern.clear();
        self.pattern.resize(n, 0);
    }
}

/// A sparse `L D Lᵀ` factorization of an SPD matrix.
#[derive(Clone, Debug)]
pub struct SparseLdl {
    n: usize,
    /// Column pointers of L (strictly lower part, unit diagonal implicit).
    lp: Vec<usize>,
    /// Row indices per column of L (compact, like [`Csr`] columns).
    li: Vec<u32>,
    /// Values per column of L.
    lx: Vec<f64>,
    /// The diagonal D.
    d: Vec<f64>,
}

impl SparseLdl {
    /// Factor a (numerically) symmetric positive definite matrix. Only the
    /// lower triangle of `a` is read. Allocates private scratch; callers
    /// factoring many matrices should share an [`LdlWorkspace`] via
    /// [`SparseLdl::factor_with`].
    pub fn new(a: &Csr) -> Result<Self, PrecondError> {
        Self::factor_with(a, &mut LdlWorkspace::new())
    }

    /// Like [`SparseLdl::new`], but drawing all O(n) scratch from `ws` so
    /// that repeated factorizations do not touch the allocator (beyond the
    /// factor's own output arrays).
    pub fn factor_with(a: &Csr, ws: &mut LdlWorkspace) -> Result<Self, PrecondError> {
        if a.n_rows() != a.n_cols() {
            return Err(PrecondError::Shape(format!(
                "ldl needs square, got {}x{}",
                a.n_rows(),
                a.n_cols()
            )));
        }
        let n = a.n_rows();
        ws.reset(n);
        let LdlWorkspace {
            parent,
            flag,
            lnz,
            y,
            pattern,
            next,
        } = ws;

        // ---- Symbolic: elimination tree + column counts --------------
        for k in 0..n {
            flag[k] = k;
            let (cols, _) = a.row(k);
            for &i0 in cols.iter().take_while(|&&c| (c as usize) < k) {
                let mut i = i0 as usize;
                while flag[i] != k {
                    if parent[i] == usize::MAX {
                        parent[i] = k;
                    }
                    lnz[i] += 1; // L(k,i) is nonzero
                    flag[i] = k;
                    i = parent[i];
                }
            }
        }
        let mut lp = vec![0usize; n + 1];
        for i in 0..n {
            lp[i + 1] = lp[i] + lnz[i];
        }
        let nnz_l = lp[n];

        // ---- Numeric: up-looking rows ---------------------------------
        let mut li = vec![0u32; nnz_l];
        let mut lx = vec![0.0f64; nnz_l];
        let mut d = vec![0.0f64; n];
        // Insertion cursor per column; `flag` is re-marked cleanly because
        // the numeric pass uses the same never-repeating keys `k`.
        next.clear();
        next.extend_from_slice(&lp[..n]);
        flag.iter_mut().for_each(|f| *f = usize::MAX);
        for k in 0..n {
            let mut top = n;
            flag[k] = k;
            let (cols, vals) = a.row(k);
            for (&c, &v) in cols.iter().zip(vals) {
                let c = c as usize;
                if c > k {
                    break; // sorted columns: lower triangle done
                }
                y[c] += v;
                // Walk up the etree collecting the row pattern of L(k,·)
                // in topological order.
                let mut len = 0usize;
                let mut i = c;
                while flag[i] != k {
                    pattern[len] = i;
                    len += 1;
                    flag[i] = k;
                    i = parent[i];
                }
                while len > 0 {
                    len -= 1;
                    top -= 1;
                    pattern[top] = pattern[len];
                }
            }
            let mut dk = y[k];
            y[k] = 0.0;
            for s in top..n {
                let i = pattern[s];
                let yi = y[i];
                y[i] = 0.0;
                for p in lp[i]..next[i] {
                    y[li[p] as usize] -= lx[p] * yi;
                }
                let l_ki = yi / d[i];
                dk -= l_ki * yi;
                li[next[i]] = k as u32;
                lx[next[i]] = l_ki;
                next[i] += 1;
            }
            if dk <= 0.0 || !dk.is_finite() {
                // Scrub the dense accumulator so the workspace is clean
                // for the next factorization.
                y.iter_mut().for_each(|v| *v = 0.0);
                return Err(PrecondError::Breakdown(k));
            }
            d[k] = dk;
        }
        Ok(SparseLdl { n, lp, li, lx, d })
    }

    /// Solve `A x = b` exactly (forward, diagonal, backward substitution).
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = b.to_vec();
        self.solve_in_place(&mut x);
        x
    }

    /// In-place variant of [`SparseLdl::solve`].
    pub fn solve_in_place(&self, x: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        // L y = b (column-oriented forward substitution, unit diagonal).
        for j in 0..self.n {
            let xj = x[j];
            for p in self.lp[j]..self.lp[j + 1] {
                x[self.li[p] as usize] -= self.lx[p] * xj;
            }
        }
        // D z = y
        for (xi, di) in x.iter_mut().zip(&self.d) {
            *xi /= di;
        }
        // Lᵀ x = z
        for j in (0..self.n).rev() {
            let mut xj = x[j];
            for p in self.lp[j]..self.lp[j + 1] {
                xj -= self.lx[p] * x[self.li[p] as usize];
            }
            x[j] = xj;
        }
    }

    /// Nonzeros in the strictly-lower factor (fill-in diagnostics).
    pub fn l_nnz(&self) -> usize {
        self.li.len()
    }

    /// Flop count of one solve: 2 per L entry twice, plus n divisions.
    pub fn solve_flops(&self) -> usize {
        4 * self.li.len() + self.n
    }
}

impl Preconditioner for SparseLdl {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        z.copy_from_slice(r);
        self.solve_in_place(z);
    }

    fn dim(&self) -> usize {
        self.n
    }

    fn flops_per_apply(&self) -> usize {
        self.solve_flops()
    }

    fn name(&self) -> &'static str {
        "ldl-exact"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsemat::gen::{mesh_laplacian_2d, poisson2d, poisson3d, MeshOrdering};
    use sparsemat::vecops::norm2;

    fn residual(a: &Csr, x: &[f64], b: &[f64]) -> f64 {
        let mut r = a.mul_vec(x);
        for (ri, bi) in r.iter_mut().zip(b) {
            *ri -= bi;
        }
        norm2(&r) / norm2(b)
    }

    #[test]
    fn solves_poisson_exactly() {
        let a = poisson2d(8, 8);
        let f = SparseLdl::new(&a).unwrap();
        let x_true: Vec<f64> = (0..64).map(|i| (i as f64 * 0.37).sin()).collect();
        let b = a.mul_vec(&x_true);
        let x = f.solve(&b);
        assert!(residual(&a, &x, &b) < 1e-12);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-9);
        }
    }

    #[test]
    fn solves_3d_and_unstructured() {
        for a in [
            poisson3d(5, 5, 5),
            mesh_laplacian_2d(9, 9, MeshOrdering::Random, 3),
        ] {
            let f = SparseLdl::new(&a).unwrap();
            let b = sparsemat::gen::rhs_for_ones(&a);
            let x = f.solve(&b);
            for xi in &x {
                assert!((xi - 1.0).abs() < 1e-8, "x={xi}");
            }
        }
    }

    #[test]
    fn matches_dense_cholesky() {
        let a = poisson2d(5, 5);
        let f = SparseLdl::new(&a).unwrap();
        let dense = a.to_dense().cholesky().unwrap();
        let b: Vec<f64> = (0..25).map(|i| (i as f64).cos()).collect();
        let xs = f.solve(&b);
        let xd = dense.solve(&b);
        for (s, d) in xs.iter().zip(&xd) {
            assert!((s - d).abs() < 1e-10);
        }
    }

    #[test]
    fn rejects_indefinite() {
        let mut coo = sparsemat::Coo::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push_sym(0, 1, 2.0);
        coo.push(1, 1, 1.0);
        let a = coo.to_csr(); // eigenvalues 3, -1
        assert!(matches!(
            SparseLdl::new(&a),
            Err(PrecondError::Breakdown(_))
        ));
    }

    #[test]
    fn diagonal_matrix_has_empty_l() {
        let a = Csr::identity(6);
        let f = SparseLdl::new(&a).unwrap();
        assert_eq!(f.l_nnz(), 0);
        assert_eq!(f.solve(&[3.0; 6]), vec![3.0; 6]);
    }

    #[test]
    fn preconditioner_interface() {
        let a = poisson2d(4, 4);
        let f = SparseLdl::new(&a).unwrap();
        let b = sparsemat::gen::rhs_for_ones(&a);
        let mut z = vec![0.0; 16];
        f.apply(&b, &mut z);
        for zi in &z {
            assert!((zi - 1.0).abs() < 1e-10);
        }
        assert!(f.flops_per_apply() > 0);
    }
}
