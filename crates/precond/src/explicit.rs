//! Preconditioners given as an explicit sparse matrix `P = M⁻¹`.
//!
//! The paper's reconstruction Alg. 2 assumes *"a preconditioner P := M⁻¹ is
//! given"* and reads rows of `P` directly (`P_{If,I\If}`, `P_{If,If}`).
//! [`ExplicitPrec`] is that representation: applying it is one SpMV, and
//! the reconstruction can extract arbitrary row/column sections.

use crate::traits::{PrecondError, Preconditioner};
use sparsemat::Csr;

/// A preconditioner available as an explicit sparse matrix.
#[derive(Clone, Debug)]
pub struct ExplicitPrec {
    p: Csr,
}

impl ExplicitPrec {
    /// Wrap an explicit `P = M⁻¹` (must be square and SPD; symmetry is
    /// checked, definiteness is the caller's responsibility).
    pub fn new(p: Csr) -> Result<Self, PrecondError> {
        if p.n_rows() != p.n_cols() {
            return Err(PrecondError::Shape(format!(
                "explicit P must be square, got {}x{}",
                p.n_rows(),
                p.n_cols()
            )));
        }
        if !p.is_symmetric(1e-12) {
            return Err(PrecondError::Shape(
                "explicit P must be symmetric".to_string(),
            ));
        }
        Ok(ExplicitPrec { p })
    }

    /// From Jacobi: `P = diag(A)⁻¹` as an explicit matrix.
    pub fn jacobi_of(a: &Csr) -> Result<Self, PrecondError> {
        let d = a.diag();
        let mut coo = sparsemat::Coo::new(a.n_rows(), a.n_rows());
        for (i, &di) in d.iter().enumerate() {
            if di <= 0.0 || !di.is_finite() {
                return Err(PrecondError::Breakdown(i));
            }
            coo.push(i, i, 1.0 / di);
        }
        ExplicitPrec::new(coo.to_csr())
    }

    /// The underlying matrix.
    pub fn matrix(&self) -> &Csr {
        &self.p
    }
}

impl Preconditioner for ExplicitPrec {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        self.p.spmv(r, z);
    }

    fn dim(&self) -> usize {
        self.p.n_rows()
    }

    fn flops_per_apply(&self) -> usize {
        self.p.spmv_flops()
    }

    fn name(&self) -> &'static str {
        "explicit-P"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jacobi::Jacobi;
    use sparsemat::gen::poisson2d;

    #[test]
    fn jacobi_of_matches_jacobi_apply() {
        let a = poisson2d(4, 4);
        let pe = ExplicitPrec::jacobi_of(&a).unwrap();
        let pj = Jacobi::new(&a).unwrap();
        let r: Vec<f64> = (0..16).map(|i| i as f64 - 8.0).collect();
        let mut z1 = vec![0.0; 16];
        let mut z2 = vec![0.0; 16];
        pe.apply(&r, &mut z1);
        pj.apply(&r, &mut z2);
        assert_eq!(z1, z2);
    }

    #[test]
    fn rejects_asymmetric() {
        let mut coo = sparsemat::Coo::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(0, 1, 0.5);
        coo.push(1, 1, 1.0);
        assert!(ExplicitPrec::new(coo.to_csr()).is_err());
    }

    #[test]
    fn exposes_matrix_sections() {
        let a = poisson2d(4, 4);
        let pe = ExplicitPrec::jacobi_of(&a).unwrap();
        let sub = pe.matrix().extract(&[0, 1], &[0, 1]);
        assert_eq!(sub.nnz(), 2);
    }
}
