//! The preconditioner interface.

/// Errors during preconditioner construction.
#[derive(Debug, Clone, PartialEq)]
pub enum PrecondError {
    /// A pivot became non-positive (matrix not SPD, or incomplete
    /// factorization breakdown); payload is the failing row/column.
    Breakdown(usize),
    /// The matrix shape does not fit the preconditioner's requirements.
    Shape(String),
}

impl std::fmt::Display for PrecondError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrecondError::Breakdown(i) => {
                write!(f, "factorization breakdown at pivot {i}")
            }
            PrecondError::Shape(m) => write!(f, "shape error: {m}"),
        }
    }
}

impl std::error::Error for PrecondError {}

/// A preconditioner application `z ≈ M⁻¹ r` (the paper's `P = M⁻¹`).
///
/// Implementations must be deterministic: the ESR reconstruction replays
/// preconditioner applications and compares states across runs.
pub trait Preconditioner: Send + Sync {
    /// Apply: `z ← M⁻¹ r`. `r` and `z` have the preconditioner's dimension.
    fn apply(&self, r: &[f64], z: &mut [f64]);

    /// Dimension n of the preconditioned operator.
    fn dim(&self) -> usize;

    /// Approximate flop count of one application (virtual-clock accounting).
    fn flops_per_apply(&self) -> usize;

    /// Short display name for reports.
    fn name(&self) -> &'static str;
}

/// The identity preconditioner (plain CG).
#[derive(Clone, Debug)]
pub struct Identity {
    n: usize,
}

impl Identity {
    /// Identity of dimension `n`.
    pub fn new(n: usize) -> Self {
        Identity { n }
    }
}

impl Preconditioner for Identity {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        debug_assert_eq!(r.len(), self.n);
        z.copy_from_slice(r);
    }

    fn dim(&self) -> usize {
        self.n
    }

    fn flops_per_apply(&self) -> usize {
        0
    }

    fn name(&self) -> &'static str {
        "identity"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_copies() {
        let p = Identity::new(3);
        let mut z = vec![0.0; 3];
        p.apply(&[1.0, 2.0, 3.0], &mut z);
        assert_eq!(z, vec![1.0, 2.0, 3.0]);
        assert_eq!(p.dim(), 3);
        assert_eq!(p.flops_per_apply(), 0);
    }

    #[test]
    fn errors_display() {
        let e = PrecondError::Breakdown(5);
        assert!(e.to_string().contains("pivot 5"));
    }
}
