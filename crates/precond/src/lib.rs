//! # precond — preconditioners and local factorizations
//!
//! The paper's solver setup (Sec. 6): *"We use a block Jacobi as a
//! preconditioner during the regular operation of the solver, solving the
//! preconditioner blocks exactly"*, and *"an approximate solver based on ILU
//! factorization for the blocks"* inside the reconstruction. This crate
//! provides those pieces and the standard alternatives the ESR literature
//! distinguishes (Jacobi, SSOR, split preconditioners):
//!
//! * [`Preconditioner`] — the apply-interface `z ≈ M⁻¹ r`;
//! * [`Jacobi`] — diagonal scaling;
//! * [`BlockJacobi`] — block-diagonal solves with exact sparse LDLᵀ or
//!   approximate ILU(0)/IC(0) per block;
//! * [`SparseLdl`] — an up-looking sparse LDLᵀ factorization (elimination
//!   tree based, in the style of Davis's LDL) for *exact* block solves;
//! * [`Ilu0`] / [`Ic0`] — zero-fill incomplete LU / Cholesky;
//! * [`Ssor`] — symmetric successive overrelaxation;
//! * [`ExplicitPrec`] — a preconditioner *given as an explicit sparse
//!   matrix* `P = M⁻¹`, the form assumed by the paper's Alg. 2.

// Indexed loops over several parallel arrays are the clearest form for
// the numeric kernels in this crate; iterator-zip pyramids obscure the math.
#![allow(clippy::needless_range_loop)]

pub mod block_jacobi;
pub mod explicit;
pub mod ic;
pub mod ilu;
pub mod jacobi;
pub mod ldl;
pub mod ssor;
pub mod traits;

pub use block_jacobi::{BlockJacobi, BlockSolver};
pub use explicit::ExplicitPrec;
pub use ic::Ic0;
pub use ilu::Ilu0;
pub use jacobi::Jacobi;
pub use ldl::{LdlWorkspace, SparseLdl};
pub use ssor::Ssor;
pub use traits::{Identity, PrecondError, Preconditioner};
