//! ILU(0): incomplete LU factorization with zero fill-in.
//!
//! The paper uses "an approximate solver based on ILU factorization for the
//! blocks" inside the reconstruction's inner CG solver (Sec. 6). ILU(0)
//! keeps exactly the sparsity pattern of `A`: the classic IKJ update
//! restricted to existing entries.

use crate::traits::{PrecondError, Preconditioner};
use sparsemat::Csr;

/// Zero-fill incomplete LU. `L` is unit lower triangular, `U` upper; both
/// share `A`'s pattern and are stored in one CSR value array.
#[derive(Clone, Debug)]
pub struct Ilu0 {
    /// Factored values on A's pattern: strictly-lower part holds L,
    /// diagonal + upper part holds U.
    factors: Csr,
    /// Position of the diagonal entry within each row.
    diag_pos: Vec<usize>,
}

impl Ilu0 {
    /// Factor `a`. Fails on a zero/non-finite pivot or missing diagonal.
    pub fn new(a: &Csr) -> Result<Self, PrecondError> {
        if a.n_rows() != a.n_cols() {
            return Err(PrecondError::Shape(format!(
                "ilu0 needs square, got {}x{}",
                a.n_rows(),
                a.n_cols()
            )));
        }
        let n = a.n_rows();
        let mut f = a.clone();
        let row_ptr = f.row_ptr().to_vec();
        let col_idx: Vec<usize> = f.col_idx().iter().map(|&c| c as usize).collect();

        // Locate diagonals up front.
        let mut diag_pos = vec![usize::MAX; n];
        for r in 0..n {
            for p in row_ptr[r]..row_ptr[r + 1] {
                if col_idx[p] == r {
                    diag_pos[r] = p;
                    break;
                }
            }
            if diag_pos[r] == usize::MAX {
                return Err(PrecondError::Breakdown(r));
            }
        }

        // Column-position lookup for the current row i.
        let mut pos_of_col = vec![usize::MAX; n];
        let vals = f.vals_mut();
        for i in 0..n {
            let row_i = row_ptr[i]..row_ptr[i + 1];
            for p in row_i.clone() {
                pos_of_col[col_idx[p]] = p;
            }
            // Eliminate with all rows k < i present in row i's pattern.
            for p_ik in row_i.clone() {
                let k = col_idx[p_ik];
                if k >= i {
                    break;
                }
                let ukk = vals[diag_pos[k]];
                if ukk == 0.0 || !ukk.is_finite() {
                    return Err(PrecondError::Breakdown(k));
                }
                let l_ik = vals[p_ik] / ukk;
                vals[p_ik] = l_ik;
                // Row i -= l_ik * (row k restricted to columns > k ∩ pattern).
                for p_kj in diag_pos[k] + 1..row_ptr[k + 1] {
                    let j = col_idx[p_kj];
                    let p_ij = pos_of_col[j];
                    if p_ij != usize::MAX {
                        vals[p_ij] -= l_ik * vals[p_kj];
                    }
                }
            }
            let uii = vals[diag_pos[i]];
            if uii == 0.0 || !uii.is_finite() {
                return Err(PrecondError::Breakdown(i));
            }
            for p in row_i {
                pos_of_col[col_idx[p]] = usize::MAX;
            }
        }
        Ok(Ilu0 {
            factors: f,
            diag_pos,
        })
    }

    /// Solve `L U x = b` approximately inverting `A`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = b.to_vec();
        self.solve_in_place(&mut x);
        x
    }

    /// In-place forward (unit-L) then backward (U) substitution.
    pub fn solve_in_place(&self, x: &mut [f64]) {
        let n = self.factors.n_rows();
        assert_eq!(x.len(), n);
        let row_ptr = self.factors.row_ptr();
        let col_idx = self.factors.col_idx();
        let vals = self.factors.vals();
        // L y = b (unit diagonal; strictly-lower entries).
        for i in 0..n {
            let mut s = x[i];
            for p in row_ptr[i]..self.diag_pos[i] {
                s -= vals[p] * x[col_idx[p] as usize];
            }
            x[i] = s;
        }
        // U x = y.
        for i in (0..n).rev() {
            let mut s = x[i];
            for p in self.diag_pos[i] + 1..row_ptr[i + 1] {
                s -= vals[p] * x[col_idx[p] as usize];
            }
            x[i] = s / vals[self.diag_pos[i]];
        }
    }

    /// Flops of one solve (2 per stored entry + n divisions).
    pub fn solve_flops(&self) -> usize {
        2 * self.factors.nnz() + self.factors.n_rows()
    }
}

impl Preconditioner for Ilu0 {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        z.copy_from_slice(r);
        self.solve_in_place(z);
    }

    fn dim(&self) -> usize {
        self.factors.n_rows()
    }

    fn flops_per_apply(&self) -> usize {
        self.solve_flops()
    }

    fn name(&self) -> &'static str {
        "ilu0"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsemat::gen::{poisson2d, rhs_for_ones};
    use sparsemat::vecops::norm2;

    #[test]
    fn exact_on_triangular_pattern() {
        // For a tridiagonal matrix ILU(0) has no dropped fill: it is exact.
        let a = sparsemat::gen::banded_spd(20, 1, 1.0, 5);
        let f = Ilu0::new(&a).unwrap();
        let b = rhs_for_ones(&a);
        let x = f.solve(&b);
        for xi in &x {
            assert!((xi - 1.0).abs() < 1e-10, "{xi}");
        }
    }

    #[test]
    fn approximates_poisson_inverse() {
        let a = poisson2d(10, 10);
        let f = Ilu0::new(&a).unwrap();
        let b = rhs_for_ones(&a);
        let x = f.solve(&b);
        // Not exact (fill dropped), but a good approximation: the
        // preconditioned residual must shrink substantially.
        let mut r = a.mul_vec(&x);
        for (ri, bi) in r.iter_mut().zip(&b) {
            *ri -= bi;
        }
        assert!(norm2(&r) / norm2(&b) < 0.5);
    }

    #[test]
    fn missing_diagonal_is_breakdown() {
        let mut coo = sparsemat::Coo::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push_sym(0, 1, 0.5);
        assert!(matches!(
            Ilu0::new(&coo.to_csr()),
            Err(PrecondError::Breakdown(1))
        ));
    }

    #[test]
    fn nonsquare_rejected() {
        let mut coo = sparsemat::Coo::new(2, 3);
        coo.push(0, 0, 1.0);
        assert!(matches!(
            Ilu0::new(&coo.to_csr()),
            Err(PrecondError::Shape(_))
        ));
    }

    #[test]
    fn preconditioner_reduces_cg_iterations_proxy() {
        // Weak sanity check that apply() actually approximates A^{-1}:
        // ‖I - (LU)^{-1}A‖ should contract a random vector.
        let a = poisson2d(6, 6);
        let f = Ilu0::new(&a).unwrap();
        let v: Vec<f64> = (0..36).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let av = a.mul_vec(&v);
        let mut z = vec![0.0; 36];
        f.apply(&av, &mut z);
        let diff: f64 = v
            .iter()
            .zip(&z)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(diff / norm2(&v) < 0.5, "rel err {}", diff / norm2(&v));
    }
}
