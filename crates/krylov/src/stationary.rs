//! Stationary iterative methods: Jacobi, Gauss–Seidel, SOR, SSOR.
//!
//! Chen's original ESR paper covers these methods (the iterate `x` itself is
//! the communicated vector), and the paper's Sec. 1 lists them among the
//! algorithms its multi-failure extension applies to. The sequential
//! versions here are references for the ESR-protected distributed Jacobi
//! iteration in `esr-core`.

use crate::report::{SolveReport, StopReason};
use sparsemat::vecops::norm2;
use sparsemat::Csr;

/// Alias: stationary solvers produce the same report type.
pub type StationaryReport = SolveReport;

fn true_residual(a: &Csr, x: &[f64], b: &[f64], r: &mut [f64]) -> f64 {
    a.spmv(x, r);
    for (ri, bi) in r.iter_mut().zip(b) {
        *ri = bi - *ri;
    }
    norm2(r)
}

fn run_sweeps(
    a: &Csr,
    b: &[f64],
    x0: &[f64],
    rel_tol: f64,
    max_iter: usize,
    mut sweep: impl FnMut(&Csr, &[f64], &mut Vec<f64>),
) -> SolveReport {
    let n = a.n_rows();
    let mut x = x0.to_vec();
    let mut r = vec![0.0; n];
    let r0_norm = true_residual(a, &x, b, &mut r);
    let target = rel_tol * r0_norm;
    let mut history = vec![r0_norm];
    if r0_norm <= f64::MIN_POSITIVE {
        return SolveReport {
            x,
            iterations: 0,
            residual_norm: r0_norm,
            initial_residual_norm: r0_norm,
            stop: StopReason::Converged,
            history,
        };
    }
    for j in 0..max_iter {
        sweep(a, b, &mut x);
        let rnorm = true_residual(a, &x, b, &mut r);
        history.push(rnorm);
        if !rnorm.is_finite() {
            return SolveReport {
                x,
                iterations: j + 1,
                residual_norm: rnorm,
                initial_residual_norm: r0_norm,
                stop: StopReason::Breakdown,
                history,
            };
        }
        if rnorm <= target {
            return SolveReport {
                x,
                iterations: j + 1,
                residual_norm: rnorm,
                initial_residual_norm: r0_norm,
                stop: StopReason::Converged,
                history,
            };
        }
    }
    let residual_norm = *history.last().unwrap();
    SolveReport {
        x,
        iterations: max_iter,
        residual_norm,
        initial_residual_norm: r0_norm,
        stop: StopReason::MaxIterations,
        history,
    }
}

/// Jacobi iteration: `x ← x + D⁻¹ (b - A x)`.
pub fn jacobi_iter(a: &Csr, b: &[f64], x0: &[f64], rel_tol: f64, max_iter: usize) -> SolveReport {
    let diag = a.diag();
    let mut xnew = vec![0.0; a.n_rows()];
    run_sweeps(a, b, x0, rel_tol, max_iter, move |a, b, x| {
        for i in 0..a.n_rows() {
            let (cols, vals) = a.row(i);
            let mut s = b[i];
            for (c, v) in cols.iter().zip(vals) {
                if *c as usize != i {
                    s -= v * x[*c as usize];
                }
            }
            xnew[i] = s / diag[i];
        }
        x.copy_from_slice(&xnew);
    })
}

/// SOR iteration with relaxation `omega` (`omega = 1` is Gauss–Seidel).
pub fn sor(
    a: &Csr,
    b: &[f64],
    x0: &[f64],
    omega: f64,
    rel_tol: f64,
    max_iter: usize,
) -> SolveReport {
    assert!(omega > 0.0 && omega < 2.0, "omega must be in (0,2)");
    let diag = a.diag();
    run_sweeps(a, b, x0, rel_tol, max_iter, move |a, b, x| {
        for i in 0..a.n_rows() {
            let (cols, vals) = a.row(i);
            let mut s = b[i];
            for (c, v) in cols.iter().zip(vals) {
                if *c as usize != i {
                    s -= v * x[*c as usize];
                }
            }
            x[i] = (1.0 - omega) * x[i] + omega * s / diag[i];
        }
    })
}

/// Gauss–Seidel iteration (SOR with `omega = 1`).
pub fn gauss_seidel(a: &Csr, b: &[f64], x0: &[f64], rel_tol: f64, max_iter: usize) -> SolveReport {
    sor(a, b, x0, 1.0, rel_tol, max_iter)
}

/// SSOR iteration: a forward then a backward SOR sweep per iteration.
pub fn ssor_iter(
    a: &Csr,
    b: &[f64],
    x0: &[f64],
    omega: f64,
    rel_tol: f64,
    max_iter: usize,
) -> SolveReport {
    assert!(omega > 0.0 && omega < 2.0, "omega must be in (0,2)");
    let diag = a.diag();
    run_sweeps(a, b, x0, rel_tol, max_iter, move |a, b, x| {
        for i in 0..a.n_rows() {
            let (cols, vals) = a.row(i);
            let mut s = b[i];
            for (c, v) in cols.iter().zip(vals) {
                if *c as usize != i {
                    s -= v * x[*c as usize];
                }
            }
            x[i] = (1.0 - omega) * x[i] + omega * s / diag[i];
        }
        for i in (0..a.n_rows()).rev() {
            let (cols, vals) = a.row(i);
            let mut s = b[i];
            for (c, v) in cols.iter().zip(vals) {
                if *c as usize != i {
                    s -= v * x[*c as usize];
                }
            }
            x[i] = (1.0 - omega) * x[i] + omega * s / diag[i];
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsemat::gen::{poisson2d, rhs_for_ones};

    fn check(rep: &SolveReport, tol: f64) {
        assert!(rep.converged(), "stop={:?}", rep.stop);
        for xi in &rep.x {
            assert!((xi - 1.0).abs() < tol, "{xi}");
        }
    }

    #[test]
    fn jacobi_converges_on_dd_system() {
        let a = poisson2d(6, 6);
        let b = rhs_for_ones(&a);
        let rep = jacobi_iter(&a, &b, &vec![0.0; 36], 1e-8, 10_000);
        check(&rep, 1e-5);
    }

    #[test]
    fn gauss_seidel_beats_jacobi() {
        let a = poisson2d(6, 6);
        let b = rhs_for_ones(&a);
        let j = jacobi_iter(&a, &b, &vec![0.0; 36], 1e-8, 10_000);
        let gs = gauss_seidel(&a, &b, &vec![0.0; 36], 1e-8, 10_000);
        assert!(gs.converged() && j.converged());
        assert!(gs.iterations < j.iterations);
    }

    #[test]
    fn sor_with_good_omega_beats_gs() {
        let a = poisson2d(10, 10);
        let b = rhs_for_ones(&a);
        let gs = gauss_seidel(&a, &b, &vec![0.0; 100], 1e-8, 20_000);
        // ω_opt ≈ 2/(1+sin(π/(n+1))) ≈ 1.56 for a 10×10 grid.
        let s = sor(&a, &b, &vec![0.0; 100], 1.56, 1e-8, 20_000);
        assert!(s.converged());
        assert!(s.iterations < gs.iterations);
    }

    #[test]
    fn ssor_converges() {
        let a = poisson2d(6, 6);
        let b = rhs_for_ones(&a);
        let rep = ssor_iter(&a, &b, &vec![0.0; 36], 1.2, 1e-8, 10_000);
        check(&rep, 1e-5);
    }

    #[test]
    fn history_tracks_sweeps() {
        let a = poisson2d(4, 4);
        let b = rhs_for_ones(&a);
        let rep = gauss_seidel(&a, &b, &[0.0; 16], 1e-6, 1000);
        assert_eq!(rep.history.len(), rep.iterations + 1);
    }
}
