//! Split-preconditioned conjugate gradient (SPCG).
//!
//! With a split preconditioner `M = L Lᵀ`, CG runs on the symmetrically
//! preconditioned system `L⁻¹ A L⁻ᵀ u = L⁻¹ b`, `x = L⁻ᵀ u`. The companion
//! work to the paper (Pachajoa et al. 2018, Alg. 5) gives the ESR
//! reconstruction for exactly this variant; the sequential solver here is
//! its reference implementation.

use crate::report::{SolveReport, StopReason};
use precond::Ic0;
use sparsemat::vecops::{axpy, dot, norm2};
use sparsemat::Csr;

/// A split preconditioner `M = L Lᵀ` exposed through its triangular solves.
pub trait SplitFactor: Send + Sync {
    /// `x ← L⁻¹ x`.
    fn forward(&self, x: &mut [f64]);
    /// `x ← L⁻ᵀ x`.
    fn backward(&self, x: &mut [f64]);
}

impl SplitFactor for Ic0 {
    fn forward(&self, x: &mut [f64]) {
        self.solve_lower(x);
    }

    fn backward(&self, x: &mut [f64]) {
        self.solve_upper(x);
    }
}

/// Split Jacobi: `L = √D` (for tests and as the cheapest split variant).
#[derive(Clone, Debug)]
pub struct SplitJacobi {
    sqrt_diag: Vec<f64>,
}

impl SplitJacobi {
    /// Build from the diagonal of `a`.
    pub fn new(a: &Csr) -> Self {
        SplitJacobi {
            sqrt_diag: a.diag().iter().map(|d| d.sqrt()).collect(),
        }
    }
}

impl SplitFactor for SplitJacobi {
    fn forward(&self, x: &mut [f64]) {
        for (xi, d) in x.iter_mut().zip(&self.sqrt_diag) {
            *xi /= d;
        }
    }

    fn backward(&self, x: &mut [f64]) {
        for (xi, d) in x.iter_mut().zip(&self.sqrt_diag) {
            *xi /= d;
        }
    }
}

/// Solve `A x = b` with split-preconditioned CG; `l` provides the
/// triangular solves of `M = L Lᵀ`.
pub fn spcg(
    a: &Csr,
    b: &[f64],
    x0: &[f64],
    l: &dyn SplitFactor,
    rel_tol: f64,
    max_iter: usize,
) -> SolveReport {
    let n = a.n_rows();
    let mut x = x0.to_vec();
    // r = b - A x ; r̂ = L⁻¹ r
    let mut r = b.to_vec();
    let ax = a.mul_vec(&x);
    for (ri, axi) in r.iter_mut().zip(&ax) {
        *ri -= axi;
    }
    let r0_norm = norm2(&r);
    let target = rel_tol * r0_norm;
    let mut history = vec![r0_norm];
    if r0_norm <= f64::MIN_POSITIVE {
        return SolveReport {
            x,
            iterations: 0,
            residual_norm: r0_norm,
            initial_residual_norm: r0_norm,
            stop: StopReason::Converged,
            history,
        };
    }

    let mut rhat = r.clone();
    l.forward(&mut rhat);
    // p = L⁻ᵀ r̂
    let mut p = rhat.clone();
    l.backward(&mut p);
    let mut rho = dot(&rhat, &rhat);
    let mut ap = vec![0.0; n];

    for j in 0..max_iter {
        a.spmv(&p, &mut ap);
        let pap = dot(&p, &ap);
        if pap <= 0.0 || !pap.is_finite() {
            return SolveReport {
                x,
                iterations: j,
                residual_norm: norm2(&r),
                initial_residual_norm: r0_norm,
                stop: StopReason::Breakdown,
                history,
            };
        }
        let alpha = rho / pap;
        axpy(alpha, &p, &mut x);
        axpy(-alpha, &ap, &mut r);
        let rnorm = norm2(&r);
        history.push(rnorm);
        if rnorm <= target {
            return SolveReport {
                x,
                iterations: j + 1,
                residual_norm: rnorm,
                initial_residual_norm: r0_norm,
                stop: StopReason::Converged,
                history,
            };
        }
        rhat.copy_from_slice(&r);
        l.forward(&mut rhat);
        let rho_next = dot(&rhat, &rhat);
        let beta = rho_next / rho;
        rho = rho_next;
        // p = L⁻ᵀ r̂ + β p
        let mut z = rhat.clone();
        l.backward(&mut z);
        for (pi, zi) in p.iter_mut().zip(&z) {
            *pi = zi + beta * *pi;
        }
    }
    SolveReport {
        x,
        iterations: max_iter,
        residual_norm: norm2(&r),
        initial_residual_norm: r0_norm,
        stop: StopReason::MaxIterations,
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cg::{cg, pcg};
    use precond::Jacobi;
    use sparsemat::gen::{poisson2d, random_rhs};

    #[test]
    fn spcg_with_ic0_solves() {
        let a = poisson2d(12, 12);
        let b = random_rhs(144, 4);
        let ic = Ic0::new(&a).unwrap();
        let rep = spcg(&a, &b, &vec![0.0; 144], &ic, 1e-9, 2000);
        assert!(rep.converged());
        let mut r = a.mul_vec(&rep.x);
        for (ri, bi) in r.iter_mut().zip(&b) {
            *ri -= bi;
        }
        assert!(norm2(&r) / norm2(&b) < 1e-7);
    }

    #[test]
    fn split_jacobi_matches_jacobi_pcg_iterations() {
        // Split Jacobi and plain Jacobi PCG produce identical Krylov
        // sequences in exact arithmetic; iteration counts must agree.
        let a = poisson2d(10, 10);
        let b = random_rhs(100, 8);
        let sj = SplitJacobi::new(&a);
        let rep_split = spcg(&a, &b, &vec![0.0; 100], &sj, 1e-8, 2000);
        let jac = Jacobi::new(&a).unwrap();
        let rep_pcg = pcg(&a, &b, &vec![0.0; 100], &jac, 1e-8, 2000);
        assert!(rep_split.converged() && rep_pcg.converged());
        assert!(
            rep_split.iterations.abs_diff(rep_pcg.iterations) <= 1,
            "split {} vs pcg {}",
            rep_split.iterations,
            rep_pcg.iterations
        );
    }

    #[test]
    fn ic0_split_beats_plain_cg() {
        let a = poisson2d(16, 16);
        let b = random_rhs(256, 2);
        let ic = Ic0::new(&a).unwrap();
        let rep = spcg(&a, &b, &vec![0.0; 256], &ic, 1e-8, 5000);
        let plain = cg(&a, &b, &vec![0.0; 256], 1e-8, 5000);
        assert!(rep.iterations < plain.iterations);
    }
}
