//! Pipelined (communication-hiding) preconditioned conjugate gradient —
//! the Ghysels–Vanroose recurrence form used by Levonyak, Pacher &
//! Gansterer (arXiv:1912.09230) as the basis of their resilient
//! communication-hiding PCG.
//!
//! Standard PCG needs two dependent global reductions per iteration, each
//! on the critical path. The pipelined form fuses them into **one**
//! reduction of `(γ = rᵀu, δ = wᵀu, ‖r‖²)` and restructures the
//! recurrences so that the SpMV and the preconditioner application are
//! *independent* of the reduction result — a distributed implementation
//! overlaps them with the reduction (see `esr_core::pipecg`). The price is
//! four auxiliary vectors tied by the invariants
//!
//! ```text
//! u = M⁻¹ r,   w = A u,   s = A p,   q = M⁻¹ s,   z = A q,
//! ```
//!
//! which also underlie the ESR reconstruction of the distributed version:
//! every auxiliary vector is recomputable from `u` and `p` alone.
//!
//! This sequential version is the numerical reference: it performs the
//! exact same floating-point recurrences as the distributed solver, so the
//! two can be validated against each other.

use crate::report::{SolveReport, StopReason};
use precond::Preconditioner;
use sparsemat::vecops::{axpy, dot, norm2, xpay};
use sparsemat::Csr;

/// Solve `A x = b` with pipelined PCG. Stops when
/// `‖r‖₂ ≤ rel_tol · ‖b - A x₀‖₂` (recurrence residual, evaluated at the
/// top of each iteration) or after `max_iter` iterations.
pub fn pipecg(
    a: &Csr,
    b: &[f64],
    x0: &[f64],
    m: &dyn Preconditioner,
    rel_tol: f64,
    max_iter: usize,
) -> SolveReport {
    let n = a.n_rows();
    assert_eq!(b.len(), n);
    assert_eq!(x0.len(), n);
    assert_eq!(m.dim(), n);

    let mut x = x0.to_vec();
    // r(0) = b − A x(0); u(0) = M⁻¹ r(0); w(0) = A u(0).
    let mut r = b.to_vec();
    let ax = a.mul_vec(&x);
    for (ri, axi) in r.iter_mut().zip(&ax) {
        *ri -= axi;
    }
    let mut u = vec![0.0; n];
    m.apply(&r, &mut u);
    let mut w = a.mul_vec(&u);

    let r0_norm = norm2(&r);
    let target = rel_tol * r0_norm;
    let mut history = vec![r0_norm];
    if r0_norm <= f64::MIN_POSITIVE {
        return SolveReport {
            x,
            iterations: 0,
            residual_norm: r0_norm,
            initial_residual_norm: r0_norm,
            stop: StopReason::Converged,
            history,
        };
    }

    let mut z = vec![0.0; n]; // z(j) = A q(j)
    let mut q = vec![0.0; n]; // q(j) = M⁻¹ s(j)
    let mut s = vec![0.0; n]; // s(j) = A p(j)
    let mut p = vec![0.0; n];
    let mut mbuf = vec![0.0; n]; // m(j) = M⁻¹ w(j)
    let mut nbuf = vec![0.0; n]; // n(j) = A m(j)
    let mut gamma_prev = 0.0f64;
    let mut alpha_prev = 0.0f64;
    let mut iterations = 0usize;

    loop {
        // The fused reduction values of iteration j; in the distributed
        // version these travel in ONE overlapped all-reduce.
        let rnorm = norm2(&r);
        if iterations > 0 {
            history.push(rnorm);
        }
        if rnorm <= target {
            return SolveReport {
                x,
                iterations,
                residual_norm: rnorm,
                initial_residual_norm: r0_norm,
                stop: StopReason::Converged,
                history,
            };
        }
        if iterations == max_iter {
            return SolveReport {
                x,
                iterations,
                residual_norm: rnorm,
                initial_residual_norm: r0_norm,
                stop: StopReason::MaxIterations,
                history,
            };
        }
        let gamma = dot(&r, &u);
        let delta = dot(&w, &u);

        // Independent of the reduction: m(j) = M⁻¹ w(j), n(j) = A m(j) —
        // this is the work a distributed solver hides the reduction behind.
        m.apply(&w, &mut mbuf);
        a.spmv(&mbuf, &mut nbuf);

        let alpha;
        if iterations == 0 {
            if delta <= 0.0 || !delta.is_finite() {
                return breakdown(x, iterations, rnorm, r0_norm, history);
            }
            alpha = gamma / delta;
            z.copy_from_slice(&nbuf);
            q.copy_from_slice(&mbuf);
            s.copy_from_slice(&w);
            p.copy_from_slice(&u);
        } else {
            let beta = gamma / gamma_prev;
            // In exact arithmetic δ − β γ / α(j-1) = pᵀA p.
            let denom = delta - beta * gamma / alpha_prev;
            if denom <= 0.0 || !denom.is_finite() {
                return breakdown(x, iterations, rnorm, r0_norm, history);
            }
            alpha = gamma / denom;
            xpay(&nbuf, beta, &mut z); // z = n + β z
            xpay(&mbuf, beta, &mut q); // q = m + β q
            xpay(&w, beta, &mut s); //    s = w + β s
            xpay(&u, beta, &mut p); //    p = u + β p
        }
        axpy(alpha, &p, &mut x);
        axpy(-alpha, &s, &mut r);
        axpy(-alpha, &q, &mut u);
        axpy(-alpha, &z, &mut w);
        gamma_prev = gamma;
        alpha_prev = alpha;
        iterations += 1;
    }
}

fn breakdown(
    x: Vec<f64>,
    iterations: usize,
    rnorm: f64,
    r0_norm: f64,
    history: Vec<f64>,
) -> SolveReport {
    SolveReport {
        x,
        iterations,
        residual_norm: rnorm,
        initial_residual_norm: r0_norm,
        stop: StopReason::Breakdown,
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cg::pcg;
    use precond::{BlockJacobi, BlockSolver, Identity, Ilu0, Jacobi};
    use sparsemat::gen::{poisson2d, poisson3d, random_rhs, rhs_for_ones};

    fn check_solution(a: &Csr, rep: &SolveReport, b: &[f64], tol: f64) {
        assert!(rep.converged(), "did not converge: {:?}", rep.stop);
        let mut r = a.mul_vec(&rep.x);
        for (ri, bi) in r.iter_mut().zip(b) {
            *ri -= bi;
        }
        let rel = norm2(&r) / norm2(b);
        assert!(rel <= tol, "true residual {rel} > {tol}");
    }

    #[test]
    fn pipecg_solves_poisson_unpreconditioned() {
        let a = poisson2d(10, 10);
        let b = rhs_for_ones(&a);
        let rep = pipecg(&a, &b, &vec![0.0; 100], &Identity::new(100), 1e-10, 1000);
        check_solution(&a, &rep, &b, 1e-8);
        for xi in &rep.x {
            assert!((xi - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn pipecg_matches_pcg_solution_and_iterations() {
        // The pipelined recurrences are a reformulation, not a different
        // method: same Krylov spaces, so (in well-conditioned cases) the
        // same convergence history up to rounding.
        let a = poisson3d(6, 6, 6);
        let b = random_rhs(216, 3);
        let x0 = vec![0.0; 216];
        let ilu = Ilu0::new(&a).unwrap();
        let classic = pcg(&a, &b, &x0, &ilu, 1e-9, 5000);
        let piped = pipecg(&a, &b, &x0, &ilu, 1e-9, 5000);
        assert!(classic.converged() && piped.converged());
        assert!(
            classic.iterations.abs_diff(piped.iterations) <= 2,
            "classic {} vs pipelined {}",
            classic.iterations,
            piped.iterations
        );
        let max_diff = classic
            .x
            .iter()
            .zip(&piped.x)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(max_diff < 1e-7, "solutions diverged: {max_diff}");
    }

    #[test]
    fn pipecg_with_common_preconditioners() {
        let a = poisson2d(14, 14);
        let b = random_rhs(196, 9);
        let x0 = vec![0.0; 196];
        let jacobi = Jacobi::new(&a).unwrap();
        let bj = BlockJacobi::with_blocks(&a, 4, BlockSolver::ExactLdl).unwrap();
        for m in [&jacobi as &dyn Preconditioner, &bj] {
            let rep = pipecg(&a, &b, &x0, m, 1e-9, 5000);
            check_solution(&a, &rep, &b, 1e-7);
        }
    }

    #[test]
    fn warm_start_converges_immediately() {
        let a = poisson2d(8, 8);
        let b = rhs_for_ones(&a);
        let rep = pipecg(&a, &b, &vec![1.0; 64], &Identity::new(64), 1e-8, 10);
        assert_eq!(rep.iterations, 0);
        assert!(rep.converged());
    }

    #[test]
    fn history_tracks_iterations() {
        let a = poisson2d(12, 12);
        let b = random_rhs(144, 5);
        let rep = pipecg(&a, &b, &vec![0.0; 144], &Identity::new(144), 1e-8, 2000);
        assert!(rep.converged());
        assert_eq!(rep.history.len(), rep.iterations + 1);
        let first = rep.history[0];
        let last = *rep.history.last().unwrap();
        assert!(last <= first * 1e-8);
    }

    #[test]
    fn breakdown_on_indefinite() {
        let mut coo = sparsemat::Coo::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push_sym(0, 1, 2.0);
        coo.push(1, 1, 1.0);
        let a = coo.to_csr();
        let rep = pipecg(&a, &[1.0, -1.0], &[0.0, 0.0], &Identity::new(2), 1e-10, 100);
        assert_eq!(rep.stop, StopReason::Breakdown);
    }
}
