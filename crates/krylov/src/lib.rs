//! # krylov — sequential iterative solvers
//!
//! The reference (non-distributed) solvers of the reproduction: these are
//! the baselines the distributed ESR solver is validated against, and the
//! inner solvers used during reconstruction.
//!
//! * [`pcg()`](cg::pcg) — the preconditioned conjugate gradient method, literally the
//!   paper's Alg. 1;
//! * [`cg()`](cg::cg) — unpreconditioned CG;
//! * [`pipecg()`](pipecg::pipecg) — pipelined (communication-hiding) PCG in the
//!   Ghysels–Vanroose recurrence form, the numerical reference for the
//!   resilient communication-hiding solver (Levonyak et al., arXiv:1912.09230);
//! * [`spcg()`](spcg::spcg) — split-preconditioned CG (`M = L Lᵀ`), one of the variants
//!   the ESR literature distinguishes (Pachajoa et al. 2018, Alg. 5);
//! * [`bicgstab()`](bicgstab::bicgstab) — preconditioned BiCGSTAB (the paper's Sec. 1 lists it
//!   among the methods the ESR extension applies to);
//! * [`stationary`] — Jacobi, Gauss–Seidel, SOR, SSOR iterations.

// Indexed loops over several parallel arrays are the clearest form for
// the numeric kernels in this crate; iterator-zip pyramids obscure the math.
#![allow(clippy::needless_range_loop)]

pub mod bicgstab;
pub mod cg;
pub mod pipecg;
pub mod report;
pub mod spcg;
pub mod stationary;

pub use bicgstab::bicgstab;
pub use cg::{cg, pcg};
pub use pipecg::pipecg;
pub use report::{SolveReport, StopReason};
pub use spcg::spcg;
pub use stationary::{gauss_seidel, jacobi_iter, sor, ssor_iter, StationaryReport};
