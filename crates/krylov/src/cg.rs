//! (Preconditioned) conjugate gradient — the paper's Alg. 1.

use crate::report::{SolveReport, StopReason};
use precond::{Identity, Preconditioner};
use sparsemat::vecops::{axpy, dot, norm2, xpay};
use sparsemat::Csr;

/// Solve `A x = b` with PCG (paper Alg. 1): preconditioner `m ≈ A⁻¹`
/// applied as `z = M⁻¹ r`. Stops when `‖r‖₂ ≤ rel_tol · ‖b - A x₀‖₂` or
/// after `max_iter` iterations.
pub fn pcg(
    a: &Csr,
    b: &[f64],
    x0: &[f64],
    m: &dyn Preconditioner,
    rel_tol: f64,
    max_iter: usize,
) -> SolveReport {
    let n = a.n_rows();
    assert_eq!(b.len(), n);
    assert_eq!(x0.len(), n);
    assert_eq!(m.dim(), n);

    let mut x = x0.to_vec();
    // r(0) = b - A x(0)
    let mut r = b.to_vec();
    let ax = a.mul_vec(&x);
    for (ri, axi) in r.iter_mut().zip(&ax) {
        *ri -= axi;
    }
    let r0_norm = norm2(&r);
    let target = rel_tol * r0_norm;
    let mut history = vec![r0_norm];

    // z(0) = M⁻¹ r(0), p(0) = z(0)
    let mut z = vec![0.0; n];
    m.apply(&r, &mut z);
    let mut p = z.clone();
    let mut rz = dot(&r, &z);
    let mut ap = vec![0.0; n];

    if r0_norm <= f64::MIN_POSITIVE {
        return SolveReport {
            x,
            iterations: 0,
            residual_norm: r0_norm,
            initial_residual_norm: r0_norm,
            stop: StopReason::Converged,
            history,
        };
    }

    for j in 0..max_iter {
        a.spmv(&p, &mut ap);
        let pap = dot(&p, &ap);
        if pap <= 0.0 || !pap.is_finite() {
            return SolveReport {
                x,
                iterations: j,
                residual_norm: norm2(&r),
                initial_residual_norm: r0_norm,
                stop: StopReason::Breakdown,
                history,
            };
        }
        let alpha = rz / pap; // line 3
        axpy(alpha, &p, &mut x); // line 4
        axpy(-alpha, &ap, &mut r); // line 5
        let rnorm = norm2(&r);
        history.push(rnorm);
        if rnorm <= target {
            return SolveReport {
                x,
                iterations: j + 1,
                residual_norm: rnorm,
                initial_residual_norm: r0_norm,
                stop: StopReason::Converged,
                history,
            };
        }
        m.apply(&r, &mut z); // line 6
        let rz_next = dot(&r, &z);
        let beta = rz_next / rz; // line 7
        rz = rz_next;
        xpay(&z, beta, &mut p); // line 8: p = z + β p
    }
    SolveReport {
        x,
        iterations: max_iter,
        residual_norm: norm2(&r),
        initial_residual_norm: r0_norm,
        stop: StopReason::MaxIterations,
        history,
    }
}

/// Unpreconditioned CG.
pub fn cg(a: &Csr, b: &[f64], x0: &[f64], rel_tol: f64, max_iter: usize) -> SolveReport {
    pcg(a, b, x0, &Identity::new(a.n_rows()), rel_tol, max_iter)
}

#[cfg(test)]
mod tests {
    use super::*;
    use precond::{BlockJacobi, BlockSolver, Ic0, Ilu0, Jacobi, Ssor};
    use sparsemat::gen::{poisson2d, poisson3d, random_rhs, rhs_for_ones};

    fn check_solution(a: &Csr, rep: &SolveReport, b: &[f64], tol: f64) {
        assert!(rep.converged(), "did not converge: {:?}", rep.stop);
        let mut r = a.mul_vec(&rep.x);
        for (ri, bi) in r.iter_mut().zip(b) {
            *ri -= bi;
        }
        let rel = norm2(&r) / norm2(b);
        assert!(rel <= tol, "true residual {rel} > {tol}");
    }

    #[test]
    fn cg_solves_poisson() {
        let a = poisson2d(10, 10);
        let b = rhs_for_ones(&a);
        let rep = cg(&a, &b, &vec![0.0; 100], 1e-10, 1000);
        check_solution(&a, &rep, &b, 1e-8);
        for xi in &rep.x {
            assert!((xi - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn preconditioning_reduces_iterations() {
        let a = poisson2d(20, 20);
        let b = random_rhs(400, 7);
        let x0 = vec![0.0; 400];
        let plain = cg(&a, &b, &x0, 1e-8, 10_000);
        let ilu = Ilu0::new(&a).unwrap();
        let pre = pcg(&a, &b, &x0, &ilu, 1e-8, 10_000);
        assert!(plain.converged() && pre.converged());
        assert!(
            pre.iterations < plain.iterations,
            "ilu {} vs plain {}",
            pre.iterations,
            plain.iterations
        );
    }

    #[test]
    fn all_preconditioners_converge() {
        let a = poisson3d(6, 6, 6);
        let b = random_rhs(216, 3);
        let x0 = vec![0.0; 216];
        let jacobi = Jacobi::new(&a).unwrap();
        let ssor = Ssor::new(&a, 1.2).unwrap();
        let ic = Ic0::new(&a).unwrap();
        let bj = BlockJacobi::with_blocks(&a, 4, BlockSolver::ExactLdl).unwrap();
        let precs: [&dyn Preconditioner; 4] = [&jacobi, &ssor, &ic, &bj];
        for m in precs {
            let rep = pcg(&a, &b, &x0, m, 1e-9, 5000);
            check_solution(&a, &rep, &b, 1e-7);
        }
    }

    #[test]
    fn exact_preconditioner_converges_in_one_iteration() {
        let a = poisson2d(7, 7);
        let b = random_rhs(49, 5);
        let exact = BlockJacobi::with_blocks(&a, 1, BlockSolver::ExactLdl).unwrap();
        let rep = cg(&a, &b, &vec![0.0; 49], 1e-10, 50);
        let rep_exact = pcg(&a, &b, &vec![0.0; 49], &exact, 1e-10, 50);
        assert!(rep_exact.iterations <= 2, "{}", rep_exact.iterations);
        assert!(rep_exact.iterations < rep.iterations);
    }

    #[test]
    fn warm_start_converges_immediately() {
        let a = poisson2d(8, 8);
        let b = rhs_for_ones(&a);
        let rep = cg(&a, &b, &vec![1.0; 64], 1e-8, 10);
        assert_eq!(rep.iterations, 0);
        assert!(rep.converged());
    }

    #[test]
    fn history_is_monotone_enough() {
        // CG residuals may oscillate slightly but the trend must fall.
        let a = poisson2d(12, 12);
        let b = random_rhs(144, 9);
        let rep = cg(&a, &b, &vec![0.0; 144], 1e-8, 2000);
        assert!(rep.converged());
        let first = rep.history[0];
        let last = *rep.history.last().unwrap();
        assert!(last < first * 1e-7);
        assert_eq!(rep.history.len(), rep.iterations + 1);
    }

    #[test]
    fn breakdown_on_indefinite() {
        let mut coo = sparsemat::Coo::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push_sym(0, 1, 2.0);
        coo.push(1, 1, 1.0);
        let a = coo.to_csr();
        // This RHS makes the very first search direction have negative
        // curvature: p₀ᵀAp₀ = [1,-1]·A·[1,-1]ᵀ = -2.
        let rep = cg(&a, &[1.0, -1.0], &[0.0, 0.0], 1e-10, 100);
        assert_eq!(rep.stop, StopReason::Breakdown);
    }
}
