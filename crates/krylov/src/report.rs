//! Solve outcome reporting.

/// Why a solver stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// Residual tolerance reached.
    Converged,
    /// Iteration limit hit before convergence.
    MaxIterations,
    /// The iteration broke down (division by ~zero curvature / ρ).
    Breakdown,
}

/// Outcome of an iterative solve.
#[derive(Clone, Debug)]
pub struct SolveReport {
    /// The computed solution.
    pub x: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Final *recursive* residual norm ‖r‖₂ (the solver residual of the
    /// paper's Eqn. 7 — not recomputed from `b - Ax`).
    pub residual_norm: f64,
    /// Initial residual norm ‖b - A x₀‖₂.
    pub initial_residual_norm: f64,
    /// Why the solver stopped.
    pub stop: StopReason,
    /// Residual-norm history, one entry per iteration (including entry 0).
    pub history: Vec<f64>,
}

impl SolveReport {
    /// Relative residual reduction ‖r_k‖/‖r₀‖.
    pub fn relative_residual(&self) -> f64 {
        if self.initial_residual_norm == 0.0 {
            0.0
        } else {
            self.residual_norm / self.initial_residual_norm
        }
    }

    /// True if converged.
    pub fn converged(&self) -> bool {
        self.stop == StopReason::Converged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_residual_handles_zero_rhs() {
        let r = SolveReport {
            x: vec![],
            iterations: 0,
            residual_norm: 0.0,
            initial_residual_norm: 0.0,
            stop: StopReason::Converged,
            history: vec![],
        };
        assert_eq!(r.relative_residual(), 0.0);
        assert!(r.converged());
    }
}
