//! Preconditioned BiCGSTAB (van der Vorst).
//!
//! The paper states its ESR modifications also apply to "preconditioned
//! bi-conjugate gradient stabilized (BiCGSTAB)" (Sec. 1). This sequential
//! version is the reference for the distributed ESR-protected BiCGSTAB in
//! `esr-core`.

use crate::report::{SolveReport, StopReason};
use precond::Preconditioner;
use sparsemat::vecops::{axpy, dot, norm2};
use sparsemat::Csr;

/// Solve `A x = b` with right-preconditioned BiCGSTAB. Works for general
/// (non-symmetric) `A`; the shadow residual is fixed to `r(0)`.
pub fn bicgstab(
    a: &Csr,
    b: &[f64],
    x0: &[f64],
    m: &dyn Preconditioner,
    rel_tol: f64,
    max_iter: usize,
) -> SolveReport {
    let n = a.n_rows();
    let mut x = x0.to_vec();
    let mut r = b.to_vec();
    let ax = a.mul_vec(&x);
    for (ri, axi) in r.iter_mut().zip(&ax) {
        *ri -= axi;
    }
    let r0_norm = norm2(&r);
    let target = rel_tol * r0_norm;
    let mut history = vec![r0_norm];
    if r0_norm <= f64::MIN_POSITIVE {
        return SolveReport {
            x,
            iterations: 0,
            residual_norm: r0_norm,
            initial_residual_norm: r0_norm,
            stop: StopReason::Converged,
            history,
        };
    }

    let rhat0 = r.clone();
    let mut p = r.clone();
    let mut rho = dot(&rhat0, &r);
    let mut v = vec![0.0; n];
    let mut phat = vec![0.0; n];
    let mut shat = vec![0.0; n];
    let mut t = vec![0.0; n];

    for j in 0..max_iter {
        if rho.abs() < f64::MIN_POSITIVE || !rho.is_finite() {
            return SolveReport {
                x,
                iterations: j,
                residual_norm: norm2(&r),
                initial_residual_norm: r0_norm,
                stop: StopReason::Breakdown,
                history,
            };
        }
        m.apply(&p, &mut phat);
        a.spmv(&phat, &mut v);
        let rhat0_v = dot(&rhat0, &v);
        if rhat0_v.abs() < f64::MIN_POSITIVE {
            return SolveReport {
                x,
                iterations: j,
                residual_norm: norm2(&r),
                initial_residual_norm: r0_norm,
                stop: StopReason::Breakdown,
                history,
            };
        }
        let alpha = rho / rhat0_v;
        // s = r - α v (reuse r's storage conceptually; keep s explicit)
        let mut s = r.clone();
        axpy(-alpha, &v, &mut s);
        let snorm = norm2(&s);
        if snorm <= target {
            axpy(alpha, &phat, &mut x);
            history.push(snorm);
            return SolveReport {
                x,
                iterations: j + 1,
                residual_norm: snorm,
                initial_residual_norm: r0_norm,
                stop: StopReason::Converged,
                history,
            };
        }
        m.apply(&s, &mut shat);
        a.spmv(&shat, &mut t);
        let tt = dot(&t, &t);
        if tt <= 0.0 || !tt.is_finite() {
            return SolveReport {
                x,
                iterations: j,
                residual_norm: norm2(&r),
                initial_residual_norm: r0_norm,
                stop: StopReason::Breakdown,
                history,
            };
        }
        let omega = dot(&t, &s) / tt;
        axpy(alpha, &phat, &mut x);
        axpy(omega, &shat, &mut x);
        // r = s - ω t
        r.copy_from_slice(&s);
        axpy(-omega, &t, &mut r);
        let rnorm = norm2(&r);
        history.push(rnorm);
        if rnorm <= target {
            return SolveReport {
                x,
                iterations: j + 1,
                residual_norm: rnorm,
                initial_residual_norm: r0_norm,
                stop: StopReason::Converged,
                history,
            };
        }
        let rho_next = dot(&rhat0, &r);
        let beta = (rho_next / rho) * (alpha / omega);
        rho = rho_next;
        // p = r + β (p - ω v)
        for ((pi, ri), vi) in p.iter_mut().zip(&r).zip(&v) {
            *pi = ri + beta * (*pi - omega * vi);
        }
    }
    SolveReport {
        x,
        iterations: max_iter,
        residual_norm: norm2(&r),
        initial_residual_norm: r0_norm,
        stop: StopReason::MaxIterations,
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use precond::{Identity, Ilu0, Jacobi};
    use sparsemat::gen::{poisson2d, random_rhs};
    use sparsemat::Coo;

    fn check(a: &Csr, rep: &SolveReport, b: &[f64], tol: f64) {
        assert!(rep.converged(), "stop={:?}", rep.stop);
        let mut r = a.mul_vec(&rep.x);
        for (ri, bi) in r.iter_mut().zip(b) {
            *ri -= bi;
        }
        assert!(norm2(&r) / norm2(b) < tol);
    }

    #[test]
    fn solves_spd_system() {
        let a = poisson2d(10, 10);
        let b = random_rhs(100, 1);
        let rep = bicgstab(&a, &b, &vec![0.0; 100], &Identity::new(100), 1e-9, 2000);
        check(&a, &rep, &b, 1e-7);
    }

    #[test]
    fn solves_nonsymmetric_system() {
        // Convection–diffusion-like: Poisson + asymmetric convection term.
        let base = poisson2d(8, 8);
        let mut coo = Coo::new(64, 64);
        for r in 0..64 {
            let (cols, vals) = base.row(r);
            for (c, v) in cols.iter().zip(vals) {
                coo.push(r, *c as usize, *v);
            }
            if r + 1 < 64 {
                coo.push(r, r + 1, 0.3); // upwind bias
            }
        }
        let a = coo.to_csr();
        let b = random_rhs(64, 2);
        let rep = bicgstab(&a, &b, &vec![0.0; 64], &Identity::new(64), 1e-9, 2000);
        check(&a, &rep, &b, 1e-7);
    }

    #[test]
    fn preconditioning_helps() {
        let a = poisson2d(16, 16);
        let b = random_rhs(256, 3);
        let x0 = vec![0.0; 256];
        let plain = bicgstab(&a, &b, &x0, &Identity::new(256), 1e-8, 5000);
        let ilu = Ilu0::new(&a).unwrap();
        let pre = bicgstab(&a, &b, &x0, &ilu, 1e-8, 5000);
        assert!(plain.converged() && pre.converged());
        assert!(pre.iterations < plain.iterations);
    }

    #[test]
    fn jacobi_preconditioned_converges() {
        let a = poisson2d(9, 9);
        let b = random_rhs(81, 4);
        let jac = Jacobi::new(&a).unwrap();
        let rep = bicgstab(&a, &b, &vec![0.0; 81], &jac, 1e-9, 2000);
        check(&a, &rep, &b, 1e-7);
    }

    #[test]
    fn zero_rhs_converges_immediately() {
        let a = poisson2d(4, 4);
        let rep = bicgstab(&a, &[0.0; 16], &[0.0; 16], &Identity::new(16), 1e-9, 10);
        assert_eq!(rep.iterations, 0);
    }
}
