//! Property-based tests of the sparse-matrix substrate.

use proptest::prelude::*;
use sparsemat::gen::{banded_spd, mesh_laplacian_2d, MeshOrdering};
use sparsemat::vecops::norm2;
use sparsemat::{BlockPartition, Coo, Rng};

/// Random COO matrices with bounded dimensions and entry counts.
fn coo_strategy() -> impl Strategy<Value = Coo> {
    (2usize..20, 2usize..20, 0usize..120, any::<u64>()).prop_map(|(nr, nc, nnz, seed)| {
        let mut rng = Rng::new(seed);
        let mut coo = Coo::new(nr, nc);
        for _ in 0..nnz {
            coo.push(rng.below(nr), rng.below(nc), rng.range_f64(-2.0, 2.0));
        }
        coo
    })
}

/// Non-square matrices mixing empty, fully dense, and sparse rows — the
/// shapes that stress the run-length segment encoding (long runs) and the
/// unrolled scalar path (short scattered rows) at the same time.
fn mixed_density_strategy() -> impl Strategy<Value = Coo> {
    (2usize..24, 1usize..24, any::<u64>()).prop_map(|(nr, nc, seed)| {
        let mut rng = Rng::new(seed);
        let mut coo = Coo::new(nr, nc);
        for r in 0..nr {
            match rng.below(3) {
                0 => {} // empty row
                1 => {
                    // Dense row: one maximal run.
                    for c in 0..nc {
                        coo.push(r, c, rng.range_f64(-2.0, 2.0));
                    }
                }
                _ => {
                    for _ in 0..rng.below(nc.min(8)) {
                        coo.push(r, rng.below(nc), rng.range_f64(-2.0, 2.0));
                    }
                }
            }
        }
        coo
    })
}

fn probe_vector(n: usize, scale: f64) -> Vec<f64> {
    (0..n).map(|i| (i as f64 * scale).sin()).collect()
}

fn assert_bitwise_eq(got: &[f64], want: &[f64]) -> Result<(), TestCaseError> {
    prop_assert_eq!(got.len(), want.len());
    for (r, (g, w)) in got.iter().zip(want).enumerate() {
        prop_assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "row {} differs: {} vs {}",
            r,
            g,
            w
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn transpose_is_involution(coo in coo_strategy()) {
        let a = coo.to_csr();
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn transpose_swaps_spmv(coo in coo_strategy()) {
        // (Aᵀy)·x == y·(Ax) for all x, y.
        let a = coo.to_csr();
        let (nr, nc) = (a.n_rows(), a.n_cols());
        let x: Vec<f64> = (0..nc).map(|i| (i as f64 * 0.7).sin()).collect();
        let y: Vec<f64> = (0..nr).map(|i| (i as f64 * 0.3).cos()).collect();
        let ax = a.mul_vec(&x);
        let aty = a.transpose().mul_vec(&y);
        let lhs: f64 = aty.iter().zip(&x).map(|(a, b)| a * b).sum();
        let rhs: f64 = ax.iter().zip(&y).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() <= 1e-9 * (1.0 + lhs.abs().max(rhs.abs())));
    }

    #[test]
    fn csr_rows_are_sorted_and_unique(coo in coo_strategy()) {
        let a = coo.to_csr();
        for r in 0..a.n_rows() {
            let (cols, _) = a.row(r);
            prop_assert!(cols.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(cols.iter().all(|&c| (c as usize) < a.n_cols()));
        }
    }

    #[test]
    fn symmetric_permutation_preserves_spectrum_proxy(
        seed in any::<u64>(),
        n in 4usize..30,
    ) {
        // PAPᵀ has the same Rayleigh quotients under permuted vectors:
        // (Px)ᵀ(PAPᵀ)(Px) == xᵀAx.
        let a = banded_spd(n, 3, 0.8, seed);
        let mut rng = Rng::new(seed ^ 0x9999);
        let mut perm: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut perm);
        let pa = a.permute_sym(&perm);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut px = vec![0.0; n];
        for (old, &new) in perm.iter().enumerate() {
            px[new] = x[old];
        }
        let q1: f64 = x.iter().zip(a.mul_vec(&x)).map(|(a, b)| a * b).sum();
        let q2: f64 = px.iter().zip(pa.mul_vec(&px)).map(|(a, b)| a * b).sum();
        prop_assert!((q1 - q2).abs() <= 1e-9 * (1.0 + q1.abs()));
    }

    #[test]
    fn generators_produce_spd(seed in any::<u64>(), bw in 1usize..6, n in 6usize..40) {
        let a = banded_spd(n, bw, 0.6, seed);
        prop_assert!(a.is_symmetric(1e-14));
        prop_assert!(a.to_dense().is_spd());
    }

    #[test]
    fn rcm_is_always_a_permutation(seed in any::<u64>(), side in 3usize..9) {
        let a = mesh_laplacian_2d(side, side, MeshOrdering::Random, seed);
        let perm = sparsemat::order::rcm(&a);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..side * side).collect::<Vec<_>>());
        // Permuting must preserve symmetry and the entry multiset size.
        let p = a.permute_sym(&perm);
        prop_assert_eq!(p.nnz(), a.nnz());
        prop_assert!(p.is_symmetric(1e-14));
    }

    #[test]
    fn partition_covers_exactly(n in 10usize..500, nodes in 1usize..10) {
        prop_assume!(n >= nodes);
        let part = BlockPartition::new(n, nodes);
        let mut seen = vec![false; n];
        for k in 0..nodes {
            for i in part.range(k) {
                prop_assert!(!seen[i], "double coverage at {i}");
                seen[i] = true;
                prop_assert_eq!(part.owner_of(i), k);
            }
            prop_assert!(part.len_of(k) <= part.max_block());
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn extract_matches_dense_indexing(coo in coo_strategy(), sel_seed in any::<u64>()) {
        let a = coo.to_csr();
        let mut rng = Rng::new(sel_seed);
        let rows: Vec<usize> = (0..a.n_rows()).filter(|_| rng.chance(0.5)).collect();
        let cols: Vec<usize> = (0..a.n_cols()).filter(|_| rng.chance(0.5)).collect();
        let sub = a.extract(&rows, &cols);
        for (ri, &r) in rows.iter().enumerate() {
            for (ci, &c) in cols.iter().enumerate() {
                prop_assert_eq!(sub.get(ri, ci), a.get(r, c));
            }
        }
    }

    #[test]
    fn matrix_market_roundtrip(seed in any::<u64>(), n in 3usize..20) {
        let a = banded_spd(n, 2, 0.7, seed);
        let path = std::env::temp_dir().join(format!("esr_mm_prop_{seed}_{n}.mtx"));
        sparsemat::io::write_matrix_market(&a, &path).unwrap();
        let b = sparsemat::io::read_matrix_market(&path).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(a, b);
    }

    /// The optimized SpMV (bounds-check-free, unrolled, segment-encoded)
    /// is pinned **bitwise** against the plain textbook loop on random
    /// patterns — the accumulation-order contract of the kernel layer.
    #[test]
    fn spmv_matches_reference_bitwise(coo in coo_strategy()) {
        let a = coo.to_csr();
        let x = probe_vector(a.n_cols(), 0.41);
        let mut y = vec![f64::NAN; a.n_rows()];
        let mut y_ref = vec![f64::NAN; a.n_rows()];
        a.spmv(&x, &mut y);
        a.spmv_reference(&x, &mut y_ref);
        assert_bitwise_eq(&y, &y_ref)?;
    }

    /// Same pin on the shapes that pick the segment-encoded path: empty
    /// rows, fully dense rows, and non-square blocks.
    #[test]
    fn spmv_matches_reference_bitwise_mixed_density(coo in mixed_density_strategy()) {
        let a = coo.to_csr();
        let x = probe_vector(a.n_cols(), 0.19);
        let mut y = vec![f64::NAN; a.n_rows()];
        let mut y_ref = vec![f64::NAN; a.n_rows()];
        a.spmv(&x, &mut y);
        a.spmv_reference(&x, &mut y_ref);
        assert_bitwise_eq(&y, &y_ref)?;
    }

    /// Banded SPD matrices have long per-row runs — the case the run-length
    /// encoding exists for. Still bitwise against the reference.
    #[test]
    fn spmv_matches_reference_bitwise_banded(seed in any::<u64>(), n in 4usize..50, bw in 1usize..8) {
        let a = banded_spd(n, bw, 0.7, seed);
        let x = probe_vector(n, 0.23);
        let mut y = vec![f64::NAN; n];
        let mut y_ref = vec![f64::NAN; n];
        a.spmv(&x, &mut y);
        a.spmv_reference(&x, &mut y_ref);
        assert_bitwise_eq(&y, &y_ref)?;
    }

    /// The fused diag+offdiag kernel (`y = D·x + O·xo` in one row pass) is
    /// bitwise identical to the two-pass form it replaced in
    /// `LocalMatrix::spmv`: per row, both form the two partial sums
    /// left-to-right and add them once.
    #[test]
    fn fused_spmv_matches_two_pass_bitwise(
        nr in 2usize..20,
        nc_diag in 1usize..16,
        nc_off in 1usize..16,
        seed in any::<u64>(),
    ) {
        let mut rng = Rng::new(seed);
        let mut diag = Coo::new(nr, nc_diag);
        let mut off = Coo::new(nr, nc_off);
        for r in 0..nr {
            for _ in 0..rng.below(nc_diag + 1) {
                diag.push(r, rng.below(nc_diag), rng.range_f64(-2.0, 2.0));
            }
            for _ in 0..rng.below(nc_off + 1) {
                off.push(r, rng.below(nc_off), rng.range_f64(-2.0, 2.0));
            }
        }
        let (diag, off) = (diag.to_csr(), off.to_csr());
        let x = probe_vector(nc_diag, 0.31);
        let xo = probe_vector(nc_off, 0.47);
        let mut fused = vec![f64::NAN; nr];
        diag.spmv_fused(&off, &x, &xo, &mut fused);
        let mut two_pass = vec![0.0; nr];
        diag.spmv(&x, &mut two_pass);
        off.spmv_add(&xo, &mut two_pass);
        assert_bitwise_eq(&fused, &two_pass)?;
    }

    #[test]
    fn spmv_linearity(coo in coo_strategy(), alpha in -3.0f64..3.0) {
        // A(αx + y) == αAx + Ay
        let a = coo.to_csr();
        let nc = a.n_cols();
        let x: Vec<f64> = (0..nc).map(|i| (i as f64 * 0.11).sin()).collect();
        let y: Vec<f64> = (0..nc).map(|i| (i as f64 * 0.23).cos()).collect();
        let mixed: Vec<f64> = x.iter().zip(&y).map(|(a, b)| alpha * a + b).collect();
        let lhs = a.mul_vec(&mixed);
        let ax = a.mul_vec(&x);
        let ay = a.mul_vec(&y);
        let rhs: Vec<f64> = ax.iter().zip(&ay).map(|(a, b)| alpha * a + b).collect();
        let diff: Vec<f64> = lhs.iter().zip(&rhs).map(|(a, b)| a - b).collect();
        prop_assert!(norm2(&diff) <= 1e-9 * (1.0 + norm2(&rhs)));
    }
}
