//! # sparsemat — sparse linear algebra substrate
//!
//! Everything the ESR-PCG reproduction needs from a sparse matrix library:
//!
//! * [`csr::Csr`] storage with SpMV, submatrix extraction, permutation,
//!   symmetry checks ([`coo::Coo`] is the builder format);
//! * [`dense`] — small dense matrices with Cholesky factorization, used for
//!   exact preconditioner block solves and as an SPD test oracle;
//! * [`partition::BlockPartition`] — the contiguous block-row data
//!   distribution of the paper (Sec. 1.1.2);
//! * [`gen`] — scalable synthetic SPD generators matched to the sparsity
//!   *classes* of the paper's SuiteSparse test set (Table 1), since the
//!   original matrices are not redistributable here (see DESIGN.md);
//! * [`order`] — reverse Cuthill–McKee reordering and bandwidth statistics;
//! * [`analysis`] — sparsity-pattern analysis: the natural SpMV send sets
//!   `S_ik` and multiplicities `mᵢ(s)` of the paper's Eqns. (2)–(3), which
//!   determine the redundancy overhead (paper Sec. 5);
//! * [`io`] — Matrix Market I/O so the real SuiteSparse matrices can be
//!   dropped in when available;
//! * [`rng`] — a seeded SplitMix64/Xoshiro256** PRNG making every generated
//!   matrix bit-reproducible across platforms and dependency versions.

// Indexed loops over several parallel arrays are the clearest form for
// the numeric kernels in this crate; iterator-zip pyramids obscure the math.
#![allow(clippy::needless_range_loop)]

pub mod analysis;
pub mod coo;
pub mod csr;
pub mod dense;
pub mod gen;
pub mod hotpath;
pub mod io;
pub mod order;
pub mod partition;
pub mod rng;
pub mod vecops;

pub use coo::Coo;
pub use csr::Csr;
pub use dense::Dense;
pub use partition::BlockPartition;
pub use rng::Rng;
