//! Dense vector kernels used throughout the solvers.
//!
//! These are the BLAS-1 operations of the PCG iteration (paper Alg. 1).
//! All are sequential per node — a node's share of a distributed vector is
//! small — and written as simple loops the compiler auto-vectorizes.

/// Dot product `xᵀy`.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    let mut s = 0.0;
    for (a, b) in x.iter().zip(y) {
        s += a * b;
    }
    s
}

/// Squared Euclidean norm `‖x‖₂²`.
#[inline]
pub fn norm2_sq(x: &[f64]) -> f64 {
    dot(x, x)
}

/// Euclidean norm `‖x‖₂`.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    norm2_sq(x).sqrt()
}

/// `y ← y + a·x`.
#[inline]
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

/// `y ← x + a·y` (the search-direction update `p ← z + βp`).
#[inline]
pub fn xpay(x: &[f64], a: f64, y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = xi + a * *yi;
    }
}

/// `x ← a·x`.
#[inline]
pub fn scale(a: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= a;
    }
}

/// `z ← x - y`.
#[inline]
pub fn sub(x: &[f64], y: &[f64], z: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    debug_assert_eq!(x.len(), z.len());
    for ((zi, xi), yi) in z.iter_mut().zip(x).zip(y) {
        *zi = xi - yi;
    }
}

/// Flop count of one `dot`/`axpy` on vectors of length `n` (for the virtual
/// clock: one multiply + one add per element).
#[inline]
pub fn flops_blas1(n: usize) -> usize {
    2 * n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        let x = [1.0, 2.0, 3.0];
        let y = [4.0, 5.0, 6.0];
        assert_eq!(dot(&x, &y), 32.0);
        assert_eq!(norm2_sq(&x), 14.0);
        assert!((norm2(&x) - 14.0f64.sqrt()).abs() < 1e-15);
    }

    #[test]
    fn axpy_updates_in_place() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0]);
    }

    #[test]
    fn xpay_is_search_direction_update() {
        let z = [1.0, 1.0];
        let mut p = [3.0, 4.0];
        xpay(&z, 0.5, &mut p); // p = z + 0.5 p
        assert_eq!(p, [2.5, 3.0]);
    }

    #[test]
    fn scale_and_sub() {
        let mut x = [2.0, 4.0];
        scale(0.5, &mut x);
        assert_eq!(x, [1.0, 2.0]);
        let mut z = [0.0, 0.0];
        sub(&[3.0, 3.0], &[1.0, 2.0], &mut z);
        assert_eq!(z, [2.0, 1.0]);
    }
}
