//! Reverse Cuthill–McKee reordering and bandwidth statistics.
//!
//! The paper's scheme performs best when the matrix "is not too sparse
//! within a bandwidth of ⌈φn/(2N)⌉ around the diagonal" (Sec. 5), and names
//! automatic adaptation to sparsity patterns as future work. RCM is the
//! classical bandwidth-reducing reordering: applying it to a scattered
//! matrix before partitioning moves it toward the favourable case — one of
//! the ablations in the benchmark suite.

use crate::csr::Csr;

/// Reverse Cuthill–McKee permutation for a structurally symmetric matrix.
/// Returns `perm` with `perm[old] = new` (use with [`Csr::permute_sym`]).
/// Each connected component is started from a pseudo-peripheral vertex.
pub fn rcm(a: &Csr) -> Vec<usize> {
    assert_eq!(a.n_rows(), a.n_cols(), "rcm needs a square matrix");
    let n = a.n_rows();
    let degree = |v: usize| a.row(v).0.len();

    let mut visited = vec![false; n];
    let mut order: Vec<usize> = Vec::with_capacity(n); // order[k] = old index
    let mut queue: std::collections::VecDeque<usize> = Default::default();
    let mut neighbours: Vec<usize> = Vec::new();

    for start_scan in 0..n {
        if visited[start_scan] {
            continue;
        }
        let start = pseudo_peripheral(a, start_scan);
        visited[start] = true;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            neighbours.clear();
            let (cols, _) = a.row(v);
            neighbours.extend(
                cols.iter()
                    .map(|&u| u as usize)
                    .filter(|&u| u != v && !visited[u]),
            );
            // Cuthill–McKee visits neighbours by increasing degree.
            neighbours.sort_unstable_by_key(|&u| degree(u));
            for &u in &neighbours {
                if !visited[u] {
                    visited[u] = true;
                    queue.push_back(u);
                }
            }
        }
    }
    debug_assert_eq!(order.len(), n);
    // Reverse (the "R" in RCM) and invert to old → new form.
    let mut perm = vec![0usize; n];
    for (k, &old) in order.iter().rev().enumerate() {
        perm[old] = k;
    }
    perm
}

/// Find a pseudo-peripheral vertex of the component containing `start`
/// (George–Liu: repeat BFS from the farthest minimum-degree vertex).
fn pseudo_peripheral(a: &Csr, start: usize) -> usize {
    let mut v = start;
    let mut last_ecc = 0usize;
    for _ in 0..8 {
        // eccentricity growth converges in a few steps
        let (ecc, farthest) = bfs_farthest(a, v);
        if ecc <= last_ecc {
            return v;
        }
        last_ecc = ecc;
        v = farthest;
    }
    v
}

/// BFS returning (eccentricity, a farthest vertex of minimum degree).
fn bfs_farthest(a: &Csr, start: usize) -> (usize, usize) {
    let n = a.n_rows();
    let mut dist = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    dist[start] = 0;
    queue.push_back(start);
    let mut last_level: Vec<usize> = vec![start];
    let mut ecc = 0usize;
    while !queue.is_empty() {
        let mut next_level = Vec::new();
        for _ in 0..queue.len() {
            let v = queue.pop_front().unwrap();
            let (cols, _) = a.row(v);
            for &u in cols {
                let u = u as usize;
                if u != v && dist[u] == usize::MAX {
                    dist[u] = dist[v] + 1;
                    queue.push_back(u);
                    next_level.push(u);
                }
            }
        }
        if !next_level.is_empty() {
            ecc += 1;
            last_level = next_level;
        }
    }
    let farthest = last_level
        .iter()
        .copied()
        .min_by_key(|&u| a.row(u).0.len())
        .unwrap_or(start);
    (ecc, farthest)
}

/// Average over rows of `max |i - j|` per row — a finer-grained locality
/// measure than the worst-case [`Csr::bandwidth`].
pub fn mean_row_bandwidth(a: &Csr) -> f64 {
    if a.n_rows() == 0 {
        return 0.0;
    }
    let total: usize = (0..a.n_rows())
        .map(|r| {
            a.row(r)
                .0
                .iter()
                .map(|&c| r.abs_diff(c as usize))
                .max()
                .unwrap_or(0)
        })
        .sum();
    total as f64 / a.n_rows() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{mesh_laplacian_2d, MeshOrdering};

    #[test]
    fn rcm_is_permutation() {
        let a = mesh_laplacian_2d(8, 8, MeshOrdering::Random, 1);
        let p = rcm(&a);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn rcm_reduces_bandwidth_of_scattered_matrix() {
        let a = mesh_laplacian_2d(12, 12, MeshOrdering::Random, 7);
        let before = a.bandwidth();
        let after = a.permute_sym(&rcm(&a)).bandwidth();
        assert!(
            after < before,
            "rcm should reduce bandwidth: {before} -> {after}"
        );
    }

    #[test]
    fn rcm_handles_disconnected_components() {
        // Two disjoint 2-cliques + an isolated vertex.
        let mut coo = crate::coo::Coo::new(5, 5);
        for i in 0..5 {
            coo.push(i, i, 2.0);
        }
        coo.push_sym(0, 1, -1.0);
        coo.push_sym(2, 3, -1.0);
        let a = coo.to_csr();
        let p = rcm(&a);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..5).collect::<Vec<_>>());
    }

    #[test]
    fn permuted_matrix_spd_preserved() {
        let a = mesh_laplacian_2d(6, 6, MeshOrdering::Random, 3);
        let p = a.permute_sym(&rcm(&a));
        assert!(p.is_symmetric(1e-14));
        assert!(p.to_dense().is_spd());
    }

    #[test]
    fn mean_row_bandwidth_tracks_locality() {
        let nat = mesh_laplacian_2d(10, 10, MeshOrdering::Natural, 5);
        let rnd = mesh_laplacian_2d(10, 10, MeshOrdering::Random, 5);
        assert!(mean_row_bandwidth(&nat) < mean_row_bandwidth(&rnd));
    }
}
