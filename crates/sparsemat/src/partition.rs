//! Block-row data distribution.
//!
//! The paper (Sec. 1.1.2) distributes all matrices and vectors in blocks of
//! contiguous rows: "every node owns blocks of n/N contiguous rows (if
//! n = cN …, otherwise some nodes own ⌊n/N⌋ and others ⌈n/N⌉ rows)". The
//! first `n mod N` nodes get the larger blocks.

use std::ops::Range;

/// A contiguous block-row partition of `0..n` over `nodes` ranks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockPartition {
    n: usize,
    nodes: usize,
    starts: Vec<usize>, // len nodes + 1, starts[k]..starts[k+1] = rank k
}

impl BlockPartition {
    /// Partition `n` rows over `nodes` ranks.
    pub fn new(n: usize, nodes: usize) -> Self {
        assert!(nodes >= 1, "need at least one node");
        assert!(n >= nodes, "fewer rows than nodes");
        let base = n / nodes;
        let extra = n % nodes;
        let mut starts = Vec::with_capacity(nodes + 1);
        let mut s = 0;
        starts.push(0);
        for k in 0..nodes {
            s += base + usize::from(k < extra);
            starts.push(s);
        }
        debug_assert_eq!(s, n);
        BlockPartition { n, nodes, starts }
    }

    /// Generalized (non-uniform) contiguous partition from explicit block
    /// boundaries: block `k` owns `starts[k]..starts[k+1]`. This is the
    /// layout a *shrunken* cluster runs on after surviving nodes adopt the
    /// subdomains of failed nodes: still contiguous block rows (so the
    /// PETSc-style diag/offdiag SpMV split keeps working), but with block
    /// sizes that are unions of the original `⌈n/N⌉`-blocks.
    ///
    /// # Panics
    /// Panics unless `starts` begins at 0, is strictly increasing (no empty
    /// blocks — every rank must own rows), and has at least one block.
    pub fn from_starts(starts: Vec<usize>) -> Self {
        assert!(starts.len() >= 2, "need at least one block");
        assert_eq!(starts[0], 0, "first block must start at row 0");
        assert!(
            starts.windows(2).all(|w| w[0] < w[1]),
            "block boundaries must be strictly increasing (no empty blocks): {starts:?}"
        );
        BlockPartition {
            n: *starts.last().unwrap(),
            nodes: starts.len() - 1,
            starts,
        }
    }

    /// The block boundaries (`len = nodes + 1`).
    pub fn starts(&self) -> &[usize] {
        &self.starts
    }

    /// Total number of rows `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of ranks `N`.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The global index range `Iₖ` owned by `rank`.
    #[inline]
    pub fn range(&self, rank: usize) -> Range<usize> {
        self.starts[rank]..self.starts[rank + 1]
    }

    /// Number of rows owned by `rank`.
    #[inline]
    pub fn len_of(&self, rank: usize) -> usize {
        self.starts[rank + 1] - self.starts[rank]
    }

    /// Largest block size — `⌈n/N⌉` for the uniform layout (the paper's
    /// bound unit in Sec. 4.2), the widest adopted block after a shrink.
    pub fn max_block(&self) -> usize {
        self.starts
            .windows(2)
            .map(|w| w[1] - w[0])
            .max()
            .expect("at least one block")
    }

    /// The rank owning global index `i`.
    #[inline]
    pub fn owner_of(&self, i: usize) -> usize {
        debug_assert!(i < self.n);
        // starts is sorted; partition_point returns the first start > i.
        self.starts.partition_point(|&s| s <= i) - 1
    }

    /// Offset of global index `i` within its owner's block.
    #[inline]
    pub fn local_of(&self, i: usize) -> usize {
        i - self.starts[self.owner_of(i)]
    }

    /// Union of ranges of several ranks, as a sorted global index list
    /// (the failed set `If = I_{f1} ∪ … ∪ I_{fψ}` of paper Sec. 4.1).
    pub fn union_of(&self, ranks: &[usize]) -> Vec<usize> {
        let mut sorted = ranks.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut out = Vec::with_capacity(sorted.iter().map(|&r| self.len_of(r)).sum());
        for r in sorted {
            out.extend(self.range(r));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_split() {
        let p = BlockPartition::new(12, 4);
        for k in 0..4 {
            assert_eq!(p.len_of(k), 3);
        }
        assert_eq!(p.range(2), 6..9);
    }

    #[test]
    fn uneven_split_puts_extra_first() {
        let p = BlockPartition::new(10, 4); // 3,3,2,2
        assert_eq!(p.len_of(0), 3);
        assert_eq!(p.len_of(1), 3);
        assert_eq!(p.len_of(2), 2);
        assert_eq!(p.len_of(3), 2);
        assert_eq!(p.max_block(), 3);
        // Every index owned exactly once.
        let mut seen = [0; 10];
        for k in 0..4 {
            for i in p.range(k) {
                seen[i] += 1;
                assert_eq!(p.owner_of(i), k);
                assert_eq!(p.local_of(i), i - p.range(k).start);
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn union_is_sorted_and_deduped() {
        let p = BlockPartition::new(9, 3);
        assert_eq!(p.union_of(&[2, 0, 2]), vec![0, 1, 2, 6, 7, 8]);
    }

    #[test]
    fn single_node_owns_all() {
        let p = BlockPartition::new(5, 1);
        assert_eq!(p.range(0), 0..5);
        assert_eq!(p.owner_of(4), 0);
    }

    #[test]
    fn from_starts_non_uniform() {
        // A 3-block layout with very unequal sizes (post-shrink shape).
        let p = BlockPartition::from_starts(vec![0, 7, 9, 20]);
        assert_eq!(p.n(), 20);
        assert_eq!(p.nodes(), 3);
        assert_eq!(p.range(0), 0..7);
        assert_eq!(p.range(1), 7..9);
        assert_eq!(p.range(2), 9..20);
        assert_eq!(p.max_block(), 11); // the widest (adopted) block
        for i in 0..20 {
            let o = p.owner_of(i);
            assert!(p.range(o).contains(&i));
            assert_eq!(p.local_of(i), i - p.range(o).start);
        }
        assert_eq!(p.union_of(&[2, 0]), (0..7).chain(9..20).collect::<Vec<_>>());
        assert_eq!(p.starts(), &[0, 7, 9, 20]);
    }

    #[test]
    fn from_starts_roundtrips_uniform() {
        let u = BlockPartition::new(143, 7);
        let g = BlockPartition::from_starts(u.starts().to_vec());
        assert_eq!(u, g);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn from_starts_rejects_empty_block() {
        BlockPartition::from_starts(vec![0, 5, 5, 10]);
    }

    #[test]
    #[should_panic(expected = "start at row 0")]
    fn from_starts_rejects_offset_origin() {
        BlockPartition::from_starts(vec![1, 5, 10]);
    }

    #[test]
    fn owner_of_boundaries() {
        let p = BlockPartition::new(100, 7);
        for i in 0..100 {
            let o = p.owner_of(i);
            assert!(p.range(o).contains(&i));
        }
    }
}
