//! Block-row data distribution.
//!
//! The paper (Sec. 1.1.2) distributes all matrices and vectors in blocks of
//! contiguous rows: "every node owns blocks of n/N contiguous rows (if
//! n = cN …, otherwise some nodes own ⌊n/N⌋ and others ⌈n/N⌉ rows)". The
//! first `n mod N` nodes get the larger blocks.

use std::ops::Range;

/// A contiguous block-row partition of `0..n` over `nodes` ranks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockPartition {
    n: usize,
    nodes: usize,
    starts: Vec<usize>, // len nodes + 1, starts[k]..starts[k+1] = rank k
}

impl BlockPartition {
    /// Partition `n` rows over `nodes` ranks.
    pub fn new(n: usize, nodes: usize) -> Self {
        assert!(nodes >= 1, "need at least one node");
        assert!(n >= nodes, "fewer rows than nodes");
        let base = n / nodes;
        let extra = n % nodes;
        let mut starts = Vec::with_capacity(nodes + 1);
        let mut s = 0;
        starts.push(0);
        for k in 0..nodes {
            s += base + usize::from(k < extra);
            starts.push(s);
        }
        debug_assert_eq!(s, n);
        BlockPartition { n, nodes, starts }
    }

    /// Total number of rows `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of ranks `N`.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The global index range `Iₖ` owned by `rank`.
    #[inline]
    pub fn range(&self, rank: usize) -> Range<usize> {
        self.starts[rank]..self.starts[rank + 1]
    }

    /// Number of rows owned by `rank`.
    #[inline]
    pub fn len_of(&self, rank: usize) -> usize {
        self.starts[rank + 1] - self.starts[rank]
    }

    /// Largest block size `⌈n/N⌉` (the paper's bound unit in Sec. 4.2).
    pub fn max_block(&self) -> usize {
        self.n.div_ceil(self.nodes)
    }

    /// The rank owning global index `i`.
    #[inline]
    pub fn owner_of(&self, i: usize) -> usize {
        debug_assert!(i < self.n);
        // starts is sorted; partition_point returns the first start > i.
        self.starts.partition_point(|&s| s <= i) - 1
    }

    /// Offset of global index `i` within its owner's block.
    #[inline]
    pub fn local_of(&self, i: usize) -> usize {
        i - self.starts[self.owner_of(i)]
    }

    /// Union of ranges of several ranks, as a sorted global index list
    /// (the failed set `If = I_{f1} ∪ … ∪ I_{fψ}` of paper Sec. 4.1).
    pub fn union_of(&self, ranks: &[usize]) -> Vec<usize> {
        let mut sorted = ranks.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut out = Vec::with_capacity(sorted.iter().map(|&r| self.len_of(r)).sum());
        for r in sorted {
            out.extend(self.range(r));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_split() {
        let p = BlockPartition::new(12, 4);
        for k in 0..4 {
            assert_eq!(p.len_of(k), 3);
        }
        assert_eq!(p.range(2), 6..9);
    }

    #[test]
    fn uneven_split_puts_extra_first() {
        let p = BlockPartition::new(10, 4); // 3,3,2,2
        assert_eq!(p.len_of(0), 3);
        assert_eq!(p.len_of(1), 3);
        assert_eq!(p.len_of(2), 2);
        assert_eq!(p.len_of(3), 2);
        assert_eq!(p.max_block(), 3);
        // Every index owned exactly once.
        let mut seen = [0; 10];
        for k in 0..4 {
            for i in p.range(k) {
                seen[i] += 1;
                assert_eq!(p.owner_of(i), k);
                assert_eq!(p.local_of(i), i - p.range(k).start);
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn union_is_sorted_and_deduped() {
        let p = BlockPartition::new(9, 3);
        assert_eq!(p.union_of(&[2, 0, 2]), vec![0, 1, 2, 6, 7, 8]);
    }

    #[test]
    fn single_node_owns_all() {
        let p = BlockPartition::new(5, 1);
        assert_eq!(p.range(0), 0..5);
        assert_eq!(p.owner_of(4), 0);
    }

    #[test]
    fn owner_of_boundaries() {
        let p = BlockPartition::new(100, 7);
        for i in 0..100 {
            let o = p.owner_of(i);
            assert!(p.range(o).contains(&i));
        }
    }
}
