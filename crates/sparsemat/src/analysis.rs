//! Sparsity-pattern analysis for the block-row distribution.
//!
//! The ESR redundancy overhead is governed by how much of the search
//! direction already travels during SpMV (paper Eqns. 2–3, Sec. 5):
//!
//! * `ghost_needs(k)` — which remote vector elements node `k`'s rows touch;
//! * `send_sets` — the paper's `S_ik`: elements of node `i` sent to `k`;
//! * `multiplicities` — the paper's `mᵢ(s)`: to how many distinct nodes an
//!   owned element travels naturally;
//! * [`PatternAnalysis`] — summary statistics (multiplicity histogram,
//!   `|Rᶜᵢ|` per node) used by the Sec. 4.2/5 analysis benchmark.

use crate::csr::Csr;
use crate::partition::BlockPartition;

/// Sorted unique global column indices outside `rank`'s own range that
/// appear in `rank`'s rows — the ghost elements its SpMV needs.
pub fn ghost_needs(a: &Csr, part: &BlockPartition, rank: usize) -> Vec<usize> {
    let range = part.range(rank);
    let mut needs: Vec<usize> = Vec::new();
    for r in range.clone() {
        let (cols, _) = a.row(r);
        needs.extend(
            cols.iter()
                .map(|&c| c as usize)
                .filter(|c| !range.contains(c)),
        );
    }
    needs.sort_unstable();
    needs.dedup();
    needs
}

/// The send sets `S_ik` of the paper's Eqn. (2): `sets[i][k]` is the sorted
/// list of global indices owned by node `i` that node `k` needs for SpMV
/// (empty for `k == i`).
pub fn send_sets(a: &Csr, part: &BlockPartition) -> Vec<Vec<Vec<usize>>> {
    let nodes = part.nodes();
    let mut sets = vec![vec![Vec::new(); nodes]; nodes];
    for k in 0..nodes {
        let needs = ghost_needs(a, part, k);
        // `needs` is sorted, so a linear sweep groups by owner.
        for idx in needs {
            let owner = part.owner_of(idx);
            sets[owner][k].push(idx);
        }
    }
    sets
}

/// The multiplicities `mᵢ(s)` of the paper's Eqn. (3), as a global array:
/// `m[s]` = number of distinct *other* nodes that element `s` is sent to
/// during SpMV.
pub fn multiplicities(a: &Csr, part: &BlockPartition) -> Vec<u32> {
    let mut m = vec![0u32; part.n()];
    for k in 0..part.nodes() {
        for idx in ghost_needs(a, part, k) {
            m[idx] += 1;
        }
    }
    m
}

/// Pattern summary for one matrix + partition.
#[derive(Clone, Debug)]
pub struct PatternAnalysis {
    /// `hist[m]` = number of elements with natural multiplicity exactly
    /// `m`; the last bucket accumulates everything ≥ `hist.len() - 1`.
    pub multiplicity_hist: Vec<u64>,
    /// Per node `i`: `|Rᶜᵢ|`, the number of owned elements never sent
    /// anywhere (Eqn. 2) — these always need extra redundancy messages.
    pub rc_sizes: Vec<usize>,
    /// Per node `i`: number of distinct nodes `i` sends to during SpMV.
    pub spmv_degree: Vec<usize>,
    /// Fraction of elements with multiplicity ≥ φ for φ = 1..=8
    /// (`coverage[φ-1]`): if ≈ 1, redundancy level φ is nearly free
    /// (paper Sec. 5).
    pub coverage: [f64; 8],
}

/// Analyze the natural SpMV traffic of `a` under `part`.
pub fn analyze(a: &Csr, part: &BlockPartition) -> PatternAnalysis {
    let m = multiplicities(a, part);
    let nodes = part.nodes();
    const HIST_CAP: usize = 17;
    let mut hist = vec![0u64; HIST_CAP];
    for &mi in &m {
        hist[(mi as usize).min(HIST_CAP - 1)] += 1;
    }
    let mut rc_sizes = vec![0usize; nodes];
    for i in 0..nodes {
        rc_sizes[i] = part.range(i).filter(|&s| m[s] == 0).count();
    }
    let sets = send_sets(a, part);
    let spmv_degree = sets
        .iter()
        .map(|row| row.iter().filter(|s| !s.is_empty()).count())
        .collect();
    let n = part.n() as f64;
    let mut coverage = [0.0f64; 8];
    for (phi_m1, c) in coverage.iter_mut().enumerate() {
        let phi = phi_m1 as u32 + 1;
        *c = m.iter().filter(|&&mi| mi >= phi).count() as f64 / n;
    }
    PatternAnalysis {
        multiplicity_hist: hist,
        rc_sizes,
        spmv_degree,
        coverage,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{circuit_like, poisson2d, poisson3d};

    #[test]
    fn ghost_needs_tridiagonal() {
        // 1-D Laplacian: each block needs exactly its boundary neighbours.
        let a = crate::gen::banded_spd(12, 1, 1.0, 1);
        let part = BlockPartition::new(12, 3);
        assert_eq!(ghost_needs(&a, &part, 0), vec![4]);
        assert_eq!(ghost_needs(&a, &part, 1), vec![3, 8]);
        assert_eq!(ghost_needs(&a, &part, 2), vec![7]);
    }

    #[test]
    fn send_sets_mirror_needs() {
        let a = poisson2d(6, 6);
        let part = BlockPartition::new(36, 4);
        let sets = send_sets(&a, &part);
        for k in 0..4 {
            let needs = ghost_needs(&a, &part, k);
            let mut from_sets: Vec<usize> = (0..4).flat_map(|i| sets[i][k].clone()).collect();
            from_sets.sort_unstable();
            assert_eq!(from_sets, needs, "k={k}");
            assert!(sets[k][k].is_empty(), "no self-sends");
        }
        // Every S_ik element is owned by i.
        for (i, row) in sets.iter().enumerate() {
            for sk in row {
                for &s in sk {
                    assert_eq!(part.owner_of(s), i);
                }
            }
        }
    }

    #[test]
    fn multiplicity_counts_distinct_receivers() {
        let a = poisson2d(4, 4);
        let part = BlockPartition::new(16, 4);
        let m = multiplicities(&a, &part);
        let sets = send_sets(&a, &part);
        for s in 0..16 {
            let i = part.owner_of(s);
            let expect = (0..4).filter(|&k| sets[i][k].contains(&s)).count() as u32;
            assert_eq!(m[s], expect, "s={s}");
        }
    }

    #[test]
    fn banded_matrix_rc_only_away_from_boundaries() {
        // 2-D Poisson, 8 grid rows over 4 nodes (2 grid rows each): the
        // outermost grid rows of the end nodes touch no block boundary and
        // are never sent (Rᶜ = 8 each); both grid rows of the middle nodes
        // are boundary rows, so everything they own travels (Rᶜ = 0).
        let a = poisson2d(8, 8);
        let part = BlockPartition::new(64, 4);
        let an = analyze(&a, &part);
        assert_eq!(an.rc_sizes, vec![8, 0, 0, 8]);
        // Narrow band: neighbours-only communication.
        assert!(
            an.spmv_degree.iter().all(|&d| d <= 2),
            "{:?}",
            an.spmv_degree
        );
    }

    #[test]
    fn wide_band_beats_scattered_coverage() {
        // Wide-band structural patterns (M5'–M8' class) communicate most
        // elements naturally; circuit-like graphs keep most elements local
        // and need extra redundancy messages (paper Sec. 5).
        use crate::gen::{elasticity3d, BlockStencil};
        let a = elasticity3d(4, 4, 4, 3, BlockStencil::Full27, 0.0, 3);
        let parta = BlockPartition::new(a.n_rows(), 8);
        let an = analyze(&a, &parta);
        let b = circuit_like(192, 6, 0.05, 3);
        let partb = BlockPartition::new(192, 8);
        let bn = analyze(&b, &partb);
        assert!(
            an.coverage[0] > bn.coverage[0],
            "elasticity {} vs circuit {}",
            an.coverage[0],
            bn.coverage[0]
        );
    }

    #[test]
    fn histogram_sums_to_n() {
        let a = poisson3d(5, 5, 5);
        let part = BlockPartition::new(125, 5);
        let an = analyze(&a, &part);
        let total: u64 = an.multiplicity_hist.iter().sum();
        assert_eq!(total, 125);
    }

    #[test]
    fn coverage_is_monotone_decreasing() {
        let a = circuit_like(200, 5, 0.2, 9);
        let part = BlockPartition::new(200, 8);
        let an = analyze(&a, &part);
        for w in an.coverage.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }
}
