//! Seeded, dependency-free pseudo-random numbers.
//!
//! Matrix generation must be bit-reproducible across platforms and library
//! versions (the experiment tables compare runs against each other), so we
//! implement the well-known xoshiro256\*\* generator seeded via SplitMix64
//! instead of depending on `rand`'s version-dependent `StdRng`.

/// xoshiro256** PRNG (Blackman & Vigna), SplitMix64-seeded.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the full state; guarantees
        // a non-zero state for every seed.
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Rng {
            s: [next_sm(), next_sm(), next_sm(), next_sm()],
        }
    }

    /// Next uniformly distributed 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` (53-bit resolution).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)` (Lemire's unbiased method).
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        let n = n as u64;
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as usize
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = Rng::new(3);
        let mut seen = [false; 7];
        for _ in 0..500 {
            let v = r.below(7);
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn mean_roughly_half() {
        let mut r = Rng::new(11);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean={mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::new(5);
        let mut v: Vec<usize> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
