//! Matrix Market I/O.
//!
//! The paper's test matrices come from the SuiteSparse collection, which
//! distributes Matrix Market files. The synthetic suite stands in by
//! default (DESIGN.md), but this reader lets the original matrices be
//! dropped into the benchmarks unchanged when available.
//!
//! Supported: `matrix coordinate real|integer|pattern general|symmetric`.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::coo::Coo;
use crate::csr::Csr;

/// Errors from Matrix Market parsing.
#[derive(Debug)]
pub enum MmError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed content, with a human-readable reason.
    Parse(String),
}

impl std::fmt::Display for MmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MmError::Io(e) => write!(f, "I/O error: {e}"),
            MmError::Parse(m) => write!(f, "Matrix Market parse error: {m}"),
        }
    }
}

impl std::error::Error for MmError {}

impl From<std::io::Error> for MmError {
    fn from(e: std::io::Error) -> Self {
        MmError::Io(e)
    }
}

fn parse_err(msg: impl Into<String>) -> MmError {
    MmError::Parse(msg.into())
}

/// Read a Matrix Market file.
pub fn read_matrix_market(path: impl AsRef<Path>) -> Result<Csr, MmError> {
    read_matrix_market_from(BufReader::new(File::open(path)?))
}

/// Read Matrix Market content from any reader.
pub fn read_matrix_market_from<R: Read>(reader: R) -> Result<Csr, MmError> {
    let mut lines = BufReader::new(reader).lines();

    // Header: %%MatrixMarket matrix coordinate <field> <symmetry>
    let header = lines.next().ok_or_else(|| parse_err("empty file"))??;
    let h: Vec<String> = header.split_whitespace().map(str::to_lowercase).collect();
    if h.len() < 5 || h[0] != "%%matrixmarket" || h[1] != "matrix" {
        return Err(parse_err(format!("bad header: {header}")));
    }
    if h[2] != "coordinate" {
        return Err(parse_err("only coordinate format is supported"));
    }
    let pattern = match h[3].as_str() {
        "real" | "integer" => false,
        "pattern" => true,
        other => return Err(parse_err(format!("unsupported field type: {other}"))),
    };
    let symmetric = match h[4].as_str() {
        "general" => false,
        "symmetric" => true,
        other => return Err(parse_err(format!("unsupported symmetry: {other}"))),
    };

    // Skip comments, read size line.
    let size_line = loop {
        let line = lines
            .next()
            .ok_or_else(|| parse_err("missing size line"))??;
        let t = line.trim();
        if !t.is_empty() && !t.starts_with('%') {
            break t.to_string();
        }
    };
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| t.parse().map_err(|_| parse_err(format!("bad size: {t}"))))
        .collect::<Result<_, _>>()?;
    if dims.len() != 3 {
        return Err(parse_err("size line must be `rows cols nnz`"));
    }
    let (nr, nc, nnz) = (dims[0], dims[1], dims[2]);

    let mut coo = Coo::with_capacity(nr, nc, if symmetric { 2 * nnz } else { nnz });
    let mut seen = 0usize;
    for line in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let r: usize = it
            .next()
            .ok_or_else(|| parse_err("missing row"))?
            .parse()
            .map_err(|_| parse_err(format!("bad row in: {t}")))?;
        let c: usize = it
            .next()
            .ok_or_else(|| parse_err("missing col"))?
            .parse()
            .map_err(|_| parse_err(format!("bad col in: {t}")))?;
        let v: f64 = if pattern {
            1.0
        } else {
            it.next()
                .ok_or_else(|| parse_err("missing value"))?
                .parse()
                .map_err(|_| parse_err(format!("bad value in: {t}")))?
        };
        if r < 1 || r > nr || c < 1 || c > nc {
            return Err(parse_err(format!("index out of range: {t}")));
        }
        // Matrix Market is 1-based.
        if symmetric {
            coo.push_sym(r - 1, c - 1, v);
        } else {
            coo.push(r - 1, c - 1, v);
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(parse_err(format!("expected {nnz} entries, found {seen}")));
    }
    Ok(coo.to_csr())
}

/// Write `a` as `matrix coordinate real general` (or `symmetric` when the
/// matrix is numerically symmetric: only the lower triangle is stored).
pub fn write_matrix_market(a: &Csr, path: impl AsRef<Path>) -> Result<(), MmError> {
    let mut w = BufWriter::new(File::create(path)?);
    let symmetric = a.is_symmetric(0.0);
    if symmetric {
        let lower: usize = (0..a.n_rows())
            .map(|r| a.row(r).0.iter().filter(|&&c| c as usize <= r).count())
            .sum();
        writeln!(w, "%%MatrixMarket matrix coordinate real symmetric")?;
        writeln!(w, "{} {} {}", a.n_rows(), a.n_cols(), lower)?;
        for r in 0..a.n_rows() {
            let (cols, vals) = a.row(r);
            for (c, v) in cols.iter().zip(vals) {
                if *c as usize <= r {
                    writeln!(w, "{} {} {:.17e}", r + 1, c + 1, v)?;
                }
            }
        }
    } else {
        writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
        writeln!(w, "{} {} {}", a.n_rows(), a.n_cols(), a.nnz())?;
        for r in 0..a.n_rows() {
            let (cols, vals) = a.row(r);
            for (c, v) in cols.iter().zip(vals) {
                writeln!(w, "{} {} {:.17e}", r + 1, c + 1, v)?;
            }
        }
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::poisson2d;

    #[test]
    fn parse_general() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    % a comment\n\
                    2 3 3\n\
                    1 1 1.5\n\
                    2 3 -2.0\n\
                    1 2 4\n";
        let a = read_matrix_market_from(text.as_bytes()).unwrap();
        assert_eq!(a.n_rows(), 2);
        assert_eq!(a.n_cols(), 3);
        assert_eq!(a.get(0, 0), 1.5);
        assert_eq!(a.get(0, 1), 4.0);
        assert_eq!(a.get(1, 2), -2.0);
    }

    #[test]
    fn parse_symmetric_expands() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    2 2 2\n\
                    1 1 2.0\n\
                    2 1 -1.0\n";
        let a = read_matrix_market_from(text.as_bytes()).unwrap();
        assert_eq!(a.get(0, 1), -1.0);
        assert_eq!(a.get(1, 0), -1.0);
        assert!(a.is_symmetric(0.0));
    }

    #[test]
    fn parse_pattern() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n\
                    2 2 1\n\
                    2 1\n";
        let a = read_matrix_market_from(text.as_bytes()).unwrap();
        assert_eq!(a.get(1, 0), 1.0);
    }

    #[test]
    fn rejects_bad_headers() {
        assert!(read_matrix_market_from("nonsense\n1 1 0\n".as_bytes()).is_err());
        assert!(read_matrix_market_from(
            "%%MatrixMarket matrix array real general\n1 1 0\n".as_bytes()
        )
        .is_err());
        assert!(read_matrix_market_from(
            "%%MatrixMarket matrix coordinate complex general\n1 1 0\n".as_bytes()
        )
        .is_err());
    }

    #[test]
    fn rejects_wrong_count_and_range() {
        let short = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        assert!(read_matrix_market_from(short.as_bytes()).is_err());
        let oob = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(read_matrix_market_from(oob.as_bytes()).is_err());
    }

    #[test]
    fn roundtrip_via_tempfile() {
        let a = poisson2d(5, 4);
        let path = std::env::temp_dir().join("esr_sparsemat_io_test.mtx");
        write_matrix_market(&a, &path).unwrap();
        let b = read_matrix_market(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(a, b);
    }
}
