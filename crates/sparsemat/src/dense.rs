//! Small dense matrices: the test oracle and the exact solver for small
//! reconstruction blocks.
//!
//! A dense Cholesky factorization doubles as the SPD certificate in tests
//! (a matrix is SPD iff Cholesky succeeds) and as the exact solve for
//! preconditioner blocks when they are small enough to densify.

use std::ops::{Index, IndexMut};

/// A row-major dense matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct Dense {
    n_rows: usize,
    n_cols: usize,
    data: Vec<f64>,
}

impl Dense {
    /// An `n_rows × n_cols` zero matrix.
    pub fn zeros(n_rows: usize, n_cols: usize) -> Self {
        Dense {
            n_rows,
            n_cols,
            data: vec![0.0; n_rows * n_cols],
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Dense::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a row-major slice.
    pub fn from_rows(n_rows: usize, n_cols: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), n_rows * n_cols);
        Dense {
            n_rows,
            n_cols,
            data: data.to_vec(),
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// `y = A x`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n_cols);
        let mut y = vec![0.0; self.n_rows];
        for r in 0..self.n_rows {
            let row = &self.data[r * self.n_cols..(r + 1) * self.n_cols];
            y[r] = crate::vecops::dot(row, x);
        }
        y
    }

    /// In-place Cholesky factorization `A = L Lᵀ` (lower triangle).
    /// Returns `Err` with the failing pivot index if `A` is not numerically
    /// positive definite — which makes this the SPD test oracle.
    pub fn cholesky(&self) -> Result<CholeskyFactor, usize> {
        assert_eq!(self.n_rows, self.n_cols, "cholesky needs square");
        let n = self.n_rows;
        let mut l = self.data.clone();
        for j in 0..n {
            let mut d = l[j * n + j];
            for k in 0..j {
                d -= l[j * n + k] * l[j * n + k];
            }
            if d <= 0.0 || !d.is_finite() {
                return Err(j);
            }
            let dj = d.sqrt();
            l[j * n + j] = dj;
            for i in (j + 1)..n {
                let mut s = l[i * n + j];
                for k in 0..j {
                    s -= l[i * n + k] * l[j * n + k];
                }
                l[i * n + j] = s / dj;
            }
            // Zero the upper triangle for cleanliness.
            for k in (j + 1)..n {
                l[j * n + k] = 0.0;
            }
        }
        Ok(CholeskyFactor { n, l })
    }

    /// True iff the matrix is numerically SPD (Cholesky succeeds).
    pub fn is_spd(&self) -> bool {
        self.n_rows == self.n_cols && self.cholesky().is_ok()
    }
}

impl Index<(usize, usize)> for Dense {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.n_cols + c]
    }
}

impl IndexMut<(usize, usize)> for Dense {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.n_cols + c]
    }
}

/// A dense Cholesky factor `L` with `A = L Lᵀ`.
#[derive(Clone, Debug)]
pub struct CholeskyFactor {
    n: usize,
    l: Vec<f64>, // row-major, lower triangular
}

impl CholeskyFactor {
    /// Solve `A x = b` via forward/back substitution.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n);
        let n = self.n;
        let l = &self.l;
        // L y = b
        let mut y = b.to_vec();
        for i in 0..n {
            let mut s = y[i];
            for k in 0..i {
                s -= l[i * n + k] * y[k];
            }
            y[i] = s / l[i * n + i];
        }
        // Lᵀ x = y
        for i in (0..n).rev() {
            let mut s = y[i];
            for k in (i + 1)..n {
                s -= l[k * n + i] * y[k];
            }
            y[i] = s / l[i * n + i];
        }
        y
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Dense {
        Dense::from_rows(3, 3, &[4.0, 1.0, 0.0, 1.0, 3.0, 1.0, 0.0, 1.0, 2.0])
    }

    #[test]
    fn cholesky_roundtrip() {
        let a = spd3();
        let f = a.cholesky().unwrap();
        let x_true = vec![1.0, -2.0, 0.5];
        let b = a.mul_vec(&x_true);
        let x = f.solve(&b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-12);
        }
    }

    #[test]
    fn rejects_indefinite() {
        let m = Dense::from_rows(2, 2, &[1.0, 2.0, 2.0, 1.0]); // eigenvalues 3, -1
        assert!(m.cholesky().is_err());
        assert!(!m.is_spd());
    }

    #[test]
    fn rejects_semidefinite() {
        let m = Dense::from_rows(2, 2, &[1.0, 1.0, 1.0, 1.0]);
        assert!(!m.is_spd());
    }

    #[test]
    fn identity_is_spd() {
        assert!(Dense::identity(5).is_spd());
    }

    #[test]
    fn mul_vec_matches_manual() {
        let a = spd3();
        assert_eq!(a.mul_vec(&[1.0, 0.0, 0.0]), vec![4.0, 1.0, 0.0]);
        assert_eq!(a.mul_vec(&[1.0, 1.0, 1.0]), vec![5.0, 5.0, 3.0]);
    }
}
